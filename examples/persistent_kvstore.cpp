// Persistent key-value store over the secure NVM system: a realistic
// application of the public API, in the style of the paper's persistent
// workloads. Every committed put() is flushed through the cache hierarchy
// (clwb+fence semantics); a crash mid-run must lose nothing committed.
//
//   $ ./build/examples/persistent_kvstore
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "common/rng.hpp"
#include "sim/system.hpp"

using namespace steins;

namespace {

/// A tiny fixed-capacity open-addressing KV store laid out in NVM blocks:
/// one 64 B block per slot: [8 B key | 48 B value | 8 B version].
class SecureKvStore {
 public:
  SecureKvStore(System& sys, Addr base, std::size_t slots)
      : sys_(sys), base_(base), slots_(slots) {}

  void put(std::uint64_t key, const std::string& value) {
    const std::size_t slot = find_slot(key);
    Block b{};
    std::memcpy(b.data(), &key, 8);
    std::strncpy(reinterpret_cast<char*>(b.data() + 8), value.c_str(), 47);
    const std::uint64_t version = ++versions_[key];
    std::memcpy(b.data() + 56, &version, 8);
    const Addr addr = base_ + slot * kBlockSize;
    sys_.store(addr, b);
    sys_.persist(addr);  // commit point: clwb + fence
    committed_[key] = value;
  }

  std::string get(std::uint64_t key) {
    const std::size_t slot = find_slot(key);
    const Block b = sys_.load(base_ + slot * kBlockSize);
    std::uint64_t stored_key;
    std::memcpy(&stored_key, b.data(), 8);
    if (stored_key != key) return {};
    return std::string(reinterpret_cast<const char*>(b.data() + 8));
  }

  const std::map<std::uint64_t, std::string>& committed() const { return committed_; }

 private:
  std::size_t find_slot(std::uint64_t key) const {
    return static_cast<std::size_t>((key * 0x9e3779b97f4a7c15ULL) % slots_);
  }

  System& sys_;
  Addr base_;
  std::size_t slots_;
  std::map<std::uint64_t, std::string> committed_;
  std::map<std::uint64_t, std::uint64_t> versions_;
};

}  // namespace

int main() {
  SystemConfig cfg = default_config();
  cfg.nvm.capacity_bytes = 256ULL << 20;
  System sys(cfg, Scheme::kSteins);

  SecureKvStore kv(sys, /*base=*/1 << 20, /*slots=*/1 << 16);
  Xoshiro256 rng(7);

  std::printf("Committing 2000 key-value pairs through the secure controller...\n");
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t key = rng.below(500);
    kv.put(key, "value-" + std::to_string(i) + "-for-" + std::to_string(key));
  }

  const RunStats before = sys.collect_stats();
  std::printf("  %llu NVM writes (data+metadata), mean write latency %.0f cycles\n",
              static_cast<unsigned long long>(before.mem.nvm_writes()),
              before.write_latency_cycles);

  std::printf("CRASH mid-run (power loss).\n");
  const RecoveryResult r = sys.crash_and_recover();
  if (!r.ok()) {
    std::printf("recovery failed: %s\n", r.attack_detail.c_str());
    return 1;
  }
  std::printf("Recovered %llu metadata nodes in %.4f s (modeled).\n",
              static_cast<unsigned long long>(r.nodes_recovered), r.seconds);

  std::printf("Verifying every committed pair after recovery... ");
  std::size_t checked = 0;
  for (const auto& [key, value] : kv.committed()) {
    const std::string got = kv.get(key);
    if (got != value) {
      std::printf("\nMISMATCH for key %llu: got \"%s\", want \"%s\"\n",
                  static_cast<unsigned long long>(key), got.c_str(), value.c_str());
      return 1;
    }
    ++checked;
  }
  std::printf("all %zu keys intact.\n", checked);
  return 0;
}

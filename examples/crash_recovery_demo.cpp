// Crash + attack demo: shows tampering and replay being detected during
// recovery, per the paper's threat model (§II-A, §III-H).
//
//   $ ./build/examples/crash_recovery_demo
#include <cstdio>
#include <memory>

#include "common/rng.hpp"
#include "schemes/attack.hpp"
#include "schemes/steins.hpp"

using namespace steins;

namespace {

std::unique_ptr<SteinsMemory> fresh_memory_with_workload(Xoshiro256& rng) {
  SystemConfig cfg = default_config();
  cfg.nvm.capacity_bytes = 256ULL << 20;  // small demo region
  cfg.secure.metadata_cache.size_bytes = 32 * 1024;
  auto mem = std::make_unique<SteinsMemory>(cfg);
  Cycle now = 0;
  for (int i = 0; i < 5000; ++i) {
    Block data{};
    data[0] = static_cast<std::uint8_t>(i);
    now = mem->write_block(rng.below(200'000) * kBlockSize, data, now);
  }
  return mem;
}

void report(const char* scenario, const RecoveryResult& r) {
  std::printf("%-34s -> %s", scenario, r.attack_detected ? "ATTACK DETECTED" : "recovered OK");
  if (r.attack_detected) std::printf(" (%s)", r.attack_detail.c_str());
  std::printf("\n");
}

}  // namespace

int main() {
  Xoshiro256 rng(2024);
  std::printf("Steins crash-recovery under attack\n");
  std::printf("==================================\n\n");

  {  // Clean crash: no attacker.
    auto mem = fresh_memory_with_workload(rng);
    mem->crash();
    report("clean crash", mem->recover());
  }

  {  // Tampering: flip a bit in a persistent child of a dirty node during
     // downtime — recovery must notice while rebuilding from children.
    auto mem = fresh_memory_with_workload(rng);
    const SitGeometry& geo = mem->geometry();
    NodeId victim{};
    bool found = false;
    mem->metadata_cache().for_each([&](const MetadataLine& line) {
      if (found || !line.dirty || line.payload.id.level == 0) return;
      for (std::size_t j = 0; j < geo.num_children(line.payload.id); ++j) {
        const NodeId c = geo.child_of(line.payload.id, j);
        if (mem->device().contains(geo.node_addr(c))) {
          victim = c;
          found = true;
          return;
        }
      }
    });
    mem->crash();
    AttackInjector attacker(*mem);
    if (found) attacker.tamper_node(victim, 12);
    report("tampered SIT node", mem->recover());
  }

  {  // Replay: record a data block early, splice it back after more writes.
    auto mem = fresh_memory_with_workload(rng);
    AttackInjector attacker(*mem);
    const Addr victim = 1234 * kBlockSize;
    Block data{};
    Cycle now = 0;
    now = mem->write_block(victim, data, now);
    mem->flush_all_metadata();
    attacker.record_block(victim);  // bus snoop
    data[0] = 0xff;
    now = mem->write_block(victim, data, now);  // counter advances
    now = mem->write_block(victim, data, now);
    mem->crash();
    attacker.replay_block(victim);  // splice the stale ciphertext back
    report("replayed data block", mem->recover());
  }

  {  // Record forgery: erase the offset records (mark dirty nodes clean).
    auto mem = fresh_memory_with_workload(rng);
    Cycle t = 0;
    mem->drain_nv_buffer(t);
    mem->crash();
    AttackInjector attacker(*mem);
    const Addr base = mem->geometry().aux_base();
    const std::size_t lines = (mem->metadata_cache().num_lines() + 15) / 16;
    for (std::size_t i = 0; i < lines; ++i) {
      attacker.overwrite_block(base + i * kBlockSize, zero_block());
    }
    report("forged offset records", mem->recover());
  }

  std::printf("\nTampering is caught by node HMACs; replay and record forgery by the\n");
  std::printf("per-level LInc trust bases (paper Fig. 6 / SIII-H).\n");
  return 0;
}

// Compare all four schemes on one workload: runtime cost, write traffic,
// and recovery time side by side (a miniature of the paper's evaluation).
//
//   $ ./build/examples/scheme_comparison [accesses]
#include <cstdio>
#include <cstdlib>

#include "sim/experiment.hpp"
#include "trace/workloads.hpp"

using namespace steins;

int main(int argc, char** argv) {
  const std::uint64_t accesses = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100'000;

  std::printf("Scheme comparison on the 'phash' persistent workload (%llu accesses)\n\n",
              static_cast<unsigned long long>(accesses));
  std::printf("%-11s %12s %12s %12s %12s %12s\n", "scheme", "exec cycles", "wr lat(cy)",
              "writes", "energy(uJ)", "recovery(s)");

  const std::vector<SchemeSpec> schemes = {
      {Scheme::kWriteBack, CounterMode::kGeneral, "WB-GC"},
      {Scheme::kAnubis, CounterMode::kGeneral, "ASIT"},
      {Scheme::kStar, CounterMode::kGeneral, "STAR"},
      {Scheme::kSteins, CounterMode::kGeneral, "Steins-GC"},
      {Scheme::kSteins, CounterMode::kSplit, "Steins-SC"},
  };

  for (const auto& spec : schemes) {
    SystemConfig cfg = default_config();
    cfg.counter_mode = spec.mode;
    System sys(cfg, spec.scheme);
    auto trace = make_workload("phash", accesses);
    const RunStats stats = sys.run(*trace);
    const RecoveryResult r = sys.crash_and_recover();
    char recovery[32];
    if (r.supported) {
      std::snprintf(recovery, sizeof(recovery), "%.5f", r.seconds);
    } else {
      std::snprintf(recovery, sizeof(recovery), "unsupported");
    }
    std::printf("%-11s %12llu %12.0f %12llu %12.1f %12s\n", spec.label.c_str(),
                static_cast<unsigned long long>(stats.cycles), stats.write_latency_cycles,
                static_cast<unsigned long long>(stats.mem.nvm_writes()),
                stats.energy_nj / 1000.0, recovery);
  }

  std::printf("\nExpected shape (paper): ASIT slowest with ~2x writes; STAR in between;\n");
  std::printf("Steins near WB runtime while recovering in well under a second.\n");
  return 0;
}

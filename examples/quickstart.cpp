// Quickstart: protect a region of NVM with Steins, write data, crash the
// machine, recover the security metadata, and keep going.
//
//   $ ./build/examples/quickstart
#include <cstdio>
#include <cstring>

#include "schemes/steins.hpp"

using namespace steins;

int main() {
  // 1. Configure the system (paper Table I defaults; Steins-SC variant).
  SystemConfig cfg = default_config();
  cfg.counter_mode = CounterMode::kSplit;

  SteinsMemory mem(cfg);
  std::printf("Secure NVM: %llu GB, SIT height %u (incl. root), %zu KB metadata cache\n",
              static_cast<unsigned long long>(cfg.nvm.capacity_bytes >> 30),
              mem.geometry().height(), cfg.secure.metadata_cache.size_bytes / 1024);

  // 2. Write some data through the secure controller. Every block is
  //    encrypted (counter mode) and bound into the integrity tree.
  Cycle now = 0;
  for (int i = 0; i < 1000; ++i) {
    Block data{};
    std::snprintf(reinterpret_cast<char*>(data.data()), data.size(), "record %d", i);
    now = mem.write_block(static_cast<Addr>(i) * 4096, data, now);
  }
  std::printf("Wrote 1000 encrypted blocks; leaf counters live only in the cache so far\n");

  // 3. Power failure: the metadata cache is lost, the ADR domain persists.
  mem.crash();
  std::printf("CRASH. Volatile metadata gone; offset records + LIncs survived in ADR.\n");

  // 4. Recover: Steins rebuilds every stale node from its persistent
  //    children and verifies with the LInc trust bases, root to leaf.
  const RecoveryResult r = mem.recover();
  if (!r.ok()) {
    std::printf("recovery failed: %s\n", r.attack_detail.c_str());
    return 1;
  }
  std::printf("Recovered %llu nodes in %.4f s (modeled), %llu NVM reads, no attacks.\n",
              static_cast<unsigned long long>(r.nodes_recovered), r.seconds,
              static_cast<unsigned long long>(r.nvm_reads));

  // 5. Data is decryptable and verifiable again.
  Block out;
  now = mem.read_block(42 * 4096, now, &out);
  std::printf("Block 42 after recovery: \"%s\"\n", reinterpret_cast<const char*>(out.data()));
  return 0;
}

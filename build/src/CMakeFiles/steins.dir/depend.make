# Empty dependencies file for steins.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libsteins.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/cache.cpp" "src/CMakeFiles/steins.dir/cache/cache.cpp.o" "gcc" "src/CMakeFiles/steins.dir/cache/cache.cpp.o.d"
  "/root/repo/src/cache/cache_hierarchy.cpp" "src/CMakeFiles/steins.dir/cache/cache_hierarchy.cpp.o" "gcc" "src/CMakeFiles/steins.dir/cache/cache_hierarchy.cpp.o.d"
  "/root/repo/src/common/config.cpp" "src/CMakeFiles/steins.dir/common/config.cpp.o" "gcc" "src/CMakeFiles/steins.dir/common/config.cpp.o.d"
  "/root/repo/src/common/log.cpp" "src/CMakeFiles/steins.dir/common/log.cpp.o" "gcc" "src/CMakeFiles/steins.dir/common/log.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/CMakeFiles/steins.dir/common/stats.cpp.o" "gcc" "src/CMakeFiles/steins.dir/common/stats.cpp.o.d"
  "/root/repo/src/crypto/aes.cpp" "src/CMakeFiles/steins.dir/crypto/aes.cpp.o" "gcc" "src/CMakeFiles/steins.dir/crypto/aes.cpp.o.d"
  "/root/repo/src/crypto/hmac.cpp" "src/CMakeFiles/steins.dir/crypto/hmac.cpp.o" "gcc" "src/CMakeFiles/steins.dir/crypto/hmac.cpp.o.d"
  "/root/repo/src/crypto/mac.cpp" "src/CMakeFiles/steins.dir/crypto/mac.cpp.o" "gcc" "src/CMakeFiles/steins.dir/crypto/mac.cpp.o.d"
  "/root/repo/src/crypto/otp.cpp" "src/CMakeFiles/steins.dir/crypto/otp.cpp.o" "gcc" "src/CMakeFiles/steins.dir/crypto/otp.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/CMakeFiles/steins.dir/crypto/sha256.cpp.o" "gcc" "src/CMakeFiles/steins.dir/crypto/sha256.cpp.o.d"
  "/root/repo/src/crypto/siphash.cpp" "src/CMakeFiles/steins.dir/crypto/siphash.cpp.o" "gcc" "src/CMakeFiles/steins.dir/crypto/siphash.cpp.o.d"
  "/root/repo/src/nvm/nvm_device.cpp" "src/CMakeFiles/steins.dir/nvm/nvm_device.cpp.o" "gcc" "src/CMakeFiles/steins.dir/nvm/nvm_device.cpp.o.d"
  "/root/repo/src/nvm/write_queue.cpp" "src/CMakeFiles/steins.dir/nvm/write_queue.cpp.o" "gcc" "src/CMakeFiles/steins.dir/nvm/write_queue.cpp.o.d"
  "/root/repo/src/schemes/anubis.cpp" "src/CMakeFiles/steins.dir/schemes/anubis.cpp.o" "gcc" "src/CMakeFiles/steins.dir/schemes/anubis.cpp.o.d"
  "/root/repo/src/schemes/attack.cpp" "src/CMakeFiles/steins.dir/schemes/attack.cpp.o" "gcc" "src/CMakeFiles/steins.dir/schemes/attack.cpp.o.d"
  "/root/repo/src/schemes/bmt.cpp" "src/CMakeFiles/steins.dir/schemes/bmt.cpp.o" "gcc" "src/CMakeFiles/steins.dir/schemes/bmt.cpp.o.d"
  "/root/repo/src/schemes/scue.cpp" "src/CMakeFiles/steins.dir/schemes/scue.cpp.o" "gcc" "src/CMakeFiles/steins.dir/schemes/scue.cpp.o.d"
  "/root/repo/src/schemes/star.cpp" "src/CMakeFiles/steins.dir/schemes/star.cpp.o" "gcc" "src/CMakeFiles/steins.dir/schemes/star.cpp.o.d"
  "/root/repo/src/schemes/steins.cpp" "src/CMakeFiles/steins.dir/schemes/steins.cpp.o" "gcc" "src/CMakeFiles/steins.dir/schemes/steins.cpp.o.d"
  "/root/repo/src/schemes/writeback.cpp" "src/CMakeFiles/steins.dir/schemes/writeback.cpp.o" "gcc" "src/CMakeFiles/steins.dir/schemes/writeback.cpp.o.d"
  "/root/repo/src/secure/secure_memory.cpp" "src/CMakeFiles/steins.dir/secure/secure_memory.cpp.o" "gcc" "src/CMakeFiles/steins.dir/secure/secure_memory.cpp.o.d"
  "/root/repo/src/sim/cpu_model.cpp" "src/CMakeFiles/steins.dir/sim/cpu_model.cpp.o" "gcc" "src/CMakeFiles/steins.dir/sim/cpu_model.cpp.o.d"
  "/root/repo/src/sim/experiment.cpp" "src/CMakeFiles/steins.dir/sim/experiment.cpp.o" "gcc" "src/CMakeFiles/steins.dir/sim/experiment.cpp.o.d"
  "/root/repo/src/sim/multi_controller.cpp" "src/CMakeFiles/steins.dir/sim/multi_controller.cpp.o" "gcc" "src/CMakeFiles/steins.dir/sim/multi_controller.cpp.o.d"
  "/root/repo/src/sim/system.cpp" "src/CMakeFiles/steins.dir/sim/system.cpp.o" "gcc" "src/CMakeFiles/steins.dir/sim/system.cpp.o.d"
  "/root/repo/src/sit/counter_block.cpp" "src/CMakeFiles/steins.dir/sit/counter_block.cpp.o" "gcc" "src/CMakeFiles/steins.dir/sit/counter_block.cpp.o.d"
  "/root/repo/src/sit/geometry.cpp" "src/CMakeFiles/steins.dir/sit/geometry.cpp.o" "gcc" "src/CMakeFiles/steins.dir/sit/geometry.cpp.o.d"
  "/root/repo/src/sit/node.cpp" "src/CMakeFiles/steins.dir/sit/node.cpp.o" "gcc" "src/CMakeFiles/steins.dir/sit/node.cpp.o.d"
  "/root/repo/src/sit/tree_checker.cpp" "src/CMakeFiles/steins.dir/sit/tree_checker.cpp.o" "gcc" "src/CMakeFiles/steins.dir/sit/tree_checker.cpp.o.d"
  "/root/repo/src/trace/persistent.cpp" "src/CMakeFiles/steins.dir/trace/persistent.cpp.o" "gcc" "src/CMakeFiles/steins.dir/trace/persistent.cpp.o.d"
  "/root/repo/src/trace/synthetic.cpp" "src/CMakeFiles/steins.dir/trace/synthetic.cpp.o" "gcc" "src/CMakeFiles/steins.dir/trace/synthetic.cpp.o.d"
  "/root/repo/src/trace/trace_file.cpp" "src/CMakeFiles/steins.dir/trace/trace_file.cpp.o" "gcc" "src/CMakeFiles/steins.dir/trace/trace_file.cpp.o.d"
  "/root/repo/src/trace/workloads.cpp" "src/CMakeFiles/steins.dir/trace/workloads.cpp.o" "gcc" "src/CMakeFiles/steins.dir/trace/workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/steins_sim.dir/steins_sim.cpp.o"
  "CMakeFiles/steins_sim.dir/steins_sim.cpp.o.d"
  "steins_sim"
  "steins_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/steins_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for steins_sim.
# This may be replaced when dependencies are built.

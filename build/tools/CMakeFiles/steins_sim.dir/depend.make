# Empty dependencies file for steins_sim.
# This may be replaced when dependencies are built.

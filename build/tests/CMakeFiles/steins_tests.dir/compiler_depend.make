# Empty compiler generated dependencies file for steins_tests.
# This may be replaced when dependencies are built.

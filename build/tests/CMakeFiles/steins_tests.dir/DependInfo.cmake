
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_aes.cpp" "tests/CMakeFiles/steins_tests.dir/test_aes.cpp.o" "gcc" "tests/CMakeFiles/steins_tests.dir/test_aes.cpp.o.d"
  "/root/repo/tests/test_attack_localization.cpp" "tests/CMakeFiles/steins_tests.dir/test_attack_localization.cpp.o" "gcc" "tests/CMakeFiles/steins_tests.dir/test_attack_localization.cpp.o.d"
  "/root/repo/tests/test_attacks.cpp" "tests/CMakeFiles/steins_tests.dir/test_attacks.cpp.o" "gcc" "tests/CMakeFiles/steins_tests.dir/test_attacks.cpp.o.d"
  "/root/repo/tests/test_bmt.cpp" "tests/CMakeFiles/steins_tests.dir/test_bmt.cpp.o" "gcc" "tests/CMakeFiles/steins_tests.dir/test_bmt.cpp.o.d"
  "/root/repo/tests/test_cache.cpp" "tests/CMakeFiles/steins_tests.dir/test_cache.cpp.o" "gcc" "tests/CMakeFiles/steins_tests.dir/test_cache.cpp.o.d"
  "/root/repo/tests/test_cache_hierarchy.cpp" "tests/CMakeFiles/steins_tests.dir/test_cache_hierarchy.cpp.o" "gcc" "tests/CMakeFiles/steins_tests.dir/test_cache_hierarchy.cpp.o.d"
  "/root/repo/tests/test_cme_node.cpp" "tests/CMakeFiles/steins_tests.dir/test_cme_node.cpp.o" "gcc" "tests/CMakeFiles/steins_tests.dir/test_cme_node.cpp.o.d"
  "/root/repo/tests/test_config.cpp" "tests/CMakeFiles/steins_tests.dir/test_config.cpp.o" "gcc" "tests/CMakeFiles/steins_tests.dir/test_config.cpp.o.d"
  "/root/repo/tests/test_counter_block.cpp" "tests/CMakeFiles/steins_tests.dir/test_counter_block.cpp.o" "gcc" "tests/CMakeFiles/steins_tests.dir/test_counter_block.cpp.o.d"
  "/root/repo/tests/test_experiment.cpp" "tests/CMakeFiles/steins_tests.dir/test_experiment.cpp.o" "gcc" "tests/CMakeFiles/steins_tests.dir/test_experiment.cpp.o.d"
  "/root/repo/tests/test_extreme_configs.cpp" "tests/CMakeFiles/steins_tests.dir/test_extreme_configs.cpp.o" "gcc" "tests/CMakeFiles/steins_tests.dir/test_extreme_configs.cpp.o.d"
  "/root/repo/tests/test_geometry.cpp" "tests/CMakeFiles/steins_tests.dir/test_geometry.cpp.o" "gcc" "tests/CMakeFiles/steins_tests.dir/test_geometry.cpp.o.d"
  "/root/repo/tests/test_hmac.cpp" "tests/CMakeFiles/steins_tests.dir/test_hmac.cpp.o" "gcc" "tests/CMakeFiles/steins_tests.dir/test_hmac.cpp.o.d"
  "/root/repo/tests/test_log.cpp" "tests/CMakeFiles/steins_tests.dir/test_log.cpp.o" "gcc" "tests/CMakeFiles/steins_tests.dir/test_log.cpp.o.d"
  "/root/repo/tests/test_multi_controller.cpp" "tests/CMakeFiles/steins_tests.dir/test_multi_controller.cpp.o" "gcc" "tests/CMakeFiles/steins_tests.dir/test_multi_controller.cpp.o.d"
  "/root/repo/tests/test_nvm.cpp" "tests/CMakeFiles/steins_tests.dir/test_nvm.cpp.o" "gcc" "tests/CMakeFiles/steins_tests.dir/test_nvm.cpp.o.d"
  "/root/repo/tests/test_overflow_analysis.cpp" "tests/CMakeFiles/steins_tests.dir/test_overflow_analysis.cpp.o" "gcc" "tests/CMakeFiles/steins_tests.dir/test_overflow_analysis.cpp.o.d"
  "/root/repo/tests/test_recovery.cpp" "tests/CMakeFiles/steins_tests.dir/test_recovery.cpp.o" "gcc" "tests/CMakeFiles/steins_tests.dir/test_recovery.cpp.o.d"
  "/root/repo/tests/test_recovery_fuzz.cpp" "tests/CMakeFiles/steins_tests.dir/test_recovery_fuzz.cpp.o" "gcc" "tests/CMakeFiles/steins_tests.dir/test_recovery_fuzz.cpp.o.d"
  "/root/repo/tests/test_recovery_properties.cpp" "tests/CMakeFiles/steins_tests.dir/test_recovery_properties.cpp.o" "gcc" "tests/CMakeFiles/steins_tests.dir/test_recovery_properties.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/steins_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/steins_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_scheme_tracking.cpp" "tests/CMakeFiles/steins_tests.dir/test_scheme_tracking.cpp.o" "gcc" "tests/CMakeFiles/steins_tests.dir/test_scheme_tracking.cpp.o.d"
  "/root/repo/tests/test_scue.cpp" "tests/CMakeFiles/steins_tests.dir/test_scue.cpp.o" "gcc" "tests/CMakeFiles/steins_tests.dir/test_scue.cpp.o.d"
  "/root/repo/tests/test_secure_memory.cpp" "tests/CMakeFiles/steins_tests.dir/test_secure_memory.cpp.o" "gcc" "tests/CMakeFiles/steins_tests.dir/test_secure_memory.cpp.o.d"
  "/root/repo/tests/test_sha256.cpp" "tests/CMakeFiles/steins_tests.dir/test_sha256.cpp.o" "gcc" "tests/CMakeFiles/steins_tests.dir/test_sha256.cpp.o.d"
  "/root/repo/tests/test_siphash.cpp" "tests/CMakeFiles/steins_tests.dir/test_siphash.cpp.o" "gcc" "tests/CMakeFiles/steins_tests.dir/test_siphash.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/steins_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/steins_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_steins_runtime.cpp" "tests/CMakeFiles/steins_tests.dir/test_steins_runtime.cpp.o" "gcc" "tests/CMakeFiles/steins_tests.dir/test_steins_runtime.cpp.o.d"
  "/root/repo/tests/test_system.cpp" "tests/CMakeFiles/steins_tests.dir/test_system.cpp.o" "gcc" "tests/CMakeFiles/steins_tests.dir/test_system.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/steins_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/steins_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_trace_file.cpp" "tests/CMakeFiles/steins_tests.dir/test_trace_file.cpp.o" "gcc" "tests/CMakeFiles/steins_tests.dir/test_trace_file.cpp.o.d"
  "/root/repo/tests/test_tree_checker.cpp" "tests/CMakeFiles/steins_tests.dir/test_tree_checker.cpp.o" "gcc" "tests/CMakeFiles/steins_tests.dir/test_tree_checker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/steins.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

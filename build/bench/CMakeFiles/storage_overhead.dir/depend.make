# Empty dependencies file for storage_overhead.
# This may be replaced when dependencies are built.

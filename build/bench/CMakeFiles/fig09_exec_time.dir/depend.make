# Empty dependencies file for fig09_exec_time.
# This may be replaced when dependencies are built.

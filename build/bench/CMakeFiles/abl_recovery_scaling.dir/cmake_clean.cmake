file(REMOVE_RECURSE
  "CMakeFiles/abl_recovery_scaling.dir/abl_recovery_scaling.cpp.o"
  "CMakeFiles/abl_recovery_scaling.dir/abl_recovery_scaling.cpp.o.d"
  "abl_recovery_scaling"
  "abl_recovery_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_recovery_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

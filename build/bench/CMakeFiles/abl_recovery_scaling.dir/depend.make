# Empty dependencies file for abl_recovery_scaling.
# This may be replaced when dependencies are built.

# Empty dependencies file for fig17_recovery_time.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig17_recovery_time.dir/fig17_recovery_time.cpp.o"
  "CMakeFiles/fig17_recovery_time.dir/fig17_recovery_time.cpp.o.d"
  "fig17_recovery_time"
  "fig17_recovery_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_recovery_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig14_write_traffic_sc.dir/fig14_write_traffic_sc.cpp.o"
  "CMakeFiles/fig14_write_traffic_sc.dir/fig14_write_traffic_sc.cpp.o.d"
  "fig14_write_traffic_sc"
  "fig14_write_traffic_sc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_write_traffic_sc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

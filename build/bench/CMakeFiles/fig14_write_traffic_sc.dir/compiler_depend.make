# Empty compiler generated dependencies file for fig14_write_traffic_sc.
# This may be replaced when dependencies are built.

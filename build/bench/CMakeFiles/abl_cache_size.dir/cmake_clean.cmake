file(REMOVE_RECURSE
  "CMakeFiles/abl_cache_size.dir/abl_cache_size.cpp.o"
  "CMakeFiles/abl_cache_size.dir/abl_cache_size.cpp.o.d"
  "abl_cache_size"
  "abl_cache_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_cache_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for abl_steins_knobs.
# This may be replaced when dependencies are built.

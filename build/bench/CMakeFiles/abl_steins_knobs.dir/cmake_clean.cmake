file(REMOVE_RECURSE
  "CMakeFiles/abl_steins_knobs.dir/abl_steins_knobs.cpp.o"
  "CMakeFiles/abl_steins_knobs.dir/abl_steins_knobs.cpp.o.d"
  "abl_steins_knobs"
  "abl_steins_knobs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_steins_knobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

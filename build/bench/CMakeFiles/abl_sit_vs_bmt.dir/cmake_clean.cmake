file(REMOVE_RECURSE
  "CMakeFiles/abl_sit_vs_bmt.dir/abl_sit_vs_bmt.cpp.o"
  "CMakeFiles/abl_sit_vs_bmt.dir/abl_sit_vs_bmt.cpp.o.d"
  "abl_sit_vs_bmt"
  "abl_sit_vs_bmt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_sit_vs_bmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for abl_sit_vs_bmt.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/abl_update_policy.dir/abl_update_policy.cpp.o"
  "CMakeFiles/abl_update_policy.dir/abl_update_policy.cpp.o.d"
  "abl_update_policy"
  "abl_update_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_update_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

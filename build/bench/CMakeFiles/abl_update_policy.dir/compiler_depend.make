# Empty compiler generated dependencies file for abl_update_policy.
# This may be replaced when dependencies are built.

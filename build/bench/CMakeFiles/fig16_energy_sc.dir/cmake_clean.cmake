file(REMOVE_RECURSE
  "CMakeFiles/fig16_energy_sc.dir/fig16_energy_sc.cpp.o"
  "CMakeFiles/fig16_energy_sc.dir/fig16_energy_sc.cpp.o.d"
  "fig16_energy_sc"
  "fig16_energy_sc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_energy_sc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig16_energy_sc.
# This may be replaced when dependencies are built.

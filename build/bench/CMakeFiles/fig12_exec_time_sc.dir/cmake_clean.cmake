file(REMOVE_RECURSE
  "CMakeFiles/fig12_exec_time_sc.dir/fig12_exec_time_sc.cpp.o"
  "CMakeFiles/fig12_exec_time_sc.dir/fig12_exec_time_sc.cpp.o.d"
  "fig12_exec_time_sc"
  "fig12_exec_time_sc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_exec_time_sc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

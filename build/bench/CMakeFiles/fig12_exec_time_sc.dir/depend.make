# Empty dependencies file for fig12_exec_time_sc.
# This may be replaced when dependencies are built.

// steins_attack: adversarial scenario campaigns + endurance projection.
//
//   steins_attack --trials 1000 --seed 42 --jobs 8
//   steins_attack --scenarios subtree-rollback,torn-record --schemes steins
//   steins_attack --trials 1000 --trial 137 --verbose
//   steins_attack --endurance --schemes steins --json endurance.json
//
// Runs N seeded trials per (scheme, scenario): a workload phase, a
// checkpoint flush at which the adversary snapshots every persisted line,
// a dirty burst, then a CLEAN crash with the scenario's mutation applied
// to the durable image (rollback/replay/forgery/tear), recovery, and a
// strict-window audit — every acknowledged write must read back at its
// latest version or a check must have fired. Verdicts carry detection
// latency (accesses from injection to detection) and blast radius
// (lines/subtrees/blocks quarantined). Every trial is a pure function of
// (--seed, trial index): bit-identical for any --jobs, and --trial K
// reruns exactly one trial.
//
// --endurance instead runs the accelerated wear campaign per scheme and
// projects wear-leveling / wear-out / spare-pool-exhaustion milestones to
// real device endurance and traffic.
//
// Exit status: 1 if any silent corruption (or endurance audit mismatch)
// was observed, 2 for usage errors.
#include <cstdio>
#include <string>
#include <vector>

#include "cli_common.hpp"
#include "fault/adversary.hpp"
#include "fault/endurance.hpp"

using namespace steins;

namespace {

struct Options {
  AttackCampaignOptions campaign;
  std::string schemes;    // csv; empty = attack_schemes()
  std::string scenarios;  // csv; empty = all
  std::string json_path;
  bool endurance = false;
  EnduranceOptions wear;
  bool verbose = false;
  bool help = false;
};

void usage() {
  std::printf(
      "steins_attack - adversarial campaigns over the secure NVM schemes\n\n"
      "  --trials <n>        seeded trials per (scheme, scenario) column\n"
      "                      (default 100; >= 1 unless --trial is given)\n"
      "  --seed <n>          campaign seed (default 42)\n"
      "  --jobs <n>          worker threads; results are bit-identical for\n"
      "                      any value (default 1)\n"
      "  --schemes <list>    comma-separated wb|asit|star|scue|steins\n"
      "                      (default: wb,asit,star,scue,steins)\n"
      "  --scenarios <list>  comma-separated (default: all):\n"
      "                      node-rollback subtree-rollback nv-bypass-replay\n"
      "                      record-forgery torn-record data-replay wear-out\n"
      "  --trial <k>         run only trial k (seed-exact reproduction)\n"
      "  --ops <n>           phase-1 accesses per trial (default 384)\n"
      "  --footprint <n>     workload footprint in blocks (default 2048)\n"
      "  --capacity-mb <n>   per-trial NVM capacity (default 16)\n"
      "  --mcache-kb <n>     metadata cache size (default 16)\n"
      "  --nested-crash <b[,rearm]>  crash the recovery itself at persist\n"
      "                      boundary b (1-based); ',rearm' re-arms every retry\n"
      "  --max-recovery-attempts <n>  retry budget for crashed recoveries\n"
      "                      (default 8)\n"
      "  --json <file>       write the verdict matrix (or endurance report)\n"
      "  --crypto-backend <ref|ttable|hw|auto>  crypto backend (bit-identical;\n"
      "                      host wall-clock only; or STEINS_CRYPTO_BACKEND)\n"
      "  --verbose           per-trial verdicts + adversary event logs\n"
      "\nendurance mode:\n"
      "  --endurance         run the accelerated wear campaign instead\n"
      "  --endurance-mean <n>   per-line accelerated limit (default 96)\n"
      "  --endurance-sigma <n>  limit spread (default 12)\n"
      "  --pool <n>             remap spare-pool lines (default 16)\n"
      "  --max-writes <n>       write-stream cap (default 200000)\n"
      "  --real-endurance <x>   real cell endurance (default 1e8)\n"
      "  --writes-per-sec <x>   projected service rate (default 1e6)\n");
}

bool parse(int argc, char** argv, Options* opt) {
  cli::ArgParser p(argc, argv);
  while (p.next()) {
    if (p.is("--trials")) {
      opt->campaign.trials = p.u64();
    } else if (p.is("--seed")) {
      opt->campaign.seed = p.u64();
      opt->wear.seed = opt->campaign.seed;
    } else if (p.is("--jobs")) {
      opt->campaign.jobs = p.jobs();
    } else if (p.is("--schemes", "--scheme")) {
      opt->schemes = p.str();
    } else if (p.is("--scenarios", "--scenario")) {
      opt->scenarios = p.str();
    } else if (p.is("--trial")) {
      opt->campaign.only_trial = p.u64();
    } else if (p.is("--ops")) {
      opt->campaign.workload.ops = p.u64();
    } else if (p.is("--footprint")) {
      opt->campaign.workload.footprint_blocks = p.u64();
    } else if (p.is("--capacity-mb")) {
      opt->campaign.workload.capacity_mb = p.u64();
    } else if (p.is("--mcache-kb")) {
      opt->campaign.workload.mcache_kb = p.u64();
    } else if (p.is("--nested-crash")) {
      if (!cli::parse_nested_crash(p, &opt->campaign.workload.recovery_crash_boundary,
                                   &opt->campaign.workload.recovery_crash_rearm)) {
        return false;
      }
    } else if (p.is("--max-recovery-attempts")) {
      const std::uint64_t n = p.u64();
      if (p.failed()) return false;
      if (n == 0) {
        p.invalid("invalid --max-recovery-attempts: expected >= 1");
        return false;
      }
      opt->campaign.workload.retry_policy.max_recovery_attempts = n;
    } else if (p.is("--json")) {
      opt->json_path = p.str();
    } else if (p.is("--crypto-backend")) {
      const std::string name = p.str();
      if (!p.failed() && !cli::apply_crypto_backend(name)) return false;
    } else if (p.is("--endurance")) {
      opt->endurance = true;
    } else if (p.is("--endurance-mean")) {
      opt->wear.accel_endurance_mean = p.u64();
    } else if (p.is("--endurance-sigma")) {
      opt->wear.accel_endurance_sigma = p.u64();
    } else if (p.is("--pool")) {
      opt->wear.remap_pool_lines = static_cast<std::size_t>(p.u64());
    } else if (p.is("--max-writes")) {
      opt->wear.max_writes = p.u64();
    } else if (p.is("--real-endurance")) {
      opt->wear.real_endurance_writes = p.f64();
    } else if (p.is("--writes-per-sec")) {
      opt->wear.writes_per_second = p.f64();
    } else if (p.is("--verbose")) {
      opt->verbose = true;
    } else if (p.is("--help", "-h")) {
      opt->help = true;
    } else {
      p.unknown();
    }
  }
  return !p.failed();
}

int run_endurance(const Options& opt, const std::vector<SchemeSpec>& schemes) {
  std::string json = "[\n";
  std::uint64_t mismatches = 0;
  bool first = true;
  for (const SchemeSpec& spec : schemes) {
    EnduranceOptions eo = opt.wear;
    eo.scheme = spec.scheme;
    const EnduranceReport rep = run_endurance_campaign(eo);
    std::printf("%s %s\n\n", spec.label.c_str(), rep.to_string().c_str());
    mismatches += rep.audit_mismatches + (rep.recovery_clean ? 0 : 1);
    if (!first) json += ",\n";
    first = false;
    json += rep.to_json();
  }
  json += "]\n";
  if (!opt.json_path.empty()) {
    if (!cli::write_json_file(opt.json_path, json)) return 1;
    std::printf("wrote JSON results to %s\n", opt.json_path.c_str());
  }
  if (mismatches > 0) {
    std::fprintf(stderr, "\nFAIL: %llu endurance audit failure(s)\n",
                 static_cast<unsigned long long>(mismatches));
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, &opt)) return 2;
  if (opt.help) {
    usage();
    return 0;
  }
  if (opt.campaign.trials == 0 && !opt.campaign.only_trial.has_value()) {
    std::fprintf(stderr,
                 "error: --trials 0 runs no trials and would report vacuous "
                 "success; pass --trials >= 1 or reproduce one with --trial\n");
    return 2;
  }

  if (!opt.schemes.empty()) {
    for (const std::string& name : cli::split_csv(opt.schemes)) {
      const auto s = cli::parse_scheme(name);
      if (!s.has_value()) {
        std::fprintf(stderr, "unknown scheme: %s (try --help)\n", name.c_str());
        return 2;
      }
      opt.campaign.schemes.push_back(
          {*s, CounterMode::kGeneral, scheme_name(*s, CounterMode::kGeneral)});
    }
  }
  for (const std::string& name : cli::split_csv(opt.scenarios)) {
    const auto s = parse_adversary_scenario(name);
    if (!s.has_value()) {
      std::fprintf(stderr, "unknown scenario: %s (try --help)\n", name.c_str());
      return 2;
    }
    opt.campaign.scenarios.push_back(*s);
  }

  try {
    if (opt.endurance) {
      const std::vector<SchemeSpec> schemes =
          opt.campaign.schemes.empty() ? attack_schemes() : opt.campaign.schemes;
      return run_endurance(opt, schemes);
    }

    std::printf("attack campaign: %llu trials, seed %llu, %u job%s\n\n",
                static_cast<unsigned long long>(
                    opt.campaign.only_trial.has_value() ? 1 : opt.campaign.trials),
                static_cast<unsigned long long>(opt.campaign.seed),
                opt.campaign.jobs, opt.campaign.jobs == 1 ? "" : "s");
    const AttackCampaignResult result = run_attack_campaign(opt.campaign);
    result.print(opt.verbose);

    if (!opt.json_path.empty()) {
      if (!cli::write_json_file(opt.json_path, result.to_json())) return 1;
      std::printf("wrote JSON results to %s\n", opt.json_path.c_str());
    }

    if (result.silent_total() > 0) {
      std::fprintf(stderr, "\nFAIL: %llu silent-corruption verdict(s)\n",
                   static_cast<unsigned long long>(result.silent_total()));
      return 1;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}

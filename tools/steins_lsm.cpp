// steins_lsm: the log-structured storage engine front end.
//
//   steins_lsm --mix a --ops 20000
//   steins_lsm --scheme steins,scue --mix f --crash --json lsm.json
//
// For each scheme it runs the YCSB-over-LSM driver (throughput, tail
// latency, and both write-amplification views: scheme-level NVM blocks
// per user byte vs the engine's own WAL+run bytes per user byte), and
// with --crash also the crash-at-persist-boundary matrix: the scripted
// workload killed at every stride-th persist barrier, recovered, reopened
// and diffed against the committed model. Exit status is nonzero if any
// scheme's matrix reports silent corruption (or WB is not detected as
// unrecoverable).
//
// Flag parsing is strict: unknown --flags and flags missing their value
// are errors (exit 2), never silently ignored.
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "cli_common.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "kv/lsm/lsm_crash.hpp"
#include "kv/lsm/lsm_ycsb.hpp"

using namespace steins;
using namespace steins::lsm;

namespace {

struct Options {
  std::string schemes = "wb,asit,star,scue,steins";
  std::string mix = "a";
  std::uint64_t ops = 20'000;
  std::uint64_t keys = 2'048;
  std::uint64_t value_bytes = 24;
  double zipf_s = 0.99;
  std::uint64_t seed = 1;
  std::uint64_t capacity_mb = 64;
  std::uint64_t memtable_bytes = 4096;
  std::uint64_t crash_ops = 96;
  std::uint64_t crash_stride = 1;
  unsigned jobs = ThreadPool::default_jobs();
  std::string json_path;
  bool crash = false;
  bool verify = false;
  bool background_compaction = false;
  bool help = false;
};

void usage() {
  std::printf(
      "steins_lsm - log-structured storage engine over the secure NVM simulator\n\n"
      "  --scheme <list>      comma-separated wb|asit|star|scue|steins (default all)\n"
      "  --mix <a|b|c|f>      YCSB mix (default a)\n"
      "  --ops <n>            measured LSM operations (default 20000)\n"
      "  --keys <n>           preloaded keys (default 2048)\n"
      "  --value-bytes <n>    value payload size (default 24)\n"
      "  --zipf <s>           Zipfian skew (default 0.99)\n"
      "  --seed <n>           driver + crash-script seed (default 1)\n"
      "  --capacity-mb <n>    NVM capacity (default 64)\n"
      "  --memtable-bytes <n> memtable flush threshold (default 4096)\n"
      "  --background-compaction  merge compactions on a pool thread, racing\n"
      "                       WAL commits; installed at the next flush barrier\n"
      "  --verify             diff the final engine dump against a shadow model\n"
      "  --crash              run the crash-at-persist-boundary matrix per scheme\n"
      "  --crash-ops <n>      ops in the crash-matrix script (default 96)\n"
      "  --crash-stride <n>   crash every n-th persist barrier (default 1)\n"
      "  --jobs <n>           worker threads for the crash matrix (default\n"
      "                       STEINS_JOBS or hardware threads; any value is\n"
      "                       bit-identical to --jobs 1)\n"
      "  --json <file>        write results (same numbers as printed) as JSON\n"
      "  --crypto-backend <ref|ttable|hw|auto>  crypto backend (bit-identical;\n"
      "                       host wall-clock only; or STEINS_CRYPTO_BACKEND)\n");
}

bool parse(int argc, char** argv, Options* opt) {
  cli::ArgParser p(argc, argv);
  while (p.next()) {
    if (p.is("--scheme")) {
      opt->schemes = p.str();
    } else if (p.is("--mix")) {
      opt->mix = p.str();
    } else if (p.is("--ops")) {
      opt->ops = p.u64();
    } else if (p.is("--keys")) {
      opt->keys = p.u64();
    } else if (p.is("--value-bytes")) {
      opt->value_bytes = p.u64();
    } else if (p.is("--zipf")) {
      opt->zipf_s = p.f64();
    } else if (p.is("--seed")) {
      opt->seed = p.u64();
    } else if (p.is("--capacity-mb")) {
      opt->capacity_mb = p.u64();
    } else if (p.is("--memtable-bytes")) {
      opt->memtable_bytes = p.u64();
    } else if (p.is("--verify")) {
      opt->verify = true;
    } else if (p.is("--background-compaction")) {
      opt->background_compaction = true;
    } else if (p.is("--crash")) {
      opt->crash = true;
    } else if (p.is("--crash-ops")) {
      opt->crash_ops = p.u64();
    } else if (p.is("--crash-stride")) {
      opt->crash_stride = p.u64();
      if (opt->crash_stride < 1) opt->crash_stride = 1;
    } else if (p.is("--jobs")) {
      opt->jobs = p.jobs();
    } else if (p.is("--json")) {
      opt->json_path = p.str();
    } else if (p.is("--crypto-backend")) {
      const std::string name = p.str();
      if (!p.failed() && !cli::apply_crypto_backend(name)) return false;
    } else if (p.is("--help", "-h")) {
      opt->help = true;
    } else {
      p.unknown();
    }
  }
  return !p.failed();
}

struct SchemeOutcome {
  std::string label;
  LsmYcsbResult ycsb;
  bool crash_ran = false;
  LsmCrashMatrix matrix;
  bool crash_pass = true;
};

double cycles_to_ns(const SystemConfig& cfg, double cycles) {
  return cfg.cycles_to_seconds(1) * 1e9 * cycles;
}

void emit_json(const Options& opt, const SystemConfig& cfg,
               const std::vector<SchemeOutcome>& outcomes) {
  std::FILE* f = std::fopen(opt.json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s: %s\n", opt.json_path.c_str(),
                 std::strerror(errno));
    std::exit(1);
  }
  std::ostringstream os;
  os << "{\"mix\": \"" << json_escape(opt.mix) << "\", \"ops\": " << opt.ops
     << ", \"keys\": " << opt.keys << ", \"value_bytes\": " << opt.value_bytes
     << ", \"zipf_s\": " << opt.zipf_s << ", \"seed\": " << opt.seed
     << ", \"memtable_bytes\": " << opt.memtable_bytes << ",\n \"schemes\": [";
  char buf[64];
  const auto num = [&](double v) {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return std::string(buf);
  };
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const SchemeOutcome& o = outcomes[i];
    const auto lat = [&](const LatencyHistogram& h) {
      return "{\"mean_ns\": " + num(cycles_to_ns(cfg, h.mean())) +
             ", \"p50_ns\": " + num(cycles_to_ns(cfg, h.percentile(50))) +
             ", \"p95_ns\": " + num(cycles_to_ns(cfg, h.percentile(95))) +
             ", \"p99_ns\": " + num(cycles_to_ns(cfg, h.percentile(99))) + "}";
    };
    os << (i ? ",\n  " : "\n  ") << "{\"scheme\": \"" << json_escape(o.label)
       << "\", \"kops_per_sec\": " << num(o.ycsb.kops_per_sec)
       << ", \"reads\": " << o.ycsb.reads << ", \"updates\": " << o.ycsb.updates
       << ", \"nvm_writes\": " << o.ycsb.nvm_writes
       << ", \"bytes_put\": " << o.ycsb.bytes_put
       << ", \"write_amp\": " << num(o.ycsb.write_amp)
       << ", \"logical_write_amp\": " << num(o.ycsb.logical_write_amp)
       << ", \"flushes\": " << o.ycsb.engine_stats.flushes
       << ", \"compactions\": " << o.ycsb.engine_stats.compactions
       << ", \"bg_compactions\": " << o.ycsb.engine_stats.bg_compactions
       << ", \"all\": " << lat(o.ycsb.all_lat) << ", \"read\": " << lat(o.ycsb.read_lat)
       << ", \"update\": " << lat(o.ycsb.update_lat);
    if (o.crash_ran) {
      os << ", \"crash_matrix\": {\"trials\": " << o.matrix.trials
         << ", \"recovered\": " << o.matrix.recovered
         << ", \"detected\": " << o.matrix.detected
         << ", \"salvaged\": " << o.matrix.salvaged
         << ", \"silent\": " << o.matrix.silent
         << ", \"total_persists\": " << o.matrix.total_persists
         << ", \"pass\": " << (o.crash_pass ? "true" : "false") << "}";
    }
    os << "}";
  }
  os << "\n]}\n";
  std::fprintf(f, "%s", os.str().c_str());
  if (std::fclose(f) != 0) {
    std::fprintf(stderr, "error writing %s: %s\n", opt.json_path.c_str(),
                 std::strerror(errno));
    std::exit(1);
  }
  std::printf("wrote JSON results to %s\n", opt.json_path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, &opt)) return 2;
  if (opt.help) {
    usage();
    return 0;
  }

  const std::optional<kv::Mix> mix = kv::parse_mix(opt.mix);
  if (!mix) {
    std::fprintf(stderr, "unknown mix: %s (expected a, b, c, or f)\n", opt.mix.c_str());
    return 2;
  }

  SystemConfig cfg = default_config();
  cfg.nvm.capacity_bytes = opt.capacity_mb << 20;

  LsmYcsbConfig ycfg;
  ycfg.mix = *mix;
  ycfg.ops = opt.ops;
  ycfg.keys = opt.keys;
  ycfg.value_bytes = static_cast<std::size_t>(opt.value_bytes);
  ycfg.zipf_s = opt.zipf_s;
  ycfg.seed = opt.seed;
  ycfg.engine.memtable_limit_bytes = opt.memtable_bytes;
  ycfg.engine.background_compaction = opt.background_compaction;
  ycfg.verify = opt.verify;

  LsmCrashOptions ccfg;
  ccfg.ops = opt.crash_ops;
  ccfg.seed = opt.seed;

  std::vector<SchemeOutcome> outcomes;
  bool all_pass = true;
  try {
    std::printf("LSM engine: mix %s, %llu ops over %llu keys, memtable %llu B\n\n",
                kv::mix_name(*mix), static_cast<unsigned long long>(opt.ops),
                static_cast<unsigned long long>(opt.keys),
                static_cast<unsigned long long>(opt.memtable_bytes));
    std::printf("%-11s %10s %9s %9s %8s %8s   %s\n", "scheme", "kops/s", "p50_ns",
                "p99_ns", "WA", "WA(log)", opt.crash ? "crash matrix" : "");
    for (const std::string& name : cli::split_csv(opt.schemes)) {
      const auto parsed = cli::parse_scheme(name);
      if (!parsed.has_value()) {
        std::fprintf(stderr, "unknown scheme: %s (try --help)\n", name.c_str());
        return 2;
      }
      const Scheme scheme = *parsed;
      SchemeOutcome o;
      o.label = scheme_name(scheme, cfg.counter_mode);
      o.ycsb = run_lsm_ycsb(cfg, scheme, ycfg);
      if (opt.verify && !o.ycsb.verified) {
        std::fprintf(stderr, "verification FAILED for %s\n", o.label.c_str());
        all_pass = false;
      }
      std::string crash_note;
      if (opt.crash) {
        o.crash_ran = true;
        o.matrix = run_lsm_crash_matrix(cfg, scheme, ccfg, opt.crash_stride, opt.jobs);
        o.crash_pass = o.matrix.silent == 0;
        all_pass = all_pass && o.crash_pass;
        crash_note = std::to_string(o.matrix.trials) + " trials: " +
                     std::to_string(o.matrix.recovered) + " recovered, " +
                     std::to_string(o.matrix.detected) + " detected, " +
                     std::to_string(o.matrix.salvaged) + " salvaged, " +
                     std::to_string(o.matrix.silent) + " silent";
        if (!o.crash_pass) crash_note += "  FAIL";
      }
      std::printf("%-11s %10.1f %9.0f %9.0f %8.2f %8.2f   %s\n", o.label.c_str(),
                  o.ycsb.kops_per_sec, cycles_to_ns(cfg, o.ycsb.all_lat.percentile(50)),
                  cycles_to_ns(cfg, o.ycsb.all_lat.percentile(99)), o.ycsb.write_amp,
                  o.ycsb.logical_write_amp, crash_note.c_str());
      outcomes.push_back(std::move(o));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  if (!opt.json_path.empty()) emit_json(opt, cfg, outcomes);
  if (!all_pass) {
    std::fprintf(stderr, "\nLSM validation FAILED for at least one scheme\n");
    return 1;
  }
  return 0;
}

// steins_sim: command-line front end for the secure NVM simulator.
//
//   steins_sim --scheme steins --mode sc --workload mcf --accesses 200000
//   steins_sim --scheme asit --trace my.trace --crash --audit
//   steins_sim --matrix gc --jobs 8 --json fig09.json
//   steins_sim --list
//
// Runs one (scheme, workload) configuration through the full system (CPU +
// caches + controller), optionally crashes and recovers at the end, audits
// the persisted tree, and prints the statistics the paper's figures use.
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "common/thread_pool.hpp"
#include "crypto/backend.hpp"
#include "schemes/steins.hpp"
#include "sim/experiment.hpp"
#include "sim/system.hpp"
#include "sit/tree_checker.hpp"
#include "trace/trace_file.hpp"
#include "trace/workloads.hpp"

using namespace steins;

namespace {

struct Options {
  std::string scheme = "steins";
  std::string mode = "gc";
  std::string workload = "phash";
  std::string trace_path;
  std::string dump_trace;
  std::string matrix;  // "gc" or "sc": run the figure comparison matrix
  std::string json_path;
  unsigned jobs = 0;  // 0 = ThreadPool::default_jobs()
  std::uint64_t accesses = 100'000;
  std::uint64_t warmup = 10'000;
  std::size_t mcache_kb = 256;
  std::uint64_t capacity_mb = 16 * 1024;
  std::uint64_t seed = 1;
  bool crash = false;
  bool audit = false;
  bool list = false;
  bool help = false;
};

void usage() {
  std::printf(
      "steins_sim - secure NVM simulator (Steins reproduction)\n\n"
      "  --scheme <wb|asit|star|steins|scue>  scheme to run (default steins)\n"
      "  --mode <gc|sc>                   counter mode (default gc)\n"
      "  --workload <name>                built-in workload (default phash)\n"
      "  --trace <file>                   replay a trace file instead\n"
      "  --dump-trace <file>              save the generated trace and exit\n"
      "  --accesses <n> --warmup <n>      trace sizing (default 100000/10000)\n"
      "  --mcache-kb <n>                  metadata cache size (default 256)\n"
      "  --capacity-mb <n>                NVM capacity (default 16384)\n"
      "  --seed <n>                       workload seed (default 1)\n"
      "  --matrix <gc|sc>                 run the paper's (workload x scheme)\n"
      "                                   comparison matrix instead of one cell\n"
      "  --jobs <n>                       matrix worker threads (default: all\n"
      "                                   hardware threads, or STEINS_JOBS)\n"
      "  --json <file>                    write matrix results as JSON\n"
      "  --crypto-backend <ref|ttable|hw|auto>\n"
      "                                   crypto backend (default: auto; or\n"
      "                                   STEINS_CRYPTO_BACKEND). Bit-identical;\n"
      "                                   affects host wall-clock only\n"
      "  --crash                          crash + recover after the run\n"
      "  --audit                          verify the whole persisted tree\n"
      "  --list                           list built-in workloads\n");
}

bool parse(int argc, char** argv, Options* opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* { return (i + 1 < argc) ? argv[++i] : ""; };
    if (arg == "--scheme") {
      opt->scheme = value();
    } else if (arg == "--mode") {
      opt->mode = value();
    } else if (arg == "--workload") {
      opt->workload = value();
    } else if (arg == "--trace") {
      opt->trace_path = value();
    } else if (arg == "--dump-trace") {
      opt->dump_trace = value();
    } else if (arg == "--accesses") {
      opt->accesses = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--warmup") {
      opt->warmup = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--mcache-kb") {
      opt->mcache_kb = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--capacity-mb") {
      opt->capacity_mb = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--seed") {
      opt->seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--matrix") {
      opt->matrix = value();
    } else if (arg == "--jobs") {
      const long v = std::strtol(value(), nullptr, 10);
      opt->jobs = v < 1 ? 1u : static_cast<unsigned>(v);
    } else if (arg == "--json") {
      opt->json_path = value();
    } else if (arg == "--crypto-backend") {
      const std::string name = value();
      if (auto b = crypto::parse_backend(name)) {
        crypto::set_crypto_backend(*b);
      } else if (name != "auto") {
        std::fprintf(stderr, "unknown crypto backend: %s (expected ref|ttable|hw|auto)\n",
                     name.c_str());
        return false;
      }
    } else if (arg == "--crash") {
      opt->crash = true;
    } else if (arg == "--audit") {
      opt->audit = true;
    } else if (arg == "--list") {
      opt->list = true;
    } else if (arg == "--help" || arg == "-h") {
      opt->help = true;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

Scheme parse_scheme(const std::string& name) {
  if (name == "wb") return Scheme::kWriteBack;
  if (name == "asit") return Scheme::kAnubis;
  if (name == "star") return Scheme::kStar;
  if (name == "steins") return Scheme::kSteins;
  if (name == "scue") return Scheme::kScue;
  throw std::invalid_argument("unknown scheme: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, &opt)) return 2;
  if (opt.help) {
    usage();
    return 0;
  }
  // Cheap (<1 ms) and catches a miscompiled or misdetected crypto backend
  // before it can silently skew a whole run.
  if (std::string detail; !crypto::crypto_self_check(&detail)) {
    std::fprintf(stderr, "crypto self-check failed: %s\n", detail.c_str());
    return 1;
  }
  if (opt.list) {
    std::printf("built-in workloads:\n");
    for (const auto& name : workload_names()) std::printf("  %s\n", name.c_str());
    std::printf("KV profiles (YCSB-shaped; see also tools/steins_kv):\n");
    for (const auto& name : kv_workload_names()) std::printf("  %s\n", name.c_str());
    return 0;
  }

  try {
    if (!opt.matrix.empty()) {
      if (opt.matrix != "gc" && opt.matrix != "sc") {
        std::fprintf(stderr, "unknown matrix mode: %s (expected gc or sc)\n", opt.matrix.c_str());
        return 2;
      }
      const auto schemes =
          opt.matrix == "gc" ? gc_comparison_schemes() : sc_comparison_schemes();
      const unsigned jobs = opt.jobs == 0 ? ThreadPool::default_jobs() : opt.jobs;
      SystemConfig cfg = default_config();
      cfg.counter_mode = (opt.matrix == "sc") ? CounterMode::kSplit : CounterMode::kGeneral;
      cfg.secure.metadata_cache.size_bytes = opt.mcache_kb * 1024;
      cfg.nvm.capacity_bytes = opt.capacity_mb << 20;
      std::printf("running the %s comparison matrix: %zu workloads x %zu schemes, %u job%s\n",
                  opt.matrix.c_str(), workload_names().size(), schemes.size(), jobs,
                  jobs == 1 ? "" : "s");
      ExperimentRunner runner(cfg);
      const auto results = runner.run_matrix(workload_names(), schemes, opt.accesses,
                                             opt.warmup, false, jobs);
      const ResultTable table = ExperimentRunner::make_table(
          "execution time (normalized to " + schemes[0].label + ")", results, schemes,
          [](const RunStats& s) { return static_cast<double>(s.cycles); }, schemes[0].label);
      table.print();
      if (!opt.json_path.empty()) {
        std::FILE* f = std::fopen(opt.json_path.c_str(), "w");
        if (f == nullptr) {
          std::fprintf(stderr, "cannot open %s: %s\n", opt.json_path.c_str(),
                       std::strerror(errno));
          return 1;
        }
        std::fprintf(f, "%s\n", table.to_json().c_str());
        if (std::fclose(f) != 0) {
          std::fprintf(stderr, "error writing %s: %s\n", opt.json_path.c_str(),
                       std::strerror(errno));
          return 1;
        }
        std::printf("wrote JSON results to %s\n", opt.json_path.c_str());
      }
      return 0;
    }

    std::unique_ptr<TraceSource> trace;
    if (!opt.trace_path.empty()) {
      trace = std::make_unique<VectorTrace>(read_trace_file(opt.trace_path));
      std::printf("replaying %s\n", opt.trace_path.c_str());
    } else {
      trace = make_workload(opt.workload, opt.accesses + opt.warmup, opt.seed);
    }

    if (!opt.dump_trace.empty()) {
      const auto accesses = collect_trace(*trace);
      if (!write_trace_file(opt.dump_trace, accesses)) {
        std::fprintf(stderr, "cannot write %s\n", opt.dump_trace.c_str());
        return 1;
      }
      std::printf("wrote %zu accesses to %s\n", accesses.size(), opt.dump_trace.c_str());
      return 0;
    }

    SystemConfig cfg = default_config();
    cfg.counter_mode = (opt.mode == "sc") ? CounterMode::kSplit : CounterMode::kGeneral;
    cfg.secure.metadata_cache.size_bytes = opt.mcache_kb * 1024;
    cfg.nvm.capacity_bytes = opt.capacity_mb << 20;
    const Scheme scheme = parse_scheme(opt.scheme);

    System sys(cfg, scheme);
    std::printf("running %s (%s) on '%s'...\n", opt.scheme.c_str(), opt.mode.c_str(),
                opt.trace_path.empty() ? opt.workload.c_str() : opt.trace_path.c_str());
    const RunStats s = sys.run(*trace, opt.trace_path.empty() ? opt.warmup : 0);

    std::printf("\nexecution\n");
    std::printf("  cycles               %llu (%.3f ms simulated)\n",
                static_cast<unsigned long long>(s.cycles), s.seconds(cfg) * 1e3);
    std::printf("  instructions         %llu\n", static_cast<unsigned long long>(s.instructions));
    std::printf("  accesses             %llu\n", static_cast<unsigned long long>(s.accesses));
    std::printf("memory\n");
    std::printf("  read latency         %.0f cycles mean (p50 %.0f, p99 %.0f)\n",
                s.read_latency_cycles, s.read_latency_p50, s.read_latency_p99);
    std::printf("  write latency        %.0f cycles mean (p50 %.0f, p99 %.0f)\n",
                s.write_latency_cycles, s.write_latency_p50, s.write_latency_p99);
    std::printf("  NVM reads/writes     %llu / %llu\n",
                static_cast<unsigned long long>(s.mem.nvm_reads()),
                static_cast<unsigned long long>(s.mem.nvm_writes()));
    std::printf("  metadata cache hit   %.1f%%\n", s.mcache_hit_rate * 100.0);
    std::printf("  hash / AES ops       %llu / %llu\n",
                static_cast<unsigned long long>(s.mem.hash_ops),
                static_cast<unsigned long long>(s.mem.aes_ops));
    std::printf("  energy               %.1f uJ\n", s.energy_nj / 1000.0);

    if (opt.crash) {
      std::printf("\ncrash + recovery\n");
      const RecoveryResult r = sys.crash_and_recover();
      if (!r.supported) {
        std::printf("  recovery unsupported by scheme '%s'\n", opt.scheme.c_str());
      } else if (r.attack_detected) {
        std::printf("  ATTACK DETECTED: %s\n", r.attack_detail.c_str());
        return 1;
      } else {
        std::printf("  recovered %llu nodes in %.4f s (%llu reads, %llu writes)\n",
                    static_cast<unsigned long long>(r.nodes_recovered), r.seconds,
                    static_cast<unsigned long long>(r.nvm_reads),
                    static_cast<unsigned long long>(r.nvm_writes));
      }
    }

    if (opt.audit) {
      auto* base = dynamic_cast<SecureMemoryBase*>(&sys.memory());
      if (base == nullptr) {
        std::printf("audit unavailable for this scheme\n");
      } else {
        base->flush_all_metadata();
        const TreeCheckReport report = check_tree(*base);
        std::printf("\ntree audit: %llu nodes checked, %llu persisted, %zu issue(s)\n",
                    static_cast<unsigned long long>(report.nodes_checked),
                    static_cast<unsigned long long>(report.nodes_persisted),
                    report.issues.size());
        for (const auto& issue : report.issues) {
          std::printf("  L%u i%llu: %s\n", issue.node.level,
                      static_cast<unsigned long long>(issue.node.index), issue.what.c_str());
        }
        if (!report.ok()) return 1;
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}

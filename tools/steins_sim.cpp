// steins_sim: command-line front end for the secure NVM simulator.
//
//   steins_sim --scheme steins --mode sc --workload mcf --accesses 200000
//   steins_sim --scheme asit --trace my.trace --crash --audit
//   steins_sim --matrix gc --jobs 8 --json fig09.json
//   steins_sim --list
//
// Runs one (scheme, workload) configuration through the full system (CPU +
// caches + controller), optionally crashes and recovers at the end, audits
// the persisted tree, and prints the statistics the paper's figures use.
#include <cstdio>
#include <memory>
#include <string>

#include "cli_common.hpp"
#include "common/thread_pool.hpp"
#include "crypto/backend.hpp"
#include "fault/fault.hpp"
#include "schemes/steins.hpp"
#include "sim/experiment.hpp"
#include "sim/system.hpp"
#include "sit/tree_checker.hpp"
#include "trace/trace_file.hpp"
#include "trace/workloads.hpp"

using namespace steins;

namespace {

struct Options {
  std::string scheme = "steins";
  std::string mode = "gc";
  std::string workload = "phash";
  std::string trace_path;
  std::string dump_trace;
  std::string matrix;  // "gc" or "sc": run the figure comparison matrix
  std::string json_path;
  unsigned jobs = 0;  // 0 = ThreadPool::default_jobs()
  std::uint64_t accesses = 100'000;
  std::uint64_t warmup = 10'000;
  std::size_t mcache_kb = 256;
  std::uint64_t capacity_mb = 16 * 1024;
  std::uint64_t seed = 1;
  std::uint64_t nested_crash_boundary = 0;  // 0 = off (DESIGN.md §17)
  bool nested_crash_rearm = false;
  RecoveryRetryPolicy retry_policy;
  bool crash = false;
  bool audit = false;
  bool list = false;
  bool help = false;
};

void usage() {
  std::printf(
      "steins_sim - secure NVM simulator (Steins reproduction)\n\n"
      "  --scheme <wb|asit|star|steins|scue>  scheme to run (default steins)\n"
      "  --mode <gc|sc>                   counter mode (default gc)\n"
      "  --workload <name>                built-in workload (default phash)\n"
      "  --trace <file>                   replay a trace file instead\n"
      "  --dump-trace <file>              save the generated trace and exit\n"
      "  --accesses <n> --warmup <n>      trace sizing (default 100000/10000)\n"
      "  --mcache-kb <n>                  metadata cache size (default 256)\n"
      "  --capacity-mb <n>                NVM capacity (default 16384)\n"
      "  --seed <n>                       workload seed (default 1)\n"
      "  --matrix <gc|sc>                 run the paper's (workload x scheme)\n"
      "                                   comparison matrix instead of one cell\n"
      "  --jobs <n>                       matrix worker threads (default: all\n"
      "                                   hardware threads, or STEINS_JOBS)\n"
      "  --json <file>                    write matrix results as JSON\n"
      "  --crypto-backend <ref|ttable|hw|auto>\n"
      "                                   crypto backend (default: auto; or\n"
      "                                   STEINS_CRYPTO_BACKEND). Bit-identical;\n"
      "                                   affects host wall-clock only\n"
      "  --crash                          crash + recover after the run\n"
      "  --nested-crash <b[,rearm]>       with --crash: crash the recovery\n"
      "                                   itself at persist boundary b (1-based)\n"
      "                                   and re-enter it; ',rearm' re-arms the\n"
      "                                   crash on every retry\n"
      "  --max-recovery-attempts <n>      retry budget for crashed recoveries\n"
      "                                   (default 8)\n"
      "  --audit                          verify the whole persisted tree\n"
      "  --list                           list built-in workloads\n");
}

bool parse(int argc, char** argv, Options* opt) {
  cli::ArgParser p(argc, argv);
  while (p.next()) {
    if (p.is("--scheme")) {
      opt->scheme = p.str();
    } else if (p.is("--mode")) {
      opt->mode = p.str();
    } else if (p.is("--workload")) {
      opt->workload = p.str();
    } else if (p.is("--trace")) {
      opt->trace_path = p.str();
    } else if (p.is("--dump-trace")) {
      opt->dump_trace = p.str();
    } else if (p.is("--accesses")) {
      opt->accesses = p.u64();
    } else if (p.is("--warmup")) {
      opt->warmup = p.u64();
    } else if (p.is("--mcache-kb")) {
      opt->mcache_kb = static_cast<std::size_t>(p.u64());
    } else if (p.is("--capacity-mb")) {
      opt->capacity_mb = p.u64();
    } else if (p.is("--seed")) {
      opt->seed = p.u64();
    } else if (p.is("--matrix")) {
      opt->matrix = p.str();
    } else if (p.is("--jobs")) {
      opt->jobs = p.jobs();
    } else if (p.is("--json")) {
      opt->json_path = p.str();
    } else if (p.is("--crypto-backend")) {
      const std::string name = p.str();
      if (!p.failed() && !cli::apply_crypto_backend(name)) return false;
    } else if (p.is("--crash")) {
      opt->crash = true;
    } else if (p.is("--nested-crash")) {
      if (!cli::parse_nested_crash(p, &opt->nested_crash_boundary,
                                   &opt->nested_crash_rearm)) {
        return false;
      }
    } else if (p.is("--max-recovery-attempts")) {
      const std::uint64_t n = p.u64();
      if (p.failed()) return false;
      if (n == 0) {
        p.invalid("invalid --max-recovery-attempts: expected >= 1");
        return false;
      }
      opt->retry_policy.max_recovery_attempts = static_cast<unsigned>(n);
    } else if (p.is("--audit")) {
      opt->audit = true;
    } else if (p.is("--list")) {
      opt->list = true;
    } else if (p.is("--help", "-h")) {
      opt->help = true;
    } else {
      p.unknown();
    }
  }
  return !p.failed();
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, &opt)) return 2;
  if (opt.help) {
    usage();
    return 0;
  }
  // Cheap (<1 ms) and catches a miscompiled or misdetected crypto backend
  // before it can silently skew a whole run.
  if (std::string detail; !crypto::crypto_self_check(&detail)) {
    std::fprintf(stderr, "crypto self-check failed: %s\n", detail.c_str());
    return 1;
  }
  if (opt.list) {
    std::printf("built-in workloads:\n");
    for (const auto& name : workload_names()) std::printf("  %s\n", name.c_str());
    std::printf("KV profiles (YCSB-shaped; see also tools/steins_kv):\n");
    for (const auto& name : kv_workload_names()) std::printf("  %s\n", name.c_str());
    return 0;
  }

  try {
    if (!opt.matrix.empty()) {
      if (opt.matrix != "gc" && opt.matrix != "sc") {
        std::fprintf(stderr, "unknown matrix mode: %s (expected gc or sc)\n", opt.matrix.c_str());
        return 2;
      }
      const auto schemes =
          opt.matrix == "gc" ? gc_comparison_schemes() : sc_comparison_schemes();
      const unsigned jobs = opt.jobs == 0 ? ThreadPool::default_jobs() : opt.jobs;
      SystemConfig cfg = default_config();
      cfg.counter_mode = (opt.matrix == "sc") ? CounterMode::kSplit : CounterMode::kGeneral;
      cfg.secure.metadata_cache.size_bytes = opt.mcache_kb * 1024;
      cfg.nvm.capacity_bytes = opt.capacity_mb << 20;
      std::printf("running the %s comparison matrix: %zu workloads x %zu schemes, %u job%s\n",
                  opt.matrix.c_str(), workload_names().size(), schemes.size(), jobs,
                  jobs == 1 ? "" : "s");
      ExperimentRunner runner(cfg);
      const auto results = runner.run_matrix(workload_names(), schemes, opt.accesses,
                                             opt.warmup, false, jobs);
      const ResultTable table = ExperimentRunner::make_table(
          "execution time (normalized to " + schemes[0].label + ")", results, schemes,
          [](const RunStats& s) { return static_cast<double>(s.cycles); }, schemes[0].label);
      table.print();
      if (!opt.json_path.empty()) {
        if (!cli::write_json_file(opt.json_path, table.to_json() + "\n")) return 1;
        std::printf("wrote JSON results to %s\n", opt.json_path.c_str());
      }
      return 0;
    }

    std::unique_ptr<TraceSource> trace;
    if (!opt.trace_path.empty()) {
      trace = std::make_unique<VectorTrace>(read_trace_file(opt.trace_path));
      std::printf("replaying %s\n", opt.trace_path.c_str());
    } else {
      trace = make_workload(opt.workload, opt.accesses + opt.warmup, opt.seed);
    }

    if (!opt.dump_trace.empty()) {
      const auto accesses = collect_trace(*trace);
      if (!write_trace_file(opt.dump_trace, accesses)) {
        std::fprintf(stderr, "cannot write %s\n", opt.dump_trace.c_str());
        return 1;
      }
      std::printf("wrote %zu accesses to %s\n", accesses.size(), opt.dump_trace.c_str());
      return 0;
    }

    SystemConfig cfg = default_config();
    cfg.counter_mode = (opt.mode == "sc") ? CounterMode::kSplit : CounterMode::kGeneral;
    cfg.secure.metadata_cache.size_bytes = opt.mcache_kb * 1024;
    cfg.nvm.capacity_bytes = opt.capacity_mb << 20;
    const auto scheme_opt = cli::parse_scheme(opt.scheme);
    if (!scheme_opt.has_value()) {
      std::fprintf(stderr, "unknown scheme: %s (try --help)\n", opt.scheme.c_str());
      return 2;
    }
    const Scheme scheme = *scheme_opt;

    System sys(cfg, scheme);
    std::printf("running %s (%s) on '%s'...\n", opt.scheme.c_str(), opt.mode.c_str(),
                opt.trace_path.empty() ? opt.workload.c_str() : opt.trace_path.c_str());
    const RunStats s = sys.run(*trace, opt.trace_path.empty() ? opt.warmup : 0);

    std::printf("\nexecution\n");
    std::printf("  cycles               %llu (%.3f ms simulated)\n",
                static_cast<unsigned long long>(s.cycles), s.seconds(cfg) * 1e3);
    std::printf("  instructions         %llu\n", static_cast<unsigned long long>(s.instructions));
    std::printf("  accesses             %llu\n", static_cast<unsigned long long>(s.accesses));
    std::printf("memory\n");
    std::printf("  read latency         %.0f cycles mean (p50 %.0f, p99 %.0f)\n",
                s.read_latency_cycles, s.read_latency_p50, s.read_latency_p99);
    std::printf("  write latency        %.0f cycles mean (p50 %.0f, p99 %.0f)\n",
                s.write_latency_cycles, s.write_latency_p50, s.write_latency_p99);
    std::printf("  NVM reads/writes     %llu / %llu\n",
                static_cast<unsigned long long>(s.mem.nvm_reads()),
                static_cast<unsigned long long>(s.mem.nvm_writes()));
    std::printf("  metadata cache hit   %.1f%%\n", s.mcache_hit_rate * 100.0);
    std::printf("  hash / AES ops       %llu / %llu\n",
                static_cast<unsigned long long>(s.mem.hash_ops),
                static_cast<unsigned long long>(s.mem.aes_ops));
    std::printf("  energy               %.1f uJ\n", s.energy_nj / 1000.0);

    if (opt.crash) {
      std::printf("\ncrash + recovery\n");
      FaultInjector injector(FaultPlan::derive(FaultClass::kNone, opt.seed, 0));
      if (opt.nested_crash_boundary != 0) {
        injector.arm_recovery_crash(opt.nested_crash_boundary, opt.nested_crash_rearm);
        sys.set_fault_injector(&injector);
      }
      sys.set_recovery_policy(opt.retry_policy);
      const RecoveryResult r = sys.crash_and_recover();
      sys.set_fault_injector(nullptr);
      if (!r.supported) {
        std::printf("  recovery unsupported by scheme '%s'\n", opt.scheme.c_str());
      } else if (r.attack_detected) {
        std::printf("  ATTACK DETECTED: %s\n", r.attack_detail.c_str());
        return 1;
      } else if (r.recovery_gave_up) {
        std::printf("  UNRECOVERABLE: %s\n", r.status.message().c_str());
        return 1;
      } else {
        std::printf("  recovered %llu nodes in %.4f s (%llu reads, %llu writes)\n",
                    static_cast<unsigned long long>(r.nodes_recovered), r.seconds,
                    static_cast<unsigned long long>(r.nvm_reads),
                    static_cast<unsigned long long>(r.nvm_writes));
        if (r.attempts.size() > 1) {
          std::printf("  converged after %zu recovery attempts:\n", r.attempts.size());
          for (std::size_t i = 0; i < r.attempts.size(); ++i) {
            const RecoveryAttempt& a = r.attempts[i];
            if (a.crashed) {
              std::printf("    attempt %zu: crashed at boundary %llu (%s), "
                          "%.4f s, cursor %llu\n",
                          i + 1, static_cast<unsigned long long>(a.crash_boundary),
                          a.crash_stage.c_str(), a.seconds,
                          static_cast<unsigned long long>(a.resume_cursor));
            } else {
              std::printf("    attempt %zu: converged, %.4f s\n", i + 1, a.seconds);
            }
          }
        }
      }
    }

    if (opt.audit) {
      auto* base = dynamic_cast<SecureMemoryBase*>(&sys.memory());
      if (base == nullptr) {
        std::printf("audit unavailable for this scheme\n");
      } else {
        base->flush_all_metadata();
        const TreeCheckReport report = check_tree(*base);
        std::printf("\ntree audit: %llu nodes checked, %llu persisted, %zu issue(s)\n",
                    static_cast<unsigned long long>(report.nodes_checked),
                    static_cast<unsigned long long>(report.nodes_persisted),
                    report.issues.size());
        for (const auto& issue : report.issues) {
          std::printf("  L%u i%llu: %s\n", issue.node.level,
                      static_cast<unsigned long long>(issue.node.index), issue.what.c_str());
        }
        if (!report.ok()) return 1;
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}

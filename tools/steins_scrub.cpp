// steins_scrub: drive the runtime fault-tolerance machinery interactively.
//
//   steins_scrub --scheme steins --blocks 512 --correctable 24 --uncorrectable 4
//   steins_scrub --epochs 16 --lines-per-epoch 32 --json scrub.json
//
// Writes a seeded working set through the secure path, injects a mix of
// correctable (marginal-cell, absorbed by ECC) and uncorrectable media
// faults into resident data lines, then runs patrol-scrub epochs by hand.
// The scrub pass rewrites correctable lines in place and retires dead
// lines to the remap pool (quarantining them until a fresh write lands).
// The tool then audits every block: a read must return the exact written
// data, be corrected transparently, or fail with a typed unavailable
// error — wrong plaintext exits nonzero. Finally it rewrites the
// quarantined lines to demonstrate the remap/rewrite lifecycle.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "cli_common.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "fault/fault.hpp"

using namespace steins;

namespace {

struct Options {
  std::string scheme = "steins";
  std::string mode = "gc";
  std::uint64_t capacity_mb = 16;
  std::uint64_t blocks = 512;          // working-set size
  std::uint64_t correctable = 24;      // injected marginal-cell faults
  std::uint64_t uncorrectable = 4;     // injected dead lines
  std::uint64_t epochs = 8;            // patrol epochs to run
  unsigned lines_per_epoch = 64;
  std::uint64_t seed = 42;
  std::string json_path;
  bool no_mac_verify = false;
  bool recover = false;                     // crash + recover after the lifecycle
  std::uint64_t nested_crash_boundary = 0;  // 0 = off (DESIGN.md §17)
  bool nested_crash_rearm = false;
  RecoveryRetryPolicy retry_policy;
  bool help = false;
};

void usage() {
  std::printf(
      "steins_scrub - ECC, patrol-scrub and quarantine lifecycle driver\n\n"
      "  --scheme <name>        wb|asit|star|scue|steins (default steins)\n"
      "  --mode <gc|sc>         counter mode (default gc)\n"
      "  --capacity-mb <n>      NVM capacity (default 16)\n"
      "  --blocks <n>           working-set blocks to write (default 512)\n"
      "  --correctable <n>      marginal-cell faults to inject (default 24)\n"
      "  --uncorrectable <n>    dead lines to inject (default 4)\n"
      "  --epochs <n>           patrol-scrub epochs to run (default 8)\n"
      "  --lines-per-epoch <n>  scrub budget per epoch (default 64)\n"
      "  --seed <n>             workload + fault placement seed (default 42)\n"
      "  --no-mac-verify        patrol without MAC-verifying data lines\n"
      "  --recover              crash + recover over the scarred image at the\n"
      "                         end, printing per-attempt recovery telemetry\n"
      "  --nested-crash <b[,rearm]>  crash that recovery itself at persist\n"
      "                         boundary b (1-based; implies --recover) and\n"
      "                         re-enter it; ',rearm' re-arms every retry\n"
      "  --max-recovery-attempts <n>  retry budget for crashed recoveries\n"
      "                         (default 8)\n"
      "  --json <file>          write the outcome as JSON\n"
      "  --crypto-backend <ref|ttable|hw|auto>  crypto backend (bit-identical;\n"
      "                         host wall-clock only; or STEINS_CRYPTO_BACKEND)\n");
}

bool parse(int argc, char** argv, Options* opt) {
  cli::ArgParser p(argc, argv);
  while (p.next()) {
    if (p.is("--scheme")) {
      opt->scheme = p.str();
    } else if (p.is("--mode")) {
      opt->mode = p.str();
    } else if (p.is("--capacity-mb")) {
      opt->capacity_mb = p.u64();
    } else if (p.is("--blocks")) {
      opt->blocks = p.u64();
    } else if (p.is("--correctable")) {
      opt->correctable = p.u64();
    } else if (p.is("--uncorrectable")) {
      opt->uncorrectable = p.u64();
    } else if (p.is("--epochs")) {
      opt->epochs = p.u64();
    } else if (p.is("--lines-per-epoch")) {
      opt->lines_per_epoch = static_cast<unsigned>(p.u64());
    } else if (p.is("--seed")) {
      opt->seed = p.u64();
    } else if (p.is("--no-mac-verify")) {
      opt->no_mac_verify = true;
    } else if (p.is("--recover")) {
      opt->recover = true;
    } else if (p.is("--nested-crash")) {
      if (!cli::parse_nested_crash(p, &opt->nested_crash_boundary,
                                   &opt->nested_crash_rearm)) {
        return false;
      }
      opt->recover = true;
    } else if (p.is("--max-recovery-attempts")) {
      const std::uint64_t n = p.u64();
      if (p.failed()) return false;
      if (n == 0) {
        p.invalid("invalid --max-recovery-attempts: expected >= 1");
        return false;
      }
      opt->retry_policy.max_recovery_attempts = static_cast<unsigned>(n);
    } else if (p.is("--json")) {
      opt->json_path = p.str();
    } else if (p.is("--crypto-backend")) {
      const std::string name = p.str();
      if (!p.failed() && !cli::apply_crypto_backend(name)) return false;
    } else if (p.is("--help", "-h")) {
      opt->help = true;
    } else {
      p.unknown();
    }
  }
  return !p.failed();
}

Block pattern_block(std::uint64_t seed, Addr addr) {
  Block b{};
  Xoshiro256 rng(seed ^ (addr * 0x9e3779b97f4a7c15ULL));
  for (std::size_t i = 0; i < kBlockSize; i += 8) {
    const std::uint64_t w = rng.next();
    std::memcpy(b.data() + i, &w, 8);
  }
  return b;
}

struct AuditCounts {
  std::uint64_t ok = 0;           // exact data back
  std::uint64_t unavailable = 0;  // typed quarantine/uncorrectable error
  std::uint64_t wrong = 0;        // wrong plaintext — always a bug
};

AuditCounts audit(SecureMemoryBase& mem, const Options& opt, Cycle& now) {
  AuditCounts counts;
  for (std::uint64_t i = 0; i < opt.blocks; ++i) {
    const Addr addr = i * kBlockSize;
    Block got{};
    try {
      now = mem.read_block(addr, now, &got);
    } catch (const StatusError& e) {
      if (!is_unavailable(e.code())) throw;
      ++counts.unavailable;
      continue;
    }
    if (got == pattern_block(opt.seed, addr)) {
      ++counts.ok;
    } else {
      ++counts.wrong;
      std::fprintf(stderr, "WRONG PLAINTEXT at block %llu\n",
                   static_cast<unsigned long long>(i));
    }
  }
  return counts;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, &opt)) return 2;
  if (opt.help) {
    usage();
    return 0;
  }

  const auto scheme = cli::parse_scheme(opt.scheme);
  if (!scheme.has_value()) {
    std::fprintf(stderr, "unknown scheme: %s (try --help)\n", opt.scheme.c_str());
    return 2;
  }

  try {
    SystemConfig cfg = default_config();
    cfg.nvm.capacity_bytes = opt.capacity_mb * 1024 * 1024;
    cfg.counter_mode = opt.mode == "sc" ? CounterMode::kSplit : CounterMode::kGeneral;
    cfg.secure.ft.ecc_enabled = true;
    cfg.secure.ft.scrub_interval_accesses = 0;  // epochs are driven by hand
    cfg.secure.ft.scrub_lines_per_epoch = opt.lines_per_epoch;
    cfg.secure.ft.scrub_verify_macs = !opt.no_mac_verify;

    const std::unique_ptr<SecureMemory> mem_owner = make_scheme(*scheme, cfg);
    auto* mem = dynamic_cast<SecureMemoryBase*>(mem_owner.get());
    if (mem == nullptr) {
      std::fprintf(stderr, "scheme does not expose the scrub interface\n");
      return 1;
    }

    // Phase 1: write the seeded working set through the secure path.
    Cycle now = 0;
    for (std::uint64_t i = 0; i < opt.blocks; ++i) {
      const Addr addr = i * kBlockSize;
      now = mem->write_block(addr, pattern_block(opt.seed, addr), now);
    }
    mem->flush_all_metadata();

    // Phase 2: place faults on distinct resident data lines.
    NvmDevice& dev = mem->device();
    const std::vector<Addr> resident = dev.resident_blocks(0, opt.blocks * kBlockSize);
    Xoshiro256 rng(opt.seed * 0x2545f4914f6cdd1dULL + 11);
    std::vector<Addr> targets = resident;
    for (std::size_t i = targets.size(); i > 1; --i) {
      std::swap(targets[i - 1], targets[rng.below(i)]);
    }
    const std::uint64_t n_unc = std::min<std::uint64_t>(opt.uncorrectable, targets.size());
    const std::uint64_t n_cor =
        std::min<std::uint64_t>(opt.correctable, targets.size() - n_unc);
    std::vector<Addr> dead_lines;
    for (std::uint64_t i = 0; i < n_unc; ++i) {
      dev.inject_ecc_error(targets[i], static_cast<unsigned>(rng.below(kBlockSize * 8)),
                           /*correctable=*/false, 0);
      dead_lines.push_back(targets[i]);
    }
    for (std::uint64_t i = 0; i < n_cor; ++i) {
      dev.inject_ecc_error(targets[n_unc + i],
                           static_cast<unsigned>(rng.below(kBlockSize * 8)),
                           /*correctable=*/true, static_cast<unsigned>(rng.below(3)));
    }
    std::printf("injected %llu correctable + %llu uncorrectable faults over %zu lines\n",
                static_cast<unsigned long long>(n_cor),
                static_cast<unsigned long long>(n_unc), resident.size());

    // Phase 3: patrol. Scrub rewrites marginal lines and retires dead ones.
    for (std::uint64_t e = 0; e < opt.epochs; ++e) mem->scrub_epoch(now);

    // Phase 4: demand-read audit of every block.
    const AuditCounts after_scrub = audit(*mem, opt, now);
    std::printf("\naudit after scrub: %llu ok, %llu typed-unavailable, %llu wrong\n",
                static_cast<unsigned long long>(after_scrub.ok),
                static_cast<unsigned long long>(after_scrub.unavailable),
                static_cast<unsigned long long>(after_scrub.wrong));

    // Phase 5: rewrite the dead lines. A remapped line accepts the fresh
    // write and leaves quarantine; without a spare the write fails typed.
    std::uint64_t rewritten = 0;
    std::uint64_t write_blocked = 0;
    for (const Addr addr : dead_lines) {
      try {
        now = mem->write_block(addr, pattern_block(opt.seed, addr), now);
        ++rewritten;
      } catch (const StatusError& e) {
        if (!is_unavailable(e.code())) throw;
        ++write_blocked;
      }
    }
    const AuditCounts final_audit = audit(*mem, opt, now);
    std::printf("rewrite: %llu accepted (remapped), %llu rejected (pool exhausted)\n",
                static_cast<unsigned long long>(rewritten),
                static_cast<unsigned long long>(write_blocked));
    std::printf("final audit: %llu ok, %llu typed-unavailable, %llu wrong\n\n",
                static_cast<unsigned long long>(final_audit.ok),
                static_cast<unsigned long long>(final_audit.unavailable),
                static_cast<unsigned long long>(final_audit.wrong));

    const FtStats& ft = mem->ft_stats();
    std::printf("%s\n", ft.describe().c_str());
    std::printf("quarantine map: %zu entries (%zu lines, %zu ranges)\n",
                mem->quarantine().size(), mem->quarantine().line_count(),
                mem->quarantine().range_count());

    // Phase 6: optional crash + re-entrant recovery over the scarred image
    // (DESIGN.md §17), surfacing the per-attempt telemetry the recovery
    // report carries: modeled time, nested-crash boundary and stage, and
    // the persisted resume-cursor position of each attempt.
    RecoveryReport rec;
    bool rec_ran = false;
    AuditCounts post_rec;
    bool post_rec_ran = false;
    if (opt.recover) {
      rec_ran = true;
      FaultInjector injector(FaultPlan::derive(FaultClass::kNone, opt.seed, 0));
      if (opt.nested_crash_boundary != 0) {
        injector.arm_recovery_crash(opt.nested_crash_boundary, opt.nested_crash_rearm);
      }
      mem_owner->crash();
      mem_owner->set_fault_injector(&injector);
      rec = recover_with_retry(*mem_owner, &injector, opt.retry_policy);
      mem_owner->set_fault_injector(nullptr);

      std::printf("\ncrash + recovery\n");
      if (!rec.supported) {
        std::printf("  recovery unsupported by scheme '%s'\n", opt.scheme.c_str());
      } else if (rec.recovery_gave_up) {
        std::printf("  UNRECOVERABLE: %s\n", rec.status.message().c_str());
      } else if (rec.attack_detected) {
        std::printf("  ATTACK DETECTED: %s\n", rec.attack_detail.c_str());
      } else {
        std::printf("  converged in %llu attempt(s), %.4f s modeled "
                    "(%llu reads, %llu writes)\n",
                    static_cast<unsigned long long>(rec.attempt_count()), rec.seconds,
                    static_cast<unsigned long long>(rec.nvm_reads),
                    static_cast<unsigned long long>(rec.nvm_writes));
        for (std::size_t i = 0; i < rec.attempts.size(); ++i) {
          const RecoveryAttempt& a = rec.attempts[i];
          if (a.crashed) {
            std::printf("  attempt %zu: crashed at boundary %llu (%s), %.4f s, "
                        "resume cursor %llu\n",
                        i + 1, static_cast<unsigned long long>(a.crash_boundary),
                        a.crash_stage.c_str(), a.seconds,
                        static_cast<unsigned long long>(a.resume_cursor));
          } else {
            std::printf("  attempt %zu: converged, %.4f s\n", i + 1, a.seconds);
          }
        }
        // The recovered image must still serve every block exactly or fail
        // typed — silent divergence after a (re-entered) recovery is a bug.
        post_rec = audit(*mem, opt, now);
        post_rec_ran = true;
        std::printf("  post-recovery audit: %llu ok, %llu typed-unavailable, "
                    "%llu wrong\n",
                    static_cast<unsigned long long>(post_rec.ok),
                    static_cast<unsigned long long>(post_rec.unavailable),
                    static_cast<unsigned long long>(post_rec.wrong));
      }
    }

    std::string recovery_json = "null";
    if (rec_ran) {
      std::string attempts_json = "[";
      for (std::size_t i = 0; i < rec.attempts.size(); ++i) {
        const RecoveryAttempt& a = rec.attempts[i];
        if (i > 0) attempts_json += ", ";
        attempts_json += "{\"crashed\": " + std::string(a.crashed ? "true" : "false") +
                         ", \"boundary\": " + std::to_string(a.crash_boundary) +
                         ", \"stage\": \"" + a.crash_stage +
                         "\", \"seconds\": " + std::to_string(a.seconds) +
                         ", \"resume_cursor\": " + std::to_string(a.resume_cursor) + "}";
      }
      attempts_json += "]";
      recovery_json =
          "{\"supported\": " + std::string(rec.supported ? "true" : "false") +
          ", \"gave_up\": " + std::string(rec.recovery_gave_up ? "true" : "false") +
          ", \"attempts\": " + std::to_string(rec.attempt_count()) +
          ", \"seconds\": " + std::to_string(rec.seconds) +
          ", \"resume_cursor\": " + std::to_string(rec.resume_cursor) +
          ", \"attempt_log\": " + attempts_json + "}";
    }

    if (!opt.json_path.empty()) {
      std::FILE* f = std::fopen(opt.json_path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot open %s: %s\n", opt.json_path.c_str(),
                     std::strerror(errno));
        return 1;
      }
      std::fprintf(
          f,
          "{\n \"scheme\": \"%s\",\n \"blocks\": %llu,\n"
          " \"injected_correctable\": %llu,\n \"injected_uncorrectable\": %llu,\n"
          " \"scrub_passes\": %llu,\n \"scrub_lines\": %llu,\n"
          " \"scrub_corrected\": %llu,\n \"scrub_detected\": %llu,\n"
          " \"lines_quarantined\": %llu,\n \"lines_remapped\": %llu,\n"
          " \"audit_ok\": %llu,\n \"audit_unavailable\": %llu,\n"
          " \"audit_wrong\": %llu,\n \"rewritten\": %llu,\n"
          " \"write_blocked\": %llu,\n \"recovery\": %s\n}\n",
          opt.scheme.c_str(), static_cast<unsigned long long>(opt.blocks),
          static_cast<unsigned long long>(n_cor), static_cast<unsigned long long>(n_unc),
          static_cast<unsigned long long>(ft.scrub_passes),
          static_cast<unsigned long long>(ft.scrub_lines),
          static_cast<unsigned long long>(ft.scrub_corrected),
          static_cast<unsigned long long>(ft.scrub_detected),
          static_cast<unsigned long long>(ft.lines_quarantined),
          static_cast<unsigned long long>(ft.lines_remapped),
          static_cast<unsigned long long>(final_audit.ok),
          static_cast<unsigned long long>(final_audit.unavailable),
          static_cast<unsigned long long>(final_audit.wrong),
          static_cast<unsigned long long>(rewritten),
          static_cast<unsigned long long>(write_blocked), recovery_json.c_str());
      if (std::fclose(f) != 0) {
        std::fprintf(stderr, "error writing %s\n", opt.json_path.c_str());
        return 1;
      }
      std::printf("wrote JSON results to %s\n", opt.json_path.c_str());
    }

    if (after_scrub.wrong > 0 || final_audit.wrong > 0 ||
        (post_rec_ran && post_rec.wrong > 0)) {
      std::fprintf(stderr, "\nFAIL: wrong plaintext served\n");
      return 1;
    }
    if (rec_ran && rec.supported &&
        (rec.recovery_gave_up || rec.attack_detected || !rec.status.ok())) {
      std::fprintf(stderr, "\nFAIL: recovery did not converge clean\n");
      return 1;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}

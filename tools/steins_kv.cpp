// steins_kv: the secure-NVM key-value service front end.
//
//   steins_kv --mix a --clients 4 --crash
//   steins_kv --scheme steins,scue --mix f --ops 200000 --json kv.json
//
// For each scheme it runs the closed-loop multi-client YCSB driver over
// MultiControllerMemory (throughput + tail latency), and with --crash also
// the KV crash-recovery validation: a deterministic op script killed at a
// seeded-random persist boundary, recovered, reopened, and diffed against
// the committed model. Steins/ASIT/STAR/SCUE must verify; WB must be
// detected as unrecoverable. Exit status is nonzero if any scheme fails
// its criterion.
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "cli_common.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "crypto/backend.hpp"
#include "kv/kv_crash.hpp"
#include "kv/serving.hpp"
#include "kv/ycsb.hpp"

using namespace steins;
using namespace steins::kv;

namespace {

struct Options {
  std::string schemes = "wb,asit,star,scue,steins";
  std::string mix = "a";
  unsigned clients = 4;
  unsigned controllers = 2;
  std::uint64_t ops = 100'000;
  std::uint64_t keys = 10'000;
  std::uint64_t slots = 1 << 15;
  std::uint64_t value_bytes = 24;
  double zipf_s = 0.99;
  std::uint64_t seed = 1;
  std::uint64_t capacity_mb = 256;
  std::uint64_t mcache_kb = 256;
  std::uint64_t crash_ops = 64;
  std::uint64_t nested_crash_boundary = 0;  // 0 = off (DESIGN.md §17)
  bool nested_crash_rearm = false;
  RecoveryRetryPolicy retry_policy;
  unsigned jobs = ThreadPool::default_jobs();
  std::string json_path;
  bool crash = false;
  bool serve = false;
  unsigned shards = 2;
  std::string routing = "load";
  std::uint64_t queue_depth = 0;
  std::uint64_t group_commit = 64;
  bool help = false;
};

void usage() {
  std::printf(
      "steins_kv - crash-consistent KV service over the secure NVM simulator\n\n"
      "  --scheme <list>      comma-separated wb|asit|star|scue|steins (default all)\n"
      "  --mix <a|b|c|f>      YCSB mix (default a)\n"
      "  --clients <n>        closed-loop clients (default 4)\n"
      "  --controllers <n>    memory controllers / DIMMs (default 2)\n"
      "  --ops <n>            measured KV operations (default 100000)\n"
      "  --keys <n>           preloaded keys (default 10000)\n"
      "  --slots <n>          table slots, power of two (default 32768)\n"
      "  --value-bytes <n>    value payload size, <= 32 (default 24)\n"
      "  --zipf <s>           Zipfian skew (default 0.99)\n"
      "  --seed <n>           driver + crash-boundary seed (default 1)\n"
      "  --capacity-mb <n>    NVM capacity (default 256)\n"
      "  --mcache-kb <n>      metadata cache size (default 256)\n"
      "  --jobs <n>           worker threads for controller replay (default\n"
      "                       STEINS_JOBS or hardware threads; any value is\n"
      "                       bit-identical to --jobs 1)\n"
      "  --serve              run the concurrent sharded serving engine instead\n"
      "                       of the interleaved YCSB driver (one worker thread\n"
      "                       per shard; --jobs caps the threads, bit-identical)\n"
      "  --shards <n>         serving shards == controllers (default 2)\n"
      "  --routing <hash|load>  key->shard routing policy (default load)\n"
      "  --queue-depth <n>    per-shard admitted ops per epoch; overflow sheds\n"
      "                       into typed degraded verdicts (default 0 = unbounded)\n"
      "  --group-commit <n>   commit words buffered per shard before one\n"
      "                       coalesced commit-block flush (default 64, 0 = off)\n"
      "  --crash              also run crash-recovery validation per scheme\n"
      "  --crash-ops <n>      ops in the crash-validation script (default 64)\n"
      "  --nested-crash <b[,rearm]>  with --crash: crash the recovery itself at\n"
      "                       persist boundary b (1-based) and re-enter it;\n"
      "                       ',rearm' re-arms the crash on every retry\n"
      "  --max-recovery-attempts <n>  retry budget for crashed recoveries\n"
      "                       (default 8)\n"
      "  --json <file>        write results (same numbers as printed) as JSON\n"
      "  --crypto-backend <ref|ttable|hw|auto>  crypto backend (bit-identical;\n"
      "                       host wall-clock only; or STEINS_CRYPTO_BACKEND)\n");
}

bool parse(int argc, char** argv, Options* opt) {
  cli::ArgParser p(argc, argv);
  while (p.next()) {
    if (p.is("--scheme", "--schemes")) {
      opt->schemes = p.str();
    } else if (p.is("--mix")) {
      opt->mix = p.str();
    } else if (p.is("--clients")) {
      opt->clients = static_cast<unsigned>(p.u64());
    } else if (p.is("--controllers")) {
      opt->controllers = static_cast<unsigned>(p.u64());
    } else if (p.is("--ops")) {
      opt->ops = p.u64();
    } else if (p.is("--keys")) {
      opt->keys = p.u64();
    } else if (p.is("--slots")) {
      opt->slots = p.u64();
    } else if (p.is("--value-bytes")) {
      opt->value_bytes = p.u64();
    } else if (p.is("--zipf")) {
      opt->zipf_s = p.f64();
    } else if (p.is("--seed")) {
      opt->seed = p.u64();
    } else if (p.is("--capacity-mb")) {
      opt->capacity_mb = p.u64();
    } else if (p.is("--mcache-kb")) {
      opt->mcache_kb = p.u64();
    } else if (p.is("--jobs")) {
      opt->jobs = p.jobs();
    } else if (p.is("--serve")) {
      opt->serve = true;
    } else if (p.is("--shards")) {
      opt->shards = static_cast<unsigned>(p.u64());
    } else if (p.is("--routing")) {
      opt->routing = p.str();
    } else if (p.is("--queue-depth")) {
      opt->queue_depth = p.u64();
    } else if (p.is("--group-commit")) {
      opt->group_commit = p.u64();
    } else if (p.is("--crash")) {
      opt->crash = true;
    } else if (p.is("--crash-ops")) {
      opt->crash_ops = p.u64();
    } else if (p.is("--nested-crash")) {
      if (!cli::parse_nested_crash(p, &opt->nested_crash_boundary,
                                   &opt->nested_crash_rearm)) {
        return false;
      }
    } else if (p.is("--max-recovery-attempts")) {
      const std::uint64_t n = p.u64();
      if (p.failed()) return false;
      if (n == 0) {
        p.invalid("invalid --max-recovery-attempts: expected >= 1");
        return false;
      }
      opt->retry_policy.max_recovery_attempts = static_cast<unsigned>(n);
    } else if (p.is("--json")) {
      opt->json_path = p.str();
    } else if (p.is("--crypto-backend")) {
      const std::string name = p.str();
      if (!p.failed() && !cli::apply_crypto_backend(name)) return false;
    } else if (p.is("--help", "-h")) {
      opt->help = true;
    } else {
      p.unknown();
    }
  }
  return !p.failed();
}

struct SchemeOutcome {
  std::string label;
  YcsbResult ycsb;
  ServingResult serving;  // filled in --serve mode instead of ycsb
  bool crash_ran = false;
  KvCrashReport crash;
  ServingCrashReport scrash;  // --serve --crash
  bool crash_pass = true;
};

double cycles_to_ns(const SystemConfig& cfg, double cycles) {
  return cfg.cycles_to_seconds(1) * 1e9 * cycles;
}

void emit_json(const Options& opt, const SystemConfig& cfg,
               const std::vector<SchemeOutcome>& outcomes) {
  std::FILE* f = std::fopen(opt.json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s: %s\n", opt.json_path.c_str(),
                 std::strerror(errno));
    std::exit(1);
  }
  std::ostringstream os;
  os << "{\"mix\": \"" << json_escape(opt.mix) << "\", \"clients\": " << opt.clients
     << ", \"controllers\": " << opt.controllers << ", \"ops\": " << opt.ops
     << ", \"keys\": " << opt.keys << ", \"value_bytes\": " << opt.value_bytes
     << ", \"zipf_s\": " << opt.zipf_s << ", \"seed\": " << opt.seed;
  if (opt.serve) {
    os << ", \"serve\": true, \"shards\": " << opt.shards << ", \"routing\": \""
       << json_escape(opt.routing) << "\", \"queue_depth\": " << opt.queue_depth
       << ", \"group_commit\": " << opt.group_commit;
  }
  os << ",\n \"schemes\": [";
  char buf[64];
  const auto num = [&](double v) {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return std::string(buf);
  };
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const SchemeOutcome& o = outcomes[i];
    const auto lat = [&](const LatencyHistogram& h) {
      return "{\"mean_ns\": " + num(cycles_to_ns(cfg, h.mean())) +
             ", \"p50_ns\": " + num(cycles_to_ns(cfg, h.percentile(50))) +
             ", \"p95_ns\": " + num(cycles_to_ns(cfg, h.percentile(95))) +
             ", \"p99_ns\": " + num(cycles_to_ns(cfg, h.percentile(99))) +
             ", \"p999_ns\": " + num(cycles_to_ns(cfg, h.percentile(99.9))) + "}";
    };
    if (opt.serve) {
      const ServingResult& s = o.serving;
      os << (i ? ",\n  " : "\n  ") << "{\"scheme\": \"" << json_escape(o.label)
         << "\", \"kops_per_sec\": " << num(s.kops_per_sec)
         << ", \"offered_ops\": " << s.offered_ops << ", \"ops\": " << s.ops
         << ", \"reads\": " << s.reads << ", \"updates\": " << s.updates
         << ", \"shed_ops\": " << s.shed_ops
         << ", \"degraded_shards\": " << s.degraded_shards
         << ", \"nvm_writes\": " << s.nvm_writes
         << ", \"commit_writes\": " << s.commit_writes
         << ", \"image_digest\": \"" << std::hex << s.image_digest << std::dec
         << "\", \"mean_batch\": " << num(s.batch_sizes.mean())
         << ", \"all\": " << lat(s.all_lat) << ", \"read\": " << lat(s.read_lat)
         << ", \"update\": " << lat(s.update_lat) << ", \"shards\": [";
      for (std::size_t sh = 0; sh < s.shards.size(); ++sh) {
        const ShardServingStats& st = s.shards[sh];
        os << (sh ? ", " : "") << "{\"keys\": " << st.keys << ", \"ops\": " << st.ops
           << ", \"shed\": " << st.shed
           << ", \"occupancy\": " << num(st.occupancy)
           << ", \"commit_flushes\": " << st.commit_flushes
           << ", \"mean_batch\": " << num(st.mean_batch) << "}";
      }
      os << "]";
      if (o.crash_ran) {
        os << ", \"crash\": {\"pass\": " << (o.crash_pass ? "true" : "false")
           << ", \"crash_at\": " << o.scrash.crash_at
           << ", \"total_accesses\": " << o.scrash.total_accesses
           << ", \"committed_slots\": " << o.scrash.committed_slots
           << ", \"verified\": " << (o.scrash.verified ? "true" : "false")
           << ", \"salvaged\": " << (o.scrash.salvaged ? "true" : "false")
           << ", \"recovery_seconds\": " << num(o.scrash.recovery_seconds)
           << ", \"detail\": \"" << json_escape(o.scrash.detail) << "\"}";
      }
      os << "}";
      continue;
    }
    os << (i ? ",\n  " : "\n  ") << "{\"scheme\": \"" << json_escape(o.label)
       << "\", \"kops_per_sec\": " << num(o.ycsb.kops_per_sec)
       << ", \"reads\": " << o.ycsb.reads << ", \"updates\": " << o.ycsb.updates
       << ", \"nvm_writes\": " << o.ycsb.nvm_writes
       << ", \"all\": " << lat(o.ycsb.all_lat) << ", \"read\": " << lat(o.ycsb.read_lat)
       << ", \"update\": " << lat(o.ycsb.update_lat);
    if (o.crash_ran) {
      os << ", \"crash\": {\"supported\": " << (o.crash.recovery_supported ? "true" : "false")
         << ", \"recovered\": " << (o.crash.recovery_ok ? "true" : "false")
         << ", \"verified\": " << (o.crash.verified ? "true" : "false")
         << ", \"pass\": " << (o.crash_pass ? "true" : "false")
         << ", \"crash_at\": " << o.crash.crash_at
         << ", \"total_persists\": " << o.crash.total_persists
         << ", \"committed_keys\": " << o.crash.committed_keys
         << ", \"recovery_seconds\": " << num(o.crash.recovery_seconds)
         << ", \"recovery_attempts\": " << o.crash.recovery_attempts
         << ", \"recovery_gave_up\": " << (o.crash.recovery_gave_up ? "true" : "false")
         << ", \"detail\": \"" << json_escape(o.crash.detail) << "\"}";
    }
    os << "}";
  }
  os << "\n]}\n";
  std::fprintf(f, "%s", os.str().c_str());
  if (std::fclose(f) != 0) {
    std::fprintf(stderr, "error writing %s: %s\n", opt.json_path.c_str(),
                 std::strerror(errno));
    std::exit(1);
  }
  std::printf("wrote JSON results to %s\n", opt.json_path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, &opt)) return 2;
  if (opt.help) {
    usage();
    return 0;
  }

  const std::optional<Mix> mix = parse_mix(opt.mix);
  if (!mix) {
    std::fprintf(stderr, "unknown mix: %s (expected a, b, c, or f)\n", opt.mix.c_str());
    return 2;
  }

  SystemConfig cfg = default_config();
  cfg.nvm.capacity_bytes = opt.capacity_mb << 20;
  cfg.secure.metadata_cache.size_bytes = opt.mcache_kb * 1024;

  YcsbConfig ycfg;
  ycfg.mix = *mix;
  ycfg.clients = opt.clients;
  ycfg.controllers = opt.controllers;
  ycfg.ops = opt.ops;
  ycfg.keys = opt.keys;
  ycfg.slots = static_cast<std::size_t>(opt.slots);
  ycfg.value_bytes = static_cast<std::size_t>(opt.value_bytes);
  ycfg.zipf_s = opt.zipf_s;
  ycfg.seed = opt.seed;
  ycfg.jobs = opt.jobs;

  KvCrashOptions ccfg;
  ccfg.ops = opt.crash_ops;
  ccfg.seed = opt.seed;
  ccfg.recovery_crash_boundary = opt.nested_crash_boundary;
  ccfg.recovery_crash_rearm = opt.nested_crash_rearm;
  ccfg.retry_policy = opt.retry_policy;

  const std::optional<Routing> routing = parse_routing(opt.routing);
  if (opt.serve && !routing) {
    std::fprintf(stderr, "unknown routing: %s (expected hash or load)\n",
                 opt.routing.c_str());
    return 2;
  }
  ServingConfig scfg;
  scfg.mix = *mix;
  scfg.clients = opt.clients;
  scfg.shards = opt.shards;
  scfg.ops = opt.ops;
  scfg.keys = opt.keys;
  scfg.slots = static_cast<std::size_t>(opt.slots);
  scfg.value_bytes = static_cast<std::size_t>(opt.value_bytes);
  scfg.zipf_s = opt.zipf_s;
  scfg.seed = opt.seed;
  scfg.jobs = opt.jobs;
  if (routing) scfg.routing = *routing;
  scfg.queue_depth = opt.queue_depth;
  scfg.group_commit_window = opt.group_commit;

  std::vector<SchemeOutcome> outcomes;
  bool all_pass = true;
  try {
    if (opt.serve) {
      std::printf(
          "KV serving: mix %s, %u clients, %u shards (%s routing), %llu ops over "
          "%llu keys, group-commit %llu, queue-depth %llu\n\n",
          mix_name(*mix), opt.clients, opt.shards, opt.routing.c_str(),
          static_cast<unsigned long long>(opt.ops),
          static_cast<unsigned long long>(opt.keys),
          static_cast<unsigned long long>(opt.group_commit),
          static_cast<unsigned long long>(opt.queue_depth));
      std::printf("%-11s %10s %9s %9s %9s %8s %7s   %s\n", "scheme", "kops/s",
                  "p50_ns", "p99_ns", "p99.9_ns", "shed", "batch",
                  opt.crash ? "crash-recovery" : "");
      for (const std::string& name : cli::split_csv(opt.schemes)) {
        const auto scheme_opt = cli::parse_scheme(name);
        if (!scheme_opt.has_value()) {
          std::fprintf(stderr, "unknown scheme: %s (try --help)\n", name.c_str());
          return 2;
        }
        const Scheme scheme = *scheme_opt;
        SchemeOutcome o;
        o.label = scheme_name(scheme, cfg.counter_mode);
        o.serving = run_sharded_serving(cfg, scheme, scfg);
        std::string crash_note;
        if (opt.crash) {
          o.crash_ran = true;
          ServingCrashOptions sopt;  // random boundary from the seed
          o.scrash = run_serving_crash(cfg, scheme, scfg, sopt);
          o.crash_pass = o.scrash.pass(scheme);
          all_pass = all_pass && o.crash_pass;
          if (scheme == Scheme::kWriteBack) {
            crash_note = o.crash_pass ? "unrecoverable (detected, as expected)"
                                      : "FAIL: WB not detected as unrecoverable";
          } else if (o.crash_pass) {
            crash_note = "ok (crash at access " + std::to_string(o.scrash.crash_at) +
                         "/" + std::to_string(o.scrash.total_accesses) + ", " +
                         std::to_string(o.scrash.committed_slots) +
                         " slots verified)";
          } else {
            crash_note = "FAIL: " + o.scrash.detail;
          }
        }
        std::printf("%-11s %10.1f %9.0f %9.0f %9.0f %8llu %7.1f   %s\n",
                    o.label.c_str(), o.serving.kops_per_sec,
                    cycles_to_ns(cfg, o.serving.all_lat.percentile(50)),
                    cycles_to_ns(cfg, o.serving.all_lat.percentile(99)),
                    cycles_to_ns(cfg, o.serving.all_lat.percentile(99.9)),
                    static_cast<unsigned long long>(o.serving.shed_ops),
                    o.serving.batch_sizes.mean(), crash_note.c_str());
        outcomes.push_back(std::move(o));
      }
      if (!opt.json_path.empty()) emit_json(opt, cfg, outcomes);
      if (opt.crash && !all_pass) {
        std::fprintf(stderr,
                     "\ncrash-recovery validation FAILED for at least one scheme\n");
        return 1;
      }
      return 0;
    }
    std::printf("KV service: mix %s, %u clients, %u controllers, %llu ops over %llu keys\n\n",
                mix_name(*mix), opt.clients, opt.controllers,
                static_cast<unsigned long long>(opt.ops),
                static_cast<unsigned long long>(opt.keys));
    std::printf("%-11s %10s %9s %9s %9s %9s   %s\n", "scheme", "kops/s", "p50_ns",
                "p95_ns", "p99_ns", "p99.9_ns", opt.crash ? "crash-recovery" : "");
    for (const std::string& name : cli::split_csv(opt.schemes)) {
      const auto scheme_opt = cli::parse_scheme(name);
      if (!scheme_opt.has_value()) {
        std::fprintf(stderr, "unknown scheme: %s (try --help)\n", name.c_str());
        return 2;
      }
      const Scheme scheme = *scheme_opt;
      SchemeOutcome o;
      o.label = scheme_name(scheme, cfg.counter_mode);
      o.ycsb = run_ycsb(cfg, scheme, ycfg);
      std::string crash_note;
      if (opt.crash) {
        o.crash_ran = true;
        o.crash = run_kv_crash_validation(cfg, scheme, ccfg);
        o.crash_pass = o.crash.pass(scheme);
        all_pass = all_pass && o.crash_pass;
        if (scheme == Scheme::kWriteBack) {
          crash_note = o.crash_pass ? "unrecoverable (detected, as expected)"
                                    : "FAIL: WB not detected as unrecoverable";
        } else if (o.crash_pass) {
          crash_note = "ok (killed before persist " + std::to_string(o.crash.crash_at) +
                       "/" + std::to_string(o.crash.total_persists) + ", " +
                       std::to_string(o.crash.committed_keys) + " keys verified";
          if (o.crash.recovery_attempts > 1) {
            crash_note += ", " + std::to_string(o.crash.recovery_attempts) +
                          " recovery attempts";
          }
          crash_note += ")";
        } else {
          crash_note = "FAIL: " + o.crash.detail;
        }
      }
      std::printf("%-11s %10.1f %9.0f %9.0f %9.0f %9.0f   %s\n", o.label.c_str(),
                  o.ycsb.kops_per_sec, cycles_to_ns(cfg, o.ycsb.all_lat.percentile(50)),
                  cycles_to_ns(cfg, o.ycsb.all_lat.percentile(95)),
                  cycles_to_ns(cfg, o.ycsb.all_lat.percentile(99)),
                  cycles_to_ns(cfg, o.ycsb.all_lat.percentile(99.9)), crash_note.c_str());
      outcomes.push_back(std::move(o));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  if (!opt.json_path.empty()) emit_json(opt, cfg, outcomes);
  if (opt.crash && !all_pass) {
    std::fprintf(stderr, "\ncrash-recovery validation FAILED for at least one scheme\n");
    return 1;
  }
  return 0;
}

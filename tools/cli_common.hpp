// Shared strict CLI parsing for the steins_* tools.
//
// The tools historically hand-rolled their flag loops, and the lenient
// ones treated a trailing flag with no value as "" (so strtoull quietly
// produced 0 and the run proceeded with a nonsense config). This header
// makes the contract uniform and strict: an unknown flag, a flag missing
// its value, or a malformed number prints a one-line error with a --help
// hint and the tool exits 2.
//
// Usage:
//
//   cli::ArgParser p(argc, argv);
//   while (p.next()) {
//     if (p.is("--trials"))            opt.trials = p.u64();
//     else if (p.is("--schemes", "--scheme")) opt.schemes = p.str();
//     else if (p.is("--verbose"))      opt.verbose = true;
//     else if (p.is("--help", "-h"))   opt.help = true;
//     else                             p.unknown();
//   }
//   if (p.failed()) return 2;
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "crypto/backend.hpp"
#include "secure/secure_memory.hpp"

namespace steins::cli {

class ArgParser {
 public:
  ArgParser(int argc, char** argv) : argc_(argc), argv_(argv) {}

  /// Advance to the next argument. Returns false at the end of argv or
  /// after any error (so the parse loop unwinds immediately).
  bool next() { return !failed_ && ++i_ < argc_; }

  const char* arg() const { return argv_[i_]; }
  bool is(std::string_view name) const { return name == argv_[i_]; }
  bool is(std::string_view a, std::string_view b) const { return is(a) || is(b); }

  /// The current flag's value (the next argv slot); "" + error if absent.
  std::string str() {
    if (i_ + 1 >= argc_) {
      std::fprintf(stderr, "missing value for %s (try --help)\n", argv_[i_]);
      failed_ = true;
      return "";
    }
    return argv_[++i_];
  }

  std::uint64_t u64() {
    const std::string flag = argv_[i_];
    const std::string v = str();
    if (failed_) return 0;
    char* end = nullptr;
    errno = 0;
    const unsigned long long out = std::strtoull(v.c_str(), &end, 10);
    if (end == v.c_str() || *end != '\0' || errno == ERANGE) {
      std::fprintf(stderr, "invalid number for %s: '%s'\n", flag.c_str(), v.c_str());
      failed_ = true;
      return 0;
    }
    return out;
  }

  double f64() {
    const std::string flag = argv_[i_];
    const std::string v = str();
    if (failed_) return 0.0;
    char* end = nullptr;
    errno = 0;
    const double out = std::strtod(v.c_str(), &end);
    if (end == v.c_str() || *end != '\0' || errno == ERANGE) {
      std::fprintf(stderr, "invalid number for %s: '%s'\n", flag.c_str(), v.c_str());
      failed_ = true;
      return 0.0;
    }
    return out;
  }

  /// Worker-thread count: a strict positive integer (0 is rejected — a
  /// tool cannot run with no workers).
  unsigned jobs() {
    const std::string flag = argv_[i_];
    const std::uint64_t v = u64();
    if (failed_) return 1;
    if (v == 0 || v > 4096) {
      std::fprintf(stderr, "invalid value for %s: expected 1..4096\n", flag.c_str());
      failed_ = true;
      return 1;
    }
    return static_cast<unsigned>(v);
  }

  void unknown() {
    std::fprintf(stderr, "unknown option: %s (try --help)\n", argv_[i_]);
    failed_ = true;
  }

  /// Report a bad value for the current flag (caller-side validation).
  void invalid(const std::string& detail) {
    std::fprintf(stderr, "%s (try --help)\n", detail.c_str());
    failed_ = true;
  }

  bool failed() const { return failed_; }

 private:
  int argc_;
  char** argv_;
  int i_ = 0;
  bool failed_ = false;
};

inline std::optional<Scheme> parse_scheme(const std::string& name) {
  if (name == "wb") return Scheme::kWriteBack;
  if (name == "asit") return Scheme::kAnubis;
  if (name == "star") return Scheme::kStar;
  if (name == "steins") return Scheme::kSteins;
  if (name == "scue") return Scheme::kScue;
  return std::nullopt;
}

inline std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

/// Handle --nested-crash <boundary[,rearm]>: a 1-based recovery persist
/// boundary with an optional ',rearm' suffix (re-arm the nested crash on
/// every retry). Reports the error through the parser on bad input.
inline bool parse_nested_crash(ArgParser& p, std::uint64_t* boundary, bool* rearm) {
  std::string v = p.str();
  if (p.failed()) return false;
  const auto comma = v.find(',');
  if (comma != std::string::npos) {
    const std::string suffix = v.substr(comma + 1);
    if (suffix != "rearm") {
      p.invalid("invalid --nested-crash suffix: '" + suffix + "' (expected 'rearm')");
      return false;
    }
    *rearm = true;
    v = v.substr(0, comma);
  }
  char* end = nullptr;
  errno = 0;
  const unsigned long long b = std::strtoull(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0' || errno == ERANGE || b == 0) {
    p.invalid("invalid --nested-crash boundary: '" + v + "' (expected >= 1)");
    return false;
  }
  *boundary = b;
  return true;
}

/// Handle --crypto-backend: "auto" and known names succeed; anything else
/// reports an error and returns false.
inline bool apply_crypto_backend(const std::string& name) {
  if (auto b = crypto::parse_backend(name)) {
    crypto::set_crypto_backend(*b);
    return true;
  }
  if (name == "auto") return true;
  std::fprintf(stderr, "unknown crypto backend: %s (expected ref|ttable|hw|auto)\n",
               name.c_str());
  return false;
}

/// Write a JSON payload to `path`, reporting any I/O failure to stderr.
inline bool write_json_file(const std::string& path, const std::string& json) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s: %s\n", path.c_str(), std::strerror(errno));
    return false;
  }
  const bool wrote = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  if (std::fclose(f) != 0 || !wrote) {
    std::fprintf(stderr, "error writing %s: %s\n", path.c_str(), std::strerror(errno));
    return false;
  }
  return true;
}

}  // namespace steins::cli

// steins_fault: deterministic fault-injection campaign runner.
//
//   steins_fault --trials 1000 --seed 42 --jobs 8
//   steins_fault --trials 1000 --seed 42 --trial 137 --verbose
//   steins_fault --schemes steins,scue --classes torn,adr --json fc.json
//
// Runs N seeded trials per scheme: a workload phase, a checkpoint flush, a
// dirty burst, then a crash with injected faults (torn/dropped/reordered
// persists, ADR loss, or region-targeted bit flips), recovery, and a full
// audit of every written block. Prints the per-(scheme, class) verdict
// matrix detected/recovered/salvaged/silent-corruption. Every trial is a
// pure function of (--seed, trial index): the matrix is bit-identical for
// any --jobs value, and --trial K reruns exactly one trial for debugging.
// Exit status is nonzero if any silent corruption was observed; 2 for
// usage errors (including --trials 0, which would report vacuous success).
#include <cstdio>
#include <string>
#include <vector>

#include "cli_common.hpp"
#include "fault/campaign.hpp"

using namespace steins;

namespace {

struct Options {
  CampaignOptions campaign;
  std::string schemes;  // csv; empty = default recoverable set
  std::string classes;  // csv; empty = all
  std::string mode = "gc";
  std::string json_path;
  bool verbose = false;
  bool help = false;
};

void usage() {
  std::printf(
      "steins_fault - fault-injection campaigns over the secure NVM schemes\n\n"
      "  --trials <n>        seeded trials per scheme (default 100; must be\n"
      "                      >= 1 unless --trial selects a single one)\n"
      "  --seed <n>          campaign seed (default 42)\n"
      "  --jobs <n>          worker threads; results are bit-identical for\n"
      "                      any value (default 1)\n"
      "  --schemes <list>    comma-separated wb|asit|star|scue|steins\n"
      "                      (default: asit,star,scue,steins)\n"
      "  --mode <gc|sc>      counter mode (default gc; sc restricts the\n"
      "                      default scheme set to steins)\n"
      "  --classes <list>    comma-separated fault classes (default: all):\n"
      "                      torn-write dropped-persist reordered-persist\n"
      "                      adr-loss flip-data flip-counter flip-node\n"
      "                      flip-mac flip-record correctable-flip\n"
      "  --trial <k>         run only trial k (seed-exact reproduction)\n"
      "  --ops <n>           phase-1 accesses per trial (default 384)\n"
      "  --footprint <n>     workload footprint in blocks (default 2048)\n"
      "  --capacity-mb <n>   per-trial NVM capacity (default 16)\n"
      "  --mcache-kb <n>     metadata cache size (default 16)\n"
      "  --nested-crash <b[,rearm]>  crash the recovery itself at persist\n"
      "                      boundary b (1-based) and re-enter it through the\n"
      "                      bounded retry loop; append ',rearm' to re-arm the\n"
      "                      crash every retry (backoff-only progress). Adds\n"
      "                      the recovered-after-retry / unrecoverable verdicts\n"
      "  --max-recovery-attempts <n>  retry budget for crashed recoveries\n"
      "                      (default 8)\n"
      "  --json <file>       write the verdict matrix as JSON\n"
      "  --crypto-backend <ref|ttable|hw|auto>  crypto backend (bit-identical;\n"
      "                      host wall-clock only; or STEINS_CRYPTO_BACKEND)\n"
      "  --verbose           per-trial verdicts + injected-fault logs\n");
}

bool parse(int argc, char** argv, Options* opt) {
  cli::ArgParser p(argc, argv);
  while (p.next()) {
    if (p.is("--trials")) {
      opt->campaign.trials = p.u64();
    } else if (p.is("--seed")) {
      opt->campaign.seed = p.u64();
    } else if (p.is("--jobs")) {
      opt->campaign.jobs = p.jobs();
    } else if (p.is("--schemes", "--scheme")) {
      opt->schemes = p.str();
    } else if (p.is("--mode")) {
      opt->mode = p.str();
    } else if (p.is("--classes", "--class")) {
      opt->classes = p.str();
    } else if (p.is("--trial")) {
      opt->campaign.only_trial = p.u64();
    } else if (p.is("--ops")) {
      opt->campaign.workload.ops = p.u64();
    } else if (p.is("--footprint")) {
      opt->campaign.workload.footprint_blocks = p.u64();
    } else if (p.is("--capacity-mb")) {
      opt->campaign.workload.capacity_mb = p.u64();
    } else if (p.is("--mcache-kb")) {
      opt->campaign.workload.mcache_kb = p.u64();
    } else if (p.is("--nested-crash")) {
      if (!cli::parse_nested_crash(p, &opt->campaign.workload.recovery_crash_boundary,
                                   &opt->campaign.workload.recovery_crash_rearm)) {
        return false;
      }
    } else if (p.is("--max-recovery-attempts")) {
      const std::uint64_t n = p.u64();
      if (p.failed()) return false;
      if (n == 0) {
        p.invalid("invalid --max-recovery-attempts: expected >= 1");
        return false;
      }
      opt->campaign.workload.retry_policy.max_recovery_attempts = n;
    } else if (p.is("--json")) {
      opt->json_path = p.str();
    } else if (p.is("--crypto-backend")) {
      const std::string name = p.str();
      if (!p.failed() && !cli::apply_crypto_backend(name)) return false;
    } else if (p.is("--verbose")) {
      opt->verbose = true;
    } else if (p.is("--help", "-h")) {
      opt->help = true;
    } else {
      p.unknown();
    }
  }
  return !p.failed();
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, &opt)) return 2;
  if (opt.help) {
    usage();
    return 0;
  }
  if (opt.campaign.trials == 0 && !opt.campaign.only_trial.has_value()) {
    std::fprintf(stderr,
                 "error: --trials 0 runs no trials and would report vacuous "
                 "success; pass --trials >= 1 or reproduce one with --trial\n");
    return 2;
  }

  CounterMode mode;
  if (opt.mode == "gc") {
    mode = CounterMode::kGeneral;
  } else if (opt.mode == "sc") {
    mode = CounterMode::kSplit;
  } else {
    std::fprintf(stderr, "unknown mode: %s (expected gc or sc)\n", opt.mode.c_str());
    return 2;
  }

  if (opt.schemes.empty()) {
    opt.campaign.schemes = campaign_schemes(mode);
  } else {
    for (const std::string& name : cli::split_csv(opt.schemes)) {
      const auto s = cli::parse_scheme(name);
      if (!s.has_value()) {
        std::fprintf(stderr, "unknown scheme: %s (try --help)\n", name.c_str());
        return 2;
      }
      opt.campaign.schemes.push_back({*s, mode, scheme_name(*s, mode)});
    }
  }
  for (const std::string& name : cli::split_csv(opt.classes)) {
    const auto cls = parse_fault_class(name);
    if (!cls.has_value()) {
      std::fprintf(stderr, "unknown fault class: %s (try --help)\n", name.c_str());
      return 2;
    }
    opt.campaign.classes.push_back(*cls);
  }

  try {
    std::printf("fault campaign: %llu trials, seed %llu, %u job%s, mode %s\n\n",
                static_cast<unsigned long long>(
                    opt.campaign.only_trial.has_value() ? 1 : opt.campaign.trials),
                static_cast<unsigned long long>(opt.campaign.seed), opt.campaign.jobs,
                opt.campaign.jobs == 1 ? "" : "s", opt.mode.c_str());
    const CampaignResult result = run_fault_campaign(opt.campaign);
    result.print(opt.verbose);

    if (!opt.json_path.empty()) {
      if (!cli::write_json_file(opt.json_path, result.to_json())) return 1;
      std::printf("wrote JSON results to %s\n", opt.json_path.c_str());
    }

    if (result.silent_total() > 0) {
      std::fprintf(stderr, "\nFAIL: %llu silent-corruption verdict(s)\n",
                   static_cast<unsigned long long>(result.silent_total()));
      return 1;
    }
    if (result.unrecoverable_total() > 0) {
      std::fprintf(stderr, "\nFAIL: %llu unrecoverable recovery verdict(s)\n",
                   static_cast<unsigned long long>(result.unrecoverable_total()));
      return 1;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}

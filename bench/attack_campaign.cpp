// Adversarial-campaign bench: the full (scheme x scenario) attack verdict
// matrix plus the accelerated endurance projection, as one recordable JSON
// artifact (BENCH_attack.json).
//
// Positional argv[1] (or STEINS_ACCESSES) sets the trial count, STEINS_SEED
// overrides the campaign seed, and --jobs/--json/--verbose follow the other
// benches. Exit status is nonzero on any silent-corruption verdict — or an
// endurance integrity breach — so CI can gate on the artifact it uploads.
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_common.hpp"
#include "fault/adversary.hpp"
#include "fault/endurance.hpp"

using namespace steins;

int main(int argc, char** argv) {
  bench::BenchOptions opt = bench::parse_options(argc, argv);

  AttackCampaignOptions campaign;
  // parse_options() sizes benches in accesses; here one "access" is one
  // trial. The default is a 1050-trial matrix: 150 draws of each of the 7
  // scenarios against each of the 5 schemes (5250 verdicts).
  campaign.trials = opt.accesses == 200'000 ? 1050 : opt.accesses;
  campaign.seed = 42;
  if (const char* env = std::getenv("STEINS_SEED")) {
    campaign.seed = std::strtoull(env, nullptr, 10);
  }
  campaign.jobs = opt.jobs;
  if (campaign.trials == 0) {
    std::fprintf(stderr, "error: a 0-trial campaign would report vacuous success\n");
    return 2;
  }

  std::printf("attack campaign: %llu trials, seed %llu, %u job%s\n\n",
              static_cast<unsigned long long>(campaign.trials),
              static_cast<unsigned long long>(campaign.seed), campaign.jobs,
              campaign.jobs == 1 ? "" : "s");
  const AttackCampaignResult result = run_attack_campaign(campaign);
  result.print(opt.verbose);

  // Endurance projection for every recoverable scheme (WB has no recovery
  // pass to keep honest; its wear behaviour is covered by the matrix).
  bool endurance_failed = false;
  std::string endurance_json = "[";
  bool first = true;
  for (const SchemeSpec& spec : attack_schemes()) {
    if (spec.scheme == Scheme::kWriteBack) continue;
    EnduranceOptions eopts;
    eopts.scheme = spec.scheme;
    eopts.seed = campaign.seed;
    const EnduranceReport rep = run_endurance_campaign(eopts);
    std::printf("\n%s %s\n", spec.label.c_str(), rep.to_string().c_str());
    endurance_json += (first ? "\n " : ",\n ") + rep.to_json();
    first = false;
    if (rep.audit_mismatches > 0 || !rep.recovery_clean) endurance_failed = true;
  }
  endurance_json += "]";

  if (!opt.json_path.empty()) {
    std::FILE* f = std::fopen(opt.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open JSON output %s: %s\n", opt.json_path.c_str(),
                   std::strerror(errno));
      return 1;
    }
    const std::string json =
        "{\"attack\": " + result.to_json() + ",\n\"endurance\": " + endurance_json + "}\n";
    const bool wrote = std::fwrite(json.data(), 1, json.size(), f) == json.size();
    if (std::fclose(f) != 0 || !wrote) {
      std::fprintf(stderr, "error writing JSON output %s: %s\n", opt.json_path.c_str(),
                   std::strerror(errno));
      return 1;
    }
    std::printf("\nwrote JSON results to %s\n", opt.json_path.c_str());
  }

  if (result.silent_total() > 0) {
    std::fprintf(stderr, "\nFAIL: %llu silent-corruption verdict(s)\n",
                 static_cast<unsigned long long>(result.silent_total()));
    return 1;
  }
  if (endurance_failed) {
    std::fprintf(stderr, "\nFAIL: endurance campaign audit mismatch or dirty recovery\n");
    return 1;
  }
  std::printf("\nPASS: zero silent corruption across %zu verdicts\n",
              result.outcomes.size());
  return 0;
}

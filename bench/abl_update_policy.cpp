// Ablation: lazy vs eager SIT updates (paper §II-C) on the WB baseline.
// Eager updates touch every ancestor on each write; lazy updates touch only
// the leaf and defer propagation to evictions.
#include "bench_common.hpp"

using namespace steins;

int main(int argc, char** argv) {
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  std::printf("Ablation: SIT update policy (WB-GC, lazy vs eager)\n\n");

  // Eager updates touch every ancestor per write: the cost shows up as
  // extra metadata traffic and hash work (paper §II-C: "significant memory
  // access and computation overhead"), and as execution time once the
  // channel is loaded.
  ResultTable table("Eager normalized to lazy",
                    {"exec", "meta reads", "NVM writes", "hashes"});
  for (const auto& wl : workload_names()) {
    double lazy_cycles = 1, lazy_reads = 1, lazy_writes = 1, lazy_hashes = 1;
    std::vector<double> row;
    for (const auto policy : {UpdatePolicy::kLazy, UpdatePolicy::kEager}) {
      SystemConfig cfg = default_config();
      cfg.update_policy = policy;
      System sys(cfg, Scheme::kWriteBack);
      auto trace = make_workload(wl, opt.accesses + opt.warmup);
      const RunStats stats = sys.run(*trace, opt.warmup);
      if (policy == UpdatePolicy::kLazy) {
        lazy_cycles = static_cast<double>(stats.cycles);
        lazy_reads = static_cast<double>(stats.mem.meta_reads);
        lazy_writes = static_cast<double>(stats.mem.nvm_writes());
        lazy_hashes = static_cast<double>(stats.mem.hash_ops);
      } else {
        row = {static_cast<double>(stats.cycles) / lazy_cycles,
               static_cast<double>(stats.mem.meta_reads) / lazy_reads,
               static_cast<double>(stats.mem.nvm_writes()) / lazy_writes,
               static_cast<double>(stats.mem.hash_ops) / lazy_hashes};
      }
    }
    table.add_row(wl, row);
  }
  table.add_geomean_row("gmean");
  table.print();
  return 0;
}

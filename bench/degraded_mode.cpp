// Degraded-mode KV service bench: availability and read latency of a store
// running over a salvaged secure-memory instance.
//
// For each scheme and each dead-line budget, the bench populates a KV
// store, kills a set of resident lines in the store's NVM region with
// uncorrectable ECC faults, crashes, recovers (salvage mode quarantines
// what cannot be re-verified), reopens the store, and audits every
// committed key: it must read back exactly or fail with a typed
// unavailable error. The JSON artifact records availability, typed-error
// counts, recovery time, and post-salvage read latency — the graceful-
// degradation curve. Exit status is nonzero if any key reads back wrong
// (silent corruption) or a recovery crashes.
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "kv/kv_store.hpp"
#include "sim/system.hpp"

using namespace steins;

namespace {

struct CellResult {
  std::string scheme;
  std::uint64_t dead_lines = 0;
  bool salvaged = false;
  bool read_only = false;
  std::uint64_t keys_ok = 0;
  std::uint64_t keys_unavailable = 0;
  std::uint64_t keys_wrong = 0;
  std::uint64_t blocks_quarantined = 0;
  std::uint64_t subtrees_quarantined = 0;
  double recovery_seconds = 0.0;
  double read_latency_cycles = 0.0;  // mean, post-salvage audit reads
};

CellResult run_cell(Scheme scheme, CounterMode mode, std::uint64_t dead_lines,
                    std::uint64_t keys, std::uint64_t seed) {
  SystemConfig cfg = default_config();
  cfg.nvm.capacity_bytes = std::uint64_t{16} * 1024 * 1024;
  cfg.counter_mode = mode;
  cfg.secure.ft.ecc_enabled = true;

  CellResult out;
  out.scheme = scheme_name(scheme, mode);
  out.dead_lines = dead_lines;

  System sys(cfg, scheme);
  kv::KvLayout layout;
  layout.slots = 1024;
  kv::KvStore store(sys, layout);

  std::map<std::uint64_t, std::string> model;
  Xoshiro256 rng(seed);
  for (std::uint64_t k = 0; k < keys; ++k) {
    std::string value = "val" + std::to_string(rng.next() & 0xffff) + "-key" +
                        std::to_string(k);
    store.put(k, value);
    model[k] = std::move(value);
  }

  // Kill resident lines inside the store's region, spread deterministically.
  NvmDevice& dev = sys.memory().device();
  const std::vector<Addr> resident =
      dev.resident_blocks(layout.base, layout.base + layout.region_bytes());
  Xoshiro256 frng(seed * 0x9e3779b97f4a7c15ULL + 3);
  std::vector<Addr> targets = resident;
  for (std::size_t i = targets.size(); i > 1; --i) {
    std::swap(targets[i - 1], targets[frng.below(i)]);
  }
  const std::uint64_t n = std::min<std::uint64_t>(dead_lines, targets.size());
  for (std::uint64_t i = 0; i < n; ++i) {
    dev.inject_ecc_error(targets[i], static_cast<unsigned>(frng.below(kBlockSize * 8)),
                         /*correctable=*/false, 0);
  }

  const RecoveryReport r = sys.crash_and_recover();
  out.salvaged = !r.attack_detected && r.status.ok() && r.degraded();
  out.blocks_quarantined = r.blocks_quarantined;
  out.subtrees_quarantined = r.subtrees_quarantined;
  out.recovery_seconds = r.seconds;
  if (!r.status.ok()) {
    std::fprintf(stderr, "recovery internal error: %s\n", r.status.to_string().c_str());
    out.keys_wrong = keys;  // count as failure
    return out;
  }
  sys.resync_truth_after_crash();

  kv::KvStore reopened(sys, layout);
  reopened.apply_recovery_report(r);
  out.read_only = reopened.read_only();

  sys.reset_stats();
  for (const auto& [key, value] : model) {
    const auto got = reopened.try_get(key);
    if (!got.has_value()) {
      if (is_unavailable(got.status().code())) {
        ++out.keys_unavailable;
      } else {
        ++out.keys_wrong;
      }
      continue;
    }
    if (got.value().has_value() && *got.value() == value) {
      ++out.keys_ok;
    } else {
      ++out.keys_wrong;
    }
  }
  out.read_latency_cycles = sys.collect_stats().read_latency_cycles;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions opt = bench::parse_options(argc, argv);
  // parse_options() sizes benches in accesses; here one "access" is one key.
  const std::uint64_t keys = opt.accesses == 200'000 ? 192 : opt.accesses;
  std::uint64_t seed = 42;
  if (const char* env = std::getenv("STEINS_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
  }

  const std::vector<Scheme> schemes = {Scheme::kAnubis, Scheme::kStar, Scheme::kScue,
                                       Scheme::kSteins};
  const std::vector<std::uint64_t> budgets = {0, 2, 8, 32};

  std::vector<CellResult> results;
  bool failed = false;
  std::printf("degraded-mode KV availability (%llu keys, seed %llu)\n\n",
              static_cast<unsigned long long>(keys),
              static_cast<unsigned long long>(seed));
  std::printf("%-12s %10s %8s %8s %12s %8s %12s %12s\n", "scheme", "dead-lines",
              "ok", "typed", "WRONG", "salvaged", "recovery-s", "read-cyc");
  for (const Scheme scheme : schemes) {
    for (const std::uint64_t dead : budgets) {
      const CellResult c = run_cell(scheme, CounterMode::kGeneral, dead, keys, seed);
      std::printf("%-12s %10llu %8llu %8llu %12llu %8s %12.6f %12.1f\n",
                  c.scheme.c_str(), static_cast<unsigned long long>(c.dead_lines),
                  static_cast<unsigned long long>(c.keys_ok),
                  static_cast<unsigned long long>(c.keys_unavailable),
                  static_cast<unsigned long long>(c.keys_wrong),
                  c.salvaged ? "yes" : "no", c.recovery_seconds,
                  c.read_latency_cycles);
      if (c.keys_wrong > 0) failed = true;
      results.push_back(c);
    }
  }

  if (!opt.json_path.empty()) {
    std::ostringstream os;
    os << "{\n \"bench\": \"degraded_mode\",\n \"keys\": " << keys
       << ",\n \"seed\": " << seed << ",\n \"cells\": [";
    bool first = true;
    for (const CellResult& c : results) {
      os << (first ? "" : ",") << "\n  {\"scheme\": \"" << c.scheme
         << "\", \"dead_lines\": " << c.dead_lines
         << ", \"keys_ok\": " << c.keys_ok
         << ", \"keys_unavailable\": " << c.keys_unavailable
         << ", \"keys_wrong\": " << c.keys_wrong
         << ", \"salvaged\": " << (c.salvaged ? "true" : "false")
         << ", \"read_only\": " << (c.read_only ? "true" : "false")
         << ", \"blocks_quarantined\": " << c.blocks_quarantined
         << ", \"subtrees_quarantined\": " << c.subtrees_quarantined
         << ", \"recovery_seconds\": " << c.recovery_seconds
         << ", \"read_latency_cycles\": " << c.read_latency_cycles << "}";
      first = false;
    }
    os << "\n ]\n}\n";
    std::FILE* f = std::fopen(opt.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open JSON output %s: %s\n", opt.json_path.c_str(),
                   std::strerror(errno));
      return 1;
    }
    const std::string json = os.str();
    const bool wrote = std::fwrite(json.data(), 1, json.size(), f) == json.size();
    if (std::fclose(f) != 0 || !wrote) {
      std::fprintf(stderr, "error writing JSON output %s\n", opt.json_path.c_str());
      return 1;
    }
    std::printf("\nwrote JSON results to %s\n", opt.json_path.c_str());
  }

  if (failed) {
    std::fprintf(stderr, "\nFAIL: a committed key read back wrong after salvage\n");
    return 1;
  }
  return 0;
}

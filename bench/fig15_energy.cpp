// Fig. 15: energy consumption, normalized to WB-GC.
// Paper shape: Steins-GC at/below WB-GC; ASIT and STAR well above.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace steins;
  return bench::run_figure(argc, argv, "Fig. 15: Energy consumption (normalized to WB-GC)",
                           gc_comparison_schemes(), bench::metric_energy, "WB-GC");
}

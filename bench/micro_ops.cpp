// Micro-benchmarks (google-benchmark) for the primitive operations the
// simulator models: crypto, counter generation, node codecs, cache access.
#include <benchmark/benchmark.h>

#include "cache/cache.hpp"
#include "crypto/aes.hpp"
#include "crypto/hmac.hpp"
#include "crypto/otp.hpp"
#include "crypto/sha256.hpp"
#include "crypto/siphash.hpp"
#include "sit/counter_block.hpp"
#include "sit/node.hpp"

using namespace steins;
using namespace steins::crypto;

static void BM_AesEncryptBlock(benchmark::State& state) {
  Aes128 aes(Aes128::Key{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16});
  Aes128::BlockBytes blk{};
  for (auto _ : state) {
    aes.encrypt_block(blk.data());
    benchmark::DoNotOptimize(blk);
  }
}
BENCHMARK(BM_AesEncryptBlock);

// The byte-wise FIPS-197 path the T-table implementation replaced; the
// ratio of these two benchmarks is the hot-path speedup.
static void BM_AesEncryptBlockRef(benchmark::State& state) {
  Aes128 aes(Aes128::Key{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16});
  Aes128::BlockBytes blk{};
  for (auto _ : state) {
    aes.encrypt_block_ref(blk.data());
    benchmark::DoNotOptimize(blk);
  }
}
BENCHMARK(BM_AesEncryptBlockRef);

static void BM_Sha256Block(benchmark::State& state) {
  std::uint8_t data[64] = {};
  for (auto _ : state) {
    auto d = Sha256::hash(data);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_Sha256Block);

static void BM_HmacSha256Tag64(benchmark::State& state) {
  const std::uint8_t key[16] = {9};
  HmacSha256 mac({key, 16});
  std::uint8_t data[72] = {};
  for (auto _ : state) {
    benchmark::DoNotOptimize(mac.tag64(data));
  }
}
BENCHMARK(BM_HmacSha256Tag64);

static void BM_SipHashNodePayload(benchmark::State& state) {
  SipHash24 sip(SipHash24::Key{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16});
  std::uint8_t data[72] = {};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sip.hash(data));
  }
}
BENCHMARK(BM_SipHashNodePayload);

static void BM_OtpPadReal(benchmark::State& state) {
  OtpEngine otp(CryptoProfile::kReal, 7);
  Addr a = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(otp.pad(a += 64, 5));
  }
}
BENCHMARK(BM_OtpPadReal);

static void BM_OtpPadFast(benchmark::State& state) {
  OtpEngine otp(CryptoProfile::kFast, 7);
  Addr a = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(otp.pad(a += 64, 5));
  }
}
BENCHMARK(BM_OtpPadFast);

static void BM_GeneralParentValue(benchmark::State& state) {
  GeneralCounterBlock cb;
  for (std::size_t i = 0; i < cb.counters.size(); ++i) cb.counters[i] = i * 977;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cb.parent_value());
    cb.counters[0]++;
  }
}
BENCHMARK(BM_GeneralParentValue);

static void BM_SplitSkipIncrement(benchmark::State& state) {
  SplitCounterBlock cb;
  std::size_t slot = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cb.increment_skip(slot));
    slot = (slot + 1) % kSplitArity;
  }
}
BENCHMARK(BM_SplitSkipIncrement);

static void BM_NodeEncodeDecode(benchmark::State& state) {
  SitNode node;
  node.id = {1, 42};
  for (std::size_t i = 0; i < 8; ++i) node.gc.counters[i] = i * 31;
  for (auto _ : state) {
    const Block b = node.to_block(0x1234);
    benchmark::DoNotOptimize(SitNode::from_block(node.id, false, b));
  }
}
BENCHMARK(BM_NodeEncodeDecode);

static void BM_MetadataCacheLookup(benchmark::State& state) {
  SetAssocCache<SitNode> cache(256 * 1024, 8, 64);
  for (Addr a = 0; a < 256 * 1024; a += 64) cache.insert(a, false, SitNode{});
  Addr a = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup(a));
    a = (a + 4096 + 64) % (256 * 1024);
  }
}
BENCHMARK(BM_MetadataCacheLookup);

// Micro-benchmarks (google-benchmark) for the primitive operations the
// simulator models: crypto, counter generation, node codecs, cache access.
//
// The crypto benchmarks run once per *available* backend (ref / ttable /
// hw), pinned per-instance so one process measures every pair. Two modes:
//
//   micro_ops [--crypto-backend B] [gbench flags]
//       full google-benchmark suite (crypto benches per backend)
//   micro_ops --json FILE
//       deterministic per-backend throughput measurement of the four crypto
//       hot paths, written as JSON — the recorded bench trajectory
//       (BENCH_micro.json at the repo root). Also prints a summary table
//       with the hw/ttable speedups the README perf table quotes.
//
// Either mode cross-verifies all backends via crypto_self_check() first, so
// a perf number can never be recorded for a backend that miscomputes.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "cache/cache.hpp"
#include "crypto/aes.hpp"
#include "crypto/backend.hpp"
#include "crypto/hmac.hpp"
#include "crypto/otp.hpp"
#include "crypto/sha256.hpp"
#include "crypto/siphash.hpp"
#include "sit/counter_block.hpp"
#include "sit/node.hpp"

using namespace steins;
using namespace steins::crypto;

namespace {

const Aes128::Key kBenchKey{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};

std::vector<CryptoBackend> available_backends() {
  std::vector<CryptoBackend> v{CryptoBackend::kRef, CryptoBackend::kTtable};
  if (aes_hw_available()) v.push_back(CryptoBackend::kHw);
  return v;
}

// ---------------------------------------------------------------------------
// google-benchmark registrations (one per backend for the crypto paths).

void BM_AesEncryptBlock(benchmark::State& state, CryptoBackend b) {
  Aes128 aes(kBenchKey, b);
  Aes128::BlockBytes blk{};
  for (auto _ : state) {
    aes.encrypt_block(blk.data());
    benchmark::DoNotOptimize(blk);
  }
}

void BM_AesEncrypt4(benchmark::State& state, CryptoBackend b) {
  Aes128 aes(kBenchKey, b);
  std::uint8_t blocks[64] = {};
  for (auto _ : state) {
    aes.encrypt4(blocks);
    benchmark::DoNotOptimize(blocks);
  }
}

void BM_Sha256Block(benchmark::State& state, CryptoBackend b) {
  std::uint8_t data[64] = {};
  for (auto _ : state) {
    Sha256 h(b);
    h.update(data);
    auto d = h.finalize();
    benchmark::DoNotOptimize(d);
  }
}

void BM_HmacSha256Tag64(benchmark::State& state, CryptoBackend b) {
  const std::uint8_t key[16] = {9};
  HmacSha256 mac({key, 16}, b);
  std::uint8_t data[72] = {};
  for (auto _ : state) {
    benchmark::DoNotOptimize(mac.tag64(data));
  }
}

void BM_OtpPadReal(benchmark::State& state, CryptoBackend b) {
  OtpEngine otp(CryptoProfile::kReal, 7, PadDomain::kV2, b);
  Addr a = 0;
  std::uint64_t c = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(otp.pad(a += 64, ++c));
  }
}

void register_crypto_benches() {
  for (CryptoBackend b : available_backends()) {
    const std::string suffix = std::string("/") + backend_name(b);
    benchmark::RegisterBenchmark(("BM_AesEncryptBlock" + suffix).c_str(), BM_AesEncryptBlock, b);
    benchmark::RegisterBenchmark(("BM_AesEncrypt4" + suffix).c_str(), BM_AesEncrypt4, b);
    benchmark::RegisterBenchmark(("BM_Sha256Block" + suffix).c_str(), BM_Sha256Block, b);
    benchmark::RegisterBenchmark(("BM_HmacSha256Tag64" + suffix).c_str(), BM_HmacSha256Tag64, b);
    benchmark::RegisterBenchmark(("BM_OtpPadReal" + suffix).c_str(), BM_OtpPadReal, b);
  }
}

// ---------------------------------------------------------------------------
// Non-crypto benches (backend-independent), unchanged from the original set.

void BM_OtpPadFast(benchmark::State& state) {
  OtpEngine otp(CryptoProfile::kFast, 7);
  Addr a = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(otp.pad(a += 64, 5));
  }
}
BENCHMARK(BM_OtpPadFast);

void BM_SipHashNodePayload(benchmark::State& state) {
  SipHash24 sip(SipHash24::Key{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16});
  std::uint8_t data[72] = {};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sip.hash(data));
  }
}
BENCHMARK(BM_SipHashNodePayload);

void BM_GeneralParentValue(benchmark::State& state) {
  GeneralCounterBlock cb;
  for (std::size_t i = 0; i < cb.counters.size(); ++i) cb.counters[i] = i * 977;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cb.parent_value());
    cb.counters[0]++;
  }
}
BENCHMARK(BM_GeneralParentValue);

void BM_SplitSkipIncrement(benchmark::State& state) {
  SplitCounterBlock cb;
  std::size_t slot = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cb.increment_skip(slot));
    slot = (slot + 1) % kSplitArity;
  }
}
BENCHMARK(BM_SplitSkipIncrement);

void BM_NodeEncodeDecode(benchmark::State& state) {
  SitNode node;
  node.id = {1, 42};
  for (std::size_t i = 0; i < 8; ++i) node.gc.counters[i] = i * 31;
  for (auto _ : state) {
    const Block b = node.to_block(0x1234);
    benchmark::DoNotOptimize(SitNode::from_block(node.id, false, b));
  }
}
BENCHMARK(BM_NodeEncodeDecode);

void BM_MetadataCacheLookup(benchmark::State& state) {
  SetAssocCache<SitNode> cache(256 * 1024, 8, 64);
  for (Addr a = 0; a < 256 * 1024; a += 64) cache.insert(a, false, SitNode{});
  Addr a = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup(a));
    a = (a + 4096 + 64) % (256 * 1024);
  }
}
BENCHMARK(BM_MetadataCacheLookup);

// ---------------------------------------------------------------------------
// --json mode: self-timed per-backend throughput, recorded as a trajectory
// point. Repeats each measurement and keeps the best (min ns/op) rep, the
// standard way to reject scheduler noise on shared CI runners.

template <typename Fn>
double measure_ns_per_op(Fn&& body) {
  using clock = std::chrono::steady_clock;
  constexpr double kMinRepNs = 2e7;  // >= 20 ms of work per rep
  constexpr int kReps = 5;
  std::uint64_t iters = 2048;
  body(iters);  // warmup + first calibration point
  double best = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    for (;;) {
      const auto t0 = clock::now();
      body(iters);
      const auto t1 = clock::now();
      const double ns = std::chrono::duration<double, std::nano>(t1 - t0).count();
      if (ns >= kMinRepNs) {
        best = std::min(best, ns / static_cast<double>(iters));
        break;
      }
      iters *= 4;  // too fast to time reliably; grow the batch
    }
  }
  return best;
}

struct BackendResults {
  CryptoBackend backend;
  double aes_block_ns;
  double otp_pad_ns;
  double sha256_block_ns;
  double hmac_tag64_ns;
};

BackendResults measure_backend(CryptoBackend b) {
  BackendResults r{b, 0, 0, 0, 0};

  Aes128 aes(kBenchKey, b);
  r.aes_block_ns = measure_ns_per_op([&](std::uint64_t n) {
    Aes128::BlockBytes blk{};
    for (std::uint64_t i = 0; i < n; ++i) {
      aes.encrypt_block(blk.data());
      benchmark::DoNotOptimize(blk);
    }
  });

  OtpEngine otp(CryptoProfile::kReal, 7, PadDomain::kV2, b);
  r.otp_pad_ns = measure_ns_per_op([&](std::uint64_t n) {
    Addr a = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      benchmark::DoNotOptimize(otp.pad(a += 64, i));
    }
  });

  r.sha256_block_ns = measure_ns_per_op([&](std::uint64_t n) {
    std::uint8_t data[64] = {};
    for (std::uint64_t i = 0; i < n; ++i) {
      Sha256 h(b);
      h.update(data);
      auto d = h.finalize();
      benchmark::DoNotOptimize(d);
    }
  });

  const std::uint8_t key[16] = {9};
  HmacSha256 mac({key, 16}, b);
  r.hmac_tag64_ns = measure_ns_per_op([&](std::uint64_t n) {
    std::uint8_t data[72] = {};
    for (std::uint64_t i = 0; i < n; ++i) {
      data[0] = static_cast<std::uint8_t>(i);
      benchmark::DoNotOptimize(mac.tag64(data));
    }
  });

  return r;
}

double mops(double ns_per_op) { return ns_per_op > 0 ? 1e3 / ns_per_op : 0.0; }

int run_json_mode(const std::string& path) {
  const auto backends = available_backends();
  std::vector<BackendResults> results;
  results.reserve(backends.size());
  for (CryptoBackend b : backends) {
    std::printf("measuring backend %-6s ...\n", backend_name(b));
    results.push_back(measure_backend(b));
  }

  const BackendResults* ttable = nullptr;
  const BackendResults* hw = nullptr;
  for (const auto& r : results) {
    if (r.backend == CryptoBackend::kTtable) ttable = &r;
    if (r.backend == CryptoBackend::kHw) hw = &r;
  }

  std::printf("\n%-8s %14s %14s %14s %14s\n", "backend", "aes_block", "otp_pad(64B)",
              "sha256_blk", "hmac_tag64");
  for (const auto& r : results) {
    std::printf("%-8s %11.1f ns %11.1f ns %11.1f ns %11.1f ns\n", backend_name(r.backend),
                r.aes_block_ns, r.otp_pad_ns, r.sha256_block_ns, r.hmac_tag64_ns);
  }
  double pad_speedup = 0.0, tag_speedup = 0.0;
  if (ttable != nullptr && hw != nullptr) {
    pad_speedup = ttable->otp_pad_ns / hw->otp_pad_ns;
    tag_speedup = ttable->hmac_tag64_ns / hw->hmac_tag64_ns;
    std::printf("\nhw over ttable: otp_pad %.2fx, hmac_tag64 %.2fx\n", pad_speedup, tag_speedup);
  } else {
    std::printf("\nhw backend unavailable on this machine; no speedup recorded\n");
  }

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open JSON output %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"micro_ops\",\n  \"schema_version\": 1,\n");
  std::fprintf(f, "  \"cpu\": {\"aesni\": %s, \"shani\": %s},\n",
               cpu_has_aesni() ? "true" : "false", cpu_has_shani() ? "true" : "false");
  std::fprintf(f, "  \"units\": {\"latency\": \"ns_per_op\", \"throughput\": \"mops\"},\n");
  std::fprintf(f, "  \"backends\": {\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(f,
                 "    \"%s\": {\"aes_block_ns\": %.2f, \"otp_pad_ns\": %.2f, "
                 "\"otp_pad_mops\": %.2f, \"sha256_block_ns\": %.2f, "
                 "\"hmac_tag64_ns\": %.2f, \"hmac_tag64_mops\": %.2f}%s\n",
                 backend_name(r.backend), r.aes_block_ns, r.otp_pad_ns, mops(r.otp_pad_ns),
                 r.sha256_block_ns, r.hmac_tag64_ns, mops(r.hmac_tag64_ns),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  },\n");
  if (ttable != nullptr && hw != nullptr) {
    std::fprintf(f,
                 "  \"speedup_hw_over_ttable\": {\"otp_pad\": %.2f, \"hmac_tag64\": %.2f},\n",
                 pad_speedup, tag_speedup);
  } else {
    std::fprintf(f, "  \"speedup_hw_over_ttable\": null,\n");
  }
  std::fprintf(f, "  \"self_check\": \"pass\"\n}\n");
  const bool ok = std::fflush(f) == 0 && std::ferror(f) == 0;
  if (std::fclose(f) != 0 || !ok) {
    std::fprintf(stderr, "error writing JSON output %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip our flags before google-benchmark sees argv.
  std::string json_path;
  std::vector<char*> passthrough{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--crypto-backend") == 0 && i + 1 < argc) {
      const char* name = argv[++i];
      if (auto b = parse_backend(name)) {
        set_crypto_backend(*b);
      } else if (std::strcmp(name, "auto") != 0) {
        std::fprintf(stderr, "unknown crypto backend '%s' (ref|ttable|hw|auto)\n", name);
        return 2;
      }
    } else {
      passthrough.push_back(argv[i]);
    }
  }

  std::string detail;
  if (!crypto_self_check(&detail)) {
    std::fprintf(stderr, "crypto self-check FAILED: %s\n", detail.c_str());
    return 1;
  }

  if (!json_path.empty()) return run_json_mode(json_path);

  register_crypto_benches();
  int pass_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc, passthrough.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// Fig. 12: execution time with split counters, normalized to WB-SC.
// Paper shape: Steins-SC ~0.998x WB-SC; Steins-SC ~39% faster than Steins-GC.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace steins;
  return bench::run_figure(argc, argv, "Fig. 12: Execution time (normalized to WB-SC)",
                           sc_comparison_schemes(), bench::metric_exec_time, "WB-SC");
}

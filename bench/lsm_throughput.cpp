// LSM engine throughput matrix: every scheme x YCSB mix over a
// compaction-heavy configuration (small memtable, aggressive L0 trigger,
// zipf 0.99), so the measured window includes steady WAL append, memtable
// flush, and compaction work — not just memtable hits.
//
// Each cell is an independent single-client engine run over its own
// System, so the matrix fans out across --jobs threads with bit-identical
// results to the sequential run. Rows are "SCHEME/mix"; columns report
// throughput, tail latency, and both write-amplification views:
//
//   wa       scheme-level: NVM block writes (data + counters + tree +
//            shadow) * 64 per user byte put
//   wa_log   engine-level: WAL + run bytes the engine persisted per user
//            byte put
//
// The gap between the two is the security tax on a log-structured write
// path.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "kv/lsm/lsm_ycsb.hpp"

using namespace steins;
using namespace steins::lsm;

int main(int argc, char** argv) {
  bench::BenchOptions opt = bench::parse_options(argc, argv);

  const SystemConfig cfg = [] {
    SystemConfig c = default_config();
    c.nvm.capacity_bytes = std::uint64_t{64} << 20;  // the LSM region is small
    return c;
  }();

  // Compaction-heavy engine geometry: a 2 KiB memtable over a 2k-key
  // universe keeps flushes and L0 compactions running throughout the
  // measured window.
  LsmConfig engine;
  engine.memtable_limit_bytes = 2048;
  engine.l0_compact_trigger = 4;

  const std::vector<Scheme> schemes = {Scheme::kWriteBack, Scheme::kAnubis, Scheme::kStar,
                                       Scheme::kScue, Scheme::kSteins};
  const std::vector<kv::Mix> mixes = {kv::Mix::kA, kv::Mix::kB, kv::Mix::kC, kv::Mix::kF};

  // The figure benches default to 200k accesses; an LSM op is much heavier
  // than a trace access, so cap the uncustomized default at 20k ops/cell.
  const std::uint64_t ops = opt.accesses > 20'000 && std::getenv("STEINS_ACCESSES") == nullptr
                                ? 20'000
                                : opt.accesses;

  std::printf("LSM engine throughput: schemes x YCSB mixes (compaction-heavy)\n");
  std::printf("(%llu ops per cell, memtable %llu B, L0 trigger %llu, zipf 0.99; %u job%s)\n\n",
              static_cast<unsigned long long>(ops),
              static_cast<unsigned long long>(engine.memtable_limit_bytes),
              static_cast<unsigned long long>(engine.l0_compact_trigger), opt.jobs,
              opt.jobs == 1 ? "" : "s");

  struct Cell {
    Scheme scheme;
    kv::Mix mix;
    LsmYcsbResult result;
  };
  std::vector<Cell> cells;
  for (const Scheme s : schemes) {
    for (const kv::Mix m : mixes) cells.push_back({s, m, {}});
  }

  const auto run_cell = [&](std::size_t i) {
    LsmYcsbConfig ycfg;
    ycfg.mix = cells[i].mix;
    ycfg.ops = ops;
    ycfg.engine = engine;
    cells[i].result = run_lsm_ycsb(cfg, cells[i].scheme, ycfg);
  };
  if (opt.jobs > 1) {
    ThreadPool pool(opt.jobs);
    pool.for_each_index(cells.size(), run_cell);
  } else {
    for (std::size_t i = 0; i < cells.size(); ++i) run_cell(i);
  }

  const double ns = cfg.cycles_to_seconds(1) * 1e9;
  ResultTable table("LSM throughput, latency, and write amplification by scheme/mix",
                    {"kops_s", "p50_ns", "p99_ns", "wa", "wa_log", "flushes", "compactions"});
  for (const Cell& c : cells) {
    const LatencyHistogram& h = c.result.all_lat;
    table.add_row(scheme_name(c.scheme, cfg.counter_mode) + "/" + kv::mix_name(c.mix),
                  {c.result.kops_per_sec, h.percentile(50) * ns, h.percentile(99) * ns,
                   c.result.write_amp, c.result.logical_write_amp,
                   static_cast<double>(c.result.engine_stats.flushes),
                   static_cast<double>(c.result.engine_stats.compactions)});
  }
  table.print();
  if (!opt.json_path.empty()) {
    if (bench::write_table_json(opt.json_path, table, opt)) {
      std::printf("wrote JSON results to %s\n", opt.json_path.c_str());
    }
  }
  return 0;
}

// Ablation: recovery-time scaling — Steins vs whole-tree reconstruction
// (SCUE / BMT), reproducing the paper's argument for excluding SCUE:
// "SCUE needs to reconstruct the entire tree from all the leaf nodes during
// recovery, which requires hours for TB memory" (§I, §II-D), while Steins'
// recovery cost depends only on the metadata cache size.
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "schemes/bmt.hpp"
#include "schemes/scue.hpp"
#include "schemes/steins.hpp"

using namespace steins;

namespace {

template <typename Mem>
RecoveryResult run_one(Mem& mem, std::uint64_t writes) {
  Xoshiro256 rng(5);
  Block data{};
  Cycle now = 0;
  const std::uint64_t blocks = mem.config().nvm.capacity_bytes / kBlockSize;
  for (std::uint64_t i = 0; i < writes; ++i) {
    now = mem.write_block(rng.below(blocks) * kBlockSize, data, now);
  }
  mem.crash();
  return mem.recover();
}

}  // namespace

int main() {
  std::printf("Ablation: recovery time vs NVM capacity (fixed 10k-write workload)\n");
  std::printf("Steins scales with the metadata cache; SCUE/BMT scale with MEMORY SIZE.\n\n");
  std::printf("%-10s %14s %14s %14s\n", "capacity", "Steins-GC (s)", "SCUE (s)", "BMT (s)");

  std::vector<double> scue_seconds;
  std::vector<std::uint64_t> capacities = {16ULL << 20, 64ULL << 20, 256ULL << 20};
  for (const std::uint64_t cap : capacities) {
    SystemConfig cfg = default_config();
    cfg.nvm.capacity_bytes = cap;

    SteinsMemory steins_mem(cfg);
    const RecoveryResult rs = run_one(steins_mem, 10000);
    ScueMemory scue_mem(cfg);
    const RecoveryResult rc = run_one(scue_mem, 10000);
    BmtMemory bmt_mem(cfg);
    const RecoveryResult rb = run_one(bmt_mem, 10000);
    if (!rs.ok() || !rc.ok() || !rb.ok()) {
      std::fprintf(stderr, "unexpected recovery failure\n");
      return 1;
    }
    scue_seconds.push_back(rc.seconds);
    std::printf("%6lluMB   %14.4f %14.4f %14.4f\n",
                static_cast<unsigned long long>(cap >> 20), rs.seconds, rc.seconds, rb.seconds);
  }

  // SCUE recovery cost is linear in capacity: extrapolate to the paper's
  // "hours for TB memory" claim.
  const double per_byte = scue_seconds.back() / static_cast<double>(capacities.back());
  std::printf("\nSCUE extrapolation (linear in capacity):\n");
  for (const double tb : {1.0, 4.0}) {
    const double secs = per_byte * tb * 1024 * 1024 * 1024 * 1024;
    std::printf("  %4.0f TB -> %8.0f s (%.1f h)\n", tb, secs, secs / 3600.0);
  }
  std::printf("Steins stays at the sub-second level regardless (cache-bounded).\n");
  return 0;
}

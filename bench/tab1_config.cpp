// Table I: the evaluated NVM system configuration.
#include <cstdio>

#include "common/config.hpp"
#include "sit/geometry.hpp"

int main() {
  using namespace steins;
  std::printf("Table I: The configurations of the evaluated NVM system\n\n");
  const SystemConfig cfg = default_config();
  std::printf("%s\n", cfg.describe().c_str());

  const SitGeometry gc(cfg.nvm, CounterMode::kGeneral);
  const SitGeometry sc(cfg.nvm, CounterMode::kSplit);
  std::printf("Derived SIT geometry\n");
  std::printf("  GC tree height       %u levels (including root), %llu leaves\n", gc.height(),
              static_cast<unsigned long long>(gc.level_count(0)));
  std::printf("  SC tree height       %u levels (including root), %llu leaves\n", sc.height(),
              static_cast<unsigned long long>(sc.level_count(0)));
  std::printf("  NVM read latency     %llu cycles, write occupancy %llu cycles\n",
              static_cast<unsigned long long>(cfg.nvm_read_cycles()),
              static_cast<unsigned long long>(cfg.nvm_write_cycles()));
  return 0;
}

// Recovery-storm bench: multi-cycle crash/recovery trials with nested
// recovery crashes, recorded as a per-(scheme, cycle-count) JSON artifact.
//
// Every trial runs K workload/crash/recover cycles on one instance; each
// cycle's recovery is itself crashed at a trial-varied persist boundary
// (odd trials re-arm the crash on every retry, so convergence relies on
// the exponential persist-budget backoff) and re-entered through the
// bounded retry loop. The artifact records the attempts-to-converge
// distribution and the modeled recovery-time p50/p99 per cell.
//
// Positional argv[1] (or STEINS_ACCESSES) sets the trials per cell,
// STEINS_SEED overrides the campaign seed, and --jobs/--json/--verbose
// follow the other benches. Exit status is nonzero on any silent-corruption
// or recovery-crash-unrecoverable verdict so CI can gate on the artifact it
// uploads.
#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "fault/campaign.hpp"

using namespace steins;

namespace {

// Between-cycle fault classes: a pure-power-loss storm plus the two
// classes whose damage recovery must absorb rather than merely detect.
constexpr FaultClass kStormClasses[] = {FaultClass::kNone, FaultClass::kTornWrite,
                                        FaultClass::kAdrLoss};
constexpr std::uint64_t kCycleCounts[] = {1, 2, 4};

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double idx = (p / 100.0) * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

struct Cell {
  SchemeSpec spec;
  std::uint64_t cycles = 1;
  std::vector<MulticycleOutcome> outcomes;

  std::map<FaultVerdict, std::uint64_t> verdicts() const {
    std::map<FaultVerdict, std::uint64_t> out;
    for (const MulticycleOutcome& o : outcomes) ++out[o.verdict];
    return out;
  }
  std::vector<double> all_attempts() const {
    std::vector<double> out;
    for (const MulticycleOutcome& o : outcomes) {
      for (const std::uint64_t a : o.attempts_per_cycle) {
        out.push_back(static_cast<double>(a));
      }
    }
    return out;
  }
  std::vector<double> all_seconds() const {
    std::vector<double> out;
    for (const MulticycleOutcome& o : outcomes) {
      for (const double s : o.recovery_seconds_per_cycle) out.push_back(s);
    }
    return out;
  }
};

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opt = bench::parse_options(argc, argv);

  // parse_options() sizes benches in accesses; here one "access" is one
  // trial per (scheme, cycle-count) cell.
  const std::uint64_t trials = opt.accesses == 200'000 ? 8 : opt.accesses;
  std::uint64_t seed = 42;
  if (const char* env = std::getenv("STEINS_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
  }
  if (trials == 0) {
    std::fprintf(stderr, "error: a 0-trial storm would report vacuous success\n");
    return 2;
  }

  FaultTrialOptions workload;
  workload.ops = 192;
  workload.footprint_blocks = 512;
  workload.capacity_mb = 8;
  workload.mcache_kb = 16;
  // Re-armed trials must out-double the largest boundary census (SCUE's
  // full-tree rebuild persists thousands of nodes at this capacity).
  workload.retry_policy.max_recovery_attempts = 24;

  std::vector<Cell> cells;
  for (const SchemeSpec& spec : campaign_schemes(CounterMode::kGeneral)) {
    for (const std::uint64_t cycles : kCycleCounts) {
      Cell c;
      c.spec = spec;
      c.cycles = cycles;
      c.outcomes.resize(trials);
      cells.push_back(std::move(c));
    }
  }

  std::printf("recovery storm: %llu trials x %zu cells (schemes x cycle counts), "
              "seed %llu, %u job%s\n\n",
              static_cast<unsigned long long>(trials), cells.size(),
              static_cast<unsigned long long>(seed), opt.jobs,
              opt.jobs == 1 ? "" : "s");

  // Flatten (cell, trial) across the pool; every slot is a pure function
  // of (seed, scheme, cycles, trial), so the artifact is bit-identical for
  // any --jobs value.
  ThreadPool pool(opt.jobs);
  pool.for_each_index(cells.size() * trials, [&](std::size_t flat) {
    Cell& cell = cells[flat / trials];
    const std::uint64_t trial = flat % trials;
    FaultTrialOptions w = workload;
    w.recovery_crash_boundary = 1 + trial % 7;
    w.recovery_crash_rearm = trial % 2 == 1;
    const FaultClass cls = kStormClasses[trial % std::size(kStormClasses)];
    cell.outcomes[trial] =
        run_multicycle_trial(cell.spec, cls, seed, trial, cell.cycles, w);
  });

  std::uint64_t silent = 0;
  std::uint64_t unrecoverable = 0;
  std::string cells_json;
  std::printf("%-12s %6s %10s %8s %8s %12s %12s %12s\n", "scheme", "cycles",
              "recovered", "retried", "other", "attempts-p50", "attempts-max",
              "rec-p99-ms");
  for (const Cell& cell : cells) {
    const auto verdicts = cell.verdicts();
    const auto count = [&](FaultVerdict v) -> std::uint64_t {
      const auto it = verdicts.find(v);
      return it == verdicts.end() ? 0 : it->second;
    };
    silent += count(FaultVerdict::kSilentCorruption);
    unrecoverable += count(FaultVerdict::kRecoveryCrashUnrecoverable);
    const std::vector<double> attempts = cell.all_attempts();
    const std::vector<double> seconds = cell.all_seconds();
    const double a_p50 = percentile(attempts, 50);
    const double a_max = attempts.empty() ? 0.0
                                          : *std::max_element(attempts.begin(),
                                                              attempts.end());
    const std::uint64_t recovered = count(FaultVerdict::kRecovered);
    const std::uint64_t retried = count(FaultVerdict::kRecoveredAfterRetry);
    const std::uint64_t other =
        cell.outcomes.size() - recovered - retried;
    std::printf("%-12s %6llu %10llu %8llu %8llu %12.1f %12.0f %12.4f\n",
                cell.spec.label.c_str(), static_cast<unsigned long long>(cell.cycles),
                static_cast<unsigned long long>(recovered),
                static_cast<unsigned long long>(retried),
                static_cast<unsigned long long>(other), a_p50, a_max,
                percentile(seconds, 99) * 1e3);
    if (opt.verbose) {
      for (const MulticycleOutcome& o : cell.outcomes) {
        std::printf("  trial %llu -> %s (%s), %llu cycle(s)\n",
                    static_cast<unsigned long long>(o.trial),
                    fault_verdict_name(o.verdict), o.detail.c_str(),
                    static_cast<unsigned long long>(o.cycles_run));
      }
    }

    // Attempts-to-converge histogram for the artifact.
    std::map<std::uint64_t, std::uint64_t> hist;
    for (const double a : attempts) ++hist[static_cast<std::uint64_t>(a)];
    std::string hist_json = "[";
    for (const auto& [a, n] : hist) {
      if (hist_json.size() > 1) hist_json += ", ";
      hist_json += "[" + std::to_string(a) + ", " + std::to_string(n) + "]";
    }
    hist_json += "]";

    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "{\"scheme\": \"%s\", \"cycles\": %llu, \"trials\": %zu,\n"
                  "   \"verdicts\": {\"recovered\": %llu, \"recovered_after_retry\": "
                  "%llu, \"salvaged\": %llu, \"detected\": %llu, \"silent\": %llu, "
                  "\"unrecoverable\": %llu},\n"
                  "   \"attempts\": {\"p50\": %.3f, \"p99\": %.3f, \"max\": %.0f, "
                  "\"hist\": %s},\n"
                  "   \"recovery_seconds\": {\"p50\": %.9f, \"p99\": %.9f}}",
                  cell.spec.label.c_str(),
                  static_cast<unsigned long long>(cell.cycles), cell.outcomes.size(),
                  static_cast<unsigned long long>(recovered),
                  static_cast<unsigned long long>(retried),
                  static_cast<unsigned long long>(count(FaultVerdict::kSalvaged)),
                  static_cast<unsigned long long>(count(FaultVerdict::kDetected)),
                  static_cast<unsigned long long>(count(FaultVerdict::kSilentCorruption)),
                  static_cast<unsigned long long>(
                      count(FaultVerdict::kRecoveryCrashUnrecoverable)),
                  a_p50, percentile(attempts, 99), a_max, hist_json.c_str(),
                  percentile(seconds, 50), percentile(seconds, 99));
    if (!cells_json.empty()) cells_json += ",\n  ";
    cells_json += buf;
  }

  if (!opt.json_path.empty()) {
    std::string json = "{\"trials_per_cell\": " + std::to_string(trials) +
                       ", \"seed\": " + std::to_string(seed) +
                       ", \"max_recovery_attempts\": " +
                       std::to_string(workload.retry_policy.max_recovery_attempts) +
                       ",\n \"cells\": [\n  " + cells_json + "\n]}\n";
    std::FILE* f = std::fopen(opt.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open JSON output %s: %s\n", opt.json_path.c_str(),
                   std::strerror(errno));
      return 1;
    }
    const bool wrote = std::fwrite(json.data(), 1, json.size(), f) == json.size();
    if (std::fclose(f) != 0 || !wrote) {
      std::fprintf(stderr, "error writing JSON output %s: %s\n", opt.json_path.c_str(),
                   std::strerror(errno));
      return 1;
    }
    std::printf("\nwrote JSON results to %s\n", opt.json_path.c_str());
  }

  if (silent > 0 || unrecoverable > 0) {
    std::fprintf(stderr,
                 "\nFAIL: %llu silent-corruption + %llu unrecoverable verdict(s)\n",
                 static_cast<unsigned long long>(silent),
                 static_cast<unsigned long long>(unrecoverable));
    return 1;
  }
  return 0;
}

// Ablation: multi-controller scalability (paper §IV-F).
//
// Multiple clients drive write streams at a Steins system with 1..6 memory
// controllers (Cascade Lake: 2 MCs x 3 DIMMs). Disjoint streams scale with
// the controller count; a shared hot DIMM serializes.
#include <cstdio>

#include "common/rng.hpp"
#include "sim/multi_controller.hpp"

using namespace steins;

namespace {

/// `clients` concurrent writers, each issuing `ops` writes. Returns the
/// makespan (busiest controller frontier).
constexpr std::uint64_t kRegionBlocks = 1 << 18;  // 16 MB per client region
constexpr std::size_t kDimmBytes = kRegionBlocks * kBlockSize;

Cycle run_clients(MultiControllerMemory& mem, unsigned clients, std::uint64_t ops,
                  bool disjoint) {
  std::vector<Xoshiro256> rngs;
  for (unsigned c = 0; c < clients; ++c) rngs.emplace_back(100 + c);
  Block data{};
  // Round-robin issue: each client's requests are independent streams; a
  // client's own requests serialize on its issue order. Regions are
  // DIMM-sized, so with interleave = DIMM size, client c's region lives
  // entirely on one controller.
  std::vector<Cycle> client_now(clients, 0);
  for (std::uint64_t i = 0; i < ops; ++i) {
    for (unsigned c = 0; c < clients; ++c) {
      const std::uint64_t region = disjoint ? c : 0;
      const Addr addr =
          (region * kRegionBlocks + rngs[c].below(kRegionBlocks)) * kBlockSize;
      client_now[c] = mem.write_block(addr, data, client_now[c]);
    }
  }
  return mem.max_frontier();
}

}  // namespace

int main() {
  std::printf("Ablation: multi-controller scalability (paper SIV-F)\n");
  std::printf("6 clients x 3000 writes each; Steins-GC per controller.\n\n");
  std::printf("%-13s %16s %16s %12s\n", "controllers", "disjoint (cy)", "shared-hot (cy)",
              "speedup");

  Cycle base = 0;
  for (const unsigned mcs : {1u, 2u, 3u, 6u}) {
    SystemConfig cfg = default_config();
    cfg.nvm.capacity_bytes = 6ULL << 30;

    MultiControllerMemory disjoint(cfg, Scheme::kSteins, mcs, kDimmBytes);
    const Cycle t_disjoint = run_clients(disjoint, 6, 3000, true);
    MultiControllerMemory shared(cfg, Scheme::kSteins, mcs, kDimmBytes);
    const Cycle t_shared = run_clients(shared, 6, 3000, false);

    if (mcs == 1) base = t_disjoint;
    std::printf("%-13u %16llu %16llu %11.2fx\n", mcs,
                static_cast<unsigned long long>(t_disjoint),
                static_cast<unsigned long long>(t_shared),
                static_cast<double>(base) / static_cast<double>(t_disjoint));
  }
  std::printf("\nDisjoint streams scale across controllers (super-linear gains come\n");
  std::printf("from the aggregate per-controller metadata caches); requests to one\n");
  std::printf("hot DIMM are processed serially by its Steins instance (paper SIV-F).\n");
  return 0;
}

// Ablation: metadata cache size sweep (paper §IV: "larger cache sizes
// deliver higher performance"). Steins-GC vs WB-GC across 64 KB .. 1 MB.
#include "bench_common.hpp"

using namespace steins;

int main(int argc, char** argv) {
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  std::printf("Ablation: metadata cache size (workload: mcf)\n\n");

  const std::vector<std::size_t> sizes = {64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20};
  ResultTable table("Execution cycles normalized to 256KB",
                    {"WB-GC", "Steins-GC", "Steins-GC mcache hit%"});

  std::map<std::string, double> base_cycles;
  for (const std::size_t size : sizes) {
    double wb = 0, st = 0, hit = 0;
    for (const auto& [scheme, out] :
         {std::pair<Scheme, double*>{Scheme::kWriteBack, &wb}, {Scheme::kSteins, &st}}) {
      SystemConfig cfg = default_config();
      cfg.secure.metadata_cache.size_bytes = size;
      System sys(cfg, scheme);
      auto trace = make_workload("mcf", opt.accesses + opt.warmup);
      const RunStats stats = sys.run(*trace, opt.warmup);
      *out = static_cast<double>(stats.cycles);
      if (scheme == Scheme::kSteins) hit = stats.mcache_hit_rate * 100.0;
    }
    if (size == (256 << 10)) {
      base_cycles["wb"] = wb;
      base_cycles["st"] = st;
    }
    char name[32];
    std::snprintf(name, sizeof(name), "%zuKB", size / 1024);
    table.add_row(name, {wb, st, hit});
  }

  // Normalize the cycle columns to the 256 KB row.
  ResultTable norm("Execution cycles (normalized to the 256KB row)",
                   {"WB-GC", "Steins-GC", "Steins mcache hit%"});
  for (const auto& [name, vals] : table.rows()) {
    norm.add_row(name, {vals[0] / base_cycles["wb"], vals[1] / base_cycles["st"], vals[2]});
  }
  norm.print();
  return 0;
}

// Fig. 13: NVM write traffic, normalized to WB-GC.
// Paper shape: ASIT ~2x, STAR ~1.3x, Steins-GC ~1.05x.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace steins;
  return bench::run_figure(argc, argv, "Fig. 13: Write traffic (normalized to WB-GC)",
                           gc_comparison_schemes(), bench::metric_write_traffic, "WB-GC");
}

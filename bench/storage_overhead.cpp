// §IV-E: storage overhead of each scheme on 16 GB NVM.
//
// All schemes store the full SIT; the differences are the leaf-region size
// (GC 1/8 vs SC 1/64 of memory), the extra cache space for cache-trees
// (ASIT 1/8, STAR 1/64 of the metadata cache), and the on-chip registers.
#include <cstdio>

#include "common/config.hpp"
#include "sit/geometry.hpp"

using namespace steins;

namespace {

double mb(std::uint64_t bytes) { return static_cast<double>(bytes) / (1024.0 * 1024.0); }

}  // namespace

int main() {
  const SystemConfig cfg = default_config();
  const SitGeometry gc(cfg.nvm, CounterMode::kGeneral);
  const SitGeometry sc(cfg.nvm, CounterMode::kSplit);
  const std::size_t cache = cfg.secure.metadata_cache.size_bytes;

  std::printf("Storage overhead (paper SIV-E), 16 GB NVM, %zu KB metadata cache\n\n",
              cache / 1024);
  std::printf("%-12s %14s %14s %16s %18s\n", "scheme", "SIT total(MB)", "leaves(MB)",
              "extra cache(KB)", "NV registers(B)");

  // WB-GC / ASIT / STAR / Steins-GC share the GC tree in NVM.
  std::printf("%-12s %14.1f %14.1f %16.1f %18s\n", "WB-GC", mb(gc.storage_bytes()),
              mb(gc.leaf_storage_bytes()), 0.0, "64 (root)");
  // ASIT: 8 B HMAC per 64 B cache line -> 1/8 extra cache; 64 B tree root.
  std::printf("%-12s %14.1f %14.1f %16.1f %18s\n", "ASIT", mb(gc.storage_bytes()),
              mb(gc.leaf_storage_bytes()), static_cast<double>(cache) / 8.0 / 1024.0,
              "64+64 (roots)");
  // STAR: 8 B set-MAC per 8-way set -> 1/64 extra cache; 64 B tree root.
  std::printf("%-12s %14.1f %14.1f %16.1f %18s\n", "STAR", mb(gc.storage_bytes()),
              mb(gc.leaf_storage_bytes()), static_cast<double>(cache) / 64.0 / 1024.0,
              "64+64 (roots)");
  // Steins: no cache-tree; 64 B LInc register + 128 B NV buffer + records.
  const SitGeometry* geos[2] = {&gc, &sc};
  const char* names[2] = {"Steins-GC", "Steins-SC"};
  for (int i = 0; i < 2; ++i) {
    const std::uint64_t record_region = (cache / kBlockSize) * 4;  // 4 B offset per line
    std::printf("%-12s %14.1f %14.1f %16.1f %18s (+%lluKB records in NVM)\n", names[i],
                mb(geos[i]->storage_bytes()), mb(geos[i]->leaf_storage_bytes()), 0.0,
                "64+64+128", static_cast<unsigned long long>(record_region / 1024));
  }

  std::printf("\nSC vs GC leaf storage: %.0f MB vs %.0f MB (8x reduction, one fewer level)\n",
              mb(sc.leaf_storage_bytes()), mb(gc.leaf_storage_bytes()));
  return 0;
}

// Fig. 10: data write latency, normalized to WB-GC.
// Paper shape: ASIT ~2.14x, STAR ~1.67x, Steins-GC ~1.06x.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace steins;
  return bench::run_figure(argc, argv, "Fig. 10: Write latency (normalized to WB-GC)",
                           gc_comparison_schemes(), bench::metric_write_latency, "WB-GC",
                           bench::metric_write_latency_p99);
}

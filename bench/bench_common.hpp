// Shared plumbing for the figure benches: trace sizing (overridable via
// environment or argv) and the metric extractors the paper's figures use.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/config.hpp"
#include "sim/experiment.hpp"
#include "trace/workloads.hpp"

namespace steins::bench {

struct BenchOptions {
  std::uint64_t accesses = 200'000;  // measured accesses per (workload, scheme)
  std::uint64_t warmup = 20'000;     // warmup accesses (stats reset after)
  bool verbose = false;
};

/// Parse sizing from argv[1]/argv[2] or STEINS_ACCESSES / STEINS_WARMUP.
inline BenchOptions parse_options(int argc, char** argv) {
  BenchOptions opt;
  if (const char* env = std::getenv("STEINS_ACCESSES")) {
    opt.accesses = std::strtoull(env, nullptr, 10);
  }
  if (const char* env = std::getenv("STEINS_WARMUP")) {
    opt.warmup = std::strtoull(env, nullptr, 10);
  }
  if (argc > 1) opt.accesses = std::strtoull(argv[1], nullptr, 10);
  if (argc > 2) opt.warmup = std::strtoull(argv[2], nullptr, 10);
  if (std::getenv("STEINS_VERBOSE") != nullptr) opt.verbose = true;
  return opt;
}

inline double metric_exec_time(const RunStats& s) { return static_cast<double>(s.cycles); }
inline double metric_write_latency(const RunStats& s) { return s.write_latency_cycles; }
inline double metric_read_latency(const RunStats& s) { return s.read_latency_cycles; }
inline double metric_write_traffic(const RunStats& s) {
  return static_cast<double>(s.mem.nvm_writes());
}
inline double metric_energy(const RunStats& s) { return s.energy_nj; }

/// Run one paper figure: a (workloads x schemes) matrix, normalized per
/// workload to `baseline`, printed as the figure's series.
inline int run_figure(int argc, char** argv, const std::string& title,
                      const std::vector<SchemeSpec>& schemes, double (*metric)(const RunStats&),
                      const std::string& baseline) {
  const BenchOptions opt = parse_options(argc, argv);
  std::printf("%s\n", title.c_str());
  std::printf("(%llu accesses per cell + %llu warmup; deterministic traces)\n\n",
              static_cast<unsigned long long>(opt.accesses),
              static_cast<unsigned long long>(opt.warmup));
  ExperimentRunner runner(default_config());
  const auto results =
      runner.run_matrix(workload_names(), schemes, opt.accesses, opt.warmup, opt.verbose);
  const ResultTable table =
      ExperimentRunner::make_table(title, results, schemes, metric, baseline);
  table.print();
  return 0;
}

}  // namespace steins::bench

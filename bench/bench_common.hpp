// Shared plumbing for the figure benches: trace sizing and parallelism
// (overridable via environment or argv), the metric extractors the paper's
// figures use, and optional machine-readable JSON output for recording
// bench trajectories across commits.
#pragma once

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/config.hpp"
#include "common/thread_pool.hpp"
#include "crypto/backend.hpp"
#include "sim/experiment.hpp"
#include "trace/workloads.hpp"

namespace steins::bench {

struct BenchOptions {
  std::uint64_t accesses = 200'000;  // measured accesses per (workload, scheme)
  std::uint64_t warmup = 20'000;     // warmup accesses (stats reset after)
  unsigned jobs = 1;                 // worker threads for the matrix (1 = sequential)
  std::string json_path;             // if non-empty, dump the table as JSON here
  bool verbose = false;
};

/// Parse sizing from positional argv[1]/argv[2] or STEINS_ACCESSES /
/// STEINS_WARMUP, parallelism from `--jobs N` / STEINS_JOBS (default: all
/// hardware threads; 1 reproduces the sequential run exactly), JSON output
/// from `--json FILE` / STEINS_JSON, and the crypto backend from
/// `--crypto-backend ref|ttable|hw|auto` (the STEINS_CRYPTO_BACKEND env var
/// is read by the registry itself; the flag wins). Backends are
/// bit-identical, so this only affects host wall-clock — it is recorded in
/// the JSON provenance so trajectory points stay comparable. Unknown
/// --flags, flags missing their value, and extra positionals exit(2).
inline BenchOptions parse_options(int argc, char** argv) {
  BenchOptions opt;
  opt.jobs = ThreadPool::default_jobs();  // reads STEINS_JOBS
  if (const char* env = std::getenv("STEINS_ACCESSES")) {
    opt.accesses = std::strtoull(env, nullptr, 10);
  }
  if (const char* env = std::getenv("STEINS_WARMUP")) {
    opt.warmup = std::strtoull(env, nullptr, 10);
  }
  if (const char* env = std::getenv("STEINS_JSON")) opt.json_path = env;
  if (std::getenv("STEINS_VERBOSE") != nullptr) opt.verbose = true;

  // Unknown --flags (and flags missing their value) are hard errors: a
  // typo like `--job 4` must not be silently consumed as a positional
  // access count.
  const auto value_of = [&](int* i) -> const char* {
    if (*i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[*i]);
      std::exit(2);
    }
    return argv[++*i];
  };
  // A non-numeric positional (or numeric flag value) is likewise an error:
  // `kv_throughput 20OO0` must not silently run 20 accesses.
  const auto parse_u64 = [](const char* what, const char* s) -> std::uint64_t {
    char* end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(s, &end, 10);
    if (end == s || *end != '\0' || errno == ERANGE) {
      std::fprintf(stderr, "invalid %s: %s (expected an unsigned integer)\n", what, s);
      std::exit(2);
    }
    return v;
  };
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0) {
      const std::uint64_t v = parse_u64("--jobs", value_of(&i));
      opt.jobs = v < 1 ? 1u : static_cast<unsigned>(v);
    } else if (std::strcmp(argv[i], "--crypto-backend") == 0) {
      const char* name = value_of(&i);
      const auto b = crypto::parse_backend(name);
      if (!b) {
        std::fprintf(stderr,
                     "unknown crypto backend: %s (expected ref|ttable|hw|auto)\n",
                     name);
        std::exit(2);
      }
      crypto::set_crypto_backend(*b);
    } else if (std::strcmp(argv[i], "--json") == 0) {
      opt.json_path = value_of(&i);
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      opt.verbose = true;
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      std::fprintf(stderr,
                   "unknown option: %s (expected [accesses [warmup]] --jobs N "
                   "--json FILE --crypto-backend ref|ttable|hw|auto --verbose)\n",
                   argv[i]);
      std::exit(2);
    } else if (positional == 0) {
      opt.accesses = parse_u64("accesses", argv[i]);
      ++positional;
    } else if (positional == 1) {
      opt.warmup = parse_u64("warmup", argv[i]);
      ++positional;
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", argv[i]);
      std::exit(2);
    }
  }
  return opt;
}

inline double metric_exec_time(const RunStats& s) { return static_cast<double>(s.cycles); }
inline double metric_write_latency(const RunStats& s) { return s.write_latency_cycles; }
inline double metric_read_latency(const RunStats& s) { return s.read_latency_cycles; }
inline double metric_write_latency_p99(const RunStats& s) { return s.write_latency_p99; }
inline double metric_read_latency_p99(const RunStats& s) { return s.read_latency_p99; }
inline double metric_write_traffic(const RunStats& s) {
  return static_cast<double>(s.mem.nvm_writes());
}
inline double metric_energy(const RunStats& s) { return s.energy_nj; }

/// Write `table` (plus the run's sizing, for provenance) as JSON to `path`.
/// `extra_members` is appended verbatim inside the top-level object (e.g.
/// `, "p99_table": {...}`). Returns false — with the failing path and OS
/// error on stderr — if the file cannot be opened or the write does not
/// complete (e.g. disk full); a recorded bench trajectory must never
/// silently drop a data point.
inline bool write_table_json(const std::string& path, const ResultTable& table,
                             const BenchOptions& opt,
                             const std::string& extra_members = {}) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open JSON output %s: %s\n", path.c_str(),
                 std::strerror(errno));
    return false;
  }
  const int written = std::fprintf(
      f,
      "{\"accesses\": %llu, \"warmup\": %llu, \"jobs\": %u, \"crypto_backend\": \"%s\",\n"
      " \"table\": %s%s}\n",
      static_cast<unsigned long long>(opt.accesses),
      static_cast<unsigned long long>(opt.warmup), opt.jobs,
      crypto::backend_name(crypto::active_backend()), table.to_json().c_str(),
      extra_members.c_str());
  const bool flushed = std::fflush(f) == 0 && std::ferror(f) == 0;
  if (std::fclose(f) != 0 || written < 0 || !flushed) {
    std::fprintf(stderr, "error writing JSON output %s: %s\n", path.c_str(),
                 std::strerror(errno));
    return false;
  }
  return true;
}

/// Run one paper figure: a (workloads x schemes) matrix, normalized per
/// workload to `baseline`, printed as the figure's series (and optionally
/// recorded as JSON). When `tail_metric` is given (the latency figures
/// pass the p99 extractor), a companion table — same normalization — is
/// printed below the figure and recorded as `"p99_table"` in the JSON.
inline int run_figure(int argc, char** argv, const std::string& title,
                      const std::vector<SchemeSpec>& schemes, double (*metric)(const RunStats&),
                      const std::string& baseline,
                      double (*tail_metric)(const RunStats&) = nullptr) {
  const BenchOptions opt = parse_options(argc, argv);
  std::printf("%s\n", title.c_str());
  std::printf("(%llu accesses per cell + %llu warmup; deterministic traces; %u job%s)\n\n",
              static_cast<unsigned long long>(opt.accesses),
              static_cast<unsigned long long>(opt.warmup), opt.jobs, opt.jobs == 1 ? "" : "s");
  ExperimentRunner runner(default_config());
  const auto results = runner.run_matrix(workload_names(), schemes, opt.accesses, opt.warmup,
                                         opt.verbose, opt.jobs);
  const ResultTable table =
      ExperimentRunner::make_table(title, results, schemes, metric, baseline);
  table.print();
  std::string extra;
  if (tail_metric != nullptr) {
    const ResultTable tail = ExperimentRunner::make_table(title + " — p99", results, schemes,
                                                          tail_metric, baseline);
    std::printf("\n");
    tail.print();
    extra = ",\n \"p99_table\": " + tail.to_json();
  }
  if (!opt.json_path.empty()) {
    if (write_table_json(opt.json_path, table, opt, extra)) {
      std::printf("wrote JSON results to %s\n", opt.json_path.c_str());
    }
  }
  return 0;
}

}  // namespace steins::bench

// Fig. 16: energy consumption with split counters, normalized to WB-SC.
// Paper shape: Steins-SC ~ WB-SC and ~9.4% below Steins-GC.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace steins;
  return bench::run_figure(argc, argv, "Fig. 16: Energy consumption (normalized to WB-SC)",
                           sc_comparison_schemes(), bench::metric_energy, "WB-SC");
}

// e2e_throughput: end-to-end simulator throughput trajectory (host ops/sec).
//
// Runs the paper's GC and SC comparison matrices (the same cells as
// `steins_sim --matrix`) and records how many simulated accesses per host
// second each scheme sustains. The committed BENCH_e2e.json gives every
// future PR a measured baseline for the simulation core, the way
// BENCH_micro.json already does for the crypto kernels.
//
//   e2e_throughput --json BENCH_e2e.json
//   e2e_throughput 200000 20000 --jobs 1 --deep-run
//   e2e_throughput --baseline-ops 123456 --baseline-label "seed @be4fd2c"
//
// Simulated results are deterministic; only the ops/sec figures depend on
// the host. `--baseline-ops` embeds a previously measured total (e.g. the
// pre-refactor seed, measured back-to-back on the same host) so the JSON
// records an honest speedup ratio next to the absolute numbers.
// `--deep-run` appends a 10M-access single-cell run as a scale check.
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "sim/experiment.hpp"
#include "trace/workloads.hpp"

using namespace steins;
using Clock = std::chrono::steady_clock;

namespace {

struct SchemePoint {
  std::string label;
  double seconds = 0.0;
  double ops_per_sec = 0.0;
};

struct ModePoint {
  std::string mode;
  std::vector<SchemePoint> schemes;
  double seconds = 0.0;
  double ops_per_sec = 0.0;
};

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Time one matrix, one scheme at a time, so the JSON records a per-scheme
/// trajectory (the schemes differ widely in metadata traffic).
ModePoint run_mode(const ExperimentRunner& runner, const std::string& mode,
                   const std::vector<SchemeSpec>& schemes, const bench::BenchOptions& opt) {
  ModePoint mp;
  mp.mode = mode;
  const auto& workloads = workload_names();
  const double cell_ops = static_cast<double>(opt.accesses + opt.warmup);
  double total_ops = 0.0;
  for (const auto& spec : schemes) {
    const auto t0 = Clock::now();
    (void)runner.run_matrix(workloads, {spec}, opt.accesses, opt.warmup, false, opt.jobs);
    SchemePoint sp;
    sp.label = spec.label;
    sp.seconds = seconds_since(t0);
    const double ops = cell_ops * static_cast<double>(workloads.size());
    sp.ops_per_sec = ops / sp.seconds;
    std::printf("  %-10s %-10s %8.2f s   %12.0f ops/s\n", mode.c_str(), sp.label.c_str(),
                sp.seconds, sp.ops_per_sec);
    mp.seconds += sp.seconds;
    total_ops += ops;
    mp.schemes.push_back(std::move(sp));
  }
  mp.ops_per_sec = total_ops / mp.seconds;
  return mp;
}

void append_mode_json(std::string* out, const ModePoint& mp) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "  \"%s\": {\"seconds\": %.2f, \"ops_per_sec\": %.0f,\n",
                mp.mode.c_str(), mp.seconds, mp.ops_per_sec);
  *out += buf;
  *out += "   \"schemes\": {";
  for (std::size_t i = 0; i < mp.schemes.size(); ++i) {
    const auto& sp = mp.schemes[i];
    std::snprintf(buf, sizeof(buf), "%s\"%s\": {\"seconds\": %.2f, \"ops_per_sec\": %.0f}",
                  i == 0 ? "" : ", ", sp.label.c_str(), sp.seconds, sp.ops_per_sec);
    *out += buf;
  }
  *out += "}}";
}

}  // namespace

int main(int argc, char** argv) {
  double baseline_ops = 0.0;
  std::string baseline_label;
  bool deep_run = false;
  // Strip the flags bench_common does not know before the shared parse.
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--baseline-ops") == 0 && i + 1 < argc) {
      baseline_ops = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--baseline-label") == 0 && i + 1 < argc) {
      baseline_label = argv[++i];
    } else if (std::strcmp(argv[i], "--deep-run") == 0) {
      deep_run = true;
    } else {
      rest.push_back(argv[i]);
    }
  }
  const bench::BenchOptions opt =
      bench::parse_options(static_cast<int>(rest.size()), rest.data());

  std::printf("e2e_throughput: full-system matrix, host wall-clock per scheme\n");
  std::printf("(%" PRIu64 " accesses + %" PRIu64 " warmup per cell, %zu workloads, %u job%s)\n\n",
              opt.accesses, opt.warmup, workload_names().size(), opt.jobs,
              opt.jobs == 1 ? "" : "s");

  ExperimentRunner runner(default_config());
  const ModePoint gc = run_mode(runner, "gc", gc_comparison_schemes(), opt);
  const ModePoint sc = run_mode(runner, "sc", sc_comparison_schemes(), opt);

  const double total_seconds = gc.seconds + sc.seconds;
  const double total_ops =
      gc.ops_per_sec * gc.seconds + sc.ops_per_sec * sc.seconds;
  const double total_ops_per_sec = total_ops / total_seconds;
  std::printf("\n  total: %.2f s, %.0f ops/s\n", total_seconds, total_ops_per_sec);
  if (baseline_ops > 0.0) {
    std::printf("  speedup vs baseline%s%s: %.2fx\n", baseline_label.empty() ? "" : " ",
                baseline_label.c_str(), total_ops_per_sec / baseline_ops);
  }

  double deep_seconds = 0.0;
  constexpr std::uint64_t kDeepOps = 10'000'000;
  if (deep_run) {
    // Scale check: one 10M-access cell, the trace size the refactor targets.
    std::printf("\n  deep run: Steins-GC phash, %" PRIu64 " accesses...\n", kDeepOps);
    const auto t0 = Clock::now();
    (void)runner.run_matrix({"phash"},
                            {{Scheme::kSteins, CounterMode::kGeneral, "Steins-GC"}}, kDeepOps,
                            0, false, 1);
    deep_seconds = seconds_since(t0);
    std::printf("  deep run: %.2f s, %.0f ops/s\n", deep_seconds,
                static_cast<double>(kDeepOps) / deep_seconds);
  }

  if (!opt.json_path.empty()) {
    std::string body;
    char buf[512];
    body += "{\n  \"bench\": \"e2e_throughput\",\n  \"schema_version\": 1,\n";
    std::snprintf(buf, sizeof(buf),
                  "  \"accesses\": %" PRIu64 ", \"warmup\": %" PRIu64
                  ", \"jobs\": %u, \"host_threads\": %u, \"crypto_backend\": \"%s\",\n",
                  opt.accesses, opt.warmup, opt.jobs,
                  std::thread::hardware_concurrency(),
                  crypto::backend_name(crypto::active_backend()));
    body += buf;
    append_mode_json(&body, gc);
    body += ",\n";
    append_mode_json(&body, sc);
    body += ",\n";
    std::snprintf(buf, sizeof(buf), "  \"total_seconds\": %.2f, \"total_ops_per_sec\": %.0f",
                  total_seconds, total_ops_per_sec);
    body += buf;
    if (baseline_ops > 0.0) {
      std::snprintf(buf, sizeof(buf),
                    ",\n  \"baseline\": {\"label\": \"%s\", \"total_ops_per_sec\": %.0f},\n"
                    "  \"speedup_vs_baseline\": %.2f",
                    baseline_label.c_str(), baseline_ops, total_ops_per_sec / baseline_ops);
      body += buf;
    }
    if (deep_run) {
      std::snprintf(buf, sizeof(buf),
                    ",\n  \"deep_run\": {\"scheme\": \"Steins-GC\", \"workload\": \"phash\", "
                    "\"accesses\": %" PRIu64 ", \"seconds\": %.2f, \"ops_per_sec\": %.0f}",
                    kDeepOps, deep_seconds, static_cast<double>(kDeepOps) / deep_seconds);
      body += buf;
    }
    body += "\n}\n";
    std::FILE* f = std::fopen(opt.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", opt.json_path.c_str());
      return 1;
    }
    const bool ok = std::fputs(body.c_str(), f) >= 0 && std::fflush(f) == 0;
    if (std::fclose(f) != 0 || !ok) {
      std::fprintf(stderr, "error writing %s\n", opt.json_path.c_str());
      return 1;
    }
    std::printf("wrote JSON results to %s\n", opt.json_path.c_str());
  }
  return 0;
}

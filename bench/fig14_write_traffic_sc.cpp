// Fig. 14: NVM write traffic with split counters, normalized to WB-SC.
// Paper shape: Steins-SC ~1.01x WB-SC, well below Steins-GC.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace steins;
  return bench::run_figure(argc, argv, "Fig. 14: Write traffic (normalized to WB-SC)",
                           sc_comparison_schemes(), bench::metric_write_traffic, "WB-SC");
}

// Fig. 17: recovery time vs. metadata cache size (256 KB .. 4 MB).
//
// Following the paper's methodology (§IV-D), every metadata-cache line is
// dirty at crash time: we write one data block under each distinct leaf so
// the cache fills with distinct dirty leaf nodes, then crash and time the
// scheme's recovery procedure (100 ns per metadata read+verify).
// Paper shape @4 MB: ASIT ~0.02 s, STAR ~0.065 s, Steins-GC ~0.08 s,
// Steins-SC ~0.44 s.
#include <cstdio>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "secure/secure_memory.hpp"
#include "sim/experiment.hpp"

using namespace steins;

namespace {

RecoveryResult run_one(Scheme scheme, CounterMode mode, std::size_t cache_bytes) {
  SystemConfig cfg = default_config();
  cfg.counter_mode = mode;
  cfg.secure.metadata_cache.size_bytes = cache_bytes;
  auto mem = make_scheme(scheme, cfg);
  const SitGeometry& geo = mem->geometry();

  // Touch one data block per leaf until every cache line has been dirtied
  // (2x lines of distinct leaves guarantees a full dirty cache).
  const std::uint64_t lines = cache_bytes / kBlockSize;
  const std::uint64_t leaves = 2 * lines;
  Cycle now = 0;
  Block data{};
  for (std::uint64_t leaf = 0; leaf < leaves; ++leaf) {
    const Addr addr = leaf * geo.leaf_coverage() * kBlockSize;
    data[0] = static_cast<std::uint8_t>(leaf);
    now = mem->write_block(addr, data, now);
  }
  mem->crash();
  return mem->recover();
}

}  // namespace

int main() {
  std::printf("Fig. 17: Recovery time vs. metadata cache size\n");
  std::printf("(every cache line dirty at crash, per the paper's assumption)\n\n");

  const std::vector<std::size_t> sizes = {256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20};
  const std::vector<std::pair<const char*, std::pair<Scheme, CounterMode>>> schemes = {
      {"ASIT", {Scheme::kAnubis, CounterMode::kGeneral}},
      {"STAR", {Scheme::kStar, CounterMode::kGeneral}},
      {"Steins-GC", {Scheme::kSteins, CounterMode::kGeneral}},
      {"Steins-SC", {Scheme::kSteins, CounterMode::kSplit}},
  };

  ResultTable table("Fig. 17: Recovery time (seconds)",
                    {"ASIT", "STAR", "Steins-GC", "Steins-SC"});
  for (const std::size_t size : sizes) {
    std::vector<double> row;
    for (const auto& [label, sm] : schemes) {
      (void)label;
      const RecoveryResult r = run_one(sm.first, sm.second, size);
      if (!r.ok()) {
        std::fprintf(stderr, "unexpected recovery failure: %s\n", r.attack_detail.c_str());
        return 1;
      }
      row.push_back(r.seconds);
    }
    char name[32];
    std::snprintf(name, sizeof(name), "%zuKB", size / 1024);
    table.add_row(name, row);
  }
  table.print(4);
  return 0;
}

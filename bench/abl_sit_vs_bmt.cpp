// Ablation: SIT vs BMT (paper §II-C).
//
// "By employing self-increasing counters as inputs, SIT enables parallel
// computation of HMACs of nodes at different levels, thus achieving higher
// performance than BMT" — the BMT recomputes the whole hash branch
// sequentially on every write. This bench drives identical write streams
// through WB-SIT and BMT and reports the write-path cost.
#include <cstdio>

#include "bench_common.hpp"
#include "schemes/bmt.hpp"
#include "schemes/writeback.hpp"

using namespace steins;

namespace {

struct Cost {
  double write_latency;
  double hash_ops_per_write;
  Cycle frontier;
};

template <typename Mem>
Cost drive(Mem& mem, std::uint64_t writes, std::uint64_t footprint_blocks) {
  Xoshiro256 rng(11);
  Block data{};
  Cycle now = 0;
  for (std::uint64_t i = 0; i < writes; ++i) {
    data[0] = static_cast<std::uint8_t>(i);
    now = mem.write_block(rng.below(footprint_blocks) * kBlockSize, data, now);
  }
  return Cost{mem.stats().write_latency.mean(),
              static_cast<double>(mem.stats().hash_ops) / static_cast<double>(writes), now};
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  const std::uint64_t writes = opt.accesses;
  std::printf("Ablation: SIT (lazy) vs BMT (sequential branch updates), %llu random writes\n\n",
              static_cast<unsigned long long>(writes));
  std::printf("%-10s %16s %18s %16s\n", "scheme", "write lat (cy)", "hashes per write",
              "frontier (cy)");

  // A cache-resident footprint isolates the update-path cost itself: the
  // SIT defers propagation (no hash work until eviction) while the BMT
  // recomputes the whole branch sequentially on every write.
  SystemConfig cfg = default_config();
  cfg.nvm.capacity_bytes = 1ULL << 30;

  WriteBackMemory sit(cfg);
  const Cost cs = drive(sit, writes, 1 << 15);
  std::printf("%-10s %16.0f %18.2f %16llu\n", "WB-SIT", cs.write_latency, cs.hash_ops_per_write,
              static_cast<unsigned long long>(cs.frontier));

  BmtMemory bmt(cfg);
  const Cost cb = drive(bmt, writes, 1 << 15);
  std::printf("%-10s %16.0f %18.2f %16llu\n", "BMT", cb.write_latency, cb.hash_ops_per_write,
              static_cast<unsigned long long>(cb.frontier));

  std::printf("\nBMT/SIT write-path cost: %.2fx latency, %.2fx hash work\n",
              cb.write_latency / cs.write_latency, cb.hash_ops_per_write / cs.hash_ops_per_write);
  std::printf("(The BMT recomputes %u sequential hashes per write; SIT defers\n",
              bmt.height() - 1);
  std::printf("propagation to evictions and parallelizes across levels.)\n");
  return 0;
}

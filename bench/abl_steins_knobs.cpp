// Ablation: Steins' resource knobs (paper §III-C/§III-E) — the number of
// ADR-cached record lines and the NV parent-buffer size — vs write traffic
// and execution time.
#include "bench_common.hpp"

using namespace steins;

namespace {

RunStats run_with(std::size_t record_lines, std::size_t nv_buffer_bytes, std::uint64_t accesses,
                  std::uint64_t warmup) {
  SystemConfig cfg = default_config();
  cfg.secure.record_lines_cached = record_lines;
  cfg.secure.nv_buffer_bytes = nv_buffer_bytes;
  System sys(cfg, Scheme::kSteins);
  auto trace = make_workload("mcf", accesses + warmup);
  return sys.run(*trace, warmup);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  std::printf("Ablation: Steins record-line cache and NV buffer sizing (mcf)\n\n");

  ResultTable records("Record lines cached in the controller",
                      {"exec cycles", "record bytes", "write latency"});
  for (const std::size_t lines : {4u, 8u, 16u, 32u, 64u}) {
    const RunStats s = run_with(lines, 128, opt.accesses, opt.warmup);
    char name[32];
    std::snprintf(name, sizeof(name), "%zu lines", lines);
    records.add_row(name, {static_cast<double>(s.cycles),
                           static_cast<double>(s.mem.aux_write_bytes),
                           s.write_latency_cycles});
  }
  records.print(0);

  ResultTable buffer("NV parent-buffer size", {"exec cycles", "meta reads", "write latency"});
  for (const std::size_t bytes : {16u, 64u, 128u, 512u}) {
    const RunStats s = run_with(16, bytes, opt.accesses, opt.warmup);
    char name[32];
    std::snprintf(name, sizeof(name), "%zuB", bytes);
    buffer.add_row(name, {static_cast<double>(s.cycles), static_cast<double>(s.mem.meta_reads),
                          s.write_latency_cycles});
  }
  buffer.print(0);
  return 0;
}

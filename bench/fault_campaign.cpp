// Fault-campaign bench: the full (scheme x fault class) verdict matrix as
// a recordable JSON artifact.
//
// Positional argv[1] (or STEINS_ACCESSES) sets the trial count, STEINS_SEED
// overrides the campaign seed, and --jobs/--json/--verbose follow the other
// benches. Exit status is nonzero on any silent-corruption verdict so CI
// can gate on the artifact it uploads.
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "bench_common.hpp"
#include "fault/campaign.hpp"

using namespace steins;

int main(int argc, char** argv) {
  bench::BenchOptions opt = bench::parse_options(argc, argv);

  CampaignOptions campaign;
  // parse_options() sizes benches in accesses; here one "access" is one trial.
  campaign.trials = opt.accesses == 200'000 ? 200 : opt.accesses;
  campaign.seed = 42;
  if (const char* env = std::getenv("STEINS_SEED")) {
    campaign.seed = std::strtoull(env, nullptr, 10);
  }
  campaign.jobs = opt.jobs;
  if (campaign.trials == 0) {
    std::fprintf(stderr, "error: a 0-trial campaign would report vacuous success\n");
    return 2;
  }

  std::printf("fault campaign: %llu trials, seed %llu, %u job%s\n\n",
              static_cast<unsigned long long>(campaign.trials),
              static_cast<unsigned long long>(campaign.seed), campaign.jobs,
              campaign.jobs == 1 ? "" : "s");
  const CampaignResult result = run_fault_campaign(campaign);
  result.print(opt.verbose);

  if (!opt.json_path.empty()) {
    std::FILE* f = std::fopen(opt.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open JSON output %s: %s\n", opt.json_path.c_str(),
                   std::strerror(errno));
      return 1;
    }
    const std::string json = result.to_json();
    const bool wrote = std::fwrite(json.data(), 1, json.size(), f) == json.size();
    if (std::fclose(f) != 0 || !wrote) {
      std::fprintf(stderr, "error writing JSON output %s: %s\n", opt.json_path.c_str(),
                   std::strerror(errno));
      return 1;
    }
    std::printf("wrote JSON results to %s\n", opt.json_path.c_str());
  }

  if (result.silent_total() > 0) {
    std::fprintf(stderr, "\nFAIL: %llu silent-corruption verdict(s)\n",
                 static_cast<unsigned long long>(result.silent_total()));
    return 1;
  }
  return 0;
}

// Fig. 11: data read latency, normalized to WB-GC.
// Paper shape: all schemes close to 1.0x; Steins-GC slightly below.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace steins;
  return bench::run_figure(argc, argv, "Fig. 11: Read latency (normalized to WB-GC)",
                           gc_comparison_schemes(), bench::metric_read_latency, "WB-GC",
                           bench::metric_read_latency_p99);
}

// KV service throughput/tail-latency matrix: every scheme x YCSB mix.
//
// Each cell is an independent closed-loop multi-client run over its own
// MultiControllerMemory, so the matrix fans out across --jobs threads with
// bit-identical results to the sequential run. Rows are "SCHEME/mix";
// columns report throughput and the latency distribution in nanoseconds.
//
// Below the matrix, the concurrent serving sweep runs the sharded engine
// (kv/serving.hpp) at 1, 2, and 4 shards on the Steins scheme — same
// offered load, load-aware routing, group commit on — and reports the
// simulated-throughput scaling plus, in --json, per-shard occupancy and
// the group-commit batch-size distribution. The committed BENCH_kv.json
// records this sweep; CI gates on the 4-shard speedup staying >= 1.5x.
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "kv/serving.hpp"
#include "kv/ycsb.hpp"

using namespace steins;
using namespace steins::kv;

int main(int argc, char** argv) {
  bench::BenchOptions opt = bench::parse_options(argc, argv);

  const SystemConfig cfg = [] {
    SystemConfig c = default_config();
    c.nvm.capacity_bytes = std::uint64_t{256} << 20;  // the KV region is small
    return c;
  }();

  const std::vector<Scheme> schemes = {Scheme::kWriteBack, Scheme::kAnubis, Scheme::kStar,
                                       Scheme::kScue, Scheme::kSteins};
  const std::vector<Mix> mixes = {Mix::kA, Mix::kB, Mix::kC, Mix::kF};

  std::printf("KV service throughput: schemes x YCSB mixes\n");
  std::printf("(%llu ops per cell, 4 clients x 2 controllers, zipf 0.99; %u job%s)\n\n",
              static_cast<unsigned long long>(opt.accesses), opt.jobs,
              opt.jobs == 1 ? "" : "s");

  struct Cell {
    Scheme scheme;
    Mix mix;
    YcsbResult result;
  };
  std::vector<Cell> cells;
  for (const Scheme s : schemes) {
    for (const Mix m : mixes) cells.push_back({s, m, {}});
  }

  const auto run_cell = [&](std::size_t i) {
    YcsbConfig ycfg;
    ycfg.mix = cells[i].mix;
    ycfg.ops = opt.accesses;
    cells[i].result = run_ycsb(cfg, cells[i].scheme, ycfg);
  };
  if (opt.jobs > 1) {
    ThreadPool pool(opt.jobs);
    pool.for_each_index(cells.size(), run_cell);
  } else {
    for (std::size_t i = 0; i < cells.size(); ++i) run_cell(i);
  }

  const double ns = cfg.cycles_to_seconds(1) * 1e9;
  ResultTable table("KV throughput and latency by scheme/mix",
                    {"kops_s", "mean_ns", "p50_ns", "p95_ns", "p99_ns", "p999_ns"});
  for (const Cell& c : cells) {
    const LatencyHistogram& h = c.result.all_lat;
    table.add_row(scheme_name(c.scheme, cfg.counter_mode) + "/" + mix_name(c.mix),
                  {c.result.kops_per_sec, h.mean() * ns, h.percentile(50) * ns,
                   h.percentile(95) * ns, h.percentile(99) * ns, h.percentile(99.9) * ns});
  }
  table.print();

  // Concurrent serving sweep: same offered load at 1/2/4 shards. Shard
  // counts are simulated topology, not host threads, so the scaling rows
  // are deterministic on any runner; jobs only changes wall-clock.
  const std::vector<unsigned> shard_counts = {1, 2, 4};
  std::vector<ServingResult> serving(shard_counts.size());
  const auto run_serving_cell = [&](std::size_t i) {
    ServingConfig scfg;
    scfg.mix = Mix::kA;
    scfg.clients = 4;
    scfg.shards = shard_counts[i];
    scfg.ops = opt.accesses;
    scfg.keys = std::max<std::uint64_t>(opt.accesses / 4, 1000);
    // Per-shard tables sized for the worst case (every key on one shard)
    // so all rows share one layout and stay comparable.
    std::size_t slots = std::size_t{1} << 14;
    while (slots < 4 * scfg.keys) slots <<= 1;
    scfg.slots = slots;
    scfg.jobs = opt.jobs;
    serving[i] = run_sharded_serving(cfg, Scheme::kSteins, scfg);
  };
  if (opt.jobs > 1) {
    ThreadPool pool(opt.jobs);
    pool.for_each_index(serving.size(), run_serving_cell);
  } else {
    for (std::size_t i = 0; i < serving.size(); ++i) run_serving_cell(i);
  }

  ResultTable stable("Concurrent serving scaling (Steins/a, load routing, group commit)",
                     {"kops_s", "speedup", "p50_ns", "p99_ns", "p999_ns", "mean_batch"});
  const double base_kops = serving[0].kops_per_sec;
  for (std::size_t i = 0; i < serving.size(); ++i) {
    const ServingResult& s = serving[i];
    stable.add_row("Steins/serve" + std::to_string(shard_counts[i]),
                   {s.kops_per_sec, base_kops > 0 ? s.kops_per_sec / base_kops : 0.0,
                    s.all_lat.percentile(50) * ns, s.all_lat.percentile(99) * ns,
                    s.all_lat.percentile(99.9) * ns, s.batch_sizes.mean()});
  }
  std::printf("\n");
  stable.print();

  if (!opt.json_path.empty()) {
    char buf[64];
    const auto num = [&](double v) {
      std::snprintf(buf, sizeof(buf), "%.17g", v);
      return std::string(buf);
    };
    std::ostringstream ex;
    ex << ",\n \"serving\": {\"scheme\": \"steins\", \"mix\": \"a\", \"rows\": [";
    for (std::size_t i = 0; i < serving.size(); ++i) {
      const ServingResult& s = serving[i];
      ex << (i ? ",\n  " : "\n  ") << "{\"shards\": " << shard_counts[i]
         << ", \"kops_per_sec\": " << num(s.kops_per_sec)
         << ", \"ops\": " << s.ops << ", \"shed_ops\": " << s.shed_ops
         << ", \"commit_writes\": " << s.commit_writes
         << ", \"image_digest\": \"" << std::hex << s.image_digest << std::dec
         << "\", \"batch\": {\"count\": " << s.batch_sizes.count()
         << ", \"mean\": " << num(s.batch_sizes.mean())
         << ", \"p50\": " << num(s.batch_sizes.percentile(50))
         << ", \"p95\": " << num(s.batch_sizes.percentile(95))
         << ", \"max\": " << s.batch_sizes.max() << "}, \"occupancy\": [";
      for (std::size_t sh = 0; sh < s.shards.size(); ++sh) {
        ex << (sh ? ", " : "") << num(s.shards[sh].occupancy);
      }
      ex << "], \"shard_ops\": [";
      for (std::size_t sh = 0; sh < s.shards.size(); ++sh) {
        ex << (sh ? ", " : "") << s.shards[sh].ops;
      }
      ex << "]}";
    }
    ex << "\n ], \"speedup_4\": "
       << num(base_kops > 0 ? serving.back().kops_per_sec / base_kops : 0.0) << "}";
    ex << ",\n \"serving_table\": " << stable.to_json();
    if (bench::write_table_json(opt.json_path, table, opt, ex.str())) {
      std::printf("wrote JSON results to %s\n", opt.json_path.c_str());
    }
  }
  return 0;
}

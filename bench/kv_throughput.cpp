// KV service throughput/tail-latency matrix: every scheme x YCSB mix.
//
// Each cell is an independent closed-loop multi-client run over its own
// MultiControllerMemory, so the matrix fans out across --jobs threads with
// bit-identical results to the sequential run. Rows are "SCHEME/mix";
// columns report throughput and the latency distribution in nanoseconds.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "kv/ycsb.hpp"

using namespace steins;
using namespace steins::kv;

int main(int argc, char** argv) {
  bench::BenchOptions opt = bench::parse_options(argc, argv);

  const SystemConfig cfg = [] {
    SystemConfig c = default_config();
    c.nvm.capacity_bytes = std::uint64_t{256} << 20;  // the KV region is small
    return c;
  }();

  const std::vector<Scheme> schemes = {Scheme::kWriteBack, Scheme::kAnubis, Scheme::kStar,
                                       Scheme::kScue, Scheme::kSteins};
  const std::vector<Mix> mixes = {Mix::kA, Mix::kB, Mix::kC, Mix::kF};

  std::printf("KV service throughput: schemes x YCSB mixes\n");
  std::printf("(%llu ops per cell, 4 clients x 2 controllers, zipf 0.99; %u job%s)\n\n",
              static_cast<unsigned long long>(opt.accesses), opt.jobs,
              opt.jobs == 1 ? "" : "s");

  struct Cell {
    Scheme scheme;
    Mix mix;
    YcsbResult result;
  };
  std::vector<Cell> cells;
  for (const Scheme s : schemes) {
    for (const Mix m : mixes) cells.push_back({s, m, {}});
  }

  const auto run_cell = [&](std::size_t i) {
    YcsbConfig ycfg;
    ycfg.mix = cells[i].mix;
    ycfg.ops = opt.accesses;
    cells[i].result = run_ycsb(cfg, cells[i].scheme, ycfg);
  };
  if (opt.jobs > 1) {
    ThreadPool pool(opt.jobs);
    pool.for_each_index(cells.size(), run_cell);
  } else {
    for (std::size_t i = 0; i < cells.size(); ++i) run_cell(i);
  }

  const double ns = cfg.cycles_to_seconds(1) * 1e9;
  ResultTable table("KV throughput and latency by scheme/mix",
                    {"kops_s", "mean_ns", "p50_ns", "p95_ns", "p99_ns", "p999_ns"});
  for (const Cell& c : cells) {
    const LatencyHistogram& h = c.result.all_lat;
    table.add_row(scheme_name(c.scheme, cfg.counter_mode) + "/" + mix_name(c.mix),
                  {c.result.kops_per_sec, h.mean() * ns, h.percentile(50) * ns,
                   h.percentile(95) * ns, h.percentile(99) * ns, h.percentile(99.9) * ns});
  }
  table.print();
  if (!opt.json_path.empty()) {
    if (bench::write_table_json(opt.json_path, table, opt)) {
      std::printf("wrote JSON results to %s\n", opt.json_path.c_str());
    }
  }
  return 0;
}

// Fig. 9: execution time of ASIT / STAR / Steins-GC, normalized to WB-GC.
// Paper shape: ASIT ~1.20x, STAR ~1.12x, Steins-GC ~1.0x.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace steins;
  return bench::run_figure(argc, argv, "Fig. 9: Execution time (normalized to WB-GC)",
                           gc_comparison_schemes(), bench::metric_exec_time, "WB-GC");
}

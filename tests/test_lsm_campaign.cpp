// LSM crash campaign (ctest label: campaign): the exhaustive
// crash-at-every-persist-boundary matrix for every scheme, plus the
// hardware-fault-folded and manifest-loss variants. Silent corruption
// must be zero everywhere — detection, exact recovery, and verified
// salvage are the only legal outcomes.
#include <gtest/gtest.h>

#include <string>

#include "kv/lsm/lsm_crash.hpp"
#include "test_util.hpp"

namespace steins::lsm {
namespace {

using testutil::small_config;

std::string matrix_failures(const LsmCrashMatrix& m) {
  std::string all;
  for (const auto& [boundary, detail] : m.failures) {
    all += "boundary " + std::to_string(boundary) + ": " + detail + "\n";
  }
  return all;
}

TEST(LsmCampaign, ExhaustiveBoundarySweepEveryScheme) {
  LsmCrashOptions opt;
  opt.ops = 96;
  for (const Scheme scheme : {Scheme::kWriteBack, Scheme::kAnubis, Scheme::kStar,
                              Scheme::kSteins, Scheme::kScue}) {
    const LsmCrashMatrix m = run_lsm_crash_matrix(small_config(), scheme, opt,
                                                  /*stride=*/1, /*jobs=*/4);
    EXPECT_EQ(m.silent, 0u) << "scheme " << static_cast<int>(scheme) << "\n"
                            << matrix_failures(m);
    EXPECT_EQ(m.trials, m.total_persists + 1);
    // Every protocol stage must appear in the sweep.
    for (const char* stage :
         {"wal", "flush-data", "flush-footer", "compact-data", "compact-footer",
          "manifest-data", "manifest-commit"}) {
      EXPECT_TRUE(m.stage_trials.contains(stage))
          << "scheme " << static_cast<int>(scheme) << " never hit " << stage;
    }
  }
}

TEST(LsmCampaign, FaultFoldedCrashesNeverSilent) {
  for (const FaultClass cls :
       {FaultClass::kTornWrite, FaultClass::kDroppedPersist,
        FaultClass::kReorderedPersist, FaultClass::kAdrLoss,
        FaultClass::kBitFlipData, FaultClass::kCorrectableFlip}) {
    for (const Scheme scheme :
         {Scheme::kAnubis, Scheme::kStar, Scheme::kSteins, Scheme::kScue}) {
      for (std::uint64_t trial = 0; trial < 4; ++trial) {
        LsmCrashOptions opt;
        opt.ops = 64;
        opt.seed = trial + 1;
        opt.fault_class = cls;
        opt.fault_seed = trial * 1000 + 7;
        const LsmCrashReport r = run_lsm_crash_validation(small_config(), scheme, opt);
        EXPECT_TRUE(r.pass(scheme))
            << "scheme " << static_cast<int>(scheme) << " fault "
            << fault_class_name(cls) << " trial " << trial << ": " << r.detail;
        EXPECT_NE(std::string(lsm_crash_verdict(r, scheme)), "silent");
      }
    }
  }
}

TEST(LsmCampaign, ManifestLossSweepAlwaysDetected) {
  for (const Scheme scheme :
       {Scheme::kAnubis, Scheme::kStar, Scheme::kSteins, Scheme::kScue}) {
    for (std::uint64_t boundary = 0; boundary < 200; boundary += 23) {
      LsmCrashOptions opt;
      opt.ops = 64;
      opt.crash_at = boundary;
      opt.manifest_loss = true;
      const LsmCrashReport r = run_lsm_crash_validation(small_config(), scheme, opt);
      EXPECT_TRUE(r.pass(scheme)) << "boundary " << boundary << ": " << r.detail;
      EXPECT_EQ(std::string(lsm_crash_verdict(r, scheme)), "detected")
          << "scheme " << static_cast<int>(scheme) << " boundary " << boundary;
    }
  }
}

}  // namespace
}  // namespace steins::lsm

// Randomized crash-point sweep: interleave writes, reads, flushes, and
// crashes at arbitrary points (including with NV-buffer entries pending and
// write-through races) and require exact recovery + readable data, across
// seeds and both counter modes.
#include <gtest/gtest.h>

#include <memory>

#include "schemes/steins.hpp"
#include "test_util.hpp"

namespace steins {
namespace {

using testutil::Driver;
using testutil::small_config;

struct FuzzCase {
  std::uint64_t seed;
  CounterMode mode;
};

class RecoveryFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(RecoveryFuzz, RandomOpsAndCrashes) {
  const FuzzCase fc = GetParam();
  SteinsMemory mem(small_config(fc.mode, 8 * 1024));  // tiny cache: max churn
  Driver d(mem, fc.seed);
  Xoshiro256 dice(fc.seed * 31 + 7);

  for (int round = 0; round < 6; ++round) {
    // A random mix of operations, biased toward writes.
    const std::uint64_t ops = 200 + dice.below(800);
    for (std::uint64_t i = 0; i < ops; ++i) {
      const std::uint64_t block = dice.below(60'000);
      if (dice.chance(0.7)) {
        d.write(block);
      } else {
        ASSERT_TRUE(d.read_check(block));
      }
    }
    if (dice.chance(0.3)) {
      mem.flush_all_metadata();
    }
    // Crash at whatever state we're in (buffer possibly non-empty).
    mem.crash();
    const RecoveryResult r = mem.recover();
    ASSERT_TRUE(r.ok()) << "round " << round << ": " << r.attack_detail;
    ASSERT_TRUE(d.check_all()) << "round " << round;
  }
}

std::vector<FuzzCase> fuzz_cases() {
  std::vector<FuzzCase> cases;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    cases.push_back({seed, CounterMode::kGeneral});
    cases.push_back({seed, CounterMode::kSplit});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecoveryFuzz, ::testing::ValuesIn(fuzz_cases()),
                         [](const ::testing::TestParamInfo<FuzzCase>& info) {
                           return std::string(info.param.mode == CounterMode::kSplit ? "SC"
                                                                                     : "GC") +
                                  "_seed" + std::to_string(info.param.seed);
                         });

}  // namespace
}  // namespace steins

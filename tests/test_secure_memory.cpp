// Functional tests of the secure data path, parameterized over every
// (scheme, counter-mode) variant the paper evaluates: encrypt/verify round
// trips under cache pressure, clean-tree persistence, runtime attack
// detection.
#include <gtest/gtest.h>

#include <memory>

#include "schemes/attack.hpp"
#include "schemes/steins.hpp"
#include "secure/secure_memory.hpp"
#include "test_util.hpp"

namespace steins {
namespace {

using testutil::Driver;
using testutil::small_config;

struct Variant {
  Scheme scheme;
  CounterMode mode;
  const char* name;
};

class SchemeDataPath : public ::testing::TestWithParam<Variant> {
 protected:
  std::unique_ptr<SecureMemory> make() {
    return make_scheme(GetParam().scheme, small_config(GetParam().mode));
  }
};

TEST_P(SchemeDataPath, WriteReadRoundTripSmall) {
  auto mem = make();
  Driver d(*mem);
  for (std::uint64_t i = 0; i < 64; ++i) d.write(i);
  EXPECT_TRUE(d.check_all());
}

TEST_P(SchemeDataPath, WriteReadRoundTripUnderCachePressure) {
  auto mem = make();
  Driver d(*mem);
  // Footprint far larger than the 16 KB metadata cache covers: forces node
  // evictions and re-fetch verification chains.
  d.write_random(4000, 200'000);
  EXPECT_TRUE(d.check_all());
}

TEST_P(SchemeDataPath, RepeatedWritesAdvanceCounters) {
  auto mem = make();
  Driver d(*mem);
  for (int i = 0; i < 200; ++i) d.write(5);  // hammer one block
  EXPECT_TRUE(d.read_check(5));
}

TEST_P(SchemeDataPath, UnwrittenBlocksReadZero) {
  auto mem = make();
  Driver d(*mem);
  d.write(1);
  EXPECT_TRUE(d.read_check(999));  // never written -> zero block
}

TEST_P(SchemeDataPath, FlushAllLeavesVerifiableTree) {
  auto mem = make();
  auto* base = dynamic_cast<SecureMemoryBase*>(mem.get());
  ASSERT_NE(base, nullptr);
  Driver d(*mem);
  d.write_random(2000, 100'000);
  base->flush_all_metadata();
  // Drop the (now clean) cache; every fetch re-verifies from NVM up to the
  // root and must pass.
  base->metadata_cache().clear();
  EXPECT_TRUE(d.check_all());
}

TEST_P(SchemeDataPath, TamperedDataDetectedOnRead) {
  auto mem = make();
  auto* base = dynamic_cast<SecureMemoryBase*>(mem.get());
  Driver d(*mem);
  d.write(7);
  base->flush_all_metadata();
  AttackInjector attacker(*mem);
  attacker.tamper_block(7 * kBlockSize, 3);
  base->metadata_cache().clear();
  EXPECT_THROW(d.read_check(7), IntegrityViolation);
}

TEST_P(SchemeDataPath, TamperedNodeDetectedOnFetch) {
  auto mem = make();
  auto* base = dynamic_cast<SecureMemoryBase*>(mem.get());
  Driver d(*mem);
  d.write_random(500, 50'000);
  base->flush_all_metadata();
  base->metadata_cache().clear();
  // Tamper the leaf covering block 0's first written address.
  const auto first = d.versions().begin()->first;
  const NodeId leaf = mem->geometry().leaf_of_data(first / kBlockSize);
  AttackInjector attacker(*mem);
  attacker.tamper_node(leaf, 5);
  EXPECT_THROW(d.read_check(first / kBlockSize), IntegrityViolation);
}

TEST_P(SchemeDataPath, ReplayedNodeDetectedOnFetch) {
  auto mem = make();
  auto* base = dynamic_cast<SecureMemoryBase*>(mem.get());
  Driver d(*mem);
  d.write(11);
  base->flush_all_metadata();
  const NodeId leaf = mem->geometry().leaf_of_data(11);
  AttackInjector attacker(*mem);
  attacker.record_node(leaf);  // snapshot the old version
  d.write(11);                 // advance the counter
  base->flush_all_metadata();
  base->metadata_cache().clear();
  ASSERT_TRUE(attacker.replay_node(leaf));  // splice the old node back
  EXPECT_THROW(d.read_check(11), IntegrityViolation);
}

TEST_P(SchemeDataPath, StatsAccumulate) {
  auto mem = make();
  Driver d(*mem);
  d.write_random(1000, 100'000);
  const ExecStats& s = mem->stats();
  EXPECT_GT(s.data_writes, 0u);
  EXPECT_GT(s.meta_reads, 0u);
  EXPECT_GT(s.hash_ops, 0u);
  EXPECT_GT(s.energy_nj(mem->config()), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, SchemeDataPath,
    ::testing::Values(Variant{Scheme::kWriteBack, CounterMode::kGeneral, "WB_GC"},
                      Variant{Scheme::kWriteBack, CounterMode::kSplit, "WB_SC"},
                      Variant{Scheme::kAnubis, CounterMode::kGeneral, "ASIT"},
                      Variant{Scheme::kStar, CounterMode::kGeneral, "STAR"},
                      Variant{Scheme::kSteins, CounterMode::kGeneral, "Steins_GC"},
                      Variant{Scheme::kSteins, CounterMode::kSplit, "Steins_SC"}),
    [](const ::testing::TestParamInfo<Variant>& info) { return info.param.name; });

}  // namespace
}  // namespace steins

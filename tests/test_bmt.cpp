// Bonsai Merkle Tree baseline (paper §II-C): functional correctness,
// sequential update cost, whole-tree reconstruction recovery.
#include <gtest/gtest.h>

#include <map>

#include "schemes/attack.hpp"
#include "schemes/bmt.hpp"
#include "schemes/writeback.hpp"
#include "test_util.hpp"

namespace steins {
namespace {

using testutil::pattern_block;
using testutil::small_config;

TEST(Bmt, WriteReadRoundTrip) {
  BmtMemory mem(small_config());
  std::map<Addr, std::uint64_t> versions;
  Cycle now = 0;
  Xoshiro256 rng(3);
  for (int i = 0; i < 2000; ++i) {
    const Addr addr = rng.below(100'000) * kBlockSize;
    const std::uint64_t v = ++versions[addr];
    now = mem.write_block(addr, pattern_block(addr, v), now);
  }
  for (const auto& [addr, v] : versions) {
    Block out;
    now = mem.read_block(addr, now, &out);
    ASSERT_EQ(out, pattern_block(addr, v));
  }
}

TEST(Bmt, SequentialHashChainCostsMoreThanSit) {
  // Use a roomy metadata cache so fetch-chain verification doesn't dominate
  // and the steady-state per-write hash cost is visible.
  const SystemConfig cfg = small_config(CounterMode::kGeneral, 256 * 1024);
  BmtMemory bmt(cfg);
  WriteBackMemory sit(cfg);
  Block data{};
  Cycle tb = 0, ts = 0;
  Xoshiro256 rng(4);
  for (int i = 0; i < 1000; ++i) {
    const Addr addr = rng.below(100'000) * kBlockSize;
    tb = bmt.write_block(addr, data, tb);
    ts = sit.write_block(addr, data, ts);
  }
  // The BMT recomputes the whole branch per write (paper §II-C).
  EXPECT_GT(bmt.stats().hash_ops, 2 * sit.stats().hash_ops);
}

TEST(Bmt, RecoversAfterCrash) {
  BmtMemory mem(small_config());
  std::map<Addr, std::uint64_t> versions;
  Cycle now = 0;
  Xoshiro256 rng(5);
  for (int i = 0; i < 1500; ++i) {
    const Addr addr = rng.below(80'000) * kBlockSize;
    const std::uint64_t v = ++versions[addr];
    now = mem.write_block(addr, pattern_block(addr, v), now);
  }
  mem.crash();
  const RecoveryResult r = mem.recover();
  ASSERT_TRUE(r.ok()) << r.attack_detail;
  EXPECT_GT(r.nodes_recovered, 0u);
  for (const auto& [addr, v] : versions) {
    Block out;
    now = mem.read_block(addr, now, &out);
    ASSERT_EQ(out, pattern_block(addr, v));
  }
}

TEST(Bmt, RecoveryCostScalesWithMemoryNotCache) {
  // The defining weakness vs Steins: recovery reads the whole leaf region.
  SystemConfig small_cap = small_config();
  small_cap.nvm.capacity_bytes = 16ULL << 20;
  SystemConfig large_cap = small_config();
  large_cap.nvm.capacity_bytes = 64ULL << 20;
  BmtMemory a(small_cap), b(large_cap);
  Block data{};
  Cycle t = 0;
  for (int i = 0; i < 100; ++i) {
    t = a.write_block(static_cast<Addr>(i) * kBlockSize, data, t);
    b.write_block(static_cast<Addr>(i) * kBlockSize, data, t);
  }
  a.crash();
  b.crash();
  const auto ra = a.recover();
  const auto rb = b.recover();
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  // 4x the capacity -> ~4x the recovery reads, despite identical workloads.
  EXPECT_GT(rb.nvm_reads, 3 * ra.nvm_reads);
}

TEST(Bmt, TamperedDataDetectedAtRecovery) {
  BmtMemory mem(small_config());
  Block data{};
  Cycle t = 0;
  t = mem.write_block(0x4000, data, t);
  t = mem.write_block(0x4000, data, t);
  mem.crash();
  AttackInjector attacker(mem);
  attacker.tamper_block(0x4000, 7);
  const RecoveryResult r = mem.recover();
  EXPECT_TRUE(r.attack_detected);
}

TEST(Bmt, RuntimeTamperDetected) {
  BmtMemory mem(small_config());
  Block data{};
  Cycle t = 0;
  t = mem.write_block(0x8000, data, t);
  mem.channel().drain_all(t);
  AttackInjector attacker(mem);
  attacker.tamper_block(0x8000, 1);
  Block out;
  EXPECT_THROW(mem.read_block(0x8000, t, &out), IntegrityViolation);
}

}  // namespace
}  // namespace steins

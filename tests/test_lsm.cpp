// The log-structured engine: on-media codecs, WAL append/replay with torn
// tails, sorted-run write/read, manifest install/read, and the LsmStore's
// end-to-end behavior (flush, compaction, recovery, degraded mode).
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "kv/lsm/format.hpp"
#include "kv/lsm/lsm_store.hpp"
#include "kv/lsm/lsm_ycsb.hpp"
#include "kv/lsm/manifest.hpp"
#include "kv/lsm/sorted_run.hpp"
#include "kv/lsm/wal.hpp"
#include "sim/system.hpp"
#include "test_util.hpp"

namespace steins::lsm {
namespace {

using testutil::small_config;

LsmLayout small_layout() {
  LsmLayout layout;
  layout.manifest_blocks = 4;
  layout.wal_blocks = 128;
  layout.arena_blocks = 4096;
  return layout;
}

LsmConfig small_engine() {
  LsmConfig cfg;
  cfg.memtable_limit_bytes = 512;
  cfg.l0_compact_trigger = 3;
  cfg.index_every = 4;
  return cfg;
}

// ---------------------------------------------------------------------------
// Codecs

TEST(LsmFormat, WalRecordRoundTripsAndRejectsDamage) {
  WalRecord rec;
  rec.epoch = 7;
  rec.seq = 42;
  rec.key = 0xabcdef;
  rec.kind = WalKind::kPut;
  rec.value = "payload-bytes";
  std::string bytes;
  encode_wal_record(rec, bytes);
  EXPECT_EQ(bytes.size(), wal_record_bytes(rec.value.size()));

  WalRecord out;
  std::size_t encoded = 0;
  const auto* p = reinterpret_cast<const std::uint8_t*>(bytes.data());
  ASSERT_EQ(decode_wal_record(p, bytes.size(), 7, &out, &encoded), WalDecode::kOk);
  EXPECT_EQ(encoded, bytes.size());
  EXPECT_EQ(out.seq, rec.seq);
  EXPECT_EQ(out.key, rec.key);
  EXPECT_EQ(out.value, rec.value);

  // Wrong epoch: a stale survivor, not this log's record.
  EXPECT_EQ(decode_wal_record(p, bytes.size(), 8, &out, &encoded),
            WalDecode::kInvalid);
  // Truncated: the reader must ask for more, not misparse.
  EXPECT_EQ(decode_wal_record(p, bytes.size() - 1, 7, &out, &encoded),
            WalDecode::kNeedMore);
  // Any flipped byte (value or trailer) kills the crc/commit check.
  for (const std::size_t i : {std::size_t{33}, bytes.size() - 9, bytes.size() - 1}) {
    std::string dam = bytes;
    dam[i] = static_cast<char>(dam[i] ^ 0x40);
    EXPECT_EQ(decode_wal_record(reinterpret_cast<const std::uint8_t*>(dam.data()),
                                dam.size(), 7, &out, &encoded),
              WalDecode::kInvalid)
        << "byte " << i;
  }
}

TEST(LsmFormat, RunFooterRoundTripsAndValidates) {
  std::string data;
  encode_run_entry(1, WalKind::kPut, "abc", data);
  encode_run_entry(2, WalKind::kErase, "", data);
  std::string index;
  put_u64(index, 1);
  put_u64(index, 0);

  RunFooter f;
  f.run_id = 9;
  f.entries = 2;
  f.data = OffsetSize{0, data.size()};
  f.index = OffsetSize{kBlockSize, index.size()};
  f.crc = run_footer_crc(f, reinterpret_cast<const std::uint8_t*>(data.data()),
                         reinterpret_cast<const std::uint8_t*>(index.data()));
  const Block b = encode_run_footer(f);
  RunFooter out;
  ASSERT_TRUE(decode_run_footer(b, &out));
  EXPECT_EQ(out.run_id, 9u);
  EXPECT_EQ(out.entries, 2u);
  EXPECT_EQ(out.crc, f.crc);

  Block bad = b;
  bad[3] ^= 1;  // magic
  EXPECT_FALSE(decode_run_footer(bad, &out));
}

TEST(LsmFormat, ManifestRoundTripsAndRejectsDamage) {
  ManifestData m;
  m.version = 12;
  m.wal_epoch = 4;
  m.next_seq = 99;
  m.next_run_id = 7;
  m.runs.push_back(RunMeta{1, 0, 0, 8});
  m.runs.push_back(RunMeta{5, 1, 100, 32});
  std::string bytes;
  encode_manifest(m, bytes);
  EXPECT_EQ(bytes.size(), manifest_encoded_bytes(m.runs.size()));

  ManifestData out;
  ASSERT_TRUE(decode_manifest(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                              bytes.size(), &out));
  EXPECT_EQ(out.version, 12u);
  EXPECT_EQ(out.runs.size(), 2u);
  EXPECT_EQ(out.runs[1].start_block, 100u);

  std::string dam = bytes;
  dam[20] = static_cast<char>(dam[20] ^ 0x10);
  EXPECT_FALSE(decode_manifest(reinterpret_cast<const std::uint8_t*>(dam.data()),
                               dam.size(), &out));
}

// ---------------------------------------------------------------------------
// WAL over the secure path

TEST(LsmWal, AppendsReplayAndStopAtTornTail) {
  System sys(small_config(), Scheme::kSteins);
  const LsmLayout layout = small_layout();
  std::uint64_t persists = 0;
  Wal wal(sys, layout, [&](Addr addr, const char*) {
    sys.persist(addr);
    ++persists;
  });
  wal.reset(3);
  for (std::uint64_t i = 0; i < 20; ++i) {
    WalRecord rec;
    rec.epoch = 3;
    rec.seq = i + 1;
    rec.key = i % 5;
    rec.kind = i % 4 == 3 ? WalKind::kErase : WalKind::kPut;
    if (rec.kind == WalKind::kPut) rec.value = "value-" + std::to_string(i);
    wal.append(rec);
  }
  EXPECT_GT(persists, 0u);

  Wal reader(sys, layout, [&](Addr addr, const char*) { sys.persist(addr); });
  Wal::ReplayResult rep = reader.replay(3);
  ASSERT_EQ(rep.records.size(), 20u);
  EXPECT_FALSE(rep.torn_tail);
  EXPECT_EQ(rep.records.back().seq, 20u);
  EXPECT_EQ(reader.offset(), wal.offset());

  // Clobber the middle of the last record (torn append): replay stops
  // before it and reports the torn tail.
  const std::uint64_t tail_block = (wal.offset() - 4) / kBlockSize;
  Block b = sys.load(layout.wal_base() + tail_block * kBlockSize);
  b[17] ^= 0xff;
  sys.store(layout.wal_base() + tail_block * kBlockSize, b);
  sys.persist(layout.wal_base() + tail_block * kBlockSize);
  Wal reader2(sys, layout, [&](Addr addr, const char*) { sys.persist(addr); });
  Wal::ReplayResult rep2 = reader2.replay(3);
  EXPECT_LT(rep2.records.size(), 20u);

  // A different epoch sees an empty log: stale bytes fail the epoch check.
  Wal reader3(sys, layout, [&](Addr addr, const char*) { sys.persist(addr); });
  Wal::ReplayResult rep3 = reader3.replay(4);
  EXPECT_EQ(rep3.records.size(), 0u);
  EXPECT_FALSE(rep3.torn_tail);
}

// ---------------------------------------------------------------------------
// Sorted runs

TEST(LsmRun, WriteReadFindAndChecksum) {
  System sys(small_config(), Scheme::kSteins);
  const LsmLayout layout = small_layout();
  RunImage img;
  for (std::uint64_t k = 0; k < 50; ++k) {
    if (k % 7 == 3) {
      run_image_append(&img, k * 2, WalKind::kErase, "", 4);
    } else {
      run_image_append(&img, k * 2, WalKind::kPut, "val" + std::to_string(k), 4);
    }
  }
  const Extent ext{16, img.blocks_needed()};
  write_run(sys, layout, ext, 11, img,
            [&](Addr addr, const char*) { sys.persist(addr); }, "flush");

  auto opened = RunReader::open(sys, layout, ext, 11, /*verify_checksum=*/true);
  ASSERT_TRUE(opened.has_value()) << opened.status().to_string();
  const RunReader& reader = opened.value();
  EXPECT_EQ(reader.entries(), 50u);
  EXPECT_EQ(reader.min_key(), 0u);
  EXPECT_EQ(reader.max_key(), 98u);

  for (std::uint64_t k = 0; k < 50; ++k) {
    const auto found = reader.find(sys, k * 2);
    ASSERT_TRUE(found.has_value()) << "key " << k * 2;
    if (k % 7 == 3) {
      EXPECT_EQ(found->kind, WalKind::kErase);
    } else {
      EXPECT_EQ(found->value, "val" + std::to_string(k));
    }
    EXPECT_FALSE(reader.find(sys, k * 2 + 1).has_value());
  }
  EXPECT_EQ(reader.load_all(sys).size(), 50u);

  // Wrong run id and damaged data must both fail a validating open.
  EXPECT_FALSE(RunReader::open(sys, layout, ext, 12, true).has_value());
  Block b = sys.load(layout.arena_base() + ext.start_block * kBlockSize);
  b[5] ^= 0x20;
  sys.store(layout.arena_base() + ext.start_block * kBlockSize, b);
  const auto damaged = RunReader::open(sys, layout, ext, 11, true);
  EXPECT_FALSE(damaged.has_value());
  EXPECT_EQ(damaged.status().code(), ErrorCode::kIntegrity);
}

// ---------------------------------------------------------------------------
// Manifest

TEST(LsmManifest, InstallCommitsAtomically) {
  System sys(small_config(), Scheme::kSteins);
  const LsmLayout layout = small_layout();
  ManifestStore ms(sys, layout, [&](Addr addr, const char*) { sys.persist(addr); });

  ManifestData m;
  bool pristine = false;
  ASSERT_TRUE(ms.read_committed(&m, &pristine).ok());
  EXPECT_TRUE(pristine);

  m.version = 1;
  m.wal_epoch = 1;
  ms.install(m);
  m.version = 2;
  m.runs.push_back(RunMeta{1, 0, 0, 4});
  ms.install(m);

  ManifestData out;
  ASSERT_TRUE(ms.read_committed(&out, &pristine).ok());
  EXPECT_FALSE(pristine);
  EXPECT_EQ(out.version, 2u);
  ASSERT_EQ(out.runs.size(), 1u);

  // Clobber the committed replica: the read must detect, not serve.
  const int replica = static_cast<int>(out.version & 1);
  Block garbage;
  garbage.fill(0x5a);
  for (std::size_t b = 0; b < layout.manifest_blocks; ++b) {
    sys.store(layout.manifest_addr(replica) + b * kBlockSize, garbage);
  }
  const Status s = ms.read_committed(&out, &pristine);
  EXPECT_EQ(s.code(), ErrorCode::kIntegrity);
}

// ---------------------------------------------------------------------------
// The engine

TEST(LsmStore, PutGetEraseThroughFlushesAndCompactions) {
  System sys(small_config(), Scheme::kSteins);
  LsmStore store(sys, small_layout(), small_engine());
  ASSERT_TRUE(store.open().ok());

  std::map<std::uint64_t, std::string> model;
  Xoshiro256 rng(7);
  for (std::uint64_t i = 0; i < 400; ++i) {
    const std::uint64_t key = rng.below(40);
    const std::uint64_t roll = rng.below(10);
    if (roll < 7) {
      std::string v = "v" + std::to_string(i) + "-" + std::to_string(key);
      store.put(key, v);
      model[key] = std::move(v);
    } else if (roll < 9) {
      EXPECT_EQ(store.erase(key), model.erase(key) > 0) << "key " << key;
    } else {
      const auto got = store.get(key);
      const auto want = model.find(key);
      if (want == model.end()) {
        EXPECT_FALSE(got.has_value()) << "key " << key;
      } else {
        ASSERT_TRUE(got.has_value()) << "key " << key;
        EXPECT_EQ(*got, want->second);
      }
    }
  }
  // The tiny memtable must have produced real structural traffic.
  EXPECT_GT(store.stats().flushes, 0u);
  EXPECT_GT(store.stats().compactions, 0u);
  EXPECT_EQ(store.dump(), model);

  // Point reads agree with the dump after the dust settles.
  for (const auto& [key, value] : model) {
    const auto got = store.get(key);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, value);
  }
}

TEST(LsmStore, RecoversAcrossCleanReopen) {
  System sys(small_config(), Scheme::kSteins);
  const LsmLayout layout = small_layout();
  const LsmConfig engine = small_engine();
  std::map<std::uint64_t, std::string> model;
  {
    LsmStore store(sys, layout, engine);
    ASSERT_TRUE(store.open().ok());
    for (std::uint64_t i = 0; i < 120; ++i) {
      std::string v = "val-" + std::to_string(i);
      store.put(i % 30, v);
      model[i % 30] = std::move(v);
    }
    store.erase(3);
    model.erase(3);
  }
  // A new engine instance over the same region recovers from manifest+WAL.
  LsmStore reopened(sys, layout, engine);
  ASSERT_TRUE(reopened.open().ok());
  EXPECT_EQ(reopened.dump(), model);
  EXPECT_FALSE(reopened.wal_replay_torn());
}

TEST(LsmStore, SurvivesCrashAndRecoverAtRest) {
  System sys(small_config(), Scheme::kSteins);
  const LsmLayout layout = small_layout();
  const LsmConfig engine = small_engine();
  std::map<std::uint64_t, std::string> model;
  {
    LsmStore store(sys, layout, engine);
    ASSERT_TRUE(store.open().ok());
    for (std::uint64_t i = 0; i < 200; ++i) {
      std::string v = "crash-" + std::to_string(i);
      store.put(i % 25, v);
      model[i % 25] = std::move(v);
    }
  }
  const RecoveryResult r = sys.crash_and_recover();
  ASSERT_TRUE(r.ok()) << r.attack_detail;
  sys.resync_truth_after_crash();
  LsmStore reopened(sys, layout, engine);
  reopened.apply_recovery_report(r);
  ASSERT_TRUE(reopened.open().ok());
  EXPECT_EQ(reopened.dump(), model);
}

TEST(LsmStore, WorksUnderEveryScheme) {
  for (const Scheme scheme : {Scheme::kWriteBack, Scheme::kAnubis, Scheme::kStar,
                              Scheme::kSteins, Scheme::kScue}) {
    System sys(small_config(), scheme);
    LsmStore store(sys, small_layout(), small_engine());
    ASSERT_TRUE(store.open().ok());
    std::map<std::uint64_t, std::string> model;
    for (std::uint64_t i = 0; i < 150; ++i) {
      std::string v = "s" + std::to_string(i);
      store.put(i % 20, v);
      model[i % 20] = std::move(v);
    }
    EXPECT_EQ(store.dump(), model) << "scheme " << static_cast<int>(scheme);
  }
}

TEST(LsmStore, CompactionIsDeterministicAcrossMergeJobs) {
  std::map<std::uint64_t, std::string> dumps[2];
  LsmStats stats[2];
  for (int i = 0; i < 2; ++i) {
    System sys(small_config(), Scheme::kSteins);
    LsmConfig engine = small_engine();
    engine.merge_jobs = i == 0 ? 1 : 4;
    LsmStore store(sys, small_layout(), engine);
    ASSERT_TRUE(store.open().ok());
    for (std::uint64_t op = 0; op < 500; ++op) {
      const std::uint64_t key = (op * 17) % 60;
      if (op % 9 == 8) {
        store.erase(key);
      } else {
        store.put(key, "d" + std::to_string(op));
      }
    }
    store.flush();
    store.compact();
    dumps[i] = store.dump();
    stats[i] = store.stats();
  }
  EXPECT_EQ(dumps[0], dumps[1]);
  // Identical structural traffic, not just identical contents: the merge
  // is bit-deterministic, so run geometry and barrier counts match too.
  EXPECT_EQ(stats[0].run_blocks_written, stats[1].run_blocks_written);
  EXPECT_EQ(stats[0].persist_barriers, stats[1].persist_barriers);
}

TEST(LsmStore, ReadOnlyModeRejectsWritesTyped) {
  System sys(small_config(), Scheme::kSteins);
  LsmStore store(sys, small_layout(), small_engine());
  ASSERT_TRUE(store.open().ok());
  store.put(1, "one");
  store.set_read_only(true);
  EXPECT_EQ(store.try_put(2, "two").code(), ErrorCode::kReadOnly);
  EXPECT_THROW(store.put(2, "two"), StatusError);
  const auto got = store.try_get(1);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(**got, "one");
}

TEST(LsmStore, WalFillTriggersFlushBeforeOverflow) {
  System sys(small_config(), Scheme::kSteins);
  LsmLayout layout = small_layout();
  layout.wal_blocks = 8;  // 512 B log: a handful of records fills it
  LsmConfig engine = small_engine();
  engine.memtable_limit_bytes = 1 << 20;  // never flush on memtable size
  LsmStore store(sys, layout, engine);
  ASSERT_TRUE(store.open().ok());
  std::map<std::uint64_t, std::string> model;
  for (std::uint64_t i = 0; i < 64; ++i) {
    std::string v = "wal-fill-" + std::to_string(i);
    store.put(i, v);
    model[i] = std::move(v);
  }
  EXPECT_GT(store.stats().flushes, 0u);  // forced by WAL capacity
  EXPECT_EQ(store.dump(), model);
}

TEST(LsmStore, BackgroundCompactionMatchesForegroundFinalState) {
  // Same op stream, background merge on and off: after a final explicit
  // compact() both modes must hold the identical fully-folded image.
  std::map<std::uint64_t, std::string> dumps[2];
  for (int mode = 0; mode < 2; ++mode) {
    System sys(small_config(), Scheme::kSteins);
    LsmConfig engine = small_engine();
    engine.background_compaction = mode == 1;
    LsmStore store(sys, small_layout(), engine);
    ASSERT_TRUE(store.open().ok());
    Xoshiro256 rng(21);
    std::map<std::uint64_t, std::string> model;
    for (std::uint64_t i = 0; i < 500; ++i) {
      const std::uint64_t key = rng.below(60);
      if (rng.below(10) < 8) {
        std::string v = "bgv-" + std::to_string(i);
        store.put(key, v);
        model[key] = std::move(v);
      } else {
        EXPECT_EQ(store.erase(key), model.erase(key) > 0) << "key " << key;
      }
    }
    store.compact();
    EXPECT_FALSE(store.compaction_pending());
    EXPECT_EQ(store.dump(), model);
    dumps[mode] = store.dump();
    if (mode == 1) {
      // The trigger fired with the flag on: merges actually ran on the pool.
      EXPECT_GT(store.stats().bg_compactions, 0u);
    }
  }
  EXPECT_EQ(dumps[0], dumps[1]);
}

TEST(LsmStore, BackgroundMergeRacesWalCommitsAndJoinsCleanly) {
  System sys(small_config(), Scheme::kSteins);
  LsmConfig engine = small_engine();
  engine.background_compaction = true;
  LsmStore store(sys, small_layout(), engine);
  ASSERT_TRUE(store.open().ok());

  std::map<std::uint64_t, std::string> model;
  std::uint64_t i = 0;
  for (; i < 1000 && !store.compaction_pending(); ++i) {
    std::string v = "race-" + std::to_string(i);
    store.put(i % 50, v);
    model[i % 50] = std::move(v);
  }
  ASSERT_TRUE(store.compaction_pending()) << "trigger never fired";

  // Foreground WAL commits and reads race the in-flight merge.
  for (std::uint64_t j = 0; j < 10; ++j, ++i) {
    std::string v = "race-" + std::to_string(i);
    store.put(i % 50, v);
    model[i % 50] = std::move(v);
  }
  for (const auto& [key, value] : model) {
    const auto got = store.get(key);
    ASSERT_TRUE(got.has_value()) << "key " << key;
    EXPECT_EQ(*got, value);
  }

  store.compact_join();
  EXPECT_FALSE(store.compaction_pending());
  EXPECT_GE(store.stats().bg_compactions, 1u);
  EXPECT_EQ(store.dump(), model);
}

TEST(LsmStore, AbandonedBackgroundMergeIsCrashSafe) {
  // Dying with a merge in flight is exactly a crash before the join: the
  // output was never written, the committed manifest still references
  // every input, and the WAL tail replays.
  System sys(small_config(), Scheme::kSteins);
  const LsmLayout layout = small_layout();
  LsmConfig engine = small_engine();
  engine.background_compaction = true;
  std::map<std::uint64_t, std::string> model;
  {
    LsmStore store(sys, layout, engine);
    ASSERT_TRUE(store.open().ok());
    std::uint64_t i = 0;
    for (; i < 1000 && !store.compaction_pending(); ++i) {
      std::string v = "aband-" + std::to_string(i);
      store.put(i % 40, v);
      model[i % 40] = std::move(v);
    }
    ASSERT_TRUE(store.compaction_pending());
    for (std::uint64_t j = 0; j < 5; ++j, ++i) {
      std::string v = "aband-" + std::to_string(i);
      store.put(i % 40, v);
      model[i % 40] = std::move(v);
    }
    // Destructor abandons the pending merge; nothing installs.
  }
  LsmStore reopened(sys, layout, engine);
  ASSERT_TRUE(reopened.open().ok());
  EXPECT_EQ(reopened.dump(), model);
}

TEST(LsmYcsb, RunsMixesAndVerifies) {
  SystemConfig cfg = small_config();
  LsmYcsbConfig ycfg;
  ycfg.ops = 600;
  ycfg.keys = 128;
  ycfg.layout = small_layout();
  ycfg.engine = small_engine();
  ycfg.verify = true;
  for (const kv::Mix mix : {kv::Mix::kA, kv::Mix::kC, kv::Mix::kF}) {
    ycfg.mix = mix;
    const LsmYcsbResult res = run_lsm_ycsb(cfg, Scheme::kSteins, ycfg);
    EXPECT_TRUE(res.verified) << kv::mix_name(mix);
    EXPECT_EQ(res.ops, ycfg.ops);
    EXPECT_EQ(res.reads + res.updates, ycfg.ops);
    EXPECT_GT(res.kops_per_sec, 0.0);
    EXPECT_EQ(res.all_lat.count(), ycfg.ops);
    if (mix == kv::Mix::kC) {
      EXPECT_EQ(res.updates, 0u);
      EXPECT_EQ(res.write_amp, 0.0);
    } else {
      EXPECT_GT(res.updates, 0u);
      EXPECT_GT(res.write_amp, 1.0);
      EXPECT_GT(res.logical_write_amp, 1.0);
      // The secure path always costs more than the engine's own traffic.
      EXPECT_GT(res.write_amp, res.logical_write_amp);
    }
  }
}

}  // namespace
}  // namespace steins::lsm

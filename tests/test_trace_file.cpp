// Trace capture/replay: text round trips, malformed input, System replay.
#include <gtest/gtest.h>

#include <sstream>

#include "sim/system.hpp"
#include "trace/trace_file.hpp"
#include "trace/workloads.hpp"

namespace steins {
namespace {

TEST(TraceFile, RoundTripThroughText) {
  auto gen = make_workload("gcc", 500, 9);
  const auto original = collect_trace(*gen);
  std::stringstream ss;
  write_trace(ss, original);
  const auto parsed = read_trace(ss);
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].addr, original[i].addr) << i;
    EXPECT_EQ(parsed[i].is_write, original[i].is_write) << i;
    EXPECT_EQ(parsed[i].flush, original[i].flush) << i;
    EXPECT_EQ(parsed[i].gap, original[i].gap) << i;
  }
}

TEST(TraceFile, FlushedWritesKeepTheirKind) {
  auto gen = make_workload("pqueue", 100, 1);
  const auto original = collect_trace(*gen);
  std::stringstream ss;
  write_trace(ss, original);
  EXPECT_NE(ss.str().find("\nF "), std::string::npos);
  const auto parsed = read_trace(ss);
  EXPECT_TRUE(parsed[0].flush);
}

TEST(TraceFile, CommentsAndBlankLinesIgnored) {
  std::stringstream ss("# header\n\nR 5 3\n# mid comment\nW 9 0\n");
  const auto parsed = read_trace(ss);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].addr, 5u * kBlockSize);
  EXPECT_FALSE(parsed[0].is_write);
  EXPECT_EQ(parsed[0].gap, 3u);
  EXPECT_TRUE(parsed[1].is_write);
  EXPECT_FALSE(parsed[1].flush);
}

TEST(TraceFile, MalformedLinesThrow) {
  std::stringstream bad_kind("X 5 3\n");
  EXPECT_THROW(read_trace(bad_kind), std::invalid_argument);
  std::stringstream no_block("R\n");
  EXPECT_THROW(read_trace(no_block), std::invalid_argument);
  EXPECT_THROW(read_trace_file("/nonexistent/steins.trace"), std::invalid_argument);
}

TEST(TraceFile, VectorTraceResets) {
  VectorTrace t({MemAccess{64, true, false, 1}, MemAccess{128, false, false, 2}});
  MemAccess a;
  EXPECT_TRUE(t.next(&a));
  EXPECT_TRUE(t.next(&a));
  EXPECT_FALSE(t.next(&a));
  t.reset();
  EXPECT_TRUE(t.next(&a));
  EXPECT_EQ(a.addr, 64u);
}

TEST(TraceFile, ReplayedTraceMatchesGeneratorRun) {
  SystemConfig cfg = default_config();
  cfg.nvm.capacity_bytes = 256ULL << 20;

  auto gen = make_workload("milc", 5000, 4);
  VectorTrace replay(collect_trace(*gen));
  gen->reset();

  System a(cfg, Scheme::kSteins), b(cfg, Scheme::kSteins);
  const RunStats sa = a.run(*gen);
  const RunStats sb = b.run(replay);
  EXPECT_EQ(sa.cycles, sb.cycles);
  EXPECT_EQ(sa.mem.nvm_writes(), sb.mem.nvm_writes());
}

}  // namespace
}  // namespace steins

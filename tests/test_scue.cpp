// SCUE-style scheme (paper §II-D): high runtime performance, Recovery_root
// verification, whole-tree reconstruction recovery.
#include <gtest/gtest.h>

#include "schemes/attack.hpp"
#include "schemes/scue.hpp"
#include "schemes/steins.hpp"
#include "test_util.hpp"

namespace steins {
namespace {

using testutil::Driver;
using testutil::small_config;

TEST(Scue, WriteReadRoundTripUnderPressure) {
  ScueMemory mem(small_config());
  Driver d(mem);
  d.write_random(3000, 150'000);
  EXPECT_TRUE(d.check_all());
}

TEST(Scue, RecoveryRootTracksLeafSum) {
  ScueMemory mem(small_config());
  Driver d(mem);
  for (int i = 0; i < 100; ++i) d.write(static_cast<std::uint64_t>(i));
  // Each write bumps exactly one leaf counter by one.
  EXPECT_EQ(mem.recovery_root(), 100u);
}

TEST(Scue, RecoversExactStateAfterCrash) {
  ScueMemory mem(small_config());
  Driver d(mem);
  d.write_random(2000, 100'000);
  const auto dirty = testutil::dirty_snapshot(mem);
  ASSERT_FALSE(dirty.empty());
  mem.crash();
  const RecoveryResult r = mem.recover();
  ASSERT_TRUE(r.ok()) << r.attack_detail;
  for (const auto& [off, node] : dirty) {
    (void)off;
    const auto state = mem.current_node_state(node.id);
    ASSERT_TRUE(state.has_value());
    if (node.id.level == 0) {
      // Leaf (encryption) counters must be restored exactly; SCUE
      // RECOMPUTES internal nodes from the recovered leaves, so they may
      // legitimately run ahead of the lazily-updated pre-crash cache.
      EXPECT_TRUE(state->counters_equal(node)) << "leaf index " << node.id.index;
    } else {
      for (std::size_t j = 0; j < kTreeArity; ++j) {
        EXPECT_GE(state->gc.counters[j], node.gc.counters[j])
            << "level " << node.id.level << " index " << node.id.index;
      }
    }
  }
  EXPECT_TRUE(d.check_all());
}

TEST(Scue, RecoveryReadsScaleWithMemoryNotDirtySet) {
  // SCUE recovery touches the whole leaf region even for a tiny workload —
  // the paper's reason for excluding it (§II-D).
  SystemConfig cfg = small_config();
  cfg.nvm.capacity_bytes = 64ULL << 20;
  ScueMemory scue(cfg);
  SteinsMemory steins_mem(cfg);
  Driver ds(scue), dt(steins_mem);
  ds.write_random(200, 50'000);
  dt.write_random(200, 50'000);
  scue.crash();
  steins_mem.crash();
  const auto rc = scue.recover();
  const auto rs = steins_mem.recover();
  ASSERT_TRUE(rc.ok());
  ASSERT_TRUE(rs.ok());
  EXPECT_GT(rc.nvm_reads, 20 * rs.nvm_reads);
  EXPECT_GT(rc.seconds, 10 * rs.seconds);
}

TEST(Scue, ReplayedDataDetectedByRecoveryRoot) {
  ScueMemory mem(small_config());
  Driver d(mem);
  d.write(55);
  mem.flush_all_metadata();
  AttackInjector attacker(mem);
  attacker.record_block(55 * kBlockSize);
  d.write(55);
  d.write(55);
  mem.crash();
  ASSERT_TRUE(attacker.replay_block(55 * kBlockSize));
  const RecoveryResult r = mem.recover();
  EXPECT_TRUE(r.attack_detected);
}

TEST(Scue, RepeatedCrashRecoverCycles) {
  ScueMemory mem(small_config());
  Driver d(mem);
  for (int round = 0; round < 3; ++round) {
    d.write_random(600, 50'000);
    mem.crash();
    ASSERT_TRUE(mem.recover().ok()) << "round " << round;
    ASSERT_TRUE(d.check_all()) << "round " << round;
  }
}

}  // namespace
}  // namespace steins

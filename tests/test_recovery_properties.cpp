// Property-style recovery checks: cost scaling, level ordering, and the
// eager-update ablation mode.
#include <gtest/gtest.h>

#include "schemes/steins.hpp"
#include "schemes/writeback.hpp"
#include "secure/secure_memory.hpp"
#include "test_util.hpp"

namespace steins {
namespace {

using testutil::Driver;
using testutil::small_config;

/// Fill the metadata cache with distinct dirty leaves (fig17 methodology).
template <typename Mem>
void fill_dirty(Mem& mem, std::uint64_t leaves) {
  Cycle now = 0;
  Block data{};
  for (std::uint64_t leaf = 0; leaf < leaves; ++leaf) {
    const Addr addr = leaf * mem.geometry().leaf_coverage() * kBlockSize;
    now = mem.write_block(addr, data, now);
  }
}

TEST(RecoveryCost, ScalesWithMetadataCacheSize) {
  double prev_seconds = 0.0;
  for (const std::size_t size : {16u * 1024, 32u * 1024, 64u * 1024}) {
    SteinsMemory mem(small_config(CounterMode::kGeneral, size));
    fill_dirty(mem, 2 * size / kBlockSize);
    mem.crash();
    const RecoveryResult r = mem.recover();
    ASSERT_TRUE(r.ok()) << r.attack_detail;
    EXPECT_GT(r.seconds, prev_seconds) << "recovery time must grow with cache size";
    prev_seconds = r.seconds;
  }
}

TEST(RecoveryCost, SplitLeavesCostMoreThanGeneral) {
  // SC leaves need 64 data-block reads each vs 8 for GC (paper §IV-D).
  SteinsMemory gc(small_config(CounterMode::kGeneral));
  SteinsMemory sc(small_config(CounterMode::kSplit));
  fill_dirty(gc, 512);
  fill_dirty(sc, 512);
  gc.crash();
  sc.crash();
  const RecoveryResult rg = gc.recover();
  const RecoveryResult rs = sc.recover();
  ASSERT_TRUE(rg.ok());
  ASSERT_TRUE(rs.ok());
  EXPECT_GT(rs.nvm_reads, 3 * rg.nvm_reads);
  EXPECT_GT(rs.seconds, 3 * rg.seconds);
}

TEST(RecoveryCost, ProportionalToDirtyNodes) {
  SteinsMemory small(small_config(CounterMode::kGeneral));
  SteinsMemory large(small_config(CounterMode::kGeneral));
  fill_dirty(small, 64);
  fill_dirty(large, 512);
  small.crash();
  large.crash();
  const auto rs = small.recover();
  const auto rl = large.recover();
  ASSERT_TRUE(rs.ok());
  ASSERT_TRUE(rl.ok());
  EXPECT_GT(rl.nodes_recovered, rs.nodes_recovered);
  EXPECT_GT(rl.nvm_reads, rs.nvm_reads);
}

TEST(EagerUpdatePolicy, FunctionallyEquivalentToLazy) {
  SystemConfig cfg = small_config(CounterMode::kGeneral);
  cfg.update_policy = UpdatePolicy::kEager;
  WriteBackMemory mem(cfg);
  Driver d(mem);
  d.write_random(2000, 100'000);
  EXPECT_TRUE(d.check_all());
  mem.flush_all_metadata();
  mem.metadata_cache().clear();
  EXPECT_TRUE(d.check_all());
}

TEST(EagerUpdatePolicy, DirtiesMoreNodesThanLazy) {
  SystemConfig lazy_cfg = small_config(CounterMode::kGeneral, 64 * 1024);
  SystemConfig eager_cfg = lazy_cfg;
  eager_cfg.update_policy = UpdatePolicy::kEager;
  WriteBackMemory lazy(lazy_cfg);
  WriteBackMemory eager(eager_cfg);
  Driver dl(lazy), de(eager);
  dl.write_random(300, 50'000);
  de.write_random(300, 50'000);
  EXPECT_GT(testutil::dirty_snapshot(eager).size(), testutil::dirty_snapshot(lazy).size());
}

}  // namespace
}  // namespace steins

// Crash-recovery integration tests: after a crash, each recoverable scheme
// must restore every dirty node to its exact pre-crash state and leave all
// data readable and verifiable (paper §III-G).
#include <gtest/gtest.h>

#include <memory>

#include "schemes/steins.hpp"
#include "secure/secure_memory.hpp"
#include "test_util.hpp"

namespace steins {
namespace {

using testutil::Driver;
using testutil::dirty_snapshot;
using testutil::small_config;

struct Variant {
  Scheme scheme;
  CounterMode mode;
  const char* name;
};

class SchemeRecovery : public ::testing::TestWithParam<Variant> {
 protected:
  void SetUp() override {
    cfg_ = small_config(GetParam().mode);
    mem_ = make_scheme(GetParam().scheme, cfg_);
    base_ = dynamic_cast<SecureMemoryBase*>(mem_.get());
    ASSERT_NE(base_, nullptr);
  }

  SystemConfig cfg_;
  std::unique_ptr<SecureMemory> mem_;
  SecureMemoryBase* base_ = nullptr;
};

TEST_P(SchemeRecovery, RestoresDirtyNodesExactly) {
  Driver d(*mem_);
  d.write_random(3000, 150'000);

  // Settle deferred parent updates first: Steins' recovery applies the NV
  // buffer, so the restored state corresponds to the post-drain state.
  if (auto* steins = dynamic_cast<SteinsMemory*>(mem_.get())) {
    Cycle t = d.now();
    steins->drain_nv_buffer(t);
  }
  const auto before = dirty_snapshot(*base_);
  ASSERT_FALSE(before.empty()) << "workload should leave dirty metadata";

  mem_->crash();
  const RecoveryResult r = mem_->recover();
  ASSERT_TRUE(r.supported);
  ASSERT_FALSE(r.attack_detected) << r.attack_detail;
  EXPECT_GT(r.nodes_recovered, 0u);
  EXPECT_GT(r.nvm_reads, 0u);
  EXPECT_GT(r.seconds, 0.0);

  for (const auto& [key, node] : before) {
    const auto state = base_->current_node_state(node.id);
    ASSERT_TRUE(state.has_value()) << "node lost at level " << node.id.level;
    EXPECT_TRUE(state->counters_equal(node))
        << "level " << node.id.level << " index " << node.id.index;
    (void)key;
  }
}

TEST_P(SchemeRecovery, DataReadableAfterRecovery) {
  Driver d(*mem_);
  d.write_random(2000, 100'000);
  mem_->crash();
  const RecoveryResult r = mem_->recover();
  ASSERT_TRUE(r.ok()) << r.attack_detail;
  EXPECT_TRUE(d.check_all());
}

TEST_P(SchemeRecovery, SurvivesCrashWithCleanCache) {
  Driver d(*mem_);
  d.write_random(500, 50'000);
  base_->flush_all_metadata();
  mem_->crash();
  const RecoveryResult r = mem_->recover();
  ASSERT_TRUE(r.ok()) << r.attack_detail;
  EXPECT_TRUE(d.check_all());
}

TEST_P(SchemeRecovery, SurvivesCrashBeforeAnyWrite) {
  mem_->crash();
  const RecoveryResult r = mem_->recover();
  EXPECT_TRUE(r.ok()) << r.attack_detail;
}

TEST_P(SchemeRecovery, RepeatedCrashRecoverCycles) {
  Driver d(*mem_);
  for (int round = 0; round < 3; ++round) {
    d.write_random(800, 60'000);
    mem_->crash();
    const RecoveryResult r = mem_->recover();
    ASSERT_TRUE(r.ok()) << "round " << round << ": " << r.attack_detail;
    ASSERT_TRUE(d.check_all()) << "round " << round;
  }
}

TEST_P(SchemeRecovery, WriteAfterRecoveryContinues) {
  Driver d(*mem_);
  d.write_random(1000, 80'000);
  mem_->crash();
  ASSERT_TRUE(mem_->recover().ok());
  d.write_random(1000, 80'000);
  EXPECT_TRUE(d.check_all());
}

INSTANTIATE_TEST_SUITE_P(
    RecoverableSchemes, SchemeRecovery,
    ::testing::Values(Variant{Scheme::kAnubis, CounterMode::kGeneral, "ASIT"},
                      Variant{Scheme::kStar, CounterMode::kGeneral, "STAR"},
                      Variant{Scheme::kSteins, CounterMode::kGeneral, "Steins_GC"},
                      Variant{Scheme::kSteins, CounterMode::kSplit, "Steins_SC"}),
    [](const ::testing::TestParamInfo<Variant>& info) { return info.param.name; });

TEST(WriteBackRecovery, ReportsUnsupported) {
  auto mem = make_scheme(Scheme::kWriteBack, small_config());
  Driver d(*mem);
  d.write_random(100, 10'000);
  mem->crash();
  const RecoveryResult r = mem->recover();
  EXPECT_FALSE(r.supported);
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace steins

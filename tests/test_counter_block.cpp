// Counter-block tests: encode/decode, Eq. (1)/(2) parent values, and the
// monotonicity property of the Steins skip-increment (paper §III-B).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sit/counter_block.hpp"

namespace steins {
namespace {

TEST(GeneralCounterBlock, EncodeDecodeRoundTrip) {
  GeneralCounterBlock cb;
  for (std::size_t i = 0; i < cb.counters.size(); ++i) {
    cb.counters[i] = (0x00abcdef12345678ULL * (i + 1)) & kCounter56Mask;
  }
  EXPECT_EQ(GeneralCounterBlock::decode(cb.encode()), cb);
}

TEST(GeneralCounterBlock, ParentValueIsSumMod56) {
  GeneralCounterBlock cb;
  cb.counters = {1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_EQ(cb.parent_value(), 36u);
  cb.counters = {kCounter56Mask, 1, 0, 0, 0, 0, 0, 0};
  EXPECT_EQ(cb.parent_value(), 0u);  // wraps mod 2^56
}

TEST(GeneralCounterBlock, IncrementWrapsAt56Bits) {
  GeneralCounterBlock cb;
  cb.counters[3] = kCounter56Mask;
  cb.increment(3);
  EXPECT_EQ(cb.counters[3], 0u);
}

TEST(SplitCounterBlock, EncodeDecodeRoundTrip) {
  SplitCounterBlock cb;
  cb.major = 0x1122334455667788ULL;
  for (std::size_t i = 0; i < cb.minors.size(); ++i) {
    cb.minors[i] = static_cast<std::uint8_t>((i * 7) % kMinorMax);
  }
  EXPECT_EQ(SplitCounterBlock::decode(cb.encode()), cb);
}

TEST(SplitCounterBlock, EncodeIs56Bytes) {
  SplitCounterBlock cb;
  cb.minors.fill(63);
  cb.major = ~0ULL;
  const NodePayload p = cb.encode();
  EXPECT_EQ(p.size(), 56u);
  EXPECT_EQ(SplitCounterBlock::decode(p), cb);
}

TEST(SplitCounterBlock, ParentValueWeightsMajor) {
  SplitCounterBlock cb;
  cb.major = 3;
  cb.minors[0] = 5;
  cb.minors[63] = 7;
  EXPECT_EQ(cb.parent_value(), 3 * 64 + 5 + 7u);
}

TEST(SplitCounterBlock, SkipIncrementOverflowResetsMinors) {
  SplitCounterBlock cb;
  cb.minors[2] = kMinorMax - 1;
  cb.minors[5] = 10;
  const auto r = cb.increment_skip(2);
  EXPECT_TRUE(r.overflowed);
  EXPECT_EQ(cb.minors[2], 0u);
  EXPECT_EQ(cb.minors[5], 0u);
  // sum before reset = 63 + 10 + 1 (the triggering write) = 74 -> ceil(74/64) = 2.
  EXPECT_EQ(r.major_delta, 2u);
  EXPECT_EQ(cb.major, 2u);
}

TEST(SplitCounterBlock, PlainIncrementMajorDeltaIsOne) {
  SplitCounterBlock cb;
  cb.minors[0] = kMinorMax - 1;
  cb.minors[1] = 50;
  const auto r = cb.increment_plain(0);
  EXPECT_TRUE(r.overflowed);
  EXPECT_EQ(r.major_delta, 1u);
  EXPECT_EQ(cb.major, 1u);
}

// Property: under any sequence of skip-increments, the generated parent
// value (Eq. 2) is strictly monotonically increasing — the core requirement
// of the Steins counter-generation scheme (§III-B1).
class SkipIncrementMonotone : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SkipIncrementMonotone, ParentValueNeverDecreases) {
  Xoshiro256 rng(GetParam());
  SplitCounterBlock cb;
  std::uint64_t prev = cb.parent_value();
  for (int step = 0; step < 20000; ++step) {
    const std::size_t slot = static_cast<std::size_t>(rng.below(kSplitArity));
    cb.increment_skip(slot);
    const std::uint64_t cur = cb.parent_value();
    ASSERT_GT(cur, prev) << "step " << step << " slot " << slot;
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SkipIncrementMonotone,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// Property: skip-increment advances the parent value by at least as much as
// the plain scheme would (it aligns up), and overflow aligns the parent
// value to a multiple of 64.
TEST(SplitCounterBlock, OverflowAlignsParentValueUp) {
  Xoshiro256 rng(99);
  SplitCounterBlock cb;
  for (int step = 0; step < 5000; ++step) {
    const std::size_t slot = static_cast<std::size_t>(rng.below(kSplitArity));
    const std::uint64_t before = cb.parent_value();
    const auto r = cb.increment_skip(slot);
    if (r.overflowed) {
      EXPECT_EQ(cb.parent_value() % kMinorMax, 0u);
      EXPECT_GE(cb.parent_value(), before + 1);
    } else {
      EXPECT_EQ(cb.parent_value(), before + 1);
    }
  }
}

// Property: hammering one minor (the adversarial case of §III-B2) at most
// doubles the parent value versus the write count.
TEST(SplitCounterBlock, SkipIncrementOverheadBounded) {
  SplitCounterBlock cb;
  const std::uint64_t writes = 100000;
  for (std::uint64_t i = 0; i < writes; ++i) cb.increment_skip(0);
  EXPECT_LE(cb.parent_value(), 2 * writes + kMinorMax);
}

}  // namespace
}  // namespace steins

// Set-associative cache: LRU, eviction, dirty bits, line indexing.
#include <gtest/gtest.h>

#include "cache/cache.hpp"

namespace steins {
namespace {

TEST(Cache, GeometryComputation) {
  EXPECT_EQ(cache_num_sets(32 * 1024, 2, 64), 256u);   // L1
  EXPECT_EQ(cache_num_sets(512 * 1024, 8, 64), 1024u);  // L2
  EXPECT_EQ(cache_num_sets(256 * 1024, 8, 64), 512u);   // metadata cache
}

TEST(Cache, DuplicateInsertThrowsInvariant) {
  // A duplicate insert would leave two valid lines for one tag (silent
  // corruption); the STEINS_CHECK must fire even in NDEBUG builds.
  TagCache c(1024, 2, 64);
  c.insert(0x40, false, Empty{});
  EXPECT_THROW(c.insert(0x40, true, Empty{}), StatusError);
  EXPECT_THROW(c.insert(0x7f, true, Empty{}), StatusError);  // same block, unaligned
}

TEST(Cache, HitAfterInsert) {
  TagCache c(1024, 2, 64);
  EXPECT_EQ(c.lookup(0x1000), nullptr);
  c.insert(0x1000, false, Empty{});
  EXPECT_NE(c.lookup(0x1000), nullptr);
  EXPECT_EQ(c.stats().hits, 1u);
  EXPECT_EQ(c.stats().misses, 1u);
}

TEST(Cache, LruEvictsLeastRecentlyUsed) {
  // 2 ways, 64 B blocks, 2 sets -> set selected by bit 6.
  TagCache c(256, 2, 64);
  const Addr a = 0x000, b = 0x100, d = 0x200;  // all map to set 0
  c.insert(a, false, Empty{});
  c.insert(b, false, Empty{});
  EXPECT_NE(c.lookup(a), nullptr);  // a becomes MRU
  const auto victim = c.insert(d, false, Empty{});
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->addr, b);  // b was LRU
  EXPECT_NE(c.peek(a), nullptr);
  EXPECT_EQ(c.peek(b), nullptr);
}

TEST(Cache, DirtyEvictionReported) {
  TagCache c(128, 1, 64);  // direct-mapped, 2 sets
  c.insert(0x000, true, Empty{});
  const auto victim = c.insert(0x100, false, Empty{});
  ASSERT_TRUE(victim.has_value());
  EXPECT_TRUE(victim->dirty);
  EXPECT_EQ(c.stats().dirty_evictions, 1u);
}

TEST(Cache, LookupMarkDirty) {
  TagCache c(256, 2, 64);
  c.insert(0x40, false, Empty{});
  c.lookup(0x40, true);
  const auto victim = c.invalidate(0x40);
  ASSERT_TRUE(victim.has_value());
  EXPECT_TRUE(victim->dirty);
}

TEST(Cache, LineIndexStableWhileCached) {
  TagCache c(1024, 4, 64);
  c.insert(0x1500, false, Empty{});
  const auto idx = c.line_index(0x1500);
  ASSERT_GE(idx, 0);
  c.insert(0x2540, false, Empty{});  // different block
  EXPECT_EQ(c.line_index(0x1500), idx);
  EXPECT_EQ(c.line_index(0x9999000), -1);
}

TEST(Cache, PayloadRoundTrip) {
  SetAssocCache<int> c(256, 2, 64);
  c.insert(0x80, false, 42);
  auto* line = c.lookup(0x80);
  ASSERT_NE(line, nullptr);
  EXPECT_EQ(line->payload, 42);
  line->payload = 43;
  EXPECT_EQ(c.peek(0x80)->payload, 43);
}

TEST(Cache, ForEachVisitsValidOnly) {
  TagCache c(512, 2, 64);
  c.insert(0x000, false, Empty{});
  c.insert(0x040, true, Empty{});
  int count = 0, dirty = 0;
  c.for_each([&](const TagCache::Line& line) {
    ++count;
    if (line.dirty) ++dirty;
  });
  EXPECT_EQ(count, 2);
  EXPECT_EQ(dirty, 1);
  c.clear();
  count = 0;
  c.for_each([&](const TagCache::Line&) { ++count; });
  EXPECT_EQ(count, 0);
}

TEST(Cache, FullyAssociativeSingleSet) {
  // 16 lines, 16 ways -> one set (the ADR record-line cache shape).
  TagCache c(16 * 64, 16, 64);
  EXPECT_EQ(c.num_sets(), 1u);
  for (Addr a = 0; a < 16 * 64; a += 64) c.insert(a, false, Empty{});
  EXPECT_FALSE(c.insert(0x4000, false, Empty{}) == std::nullopt);
}

TEST(Cache, SubBlockAddressesAlias) {
  TagCache c(256, 2, 64);
  c.insert(0x100, false, Empty{});
  EXPECT_NE(c.lookup(0x13f), nullptr);  // same 64 B block
}

}  // namespace
}  // namespace steins

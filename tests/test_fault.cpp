// Fault-injection engine unit tests: plan derivation, class parsing, the
// crash-drain fates (torn / dropped / reordered / ADR loss), post-crash
// bit-flip determinism, and single-trial reproduction.
#include <gtest/gtest.h>

#include <cstring>

#include "common/config.hpp"
#include "fault/campaign.hpp"
#include "fault/fault.hpp"
#include "nvm/nvm_device.hpp"
#include "nvm/write_queue.hpp"

namespace steins {
namespace {

Block filled(std::uint8_t v) {
  Block b;
  b.fill(v);
  return b;
}

SystemConfig small_config() {
  SystemConfig cfg = default_config();
  cfg.nvm.capacity_bytes = std::uint64_t{4} << 20;
  cfg.crypto = CryptoProfile::kFast;
  return cfg;
}

/// Queue `n` tagged writes of `newv` over pre-existing `oldv` lines, then
/// crash-drain through an injector with the given plan.
FaultInjector crash_drain(const FaultPlan& plan, NvmDevice& dev, int n,
                          const Block& oldv, const Block& newv) {
  const SystemConfig cfg = default_config();
  NvmChannel ch(cfg, dev);
  FaultInjector injector(plan);
  ch.set_crash_fault_hook(&injector);
  for (int i = 0; i < n; ++i) {
    const Addr addr = static_cast<Addr>(i) * 64;
    dev.poke_block(addr, oldv);
    dev.write_tag(addr, 0x0101);
    const std::uint64_t tag = 0x9999;
    ch.write(addr, newv, 0, nullptr, 0, &tag);
  }
  ch.crash_drain_all(0);
  EXPECT_EQ(ch.queue_depth(), 0u);
  return injector;
}

TEST(FaultPlan, DerivationIsPureAndClassSeparated) {
  const FaultPlan a = FaultPlan::derive(FaultClass::kTornWrite, 42, 7);
  const FaultPlan b = FaultPlan::derive(FaultClass::kTornWrite, 42, 7);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.intensity, b.intensity);
  EXPECT_GE(a.intensity, 1u);
  // Different trial or class must draw a different fault stream.
  EXPECT_NE(a.seed, FaultPlan::derive(FaultClass::kTornWrite, 42, 8).seed);
  EXPECT_NE(a.seed, FaultPlan::derive(FaultClass::kBitFlipData, 42, 7).seed);
}

TEST(FaultClassNames, RoundTripAndAliases) {
  for (const FaultClass cls : all_fault_classes()) {
    const auto parsed = parse_fault_class(fault_class_name(cls));
    ASSERT_TRUE(parsed.has_value()) << fault_class_name(cls);
    EXPECT_EQ(*parsed, cls);
  }
  EXPECT_EQ(all_fault_classes().size(), 10u);  // kNone excluded
  EXPECT_EQ(parse_fault_class("torn"), FaultClass::kTornWrite);
  EXPECT_EQ(parse_fault_class("adr"), FaultClass::kAdrLoss);
  EXPECT_EQ(parse_fault_class("mac"), FaultClass::kBitFlipMac);
  EXPECT_EQ(parse_fault_class("cflip"), FaultClass::kCorrectableFlip);
  EXPECT_EQ(parse_fault_class("none"), FaultClass::kNone);
  EXPECT_FALSE(parse_fault_class("bogus").has_value());
}

TEST(FaultInjector, TornWriteMixesOldAndNewAndKeepsOldTag) {
  NvmDevice dev(NvmConfig{});
  FaultPlan plan;
  plan.cls = FaultClass::kTornWrite;
  plan.seed = 0xfeed;
  plan.intensity = 1;
  const FaultInjector injector = crash_drain(plan, dev, 4, filled(0xaa), filled(0x55));
  ASSERT_EQ(injector.events().size(), 1u);
  const FaultEvent& e = injector.events()[0];
  EXPECT_EQ(e.kind, FaultEvent::Kind::kTear);
  const Block torn = dev.peek_block(e.addr);
  int old_words = 0, new_words = 0;
  for (int w = 0; w < 8; ++w) {
    if (std::memcmp(torn.data() + w * 8, filled(0xaa).data(), 8) == 0) ++old_words;
    if (std::memcmp(torn.data() + w * 8, filled(0x55).data(), 8) == 0) ++new_words;
  }
  EXPECT_EQ(old_words + new_words, 8);
  EXPECT_GT(old_words, 0);  // never all-new
  EXPECT_GT(new_words, 0);  // never all-old
  // The transaction did not complete: the old ECC-colocated tag survives.
  EXPECT_EQ(dev.read_tag(e.addr), 0x0101u);
}

TEST(FaultInjector, AdrLossDropsTheWholeQueue) {
  NvmDevice dev(NvmConfig{});
  FaultPlan plan;
  plan.cls = FaultClass::kAdrLoss;
  plan.seed = 1;
  const FaultInjector injector = crash_drain(plan, dev, 5, filled(0xaa), filled(0x55));
  EXPECT_EQ(injector.events().size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(dev.peek_block(static_cast<Addr>(i) * 64), filled(0xaa));
    EXPECT_EQ(dev.read_tag(static_cast<Addr>(i) * 64), 0x0101u);
  }
}

TEST(FaultInjector, DroppedPersistLosesAtLeastOneWrite) {
  NvmDevice dev(NvmConfig{});
  FaultPlan plan;
  plan.cls = FaultClass::kDroppedPersist;
  plan.seed = 0xd10f;
  const FaultInjector injector = crash_drain(plan, dev, 6, filled(0xaa), filled(0x55));
  std::size_t dropped = 0;
  for (const FaultEvent& e : injector.events()) {
    if (e.kind == FaultEvent::Kind::kDrop) {
      ++dropped;
      EXPECT_EQ(dev.peek_block(e.addr), filled(0xaa));  // old data survives
    }
  }
  EXPECT_GE(dropped, 1u);
  EXPECT_LT(dropped, 7u);
}

TEST(FaultInjector, ReorderedPersistCommitsPartialPermutation) {
  NvmDevice dev(NvmConfig{});
  FaultPlan plan;
  plan.cls = FaultClass::kReorderedPersist;
  plan.seed = 0x5eed;
  const FaultInjector injector = crash_drain(plan, dev, 8, filled(0xaa), filled(0x55));
  std::size_t committed = 0;
  for (int i = 0; i < 8; ++i) {
    if (dev.peek_block(static_cast<Addr>(i) * 64) == filled(0x55)) ++committed;
  }
  EXPECT_GE(committed, 1u);  // at least one write drained before power died
  EXPECT_FALSE(injector.events().empty());
}

TEST(FaultInjector, PostCrashFlipsAreDeterministic) {
  const auto run_events = [] {
    const SystemConfig cfg = small_config();
    std::unique_ptr<SecureMemory> mem = make_scheme(Scheme::kSteins, cfg);
    Cycle now = 0;
    for (int i = 0; i < 32; ++i) {
      now = mem->write_block(static_cast<Addr>(i) * 64, filled(static_cast<std::uint8_t>(i)),
                             now);
    }
    dynamic_cast<SecureMemoryBase*>(mem.get())->flush_all_metadata();
    mem->crash();
    FaultPlan plan;
    plan.cls = FaultClass::kBitFlipCounter;
    plan.seed = 0xc0ffee;
    plan.intensity = 3;
    FaultInjector injector(plan);
    injector.apply_post_crash(*mem);
    return injector.event_summary(100);
  };
  const std::string first = run_events();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, run_events());
}

TEST(FaultInjector, CorrectableFlipsStayWithinTheEccBudget) {
  const SystemConfig cfg = small_config();
  std::unique_ptr<SecureMemory> mem = make_scheme(Scheme::kSteins, cfg);
  Cycle now = 0;
  for (int i = 0; i < 32; ++i) {
    now = mem->write_block(static_cast<Addr>(i) * 64,
                           filled(static_cast<std::uint8_t>(i)), now);
  }
  dynamic_cast<SecureMemoryBase*>(mem.get())->flush_all_metadata();
  mem->crash();
  FaultPlan plan;
  plan.cls = FaultClass::kCorrectableFlip;
  plan.seed = 0xab5019;
  plan.intensity = 4;
  FaultInjector injector(plan);
  injector.apply_post_crash(*mem);
  ASSERT_FALSE(injector.events().empty());
  // Every event is a correctable fault, and ECC recovers the golden image:
  // peeking through ECC returns the pre-fault content for every target.
  NvmDevice& dev = mem->device();
  for (const FaultEvent& e : injector.events()) {
    EXPECT_EQ(e.kind, FaultEvent::Kind::kCorrectable);
    bool uncorrectable = true;
    (void)dev.peek_corrected(e.addr, &uncorrectable);
    EXPECT_FALSE(uncorrectable) << "addr " << e.addr;
  }
}

TEST(FaultTrial, SingleTrialReproducesBitForBit) {
  const SchemeSpec spec{Scheme::kSteins, CounterMode::kGeneral, "Steins-GC"};
  FaultTrialOptions workload;
  workload.ops = 96;
  workload.footprint_blocks = 256;
  workload.capacity_mb = 4;
  const TrialOutcome a =
      run_fault_trial(spec, FaultClass::kTornWrite, 42, 17, workload);
  const TrialOutcome b =
      run_fault_trial(spec, FaultClass::kTornWrite, 42, 17, workload);
  EXPECT_EQ(a.verdict, b.verdict);
  EXPECT_EQ(a.detail, b.detail);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_NE(a.verdict, FaultVerdict::kSilentCorruption);
}

}  // namespace
}  // namespace steins

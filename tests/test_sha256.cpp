// SHA-256 known-answer tests (FIPS 180-4 / NIST vectors) and streaming.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "crypto/sha256.hpp"

namespace steins::crypto {
namespace {

std::string hex(const Sha256::Digest& d) {
  char buf[65];
  for (int i = 0; i < 32; ++i) std::snprintf(buf + i * 2, 3, "%02x", d[i]);
  return std::string(buf, 64);
}

Sha256::Digest hash_str(const std::string& s) {
  return Sha256::hash({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
}

TEST(Sha256, EmptyString) {
  EXPECT_EQ(hex(hash_str("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hex(hash_str("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(hex(hash_str("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionA) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    h.update({reinterpret_cast<const std::uint8_t*>(chunk.data()), chunk.size()});
  }
  EXPECT_EQ(hex(h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingMatchesOneShot) {
  const std::string msg = "the quick brown fox jumps over the lazy dog, repeatedly and often";
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha256 h;
    h.update({reinterpret_cast<const std::uint8_t*>(msg.data()), split});
    h.update({reinterpret_cast<const std::uint8_t*>(msg.data()) + split, msg.size() - split});
    EXPECT_EQ(h.finalize(), hash_str(msg)) << "split at " << split;
  }
}

TEST(Sha256, ExactBlockBoundaryLengths) {
  // Lengths around the 55/56/64-byte padding boundaries are classic bugs.
  for (const std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    const std::string msg(len, 'x');
    Sha256 h;
    for (const char c : msg) {
      h.update({reinterpret_cast<const std::uint8_t*>(&c), 1});
    }
    EXPECT_EQ(h.finalize(), hash_str(msg)) << "len " << len;
  }
}

TEST(Sha256, ReusableAfterFinalize) {
  Sha256 h;
  h.update({reinterpret_cast<const std::uint8_t*>("abc"), 3});
  const auto first = h.finalize();
  h.update({reinterpret_cast<const std::uint8_t*>("abc"), 3});
  EXPECT_EQ(h.finalize(), first);
}

}  // namespace
}  // namespace steins::crypto

// Multi-controller model (paper §IV-F): routing, isolation, parallel
// frontiers, aggregate recovery.
#include <gtest/gtest.h>

#include <map>

#include "sim/multi_controller.hpp"
#include "test_util.hpp"

namespace steins {
namespace {

using testutil::pattern_block;

SystemConfig mc_config() {
  SystemConfig cfg = default_config();
  cfg.nvm.capacity_bytes = 1ULL << 30;
  return cfg;
}

TEST(MultiController, RoundTripAcrossControllers) {
  MultiControllerMemory mem(mc_config(), Scheme::kSteins, 3);
  std::map<Addr, std::uint64_t> versions;
  Cycle now = 0;
  Xoshiro256 rng(1);
  for (int i = 0; i < 1000; ++i) {
    const Addr addr = rng.below(1 << 20) * kBlockSize;
    const std::uint64_t v = ++versions[addr];
    now = mem.write_block(addr, pattern_block(addr, v), now);
  }
  for (const auto& [addr, v] : versions) {
    Block out;
    mem.read_block(addr, now, &out);
    ASSERT_EQ(out, pattern_block(addr, v));
  }
}

TEST(MultiController, DisjointStreamsAdvanceIndependentFrontiers) {
  // Two clients hammering different DIMMs: the makespan is roughly one
  // client's worth of work, not two.
  const std::size_t dimm = 1 << 20;
  MultiControllerMemory two(mc_config(), Scheme::kSteins, 2, dimm);
  MultiControllerMemory one(mc_config(), Scheme::kSteins, 1, dimm);
  Block data{};
  Cycle a0 = 0, a1 = 0, b0 = 0, b1 = 0;
  for (int i = 0; i < 2000; ++i) {
    const Addr lo = static_cast<Addr>(i % 512) * kBlockSize;
    const Addr hi = dimm + static_cast<Addr>(i % 512) * kBlockSize;
    a0 = two.write_block(lo, data, a0);
    a1 = two.write_block(hi, data, a1);
    b0 = one.write_block(lo, data, b0);
    b1 = one.write_block(hi, data, b1);
  }
  EXPECT_LT(two.max_frontier(), one.max_frontier());
}

TEST(MultiController, RecoveryAggregatesAndParallelizes) {
  MultiControllerMemory mem(mc_config(), Scheme::kSteins, 2);
  Block data{};
  Cycle now = 0;
  Xoshiro256 rng(2);
  for (int i = 0; i < 2000; ++i) {
    now = mem.write_block(rng.below(1 << 20) * kBlockSize, data, now);
  }
  const RecoveryResult r = mem.crash_and_recover_all();
  ASSERT_TRUE(r.ok()) << r.attack_detail;
  EXPECT_GT(r.nodes_recovered, 0u);
  // The combined time is the max over controllers, so it must not exceed
  // the per-controller sums.
  double sum = 0;
  for (unsigned i = 0; i < mem.controllers(); ++i) sum += r.seconds;
  EXPECT_LE(r.seconds, sum);
}

TEST(MultiController, DataSurvivesCrashOnEveryController) {
  MultiControllerMemory mem(mc_config(), Scheme::kSteins, 4);
  std::map<Addr, std::uint64_t> versions;
  Cycle now = 0;
  Xoshiro256 rng(9);
  for (int i = 0; i < 1500; ++i) {
    const Addr addr = rng.below(1 << 19) * kBlockSize;
    const std::uint64_t v = ++versions[addr];
    now = mem.write_block(addr, pattern_block(addr, v), now);
  }
  ASSERT_TRUE(mem.crash_and_recover_all().ok());
  for (const auto& [addr, v] : versions) {
    Block out;
    mem.read_block(addr, 0, &out);
    ASSERT_EQ(out, pattern_block(addr, v));
  }
}

}  // namespace
}  // namespace steins

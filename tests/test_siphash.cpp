// SipHash-2-4 known-answer tests (reference vectors from the SipHash paper
// / reference implementation) plus MacEngine/OtpEngine behaviour.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "crypto/mac.hpp"
#include "crypto/otp.hpp"
#include "crypto/siphash.hpp"

namespace steins::crypto {
namespace {

SipHash24 reference_keyed() {
  SipHash24::Key key;
  for (int i = 0; i < 16; ++i) key[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
  return SipHash24(key);
}

TEST(SipHash24, ReferenceVectors) {
  // vectors_sip64 from the reference implementation: key = 00..0f,
  // input = first N bytes of 00 01 02 ...
  const SipHash24 sip = reference_keyed();
  const std::uint64_t expected[] = {
      0x726fdb47dd0e0e31ULL,  // len 0
      0x74f839c593dc67fdULL,  // len 1
      0x0d6c8009d9a94f5aULL,  // len 2
      0x85676696d7fb7e2dULL,  // len 3
      0xcf2794e0277187b7ULL,  // len 4
      0x18765564cd99a68dULL,  // len 5
      0xcbc9466e58fee3ceULL,  // len 6
      0xab0200f58b01d137ULL,  // len 7
      0x93f5f5799a932462ULL,  // len 8
  };
  std::vector<std::uint8_t> input;
  for (std::size_t len = 0; len < std::size(expected); ++len) {
    EXPECT_EQ(sip.hash(input), expected[len]) << "length " << len;
    input.push_back(static_cast<std::uint8_t>(len));
  }
}

TEST(SipHash24, HashWordsMatchesByteHash) {
  const SipHash24 sip = reference_keyed();
  const std::uint64_t a = 0x0123456789abcdefULL;
  const std::uint64_t b = 0xfedcba9876543210ULL;
  std::uint8_t buf[16];
  std::memcpy(buf, &a, 8);
  std::memcpy(buf + 8, &b, 8);
  EXPECT_EQ(sip.hash_words(a, b), sip.hash({buf, 16}));
}

TEST(MacEngine, ProfilesAreKeyedAndDeterministic) {
  for (const auto profile : {CryptoProfile::kReal, CryptoProfile::kFast}) {
    MacEngine m1(profile, 42);
    MacEngine m1b(profile, 42);
    MacEngine m2(profile, 43);
    const std::uint8_t data[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    EXPECT_EQ(m1.mac64(data), m1b.mac64(data));
    EXPECT_NE(m1.mac64(data), m2.mac64(data));
  }
}

TEST(MacEngine, NodeMacBindsAddressAndParentCounter) {
  MacEngine mac(CryptoProfile::kFast, 7);
  const std::uint8_t payload[56] = {};
  EXPECT_NE(mac.node_mac(payload, 0x1000, 5), mac.node_mac(payload, 0x1040, 5));
  EXPECT_NE(mac.node_mac(payload, 0x1000, 5), mac.node_mac(payload, 0x1000, 6));
}

TEST(OtpEngine, PadsAreUniquePerAddressAndCounter) {
  for (const auto profile : {CryptoProfile::kReal, CryptoProfile::kFast}) {
    OtpEngine otp(profile, 99);
    const Block p1 = otp.pad(0x40, 1);
    const Block p2 = otp.pad(0x80, 1);
    const Block p3 = otp.pad(0x40, 2);
    EXPECT_NE(p1, p2);
    EXPECT_NE(p1, p3);
    EXPECT_EQ(p1, otp.pad(0x40, 1));  // deterministic
  }
}

TEST(OtpEngine, XorRoundTrip) {
  OtpEngine otp(CryptoProfile::kReal, 123);
  Block data;
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<std::uint8_t>(i * 3);
  const Block pad = otp.pad(0x1234 * kBlockSize, 77);
  Block ct;
  for (std::size_t i = 0; i < data.size(); ++i) ct[i] = data[i] ^ pad[i];
  Block pt;
  for (std::size_t i = 0; i < data.size(); ++i) pt[i] = ct[i] ^ pad[i];
  EXPECT_EQ(pt, data);
}

}  // namespace
}  // namespace steins::crypto

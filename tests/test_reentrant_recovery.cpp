// Re-entrant recovery (DESIGN.md §17): a recovery attempt that crashes at
// ANY persist boundary and is re-entered must converge to the exact image
// an uncrashed recovery produces. The differential harness runs the same
// seeded workload twice, crashes the recovery of one copy at a chosen
// boundary, retries it, and compares durable state bit-for-bit.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <vector>

#include "fault/campaign.hpp"
#include "fault/differential.hpp"
#include "fault/fault.hpp"
#include "schemes/bmt.hpp"
#include "schemes/steins.hpp"
#include "test_util.hpp"

namespace steins {
namespace {

using testutil::pattern_block;
using testutil::small_config;

DifferentialOptions fast_options() {
  DifferentialOptions opt;
  opt.seed = 11;
  opt.ops = 96;
  opt.footprint_blocks = 256;
  opt.capacity_mb = 8;
  opt.mcache_kb = 16;
  return opt;
}

std::vector<SchemeSpec> sweep_schemes() {
  std::vector<SchemeSpec> specs = campaign_schemes(CounterMode::kGeneral);
  const auto split = campaign_schemes(CounterMode::kSplit);
  specs.insert(specs.end(), split.begin(), split.end());
  return specs;
}

/// STAR's recovery is pure reads + volatile cache repairs (LSB splicing
/// into the mcache, verified against the root register) — it crosses zero
/// persist boundaries, so a nested crash has nothing durable to interrupt
/// and the armed-boundary tests are vacuous for it.
bool recovery_persists_nothing(const SchemeSpec& spec) {
  return spec.scheme == Scheme::kStar;
}

class ReentrantRecovery : public ::testing::TestWithParam<SchemeSpec> {};

TEST_P(ReentrantRecovery, CleanSelfCheckConverges) {
  // boundary=0: both copies recover uncrashed. Any divergence here is a
  // harness bug, not a re-entrancy bug.
  const DifferentialResult res = run_differential_trial(GetParam(), fast_options());
  EXPECT_TRUE(res.converged) << res.divergence;
  if (recovery_persists_nothing(GetParam())) {
    EXPECT_EQ(res.total_boundaries, 0u);
  } else {
    EXPECT_GT(res.total_boundaries, 0u);
  }
}

TEST_P(ReentrantRecovery, BoundaryCensusIsDeterministic) {
  const DifferentialOptions opt = fast_options();
  const std::uint64_t a = count_recovery_boundaries(GetParam(), opt);
  const std::uint64_t b = count_recovery_boundaries(GetParam(), opt);
  EXPECT_EQ(a, b);
  if (!recovery_persists_nothing(GetParam())) {
    EXPECT_GT(a, 0u);
  }
}

TEST_P(ReentrantRecovery, StridedBoundarySweepConverges) {
  if (recovery_persists_nothing(GetParam())) {
    GTEST_SKIP() << "recovery crosses no persist boundaries";
  }
  const DifferentialOptions base = fast_options();
  const std::uint64_t total = count_recovery_boundaries(GetParam(), base);
  ASSERT_GT(total, 0u);

  // Sample ~10 boundaries evenly, always including the first and the last.
  const std::uint64_t stride = std::max<std::uint64_t>(1, total / 10);
  std::vector<std::uint64_t> sample;
  for (std::uint64_t b = 1; b <= total; b += stride) sample.push_back(b);
  if (sample.back() != total) sample.push_back(total);

  for (const std::uint64_t boundary : sample) {
    DifferentialOptions opt = base;
    opt.boundary = boundary;
    const DifferentialResult res = run_differential_trial(GetParam(), opt);
    EXPECT_TRUE(res.converged)
        << GetParam().label << " diverged after nested crash at boundary " << boundary
        << "/" << total << ": " << res.divergence;
    ASSERT_GE(res.crashed.attempts.size(), 2u);
    EXPECT_TRUE(res.crashed.attempts.front().crashed);
    EXPECT_EQ(res.crashed.attempts.front().crash_boundary, boundary);
    EXPECT_FALSE(res.crashed.attempts.back().crashed);
  }
}

TEST_P(ReentrantRecovery, RearmedCrashBacksOffAndConverges) {
  if (recovery_persists_nothing(GetParam())) {
    GTEST_SKIP() << "recovery crosses no persist boundaries";
  }
  // Re-arming the crash on every retry exercises the exponential persist-
  // budget backoff: the armed boundary doubles until it sails past the end
  // of the attempt, so the budget must allow ~log2(total) doublings.
  DifferentialOptions opt = fast_options();
  const std::uint64_t total = count_recovery_boundaries(GetParam(), opt);
  opt.boundary = 1;
  opt.rearm = true;
  std::uint64_t attempts = 2;
  while ((std::uint64_t{1} << (attempts - 1)) <= total) ++attempts;
  opt.policy.max_recovery_attempts = attempts + 2;
  const DifferentialResult res = run_differential_trial(GetParam(), opt);
  EXPECT_TRUE(res.converged) << res.divergence;
  ASSERT_GE(res.crashed.attempts.size(), 2u);
  EXPECT_TRUE(res.crashed.attempts.front().crashed);
  EXPECT_FALSE(res.crashed.attempts.back().crashed);
  // Each retry's armed boundary is strictly deeper than the last.
  std::uint64_t prev = 0;
  for (const RecoveryAttempt& a : res.crashed.attempts) {
    if (!a.crashed) break;
    EXPECT_GT(a.crash_boundary, prev);
    prev = a.crash_boundary;
  }
}

TEST_P(ReentrantRecovery, ExhaustedRetryBudgetGivesUpTyped) {
  if (recovery_persists_nothing(GetParam())) {
    GTEST_SKIP() << "recovery crosses no persist boundaries";
  }
  DifferentialOptions opt = fast_options();
  opt.boundary = 1;
  opt.policy.max_recovery_attempts = 1;
  const DifferentialResult res = run_differential_trial(GetParam(), opt);
  EXPECT_FALSE(res.converged);
  EXPECT_TRUE(res.crashed.recovery_gave_up);
  EXPECT_EQ(res.crashed.status.code(), ErrorCode::kUnavailable);
  ASSERT_EQ(res.crashed.attempts.size(), 1u);
  EXPECT_TRUE(res.crashed.attempts.front().crashed);
}

std::string spec_test_name(const ::testing::TestParamInfo<SchemeSpec>& info) {
  std::string name = info.param.label;
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(Schemes, ReentrantRecovery, ::testing::ValuesIn(sweep_schemes()),
                         spec_test_name);

// ---------------------------------------------------------------------------
// Steins resume cursor: survives the crash that interrupted the attempt
// (including a subsequent ADR drain), seeds the next attempt, and is
// retired once an attempt completes.

std::uint64_t cursor_magic_at(SteinsMemory& mem) {
  std::uint64_t magic = 0;
  const Block header = mem.device().peek_block(mem.recovery_cursor_base());
  std::memcpy(&magic, header.data(), 8);
  return magic;
}

TEST(SteinsResumeCursor, SurvivesAdrLossAndSeedsNextAttempt) {
  SteinsMemory mem(small_config());
  std::map<Addr, std::uint64_t> versions;
  Cycle now = 0;
  Xoshiro256 rng(21);
  for (int i = 0; i < 1500; ++i) {
    const Addr addr = rng.below(400) * kBlockSize;
    now = mem.write_block(addr, pattern_block(addr, ++versions[addr]), now);
  }
  mem.crash();
  EXPECT_EQ(cursor_magic_at(mem), 0u) << "no attempt pending before recovery";

  // Crash the recovery right after the cursor persisted (boundary 1 is the
  // cursor itself; boundary 2 is the first durable write past it), with a
  // one-attempt budget so the give-up path leaves the machine down.
  FaultInjector inj(FaultPlan::derive(FaultClass::kNone, 7, 0));
  inj.arm_recovery_crash(2);
  mem.set_fault_injector(&inj);
  RecoveryRetryPolicy one_shot;
  one_shot.max_recovery_attempts = 1;
  const RecoveryReport gave_up = recover_with_retry(mem, &inj, one_shot);
  mem.set_fault_injector(nullptr);
  ASSERT_TRUE(gave_up.recovery_gave_up);
  EXPECT_EQ(gave_up.status.code(), ErrorCode::kUnavailable);
  ASSERT_EQ(gave_up.attempts.size(), 1u);
  EXPECT_TRUE(gave_up.attempts.front().crashed);
  EXPECT_EQ(gave_up.attempts.front().crash_boundary, 2u);

  // The cursor window was poked durably, so it survives a further power
  // loss that drains nothing (ADR already empty after the nested crash).
  EXPECT_EQ(cursor_magic_at(mem), SteinsMemory::kCursorMagic);
  mem.crash();
  EXPECT_EQ(cursor_magic_at(mem), SteinsMemory::kCursorMagic);

  // A fresh recovery resumes: it reads the non-empty cursor (the crashed
  // attempt's telemetry was already drained into the gave-up report) and
  // retires it on completion.
  const RecoveryReport done = mem.recover();
  ASSERT_TRUE(done.status.ok()) << done.status.message();
  EXPECT_FALSE(done.attack_detected) << done.attack_detail;
  ASSERT_GE(done.attempts.size(), 1u);
  EXPECT_FALSE(done.attempts.back().crashed);
  EXPECT_GT(done.resume_cursor, 0u);
  EXPECT_EQ(cursor_magic_at(mem), 0u) << "cursor retired after a completed attempt";

  // Data still serves the committed versions.
  for (const auto& [addr, v] : versions) {
    Block out;
    now = mem.read_block(addr, now, &out);
    ASSERT_EQ(out, pattern_block(addr, v));
  }
}

// ---------------------------------------------------------------------------
// Campaign integration: the nested-crash knobs thread through the fault
// trial and the multi-cycle trial, producing the two new verdicts.

FaultTrialOptions small_trial_workload() {
  FaultTrialOptions w;
  w.ops = 96;
  w.footprint_blocks = 256;
  w.capacity_mb = 8;
  return w;
}

TEST(ReentrantCampaign, NestedCrashYieldsRecoveredAfterRetry) {
  FaultTrialOptions w = small_trial_workload();
  w.recovery_crash_boundary = 1;
  const SchemeSpec spec{Scheme::kSteins, CounterMode::kGeneral,
                        scheme_name(Scheme::kSteins, CounterMode::kGeneral)};
  const TrialOutcome out = run_fault_trial(spec, FaultClass::kNone, 5, 0, w);
  EXPECT_EQ(out.verdict, FaultVerdict::kRecoveredAfterRetry) << out.detail;
  EXPECT_EQ(out.recovery_attempts, 2u);
  EXPECT_GT(out.recovery_seconds, 0.0);
}

TEST(ReentrantCampaign, ExhaustedBudgetYieldsUnrecoverable) {
  FaultTrialOptions w = small_trial_workload();
  w.recovery_crash_boundary = 1;
  w.recovery_crash_rearm = true;
  w.retry_policy.max_recovery_attempts = 1;
  w.retry_policy.exponential_backoff = false;
  const SchemeSpec spec{Scheme::kSteins, CounterMode::kGeneral,
                        scheme_name(Scheme::kSteins, CounterMode::kGeneral)};
  const TrialOutcome out = run_fault_trial(spec, FaultClass::kNone, 5, 0, w);
  EXPECT_EQ(out.verdict, FaultVerdict::kRecoveryCrashUnrecoverable) << out.detail;
  EXPECT_EQ(out.recovery_attempts, 1u);
}

TEST(ReentrantCampaign, MulticycleCleanTrialRecovers) {
  const SchemeSpec spec{Scheme::kSteins, CounterMode::kGeneral,
                        scheme_name(Scheme::kSteins, CounterMode::kGeneral)};
  const MulticycleOutcome out =
      run_multicycle_trial(spec, FaultClass::kNone, 5, 0, 3, small_trial_workload());
  EXPECT_EQ(out.verdict, FaultVerdict::kRecovered) << out.detail;
  EXPECT_EQ(out.cycles_run, 3u);
  ASSERT_EQ(out.attempts_per_cycle.size(), 3u);
  for (const std::uint64_t a : out.attempts_per_cycle) EXPECT_EQ(a, 1u);
  for (const double s : out.recovery_seconds_per_cycle) EXPECT_GT(s, 0.0);
}

TEST(ReentrantCampaign, MulticycleNestedCrashEveryCycleConverges) {
  FaultTrialOptions w = small_trial_workload();
  w.recovery_crash_boundary = 1;
  const SchemeSpec spec{Scheme::kSteins, CounterMode::kGeneral,
                        scheme_name(Scheme::kSteins, CounterMode::kGeneral)};
  const MulticycleOutcome out = run_multicycle_trial(spec, FaultClass::kNone, 5, 0, 3, w);
  EXPECT_EQ(out.verdict, FaultVerdict::kRecoveredAfterRetry) << out.detail;
  EXPECT_EQ(out.cycles_run, 3u);
  ASSERT_EQ(out.attempts_per_cycle.size(), 3u);
  for (const std::uint64_t a : out.attempts_per_cycle) EXPECT_EQ(a, 2u);
}

// ---------------------------------------------------------------------------
// BMT is a standalone SecureMemory (no SecureMemoryBase plumbing), so its
// whole-tree rebuild gets a direct-drive differential sweep.

struct BmtRun {
  std::unique_ptr<BmtMemory> mem;
  std::map<Addr, std::uint64_t> versions;
};

BmtRun bmt_crashed_run() {
  BmtRun run;
  run.mem = std::make_unique<BmtMemory>(small_config());
  Cycle now = 0;
  Xoshiro256 rng(9);
  for (int i = 0; i < 800; ++i) {
    const Addr addr = rng.below(300) * kBlockSize;
    now = run.mem->write_block(addr, pattern_block(addr, ++run.versions[addr]), now);
  }
  run.mem->crash();
  return run;
}

TEST(BmtReentrantRecovery, StridedBoundarySweepConverges) {
  // Census: one clean recovery with a disarmed injector counts boundaries.
  std::uint64_t total = 0;
  {
    BmtRun census = bmt_crashed_run();
    FaultInjector inj(FaultPlan::derive(FaultClass::kNone, 3, 0));
    census.mem->set_fault_injector(&inj);
    inj.begin_recovery_attempt();
    const RecoveryResult r = census.mem->recover();
    ASSERT_TRUE(r.status.ok());
    ASSERT_FALSE(r.attack_detected);
    total = inj.recovery_persists();
  }
  ASSERT_GT(total, 0u);

  BmtRun clean = bmt_crashed_run();
  ASSERT_TRUE(clean.mem->recover().status.ok());

  const std::uint64_t stride = std::max<std::uint64_t>(1, total / 6);
  for (std::uint64_t boundary = 1; boundary <= total; boundary += stride) {
    BmtRun trial = bmt_crashed_run();
    FaultInjector inj(FaultPlan::derive(FaultClass::kNone, 3, 0));
    inj.arm_recovery_crash(boundary);
    trial.mem->set_fault_injector(&inj);
    const RecoveryReport report = recover_with_retry(*trial.mem, &inj, RecoveryRetryPolicy{});
    trial.mem->set_fault_injector(nullptr);
    ASSERT_FALSE(report.recovery_gave_up) << "boundary " << boundary;
    ASSERT_TRUE(report.status.ok()) << report.status.message();
    ASSERT_GE(report.attempts.size(), 2u);
    EXPECT_TRUE(report.attempts.front().crashed);
    EXPECT_EQ(report.attempts.front().crash_boundary, boundary);

    // The rebuilt image must match the uncrashed rebuild bit-for-bit: the
    // data region and the whole metadata (counter + hash-tree) region.
    const SitGeometry& geo = clean.mem->geometry();
    const auto ra = clean.mem->device().resident_blocks(0, geo.aux_base());
    const auto rb = trial.mem->device().resident_blocks(0, geo.aux_base());
    ASSERT_EQ(ra, rb) << "boundary " << boundary;
    for (const Addr addr : ra) {
      ASSERT_EQ(clean.mem->device().peek_block(addr), trial.mem->device().peek_block(addr))
          << "boundary " << boundary << " addr " << addr;
      ASSERT_EQ(clean.mem->device().read_tag(addr), trial.mem->device().read_tag(addr))
          << "boundary " << boundary << " addr " << addr;
    }

    // And it must serve every committed version.
    Cycle now = 0;
    for (const auto& [addr, v] : trial.versions) {
      Block out;
      now = trial.mem->read_block(addr, now, &out);
      ASSERT_EQ(out, pattern_block(addr, v));
    }
  }
}

}  // namespace
}  // namespace steins

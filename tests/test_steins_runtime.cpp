// Steins-specific runtime invariants: counter generation, LInc bookkeeping,
// the NV parent buffer, and offset records (paper §III-B..§III-F).
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <set>

#include "schemes/steins.hpp"
#include "test_util.hpp"

namespace steins {
namespace {

using testutil::Driver;
using testutil::small_config;

std::unique_ptr<SteinsMemory> make_steins(CounterMode mode,
                                          std::size_t mcache_bytes = 16 * 1024) {
  return std::make_unique<SteinsMemory>(small_config(mode, mcache_bytes));
}

/// Ground-truth LInc for level k: sum over cached dirty level-k nodes of
/// (cached parent value - stale NVM parent value), computed directly from
/// the cache and the device (paper §III-D definition).
std::uint64_t expected_linc(SteinsMemory& mem, unsigned level) {
  std::uint64_t sum = 0;
  const SitGeometry& geo = mem.geometry();
  mem.metadata_cache().for_each([&](const MetadataLine& line) {
    if (!line.dirty || line.payload.id.level != level) return;
    const Addr addr = geo.node_addr(line.payload.id);
    std::uint64_t stale_pv = 0;
    if (mem.device().contains(addr)) {
      const SitNode stale =
          SitNode::from_block(line.payload.id, line.payload.split, mem.device().peek_block(addr));
      stale_pv = stale.parent_value();
    }
    sum += line.payload.parent_value() - stale_pv;
  });
  return sum;
}

class SteinsLIncInvariant : public ::testing::TestWithParam<CounterMode> {};

TEST_P(SteinsLIncInvariant, MatchesCacheMinusNvmAtAllLevels) {
  auto mem = make_steins(GetParam());
  Driver d(*mem);
  d.write_random(3000, 150'000);
  // LIncs are exact only once deferred parent updates are applied and the
  // write queue has landed (expected_linc peeks the device directly).
  Cycle t = d.now();
  mem->drain_nv_buffer(t);
  mem->channel().drain_all(t);
  for (unsigned k = 0; k < mem->geometry().num_levels(); ++k) {
    EXPECT_EQ(mem->lincs()[k], expected_linc(*mem, k)) << "level " << k;
  }
}

TEST_P(SteinsLIncInvariant, AllZeroAfterFullFlush) {
  auto mem = make_steins(GetParam());
  Driver d(*mem);
  d.write_random(1500, 100'000);
  mem->flush_all_metadata();
  for (unsigned k = 0; k < mem->geometry().num_levels(); ++k) {
    EXPECT_EQ(mem->lincs()[k], 0u) << "level " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, SteinsLIncInvariant,
                         ::testing::Values(CounterMode::kGeneral, CounterMode::kSplit),
                         [](const ::testing::TestParamInfo<CounterMode>& info) {
                           return info.param == CounterMode::kSplit ? "SC" : "GC";
                         });

TEST(SteinsCounterGeneration, PersistedParentSlotEqualsChildParentValue) {
  auto mem = make_steins(CounterMode::kGeneral);
  Driver d(*mem);
  d.write_random(2000, 120'000);
  mem->flush_all_metadata();
  const SitGeometry& geo = mem->geometry();
  // For every persisted child, the parent's slot must equal the Eq.-1 value
  // generated from the child's persistent image.
  NvmDevice& dev = mem->device();
  int checked = 0;
  for (std::uint64_t leaf = 0; leaf < geo.level_count(0) && checked < 500; ++leaf) {
    const NodeId id{0, leaf};
    const Addr addr = geo.node_addr(id);
    if (!dev.contains(addr)) continue;
    const SitNode child = SitNode::from_block(id, false, dev.peek_block(addr));
    const NodeId pid = geo.parent_of(id);
    const Addr paddr = geo.node_addr(pid);
    ASSERT_TRUE(dev.contains(paddr)) << "flushed child must have flushed parent after flush_all";
    const SitNode parent = SitNode::from_block(pid, false, dev.peek_block(paddr));
    EXPECT_EQ(parent.gc.counters[geo.slot_in_parent(id)], child.parent_value())
        << "leaf " << leaf;
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

TEST(SteinsNvBuffer, BoundedByConfiguredCapacity) {
  auto mem = make_steins(CounterMode::kGeneral, 8 * 1024);  // small: many evictions
  Driver d(*mem);
  const std::size_t capacity = mem->config().secure.nv_buffer_bytes / 16;
  for (int i = 0; i < 3000; ++i) {
    d.write(d.rng().below(100'000));
    ASSERT_LE(mem->nv_buffer_entries(), capacity);
  }
}

TEST(SteinsNvBuffer, DrainedBeforeReads) {
  auto mem = make_steins(CounterMode::kGeneral, 8 * 1024);
  Driver d(*mem);
  d.write_random(2000, 100'000);
  // A read drains the buffer (paper §III-E: parents fetched before the next
  // read operation).
  d.read_check(0);
  EXPECT_EQ(mem->nv_buffer_entries(), 0u);
}

TEST(SteinsRecords, CrashPersistsOffsetsOfAllDirtyNodes) {
  auto mem = make_steins(CounterMode::kGeneral);
  Driver d(*mem);
  d.write_random(2000, 120'000);
  Cycle t = d.now();
  mem->drain_nv_buffer(t);

  const auto dirty = testutil::dirty_snapshot(*mem);
  mem->crash();

  // Gather every offset stored in the record region after the ADR flush.
  const SitGeometry& geo = mem->geometry();
  std::set<std::uint32_t> recorded;
  const Addr base = geo.aux_base();
  const std::size_t lines =
      (mem->metadata_cache().num_lines() + 15) / 16;
  for (std::size_t i = 0; i < lines; ++i) {
    const Block b = mem->device().peek_block(base + i * kBlockSize);
    for (std::size_t s = 0; s < 16; ++s) {
      std::uint32_t off;
      std::memcpy(&off, b.data() + s * 4, 4);
      if (off != 0) recorded.insert(off - 1);
    }
  }
  for (const auto& [offset, node] : dirty) {
    EXPECT_TRUE(recorded.contains(static_cast<std::uint32_t>(offset)))
        << "dirty node at level " << node.id.level << " not tracked";
  }
}

TEST(SteinsRecords, RecordTrafficOnlyOnCleanToDirty) {
  auto mem = make_steins(CounterMode::kGeneral);
  Driver d(*mem);
  // Hammer one block: the leaf transitions clean->dirty once; subsequent
  // writes must not touch the record region at all.
  d.write(42);
  const std::uint64_t aux_after_first = mem->stats().aux_reads + mem->stats().aux_writes +
                                        mem->stats().aux_write_bytes;
  // Stay below the stop-loss period so no write-through dirties the parent.
  for (int i = 0; i < 40; ++i) d.write(42);
  EXPECT_EQ(mem->stats().aux_reads + mem->stats().aux_writes + mem->stats().aux_write_bytes,
            aux_after_first);
}

TEST(SteinsSplit, OverflowWriteThroughKeepsMajorCurrent) {
  auto mem = make_steins(CounterMode::kSplit);
  Driver d(*mem);
  // 70 writes to one block overflow its 6-bit minor at least once.
  for (int i = 0; i < 70; ++i) d.write(3);
  mem->channel().drain_all(d.now());  // settle queued write-through writes
  const SitGeometry& geo = mem->geometry();
  const NodeId leaf = geo.leaf_of_data(3);
  const auto cached = mem->current_node_state(leaf);
  ASSERT_TRUE(cached.has_value());
  ASSERT_TRUE(cached->split);
  EXPECT_GE(cached->sc.major, 1u);
  // The NVM image must carry the same major (write-through on overflow).
  ASSERT_TRUE(mem->device().contains(geo.node_addr(leaf)));
  const SitNode stale = SitNode::from_block(leaf, true, mem->device().peek_block(geo.node_addr(leaf)));
  EXPECT_EQ(stale.sc.major, cached->sc.major);
  EXPECT_TRUE(d.check_all());
}

TEST(SteinsStopLoss, LeafCounterWindowBounded) {
  auto mem = make_steins(CounterMode::kGeneral);
  Driver d(*mem);
  for (int i = 0; i < 500; ++i) d.write(9);
  mem->channel().drain_all(d.now());  // settle queued write-through writes
  const SitGeometry& geo = mem->geometry();
  const NodeId leaf = geo.leaf_of_data(9);
  const auto cached = mem->current_node_state(leaf);
  ASSERT_TRUE(cached.has_value());
  ASSERT_TRUE(mem->device().contains(geo.node_addr(leaf)));
  const SitNode stale =
      SitNode::from_block(leaf, false, mem->device().peek_block(geo.node_addr(leaf)));
  const std::size_t slot = geo.slot_of_data(9);
  EXPECT_LE(cached->gc.counters[slot] - stale.gc.counters[slot], SteinsMemory::kStopLoss);
}

}  // namespace
}  // namespace steins

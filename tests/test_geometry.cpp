// SIT geometry: the paper's tree heights (9 GC / 8 SC on 16 GB), region
// layout, parent/child maps, and offset round trips (paper Table I, §III-C).
#include <gtest/gtest.h>

#include "common/config.hpp"
#include "sit/geometry.hpp"

namespace steins {
namespace {

TEST(SitGeometry, PaperHeightsFor16GB) {
  const NvmConfig nvm;  // 16 GB default
  const SitGeometry gc(nvm, CounterMode::kGeneral);
  const SitGeometry sc(nvm, CounterMode::kSplit);
  EXPECT_EQ(gc.height(), 9u);  // Table I: 9 levels including the root
  EXPECT_EQ(sc.height(), 8u);  // split leaves remove one level
}

TEST(SitGeometry, LevelCountsShrinkByArity) {
  const NvmConfig nvm;
  const SitGeometry geo(nvm, CounterMode::kGeneral);
  EXPECT_EQ(geo.data_blocks(), (16ULL << 30) / 64);
  EXPECT_EQ(geo.level_count(0), geo.data_blocks() / kGeneralArity);
  for (unsigned k = 1; k < geo.num_levels(); ++k) {
    EXPECT_EQ(geo.level_count(k), (geo.level_count(k - 1) + 7) / 8) << "level " << k;
  }
  EXPECT_LE(geo.root_children(), kRootArity);
}

TEST(SitGeometry, LeafStorageMatchesPaper) {
  const NvmConfig nvm;
  const SitGeometry gc(nvm, CounterMode::kGeneral);
  const SitGeometry sc(nvm, CounterMode::kSplit);
  // §IV-E: GC leaves are 1/8 of 16 GB = 2 GB; SC leaves 1/64 = 256 MB.
  EXPECT_EQ(gc.leaf_storage_bytes(), 2ULL << 30);
  EXPECT_EQ(sc.leaf_storage_bytes(), 256ULL << 20);
}

TEST(SitGeometry, NodeAddrRoundTrip) {
  const NvmConfig nvm;
  const SitGeometry geo(nvm, CounterMode::kGeneral);
  for (unsigned level = 0; level < geo.num_levels(); ++level) {
    for (const std::uint64_t index :
         {std::uint64_t{0}, std::uint64_t{1}, geo.level_count(level) - 1}) {
      const NodeId id{level, index};
      const Addr addr = geo.node_addr(id);
      EXPECT_TRUE(geo.is_metadata_addr(addr));
      EXPECT_EQ(geo.node_at(addr), id);
    }
  }
}

TEST(SitGeometry, OffsetRoundTripAndFitsFourBytes) {
  const NvmConfig nvm;
  const SitGeometry geo(nvm, CounterMode::kSplit);
  for (unsigned level = 0; level < geo.num_levels(); ++level) {
    const NodeId id{level, geo.level_count(level) / 2};
    const std::uint32_t off = geo.offset_of(id);
    EXPECT_EQ(geo.node_at_offset(off), id);
  }
}

TEST(SitGeometry, ParentChildConsistency) {
  const NvmConfig nvm;
  const SitGeometry geo(nvm, CounterMode::kGeneral);
  const NodeId child{2, 1234567};
  const NodeId parent = geo.parent_of(child);
  EXPECT_EQ(parent.level, 3u);
  EXPECT_EQ(parent.index, child.index / 8);
  EXPECT_EQ(geo.child_of(parent, geo.slot_in_parent(child)), child);
}

TEST(SitGeometry, LeafOfDataCoverage) {
  const NvmConfig nvm;
  const SitGeometry gc(nvm, CounterMode::kGeneral);
  const SitGeometry sc(nvm, CounterMode::kSplit);
  EXPECT_EQ(gc.leaf_of_data(17).index, 17u / 8);
  EXPECT_EQ(gc.slot_of_data(17), 17u % 8);
  EXPECT_EQ(sc.leaf_of_data(130).index, 130u / 64);
  EXPECT_EQ(sc.slot_of_data(130), 130u % 64);
}

TEST(SitGeometry, AuxRegionAboveMetadata) {
  const NvmConfig nvm;
  const SitGeometry geo(nvm, CounterMode::kGeneral);
  EXPECT_EQ(geo.meta_base(), nvm.capacity_bytes);
  EXPECT_EQ(geo.aux_base(), geo.meta_base() + geo.total_nodes() * kBlockSize);
}

// Parameterized sweep: geometry invariants hold across capacities.
class GeometrySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeometrySweep, InvariantsAcrossCapacities) {
  NvmConfig nvm;
  nvm.capacity_bytes = GetParam();
  for (const auto mode : {CounterMode::kGeneral, CounterMode::kSplit}) {
    const SitGeometry geo(nvm, mode);
    EXPECT_GE(geo.num_levels(), 1u);
    EXPECT_LE(geo.root_children(), kRootArity);
    // Every node's parent exists and its children map back.
    std::uint64_t total = 0;
    for (unsigned k = 0; k < geo.num_levels(); ++k) total += geo.level_count(k);
    EXPECT_EQ(total, geo.total_nodes());
    // Partial last nodes: num_children never exceeds the child level size.
    for (unsigned k = 1; k < geo.num_levels(); ++k) {
      const NodeId last{k, geo.level_count(k) - 1};
      EXPECT_GE(geo.num_children(last), 1u);
      EXPECT_LE(geo.num_children(last), kTreeArity);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, GeometrySweep,
                         ::testing::Values(1ULL << 20, 16ULL << 20, 256ULL << 20, 1ULL << 30,
                                           16ULL << 30, 64ULL << 30));

}  // namespace
}  // namespace steins

// Shared helpers for the Steins test suite.
#pragma once

#include <cstring>
#include <map>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "secure/secure_memory.hpp"

namespace steins::testutil {

/// A small configuration that keeps tests fast while still exercising
/// evictions: 64 MB NVM, 16 KB metadata cache, fast crypto.
inline SystemConfig small_config(CounterMode mode = CounterMode::kGeneral,
                                 std::size_t mcache_bytes = 16 * 1024) {
  SystemConfig cfg = default_config();
  cfg.nvm.capacity_bytes = 64ULL << 20;
  cfg.secure.metadata_cache.size_bytes = mcache_bytes;
  cfg.counter_mode = mode;
  cfg.crypto = CryptoProfile::kFast;
  return cfg;
}

/// Deterministic plaintext block for (address, version).
inline Block pattern_block(Addr addr, std::uint64_t version) {
  Block b{};
  std::memcpy(b.data(), &addr, 8);
  std::memcpy(b.data() + 8, &version, 8);
  const std::uint64_t mix = addr * 0x9e3779b97f4a7c15ULL + version;
  std::memcpy(b.data() + 16, &mix, 8);
  return b;
}

/// Drives a SecureMemory with deterministic writes and tracks ground truth.
class Driver {
 public:
  explicit Driver(SecureMemory& mem, std::uint64_t seed = 1) : mem_(mem), rng_(seed) {}

  /// Write a fresh version of the block at `block_index`.
  void write(std::uint64_t block_index) {
    const Addr addr = block_index * kBlockSize;
    const std::uint64_t version = ++versions_[addr];
    now_ = mem_.write_block(addr, pattern_block(addr, version), now_);
  }

  /// Write `count` blocks uniformly below `footprint_blocks`.
  void write_random(std::uint64_t count, std::uint64_t footprint_blocks) {
    for (std::uint64_t i = 0; i < count; ++i) write(rng_.below(footprint_blocks));
  }

  /// Read and check one block against ground truth. Returns false on a
  /// plaintext mismatch (integrity violations throw from the scheme).
  bool read_check(std::uint64_t block_index) {
    const Addr addr = block_index * kBlockSize;
    Block out;
    now_ = mem_.read_block(addr, now_, &out);
    const auto it = versions_.find(addr);
    const Block expect =
        (it != versions_.end()) ? pattern_block(addr, it->second) : zero_block();
    return out == expect;
  }

  /// Verify every block ever written reads back correctly.
  bool check_all() {
    for (const auto& [addr, version] : versions_) {
      (void)version;
      if (!read_check(addr / kBlockSize)) return false;
    }
    return true;
  }

  const std::map<Addr, std::uint64_t>& versions() const { return versions_; }
  Cycle now() const { return now_; }
  Xoshiro256& rng() { return rng_; }

 private:
  SecureMemory& mem_;
  Xoshiro256 rng_;
  std::map<Addr, std::uint64_t> versions_;
  Cycle now_ = 0;
};

/// Snapshot of every dirty node in the metadata cache (id -> node state).
inline std::map<std::uint64_t, SitNode> dirty_snapshot(SecureMemoryBase& mem) {
  std::map<std::uint64_t, SitNode> snap;
  mem.metadata_cache().for_each([&](const MetadataLine& line) {
    if (line.dirty) {
      snap.emplace(mem.geometry().offset_of(line.payload.id), line.payload);
    }
  });
  return snap;
}

}  // namespace steins::testutil

// Paper §III-H: "Steins detects the attacked node levels via top-down
// verification, thus facilitating attack localization." These tests tamper
// at chosen levels and assert the reported level.
#include <gtest/gtest.h>

#include <vector>

#include "schemes/attack.hpp"
#include "schemes/steins.hpp"
#include "test_util.hpp"

namespace steins {
namespace {

using testutil::Driver;
using testutil::small_config;

/// All dirty nodes of one level whose address exists in NVM.
std::vector<NodeId> persisted_dirty_at_level(SteinsMemory& mem, unsigned level) {
  std::vector<NodeId> out;
  const SitGeometry& geo = mem.geometry();
  mem.metadata_cache().for_each([&](const MetadataLine& line) {
    if (line.dirty && line.payload.id.level == level &&
        mem.device().contains(geo.node_addr(line.payload.id))) {
      out.push_back(line.payload.id);
    }
  });
  return out;
}

class AttackLocalization : public ::testing::TestWithParam<unsigned> {};

TEST_P(AttackLocalization, TamperedStaleNodeReportedAtItsLevel) {
  const unsigned level = GetParam();
  SteinsMemory mem(small_config(CounterMode::kGeneral));
  Driver d(mem, 31 + level);
  d.write_random(4000, 150'000);
  Cycle t = d.now();
  mem.drain_nv_buffer(t);

  const auto candidates = persisted_dirty_at_level(mem, level);
  if (candidates.empty()) GTEST_SKIP() << "no persisted dirty node at level " << level;

  mem.crash();
  AttackInjector attacker(mem);
  attacker.tamper_node(candidates.front(), 20);
  const RecoveryResult r = mem.recover();
  ASSERT_TRUE(r.attack_detected);
  // The tampered node fails either its own stale verification (reported at
  // its level) or its parent's child-HMAC check (also its level).
  EXPECT_EQ(r.attacked_level, static_cast<int>(level)) << r.attack_detail;
}

INSTANTIATE_TEST_SUITE_P(Levels, AttackLocalization, ::testing::Values(0u, 1u, 2u),
                         [](const ::testing::TestParamInfo<unsigned>& info) {
                           return "Level" + std::to_string(info.param);
                         });

TEST(AttackLocalization, TamperedDataReportedAtLeafLevel) {
  SteinsMemory mem(small_config(CounterMode::kGeneral));
  Driver d(mem);
  d.write(1234);
  d.write(1234);  // leaf dirty at crash
  mem.crash();
  AttackInjector attacker(mem);
  attacker.tamper_block(1234 * kBlockSize, 9);
  const RecoveryResult r = mem.recover();
  ASSERT_TRUE(r.attack_detected);
  EXPECT_EQ(r.attacked_level, 0) << r.attack_detail;
}

}  // namespace
}  // namespace steins

// Whole-matrix adversarial campaign tests (campaign tier): every scenario
// against every scheme with the acceptance contract from DESIGN.md §16 —
// zero silent corruption, every cell's mutation actually lands, results
// bit-identical for any --jobs, and single-trial reproduction exact. Plus
// the scheme x scenario sweep through the KV and LSM crash harnesses.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "fault/adversary.hpp"
#include "fault/endurance.hpp"
#include "kv/kv_crash.hpp"
#include "kv/lsm/lsm_crash.hpp"
#include "test_util.hpp"

namespace steins {
namespace {

using testutil::small_config;

/// 14 trials = each of the 7 scenarios drawn twice per scheme; the reduced
/// workload keeps the matrix a few seconds while the checkpoint flush still
/// persists enough metadata for every rollback to land.
AttackCampaignOptions small_attack() {
  AttackCampaignOptions opts;
  opts.trials = 14;
  opts.seed = 42;
  opts.workload.ops = 192;
  opts.workload.footprint_blocks = 1024;
  opts.workload.capacity_mb = 8;
  return opts;
}

TEST(AttackCampaign, MatrixHasNoSilentCorruptionAndEveryCellInjects) {
  const AttackCampaignResult result = run_attack_campaign(small_attack());
  EXPECT_EQ(result.silent_total(), 0u);
  for (const SchemeSpec& spec : result.options.schemes) {
    for (const AdversaryScenario s : result.options.scenarios) {
      const AttackCell c = result.cell(spec.label, s);
      ASSERT_EQ(c.total(), 2u) << spec.label;
      EXPECT_EQ(c.silent, 0u)
          << spec.label << " / " << adversary_scenario_name(s);
      EXPECT_GE(c.injected, 1u) << spec.label << " / "
                                << adversary_scenario_name(s)
                                << ": the scenario never landed a mutation";
    }
  }
  // Write-back must fail the recoverability contract explicitly, not
  // silently: every adversarial outcome detected via the "unsupported"
  // layer. (wear-out is hardware aging — ECC/scrub may legitimately catch a
  // casualty at runtime before recovery gets to declare itself.)
  for (const AdversaryScenario s : result.options.scenarios) {
    const AttackCell c = result.cell("WB-GC", s);
    EXPECT_EQ(c.detected, c.total()) << adversary_scenario_name(s);
    if (s == AdversaryScenario::kWearOut) continue;
    const auto it = c.layers.find("unsupported");
    ASSERT_NE(it, c.layers.end()) << adversary_scenario_name(s);
    EXPECT_EQ(it->second, c.total());
  }
  // The JSON record carries the per-cell telemetry the CI gate consumes.
  const std::string json = result.to_json();
  EXPECT_NE(json.find("\"silent_corruption\""), std::string::npos);
  EXPECT_NE(json.find("\"detect_latency\""), std::string::npos);
  EXPECT_NE(json.find("\"blast_lines\""), std::string::npos);
  EXPECT_NE(json.find("\"subtree-rollback\""), std::string::npos);
}

TEST(AttackCampaign, ResultsAreBitIdenticalAcrossJobCounts) {
  AttackCampaignOptions opts = small_attack();
  opts.trials = 10;
  opts.jobs = 1;
  const AttackCampaignResult seq = run_attack_campaign(opts);
  opts.jobs = 4;
  const AttackCampaignResult par = run_attack_campaign(opts);
  ASSERT_EQ(seq.outcomes.size(), par.outcomes.size());
  for (std::size_t i = 0; i < seq.outcomes.size(); ++i) {
    const TrialOutcome& a = seq.outcomes[i].trial;
    const TrialOutcome& b = par.outcomes[i].trial;
    EXPECT_EQ(seq.outcomes[i].scenario, par.outcomes[i].scenario) << "slot " << i;
    EXPECT_EQ(a.verdict, b.verdict) << "slot " << i;
    EXPECT_EQ(a.detail, b.detail) << "slot " << i;
    EXPECT_EQ(a.events, b.events) << "slot " << i;
    EXPECT_EQ(a.faults_injected, b.faults_injected) << "slot " << i;
    EXPECT_EQ(a.detect_layer, b.detect_layer) << "slot " << i;
    EXPECT_EQ(a.detect_latency, b.detect_latency) << "slot " << i;
    EXPECT_EQ(a.blast_lines, b.blast_lines) << "slot " << i;
    EXPECT_EQ(a.blast_subtrees, b.blast_subtrees) << "slot " << i;
    EXPECT_EQ(a.blast_blocks, b.blast_blocks) << "slot " << i;
  }
}

TEST(AttackCampaign, OnlyTrialReproducesTheFullRunSlot) {
  AttackCampaignOptions opts = small_attack();
  opts.trials = 9;
  const AttackCampaignResult full = run_attack_campaign(opts);
  opts.only_trial = 5;
  const AttackCampaignResult one = run_attack_campaign(opts);
  const std::size_t schemes = full.options.schemes.size();
  ASSERT_EQ(one.outcomes.size(), schemes);
  for (std::size_t s = 0; s < schemes; ++s) {
    const TrialOutcome& a = full.outcomes[5 * schemes + s].trial;
    const TrialOutcome& b = one.outcomes[s].trial;
    EXPECT_EQ(a.verdict, b.verdict) << full.options.schemes[s].label;
    EXPECT_EQ(a.detail, b.detail) << full.options.schemes[s].label;
    EXPECT_EQ(a.events, b.events) << full.options.schemes[s].label;
    EXPECT_EQ(a.detect_layer, b.detect_layer) << full.options.schemes[s].label;
    EXPECT_EQ(a.detect_latency, b.detect_latency) << full.options.schemes[s].label;
  }
}

// Every recoverable scheme, attacked through the KV crash harness: the
// post-crash mutation must never let recovery + reopen serve uncommitted
// or stale values (pass() = exact recovery, verified salvage, or
// detection).
class KvAdversaryScheme
    : public ::testing::TestWithParam<std::tuple<Scheme, AdversaryScenario>> {};

TEST_P(KvAdversaryScheme, CrashWithAdversaryStillPasses) {
  const auto [scheme, scenario] = GetParam();
  kv::KvCrashOptions opt;
  opt.ops = 24;
  opt.adversary = scenario;
  for (std::uint64_t seed = 1; seed <= 2; ++seed) {
    opt.seed = seed;
    opt.adversary_seed = seed * 7919;
    const kv::KvCrashReport r = kv::run_kv_crash_validation(small_config(), scheme, opt);
    EXPECT_TRUE(r.faulted);
    EXPECT_TRUE(r.pass(scheme)) << "seed " << seed << ": " << r.detail;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, KvAdversaryScheme,
    ::testing::Combine(::testing::Values(Scheme::kAnubis, Scheme::kStar,
                                         Scheme::kScue, Scheme::kSteins),
                       ::testing::Values(AdversaryScenario::kNodeRollback,
                                         AdversaryScenario::kSubtreeRollback,
                                         AdversaryScenario::kRecordForgery,
                                         AdversaryScenario::kTornRecord)));

TEST(LsmAdversary, CrashWithRollbackStillPasses) {
  SystemConfig cfg = small_config();
  cfg.nvm.capacity_bytes = 16ULL << 20;
  for (const AdversaryScenario s : {AdversaryScenario::kSubtreeRollback,
                                    AdversaryScenario::kNodeRollback,
                                    AdversaryScenario::kTornRecord}) {
    lsm::LsmCrashOptions opt;
    opt.ops = 96;
    opt.seed = 3;
    opt.adversary = s;
    opt.adversary_seed = 0x5eed;
    const lsm::LsmCrashReport r = lsm::run_lsm_crash_validation(cfg, Scheme::kSteins, opt);
    EXPECT_TRUE(r.faulted) << adversary_scenario_name(s);
    EXPECT_TRUE(r.pass(Scheme::kSteins))
        << adversary_scenario_name(s) << ": " << r.detail;
  }
}

// The full accelerated-wear campaign: run-to-failure retirement flows
// through scrub + quarantine while every readable block stays authentic,
// and both milestone projections come out multi-year at PCM endurance.
TEST(EnduranceCampaign, WearMilestonesProjectWithIntegrityIntact) {
  EnduranceOptions opts;
  opts.accel_endurance_mean = 48;
  opts.accel_endurance_sigma = 6;
  opts.remap_pool_lines = 8;
  opts.footprint_blocks = 32;
  opts.max_writes = 60'000;
  opts.audit_every = 2048;
  const EnduranceReport rep = run_endurance_campaign(opts);
  EXPECT_EQ(rep.audit_mismatches, 0u);
  EXPECT_TRUE(rep.recovery_clean);
  EXPECT_GT(rep.lines_wear_leveled, 0u);
  EXPECT_GT(rep.writes_to_first_leveling, 0u);
  EXPECT_GT(rep.writes_to_first_wearout, 0u);
  EXPECT_GT(rep.writes_to_pool_exhaustion, 0u);
  EXPECT_GT(rep.projected_years_first_wearout, 1.0);
}

}  // namespace
}  // namespace steins

// L1/L2/L3 hierarchy: hit levels, writebacks, flush (clwb) semantics.
#include <gtest/gtest.h>

#include "cache/cache_hierarchy.hpp"
#include "common/config.hpp"

namespace steins {
namespace {

SystemConfig tiny_config() {
  SystemConfig cfg = default_config();
  cfg.l1 = {1024, 2, 64};    // 8 sets
  cfg.l2 = {4096, 2, 64};    // 32 sets
  cfg.l3 = {16384, 2, 64};   // 128 sets
  return cfg;
}

TEST(CacheHierarchy, FirstAccessMissesToMemory) {
  CacheHierarchy h(tiny_config());
  const MemoryOps ops = h.access(0x10000, false);
  EXPECT_EQ(ops.hit_level, 4);
  EXPECT_TRUE(ops.miss_fill);
  EXPECT_EQ(ops.fill_addr, 0x10000u);
}

TEST(CacheHierarchy, SecondAccessHitsL1) {
  CacheHierarchy h(tiny_config());
  h.access(0x10000, false);
  const MemoryOps ops = h.access(0x10000, false);
  EXPECT_EQ(ops.hit_level, 1);
  EXPECT_FALSE(ops.miss_fill);
}

TEST(CacheHierarchy, DirtyEvictionsReachMemoryEventually) {
  CacheHierarchy h(tiny_config());
  // Write far more distinct blocks than the whole hierarchy holds.
  std::uint64_t writebacks = 0;
  for (Addr a = 0; a < 4096 * 64; a += 64) {
    const MemoryOps ops = h.access(a, true);
    writebacks += ops.writebacks.size();
  }
  EXPECT_GT(writebacks, 0u);
}

TEST(CacheHierarchy, CleanEvictionsProduceNoWritebacks) {
  CacheHierarchy h(tiny_config());
  std::uint64_t writebacks = 0;
  for (Addr a = 0; a < 4096 * 64; a += 64) {
    writebacks += h.access(a, false).writebacks.size();
  }
  EXPECT_EQ(writebacks, 0u);
}

TEST(CacheHierarchy, FlushBlockWritesBackDirtyLine) {
  CacheHierarchy h(tiny_config());
  h.access(0x400, true);
  const auto wbs = h.flush_block(0x400);
  ASSERT_EQ(wbs.size(), 1u);
  EXPECT_EQ(wbs[0], 0x400u);
  // A second flush is a no-op (line gone).
  EXPECT_TRUE(h.flush_block(0x400).empty());
  // And the next access misses all the way to memory.
  EXPECT_EQ(h.access(0x400, false).hit_level, 4);
}

TEST(CacheHierarchy, FlushCleanBlockIsNoWriteback) {
  CacheHierarchy h(tiny_config());
  h.access(0x800, false);
  EXPECT_TRUE(h.flush_block(0x800).empty());
}

TEST(CacheHierarchy, L1VictimFallsIntoL2) {
  CacheHierarchy h(tiny_config());
  // Two blocks in the same L1 set (8 sets * 64 B = bit 9 aliases).
  h.access(0x0000, true);
  h.access(0x0200, true);
  h.access(0x0400, true);  // evicts one of the first two into L2
  // All three still hit within the hierarchy (no memory fill).
  EXPECT_LE(h.access(0x0000, false).hit_level, 3);
  EXPECT_LE(h.access(0x0200, false).hit_level, 3);
  EXPECT_LE(h.access(0x0400, false).hit_level, 3);
}

TEST(CacheHierarchy, ClearDropsEverything) {
  CacheHierarchy h(tiny_config());
  h.access(0x1000, true);
  h.clear();
  EXPECT_EQ(h.access(0x1000, false).hit_level, 4);
}

}  // namespace
}  // namespace steins

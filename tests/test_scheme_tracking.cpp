// Scheme-specific tracking structures: ASIT's shadow-table write
// amplification, STAR's bitmap-vs-dirty-set equivalence, Steins' pending
// parent counters.
#include <gtest/gtest.h>

#include <set>

#include "schemes/anubis.hpp"
#include "schemes/star.hpp"
#include "schemes/steins.hpp"
#include "test_util.hpp"

namespace steins {
namespace {

using testutil::Driver;
using testutil::dirty_snapshot;
using testutil::small_config;

TEST(AnubisTracking, ShadowWritesDoubleTheTraffic) {
  // Every modification of a cached node persists a shadow entry, so the
  // shadow traffic is at least one write per data write (paper §II-D:
  // "incurring 2x memory writes").
  AnubisMemory mem(small_config(CounterMode::kGeneral, 256 * 1024));
  Driver d(mem);
  const int writes = 2000;
  for (int i = 0; i < writes; ++i) d.write(d.rng().below(20'000));
  EXPECT_GE(mem.stats().aux_writes, static_cast<std::uint64_t>(writes));
}

TEST(AnubisTracking, CacheTreeDepthMatchesCacheSize) {
  // 256 KB cache = 4096 lines -> 4096, 512, 64, 8, 1 = 5 levels (the
  // "4-level cache-tree" above the leaf MACs).
  AnubisMemory mem(small_config(CounterMode::kGeneral, 256 * 1024));
  EXPECT_EQ(mem.cache_tree_depth(), 5u);
}

TEST(StarTracking, BitmapEqualsDirtySetAtCrash) {
  StarMemory mem(small_config(CounterMode::kGeneral));
  Driver d(mem);
  d.write_random(2500, 120'000);
  const auto dirty = dirty_snapshot(mem);
  mem.crash();

  const SitGeometry& geo = mem.geometry();
  std::set<std::uint64_t> marked;
  const Addr base = geo.aux_base();
  const std::uint64_t lines = (geo.total_nodes() + 511) / 512;
  for (std::uint64_t l = 0; l < lines; ++l) {
    const Block b = mem.device().peek_block(base + l * kBlockSize);
    for (std::size_t byte = 0; byte < kBlockSize; ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        if (b[byte] & (1u << bit)) marked.insert(l * 512 + byte * 8 + bit);
      }
    }
  }
  for (const auto& [off, node] : dirty) {
    EXPECT_TRUE(marked.contains(off))
        << "dirty L" << node.id.level << " i" << node.id.index << " unmarked";
  }
  for (const auto off : marked) {
    EXPECT_TRUE(dirty.contains(off)) << "stale mark at offset " << off;
  }
}

TEST(StarTracking, BitmapUpdatesOnBothTransitions) {
  // STAR pays for dirty->clean transitions too (paper §II-D); Steins does
  // not. Compare aux traffic on an eviction-heavy stream.
  StarMemory star(small_config(CounterMode::kGeneral, 8 * 1024));
  SteinsMemory steins_mem(small_config(CounterMode::kGeneral, 8 * 1024));
  Driver ds(star), dt(steins_mem);
  ds.write_random(3000, 150'000);
  dt.write_random(3000, 150'000);
  const auto star_aux = star.stats().aux_reads + star.stats().aux_writes;
  const auto steins_aux = steins_mem.stats().aux_reads + steins_mem.stats().aux_writes +
                          steins_mem.stats().aux_write_bytes / kBlockSize;
  EXPECT_GT(star_aux, steins_aux);
}

TEST(SteinsTracking, PendingParentCounterVisibleUntilDrained) {
  SteinsMemory mem(small_config(CounterMode::kGeneral, 8 * 1024));
  Driver d(mem);
  // Churn until the NV buffer holds something.
  int i = 0;
  while (mem.nv_buffer_entries() == 0 && i < 20000) {
    d.write(d.rng().below(200'000));
    ++i;
  }
  ASSERT_GT(mem.nv_buffer_entries(), 0u) << "workload never parked a parent counter";
  Cycle t = d.now();
  mem.drain_nv_buffer(t);
  EXPECT_EQ(mem.nv_buffer_entries(), 0u);
  // Everything still verifies after the drain.
  EXPECT_TRUE(d.check_all());
}

TEST(SteinsTracking, RecordBytesStayTiny) {
  // The paper's headline: record maintenance is nearly free. Partial-write
  // bytes must stay well below 1% of data traffic on a hot workload.
  SteinsMemory mem(small_config(CounterMode::kGeneral, 256 * 1024));
  Driver d(mem);
  for (int i = 0; i < 5000; ++i) d.write(d.rng().below(20'000));
  const double record_blocks =
      static_cast<double>(mem.stats().aux_write_bytes) / kBlockSize;
  EXPECT_LT(record_blocks, 0.05 * static_cast<double>(mem.stats().data_writes));
}

}  // namespace
}  // namespace steins

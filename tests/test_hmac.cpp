// HMAC-SHA256 known-answer tests (RFC 4231) and the 64-bit truncation.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "crypto/hmac.hpp"

namespace steins::crypto {
namespace {

std::string hex(const HmacSha256::Tag& t) {
  char buf[65];
  for (int i = 0; i < 32; ++i) std::snprintf(buf + i * 2, 3, "%02x", t[i]);
  return std::string(buf, 64);
}

std::span<const std::uint8_t> bytes(const std::string& s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

TEST(HmacSha256, Rfc4231Case1) {
  const std::string key(20, '\x0b');
  HmacSha256 mac(bytes(key));
  EXPECT_EQ(hex(mac.tag(bytes("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
  HmacSha256 mac(bytes("Jefe"));
  EXPECT_EQ(hex(mac.tag(bytes("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, Rfc4231Case3) {
  const std::string key(20, '\xaa');
  const std::string msg(50, '\xdd');
  HmacSha256 mac(bytes(key));
  EXPECT_EQ(hex(mac.tag(bytes(msg))),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacSha256, Rfc4231Case4CombinedKey) {
  std::string key;
  for (int i = 1; i <= 25; ++i) key.push_back(static_cast<char>(i));
  const std::string msg(50, '\xcd');
  HmacSha256 mac(bytes(key));
  EXPECT_EQ(hex(mac.tag(bytes(msg))),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b");
}

TEST(HmacSha256, Rfc4231Case5Truncated) {
  // RFC 4231 publishes only the leading 128 bits of this tag.
  const std::string key(20, '\x0c');
  HmacSha256 mac(bytes(key));
  const std::string full = hex(mac.tag(bytes("Test With Truncation")));
  EXPECT_EQ(full.substr(0, 32), "a3b6167473100ee06e0c796c2955552b");
}

TEST(HmacSha256, Rfc4231Case6LongKey) {
  const std::string key(131, '\xaa');  // key longer than the block size
  HmacSha256 mac(bytes(key));
  EXPECT_EQ(hex(mac.tag(bytes("Test Using Larger Than Block-Size Key - Hash Key First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacSha256, Tag64IsTagPrefix) {
  HmacSha256 mac(bytes("key"));
  const auto full = mac.tag(bytes("message"));
  std::uint64_t prefix = 0;
  for (int i = 0; i < 8; ++i) prefix = (prefix << 8) | full[i];
  EXPECT_EQ(mac.tag64(bytes("message")), prefix);
}

TEST(HmacSha256, DifferentKeysDifferentTags) {
  HmacSha256 a(bytes("key-a"));
  HmacSha256 b(bytes("key-b"));
  EXPECT_NE(a.tag64(bytes("payload")), b.tag64(bytes("payload")));
}

TEST(HmacSha256, DifferentMessagesDifferentTags) {
  HmacSha256 mac(bytes("key"));
  EXPECT_NE(mac.tag64(bytes("payload-1")), mac.tag64(bytes("payload-2")));
}

}  // namespace
}  // namespace steins::crypto

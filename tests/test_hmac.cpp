// HMAC-SHA256 known-answer tests (RFC 4231), the 64-bit truncation, and
// per-backend cross-checks of the midstate-cached construction. The hw
// SHA-NI tests skip cleanly when CPUID does not report the SHA extensions.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "crypto/backend.hpp"
#include "crypto/hmac.hpp"

namespace steins::crypto {
namespace {

std::string hex(const HmacSha256::Tag& t) {
  char buf[65];
  for (int i = 0; i < 32; ++i) std::snprintf(buf + i * 2, 3, "%02x", t[i]);
  return std::string(buf, 64);
}

std::span<const std::uint8_t> bytes(const std::string& s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

TEST(HmacSha256, Rfc4231Case1) {
  const std::string key(20, '\x0b');
  HmacSha256 mac(bytes(key));
  EXPECT_EQ(hex(mac.tag(bytes("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
  HmacSha256 mac(bytes("Jefe"));
  EXPECT_EQ(hex(mac.tag(bytes("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, Rfc4231Case3) {
  const std::string key(20, '\xaa');
  const std::string msg(50, '\xdd');
  HmacSha256 mac(bytes(key));
  EXPECT_EQ(hex(mac.tag(bytes(msg))),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacSha256, Rfc4231Case4CombinedKey) {
  std::string key;
  for (int i = 1; i <= 25; ++i) key.push_back(static_cast<char>(i));
  const std::string msg(50, '\xcd');
  HmacSha256 mac(bytes(key));
  EXPECT_EQ(hex(mac.tag(bytes(msg))),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b");
}

TEST(HmacSha256, Rfc4231Case5Truncated) {
  // RFC 4231 publishes only the leading 128 bits of this tag.
  const std::string key(20, '\x0c');
  HmacSha256 mac(bytes(key));
  const std::string full = hex(mac.tag(bytes("Test With Truncation")));
  EXPECT_EQ(full.substr(0, 32), "a3b6167473100ee06e0c796c2955552b");
}

TEST(HmacSha256, Rfc4231Case6LongKey) {
  const std::string key(131, '\xaa');  // key longer than the block size
  HmacSha256 mac(bytes(key));
  EXPECT_EQ(hex(mac.tag(bytes("Test Using Larger Than Block-Size Key - Hash Key First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacSha256, Tag64IsTagPrefix) {
  HmacSha256 mac(bytes("key"));
  const auto full = mac.tag(bytes("message"));
  std::uint64_t prefix = 0;
  for (int i = 0; i < 8; ++i) prefix = (prefix << 8) | full[i];
  EXPECT_EQ(mac.tag64(bytes("message")), prefix);
}

TEST(HmacSha256, DifferentKeysDifferentTags) {
  HmacSha256 a(bytes("key-a"));
  HmacSha256 b(bytes("key-b"));
  EXPECT_NE(a.tag64(bytes("payload")), b.tag64(bytes("payload")));
}

TEST(HmacSha256, DifferentMessagesDifferentTags) {
  HmacSha256 mac(bytes("key"));
  EXPECT_NE(mac.tag64(bytes("payload-1")), mac.tag64(bytes("payload-2")));
}

TEST(HmacSha256, Rfc4231VectorsEveryBackend) {
  // RFC 4231 cases 1, 2 and 6 (short key, short key, >block-size key)
  // pinned to each backend: exercises both the SHA-NI compress and the
  // midstate resume path with a hashed key.
  struct Case {
    std::string key;
    std::string msg;
    std::string expect;
  };
  const Case cases[] = {
      {std::string(20, '\x0b'), "Hi There",
       "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"},
      {"Jefe", "what do ya want for nothing?",
       "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"},
      {std::string(131, '\xaa'), "Test Using Larger Than Block-Size Key - Hash Key First",
       "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"},
  };
  for (CryptoBackend b : {CryptoBackend::kRef, CryptoBackend::kTtable, CryptoBackend::kHw}) {
    for (const Case& c : cases) {
      HmacSha256 mac(bytes(c.key), b);
      EXPECT_EQ(hex(mac.tag(bytes(c.msg))), c.expect) << backend_name(b);
    }
  }
}

TEST(HmacSha256, ShaNiActiveOrSkipped) {
  if (!sha_hw_available()) {
    GTEST_SKIP() << "SHA-NI not available; hw backend uses the scalar compress";
  }
  // With SHA-NI present the pinned-hw digest comes from the hardware
  // compress; the vector test above already proved it correct.
  SUCCEED();
}

TEST(HmacSha256, AllBackendsAgreeOnRandomizedMessages) {
  // Seeded differential check over random keys and message lengths that
  // straddle the block boundaries (the midstate padding edge cases).
  Xoshiro256 rng(0x463839ULL);
  std::vector<CryptoBackend> backends{CryptoBackend::kRef, CryptoBackend::kTtable};
  if (sha_hw_available()) backends.push_back(CryptoBackend::kHw);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<std::uint8_t> key(1 + rng.next() % 100);
    for (auto& b : key) b = static_cast<std::uint8_t>(rng.next());
    std::vector<std::uint8_t> msg(rng.next() % 200);
    for (auto& b : msg) b = static_cast<std::uint8_t>(rng.next());

    HmacSha256 baseline(key, CryptoBackend::kRef);
    const auto expect = baseline.tag(msg);
    for (CryptoBackend b : backends) {
      HmacSha256 mac(key, b);
      ASSERT_EQ(mac.tag(msg), expect)
          << backend_name(b) << " trial " << trial << " keylen " << key.size() << " msglen "
          << msg.size();
      ASSERT_EQ(mac.tag64(msg), baseline.tag64(msg)) << backend_name(b) << " trial " << trial;
    }
  }
}

}  // namespace
}  // namespace steins::crypto

// Crypto backend registry (parse/select/override), the startup self-check,
// versioned OTP pad domains (v1 lane aliasing vs. the v2 layout), and
// cross-backend equality of the composed OTP/MAC engines.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "crypto/aes.hpp"
#include "crypto/backend.hpp"
#include "crypto/mac.hpp"
#include "crypto/otp.hpp"

namespace steins::crypto {
namespace {

TEST(CryptoBackend, NamesRoundTripThroughParse) {
  for (CryptoBackend b : {CryptoBackend::kRef, CryptoBackend::kTtable, CryptoBackend::kHw}) {
    const auto parsed = parse_backend(backend_name(b));
    ASSERT_TRUE(parsed.has_value()) << backend_name(b);
    EXPECT_EQ(*parsed, b);
  }
}

TEST(CryptoBackend, ParseRejectsAutoAndGarbage) {
  EXPECT_FALSE(parse_backend("auto").has_value());
  EXPECT_FALSE(parse_backend("").has_value());
  EXPECT_FALSE(parse_backend("aesni").has_value());
  EXPECT_FALSE(parse_backend("HW").has_value());
}

TEST(CryptoBackend, HwAvailabilityImpliesCpuFeature) {
  // aes_hw_available() additionally requires that the translation unit was
  // compiled with ISA support, so it can only be a subset of the CPUID bit.
  if (aes_hw_available()) EXPECT_TRUE(cpu_has_aesni());
  if (sha_hw_available()) EXPECT_TRUE(cpu_has_shani());
}

TEST(CryptoBackend, SetAndScopedOverrideRestore) {
  const CryptoBackend before = active_backend();
  {
    ScopedCryptoBackend scoped(CryptoBackend::kRef);
    EXPECT_EQ(active_backend(), CryptoBackend::kRef);
    {
      ScopedCryptoBackend nested(CryptoBackend::kTtable);
      EXPECT_EQ(active_backend(), CryptoBackend::kTtable);
    }
    EXPECT_EQ(active_backend(), CryptoBackend::kRef);
  }
  EXPECT_EQ(active_backend(), before);
}

TEST(CryptoBackend, UnavailableHwClampsToTtable) {
  if (aes_hw_available()) {
    EXPECT_EQ(set_crypto_backend(CryptoBackend::kHw), CryptoBackend::kHw);
  } else {
    EXPECT_EQ(set_crypto_backend(CryptoBackend::kHw), CryptoBackend::kTtable);
  }
  set_crypto_backend(CryptoBackend::kTtable);  // leave a deterministic state
}

TEST(CryptoBackend, SelfCheckPasses) {
  std::string detail;
  EXPECT_TRUE(crypto_self_check(&detail)) << detail;
}

// ---------------------------------------------------------------------------
// Pad domains.

Aes128::Key otp_key(std::uint64_t seed, PadDomain domain) {
  // Mirror OtpEngine's key derivation: seed || domain constant, little-endian.
  Aes128::Key k{};
  const std::uint64_t d = static_cast<std::uint64_t>(domain);
  std::memcpy(k.data(), &seed, 8);
  std::memcpy(k.data() + 8, &d, 8);
  return k;
}

std::array<std::uint8_t, 16> pad_chunk(const Block& pad, unsigned lane) {
  std::array<std::uint8_t, 16> c;
  std::memcpy(c.data(), pad.data() + lane * 16, 16);
  return c;
}

TEST(PadDomain, V1LanesAliasOnceCounterTopBitsSet) {
  // The legacy layout XORs the lane index into counter bits 60..61, so
  // (counter, lane i) and (counter ^ (i << 60), lane 0) encrypt the same
  // input block: identical 16-byte pad chunks — the aliasing v2 fixes.
  OtpEngine otp(CryptoProfile::kReal, 99, PadDomain::kV1);
  const Addr addr = 0x1234'5678ULL;
  const std::uint64_t counter = 42;
  for (std::uint64_t i = 1; i < 4; ++i) {
    const Block a = otp.pad(addr, counter);
    const Block b = otp.pad(addr, counter ^ (i << 60));
    EXPECT_EQ(pad_chunk(a, i), pad_chunk(b, 0)) << "lane " << i;
  }
}

TEST(PadDomain, V2LanesNeverAlias) {
  // Same probe as above against v2: the lane index lives outside the
  // counter field, so the chunks must all differ.
  OtpEngine otp(CryptoProfile::kReal, 99, PadDomain::kV2);
  const Addr addr = 0x1234'5678ULL;
  const std::uint64_t counter = 42;
  for (std::uint64_t i = 1; i < 4; ++i) {
    const Block a = otp.pad(addr, counter);
    const Block b = otp.pad(addr, counter ^ (i << 60));
    EXPECT_NE(pad_chunk(a, i), pad_chunk(b, 0)) << "lane " << i;
  }
}

TEST(PadDomain, V1ReproducesLegacyLayout) {
  const std::uint64_t seed = 7;
  const Addr addr = 0xabcd00ULL;
  const std::uint64_t counter = 0x0102030405060708ULL;
  OtpEngine otp(CryptoProfile::kReal, seed, PadDomain::kV1);
  const Block pad = otp.pad(addr, counter);

  Aes128 aes(otp_key(seed, PadDomain::kV1));
  for (std::uint64_t i = 0; i < 4; ++i) {
    std::uint8_t in[16];
    std::memcpy(in, &addr, 8);
    const std::uint64_t ctr_i = counter ^ (i << 60);
    std::memcpy(in + 8, &ctr_i, 8);
    aes.encrypt_block(in);
    EXPECT_EQ(0, std::memcmp(in, pad.data() + i * 16, 16)) << "lane " << i;
  }
}

TEST(PadDomain, V2PutsLaneInAddressTopByte) {
  const std::uint64_t seed = 7;
  const Addr addr = 0xabcd00ULL;
  const std::uint64_t counter = 0xffff'ffff'ffff'fff0ULL;  // all top bits set: fine in v2
  OtpEngine otp(CryptoProfile::kReal, seed, PadDomain::kV2);
  const Block pad = otp.pad(addr, counter);

  Aes128 aes(otp_key(seed, PadDomain::kV2));
  for (std::uint64_t i = 0; i < 4; ++i) {
    std::uint8_t in[16];
    std::memcpy(in, &addr, 8);
    in[7] = static_cast<std::uint8_t>(i);
    std::memcpy(in + 8, &counter, 8);
    aes.encrypt_block(in);
    EXPECT_EQ(0, std::memcmp(in, pad.data() + i * 16, 16)) << "lane " << i;
  }
}

TEST(PadDomain, V1AndV2PadsAreDomainSeparated) {
  OtpEngine v1(CryptoProfile::kReal, 7, PadDomain::kV1);
  OtpEngine v2(CryptoProfile::kReal, 7, PadDomain::kV2);
  EXPECT_NE(v1.pad(0x40, 1), v2.pad(0x40, 1));
}

TEST(PadDomain, V2RejectsAddressesAbove56Bits) {
  OtpEngine otp(CryptoProfile::kReal, 7, PadDomain::kV2);
  EXPECT_NO_THROW(otp.pad((1ULL << 56) - 64, 1));
  EXPECT_THROW(otp.pad(1ULL << 56, 1), StatusError);
}

// ---------------------------------------------------------------------------
// Composed engines across backends.

TEST(CryptoBackend, OtpAndMacEnginesAgreeAcrossBackends) {
  Xoshiro256 rng(0x5e1ec7ULL);
  std::vector<CryptoBackend> backends{CryptoBackend::kTtable};
  if (aes_hw_available()) backends.push_back(CryptoBackend::kHw);

  OtpEngine otp_ref(CryptoProfile::kReal, 11, PadDomain::kV2, CryptoBackend::kRef);
  MacEngine mac_ref(CryptoProfile::kReal, 11, CryptoBackend::kRef);
  for (int trial = 0; trial < 50; ++trial) {
    const Addr addr = (rng.next() % (1ULL << 40)) & ~63ULL;
    const std::uint64_t counter = rng.next();
    Block data;
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());

    const Block expect_pad = otp_ref.pad(addr, counter);
    const std::uint64_t expect_mac = mac_ref.data_mac(data, addr, counter, 3);
    for (CryptoBackend b : backends) {
      OtpEngine otp(CryptoProfile::kReal, 11, PadDomain::kV2, b);
      MacEngine mac(CryptoProfile::kReal, 11, b);
      ASSERT_EQ(otp.pad(addr, counter), expect_pad) << backend_name(b) << " trial " << trial;
      ASSERT_EQ(mac.data_mac(data, addr, counter, 3), expect_mac)
          << backend_name(b) << " trial " << trial;
    }
  }
}

}  // namespace
}  // namespace steins::crypto

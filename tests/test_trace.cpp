// Workload/trace generators: determinism, footprints, mixture properties.
#include <gtest/gtest.h>

#include <set>

#include "trace/persistent.hpp"
#include "trace/synthetic.hpp"
#include "trace/workloads.hpp"

namespace steins {
namespace {

TEST(SyntheticTrace, DeterministicAndResettable) {
  SyntheticConfig cfg;
  cfg.accesses = 500;
  cfg.seed = 77;
  SyntheticTrace a(cfg), b(cfg);
  MemAccess ma, mb;
  std::vector<MemAccess> first;
  while (a.next(&ma)) {
    ASSERT_TRUE(b.next(&mb));
    EXPECT_EQ(ma.addr, mb.addr);
    EXPECT_EQ(ma.is_write, mb.is_write);
    first.push_back(ma);
  }
  a.reset();
  for (const auto& expect : first) {
    ASSERT_TRUE(a.next(&ma));
    EXPECT_EQ(ma.addr, expect.addr);
  }
}

TEST(SyntheticTrace, StaysWithinFootprint) {
  SyntheticConfig cfg;
  cfg.footprint_bytes = 1 << 20;
  cfg.accesses = 5000;
  SyntheticTrace t(cfg);
  MemAccess a;
  while (t.next(&a)) EXPECT_LT(a.addr, cfg.footprint_bytes);
}

TEST(SyntheticTrace, WriteRatioApproximatelyHonored) {
  SyntheticConfig cfg;
  cfg.accesses = 20000;
  cfg.write_ratio = 0.3;
  SyntheticTrace t(cfg);
  MemAccess a;
  std::uint64_t writes = 0;
  while (t.next(&a)) writes += a.is_write ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(writes) / 20000.0, 0.3, 0.02);
}

TEST(SyntheticTrace, SequentialModeStreams) {
  SyntheticConfig cfg;
  cfg.accesses = 1000;
  cfg.seq_frac = 1.0;
  cfg.write_ratio = 0.0;
  SyntheticTrace t(cfg);
  MemAccess a;
  Addr prev = 0;
  ASSERT_TRUE(t.next(&a));
  prev = a.addr;
  while (t.next(&a)) {
    EXPECT_EQ(a.addr, prev + kBlockSize);
    prev = a.addr;
  }
}

TEST(Workloads, AllNamesConstructible) {
  for (const auto& name : workload_names()) {
    auto t = make_workload(name, 100);
    MemAccess a;
    int n = 0;
    while (t->next(&a)) ++n;
    EXPECT_EQ(n, 100) << name;
  }
  EXPECT_EQ(workload_names().size(), 10u);  // 8 SPEC-like + 2 persistent
  EXPECT_EQ(spec_workload_names().size(), 8u);
}

TEST(Workloads, UnknownNameThrows) {
  EXPECT_THROW(make_workload("perlbench", 100), std::invalid_argument);
  EXPECT_THROW(workload_profile("pqueue"), std::invalid_argument);  // persistent, not SPEC-like
}

TEST(Workloads, ProfilesDiffer) {
  const auto lbm = workload_profile("lbm");
  const auto mcf = workload_profile("mcf");
  EXPECT_GT(lbm.seq_frac, 0.5);
  EXPECT_GT(mcf.pchase_frac, 0.5);
  EXPECT_GT(lbm.write_ratio, mcf.write_ratio);
}

TEST(PersistentQueue, AlternatesRecordAndHead) {
  PersistentQueueTrace t(1 << 20, 10);
  MemAccess a;
  ASSERT_TRUE(t.next(&a));
  EXPECT_NE(a.addr, 0u);  // record append
  EXPECT_TRUE(a.is_write);
  EXPECT_TRUE(a.flush);
  ASSERT_TRUE(t.next(&a));
  EXPECT_EQ(a.addr, 0u);  // head pointer
  EXPECT_TRUE(a.flush);
}

TEST(PersistentHash, ReadModifyWritePairs) {
  PersistentHashTrace t(1 << 20, 10);
  MemAccess r, w;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(t.next(&r));
    ASSERT_TRUE(t.next(&w));
    EXPECT_FALSE(r.is_write);
    EXPECT_TRUE(w.is_write);
    EXPECT_TRUE(w.flush);
    EXPECT_EQ(r.addr, w.addr);  // update writes the bucket it read
  }
}

// Parameterized: every SPEC-like profile is deterministic per seed and
// produces a plausible gap stream.
class WorkloadSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadSweep, DeterministicAndBounded) {
  auto t1 = make_workload(GetParam(), 2000, 3);
  auto t2 = make_workload(GetParam(), 2000, 3);
  MemAccess a, b;
  std::set<Addr> distinct;
  while (t1->next(&a)) {
    ASSERT_TRUE(t2->next(&b));
    EXPECT_EQ(a.addr, b.addr);
    distinct.insert(a.addr);
  }
  EXPECT_GT(distinct.size(), 10u);  // not a single-address stream
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadSweep,
                         ::testing::ValuesIn(workload_names()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

}  // namespace
}  // namespace steins

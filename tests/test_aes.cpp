// AES-128 known-answer tests (FIPS-197 / NIST vectors), properties, and
// cross-checks between every backend pair (ref / ttable / hw). The hw
// backend tests skip cleanly when CPUID does not report AES-NI.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "crypto/aes.hpp"
#include "crypto/backend.hpp"

namespace steins::crypto {
namespace {

std::vector<CryptoBackend> all_backends() {
  return {CryptoBackend::kRef, CryptoBackend::kTtable, CryptoBackend::kHw};
}

// GTEST_SKIP only returns from the calling function, so helpers report
// availability and the TEST body does the skipping.
bool backend_testable(CryptoBackend b) {
  return b != CryptoBackend::kHw || aes_hw_available();
}

Aes128::Key key_from(const std::uint8_t (&k)[16]) {
  Aes128::Key key;
  std::copy(std::begin(k), std::end(k), key.begin());
  return key;
}

Aes128::BlockBytes block_from(const std::uint8_t (&b)[16]) {
  Aes128::BlockBytes blk;
  std::copy(std::begin(b), std::end(b), blk.begin());
  return blk;
}

TEST(Aes128, Fips197AppendixBVector) {
  // FIPS-197 Appendix B: key 2b7e..., plaintext 3243f6a8885a308d313198a2e0370734.
  const std::uint8_t key[16] = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                                0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
  const std::uint8_t pt[16] = {0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
                               0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34};
  const std::uint8_t expect[16] = {0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb,
                                   0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a, 0x0b, 0x32};
  Aes128 aes(key_from(key));
  EXPECT_EQ(aes.encrypt(block_from(pt)), block_from(expect));
}

TEST(Aes128, Fips197AppendixCVector) {
  // FIPS-197 Appendix C.1: key 000102...0f, plaintext 00112233445566778899aabbccddeeff.
  const std::uint8_t key[16] = {0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
                                0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f};
  const std::uint8_t pt[16] = {0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
                               0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff};
  const std::uint8_t expect[16] = {0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30,
                                   0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a};
  Aes128 aes(key_from(key));
  EXPECT_EQ(aes.encrypt(block_from(pt)), block_from(expect));
  EXPECT_EQ(aes.decrypt(block_from(expect)), block_from(pt));
}

TEST(Aes128, NistSp80038aEcbVectors) {
  // NIST SP 800-38A F.1.1/F.1.2: ECB-AES128 with the standard test key,
  // all four blocks, both directions.
  const std::uint8_t key[16] = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                                0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
  const std::uint8_t pt[4][16] = {
      {0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96,
       0xe9, 0x3d, 0x7e, 0x11, 0x73, 0x93, 0x17, 0x2a},
      {0xae, 0x2d, 0x8a, 0x57, 0x1e, 0x03, 0xac, 0x9c,
       0x9e, 0xb7, 0x6f, 0xac, 0x45, 0xaf, 0x8e, 0x51},
      {0x30, 0xc8, 0x1c, 0x46, 0xa3, 0x5c, 0xe4, 0x11,
       0xe5, 0xfb, 0xc1, 0x19, 0x1a, 0x0a, 0x52, 0xef},
      {0xf6, 0x9f, 0x24, 0x45, 0xdf, 0x4f, 0x9b, 0x17,
       0xad, 0x2b, 0x41, 0x7b, 0xe6, 0x6c, 0x37, 0x10}};
  const std::uint8_t ct[4][16] = {
      {0x3a, 0xd7, 0x7b, 0xb4, 0x0d, 0x7a, 0x36, 0x60,
       0xa8, 0x9e, 0xca, 0xf3, 0x24, 0x66, 0xef, 0x97},
      {0xf5, 0xd3, 0xd5, 0x85, 0x03, 0xb9, 0x69, 0x9d,
       0xe7, 0x85, 0x89, 0x5a, 0x96, 0xfd, 0xba, 0xaf},
      {0x43, 0xb1, 0xcd, 0x7f, 0x59, 0x8e, 0xce, 0x23,
       0x88, 0x1b, 0x00, 0xe3, 0xed, 0x03, 0x06, 0x88},
      {0x7b, 0x0c, 0x78, 0x5e, 0x27, 0xe8, 0xad, 0x3f,
       0x82, 0x23, 0x20, 0x71, 0x04, 0x72, 0x5d, 0xd4}};
  Aes128 aes(key_from(key));
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(aes.encrypt(block_from(pt[i])), block_from(ct[i])) << "block " << i;
    EXPECT_EQ(aes.decrypt(block_from(ct[i])), block_from(pt[i])) << "block " << i;
  }
}

TEST(Aes128, ReferencePathMatchesFips197Vectors) {
  const std::uint8_t key_b[16] = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                                  0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
  const std::uint8_t pt_b[16] = {0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
                                 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34};
  const std::uint8_t expect_b[16] = {0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb,
                                     0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a, 0x0b, 0x32};
  Aes128 aes_b(key_from(key_b));
  auto blk = block_from(pt_b);
  aes_b.encrypt_block_ref(blk.data());
  EXPECT_EQ(blk, block_from(expect_b));

  const std::uint8_t key_c[16] = {0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
                                  0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f};
  const std::uint8_t pt_c[16] = {0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
                                 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff};
  const std::uint8_t expect_c[16] = {0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30,
                                     0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a};
  Aes128 aes_c(key_from(key_c));
  blk = block_from(pt_c);
  aes_c.encrypt_block_ref(blk.data());
  EXPECT_EQ(blk, block_from(expect_c));
  aes_c.decrypt_block_ref(blk.data());
  EXPECT_EQ(blk, block_from(pt_c));
}

TEST(Aes128, TtableMatchesReferenceOnRandomizedBlocks) {
  // 1k random (key, plaintext) pairs: the fast path and the byte-wise
  // FIPS-197 path must agree in both directions.
  Xoshiro256 rng(0xae5cafe5ULL);
  for (int trial = 0; trial < 1000; ++trial) {
    Aes128::Key key;
    Aes128::BlockBytes pt;
    for (auto& b : key) b = static_cast<std::uint8_t>(rng.next());
    for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next());
    const Aes128 aes(key);

    Aes128::BlockBytes fast = pt;
    aes.encrypt_block(fast.data());
    Aes128::BlockBytes ref = pt;
    aes.encrypt_block_ref(ref.data());
    ASSERT_EQ(fast, ref) << "encrypt mismatch, trial " << trial;

    Aes128::BlockBytes dec_fast = fast;
    aes.decrypt_block(dec_fast.data());
    Aes128::BlockBytes dec_ref = ref;
    aes.decrypt_block_ref(dec_ref.data());
    ASSERT_EQ(dec_fast, pt) << "fast decrypt mismatch, trial " << trial;
    ASSERT_EQ(dec_ref, pt) << "ref decrypt mismatch, trial " << trial;
  }
}

TEST(Aes128, SelfCheckPasses) { EXPECT_TRUE(Aes128::self_check()); }

TEST(Aes128, NistSp80038aEcbVectorsEveryBackend) {
  // The SP 800-38A F.1.1/F.1.2 vectors again, but pinned to each backend
  // in turn: a dispatch bug that routed to a miscomputing path would pass
  // the registry-following tests above and be caught here.
  const std::uint8_t key[16] = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                                0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
  const std::uint8_t pt[4][16] = {
      {0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96,
       0xe9, 0x3d, 0x7e, 0x11, 0x73, 0x93, 0x17, 0x2a},
      {0xae, 0x2d, 0x8a, 0x57, 0x1e, 0x03, 0xac, 0x9c,
       0x9e, 0xb7, 0x6f, 0xac, 0x45, 0xaf, 0x8e, 0x51},
      {0x30, 0xc8, 0x1c, 0x46, 0xa3, 0x5c, 0xe4, 0x11,
       0xe5, 0xfb, 0xc1, 0x19, 0x1a, 0x0a, 0x52, 0xef},
      {0xf6, 0x9f, 0x24, 0x45, 0xdf, 0x4f, 0x9b, 0x17,
       0xad, 0x2b, 0x41, 0x7b, 0xe6, 0x6c, 0x37, 0x10}};
  const std::uint8_t ct[4][16] = {
      {0x3a, 0xd7, 0x7b, 0xb4, 0x0d, 0x7a, 0x36, 0x60,
       0xa8, 0x9e, 0xca, 0xf3, 0x24, 0x66, 0xef, 0x97},
      {0xf5, 0xd3, 0xd5, 0x85, 0x03, 0xb9, 0x69, 0x9d,
       0xe7, 0x85, 0x89, 0x5a, 0x96, 0xfd, 0xba, 0xaf},
      {0x43, 0xb1, 0xcd, 0x7f, 0x59, 0x8e, 0xce, 0x23,
       0x88, 0x1b, 0x00, 0xe3, 0xed, 0x03, 0x06, 0x88},
      {0x7b, 0x0c, 0x78, 0x5e, 0x27, 0xe8, 0xad, 0x3f,
       0x82, 0x23, 0x20, 0x71, 0x04, 0x72, 0x5d, 0xd4}};
  for (CryptoBackend b : all_backends()) {
    if (!backend_testable(b)) continue;  // hw absent: covered below by skip test
    Aes128 aes(key_from(key), b);
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(aes.encrypt(block_from(pt[i])), block_from(ct[i]))
          << backend_name(b) << " block " << i;
      EXPECT_EQ(aes.decrypt(block_from(ct[i])), block_from(pt[i]))
          << backend_name(b) << " block " << i;
    }
  }
}

TEST(Aes128, HwBackendAvailableOrSkipped) {
  if (!aes_hw_available()) {
    GTEST_SKIP() << "AES-NI not available; hw backend clamps to ttable";
  }
  // Pinned-hw must really dispatch to hw, not silently clamp.
  Aes128 aes(Aes128::Key{}, CryptoBackend::kHw);
  EXPECT_EQ(aes.backend(), CryptoBackend::kHw);
}

TEST(Aes128, AllBackendsAgreeOnRandomizedBlocks) {
  // Seeded 10k-trial differential test: every available backend must
  // produce identical ciphertexts and decrypt back to the plaintext.
  Xoshiro256 rng(0xc0ffee12345ULL);
  std::vector<CryptoBackend> backends{CryptoBackend::kRef, CryptoBackend::kTtable};
  if (aes_hw_available()) backends.push_back(CryptoBackend::kHw);
  for (int trial = 0; trial < 10'000; ++trial) {
    Aes128::Key key;
    Aes128::BlockBytes pt;
    for (auto& b : key) b = static_cast<std::uint8_t>(rng.next());
    for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next());

    Aes128 baseline(key, CryptoBackend::kRef);
    const Aes128::BlockBytes expect = baseline.encrypt(pt);
    for (CryptoBackend b : backends) {
      Aes128 aes(key, b);
      ASSERT_EQ(aes.encrypt(pt), expect) << backend_name(b) << " encrypt, trial " << trial;
      ASSERT_EQ(aes.decrypt(expect), pt) << backend_name(b) << " decrypt, trial " << trial;
    }
  }
}

TEST(Aes128, Encrypt4MatchesFourSingleBlocks) {
  // The 4-lane CTR kernel must equal four independent single-block calls on
  // every backend (the hw path pipelines the lanes; software loops).
  Xoshiro256 rng(0x4444ULL);
  for (CryptoBackend b : all_backends()) {
    if (!backend_testable(b)) continue;
    for (int trial = 0; trial < 100; ++trial) {
      Aes128::Key key;
      for (auto& byte : key) byte = static_cast<std::uint8_t>(rng.next());
      Aes128 aes(key, b);
      std::array<std::uint8_t, 64> blocks;
      for (auto& byte : blocks) byte = static_cast<std::uint8_t>(rng.next());
      std::array<std::uint8_t, 64> expect = blocks;
      for (int lane = 0; lane < 4; ++lane) aes.encrypt_block(expect.data() + lane * 16);
      aes.encrypt4(blocks.data());
      ASSERT_EQ(blocks, expect) << backend_name(b) << " trial " << trial;
    }
  }
}

TEST(Aes128, EncryptDecryptRoundTrip) {
  const std::uint8_t key[16] = {0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  Aes128 aes(key_from(key));
  Aes128::BlockBytes blk;
  for (int trial = 0; trial < 64; ++trial) {
    for (std::size_t i = 0; i < blk.size(); ++i) {
      blk[i] = static_cast<std::uint8_t>(trial * 17 + i * 31);
    }
    EXPECT_EQ(aes.decrypt(aes.encrypt(blk)), blk) << "trial " << trial;
  }
}

TEST(Aes128, DifferentKeysDiffer) {
  const std::uint8_t k1[16] = {0};
  std::uint8_t k2raw[16] = {0};
  k2raw[15] = 1;
  Aes128 a(key_from(k1));
  Aes128 b(Aes128::Key{k2raw[0], k2raw[1], k2raw[2], k2raw[3], k2raw[4], k2raw[5], k2raw[6],
                       k2raw[7], k2raw[8], k2raw[9], k2raw[10], k2raw[11], k2raw[12], k2raw[13],
                       k2raw[14], k2raw[15]});
  Aes128::BlockBytes zero{};
  EXPECT_NE(a.encrypt(zero), b.encrypt(zero));
}

TEST(Aes128, AvalancheOnPlaintextBit) {
  const std::uint8_t key[16] = {7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7};
  Aes128 aes(key_from(key));
  Aes128::BlockBytes a{}, b{};
  b[0] = 0x01;
  const auto ca = aes.encrypt(a);
  const auto cb = aes.encrypt(b);
  int diff_bits = 0;
  for (std::size_t i = 0; i < ca.size(); ++i) {
    diff_bits += __builtin_popcount(static_cast<unsigned>(ca[i] ^ cb[i]));
  }
  // A single flipped input bit should flip roughly half the output bits.
  EXPECT_GT(diff_bits, 32);
  EXPECT_LT(diff_bits, 96);
}

}  // namespace
}  // namespace steins::crypto

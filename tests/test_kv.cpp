// The crash-consistent KV store and its validation harness: record/commit
// encoding, round trips through every scheme's secure path, the YCSB
// driver, and the crash-at-every-persist-boundary recovery matrix.
#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <string>

#include "kv/kv_crash.hpp"
#include "kv/kv_store.hpp"
#include "kv/ycsb.hpp"
#include "sim/system.hpp"
#include "test_util.hpp"

namespace steins::kv {
namespace {

using testutil::small_config;

TEST(KvLayout, AddressesAreDisjointAndInRegion) {
  KvLayout layout;
  layout.base = 1 << 20;
  layout.slots = 64;
  std::map<Addr, int> seen;
  for (std::size_t s = 0; s < layout.slots; ++s) {
    ++seen[layout.record_addr(s, 0)];
    ++seen[layout.record_addr(s, 1)];
    const Addr commit = layout.commit_block_addr(s);
    EXPECT_LT(layout.commit_word_offset(s) + 8, kBlockSize + 1);
    EXPECT_GE(commit, layout.base);
    EXPECT_LT(commit + kBlockSize, layout.base + layout.region_bytes() + 1);
  }
  for (const auto& [addr, n] : seen) {
    EXPECT_EQ(n, 1) << "record address " << addr << " aliased";
    EXPECT_GE(addr, layout.base);
    EXPECT_LT(addr + kBlockSize, layout.base + layout.region_bytes() + 1);
  }
  for (std::uint64_t key = 0; key < 1000; ++key) {
    EXPECT_LT(layout.home_slot(key), layout.slots);
  }
}

TEST(KvRecordCodec, RoundTripsAndRejectsCorruption) {
  const KvRecord rec{0xdeadbeefULL, 17, "value-payload"};
  Block b = encode_record(rec);
  KvRecord out;
  ASSERT_TRUE(decode_record(b, &out));
  EXPECT_EQ(out.key, rec.key);
  EXPECT_EQ(out.version, rec.version);
  EXPECT_EQ(out.value, rec.value);

  Block flipped = b;
  flipped[40] ^= 0x01;  // one bit in the value payload
  EXPECT_FALSE(decode_record(flipped, nullptr));
  Block zero{};
  KvRecord z;  // all-zero decodes only if the checksum happens to match
  EXPECT_FALSE(decode_record(zero, &z) && z.version != 0);
}

TEST(KvCommitWord, EncodeDecodeRoundTrip) {
  for (const CommitWord w : {CommitWord{1, 0, true}, CommitWord{7, 1, false},
                             CommitWord{(std::uint64_t{1} << 60) - 1, 1, true}}) {
    const CommitWord d = CommitWord::decode(w.encode());
    EXPECT_EQ(d.version, w.version);
    EXPECT_EQ(d.replica, w.replica);
    EXPECT_EQ(d.live, w.live);
    EXPECT_FALSE(d.empty());
  }
  EXPECT_TRUE(CommitWord::decode(0).empty());
}

std::string param_name(Scheme s) {
  std::string name = scheme_name(s, CounterMode::kGeneral);
  std::erase_if(name, [](char c) { return !std::isalnum(static_cast<unsigned char>(c)); });
  return name;
}

class KvStoreScheme : public ::testing::TestWithParam<Scheme> {};

INSTANTIATE_TEST_SUITE_P(AllSchemes, KvStoreScheme,
                         ::testing::Values(Scheme::kWriteBack, Scheme::kAnubis,
                                           Scheme::kStar, Scheme::kScue, Scheme::kSteins),
                         [](const auto& info) { return param_name(info.param); });

TEST_P(KvStoreScheme, PutGetEraseRoundTrip) {
  System sys(small_config(), GetParam());
  KvLayout layout;
  layout.slots = 64;
  KvStore kv(sys, layout);

  std::map<std::uint64_t, std::string> model;
  for (std::uint64_t k = 0; k < 20; ++k) {
    const std::string v = "v" + std::to_string(k);
    kv.put(k, v);
    model[k] = v;
  }
  for (std::uint64_t k = 0; k < 20; k += 3) {  // updates flip replicas
    const std::string v = "updated" + std::to_string(k);
    kv.put(k, v);
    model[k] = v;
  }
  for (std::uint64_t k = 1; k < 20; k += 4) {
    EXPECT_TRUE(kv.erase(k));
    model.erase(k);
  }
  EXPECT_FALSE(kv.erase(999));
  EXPECT_EQ(kv.get(999), std::nullopt);
  for (const auto& [k, v] : model) {
    const auto got = kv.get(k);
    ASSERT_TRUE(got.has_value()) << "key " << k;
    EXPECT_EQ(*got, v);
  }
  EXPECT_EQ(kv.dump(), model);

  // The store is stateless over NVM: a second handle resumes the image.
  KvStore reopened(sys, layout);
  EXPECT_EQ(reopened.dump(), model);
}

TEST(KvStore, RejectsOversizedValuesAndFullTable) {
  System sys(small_config(), Scheme::kSteins);
  KvLayout layout;
  layout.slots = 4;
  KvStore kv(sys, layout);
  EXPECT_THROW(kv.put(1, std::string(kMaxValueBytes + 1, 'x')), std::invalid_argument);
  for (std::uint64_t k = 0; k < 4; ++k) kv.put(k, "v");
  EXPECT_THROW(kv.put(99, "overflow"), std::runtime_error);
  kv.put(2, "update still fine");  // existing keys update in place
  EXPECT_EQ(*kv.get(2), "update still fine");
}

TEST(KvStore, TombstoneSlotsAreReused) {
  System sys(small_config(), Scheme::kSteins);
  KvLayout layout;
  layout.slots = 4;
  KvStore kv(sys, layout);
  for (std::uint64_t k = 0; k < 4; ++k) kv.put(k, "v");
  ASSERT_TRUE(kv.erase(1));
  kv.put(50, "reused");  // must land in the tombstoned slot
  EXPECT_EQ(*kv.get(50), "reused");
  EXPECT_EQ(kv.dump().size(), 4u);
}

TEST(KvCrash, WriteBackIsDetectedUnrecoverable) {
  KvCrashOptions opt;
  opt.ops = 16;
  const KvCrashReport r = run_kv_crash_validation(small_config(), Scheme::kWriteBack, opt);
  EXPECT_FALSE(r.recovery_supported);
  EXPECT_TRUE(r.pass(Scheme::kWriteBack));
  EXPECT_FALSE(r.pass(Scheme::kSteins));  // the same report fails a real scheme
}

class KvCrashScheme : public ::testing::TestWithParam<Scheme> {};

INSTANTIATE_TEST_SUITE_P(RecoverableSchemes, KvCrashScheme,
                         ::testing::Values(Scheme::kAnubis, Scheme::kStar, Scheme::kScue,
                                           Scheme::kSteins),
                         [](const auto& info) { return param_name(info.param); });

// The exhaustive matrix: kill the store before EVERY persist barrier of a
// small deterministic script; each crash point must recover to exactly the
// committed model.
TEST_P(KvCrashScheme, RecoversAtEveryPersistBoundary) {
  const SystemConfig cfg = small_config();
  KvCrashOptions opt;
  opt.ops = 10;
  opt.keys = 4;
  opt.slots = 32;
  opt.value_bytes = 8;

  opt.crash_at = 0;
  KvCrashReport first = run_kv_crash_validation(cfg, GetParam(), opt);
  ASSERT_TRUE(first.pass(GetParam())) << first.detail;
  ASSERT_GT(first.total_persists, 0u);

  for (std::uint64_t at = 1; at <= first.total_persists; ++at) {
    opt.crash_at = at;
    const KvCrashReport r = run_kv_crash_validation(cfg, GetParam(), opt);
    EXPECT_TRUE(r.pass(GetParam()))
        << "crash before persist " << at << "/" << r.total_persists << ": " << r.detail;
    EXPECT_EQ(r.total_persists, first.total_persists);
  }
}

TEST(KvCrash, RandomBoundaryIsDeterministicPerSeed) {
  KvCrashOptions opt;
  opt.ops = 24;
  const KvCrashReport a = run_kv_crash_validation(small_config(), Scheme::kSteins, opt);
  const KvCrashReport b = run_kv_crash_validation(small_config(), Scheme::kSteins, opt);
  EXPECT_TRUE(a.pass(Scheme::kSteins)) << a.detail;
  EXPECT_EQ(a.crash_at, b.crash_at);
  opt.seed = 2;
  const KvCrashReport c = run_kv_crash_validation(small_config(), Scheme::kSteins, opt);
  EXPECT_TRUE(c.pass(Scheme::kSteins)) << c.detail;
}

TEST(YcsbDriver, MixesProduceExpectedShapes) {
  YcsbConfig ycfg;
  ycfg.clients = 3;
  ycfg.ops = 2000;
  ycfg.keys = 200;
  ycfg.slots = 1024;
  const SystemConfig cfg = small_config();

  ycfg.mix = Mix::kC;
  const YcsbResult ro = run_ycsb(cfg, Scheme::kSteins, ycfg);
  EXPECT_EQ(ro.reads, ycfg.ops);
  EXPECT_EQ(ro.updates, 0u);
  EXPECT_EQ(ro.all_lat.count(), ycfg.ops);
  EXPECT_GT(ro.kops_per_sec, 0.0);

  ycfg.mix = Mix::kA;
  const YcsbResult rw = run_ycsb(cfg, Scheme::kSteins, ycfg);
  EXPECT_EQ(rw.reads + rw.updates, ycfg.ops);
  EXPECT_GT(rw.updates, ycfg.ops / 3);  // ~50% updates
  EXPECT_LT(rw.updates, 2 * ycfg.ops / 3);
  EXPECT_GT(rw.nvm_writes, 0u);
  // Updates traverse two block writes; the tail must sit above reads'.
  EXPECT_GE(rw.update_lat.percentile(50), ro.read_lat.percentile(50));

  // Determinism: identical config twice gives identical results.
  const YcsbResult again = run_ycsb(cfg, Scheme::kSteins, ycfg);
  EXPECT_EQ(again.makespan, rw.makespan);
  EXPECT_DOUBLE_EQ(again.kops_per_sec, rw.kops_per_sec);
}

TEST(YcsbDriver, RejectsNonsenseConfigs) {
  const SystemConfig cfg = small_config();
  YcsbConfig ycfg;
  ycfg.clients = 0;
  EXPECT_THROW(run_ycsb(cfg, Scheme::kSteins, ycfg), std::invalid_argument);
  ycfg.clients = 1;
  ycfg.slots = 1000;  // not a power of two
  EXPECT_THROW(run_ycsb(cfg, Scheme::kSteins, ycfg), std::invalid_argument);
  ycfg.slots = 1024;
  ycfg.keys = 1024;  // over half full
  EXPECT_THROW(run_ycsb(cfg, Scheme::kSteins, ycfg), std::invalid_argument);
}

TEST(YcsbDriver, ParsesMixNames) {
  EXPECT_EQ(parse_mix("a"), Mix::kA);
  EXPECT_EQ(parse_mix("B"), Mix::kB);
  EXPECT_EQ(parse_mix("f"), Mix::kF);
  EXPECT_EQ(parse_mix("z"), std::nullopt);
  EXPECT_STREQ(mix_name(Mix::kC), "c");
}

}  // namespace
}  // namespace steins::kv

// Experiment harness: scheme sets, matrix runs, normalization tables, and
// sequential/parallel equivalence of the matrix runner.
#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/experiment.hpp"

namespace steins {
namespace {

// Field-by-field equality of everything a figure metric can read, so the
// parallel runner is held to bit-identical output, not approximate output.
void expect_stats_identical(const RunStats& a, const RunStats& b, const std::string& where) {
  EXPECT_EQ(a.cycles, b.cycles) << where;
  EXPECT_EQ(a.instructions, b.instructions) << where;
  EXPECT_EQ(a.accesses, b.accesses) << where;
  EXPECT_EQ(a.energy_nj, b.energy_nj) << where;
  EXPECT_EQ(a.read_latency_cycles, b.read_latency_cycles) << where;
  EXPECT_EQ(a.write_latency_cycles, b.write_latency_cycles) << where;
  EXPECT_EQ(a.mcache_hit_rate, b.mcache_hit_rate) << where;
  EXPECT_EQ(a.mem.read_latency.count, b.mem.read_latency.count) << where;
  EXPECT_EQ(a.mem.read_latency.sum, b.mem.read_latency.sum) << where;
  EXPECT_EQ(a.mem.read_latency.max, b.mem.read_latency.max) << where;
  EXPECT_EQ(a.mem.write_latency.count, b.mem.write_latency.count) << where;
  EXPECT_EQ(a.mem.write_latency.sum, b.mem.write_latency.sum) << where;
  EXPECT_EQ(a.mem.write_latency.max, b.mem.write_latency.max) << where;
  EXPECT_EQ(a.mem.data_reads, b.mem.data_reads) << where;
  EXPECT_EQ(a.mem.data_writes, b.mem.data_writes) << where;
  EXPECT_EQ(a.mem.meta_reads, b.mem.meta_reads) << where;
  EXPECT_EQ(a.mem.meta_writes, b.mem.meta_writes) << where;
  EXPECT_EQ(a.mem.aux_reads, b.mem.aux_reads) << where;
  EXPECT_EQ(a.mem.aux_writes, b.mem.aux_writes) << where;
  EXPECT_EQ(a.mem.aux_write_bytes, b.mem.aux_write_bytes) << where;
  EXPECT_EQ(a.mem.hash_ops, b.mem.hash_ops) << where;
  EXPECT_EQ(a.mem.aes_ops, b.mem.aes_ops) << where;
  EXPECT_EQ(a.mem.mcache_accesses, b.mem.mcache_accesses) << where;
  EXPECT_EQ(a.mem.reencryptions, b.mem.reencryptions) << where;
}

TEST(ExperimentRunner, SchemeSetsMatchPaper) {
  const auto gc = gc_comparison_schemes();
  ASSERT_EQ(gc.size(), 4u);
  EXPECT_EQ(gc[0].label, "WB-GC");
  EXPECT_EQ(gc[1].label, "ASIT");
  EXPECT_EQ(gc[2].label, "STAR");
  EXPECT_EQ(gc[3].label, "Steins-GC");

  const auto sc = sc_comparison_schemes();
  ASSERT_EQ(sc.size(), 3u);
  EXPECT_EQ(sc[0].label, "WB-SC");
  EXPECT_EQ(sc[1].label, "Steins-SC");
  EXPECT_EQ(sc[2].label, "Steins-GC");
}

TEST(ExperimentRunner, MatrixRunsEveryCell) {
  SystemConfig cfg = default_config();
  cfg.nvm.capacity_bytes = 256ULL << 20;
  ExperimentRunner runner(cfg);
  const std::vector<std::string> wls = {"gcc", "phash"};
  const auto schemes = sc_comparison_schemes();
  const auto results = runner.run_matrix(wls, schemes, 3000);
  ASSERT_EQ(results.size(), wls.size() * schemes.size());
  for (const auto& r : results) {
    EXPECT_GT(r.stats.cycles, 0u) << r.workload << "/" << r.scheme_label;
  }
}

TEST(ExperimentRunner, ParallelMatrixMatchesSequentialBitExactly) {
  SystemConfig cfg = default_config();
  cfg.nvm.capacity_bytes = 256ULL << 20;
  ExperimentRunner runner(cfg);
  const std::vector<std::string> wls = {"gcc", "phash", "mcf"};
  const auto schemes = gc_comparison_schemes();

  const auto seq = runner.run_matrix(wls, schemes, 2000, 200, false, /*jobs=*/1);
  const auto par = runner.run_matrix(wls, schemes, 2000, 200, false, /*jobs=*/4);

  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    // Same cell in the same slot: first-seen order survives parallelism.
    EXPECT_EQ(seq[i].workload, par[i].workload) << i;
    EXPECT_EQ(seq[i].scheme_label, par[i].scheme_label) << i;
    expect_stats_identical(seq[i].stats, par[i].stats,
                           seq[i].workload + "/" + seq[i].scheme_label);
  }
}

TEST(ExperimentRunner, ParallelMatrixPropagatesCellExceptions) {
  SystemConfig cfg = default_config();
  cfg.nvm.capacity_bytes = 256ULL << 20;
  ExperimentRunner runner(cfg);
  const std::vector<std::string> wls = {"gcc", "no-such-workload"};
  const auto schemes = sc_comparison_schemes();
  EXPECT_THROW(runner.run_matrix(wls, schemes, 500, 0, false, /*jobs=*/4),
               std::invalid_argument);
  EXPECT_THROW(runner.run_matrix(wls, schemes, 500, 0, false, /*jobs=*/1),
               std::invalid_argument);
}

TEST(ExperimentRunner, TableNormalizesToBaseline) {
  std::vector<SchemeSpec> schemes = {
      {Scheme::kWriteBack, CounterMode::kGeneral, "base"},
      {Scheme::kSteins, CounterMode::kGeneral, "other"},
  };
  std::vector<MatrixResult> results(2);
  results[0].workload = "w";
  results[0].scheme_label = "base";
  results[0].stats.cycles = 100;
  results[1].workload = "w";
  results[1].scheme_label = "other";
  results[1].stats.cycles = 150;

  const ResultTable t = ExperimentRunner::make_table(
      "t", results, schemes, [](const RunStats& s) { return static_cast<double>(s.cycles); },
      "base");
  ASSERT_EQ(t.rows().size(), 2u);  // workload row + gmean
  EXPECT_DOUBLE_EQ(t.rows()[0].second[0], 1.0);
  EXPECT_DOUBLE_EQ(t.rows()[0].second[1], 1.5);
}

TEST(ExperimentRunner, AbsoluteTableWithEmptyBaseline) {
  std::vector<SchemeSpec> schemes = {{Scheme::kWriteBack, CounterMode::kGeneral, "only"}};
  std::vector<MatrixResult> results(1);
  results[0].workload = "w";
  results[0].scheme_label = "only";
  results[0].stats.cycles = 123;
  const ResultTable t = ExperimentRunner::make_table(
      "t", results, schemes, [](const RunStats& s) { return static_cast<double>(s.cycles); }, "");
  EXPECT_DOUBLE_EQ(t.rows()[0].second[0], 123.0);
}

}  // namespace
}  // namespace steins

// Experiment harness: scheme sets, matrix runs, normalization tables.
#include <gtest/gtest.h>

#include "sim/experiment.hpp"

namespace steins {
namespace {

TEST(ExperimentRunner, SchemeSetsMatchPaper) {
  const auto gc = gc_comparison_schemes();
  ASSERT_EQ(gc.size(), 4u);
  EXPECT_EQ(gc[0].label, "WB-GC");
  EXPECT_EQ(gc[1].label, "ASIT");
  EXPECT_EQ(gc[2].label, "STAR");
  EXPECT_EQ(gc[3].label, "Steins-GC");

  const auto sc = sc_comparison_schemes();
  ASSERT_EQ(sc.size(), 3u);
  EXPECT_EQ(sc[0].label, "WB-SC");
  EXPECT_EQ(sc[1].label, "Steins-SC");
  EXPECT_EQ(sc[2].label, "Steins-GC");
}

TEST(ExperimentRunner, MatrixRunsEveryCell) {
  SystemConfig cfg = default_config();
  cfg.nvm.capacity_bytes = 256ULL << 20;
  ExperimentRunner runner(cfg);
  const std::vector<std::string> wls = {"gcc", "phash"};
  const auto schemes = sc_comparison_schemes();
  const auto results = runner.run_matrix(wls, schemes, 3000);
  ASSERT_EQ(results.size(), wls.size() * schemes.size());
  for (const auto& r : results) {
    EXPECT_GT(r.stats.cycles, 0u) << r.workload << "/" << r.scheme_label;
  }
}

TEST(ExperimentRunner, TableNormalizesToBaseline) {
  std::vector<SchemeSpec> schemes = {
      {Scheme::kWriteBack, CounterMode::kGeneral, "base"},
      {Scheme::kSteins, CounterMode::kGeneral, "other"},
  };
  std::vector<MatrixResult> results(2);
  results[0].workload = "w";
  results[0].scheme_label = "base";
  results[0].stats.cycles = 100;
  results[1].workload = "w";
  results[1].scheme_label = "other";
  results[1].stats.cycles = 150;

  const ResultTable t = ExperimentRunner::make_table(
      "t", results, schemes, [](const RunStats& s) { return static_cast<double>(s.cycles); },
      "base");
  ASSERT_EQ(t.rows().size(), 2u);  // workload row + gmean
  EXPECT_DOUBLE_EQ(t.rows()[0].second[0], 1.0);
  EXPECT_DOUBLE_EQ(t.rows()[0].second[1], 1.5);
}

TEST(ExperimentRunner, AbsoluteTableWithEmptyBaseline) {
  std::vector<SchemeSpec> schemes = {{Scheme::kWriteBack, CounterMode::kGeneral, "only"}};
  std::vector<MatrixResult> results(1);
  results[0].workload = "w";
  results[0].scheme_label = "only";
  results[0].stats.cycles = 123;
  const ResultTable t = ExperimentRunner::make_table(
      "t", results, schemes, [](const RunStats& s) { return static_cast<double>(s.cycles); }, "");
  EXPECT_DOUBLE_EQ(t.rows()[0].second[0], 123.0);
}

}  // namespace
}  // namespace steins

// Log-bucketed latency histogram, JSON string escaping, and the Zipf
// sampler the KV driver's popularity model rests on.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace steins {
namespace {

TEST(LatencyHistogram, ExactBelowSixteenAndBucketBoundaries) {
  for (std::uint64_t v = 0; v < LatencyHistogram::kSub; ++v) {
    EXPECT_EQ(LatencyHistogram::bucket_of(v), v);
    EXPECT_DOUBLE_EQ(LatencyHistogram::bucket_mid(v), static_cast<double>(v));
  }
  // Buckets are monotone in the value and stay in range.
  std::size_t prev = 0;
  for (int shift = 0; shift < 63; ++shift) {
    const std::uint64_t v = std::uint64_t{1} << shift;
    const std::size_t b = LatencyHistogram::bucket_of(v);
    EXPECT_GE(b, prev);
    EXPECT_LT(b, LatencyHistogram::kBuckets);
    prev = b;
  }
  // Everything at or above the 2^32 ceiling clamps into the last bucket.
  EXPECT_EQ(LatencyHistogram::bucket_of(std::uint64_t{1} << 32),
            LatencyHistogram::kBuckets - 1);
  EXPECT_EQ(LatencyHistogram::bucket_of(~std::uint64_t{0}),
            LatencyHistogram::kBuckets - 1);
}

TEST(LatencyHistogram, BucketBoundsPartitionTheValueAxis) {
  EXPECT_EQ(LatencyHistogram::bucket_lower(0), 0u);
  for (std::size_t i = 0; i + 1 < LatencyHistogram::kBuckets; ++i) {
    // Bounds tile contiguously, and each bucket's own bounds map back to it.
    EXPECT_EQ(LatencyHistogram::bucket_upper(i) + 1, LatencyHistogram::bucket_lower(i + 1))
        << "bucket " << i;
    EXPECT_EQ(LatencyHistogram::bucket_of(LatencyHistogram::bucket_lower(i)), i);
    EXPECT_EQ(LatencyHistogram::bucket_of(LatencyHistogram::bucket_upper(i)), i);
  }
  // The clamp bucket owns everything up to UINT64_MAX.
  const std::size_t last = LatencyHistogram::kBuckets - 1;
  EXPECT_EQ(LatencyHistogram::bucket_upper(last), ~std::uint64_t{0});
  EXPECT_EQ(LatencyHistogram::bucket_of(LatencyHistogram::bucket_lower(last)), last);
  EXPECT_EQ(LatencyHistogram::bucket_of(~std::uint64_t{0}), last);
}

TEST(LatencyHistogram, TopBucketPercentileTracksOutliersNotTheCeiling) {
  // Samples far above the 2^32 clamp ceiling must surface through the tail
  // percentiles rather than saturating at the last bucket representative.
  LatencyHistogram h;
  const std::uint64_t huge = std::uint64_t{1} << 40;
  for (int i = 0; i < 100; ++i) h.add(huge);
  EXPECT_GT(h.percentile(99), static_cast<double>(std::uint64_t{1} << 33));
  EXPECT_LE(h.percentile(100), static_cast<double>(h.max()));
  // Mixed stream: 99 cheap ops + 1 outlier. p99 stays cheap, p100 reaches
  // the outlier.
  LatencyHistogram m;
  for (int i = 0; i < 99; ++i) m.add(100);
  m.add(huge);
  EXPECT_LE(m.percentile(99), 200.0);
  EXPECT_GT(m.percentile(100), static_cast<double>(std::uint64_t{1} << 39));
}

TEST(LatencyHistogram, BucketCountsAreReadable) {
  LatencyHistogram h;
  h.add(3);
  h.add(3);
  h.add(1000);
  EXPECT_EQ(h.bucket_count(3), 2u);
  EXPECT_EQ(h.bucket_count(LatencyHistogram::bucket_of(1000)), 1u);
  EXPECT_EQ(h.bucket_count(7), 0u);
}

TEST(LatencyHistogram, EmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
}

TEST(LatencyHistogram, PercentilesWithinBucketResolution) {
  // Uniform 1..100000: every percentile is known analytically, and the
  // 16-sub-buckets-per-octave layout bounds relative error at ~6%.
  LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 100'000; ++v) h.add(v);
  EXPECT_EQ(h.count(), 100'000u);
  EXPECT_EQ(h.max(), 100'000u);
  for (const double p : {10.0, 50.0, 90.0, 99.0, 99.9}) {
    const double expect = p / 100.0 * 100'000.0;
    EXPECT_NEAR(h.percentile(p), expect, 0.07 * expect) << "p" << p;
  }
  // The extreme percentile never exceeds the exact max.
  EXPECT_LE(h.percentile(100), static_cast<double>(h.max()));
}

TEST(LatencyHistogram, MergeMatchesSingleHistogram) {
  LatencyHistogram a, b, whole;
  Xoshiro256 rng(42);
  for (int i = 0; i < 20'000; ++i) {
    const std::uint64_t v = rng.below(1 << 20) + 1;
    ((i % 2) ? a : b).add(v);
    whole.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_EQ(a.max(), whole.max());
  EXPECT_DOUBLE_EQ(a.mean(), whole.mean());
  for (const double p : {25.0, 50.0, 95.0, 99.0}) {
    EXPECT_DOUBLE_EQ(a.percentile(p), whole.percentile(p)) << "p" << p;
  }
}

TEST(LatencyHistogram, PercentileNeverExceedsObservedBucketMax) {
  // Every sample is the same mid-bucket value: interpolation must stop at
  // the observed max, not walk to the bucket's upper bound.
  LatencyHistogram h;
  for (int i = 0; i < 1000; ++i) h.add(4097);
  for (const double p : {50.0, 90.0, 99.0, 99.9, 100.0}) {
    EXPECT_LE(h.percentile(p), 4097.0) << "p" << p;
  }
}

TEST(LatencyHistogram, MergedShardsWithDifferentMaximaStayBounded) {
  // Two shards whose maxima land in the SAME bucket (kSub = 16 puts
  // [4096, 4351] in one bucket): after merge, within-bucket interpolation
  // must be bounded by the merged observed max (4200), not the bucket
  // upper bound (4351), and must match the single-histogram reference.
  LatencyHistogram fast_shard, slow_shard, whole;
  for (int i = 0; i < 900; ++i) {
    fast_shard.add(4096);
    whole.add(4096);
  }
  for (int i = 0; i < 100; ++i) {
    slow_shard.add(4200);
    whole.add(4200);
  }
  fast_shard.merge(slow_shard);
  EXPECT_EQ(fast_shard.count(), whole.count());
  EXPECT_EQ(fast_shard.max(), 4200u);
  for (const double p : {50.0, 95.0, 99.0, 99.9, 100.0}) {
    EXPECT_DOUBLE_EQ(fast_shard.percentile(p), whole.percentile(p)) << "p" << p;
    EXPECT_LE(fast_shard.percentile(p), 4200.0) << "p" << p;
  }
}

TEST(LatencyHistogram, MergeOrderDoesNotChangePercentiles) {
  // Merging A into B and B into A must agree — the per-bucket observed
  // max merges elementwise, so the fold is commutative.
  LatencyHistogram ab, ba;
  Xoshiro256 rng(9);
  LatencyHistogram a, b;
  for (int i = 0; i < 5000; ++i) {
    ((i % 3) ? a : b).add(rng.below(1 << 18) + 1);
  }
  ab = a;
  ab.merge(b);
  ba = b;
  ba.merge(a);
  EXPECT_EQ(ab.count(), ba.count());
  EXPECT_EQ(ab.max(), ba.max());
  for (const double p : {10.0, 50.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(ab.percentile(p), ba.percentile(p)) << "p" << p;
  }
}

TEST(LatencyAccumulator, PercentileDelegatesToHistogram) {
  LatencyAccumulator acc;
  for (std::uint64_t v = 1; v <= 1000; ++v) acc.add(v);
  EXPECT_NEAR(acc.percentile(50), 500.0, 35.0);
  acc.reset();
  EXPECT_DOUBLE_EQ(acc.percentile(50), 0.0);
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("plain text"), "plain text");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("line1\nline2\t."), "line1\\nline2\\t.");
  EXPECT_EQ(json_escape("\r\b\f"), "\\r\\b\\f");
  EXPECT_EQ(json_escape(std::string("\x01\x1f", 2)), "\\u0001\\u001f");
}

TEST(ResultTable, JsonEscapesEmbeddedControlCharacters) {
  ResultTable t("evil\ntitle", {"col\"A"});
  t.add_row("row\\1", {1.0});
  const std::string json = t.to_json();
  EXPECT_NE(json.find("evil\\ntitle"), std::string::npos);
  EXPECT_NE(json.find("col\\\"A"), std::string::npos);
  EXPECT_NE(json.find("row\\\\1"), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);  // single-line value strings
}

TEST(ZipfSampler, MatchesAnalyticFrequencies) {
  constexpr std::size_t kN = 100;
  constexpr double kS = 0.99;
  constexpr int kSamples = 200'000;
  const ZipfSampler sampler(kN, kS);
  Xoshiro256 rng(7);
  std::vector<int> freq(kN, 0);
  for (int i = 0; i < kSamples; ++i) {
    const std::size_t r = sampler.sample(rng);
    ASSERT_LT(r, kN);
    ++freq[r];
  }
  double harmonic = 0.0;
  for (std::size_t i = 1; i <= kN; ++i) harmonic += 1.0 / std::pow(i, kS);
  // The head ranks carry enough mass for a tight empirical check.
  for (std::size_t rank = 0; rank < 5; ++rank) {
    const double expect = kSamples / (std::pow(rank + 1.0, kS) * harmonic);
    EXPECT_NEAR(freq[rank], expect, 0.05 * expect + 50) << "rank " << rank;
  }
  // Popularity is (statistically) non-increasing: rank 0 beats rank 9
  // beats rank 99 by wide margins.
  EXPECT_GT(freq[0], freq[9]);
  EXPECT_GT(freq[9], freq[99]);
}

}  // namespace
}  // namespace steins

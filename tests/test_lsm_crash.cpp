// Crash-at-persist-boundary validation for the LSM engine (fast lane:
// strided sweep; the exhaustive stride-1 matrix and the fault-folded
// variants live in test_lsm_campaign.cpp).
#include <gtest/gtest.h>

#include <string>

#include "kv/lsm/lsm_crash.hpp"
#include "test_util.hpp"

namespace steins::lsm {
namespace {

using testutil::small_config;

std::string matrix_failures(const LsmCrashMatrix& m) {
  std::string all;
  for (const auto& [boundary, detail] : m.failures) {
    all += "boundary " + std::to_string(boundary) + ": " + detail + "\n";
  }
  return all;
}

TEST(LsmCrash, StridedSweepHasNoSilentCorruptionPerScheme) {
  LsmCrashOptions opt;
  opt.ops = 72;
  for (const Scheme scheme : {Scheme::kWriteBack, Scheme::kAnubis, Scheme::kStar,
                              Scheme::kSteins, Scheme::kScue}) {
    const LsmCrashMatrix m =
        run_lsm_crash_matrix(small_config(), scheme, opt, /*stride=*/17, /*jobs=*/1);
    EXPECT_GT(m.trials, 4u);
    EXPECT_EQ(m.silent, 0u) << "scheme " << static_cast<int>(scheme) << "\n"
                            << matrix_failures(m);
    if (scheme == Scheme::kWriteBack) {
      EXPECT_EQ(m.detected, m.trials);  // WB: every crash detected unrecoverable
    } else {
      EXPECT_EQ(m.recovered + m.salvaged, m.trials);
    }
  }
}

TEST(LsmCrash, SweepCoversEveryPersistStage) {
  LsmCrashOptions opt;
  opt.ops = 72;
  const LsmCrashMatrix m =
      run_lsm_crash_matrix(small_config(), Scheme::kSteins, opt, 1, /*jobs=*/4);
  // The script + small geometry must hit every protocol stage, or the
  // sweep proves nothing about the stages it missed.
  for (const char* stage : {"wal", "flush-data", "flush-footer", "compact-data",
                            "compact-footer", "manifest-data", "manifest-commit"}) {
    EXPECT_TRUE(m.stage_trials.contains(stage)) << "stage " << stage << " never hit";
  }
  EXPECT_EQ(m.silent, 0u) << matrix_failures(m);
}

TEST(LsmCrash, SingleBoundaryReportsReproduce) {
  LsmCrashOptions opt;
  opt.ops = 48;
  opt.crash_at = 37;
  const LsmCrashReport a = run_lsm_crash_validation(small_config(), Scheme::kSteins, opt);
  const LsmCrashReport b = run_lsm_crash_validation(small_config(), Scheme::kSteins, opt);
  EXPECT_TRUE(a.pass(Scheme::kSteins)) << a.detail;
  EXPECT_EQ(a.crash_at, b.crash_at);
  EXPECT_EQ(a.crash_stage, b.crash_stage);
  EXPECT_EQ(a.committed_keys, b.committed_keys);
  EXPECT_EQ(a.total_persists, b.total_persists);
  EXPECT_EQ(std::string(lsm_crash_verdict(a, Scheme::kSteins)),
            std::string(lsm_crash_verdict(b, Scheme::kSteins)));
}

TEST(LsmCrash, MatrixIsDeterministicAcrossJobCounts) {
  LsmCrashOptions opt;
  opt.ops = 48;
  const LsmCrashMatrix seq =
      run_lsm_crash_matrix(small_config(), Scheme::kSteins, opt, 29, /*jobs=*/1);
  const LsmCrashMatrix par =
      run_lsm_crash_matrix(small_config(), Scheme::kSteins, opt, 29, /*jobs=*/4);
  EXPECT_EQ(seq.trials, par.trials);
  EXPECT_EQ(seq.recovered, par.recovered);
  EXPECT_EQ(seq.detected, par.detected);
  EXPECT_EQ(seq.salvaged, par.salvaged);
  EXPECT_EQ(seq.silent, par.silent);
  EXPECT_EQ(seq.stage_trials, par.stage_trials);
}

TEST(LsmCrash, ManifestLossIsDetectedNeverServed) {
  LsmCrashOptions opt;
  opt.ops = 48;
  opt.crash_at = LsmCrashOptions::kRandomBoundary;
  opt.manifest_loss = true;
  for (const Scheme scheme :
       {Scheme::kAnubis, Scheme::kStar, Scheme::kSteins, Scheme::kScue}) {
    const LsmCrashReport r = run_lsm_crash_validation(small_config(), scheme, opt);
    EXPECT_TRUE(r.pass(scheme)) << r.detail;
    EXPECT_TRUE(r.fault_detected) << "scheme " << static_cast<int>(scheme)
                                  << " served a lost manifest: " << r.detail;
    EXPECT_EQ(std::string(lsm_crash_verdict(r, scheme)), "detected");
  }
}

TEST(LsmCrash, TornWalTailIsReportedOnMidWalCrashes) {
  // Sweep a window of boundaries and require that at least one mid-WAL
  // crash produced a reopen that saw (and discarded) a torn tail.
  LsmCrashOptions opt;
  opt.ops = 48;
  bool saw_torn = false;
  for (std::uint64_t b = 10; b < 60 && !saw_torn; ++b) {
    opt.crash_at = b;
    const LsmCrashReport r = run_lsm_crash_validation(small_config(), Scheme::kSteins, opt);
    ASSERT_TRUE(r.pass(Scheme::kSteins)) << "boundary " << b << ": " << r.detail;
    if (r.crash_stage == "wal" && r.wal_torn) saw_torn = true;
  }
  EXPECT_TRUE(saw_torn);
}

}  // namespace
}  // namespace steins::lsm

// Table I defaults and unit conversions.
#include <gtest/gtest.h>

#include "common/config.hpp"

namespace steins {
namespace {

TEST(SystemConfig, TableIDefaults) {
  const SystemConfig cfg = default_config();
  EXPECT_EQ(cfg.cpu.cores, 8u);
  EXPECT_DOUBLE_EQ(cfg.cpu.freq_ghz, 2.0);
  EXPECT_EQ(cfg.l1.size_bytes, 32u * 1024);
  EXPECT_EQ(cfg.l1.ways, 2u);
  EXPECT_EQ(cfg.l2.size_bytes, 512u * 1024);
  EXPECT_EQ(cfg.l2.ways, 8u);
  EXPECT_EQ(cfg.l3.size_bytes, 2u * 1024 * 1024);
  EXPECT_EQ(cfg.nvm.capacity_bytes, 16ULL << 30);
  EXPECT_DOUBLE_EQ(cfg.nvm.t_wr_ns, 300.0);
  EXPECT_EQ(cfg.nvm.write_queue_entries, 64u);
  EXPECT_EQ(cfg.secure.metadata_cache.size_bytes, 256u * 1024);
  EXPECT_EQ(cfg.secure.metadata_cache.ways, 8u);
  EXPECT_EQ(cfg.secure.hash_latency_cycles, 40u);
  EXPECT_EQ(cfg.secure.nv_buffer_bytes, 128u);
  EXPECT_EQ(cfg.secure.record_lines_cached, 16u);
}

TEST(SystemConfig, NsToCyclesAt2GHz) {
  const SystemConfig cfg = default_config();
  EXPECT_EQ(cfg.ns_to_cycles(1.0), 2u);
  EXPECT_EQ(cfg.ns_to_cycles(300.0), 600u);
  EXPECT_EQ(cfg.ns_to_cycles(0.4), 1u);  // rounds up, never zero
  EXPECT_EQ(cfg.nvm_read_cycles(), cfg.ns_to_cycles(48.0 + 15.0));
  EXPECT_EQ(cfg.nvm_write_cycles(), cfg.ns_to_cycles(13.0 + 300.0));
}

TEST(SystemConfig, CyclesToSecondsRoundTrip) {
  const SystemConfig cfg = default_config();
  EXPECT_DOUBLE_EQ(cfg.cycles_to_seconds(2'000'000'000), 1.0);
}

TEST(SystemConfig, DescribeMentionsKeyParameters) {
  const SystemConfig cfg = default_config();
  const std::string d = cfg.describe();
  EXPECT_NE(d.find("16GB"), std::string::npos);
  EXPECT_NE(d.find("256KB"), std::string::npos);
  EXPECT_NE(d.find("40 cycles"), std::string::npos);
  EXPECT_NE(d.find("300 ns"), std::string::npos);
}

}  // namespace
}  // namespace steins

// Determinism differentials (ctest label: fast; also the TSan CI lane):
// every host-parallel execution path must produce bit-identical results to
// its sequential counterpart, and the arena-backed NVM line table must
// behave exactly like the reference map it replaced. These tests are the
// contract behind `--jobs N`: parallelism is a wall-clock optimization,
// never an observable one.
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "kv/ycsb.hpp"
#include "nvm/nvm_device.hpp"
#include "sim/experiment.hpp"
#include "sim/multi_controller.hpp"
#include "test_util.hpp"

namespace steins {
namespace {

using testutil::pattern_block;

SystemConfig det_config() {
  SystemConfig cfg = default_config();
  cfg.nvm.capacity_bytes = 256ULL << 20;
  return cfg;
}

// Field-by-field equality of everything a figure metric can read. A looser
// "approximately equal" here would let a racy merge hide behind rounding.
void expect_run_identical(const RunStats& a, const RunStats& b, const std::string& where) {
  EXPECT_EQ(a.cycles, b.cycles) << where;
  EXPECT_EQ(a.instructions, b.instructions) << where;
  EXPECT_EQ(a.accesses, b.accesses) << where;
  EXPECT_EQ(a.energy_nj, b.energy_nj) << where;
  EXPECT_EQ(a.read_latency_cycles, b.read_latency_cycles) << where;
  EXPECT_EQ(a.write_latency_cycles, b.write_latency_cycles) << where;
  EXPECT_EQ(a.read_latency_p50, b.read_latency_p50) << where;
  EXPECT_EQ(a.read_latency_p99, b.read_latency_p99) << where;
  EXPECT_EQ(a.write_latency_p50, b.write_latency_p50) << where;
  EXPECT_EQ(a.write_latency_p99, b.write_latency_p99) << where;
  EXPECT_EQ(a.mcache_hit_rate, b.mcache_hit_rate) << where;
  EXPECT_EQ(a.mem.data_reads, b.mem.data_reads) << where;
  EXPECT_EQ(a.mem.data_writes, b.mem.data_writes) << where;
  EXPECT_EQ(a.mem.meta_reads, b.mem.meta_reads) << where;
  EXPECT_EQ(a.mem.meta_writes, b.mem.meta_writes) << where;
  EXPECT_EQ(a.mem.hash_ops, b.mem.hash_ops) << where;
  EXPECT_EQ(a.mem.aes_ops, b.mem.aes_ops) << where;
}

void expect_hist_identical(const LatencyHistogram& a, const LatencyHistogram& b,
                           const std::string& where) {
  EXPECT_EQ(a.count(), b.count()) << where;
  EXPECT_EQ(a.max(), b.max()) << where;
  EXPECT_EQ(a.mean(), b.mean()) << where;  // identical sums, not just close
  EXPECT_EQ(a.percentile(50.0), b.percentile(50.0)) << where;
  EXPECT_EQ(a.percentile(99.0), b.percentile(99.0)) << where;
}

// The matrix runner's jobs knob must be invisible in the output for any
// worker count: fewer workers than cells, more workers than cells, and the
// degenerate single-worker pool all reduce to the jobs=1 stream.
TEST(Determinism, MatrixJobsSweepIsBitIdentical) {
  ExperimentRunner runner(det_config());
  const std::vector<std::string> wls = {"gcc", "phash"};
  const auto schemes = sc_comparison_schemes();
  const auto seq = runner.run_matrix(wls, schemes, 2000, 200, false, /*jobs=*/1);
  for (const unsigned jobs : {2u, 3u, 8u}) {
    const auto par = runner.run_matrix(wls, schemes, 2000, 200, false, jobs);
    ASSERT_EQ(seq.size(), par.size());
    for (std::size_t i = 0; i < seq.size(); ++i) {
      const std::string where = "jobs=" + std::to_string(jobs) + " " +
                                seq[i].workload + "/" + seq[i].scheme_label;
      EXPECT_EQ(seq[i].workload, par[i].workload) << where;
      EXPECT_EQ(seq[i].scheme_label, par[i].scheme_label) << where;
      expect_run_identical(seq[i].stats, par[i].stats, where);
    }
  }
}

// YCSB replay fans controllers out across worker threads; the merged
// result (counts, histograms, makespan) must match the inline replay.
TEST(Determinism, YcsbParallelReplayIsBitIdentical) {
  const SystemConfig cfg = det_config();
  kv::YcsbConfig ycfg;
  ycfg.mix = kv::Mix::kA;
  ycfg.clients = 4;
  ycfg.controllers = 4;
  ycfg.ops = 8000;
  ycfg.keys = 2000;
  ycfg.slots = std::size_t{1} << 13;
  const kv::YcsbResult seq = run_ycsb(cfg, Scheme::kSteins, ycfg);
  for (const unsigned jobs : {2u, 4u}) {
    kv::YcsbConfig pcfg = ycfg;
    pcfg.jobs = jobs;
    const kv::YcsbResult par = run_ycsb(cfg, Scheme::kSteins, pcfg);
    const std::string where = "jobs=" + std::to_string(jobs);
    EXPECT_EQ(seq.ops, par.ops) << where;
    EXPECT_EQ(seq.reads, par.reads) << where;
    EXPECT_EQ(seq.updates, par.updates) << where;
    EXPECT_EQ(seq.makespan, par.makespan) << where;
    EXPECT_EQ(seq.nvm_writes, par.nvm_writes) << where;
    expect_hist_identical(seq.read_lat, par.read_lat, where + " read_lat");
    expect_hist_identical(seq.update_lat, par.update_lat, where + " update_lat");
    expect_hist_identical(seq.all_lat, par.all_lat, where + " all_lat");
  }
}

// Aggregate recovery across controllers: the parallel walk must reach the
// same verdict, the same counts, and the same modeled time as jobs=1.
TEST(Determinism, ParallelRecoveryIsBitIdentical) {
  const SystemConfig cfg = det_config();
  auto prepare = [&] {
    auto mem = std::make_unique<MultiControllerMemory>(cfg, Scheme::kSteins, 4);
    Xoshiro256 rng(7);
    Cycle now = 0;
    for (int i = 0; i < 3000; ++i) {
      const Addr addr = rng.below(1 << 20) * kBlockSize;
      now = mem->write_block(addr, pattern_block(addr, static_cast<std::uint64_t>(i)), now);
    }
    return mem;
  };
  auto a = prepare();
  auto b = prepare();
  const RecoveryResult seq = a->crash_and_recover_all(/*jobs=*/1);
  const RecoveryResult par = b->crash_and_recover_all(/*jobs=*/4);
  EXPECT_EQ(seq.attack_detected, par.attack_detected);
  EXPECT_EQ(seq.attack_detail, par.attack_detail);
  EXPECT_EQ(seq.nodes_recovered, par.nodes_recovered);
  EXPECT_EQ(seq.blocks_salvaged, par.blocks_salvaged);
  EXPECT_EQ(seq.blocks_quarantined, par.blocks_quarantined);
  EXPECT_EQ(seq.nvm_reads, par.nvm_reads);
  EXPECT_EQ(seq.nvm_writes, par.nvm_writes);
  EXPECT_EQ(seq.seconds, par.seconds);
  // Beyond the report: the post-recovery NVM images themselves (blocks and
  // ECC-colocated tags) must be byte-identical controller by controller.
  for (unsigned c = 0; c < a->controllers(); ++c) {
    NvmDevice& da = a->controller(c).device();
    NvmDevice& db = b->controller(c).device();
    const std::vector<Addr> ra = da.resident_blocks(0, da.address_limit());
    ASSERT_EQ(ra, db.resident_blocks(0, db.address_limit())) << "controller " << c;
    for (const Addr addr : ra) {
      ASSERT_EQ(da.peek_block(addr), db.peek_block(addr)) << "controller " << c;
      ASSERT_EQ(da.read_tag(addr), db.read_tag(addr)) << "controller " << c;
    }
  }
}

// Arena differential: the open-addressed line table (raw-storage arena,
// inline tag sidecars) must be observationally identical to the plain map
// the seed used — across growth, overwrites, and sparse reads.
TEST(Determinism, LineTableMatchesReferenceMap) {
  NvmConfig ncfg;
  ncfg.capacity_bytes = 1ULL << 30;
  NvmDevice dev(ncfg);
  struct Ref {
    Block block{};
    bool has_block = false;
    std::uint64_t tag = 0;
    std::uint64_t tag2 = 0;
  };
  std::unordered_map<Addr, Ref> ref;
  Xoshiro256 rng(42);
  // Enough distinct lines to force several table growths past the 4096-slot
  // initial arena, with a skewed mix of writes, tag updates, and reads.
  for (int i = 0; i < 60000; ++i) {
    const Addr addr = rng.below(1 << 15) * kBlockSize + (Addr{1} << 22);
    const std::uint64_t pick = rng.next() % 100;
    if (pick < 50) {
      const Block b = pattern_block(addr, rng.next());
      dev.write_block(addr, b);
      Ref& r = ref[addr];
      r.block = b;
      r.has_block = true;
    } else if (pick < 65) {
      const std::uint64_t t = rng.next();
      dev.write_tag(addr, t);
      ref[addr].tag = t;
    } else if (pick < 75) {
      const std::uint64_t t = rng.next();
      dev.write_tag2(addr, t);
      ref[addr].tag2 = t;
    } else {
      const auto it = ref.find(addr);
      ASSERT_EQ(dev.contains(addr), it != ref.end() && it->second.has_block);
      const Block expect = it != ref.end() && it->second.has_block ? it->second.block : Block{};
      ASSERT_EQ(dev.peek_block(addr), expect);
      ASSERT_EQ(dev.read_tag(addr), it != ref.end() ? it->second.tag : 0u);
      ASSERT_EQ(dev.read_tag2(addr), it != ref.end() ? it->second.tag2 : 0u);
    }
  }
  // Full sweep: every reference line reads back, and residency reports the
  // exact sorted block set (order independent of hash layout).
  std::vector<Addr> expect_resident;
  for (const auto& [addr, r] : ref) {
    ASSERT_EQ(dev.peek_block(addr), r.has_block ? r.block : Block{});
    ASSERT_EQ(dev.read_tag(addr), r.tag);
    if (r.has_block) expect_resident.push_back(addr);
  }
  std::sort(expect_resident.begin(), expect_resident.end());
  EXPECT_EQ(dev.resident_blocks(0, dev.address_limit()), expect_resident);
}

}  // namespace
}  // namespace steins

// Logging levels.
#include <gtest/gtest.h>

#include "common/log.hpp"

namespace steins {
namespace {

TEST(Log, LevelRoundTrip) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(before);
}

TEST(Log, SuppressedLevelsDoNotCrash) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  // These are filtered out; the call must still be safe with formatting.
  STEINS_LOG_DEBUG("debug %d %s", 42, "suppressed");
  STEINS_LOG_INFO("info %f", 3.14);
  STEINS_LOG_WARN("warn %u", 7u);
  set_log_level(before);
}

}  // namespace
}  // namespace steins

// Fault-campaign integration tests (ctest label: campaign): the full
// verdict matrix must stay free of silent corruption, results must be
// bit-identical across thread counts, --trial must reproduce a full-run
// slot exactly, and the KV service must survive (or detect) every fault
// class at a crash boundary.
#include <gtest/gtest.h>

#include "fault/campaign.hpp"
#include "kv/kv_crash.hpp"
#include "test_util.hpp"

namespace steins {
namespace {

CampaignOptions small_campaign() {
  CampaignOptions opts;
  opts.trials = 18;  // 2 trials per fault class
  opts.seed = 42;
  opts.workload.ops = 192;
  opts.workload.footprint_blocks = 1024;
  opts.workload.capacity_mb = 8;
  return opts;
}

TEST(FaultCampaign, MatrixHasNoSilentCorruption) {
  const CampaignResult result = run_fault_campaign(small_campaign());
  EXPECT_EQ(result.silent_total(), 0u) << [&] {
    std::string all;
    for (const TrialOutcome* o : result.silent_outcomes()) {
      all += o->scheme + "/" + fault_class_name(o->cls) + " trial " +
             std::to_string(o->trial) + ": " + o->detail + "\n";
    }
    return all;
  }();
  // Every (trial, scheme) cell produced a verdict.
  EXPECT_EQ(result.outcomes.size(),
            result.options.trials * result.options.schemes.size());
  for (const TrialOutcome& o : result.outcomes) {
    EXPECT_FALSE(o.scheme.empty());
  }
  EXPECT_NE(result.to_json().find("\"silent_total\": 0"), std::string::npos);
}

TEST(FaultCampaign, ResultsAreBitIdenticalAcrossJobCounts) {
  CampaignOptions opts = small_campaign();
  opts.jobs = 1;
  const CampaignResult seq = run_fault_campaign(opts);
  opts.jobs = 4;
  const CampaignResult par = run_fault_campaign(opts);
  ASSERT_EQ(seq.outcomes.size(), par.outcomes.size());
  for (std::size_t i = 0; i < seq.outcomes.size(); ++i) {
    EXPECT_EQ(seq.outcomes[i].verdict, par.outcomes[i].verdict) << "slot " << i;
    EXPECT_EQ(seq.outcomes[i].detail, par.outcomes[i].detail) << "slot " << i;
    EXPECT_EQ(seq.outcomes[i].events, par.outcomes[i].events) << "slot " << i;
  }
}

TEST(FaultCampaign, OnlyTrialReproducesTheFullRunSlot) {
  CampaignOptions opts = small_campaign();
  opts.trials = 8;
  const CampaignResult full = run_fault_campaign(opts);
  opts.only_trial = 5;
  const CampaignResult one = run_fault_campaign(opts);
  const std::size_t schemes = full.options.schemes.size();
  ASSERT_EQ(one.outcomes.size(), schemes);
  for (std::size_t s = 0; s < schemes; ++s) {
    const TrialOutcome& want = full.outcomes[5 * schemes + s];
    const TrialOutcome& got = one.outcomes[s];
    EXPECT_EQ(got.verdict, want.verdict);
    EXPECT_EQ(got.detail, want.detail);
    EXPECT_EQ(got.events, want.events);
  }
}

class KvFaultScheme : public ::testing::TestWithParam<Scheme> {};

INSTANTIATE_TEST_SUITE_P(RecoverableSchemes, KvFaultScheme,
                         ::testing::Values(Scheme::kAnubis, Scheme::kStar, Scheme::kScue,
                                           Scheme::kSteins));

// Every fault class folded into a KV crash must end in a verified recovery
// or a detection — never a silent divergence from the committed model.
TEST_P(KvFaultScheme, SurvivesOrDetectsEveryFaultClass) {
  const SystemConfig cfg = testutil::small_config();
  for (const FaultClass cls : all_fault_classes()) {
    for (std::uint64_t seed = 1; seed <= 2; ++seed) {
      kv::KvCrashOptions opt;
      opt.ops = 24;
      opt.seed = seed;
      opt.fault_class = cls;
      opt.fault_seed = seed * 1000 + static_cast<std::uint64_t>(cls);
      const kv::KvCrashReport r = kv::run_kv_crash_validation(cfg, GetParam(), opt);
      EXPECT_TRUE(r.faulted);
      EXPECT_TRUE(r.pass(GetParam()))
          << fault_class_name(cls) << " seed " << seed << ": " << r.detail;
    }
  }
}

TEST(KvFault, CleanCrashStillVerifies) {
  kv::KvCrashOptions opt;
  opt.ops = 24;
  const kv::KvCrashReport r =
      kv::run_kv_crash_validation(testutil::small_config(), Scheme::kSteins, opt);
  EXPECT_FALSE(r.faulted);
  EXPECT_TRUE(r.verified) << r.detail;
}

}  // namespace
}  // namespace steins

// Randomized differential testing (ctest label: slow): the five schemes
// are different *protection* mechanisms over the same memory semantics, so
// a seeded trace replayed through WB / ASIT / STAR / SCUE / Steins must
// produce byte-identical plaintext on every read and leave an identical
// final data image. Any divergence means a scheme's encryption or metadata
// path altered application-visible state.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "secure/secure_memory.hpp"
#include "test_util.hpp"

namespace steins {
namespace {

constexpr std::uint64_t kFootprintBlocks = 1024;

struct TraceOp {
  bool is_write;
  Addr addr;
  Block data;  // writes only
};

std::vector<TraceOp> make_trace(std::uint64_t seed, std::uint64_t ops) {
  Xoshiro256 rng(seed);
  std::vector<TraceOp> trace;
  trace.reserve(ops);
  for (std::uint64_t i = 0; i < ops; ++i) {
    TraceOp op;
    op.is_write = rng.chance(0.6);
    op.addr = rng.below(kFootprintBlocks) * kBlockSize;
    if (op.is_write) {
      for (auto& byte : op.data) byte = static_cast<std::uint8_t>(rng.next());
    }
    trace.push_back(op);
  }
  return trace;
}

/// Replay the trace and return every read's plaintext followed by a final
/// sweep of the full footprint (the data-region image).
std::vector<Block> replay(SecureMemory& mem, const std::vector<TraceOp>& trace) {
  std::vector<Block> observed;
  Cycle now = 0;
  for (const TraceOp& op : trace) {
    if (op.is_write) {
      now = mem.write_block(op.addr, op.data, now);
    } else {
      Block out;
      now = mem.read_block(op.addr, now, &out);
      observed.push_back(out);
    }
  }
  for (std::uint64_t blk = 0; blk < kFootprintBlocks; ++blk) {
    Block out;
    now = mem.read_block(blk * kBlockSize, now, &out);
    observed.push_back(out);
  }
  return observed;
}

const std::vector<Scheme>& all_schemes() {
  static const std::vector<Scheme> schemes = {Scheme::kWriteBack, Scheme::kAnubis,
                                              Scheme::kStar, Scheme::kScue, Scheme::kSteins};
  return schemes;
}

TEST(Differential, SchemesServeByteIdenticalPlaintext) {
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    const std::vector<TraceOp> trace = make_trace(seed, 1500);

    // The model: plain map semantics, unwritten blocks read zero.
    std::map<Addr, Block> model;
    std::vector<Block> expect;
    for (const TraceOp& op : trace) {
      if (op.is_write) {
        model[op.addr] = op.data;
      } else {
        const auto it = model.find(op.addr);
        expect.push_back(it == model.end() ? zero_block() : it->second);
      }
    }
    for (std::uint64_t blk = 0; blk < kFootprintBlocks; ++blk) {
      const auto it = model.find(blk * kBlockSize);
      expect.push_back(it == model.end() ? zero_block() : it->second);
    }

    for (const Scheme scheme : all_schemes()) {
      const SystemConfig cfg = testutil::small_config();
      std::unique_ptr<SecureMemory> mem = make_scheme(scheme, cfg);
      const std::vector<Block> observed = replay(*mem, trace);
      ASSERT_EQ(observed.size(), expect.size());
      for (std::size_t i = 0; i < observed.size(); ++i) {
        ASSERT_EQ(observed[i], expect[i])
            << scheme_name(scheme, cfg.counter_mode) << " seed " << seed
            << " diverged at observation " << i;
      }
    }
  }
}

// After a flush, a clean crash, and recovery, the recoverable schemes must
// still agree on the entire data image — recovery must not perturb
// application-visible state any differently across schemes.
TEST(Differential, PostRecoveryImagesAgreeAcrossSchemes) {
  const std::vector<TraceOp> trace = make_trace(77, 1200);
  std::vector<std::vector<Block>> images;
  std::vector<Scheme> recoverable = {Scheme::kAnubis, Scheme::kStar, Scheme::kScue,
                                     Scheme::kSteins};
  for (const Scheme scheme : recoverable) {
    const SystemConfig cfg = testutil::small_config();
    std::unique_ptr<SecureMemory> mem = make_scheme(scheme, cfg);
    Cycle now = 0;
    for (const TraceOp& op : trace) {
      if (op.is_write) now = mem->write_block(op.addr, op.data, now);
    }
    dynamic_cast<SecureMemoryBase*>(mem.get())->flush_all_metadata();
    mem->crash();
    const RecoveryResult r = mem->recover();
    ASSERT_TRUE(r.ok()) << scheme_name(scheme, cfg.counter_mode) << ": " << r.attack_detail;

    std::vector<Block> image;
    for (std::uint64_t blk = 0; blk < kFootprintBlocks; ++blk) {
      Block out;
      now = mem->read_block(blk * kBlockSize, now, &out);
      image.push_back(out);
    }
    images.push_back(std::move(image));
  }
  for (std::size_t s = 1; s < images.size(); ++s) {
    ASSERT_EQ(images[s].size(), images[0].size());
    for (std::size_t i = 0; i < images[s].size(); ++i) {
      ASSERT_EQ(images[s][i], images[0][i])
          << scheme_name(recoverable[s], CounterMode::kGeneral)
          << " post-recovery image diverged from "
          << scheme_name(recoverable[0], CounterMode::kGeneral) << " at block " << i;
    }
  }
}

// Media loss must localize: killing the SIT leaf lines of two different
// subtrees takes at most those subtrees out of service. After
// crash+recovery every written block under a dead leaf must either fail
// with a *typed* unavailable error (quarantined eagerly during recovery
// like SCUE/Steins, or lazily at first touch like STAR) or read back
// byte-exact because the scheme repaired the leaf from redundancy (ASIT's
// shadow table holds a full copy of every cached node). Every surviving
// block must read back byte-identical across the schemes — wrong or stale
// plaintext anywhere is a failure.
TEST(Differential, TwoDeadSubtreesQuarantineLocallyAcrossSchemes) {
  const std::vector<TraceOp> trace = make_trace(91, 1200);
  std::map<Addr, Block> model;
  for (const TraceOp& op : trace) {
    if (op.is_write) model[op.addr] = op.data;
  }

  // Leaves 2 and 64 sit under different level-1 parents (8 leaves each);
  // they cover data blocks [16, 24) and [512, 520).
  const auto covered = [](std::uint64_t blk) {
    return (blk >= 16 && blk < 24) || (blk >= 512 && blk < 520);
  };

  const std::vector<Scheme> recoverable = {Scheme::kAnubis, Scheme::kStar,
                                           Scheme::kScue, Scheme::kSteins};
  std::vector<std::vector<Block>> images;  // surviving blocks, per scheme
  for (const Scheme scheme : recoverable) {
    const SystemConfig cfg = testutil::small_config();
    std::unique_ptr<SecureMemory> mem = make_scheme(scheme, cfg);
    const std::string label = scheme_name(scheme, cfg.counter_mode);
    Cycle now = 0;
    for (const TraceOp& op : trace) {
      if (op.is_write) now = mem->write_block(op.addr, op.data, now);
    }
    dynamic_cast<SecureMemoryBase*>(mem.get())->flush_all_metadata();
    for (const std::uint64_t leaf : {std::uint64_t{2}, std::uint64_t{64}}) {
      mem->device().inject_ecc_error(mem->geometry().node_addr(NodeId{0, leaf}), 5,
                                     /*correctable=*/false, 0);
    }
    mem->crash();
    const RecoveryResult r = mem->recover();
    ASSERT_TRUE(r.supported) << label;
    ASSERT_TRUE(r.status.ok()) << label << ": " << r.status.to_string();
    ASSERT_FALSE(r.attack_detected) << label << ": " << r.attack_detail;

    std::vector<Block> image;
    for (std::uint64_t blk = 0; blk < kFootprintBlocks; ++blk) {
      const Addr addr = blk * kBlockSize;
      if (covered(blk)) {
        // Never-written blocks under a dead leaf differ legally by scheme
        // (eager quarantine blocks them, lazy schemes still read zero).
        if (!model.contains(addr)) continue;
        Block out;
        bool threw = false;
        try {
          now = mem->read_block(addr, now, &out);
        } catch (const StatusError& e) {
          EXPECT_TRUE(is_unavailable(e.code())) << label << " block " << blk;
          threw = true;
        }
        if (!threw) {
          // The scheme repaired the dead leaf from redundancy; anything it
          // serves must then be byte-exact — never stale plaintext.
          ASSERT_EQ(out, model.at(addr))
              << label << " served wrong plaintext for block " << blk
              << " under a dead leaf";
        }
        continue;
      }
      Block out;
      now = mem->read_block(addr, now, &out);
      const auto it = model.find(addr);
      ASSERT_EQ(out, it == model.end() ? zero_block() : it->second)
          << label << " diverged from the model at surviving block " << blk;
      image.push_back(out);
    }
    images.push_back(std::move(image));
  }
  for (std::size_t s = 1; s < images.size(); ++s) {
    ASSERT_EQ(images[s].size(), images[0].size());
    for (std::size_t i = 0; i < images[s].size(); ++i) {
      ASSERT_EQ(images[s][i], images[0][i])
          << scheme_name(recoverable[s], CounterMode::kGeneral)
          << " surviving image diverged at index " << i;
    }
  }
}

}  // namespace
}  // namespace steins

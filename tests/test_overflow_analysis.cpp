// Paper §III-B2 overflow analysis, reproduced as executable checks.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sit/counter_block.hpp"

namespace steins {
namespace {

// "In the corner cases where the sum of minor counters reaches 2^6 + 1
// (immediately following a minor counter overflow), the major counter is
// increased by two. As a result, the parent counter corresponds to twice
// the number of memory writes compared to the traditional SIT model."
TEST(OverflowAnalysis, ParentCounterAtMostTwiceWriteCount) {
  // Adversarial single-slot hammering maximizes the skip-increment waste.
  SplitCounterBlock cb;
  const std::uint64_t writes = 1 << 20;
  for (std::uint64_t i = 0; i < writes; ++i) cb.increment_skip(0);
  EXPECT_LE(cb.parent_value(), 2 * writes);
  // And random traffic wastes almost nothing.
  SplitCounterBlock uniform;
  Xoshiro256 rng(1);
  for (std::uint64_t i = 0; i < writes; ++i) {
    uniform.increment_skip(static_cast<std::size_t>(rng.below(kSplitArity)));
  }
  EXPECT_LE(uniform.parent_value(), writes + writes / 8);
}

// "Assuming that the memory write latency is 300ns, the system requires
// 2^56 x 300ns (about 685 years) to overflow the 56-bit counter ...
// the 56-bit counter would require at least 342 years to overflow."
TEST(OverflowAnalysis, YearsToOverflowMatchesPaper) {
  const double write_latency_s = 300e-9;
  const double full = static_cast<double>(1ULL << 56) * write_latency_s;
  const double years = full / (365.25 * 24 * 3600);
  EXPECT_NEAR(years, 685.0, 1.0);
  // Worst case under skip-increment: counters advance twice per write.
  EXPECT_GT(years / 2.0, 342.0 - 1.0);
}

// The corner case itself: a minor overflow right after a reset yields a
// major increment of exactly ceil((sum+1)/64) and an aligned parent value.
TEST(OverflowAnalysis, CornerCaseMajorSkipsByTwo) {
  SplitCounterBlock cb;
  // Fill one minor to the brink, everything else high: sum near maximum.
  for (std::size_t i = 0; i < kSplitArity; ++i) {
    cb.minors[i] = static_cast<std::uint8_t>(kMinorMax - 1);
  }
  const std::uint64_t before = cb.parent_value();
  const auto r = cb.increment_skip(0);
  ASSERT_TRUE(r.overflowed);
  // sum = 64*63 + 1 = 4033 -> ceil(4033/64) = 64.
  EXPECT_EQ(r.major_delta, 64u);
  EXPECT_GT(cb.parent_value(), before);
  EXPECT_EQ(cb.parent_value() % kMinorMax, 0u);
}

// 56-bit wrap-around of the general counter sum: the modular arithmetic of
// Eq. (1) stays consistent between encode/decode round trips.
TEST(OverflowAnalysis, GeneralSumWrapsConsistently) {
  GeneralCounterBlock cb;
  cb.counters = {kCounter56Mask, kCounter56Mask, 2, 0, 0, 0, 0, 0};
  const std::uint64_t pv = cb.parent_value();
  EXPECT_EQ(pv, (kCounter56Mask + kCounter56Mask + 2) & kCounter56Mask);
  EXPECT_EQ(GeneralCounterBlock::decode(cb.encode()).parent_value(), pv);
}

// Property: under mixed traffic the skip-increment never loses an update —
// the parent value advances by at least one per write (uniqueness of OTPs).
TEST(OverflowAnalysis, ParentAdvancesAtLeastOncePerWrite) {
  SplitCounterBlock cb;
  Xoshiro256 rng(77);
  std::uint64_t prev = 0;
  for (int i = 0; i < 100000; ++i) {
    cb.increment_skip(static_cast<std::size_t>(rng.below(kSplitArity)));
    const std::uint64_t cur = cb.parent_value();
    ASSERT_GE(cur, prev + 1);
    prev = cur;
  }
  EXPECT_GE(prev, 100000u);
}

}  // namespace
}  // namespace steins

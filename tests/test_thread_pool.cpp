// ThreadPool: submission, results, exception propagation, job policy.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.hpp"

namespace steins {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 100; ++i) {
    futs.push_back(pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, SubmitReturnsValues) {
  ThreadPool pool(2);
  auto a = pool.submit([] { return 21; });
  auto b = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(a.get(), 21);
  EXPECT_EQ(b.get(), "ok");
}

TEST(ThreadPool, FutureRethrowsTaskException) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ForEachIndexCoversRange) {
  ThreadPool pool(4);
  std::vector<int> hits(257, 0);
  pool.for_each_index(hits.size(), [&hits](std::size_t i) { hits[i] = 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 257);
}

TEST(ThreadPool, ForEachIndexPropagatesFirstException) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  try {
    pool.for_each_index(64, [&ran](std::size_t i) {
      ran.fetch_add(1, std::memory_order_relaxed);
      if (i == 7) throw std::invalid_argument("cell 7");
    });
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "cell 7");
  }
  // Every task still ran to completion before the rethrow.
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 8; ++i) {
    futs.push_back(pool.submit([&order, i] { order.push_back(i); }));
  }
  for (auto& f : futs) f.get();
  // One worker drains the FIFO queue in submission order.
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, DefaultJobsHonoursEnv) {
  ASSERT_EQ(setenv("STEINS_JOBS", "3", 1), 0);
  EXPECT_EQ(ThreadPool::default_jobs(), 3u);
  ASSERT_EQ(setenv("STEINS_JOBS", "0", 1), 0);
  EXPECT_EQ(ThreadPool::default_jobs(), 1u);  // clamps to 1
  ASSERT_EQ(unsetenv("STEINS_JOBS"), 0);
  EXPECT_GE(ThreadPool::default_jobs(), 1u);
}

}  // namespace
}  // namespace steins

// The concurrent sharded serving engine: jobs-sweep bit-identity, group
// commit, load-aware routing, admission-queue overload shedding, and the
// crash-at-access-boundary matrix under concurrent serving.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "kv/serving.hpp"
#include "test_util.hpp"

namespace steins::kv {
namespace {

using testutil::small_config;

ServingConfig small_serving(unsigned shards, std::uint64_t ops = 6000) {
  ServingConfig scfg;
  scfg.mix = Mix::kA;
  scfg.clients = 3;
  scfg.shards = shards;
  scfg.ops = ops;
  scfg.keys = 1200;
  scfg.slots = std::size_t{1} << 12;
  scfg.seed = 11;
  scfg.epoch_ops = 512;  // several epochs even at test sizing
  return scfg;
}

void expect_identical(const ServingResult& a, const ServingResult& b,
                      const std::string& what) {
  EXPECT_EQ(a.image_digest, b.image_digest) << what;
  EXPECT_EQ(a.ops, b.ops) << what;
  EXPECT_EQ(a.reads, b.reads) << what;
  EXPECT_EQ(a.updates, b.updates) << what;
  EXPECT_EQ(a.shed_ops, b.shed_ops) << what;
  EXPECT_EQ(a.degraded_shards, b.degraded_shards) << what;
  EXPECT_EQ(a.makespan, b.makespan) << what;
  EXPECT_EQ(a.nvm_writes, b.nvm_writes) << what;
  EXPECT_EQ(a.commit_writes, b.commit_writes) << what;
  EXPECT_EQ(a.all_lat.count(), b.all_lat.count()) << what;
  for (const double p : {50.0, 95.0, 99.0, 99.9, 100.0}) {
    EXPECT_DOUBLE_EQ(a.all_lat.percentile(p), b.all_lat.percentile(p))
        << what << " p" << p;
    EXPECT_DOUBLE_EQ(a.read_lat.percentile(p), b.read_lat.percentile(p))
        << what << " p" << p;
    EXPECT_DOUBLE_EQ(a.update_lat.percentile(p), b.update_lat.percentile(p))
        << what << " p" << p;
  }
  EXPECT_DOUBLE_EQ(a.batch_sizes.mean(), b.batch_sizes.mean()) << what;
  ASSERT_EQ(a.shards.size(), b.shards.size()) << what;
  for (std::size_t s = 0; s < a.shards.size(); ++s) {
    EXPECT_EQ(a.shards[s].keys, b.shards[s].keys) << what << " shard " << s;
    EXPECT_EQ(a.shards[s].ops, b.shards[s].ops) << what << " shard " << s;
    EXPECT_EQ(a.shards[s].shed, b.shards[s].shed) << what << " shard " << s;
    EXPECT_EQ(a.shards[s].busy, b.shards[s].busy) << what << " shard " << s;
    EXPECT_EQ(a.shards[s].commit_writes, b.shards[s].commit_writes)
        << what << " shard " << s;
  }
}

TEST(KvServing, JobsSweepIsBitIdentical) {
  const SystemConfig cfg = small_config();
  const ServingConfig base = small_serving(4);
  ServingConfig scfg = base;
  scfg.jobs = 1;
  const ServingResult ref = run_sharded_serving(cfg, Scheme::kSteins, scfg);
  EXPECT_EQ(ref.ops, base.ops);
  EXPECT_GT(ref.image_digest, 0u);
  for (const unsigned jobs : {2u, 3u, 4u, 8u}) {
    scfg.jobs = jobs;
    const ServingResult got = run_sharded_serving(cfg, Scheme::kSteins, scfg);
    expect_identical(ref, got, "jobs=" + std::to_string(jobs));
  }
}

TEST(KvServing, OneShardMatchesManyShardImageAcrossJobs) {
  // Shard count changes the topology (so latencies legitimately differ),
  // but for every shard count the jobs sweep must agree with itself.
  const SystemConfig cfg = small_config();
  for (const unsigned shards : {1u, 2u}) {
    ServingConfig scfg = small_serving(shards, 3000);
    scfg.jobs = 1;
    const ServingResult a = run_sharded_serving(cfg, Scheme::kScue, scfg);
    scfg.jobs = shards;
    const ServingResult b = run_sharded_serving(cfg, Scheme::kScue, scfg);
    expect_identical(a, b, "shards=" + std::to_string(shards));
  }
}

TEST(KvServing, GroupCommitOffAndOnCommitTheSameImage) {
  // Group commit coalesces persists; it must never change WHAT is durable
  // at the end of a clean run, only how many commit-block writes it took.
  const SystemConfig cfg = small_config();
  ServingConfig scfg = small_serving(2);
  scfg.group_commit_window = 0;
  const ServingResult off = run_sharded_serving(cfg, Scheme::kSteins, scfg);
  scfg.group_commit_window = 64;
  const ServingResult on = run_sharded_serving(cfg, Scheme::kSteins, scfg);
  EXPECT_EQ(off.image_digest, on.image_digest);
  EXPECT_EQ(off.ops, on.ops);
  EXPECT_LT(on.commit_writes, off.commit_writes)
      << "group commit coalesced nothing";
  EXPECT_GT(on.batch_sizes.mean(), 1.0);
}

TEST(KvServing, LoadAwareRoutingBalancesHotKeys) {
  const SystemConfig cfg = small_config();
  ServingConfig scfg = small_serving(4);
  scfg.zipf_s = 1.2;  // aggressively hot head
  scfg.routing = Routing::kLoadAware;
  const ServingResult load = run_sharded_serving(cfg, Scheme::kSteins, scfg);
  scfg.routing = Routing::kHash;
  const ServingResult hash = run_sharded_serving(cfg, Scheme::kSteins, scfg);
  const auto imbalance = [](const ServingResult& r) {
    std::uint64_t hi = 0, lo = ~std::uint64_t{0};
    for (const ShardServingStats& s : r.shards) {
      hi = std::max(hi, s.ops);
      lo = std::min(lo, s.ops);
    }
    return static_cast<double>(hi) / static_cast<double>(std::max<std::uint64_t>(lo, 1));
  };
  EXPECT_LE(imbalance(load), imbalance(hash) + 1e-9);
  // Load-aware keeps the busiest shard's share close to fair.
  std::uint64_t busiest = 0;
  for (const ShardServingStats& s : load.shards) busiest = std::max(busiest, s.ops);
  EXPECT_LT(static_cast<double>(busiest) / static_cast<double>(load.ops), 0.5);
}

TEST(KvServing, AdmissionOverflowShedsIntoDegradedVerdicts) {
  const SystemConfig cfg = small_config();
  ServingConfig scfg = small_serving(2);
  scfg.queue_depth = 64;  // far below ops-per-epoch-per-shard
  const ServingResult r = run_sharded_serving(cfg, Scheme::kSteins, scfg);
  EXPECT_GT(r.shed_ops, 0u);
  EXPECT_GT(r.degraded_shards, 0u);
  // Shed ops are typed verdicts, never silently dropped from accounting.
  EXPECT_EQ(r.ops + r.shed_ops, r.offered_ops);
  std::uint64_t shard_shed = 0;
  for (const ShardServingStats& s : r.shards) {
    shard_shed += s.shed;
    if (s.shed > 0) EXPECT_TRUE(s.degraded);
  }
  EXPECT_EQ(shard_shed, r.shed_ops);

  // Shedding consumes client RNG identically: the unbounded run serves the
  // same offered schedule (same digest inputs differ only by what
  // executed, so just check determinism of the bounded run itself).
  const ServingResult again = run_sharded_serving(cfg, Scheme::kSteins, scfg);
  EXPECT_EQ(r.image_digest, again.image_digest);
  EXPECT_EQ(r.shed_ops, again.shed_ops);
}

TEST(KvServing, CrashBoundarySweepReportsZeroSilent) {
  // Strided sweep over the global access sequence for every scheme; any
  // silent divergence fails. WriteBack passes by being detected as
  // unrecoverable.
  const SystemConfig cfg = small_config();
  ServingConfig scfg = small_serving(2, 900);
  scfg.jobs = 2;
  for (const Scheme scheme : {Scheme::kWriteBack, Scheme::kAnubis, Scheme::kStar,
                              Scheme::kScue, Scheme::kSteins}) {
    const std::uint64_t total = count_serving_accesses(cfg, scheme, scfg);
    ASSERT_GT(total, 0u);
    const std::uint64_t stride = std::max<std::uint64_t>(total / 5, 1);
    for (std::uint64_t at = stride / 2; at < total; at += stride) {
      ServingCrashOptions opt;
      opt.crash_at = at;
      const ServingCrashReport rep = run_serving_crash(cfg, scheme, scfg, opt);
      EXPECT_TRUE(rep.pass(scheme))
          << scheme_name(scheme, cfg.counter_mode) << " at access " << at << "/"
          << total << ": " << rep.detail;
      EXPECT_EQ(rep.crash_at, at);
    }
  }
}

TEST(KvServing, CrashWithGroupCommitWindowHonorsDurableBoundary) {
  // A crash mid-window must expose exactly the commit-block writes that
  // were issued below the boundary — buffered-but-unflushed commit words
  // are legitimately lost, never silently resurrected.
  const SystemConfig cfg = small_config();
  ServingConfig scfg = small_serving(2, 900);
  scfg.group_commit_window = 32;
  const std::uint64_t total = count_serving_accesses(cfg, Scheme::kSteins, scfg);
  const std::uint64_t stride = std::max<std::uint64_t>(total / 7, 1);
  for (std::uint64_t at = stride / 3; at < total; at += stride) {
    ServingCrashOptions opt;
    opt.crash_at = at;
    const ServingCrashReport rep = run_serving_crash(cfg, Scheme::kSteins, scfg, opt);
    EXPECT_TRUE(rep.pass(Scheme::kSteins)) << "at " << at << ": " << rep.detail;
  }
}

TEST(KvServing, CrashRecoveryIsJobsIndependent) {
  const SystemConfig cfg = small_config();
  ServingConfig scfg = small_serving(4, 1200);
  const std::uint64_t total = count_serving_accesses(cfg, Scheme::kSteins, scfg);
  ServingCrashOptions opt;
  opt.crash_at = total / 2;
  scfg.jobs = 1;
  const ServingCrashReport a = run_serving_crash(cfg, Scheme::kSteins, scfg, opt);
  scfg.jobs = 4;
  const ServingCrashReport b = run_serving_crash(cfg, Scheme::kSteins, scfg, opt);
  EXPECT_EQ(a.crash_at, b.crash_at);
  EXPECT_EQ(a.committed_slots, b.committed_slots);
  EXPECT_EQ(a.verified, b.verified);
  EXPECT_EQ(a.salvaged, b.salvaged);
  EXPECT_EQ(a.detail, b.detail);
  EXPECT_TRUE(a.pass(Scheme::kSteins)) << a.detail;
}

TEST(KvServing, MultiShardThreadedRunIsClean) {
  // The TSan lane runs this filter: real worker threads, several epochs,
  // every shard exercised. Bit-identity vs jobs=1 is checked elsewhere;
  // here the point is the data-race-free execution itself.
  const SystemConfig cfg = small_config();
  ServingConfig scfg = small_serving(4, 4000);
  scfg.jobs = 4;
  const ServingResult r = run_sharded_serving(cfg, Scheme::kSteins, scfg);
  EXPECT_EQ(r.ops, scfg.ops);
  EXPECT_GT(r.image_digest, 0u);
  for (const ShardServingStats& s : r.shards) EXPECT_GT(s.ops, 0u);
}

TEST(KvServing, RejectsNonsenseConfigurations) {
  const SystemConfig cfg = small_config();
  ServingConfig scfg = small_serving(2);
  scfg.shards = 0;
  EXPECT_THROW(run_sharded_serving(cfg, Scheme::kSteins, scfg), std::invalid_argument);
  scfg = small_serving(2);
  scfg.clients = 0;
  EXPECT_THROW(run_sharded_serving(cfg, Scheme::kSteins, scfg), std::invalid_argument);
  scfg = small_serving(2);
  scfg.slots = 1000;  // not a power of two
  EXPECT_THROW(run_sharded_serving(cfg, Scheme::kSteins, scfg), std::invalid_argument);
  scfg = small_serving(2);
  scfg.keys = scfg.slots * 4;  // overflows the capacity guard
  EXPECT_THROW(run_sharded_serving(cfg, Scheme::kSteins, scfg), std::invalid_argument);
}

TEST(KvServingRouting, NamesRoundTrip) {
  EXPECT_EQ(parse_routing("hash"), Routing::kHash);
  EXPECT_EQ(parse_routing("load"), Routing::kLoadAware);
  EXPECT_EQ(parse_routing(routing_name(Routing::kHash)), Routing::kHash);
  EXPECT_EQ(parse_routing(routing_name(Routing::kLoadAware)), Routing::kLoadAware);
  EXPECT_FALSE(parse_routing("round-robin").has_value());
}

}  // namespace
}  // namespace steins::kv

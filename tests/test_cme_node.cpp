// CME engine and SIT node codec.
#include <gtest/gtest.h>

#include "secure/cme.hpp"
#include "sit/node.hpp"

namespace steins {
namespace {

Block pattern(std::uint8_t base) {
  Block b;
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = static_cast<std::uint8_t>(base + i);
  return b;
}

class CmeBothProfiles : public ::testing::TestWithParam<CryptoProfile> {};

TEST_P(CmeBothProfiles, EncryptDecryptRoundTrip) {
  CmeEngine cme(GetParam(), 1234);
  const Block pt = pattern(3);
  const Block ct = cme.encrypt(pt, 0x1000, 42);
  EXPECT_NE(ct, pt);  // ciphertext differs
  EXPECT_EQ(cme.decrypt(ct, 0x1000, 42), pt);
}

TEST_P(CmeBothProfiles, CounterChangesCiphertext) {
  CmeEngine cme(GetParam(), 1234);
  const Block pt = pattern(5);
  EXPECT_NE(cme.encrypt(pt, 0x1000, 1), cme.encrypt(pt, 0x1000, 2));
  EXPECT_NE(cme.encrypt(pt, 0x1000, 1), cme.encrypt(pt, 0x1040, 1));
}

TEST_P(CmeBothProfiles, DataMacBindsAllInputs) {
  CmeEngine cme(GetParam(), 1234);
  const Block ct = pattern(9);
  const std::uint64_t base = cme.data_mac(ct, 0x40, 7, 0);
  EXPECT_NE(base, cme.data_mac(ct, 0x80, 7, 0));   // address
  EXPECT_NE(base, cme.data_mac(ct, 0x40, 8, 0));   // counter
  EXPECT_NE(base, cme.data_mac(ct, 0x40, 7, 1));   // aux (leaf major)
  Block ct2 = ct;
  ct2[17] ^= 1;
  EXPECT_NE(base, cme.data_mac(ct2, 0x40, 7, 0));  // ciphertext
}

INSTANTIATE_TEST_SUITE_P(Profiles, CmeBothProfiles,
                         ::testing::Values(CryptoProfile::kReal, CryptoProfile::kFast),
                         [](const ::testing::TestParamInfo<CryptoProfile>& info) {
                           return info.param == CryptoProfile::kReal ? "Real" : "Fast";
                         });

TEST(SitNode, GeneralBlockRoundTripsThroughImage) {
  SitNode n;
  n.id = {2, 77};
  for (std::size_t i = 0; i < kTreeArity; ++i) {
    n.gc.counters[i] = (0x123456789abcdULL * (i + 1)) & kCounter56Mask;
  }
  const Block img = n.to_block(0xdeadbeefcafef00dULL);
  std::uint64_t mac = 0;
  const SitNode back = SitNode::from_block(n.id, false, img, &mac);
  EXPECT_TRUE(back.counters_equal(n));
  EXPECT_EQ(mac, 0xdeadbeefcafef00dULL);
  EXPECT_EQ(node_image_hmac(img), 0xdeadbeefcafef00dULL);
}

TEST(SitNode, SplitBlockRoundTripsThroughImage) {
  SitNode n;
  n.id = {0, 3};
  n.split = true;
  n.sc.major = 99;
  for (std::size_t i = 0; i < kSplitArity; ++i) {
    n.sc.minors[i] = static_cast<std::uint8_t>((i * 5) % kMinorMax);
  }
  const Block img = n.to_block(42);
  const SitNode back = SitNode::from_block(n.id, true, img);
  EXPECT_TRUE(back.counters_equal(n));
  EXPECT_EQ(back.parent_value(), n.parent_value());
}

TEST(SitNode, ParentValueDispatchesOnVariant) {
  SitNode g;
  g.gc.counters = {1, 1, 1, 1, 1, 1, 1, 1};
  EXPECT_EQ(g.parent_value(), 8u);
  SitNode s;
  s.split = true;
  s.sc.major = 1;
  EXPECT_EQ(s.parent_value(), 64u);
}

}  // namespace
}  // namespace steins

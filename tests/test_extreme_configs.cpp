// Edge configurations: the mechanisms must stay correct at the extremes of
// their resource knobs (minimal NV buffer, single cached record line, tiny
// and large metadata caches, tiny NVM).
#include <gtest/gtest.h>

#include "schemes/steins.hpp"
#include "test_util.hpp"

namespace steins {
namespace {

using testutil::Driver;
using testutil::small_config;

struct Knobs {
  std::size_t nv_buffer_bytes;
  std::size_t record_lines;
  std::size_t mcache_bytes;
  const char* name;
};

class ExtremeKnobs : public ::testing::TestWithParam<Knobs> {};

TEST_P(ExtremeKnobs, SteinsStaysCorrectAndRecoverable) {
  SystemConfig cfg = small_config(CounterMode::kGeneral, GetParam().mcache_bytes);
  cfg.secure.nv_buffer_bytes = GetParam().nv_buffer_bytes;
  cfg.secure.record_lines_cached = GetParam().record_lines;
  SteinsMemory mem(cfg);
  Driver d(mem);
  d.write_random(2000, 120'000);
  ASSERT_TRUE(d.check_all());
  mem.crash();
  const RecoveryResult r = mem.recover();
  ASSERT_TRUE(r.ok()) << r.attack_detail;
  EXPECT_TRUE(d.check_all());
}

INSTANTIATE_TEST_SUITE_P(
    Knobs, ExtremeKnobs,
    ::testing::Values(Knobs{16, 16, 16 * 1024, "one_buffer_entry"},
                      Knobs{128, 1, 16 * 1024, "one_record_line"},
                      Knobs{16, 1, 8 * 1024, "everything_minimal"},
                      Knobs{512, 64, 16 * 1024, "oversized_adr"},
                      Knobs{128, 16, 4 * 1024, "tiny_mcache"},
                      Knobs{128, 16, 128 * 1024, "large_mcache"}),
    [](const ::testing::TestParamInfo<Knobs>& info) { return info.param.name; });

TEST(ExtremeConfigs, TinyNvmCapacity) {
  // 1 MB NVM: a 3-level tree; everything must still work end to end.
  SystemConfig cfg = small_config(CounterMode::kGeneral);
  cfg.nvm.capacity_bytes = 1ULL << 20;
  SteinsMemory mem(cfg);
  Driver d(mem);
  d.write_random(1000, cfg.nvm.capacity_bytes / kBlockSize);
  mem.crash();
  ASSERT_TRUE(mem.recover().ok());
  EXPECT_TRUE(d.check_all());
}

TEST(ExtremeConfigs, SplitModeMinimalCache) {
  SystemConfig cfg = small_config(CounterMode::kSplit, 4 * 1024);
  SteinsMemory mem(cfg);
  Driver d(mem);
  for (int round = 0; round < 2; ++round) {
    d.write_random(800, 60'000);
    mem.crash();
    ASSERT_TRUE(mem.recover().ok()) << "round " << round;
    ASSERT_TRUE(d.check_all());
  }
}

}  // namespace
}  // namespace steins

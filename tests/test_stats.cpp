// Statistics plumbing: accumulators, counters, result tables.
#include <gtest/gtest.h>

#include "common/stats.hpp"

namespace steins {
namespace {

TEST(LatencyAccumulator, MeanAndMax) {
  LatencyAccumulator acc;
  EXPECT_EQ(acc.mean(), 0.0);
  acc.add(10);
  acc.add(20);
  acc.add(60);
  EXPECT_EQ(acc.count, 3u);
  EXPECT_DOUBLE_EQ(acc.mean(), 30.0);
  EXPECT_EQ(acc.max, 60u);
  acc.reset();
  EXPECT_EQ(acc.count, 0u);
}

TEST(StatSet, AccumulatesNamedCounters) {
  StatSet s;
  s.add("reads");
  s.add("reads", 4);
  s.add("writes", 2);
  EXPECT_EQ(s.get("reads"), 5u);
  EXPECT_EQ(s.get("writes"), 2u);
  EXPECT_EQ(s.get("absent"), 0u);
  EXPECT_EQ(s.all().size(), 2u);
}

TEST(ResultTable, RowsAndCsv) {
  ResultTable t("test", {"a", "b"});
  t.add_row("w1", {1.0, 2.0});
  t.add_row("w2", {3.0, 4.0});
  const std::string csv = t.to_csv(1);
  EXPECT_NE(csv.find("workload,a,b"), std::string::npos);
  EXPECT_NE(csv.find("w1,1.0,2.0"), std::string::npos);
  EXPECT_NE(csv.find("w2,3.0,4.0"), std::string::npos);
}

TEST(ResultTable, ToJsonRoundTripsStructure) {
  ResultTable t("fig \"x\"", {"a", "b"});
  t.add_row("w1", {1.0, 1.5});
  t.add_row("w2", {0.25, 4.0});
  const std::string json = t.to_json();
  EXPECT_NE(json.find("\"title\": \"fig \\\"x\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"columns\": [\"a\", \"b\"]"), std::string::npos);
  EXPECT_NE(json.find("{\"label\": \"w1\", \"values\": [1, 1.5]}"), std::string::npos);
  EXPECT_NE(json.find("{\"label\": \"w2\", \"values\": [0.25, 4]}"), std::string::npos);
}

TEST(ResultTable, GeomeanRow) {
  ResultTable t("test", {"x"});
  t.add_row("w1", {2.0});
  t.add_row("w2", {8.0});
  t.add_geomean_row();
  ASSERT_EQ(t.rows().size(), 3u);
  EXPECT_EQ(t.rows().back().first, "geomean");
  EXPECT_NEAR(t.rows().back().second[0], 4.0, 1e-9);  // sqrt(2*8)
}

TEST(ResultTable, GeomeanOfIdenticalRowsIsIdentity) {
  ResultTable t("test", {"x", "y"});
  t.add_row("a", {1.5, 0.5});
  t.add_row("b", {1.5, 0.5});
  t.add_geomean_row("gm");
  EXPECT_NEAR(t.rows().back().second[0], 1.5, 1e-12);
  EXPECT_NEAR(t.rows().back().second[1], 0.5, 1e-12);
}

}  // namespace
}  // namespace steins

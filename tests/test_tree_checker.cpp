// Whole-tree consistency checker: clean trees pass, corruption is found,
// and every scheme leaves a checkable tree after runtime and recovery.
#include <gtest/gtest.h>

#include "schemes/attack.hpp"
#include "schemes/steins.hpp"
#include "sit/tree_checker.hpp"
#include "test_util.hpp"

namespace steins {
namespace {

using testutil::Driver;
using testutil::small_config;

struct Variant {
  Scheme scheme;
  CounterMode mode;
  const char* name;
};

class TreeChecker : public ::testing::TestWithParam<Variant> {};

TEST_P(TreeChecker, CleanAfterRuntimeAndDrain) {
  auto mem = make_scheme(GetParam().scheme, small_config(GetParam().mode));
  auto* base = dynamic_cast<SecureMemoryBase*>(mem.get());
  Driver d(*mem);
  d.write_random(2000, 100'000);
  if (auto* st = dynamic_cast<SteinsMemory*>(mem.get())) {
    Cycle t = d.now();
    st->drain_nv_buffer(t);
  }
  base->channel().drain_all(d.now());
  const TreeCheckReport r = check_tree(*base);
  EXPECT_TRUE(r.ok()) << r.issues.front().what << " at level " << r.issues.front().node.level;
  EXPECT_GT(r.nodes_persisted, 0u);
}

TEST_P(TreeChecker, CleanAfterFullFlush) {
  auto mem = make_scheme(GetParam().scheme, small_config(GetParam().mode));
  auto* base = dynamic_cast<SecureMemoryBase*>(mem.get());
  Driver d(*mem);
  d.write_random(1500, 80'000);
  base->flush_all_metadata();
  const TreeCheckReport r = check_tree(*base);
  EXPECT_TRUE(r.ok()) << r.issues.front().what;
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, TreeChecker,
    ::testing::Values(Variant{Scheme::kWriteBack, CounterMode::kGeneral, "WB_GC"},
                      Variant{Scheme::kAnubis, CounterMode::kGeneral, "ASIT"},
                      Variant{Scheme::kStar, CounterMode::kGeneral, "STAR"},
                      Variant{Scheme::kSteins, CounterMode::kGeneral, "Steins_GC"},
                      Variant{Scheme::kSteins, CounterMode::kSplit, "Steins_SC"}),
    [](const ::testing::TestParamInfo<Variant>& info) { return info.param.name; });

TEST(TreeCheckerDetect, FindsTamperedNode) {
  SteinsMemory mem(small_config(CounterMode::kGeneral));
  Driver d(mem);
  d.write_random(800, 50'000);
  mem.flush_all_metadata();
  ASSERT_TRUE(check_tree(mem).ok());

  // Corrupt an arbitrary persisted leaf and expect exactly that complaint.
  const SitGeometry& geo = mem.geometry();
  AttackInjector attacker(mem);
  for (std::uint64_t i = 0; i < geo.level_count(0); ++i) {
    if (mem.device().contains(geo.node_addr({0, i}))) {
      attacker.tamper_node({0, i}, 13);
      break;
    }
  }
  const TreeCheckReport r = check_tree(mem);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.issues.front().node.level, 0u);
}

TEST(TreeCheckerDetect, CleanAfterSteinsRecovery) {
  SteinsMemory mem(small_config(CounterMode::kGeneral));
  Driver d(mem);
  d.write_random(2000, 100'000);
  mem.crash();
  ASSERT_TRUE(mem.recover().ok());
  // Flush the recovered (dirty) nodes and audit the whole tree.
  mem.flush_all_metadata();
  const TreeCheckReport r = check_tree(mem);
  EXPECT_TRUE(r.ok()) << r.issues.front().what;
}

}  // namespace
}  // namespace steins

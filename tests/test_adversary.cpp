// Adversarial scenario engine + wear model + quarantine-exhaustion tests
// (fast tier). The heavy whole-matrix sweeps live in
// test_attack_campaign.cpp under the `campaign` label; this file pins the
// DESIGN.md §III-H layer contract — replays are caught by the LInc layer,
// tampered nodes by the HMAC layer — on small per-trial workloads, plus
// the per-cell wear model and the spare-pool-exhaustion degradation path.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "fault/adversary.hpp"
#include "fault/endurance.hpp"
#include "kv/kv_crash.hpp"
#include "kv/kv_store.hpp"
#include "nvm/nvm_device.hpp"
#include "sim/system.hpp"
#include "test_util.hpp"

namespace steins {
namespace {

using testutil::Driver;
using testutil::pattern_block;
using testutil::small_config;

/// Small per-trial workload: big enough that the checkpoint flush persists
/// metadata the adversary can replay around, small enough for the fast tier.
FaultTrialOptions small_workload() {
  FaultTrialOptions w;
  w.ops = 96;
  w.footprint_blocks = 256;
  w.capacity_mb = 8;
  return w;
}

SchemeSpec spec_of(Scheme s) {
  return {s, CounterMode::kGeneral, scheme_name(s, CounterMode::kGeneral)};
}

// The detection layers DESIGN.md §III-H assigns to replayed/forged state
// (LInc sums, cache-tree roots) and to tampered images (node/data HMACs,
// parent verification) — plus the demand/patrol paths that may fire first.
const std::set<std::string> kReplayOrTamperLayers = {
    "recovery-linc", "recovery-hmac", "read", "scrub"};

TEST(AdversaryScenarios, NamesRoundTripAndAliasesParse) {
  EXPECT_EQ(all_adversary_scenarios().size(), 7u);
  for (const AdversaryScenario s : all_adversary_scenarios()) {
    const char* name = adversary_scenario_name(s);
    const auto parsed = parse_adversary_scenario(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, s) << name;
  }
  EXPECT_EQ(parse_adversary_scenario("subtree"), AdversaryScenario::kSubtreeRollback);
  EXPECT_EQ(parse_adversary_scenario("bypass"), AdversaryScenario::kNvBypassReplay);
  EXPECT_EQ(parse_adversary_scenario("forge"), AdversaryScenario::kRecordForgery);
  EXPECT_EQ(parse_adversary_scenario("wear"), AdversaryScenario::kWearOut);
  EXPECT_FALSE(parse_adversary_scenario("bogus").has_value());
}

TEST(AdversaryScenarios, PercentileOfSortedSample) {
  EXPECT_EQ(percentile({}, 50), 0u);
  EXPECT_EQ(percentile({7}, 0), 7u);
  EXPECT_EQ(percentile({7}, 100), 7u);
  const std::vector<std::uint64_t> s = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_EQ(percentile(s, 100), 10u);
  EXPECT_LE(percentile(s, 50), percentile(s, 95));
}

TEST(AdversaryScenarios, PlanDerivationIsPureAndScenarioTagged) {
  const auto a = AdversaryPlan::derive(AdversaryScenario::kNodeRollback, 42, 3);
  const auto b = AdversaryPlan::derive(AdversaryScenario::kNodeRollback, 42, 3);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.scenario, AdversaryScenario::kNodeRollback);
  // Different trial, seed, or scenario each land in a different stream.
  EXPECT_NE(a.seed, AdversaryPlan::derive(AdversaryScenario::kNodeRollback, 42, 4).seed);
  EXPECT_NE(a.seed, AdversaryPlan::derive(AdversaryScenario::kNodeRollback, 43, 3).seed);
  EXPECT_NE(a.seed, AdversaryPlan::derive(AdversaryScenario::kSubtreeRollback, 42, 3).seed);
}

TEST(AdversarySnapshot, CapturesPersistedDataAndTags) {
  const SystemConfig cfg = small_config();
  std::unique_ptr<SecureMemory> mem = make_scheme(Scheme::kSteins, cfg);
  auto* base = dynamic_cast<SecureMemoryBase*>(mem.get());
  ASSERT_NE(base, nullptr);
  Driver driver(*mem);
  for (std::uint64_t i = 0; i < 16; ++i) driver.write(i);
  base->flush_all_metadata();

  const AdversarySnapshot snap = snapshot_device(*base);
  ASSERT_FALSE(snap.empty());
  EXPECT_TRUE(snap.contains(3 * kBlockSize));
  // Same persisted state, same recording: the snapshot is a pure read.
  const AdversarySnapshot again = snapshot_device(*base);
  ASSERT_EQ(snap.lines.size(), again.lines.size());
  for (const auto& [addr, line] : snap.lines) {
    const auto it = again.lines.find(addr);
    ASSERT_NE(it, again.lines.end());
    EXPECT_EQ(line.block, it->second.block);
    EXPECT_EQ(line.tag, it->second.tag);
    EXPECT_EQ(line.tag2, it->second.tag2);
  }
}

// §III-H: a consistent-stale-state replay carries valid HMACs, so the
// tamper layer cannot see it — the LInc layer (or a parent-verification
// mismatch against fresher on-chip state) must. Every rollback variant on
// Steins is detected, at one of exactly those layers, with zero silent.
TEST(AdversaryDetection, SteinsCatchesEveryRollbackAtLIncOrHmacLayer) {
  const FaultTrialOptions w = small_workload();
  const SchemeSpec steins = spec_of(Scheme::kSteins);
  std::set<std::string> layers;
  for (const AdversaryScenario s : {AdversaryScenario::kNodeRollback,
                                    AdversaryScenario::kSubtreeRollback,
                                    AdversaryScenario::kNvBypassReplay}) {
    for (std::uint64_t trial = 0; trial < 4; ++trial) {
      const AttackOutcome o = run_attack_trial(steins, s, 42, trial, w);
      ASSERT_NE(o.trial.verdict, FaultVerdict::kSilentCorruption)
          << adversary_scenario_name(s) << " trial " << trial << ": " << o.trial.detail;
      ASSERT_GE(o.trial.faults_injected, 1u)
          << adversary_scenario_name(s) << " trial " << trial << " was a no-op";
      ASSERT_EQ(o.trial.verdict, FaultVerdict::kDetected)
          << adversary_scenario_name(s) << " trial " << trial
          << " replay not detected: " << o.trial.detail;
      EXPECT_TRUE(kReplayOrTamperLayers.count(o.trial.detect_layer))
          << "unexpected layer '" << o.trial.detect_layer << "' for "
          << adversary_scenario_name(s);
      layers.insert(o.trial.detect_layer);
    }
  }
  // The replay-detection layer must actually participate: at least one
  // trial is caught by an LInc sum, not only by HMAC tamper checks.
  EXPECT_TRUE(layers.count("recovery-linc")) << "no trial hit the LInc layer";
}

// Record forgery has two variants: erasing dirty records (recovery then
// trusts a stale image — the LInc sum disagrees) and planting plausible
// dirty records (recovery re-verifies clean state — harmless). Detected
// trials must fire at the LInc layer; harmless ones recover. Never silent.
TEST(AdversaryDetection, RecordEraseIsCaughtByLIncsAndPlantingIsHarmless) {
  const FaultTrialOptions w = small_workload();
  const SchemeSpec steins = spec_of(Scheme::kSteins);
  std::uint64_t detected = 0;
  for (std::uint64_t trial = 0; trial < 8; ++trial) {
    const AttackOutcome o =
        run_attack_trial(steins, AdversaryScenario::kRecordForgery, 42, trial, w);
    ASSERT_NE(o.trial.verdict, FaultVerdict::kSilentCorruption) << o.trial.detail;
    if (o.trial.verdict == FaultVerdict::kDetected) {
      EXPECT_EQ(o.trial.detect_layer, "recovery-linc") << o.trial.detail;
      ++detected;
    }
  }
  EXPECT_GE(detected, 1u) << "no erase-variant forgery was ever detected";
}

TEST(AdversaryDetection, TornRecordNeverSilent) {
  const FaultTrialOptions w = small_workload();
  const SchemeSpec steins = spec_of(Scheme::kSteins);
  for (std::uint64_t trial = 0; trial < 4; ++trial) {
    const AttackOutcome o =
        run_attack_trial(steins, AdversaryScenario::kTornRecord, 42, trial, w);
    ASSERT_NE(o.trial.verdict, FaultVerdict::kSilentCorruption) << o.trial.detail;
    if (o.trial.verdict == FaultVerdict::kDetected) {
      EXPECT_TRUE(kReplayOrTamperLayers.count(o.trial.detect_layer))
          << o.trial.detect_layer;
    }
  }
}

// The runtime replay lands mid-burst, so detection costs accesses: the
// latency clock must be armed (injection-to-check distance > 0) when a
// demand read or patrol scrub fires after the mutation.
TEST(AdversaryDetection, RuntimeDataReplayArmsTheLatencyClock) {
  const FaultTrialOptions w = small_workload();
  const SchemeSpec steins = spec_of(Scheme::kSteins);
  bool positive_latency = false;
  for (std::uint64_t trial = 0; trial < 4; ++trial) {
    const AttackOutcome o =
        run_attack_trial(steins, AdversaryScenario::kDataReplay, 42, trial, w);
    ASSERT_NE(o.trial.verdict, FaultVerdict::kSilentCorruption) << o.trial.detail;
    if (o.trial.verdict == FaultVerdict::kDetected && o.trial.detect_latency > 0) {
      positive_latency = true;
    }
  }
  EXPECT_TRUE(positive_latency) << "no detected replay reported a latency";
}

// Write-back has no recovery story: every scenario must end in the scheme
// declaring itself unrecoverable — never in silently serving replayed data.
TEST(AdversaryDetection, WriteBackDeclaresItselfUnrecoverable) {
  const FaultTrialOptions w = small_workload();
  const SchemeSpec wb = spec_of(Scheme::kWriteBack);
  for (const AdversaryScenario s : {AdversaryScenario::kNodeRollback,
                                    AdversaryScenario::kRecordForgery,
                                    AdversaryScenario::kDataReplay}) {
    const AttackOutcome o = run_attack_trial(wb, s, 42, 0, w);
    EXPECT_EQ(o.trial.verdict, FaultVerdict::kDetected) << adversary_scenario_name(s);
    EXPECT_EQ(o.trial.detect_layer, "unsupported") << adversary_scenario_name(s);
  }
}

// ---------------------------------------------------------------------------
// Per-cell wear model (NvmConfig::endurance_*).

TEST(WearModel, GaussianLimitsAreDeterministicPerSeed) {
  NvmConfig cfg;
  cfg.endurance_mean_writes = 100;
  cfg.endurance_sigma_writes = 10;
  cfg.wear_seed = 7;
  const NvmDevice a(cfg);
  const NvmDevice b(cfg);
  cfg.wear_seed = 8;
  const NvmDevice c(cfg);
  bool seed_changes_some_limit = false;
  for (std::uint64_t i = 0; i < 64; ++i) {
    const Addr addr = i * kBlockSize;
    const std::uint64_t limit = a.wear_limit(addr);
    EXPECT_EQ(limit, b.wear_limit(addr));
    EXPECT_GT(limit, 0u);
    // ~6 sigma around the mean — the Irwin-Hall draw cannot escape it.
    EXPECT_GE(limit, 40u);
    EXPECT_LE(limit, 160u);
    if (c.wear_limit(addr) != limit) seed_changes_some_limit = true;
  }
  EXPECT_TRUE(seed_changes_some_limit);
}

TEST(WearModel, DemandWritesAgeLinesAndLevelingPreservesData) {
  NvmConfig cfg;
  cfg.endurance_mean_writes = 20;
  cfg.endurance_sigma_writes = 2;
  cfg.remap_pool_lines = 8;
  NvmDevice dev(cfg);
  const Addr addr = 9 * kBlockSize;

  dev.write_block(addr, pattern_block(addr, 1));
  EXPECT_EQ(dev.wear_of(addr), 1u);
  // Bookkeeping pokes model attacker/controller mutations, not cell stress.
  dev.poke_block(addr, pattern_block(addr, 2));
  EXPECT_EQ(dev.wear_of(addr), 1u);

  std::uint64_t version = 2;
  while (dev.stats().lines_wear_leveled == 0 && version < 64) {
    dev.write_block(addr, pattern_block(addr, ++version));
  }
  ASSERT_GT(dev.stats().lines_wear_leveled, 0u) << "no proactive migration";
  EXPECT_EQ(dev.stats().lines_worn_out, 0u);
  // Migration to the spare preserved the latest content and reset wear.
  EXPECT_EQ(dev.read_block(addr), pattern_block(addr, version));
  EXPECT_LT(dev.wear_of(addr), version);
}

TEST(WearModel, DryPoolRunsLineToFailureWithTypedEccLoss) {
  NvmConfig cfg;
  cfg.endurance_mean_writes = 12;
  cfg.endurance_sigma_writes = 2;
  cfg.remap_pool_lines = 0;  // nothing to level or retire onto
  NvmDevice dev(cfg);
  const Addr addr = 5 * kBlockSize;
  for (std::uint64_t v = 1; v <= 40 && !dev.worn_out(addr); ++v) {
    dev.write_block(addr, pattern_block(addr, v));
  }
  ASSERT_TRUE(dev.worn_out(addr));
  EXPECT_GE(dev.stats().lines_worn_out, 1u);
  // Stuck cells: the line reads back uncorrectable, never wrong-but-clean.
  Block out{};
  EXPECT_EQ(dev.read_block_ecc(addr, &out), NvmDevice::EccRead::kUncorrectable);
  // ...and further writes cannot heal it.
  dev.write_block(addr, pattern_block(addr, 99));
  EXPECT_EQ(dev.read_block_ecc(addr, &out), NvmDevice::EccRead::kUncorrectable);
}

// ---------------------------------------------------------------------------
// Spare-pool exhaustion through the full quarantine machinery (satellite:
// retiring more lines than the pool holds must degrade typed, not crash).

TEST(QuarantineExhaustion, RetiringMoreLinesThanSparesFailsTyped) {
  SystemConfig cfg = small_config();
  cfg.nvm.remap_pool_lines = 2;
  std::unique_ptr<SecureMemory> mem = make_scheme(Scheme::kSteins, cfg);
  auto* base = dynamic_cast<SecureMemoryBase*>(mem.get());
  ASSERT_NE(base, nullptr);
  Driver driver(*mem);
  for (std::uint64_t i = 0; i < 16; ++i) driver.write(i);
  base->flush_all_metadata();

  // Kill five data lines; only two spares exist.
  const std::vector<std::uint64_t> dead = {2, 4, 6, 8, 10};
  for (const std::uint64_t idx : dead) {
    const Addr addr = idx * kBlockSize;
    mem->device().inject_ecc_error(addr, 11, /*correctable=*/false, 0);
    try {
      (void)driver.read_check(idx);
      FAIL() << "read of dead line " << idx << " returned plaintext";
    } catch (const StatusError& e) {
      EXPECT_TRUE(is_unavailable(e.code())) << e.what();
    }
  }
  EXPECT_EQ(base->ft_stats().lines_quarantined, dead.size());
  EXPECT_EQ(base->ft_stats().lines_remapped, 2u);
  EXPECT_EQ(mem->device().remap_pool_free(), 0u);

  // The two remapped lines accept fresh writes and then serve them again.
  for (const std::uint64_t idx : {dead[0], dead[1]}) {
    driver.write(idx);
    EXPECT_TRUE(driver.read_check(idx)) << "remapped line " << idx;
  }
  // The remaining three are permanently dead: reads AND writes fail with a
  // typed quarantine error — no assert, no exception escape, no plaintext.
  for (std::size_t i = 2; i < dead.size(); ++i) {
    const Addr addr = dead[i] * kBlockSize;
    Block out{};
    try {
      mem->read_block(addr, driver.now(), &out);
      FAIL() << "read of unremapped dead line succeeded";
    } catch (const StatusError& e) {
      EXPECT_EQ(e.code(), ErrorCode::kQuarantined) << e.what();
    }
    try {
      mem->write_block(addr, pattern_block(addr, 1), driver.now());
      FAIL() << "write to unremapped dead line succeeded";
    } catch (const StatusError& e) {
      EXPECT_EQ(e.code(), ErrorCode::kQuarantined) << e.what();
    }
  }
  // Healthy lines keep working throughout.
  EXPECT_TRUE(driver.read_check(1));
  EXPECT_TRUE(driver.read_check(15));
}

TEST(QuarantineExhaustion, KvStoreFreezesReadOnlyWhenPoolIsDry) {
  SystemConfig cfg = small_config();
  cfg.nvm.capacity_bytes = 16ULL << 20;
  cfg.nvm.remap_pool_lines = 0;
  System sys(cfg, Scheme::kSteins);
  kv::KvLayout layout;
  layout.slots = 256;
  kv::KvStore store(sys, layout);
  for (std::uint64_t k = 0; k < 48; ++k) {
    ASSERT_TRUE(store.try_put(k, "value-" + std::to_string(k)).ok());
  }
  ASSERT_FALSE(store.read_only());

  // Kill one resident record line; with zero spares it can never be
  // remapped, so the first mutation that touches it must freeze the store.
  NvmDevice& dev = sys.memory().device();
  const auto resident =
      dev.resident_blocks(layout.base, layout.base + 2 * layout.slots * kBlockSize);
  ASSERT_FALSE(resident.empty());
  dev.inject_ecc_error(resident[resident.size() / 2], 33, false, 0);

  Status first_failure = Status::Ok();
  for (std::uint64_t k = 0; k < 48 && first_failure.ok(); ++k) {
    first_failure = store.try_put(k, "fresh-" + std::to_string(k));
  }
  ASSERT_FALSE(first_failure.ok()) << "no put ever touched the dead line";
  EXPECT_TRUE(first_failure.code() == ErrorCode::kUncorrectable ||
              first_failure.code() == ErrorCode::kQuarantined)
      << first_failure.to_string();
  EXPECT_TRUE(store.read_only());

  // Frozen: every further mutation fails fast with the read-only status...
  EXPECT_EQ(store.try_put(1, "nope").code(), ErrorCode::kReadOnly);
  const auto erased = store.try_erase(1);
  ASSERT_FALSE(erased.has_value());
  EXPECT_EQ(erased.status().code(), ErrorCode::kReadOnly);
  // ...while surviving slots keep serving reads.
  std::uint64_t readable = 0;
  for (std::uint64_t k = 0; k < 48; ++k) {
    const auto got = store.try_get(k);
    if (got.has_value() && got.value().has_value()) ++readable;
  }
  EXPECT_GE(readable, 1u);
}

// ---------------------------------------------------------------------------
// Adversary plumbing through the KV crash harness (smoke; the scheme x
// scenario sweep lives in the campaign tier).

TEST(KvAdversary, RollbackDuringCrashIsNeverSilent) {
  kv::KvCrashOptions opt;
  opt.ops = 96;
  opt.adversary = AdversaryScenario::kSubtreeRollback;
  bool injected = false;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    opt.seed = seed;
    opt.adversary_seed = seed * 101;
    const kv::KvCrashReport r =
        kv::run_kv_crash_validation(small_config(), Scheme::kSteins, opt);
    EXPECT_TRUE(r.faulted);
    EXPECT_TRUE(r.pass(Scheme::kSteins)) << "seed " << seed << ": " << r.detail;
    injected = injected || r.adversary_injected;
  }
  EXPECT_TRUE(injected) << "no seed produced a landed mutation";
}

// ---------------------------------------------------------------------------
// Endurance projection smoke (full campaign in the campaign tier).

TEST(Endurance, ProjectionScalesWithFootprintAndEndurance) {
  EnduranceOptions opts;
  opts.accel_endurance_mean = 24;
  opts.accel_endurance_sigma = 4;
  opts.remap_pool_lines = 4;
  opts.footprint_blocks = 16;
  opts.max_writes = 20'000;
  opts.audit_every = 1024;
  const EnduranceReport rep = run_endurance_campaign(opts);
  EXPECT_EQ(rep.audit_mismatches, 0u);
  EXPECT_TRUE(rep.recovery_clean);
  EXPECT_GT(rep.writes_to_first_wearout, 0u);
  EXPECT_GT(rep.lines_worn_out, 0u);
  // accel_factor = (real/accel endurance) * (real/accel capacity).
  const double expect_factor = (opts.real_endurance_writes / 24.0) *
                               (opts.real_capacity_lines / 16.0);
  EXPECT_NEAR(rep.accel_factor, expect_factor, expect_factor * 1e-9);
  EXPECT_GT(rep.projected_years_first_wearout, 0.0);
}

}  // namespace
}  // namespace steins

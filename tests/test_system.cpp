// Full-system integration: CPU + caches + secure memory, persist semantics,
// crash/recover through the System facade, statistics plumbing.
#include <gtest/gtest.h>

#include <cstring>

#include "sim/system.hpp"
#include "trace/workloads.hpp"

namespace steins {
namespace {

SystemConfig sys_config() {
  SystemConfig cfg = default_config();
  cfg.nvm.capacity_bytes = 256ULL << 20;
  return cfg;
}

Block named_block(const char* text) {
  Block b{};
  std::strncpy(reinterpret_cast<char*>(b.data()), text, b.size() - 1);
  return b;
}

TEST(System, StoreLoadRoundTrip) {
  System sys(sys_config(), Scheme::kSteins);
  sys.store(0x10000, named_block("hello"));
  const Block got = sys.load(0x10000);
  EXPECT_STREQ(reinterpret_cast<const char*>(got.data()), "hello");
}

TEST(System, PersistSurvivesCrash) {
  System sys(sys_config(), Scheme::kSteins);
  sys.store(0x20000, named_block("committed"));
  sys.persist(0x20000);
  const RecoveryResult r = sys.crash_and_recover();
  ASSERT_TRUE(r.ok()) << r.attack_detail;
  const Block got = sys.load(0x20000);
  EXPECT_STREQ(reinterpret_cast<const char*>(got.data()), "committed");
}

TEST(System, TraceRunProducesSaneStats) {
  System sys(sys_config(), Scheme::kSteins);
  auto trace = make_workload("gcc", 20000);
  const RunStats s = sys.run(*trace);
  EXPECT_GT(s.cycles, 0u);
  EXPECT_GT(s.instructions, 0u);
  EXPECT_EQ(s.accesses, 20000u);
  EXPECT_GT(s.mem.data_reads + s.mem.data_writes, 0u);
  EXPECT_GT(s.energy_nj, 0.0);
  EXPECT_GT(s.mcache_hit_rate, 0.0);
  EXPECT_LE(s.mcache_hit_rate, 1.0);
}

TEST(System, WarmupResetsStatistics) {
  System sys(sys_config(), Scheme::kWriteBack);
  auto trace = make_workload("gcc", 10000);
  const RunStats s = sys.run(*trace, 5000);
  EXPECT_EQ(s.accesses, 5000u);  // only post-warmup accesses counted
  EXPECT_GT(s.cycles, 0u);
}

TEST(System, CrashRecoverMidWorkloadKeepsDataIntact) {
  System sys(sys_config(), Scheme::kSteins);
  auto trace = make_workload("phash", 8000);
  sys.run(*trace);
  const RecoveryResult r = sys.crash_and_recover();
  ASSERT_TRUE(r.ok()) << r.attack_detail;
  // Loads after recovery re-verify everything (System checks plaintext
  // against ground truth internally and throws on mismatch).
  MemAccess a;
  auto more = make_workload("phash", 4000);
  EXPECT_NO_THROW({
    while (more->next(&a)) sys.step(a);
  });
}

TEST(System, SchemesProduceIdenticalPlaintextBehaviour) {
  // The same trace through different schemes must behave identically at the
  // program level (the run throws on any plaintext mismatch).
  for (const auto scheme : {Scheme::kWriteBack, Scheme::kAnubis, Scheme::kStar, Scheme::kSteins}) {
    System sys(sys_config(), scheme);
    auto trace = make_workload("milc", 10000);
    EXPECT_NO_THROW(sys.run(*trace)) << scheme_name(scheme, CounterMode::kGeneral);
  }
}

TEST(System, FenceStallsShowUpInCycles) {
  // The flushed variant of the same store stream must take longer (each
  // flush waits for controller acceptance).
  SystemConfig cfg = sys_config();
  System plain(cfg, Scheme::kWriteBack);
  System flushed(cfg, Scheme::kWriteBack);
  for (int i = 0; i < 2000; ++i) {
    const Addr a = static_cast<Addr>(i) * kBlockSize;
    plain.store(a, named_block("x"));
    flushed.store(a, named_block("x"));
    flushed.persist(a);
  }
  EXPECT_GT(flushed.cpu().now(), plain.cpu().now());
}

}  // namespace
}  // namespace steins

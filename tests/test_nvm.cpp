// NVM device + channel: functional store, tags, timing discipline, write
// queue behaviour, store-forwarding.
#include <gtest/gtest.h>

#include "common/config.hpp"
#include "nvm/nvm_device.hpp"
#include "nvm/write_queue.hpp"

namespace steins {
namespace {

Block filled(std::uint8_t v) {
  Block b;
  b.fill(v);
  return b;
}

TEST(NvmDevice, UnwrittenReadsZero) {
  NvmDevice dev(NvmConfig{});
  EXPECT_EQ(dev.read_block(0x1000), zero_block());
  EXPECT_FALSE(dev.contains(0x1000));
}

TEST(NvmDevice, WriteReadRoundTripAndStats) {
  NvmDevice dev(NvmConfig{});
  dev.write_block(0x40, filled(0xab));
  EXPECT_EQ(dev.read_block(0x40), filled(0xab));
  EXPECT_EQ(dev.stats().reads, 1u);
  EXPECT_EQ(dev.stats().writes, 1u);
  EXPECT_GT(dev.stats().energy_nj, 0.0);
}

TEST(NvmDevice, TagsRideAlong) {
  NvmDevice dev(NvmConfig{});
  dev.write_tag(0x80, 0xdeadbeef);
  dev.write_tag2(0x80, 0x1234);
  const auto reads_before = dev.stats().reads;
  EXPECT_EQ(dev.read_tag(0x80), 0xdeadbeefu);
  EXPECT_EQ(dev.read_tag2(0x80), 0x1234u);
  EXPECT_EQ(dev.stats().reads, reads_before);  // sidecars are free
}

TEST(NvmDevice, SubBlockAddressesAlias) {
  NvmDevice dev(NvmConfig{});
  dev.write_block(0x100, filled(1));
  EXPECT_EQ(dev.read_block(0x13f), filled(1));
}

TEST(NvmDevice, WritesBeyondAddressLimitThrow) {
  NvmDevice dev(NvmConfig{});
  const Addr limit = dev.address_limit();
  EXPECT_NO_THROW(dev.write_block(limit - kBlockSize, filled(1)));
  EXPECT_THROW(dev.write_block(limit, filled(1)), std::out_of_range);
  EXPECT_THROW(dev.poke_block(limit + kBlockSize, filled(1)), std::out_of_range);
  EXPECT_THROW(dev.write_tag(limit, 1), std::out_of_range);
  EXPECT_THROW(dev.write_tag2(limit, 1), std::out_of_range);
  // Reads stay total: an out-of-range read is a zero block, not a crash,
  // so probes during recovery can never bring the device model down.
  EXPECT_EQ(dev.peek_block(limit + kBlockSize), zero_block());
}

TEST(NvmDevice, ResidentBlocksAreSortedAndBounded) {
  NvmDevice dev(NvmConfig{});
  dev.write_block(0x200, filled(1));
  dev.write_block(0x80, filled(2));
  dev.write_block(0x140, filled(3));
  dev.write_tag(0x200, 7);
  const auto blocks = dev.resident_blocks(0x100, 0x240);
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_EQ(blocks[0], 0x140u);
  EXPECT_EQ(blocks[1], 0x200u);
  const auto tags = dev.resident_tags(0, 0x1000);
  ASSERT_EQ(tags.size(), 1u);
  EXPECT_EQ(tags[0], 0x200u);
}

TEST(NvmChannel, ReadLatencyMatchesArrayTiming) {
  const SystemConfig cfg = default_config();
  NvmDevice dev(cfg.nvm);
  NvmChannel ch(cfg, dev);
  Block out;
  const Cycle done = ch.read(0x40, 100, &out);
  EXPECT_EQ(done, 100 + cfg.nvm_read_cycles());
}

TEST(NvmChannel, WritesDrainInGaps) {
  const SystemConfig cfg = default_config();
  NvmDevice dev(cfg.nvm);
  NvmChannel ch(cfg, dev);
  ch.write(0x40, filled(1), 0);
  EXPECT_EQ(ch.queue_depth(), 1u);
  // Much later, the write should have drained before the read arrives.
  Block out;
  ch.read(0x4000, 10'000'000, &out);
  EXPECT_EQ(ch.queue_depth(), 0u);
  EXPECT_TRUE(dev.contains(0x40));
}

TEST(NvmChannel, StoreForwardingReturnsQueuedData) {
  const SystemConfig cfg = default_config();
  NvmDevice dev(cfg.nvm);
  NvmChannel ch(cfg, dev);
  ch.write(0x40, filled(7), 0);
  Block out;
  const Cycle done = ch.read(0x40, 0, &out);  // same cycle: still queued
  EXPECT_EQ(out, filled(7));
  EXPECT_LE(done, NvmChannel::kForwardCycles);
}

TEST(NvmChannel, QueueFullStallsProducer) {
  SystemConfig cfg = default_config();
  cfg.nvm.write_queue_entries = 4;
  NvmDevice dev(cfg.nvm);
  NvmChannel ch(cfg, dev);
  Cycle now = 0;
  for (int i = 0; i < 16; ++i) {
    now = ch.write(static_cast<Addr>(i) * 64, filled(1), now);
  }
  EXPECT_GT(ch.stats().write_queue_stalls, 0u);
  EXPECT_LE(ch.queue_depth(), 4u);
}

TEST(NvmChannel, DrainAllPersistsEverything) {
  const SystemConfig cfg = default_config();
  NvmDevice dev(cfg.nvm);
  NvmChannel ch(cfg, dev);
  for (int i = 0; i < 10; ++i) ch.write(static_cast<Addr>(i) * 64, filled(2), 0);
  ch.drain_all(0);
  EXPECT_EQ(ch.queue_depth(), 0u);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(dev.contains(static_cast<Addr>(i) * 64));
}

TEST(NvmChannel, DrainIsFifoPerAddress) {
  // Same-address writes must reach the device in posting order: the last
  // posted value wins, and its tag travels in the same transaction.
  const SystemConfig cfg = default_config();
  NvmDevice dev(cfg.nvm);
  NvmChannel ch(cfg, dev);
  const std::uint64_t t1 = 0x11, t2 = 0x22, t3 = 0x33;
  ch.write(0x40, filled(1), 0, nullptr, 0, &t1);
  ch.write(0x40, filled(2), 0, nullptr, 0, &t2);
  ch.write(0x40, filled(3), 0, nullptr, 0, &t3);
  ch.drain_all(0);
  EXPECT_EQ(dev.peek_block(0x40), filled(3));
  EXPECT_EQ(dev.read_tag(0x40), t3);
}

TEST(NvmChannel, PeekQueuedTagForwardsNewest) {
  const SystemConfig cfg = default_config();
  NvmDevice dev(cfg.nvm);
  NvmChannel ch(cfg, dev);
  std::uint64_t tag = 0;
  EXPECT_FALSE(ch.peek_queued_tag(0x40, &tag));
  const std::uint64_t t1 = 0xaa, t2 = 0xbb;
  ch.write(0x40, filled(1), 0, nullptr, 0, &t1);
  ch.write(0x40, filled(2), 0, nullptr, 0, &t2);
  ch.write(0x80, filled(3), 0);  // tagless write must not shadow 0x40
  ASSERT_TRUE(ch.peek_queued_tag(0x40, &tag));
  EXPECT_EQ(tag, t2);
  ch.drain_all(0);
  EXPECT_FALSE(ch.peek_queued_tag(0x40, &tag));
}

TEST(NvmChannel, CrashDrainWithoutHookPersistsEverything) {
  const SystemConfig cfg = default_config();
  NvmDevice dev(cfg.nvm);
  NvmChannel ch(cfg, dev);
  const std::uint64_t tag = 0x77;
  for (int i = 0; i < 6; ++i) {
    ch.write(static_cast<Addr>(i) * 64, filled(4), 0, nullptr, 0, &tag);
  }
  ch.crash_drain_all(0);
  EXPECT_EQ(ch.queue_depth(), 0u);
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(dev.contains(static_cast<Addr>(i) * 64));
    EXPECT_EQ(dev.read_tag(static_cast<Addr>(i) * 64), tag);
  }
}

TEST(NvmChannel, WriteLatencyAttribution) {
  const SystemConfig cfg = default_config();
  NvmDevice dev(cfg.nvm);
  NvmChannel ch(cfg, dev);
  LatencyAccumulator acc;
  ch.write(0x40, filled(3), 100, &acc, /*birth=*/50);
  ch.drain_all(200);
  EXPECT_EQ(acc.count, 1u);
  EXPECT_GE(acc.sum, cfg.nvm_write_cycles());
}

TEST(NvmChannel, ReadAfterWriteTurnaroundPenalty) {
  const SystemConfig cfg = default_config();
  NvmDevice dev(cfg.nvm);
  NvmChannel ch(cfg, dev);
  ch.write(0x40, filled(1), 0);
  ch.drain_all(0);  // device just finished a write
  Block out;
  const Cycle free_at = ch.device_free_at();
  const Cycle done = ch.read(0x4000, free_at, &out);
  EXPECT_EQ(done, free_at + cfg.ns_to_cycles(cfg.nvm.t_wtr_ns) + cfg.nvm_read_cycles());
}

}  // namespace
}  // namespace steins

// NVM device + channel: functional store, tags, timing discipline, write
// queue behaviour, store-forwarding.
#include <gtest/gtest.h>

#include "common/config.hpp"
#include "nvm/nvm_device.hpp"
#include "nvm/write_queue.hpp"

namespace steins {
namespace {

Block filled(std::uint8_t v) {
  Block b;
  b.fill(v);
  return b;
}

TEST(NvmDevice, UnwrittenReadsZero) {
  NvmDevice dev(NvmConfig{});
  EXPECT_EQ(dev.read_block(0x1000), zero_block());
  EXPECT_FALSE(dev.contains(0x1000));
}

TEST(NvmDevice, WriteReadRoundTripAndStats) {
  NvmDevice dev(NvmConfig{});
  dev.write_block(0x40, filled(0xab));
  EXPECT_EQ(dev.read_block(0x40), filled(0xab));
  EXPECT_EQ(dev.stats().reads, 1u);
  EXPECT_EQ(dev.stats().writes, 1u);
  EXPECT_GT(dev.stats().energy_nj, 0.0);
}

TEST(NvmDevice, TagsRideAlong) {
  NvmDevice dev(NvmConfig{});
  dev.write_tag(0x80, 0xdeadbeef);
  dev.write_tag2(0x80, 0x1234);
  const auto reads_before = dev.stats().reads;
  EXPECT_EQ(dev.read_tag(0x80), 0xdeadbeefu);
  EXPECT_EQ(dev.read_tag2(0x80), 0x1234u);
  EXPECT_EQ(dev.stats().reads, reads_before);  // sidecars are free
}

TEST(NvmDevice, SubBlockAddressesAlias) {
  NvmDevice dev(NvmConfig{});
  dev.write_block(0x100, filled(1));
  EXPECT_EQ(dev.read_block(0x13f), filled(1));
}

TEST(NvmChannel, ReadLatencyMatchesArrayTiming) {
  const SystemConfig cfg = default_config();
  NvmDevice dev(cfg.nvm);
  NvmChannel ch(cfg, dev);
  Block out;
  const Cycle done = ch.read(0x40, 100, &out);
  EXPECT_EQ(done, 100 + cfg.nvm_read_cycles());
}

TEST(NvmChannel, WritesDrainInGaps) {
  const SystemConfig cfg = default_config();
  NvmDevice dev(cfg.nvm);
  NvmChannel ch(cfg, dev);
  ch.write(0x40, filled(1), 0);
  EXPECT_EQ(ch.queue_depth(), 1u);
  // Much later, the write should have drained before the read arrives.
  Block out;
  ch.read(0x4000, 10'000'000, &out);
  EXPECT_EQ(ch.queue_depth(), 0u);
  EXPECT_TRUE(dev.contains(0x40));
}

TEST(NvmChannel, StoreForwardingReturnsQueuedData) {
  const SystemConfig cfg = default_config();
  NvmDevice dev(cfg.nvm);
  NvmChannel ch(cfg, dev);
  ch.write(0x40, filled(7), 0);
  Block out;
  const Cycle done = ch.read(0x40, 0, &out);  // same cycle: still queued
  EXPECT_EQ(out, filled(7));
  EXPECT_LE(done, NvmChannel::kForwardCycles);
}

TEST(NvmChannel, QueueFullStallsProducer) {
  SystemConfig cfg = default_config();
  cfg.nvm.write_queue_entries = 4;
  NvmDevice dev(cfg.nvm);
  NvmChannel ch(cfg, dev);
  Cycle now = 0;
  for (int i = 0; i < 16; ++i) {
    now = ch.write(static_cast<Addr>(i) * 64, filled(1), now);
  }
  EXPECT_GT(ch.stats().write_queue_stalls, 0u);
  EXPECT_LE(ch.queue_depth(), 4u);
}

TEST(NvmChannel, DrainAllPersistsEverything) {
  const SystemConfig cfg = default_config();
  NvmDevice dev(cfg.nvm);
  NvmChannel ch(cfg, dev);
  for (int i = 0; i < 10; ++i) ch.write(static_cast<Addr>(i) * 64, filled(2), 0);
  ch.drain_all(0);
  EXPECT_EQ(ch.queue_depth(), 0u);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(dev.contains(static_cast<Addr>(i) * 64));
}

TEST(NvmChannel, WriteLatencyAttribution) {
  const SystemConfig cfg = default_config();
  NvmDevice dev(cfg.nvm);
  NvmChannel ch(cfg, dev);
  LatencyAccumulator acc;
  ch.write(0x40, filled(3), 100, &acc, /*birth=*/50);
  ch.drain_all(200);
  EXPECT_EQ(acc.count, 1u);
  EXPECT_GE(acc.sum, cfg.nvm_write_cycles());
}

TEST(NvmChannel, ReadAfterWriteTurnaroundPenalty) {
  const SystemConfig cfg = default_config();
  NvmDevice dev(cfg.nvm);
  NvmChannel ch(cfg, dev);
  ch.write(0x40, filled(1), 0);
  ch.drain_all(0);  // device just finished a write
  Block out;
  const Cycle free_at = ch.device_free_at();
  const Cycle done = ch.read(0x4000, free_at, &out);
  EXPECT_EQ(done, free_at + cfg.ns_to_cycles(cfg.nvm.t_wtr_ns) + cfg.nvm_read_cycles());
}

}  // namespace
}  // namespace steins

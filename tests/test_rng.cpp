// Deterministic RNG and samplers.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"

namespace steins {
namespace {

TEST(SplitMix64, KnownSequence) {
  // SplitMix64 reference: seed 0 produces these first outputs.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(sm.next(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(sm.next(), 0x06c45d188009454fULL);
}

TEST(Xoshiro256, DeterministicPerSeed) {
  Xoshiro256 a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
    EXPECT_NE(va, c.next());  // overwhelmingly likely
  }
}

TEST(Xoshiro256, BelowStaysInRange) {
  Xoshiro256 rng(7);
  for (const std::uint64_t bound : {1ull, 2ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound) << "bound " << bound;
    }
  }
}

TEST(Xoshiro256, UniformInUnitInterval) {
  Xoshiro256 rng(9);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Xoshiro256, BelowRoughlyUniform) {
  Xoshiro256 rng(11);
  std::vector<int> buckets(8, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++buckets[rng.below(8)];
  for (const int b : buckets) {
    EXPECT_NEAR(static_cast<double>(b), n / 8.0, n * 0.01);
  }
}

TEST(ZipfSampler, SkewsTowardLowRanks) {
  Xoshiro256 rng(5);
  ZipfSampler zipf(1000, 1.0);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.sample(rng)];
  EXPECT_GT(counts[0], counts[9] * 2);
  EXPECT_GT(counts[0], counts[99] * 10);
}

TEST(ZipfSampler, CoversWholeRange) {
  Xoshiro256 rng(6);
  ZipfSampler zipf(4, 0.5);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 10000; ++i) {
    const std::size_t s = zipf.sample(rng);
    ASSERT_LT(s, 4u);
    ++counts[s];
  }
  for (const int c : counts) EXPECT_GT(c, 0);
}

}  // namespace
}  // namespace steins

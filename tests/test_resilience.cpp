// Runtime fault-tolerance unit tests: the Status taxonomy, the per-line
// ECC model, read-retry and quarantine on the demand path, patrol scrub,
// quarantine-map persistence, salvage-mode recovery, and the KV store's
// degraded API.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "common/status.hpp"
#include "fault/campaign.hpp"
#include "kv/kv_store.hpp"
#include "nvm/nvm_device.hpp"
#include "secure/resilience.hpp"
#include "secure/secure_memory.hpp"
#include "sim/system.hpp"
#include "test_util.hpp"

namespace steins {
namespace {

using testutil::Driver;
using testutil::pattern_block;
using testutil::small_config;

TEST(StatusTaxonomy, CodesAndUnavailability) {
  EXPECT_TRUE(Status::Ok().ok());
  const Status s(ErrorCode::kQuarantined, "line 64");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kQuarantined);
  EXPECT_NE(s.to_string().find("quarantined"), std::string::npos);

  EXPECT_TRUE(is_unavailable(ErrorCode::kUncorrectable));
  EXPECT_TRUE(is_unavailable(ErrorCode::kQuarantined));
  EXPECT_TRUE(is_unavailable(ErrorCode::kReadOnly));
  EXPECT_FALSE(is_unavailable(ErrorCode::kIntegrity));
  EXPECT_FALSE(is_unavailable(ErrorCode::kInvariant));
  EXPECT_FALSE(is_unavailable(ErrorCode::kOk));
}

TEST(StatusTaxonomy, SteinsCheckThrowsTypedInvariant) {
  try {
    STEINS_CHECK(1 + 1 == 3, "arithmetic broke");
    FAIL() << "STEINS_CHECK did not throw";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvariant);
    EXPECT_NE(std::string(e.what()).find("arithmetic broke"), std::string::npos);
  }
}

TEST(NvmEcc, CorrectableFaultRecoversGoldenAfterRetries) {
  NvmDevice dev(NvmConfig{});
  const Addr addr = 3 * kBlockSize;
  const Block golden = pattern_block(addr, 1);
  dev.write_block(addr, golden);
  dev.inject_ecc_error(addr, 17, /*correctable=*/true, /*retries=*/2);

  // The raw stored image is corrupted; ECC needs two re-reads to lock on.
  EXPECT_NE(dev.peek_block(addr), golden);
  Block out{};
  EXPECT_EQ(dev.read_block_ecc(addr, &out), NvmDevice::EccRead::kNeedsRetry);
  EXPECT_EQ(dev.read_block_ecc(addr, &out), NvmDevice::EccRead::kNeedsRetry);
  EXPECT_EQ(dev.read_block_ecc(addr, &out), NvmDevice::EccRead::kCorrected);
  EXPECT_EQ(out, golden);
}

TEST(NvmEcc, SecondFaultEscalatesAndWriteClears) {
  NvmDevice dev(NvmConfig{});
  const Addr addr = 5 * kBlockSize;
  dev.write_block(addr, pattern_block(addr, 1));
  dev.inject_ecc_error(addr, 1, true, 0);
  dev.inject_ecc_error(addr, 2, true, 0);  // exceeds the correction budget
  EXPECT_TRUE(dev.ecc_uncorrectable(addr));
  bool uncorrectable = false;
  (void)dev.peek_corrected(addr, &uncorrectable);
  EXPECT_TRUE(uncorrectable);

  // A full-line write lays down a fresh codeword.
  dev.write_block(addr, pattern_block(addr, 2));
  EXPECT_FALSE(dev.ecc_faulted(addr));
}

TEST(NvmEcc, RemapConsumesPoolAndDropsStaleImages) {
  NvmConfig cfg;
  cfg.remap_pool_lines = 1;
  NvmDevice dev(cfg);
  const Addr addr = 7 * kBlockSize;
  dev.write_block(addr, pattern_block(addr, 1));
  dev.write_tag(addr, 0xabcd);
  dev.inject_ecc_error(addr, 9, false, 0);

  EXPECT_TRUE(dev.remap_line(addr));
  EXPECT_EQ(dev.remap_pool_free(), 0u);
  EXPECT_FALSE(dev.ecc_faulted(addr));
  EXPECT_FALSE(dev.contains(addr));  // the spare starts blank
  EXPECT_EQ(dev.read_tag(addr), 0u);
  EXPECT_FALSE(dev.remap_line(addr));  // pool exhausted
}

TEST(ResilientRead, CorrectableFaultIsAbsorbedWithRetries) {
  const SystemConfig cfg = small_config();
  std::unique_ptr<SecureMemory> mem = make_scheme(Scheme::kSteins, cfg);
  auto* base = dynamic_cast<SecureMemoryBase*>(mem.get());
  Driver driver(*mem);
  for (std::uint64_t i = 0; i < 16; ++i) driver.write(i);
  base->flush_all_metadata();

  mem->device().inject_ecc_error(4 * kBlockSize, 100, true, 2);
  EXPECT_TRUE(driver.read_check(4));  // exact plaintext despite the fault
  EXPECT_GE(base->ft_stats().read_retries, 2u);
  EXPECT_GE(base->ft_stats().corrected_reads, 1u);
}

TEST(ResilientRead, UncorrectableFaultQuarantinesAndRewriteHeals) {
  const SystemConfig cfg = small_config();
  std::unique_ptr<SecureMemory> mem = make_scheme(Scheme::kSteins, cfg);
  auto* base = dynamic_cast<SecureMemoryBase*>(mem.get());
  Driver driver(*mem);
  for (std::uint64_t i = 0; i < 16; ++i) driver.write(i);
  base->flush_all_metadata();

  const Addr addr = 6 * kBlockSize;
  mem->device().inject_ecc_error(addr, 42, false, 0);
  Cycle now = driver.now();
  Block out{};
  try {
    mem->read_block(addr, now, &out);
    FAIL() << "dead line served a read";
  } catch (const StatusError& e) {
    EXPECT_TRUE(is_unavailable(e.code()));
  }
  EXPECT_TRUE(base->quarantine().has_line(addr));
  EXPECT_GE(base->ft_stats().uncorrectable_reads, 1u);

  // The line was remapped to a spare: a fresh write re-arms it.
  now = mem->write_block(addr, pattern_block(addr, 99), now);
  now = mem->read_block(addr, now, &out);
  EXPECT_EQ(out, pattern_block(addr, 99));
}

TEST(PatrolScrub, CorrectsMarginalLinesAndRetiresDeadOnes) {
  SystemConfig cfg = small_config();
  cfg.secure.ft.scrub_lines_per_epoch = 64;
  std::unique_ptr<SecureMemory> mem = make_scheme(Scheme::kSteins, cfg);
  auto* base = dynamic_cast<SecureMemoryBase*>(mem.get());
  Driver driver(*mem);
  for (std::uint64_t i = 0; i < 32; ++i) driver.write(i);
  base->flush_all_metadata();

  mem->device().inject_ecc_error(2 * kBlockSize, 7, true, 1);
  mem->device().inject_ecc_error(9 * kBlockSize, 8, false, 0);

  Cycle now = driver.now();
  for (int e = 0; e < 8; ++e) base->scrub_epoch(now);

  const FtStats& ft = base->ft_stats();
  EXPECT_GE(ft.scrub_passes, 1u);
  EXPECT_GE(ft.scrub_corrected, 1u);  // marginal line rewritten in place
  EXPECT_GE(ft.scrub_detected, 1u);   // dead line found by patrol
  EXPECT_FALSE(mem->device().ecc_faulted(2 * kBlockSize));
  EXPECT_TRUE(base->quarantine().has_line(9 * kBlockSize));
  EXPECT_TRUE(driver.read_check(2));  // scrubbed line serves exact data
}

TEST(QuarantineMap, PersistLoadRoundTripAndCorruptionRejected) {
  NvmDevice dev(NvmConfig{});
  const Addr base = dev.address_limit() - (Addr{64} << 10);

  QuarantineMap map;
  map.add_line(128, QuarantineReason::kEccData, /*remapped=*/true);
  map.add_range(4096, 8192, QuarantineReason::kLost);
  map.persist(dev, base);

  QuarantineMap loaded;
  ASSERT_TRUE(loaded.load(dev, base));
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.line_count(), 1u);
  EXPECT_EQ(loaded.range_count(), 1u);
  EXPECT_TRUE(loaded.read_blocked(128));
  EXPECT_FALSE(loaded.write_blocked(128));  // remapped: fresh writes allowed
  EXPECT_TRUE(loaded.read_blocked(5000));
  EXPECT_TRUE(loaded.write_blocked(5000));
  EXPECT_FALSE(loaded.read_blocked(9000));

  // A corrupted header must load as empty, not block arbitrary addresses.
  Block hdr = dev.peek_block(base);
  hdr[0] ^= 0xff;
  dev.poke_block(base, hdr);
  QuarantineMap rejected;
  EXPECT_FALSE(rejected.load(dev, base));
  EXPECT_TRUE(rejected.empty());
}

TEST(SalvageRecovery, DeadSitLeafQuarantinesItsSubtreeOnly) {
  const SystemConfig cfg = small_config();
  std::unique_ptr<SecureMemory> mem = make_scheme(Scheme::kSteins, cfg);
  auto* base = dynamic_cast<SecureMemoryBase*>(mem.get());
  Driver driver(*mem);
  // Blocks 88..111 span SIT leaves 11, 12, and 13 (8 blocks per leaf).
  for (std::uint64_t b = 88; b < 112; ++b) driver.write(b);
  base->flush_all_metadata();

  const NodeId dead_leaf{0, 12};
  mem->device().inject_ecc_error(mem->geometry().node_addr(dead_leaf), 13,
                                 /*correctable=*/false, 0);
  mem->crash();
  const RecoveryReport r = mem->recover();

  // Media loss is not an attack; the subtree is quarantined, nothing else.
  EXPECT_TRUE(r.supported);
  EXPECT_TRUE(r.status.ok()) << r.status.to_string();
  EXPECT_FALSE(r.attack_detected) << r.attack_detail;
  EXPECT_TRUE(r.degraded());
  EXPECT_GE(r.subtrees_quarantined, 1u);
  EXPECT_FALSE(r.linc_unverified.empty());  // LInc proves nothing when lossy

  // Covered blocks 96..103 fail typed; both sibling subtrees read exact.
  Cycle now = driver.now();
  for (std::uint64_t b = 96; b < 104; ++b) {
    Block out{};
    try {
      now = mem->read_block(b * kBlockSize, now, &out);
      FAIL() << "quarantined block " << b << " served a read";
    } catch (const StatusError& e) {
      EXPECT_EQ(e.code(), ErrorCode::kQuarantined);
    }
  }
  for (std::uint64_t b = 88; b < 96; ++b) EXPECT_TRUE(driver.read_check(b)) << b;
  for (std::uint64_t b = 104; b < 112; ++b) EXPECT_TRUE(driver.read_check(b)) << b;
}

TEST(KvDegraded, TypedErrorsAndReadOnlyMode) {
  SystemConfig cfg = small_config();
  cfg.nvm.capacity_bytes = 16ULL << 20;
  System sys(cfg, Scheme::kSteins);
  kv::KvLayout layout;
  layout.slots = 256;
  kv::KvStore store(sys, layout);
  for (std::uint64_t k = 0; k < 48; ++k) {
    store.put(k, "value-" + std::to_string(k));
  }

  // Kill one resident record line inside the store's region, then crash.
  NvmDevice& dev = sys.memory().device();
  const auto resident =
      dev.resident_blocks(layout.base, layout.base + 2 * layout.slots * kBlockSize);
  ASSERT_FALSE(resident.empty());
  dev.inject_ecc_error(resident[resident.size() / 2], 21, false, 0);

  const RecoveryReport r = sys.crash_and_recover();
  ASSERT_TRUE(r.status.ok()) << r.status.to_string();
  ASSERT_FALSE(r.attack_detected) << r.attack_detail;
  sys.resync_truth_after_crash();

  kv::KvStore reopened(sys, layout);
  reopened.apply_recovery_report(r);
  EXPECT_FALSE(reopened.read_only());  // attack-free salvage stays writable

  std::uint64_t ok = 0, unavailable = 0;
  for (std::uint64_t k = 0; k < 48; ++k) {
    const auto got = reopened.try_get(k);
    if (!got.has_value()) {
      EXPECT_TRUE(is_unavailable(got.status().code())) << got.status().to_string();
      ++unavailable;
      continue;
    }
    ASSERT_TRUE(got.value().has_value()) << "key " << k << " silently missing";
    EXPECT_EQ(*got.value(), "value-" + std::to_string(k));
    ++ok;
  }
  EXPECT_GE(unavailable, 1u);  // the dead line took at least one key out
  EXPECT_GE(ok, 1u);           // but the store keeps serving the rest
  const auto dump = reopened.dump_degraded();
  EXPECT_EQ(dump.live.size(), ok);
  EXPECT_GE(dump.slots_unavailable, 1u);

  // Read-only mode: mutations fail typed, reads keep working.
  reopened.set_read_only(true);
  const Status put_status = reopened.try_put(1, "new");
  EXPECT_EQ(put_status.code(), ErrorCode::kReadOnly);
  const auto erase_result = reopened.try_erase(1);
  EXPECT_FALSE(erase_result.has_value());
  EXPECT_EQ(erase_result.status().code(), ErrorCode::kReadOnly);
}

TEST(KvDegraded, AttackReportFreezesTheStore) {
  SystemConfig cfg = small_config();
  cfg.nvm.capacity_bytes = 16ULL << 20;
  System sys(cfg, Scheme::kSteins);
  kv::KvLayout layout;
  layout.slots = 64;
  kv::KvStore store(sys, layout);
  RecoveryReport attacked;
  attacked.attack_detected = true;
  store.apply_recovery_report(attacked);
  EXPECT_TRUE(store.read_only());
  EXPECT_EQ(store.try_put(1, "x").code(), ErrorCode::kReadOnly);
}

TEST(Campaign, EmptyCampaignThrowsInvalidArgument) {
  CampaignOptions opts;
  opts.trials = 0;
  EXPECT_THROW(run_fault_campaign(opts), std::invalid_argument);
  opts.only_trial = 3;  // an explicit single-trial reproduction is fine
  opts.trials = 0;
  opts.schemes = {{Scheme::kSteins, CounterMode::kGeneral, "Steins-GC"}};
  opts.classes = {FaultClass::kNone};
  opts.workload.ops = 32;
  opts.workload.footprint_blocks = 128;
  opts.workload.capacity_mb = 4;
  const CampaignResult r = run_fault_campaign(opts);
  EXPECT_EQ(r.outcomes.size(), 1u);
}

}  // namespace
}  // namespace steins

// Recovery-time attack detection (paper §III-D / §III-H): tampering is
// caught by HMACs, replay by the LIncs / cache-tree roots, record forgery
// by the LInc comparison.
#include <gtest/gtest.h>

#include <cstring>

#include "schemes/anubis.hpp"
#include "schemes/attack.hpp"
#include "schemes/star.hpp"
#include "schemes/steins.hpp"
#include "test_util.hpp"

namespace steins {
namespace {

using testutil::Driver;
using testutil::dirty_snapshot;
using testutil::small_config;

/// Find a dirty internal node (level >= 1) whose first child exists in NVM.
/// Returns false if none exists.
bool find_dirty_internal_with_child(SecureMemoryBase& mem, NodeId* node, NodeId* child) {
  bool found = false;
  const SitGeometry& geo = mem.geometry();
  mem.metadata_cache().for_each([&](const MetadataLine& line) {
    if (found || !line.dirty || line.payload.id.level == 0) return;
    const NodeId id = line.payload.id;
    for (std::size_t j = 0; j < geo.num_children(id); ++j) {
      const NodeId c = geo.child_of(id, j);
      if (mem.device().contains(geo.node_addr(c))) {
        *node = id;
        *child = c;
        found = true;
        return;
      }
    }
  });
  return found;
}

TEST(SteinsAttacks, TamperedChildDetectedDuringRecovery) {
  SteinsMemory mem(small_config(CounterMode::kGeneral));
  Driver d(mem);
  d.write_random(3000, 150'000);
  NodeId node, child;
  ASSERT_TRUE(find_dirty_internal_with_child(mem, &node, &child));

  mem.crash();
  AttackInjector attacker(mem);
  attacker.tamper_node(child, 10);
  const RecoveryResult r = mem.recover();
  EXPECT_TRUE(r.attack_detected);
  EXPECT_NE(r.attack_detail.find("tamper"), std::string::npos) << r.attack_detail;
}

TEST(SteinsAttacks, ReplayedChildDetectedDuringRecovery) {
  SteinsMemory mem(small_config(CounterMode::kGeneral));
  Driver d(mem, 7);
  d.write_random(1500, 120'000);
  // Snapshot a persisted child of a future dirty node, then advance it.
  NodeId node, child;
  ASSERT_TRUE(find_dirty_internal_with_child(mem, &node, &child));
  AttackInjector attacker(mem);
  attacker.record_node(child);

  // Keep writing: the child's persistent version advances as it gets
  // evicted and re-flushed.
  d.write_random(3000, 120'000);
  mem.crash();

  // Only replay if the child's image actually changed; otherwise the
  // snapshot is a no-op and no attack happened.
  const Addr caddr = mem.geometry().node_addr(child);
  const Block current = mem.device().peek_block(caddr);
  ASSERT_TRUE(attacker.replay_block(caddr));
  if (mem.device().peek_block(caddr) == current) {
    GTEST_SKIP() << "child image did not advance; replay is a no-op";
  }
  const RecoveryResult r = mem.recover();
  EXPECT_TRUE(r.attack_detected) << "replayed child must not verify";
}

TEST(SteinsAttacks, ErasedRecordsDetected) {
  SteinsMemory mem(small_config(CounterMode::kGeneral));
  Driver d(mem);
  d.write_random(2000, 120'000);
  Cycle t = d.now();
  mem.drain_nv_buffer(t);
  const auto dirty = dirty_snapshot(mem);
  ASSERT_FALSE(dirty.empty());
  mem.crash();

  // Forge the record region: mark everything clean (dirty -> clean attack,
  // §III-H). The per-level increments then sum to less than the LIncs.
  AttackInjector attacker(mem);
  const Addr base = mem.geometry().aux_base();
  const std::size_t lines = (mem.metadata_cache().num_lines() + 15) / 16;
  for (std::size_t i = 0; i < lines; ++i) {
    attacker.overwrite_block(base + i * kBlockSize, zero_block());
  }
  const RecoveryResult r = mem.recover();
  EXPECT_TRUE(r.attack_detected);
  EXPECT_NE(r.attack_detail.find("LInc"), std::string::npos) << r.attack_detail;
}

TEST(SteinsAttacks, MarkingCleanNodesDirtyIsHarmless) {
  SteinsMemory mem(small_config(CounterMode::kGeneral));
  Driver d(mem);
  // Small enough that some metadata-cache lines were never dirtied, leaving
  // empty record slots to forge.
  d.write_random(200, 100'000);
  Cycle t = d.now();
  mem.drain_nv_buffer(t);
  const auto dirty_before = dirty_snapshot(mem);
  mem.crash();

  // Forge extra record entries pointing at clean nodes (clean -> dirty
  // direction, §III-H): recovery must still succeed, with increment 0 for
  // the clean nodes.
  AttackInjector attacker(mem);
  const SitGeometry& geo = mem.geometry();
  const Addr base = geo.aux_base();
  const std::size_t lines = (mem.metadata_cache().num_lines() + 15) / 16;
  // Point empty record slots (any line) at clean leaves that exist in NVM.
  int planted = 0;
  std::uint64_t leaf = 0;
  for (std::size_t li = 0; li < lines && planted < 2; ++li) {
    const Addr laddr = base + li * kBlockSize;
    Block forged = mem.device().peek_block(laddr);
    bool changed = false;
    for (std::size_t s = 0; s < 16 && planted < 2; ++s) {
      std::uint32_t off;
      std::memcpy(&off, forged.data() + s * 4, 4);
      if (off != 0) continue;
      // Find the next clean, persisted leaf to plant.
      for (; leaf < geo.level_count(0); ++leaf) {
        const NodeId id{0, leaf};
        if (!mem.device().contains(geo.node_addr(id))) continue;
        if (dirty_before.contains(geo.offset_of(id))) continue;
        off = geo.offset_of(id) + 1;
        std::memcpy(forged.data() + s * 4, &off, 4);
        ++planted;
        changed = true;
        ++leaf;
        break;
      }
    }
    if (changed) attacker.overwrite_block(laddr, forged);
  }
  ASSERT_GT(planted, 0);

  const RecoveryResult r = mem.recover();
  EXPECT_FALSE(r.attack_detected) << r.attack_detail;
  EXPECT_TRUE(d.check_all());
}

TEST(SteinsAttacks, ReplayedDataBlockDetected) {
  SteinsMemory mem(small_config(CounterMode::kGeneral));
  Driver d(mem);
  d.write(77);
  mem.flush_all_metadata();
  AttackInjector attacker(mem);
  attacker.record_block(77 * kBlockSize);
  // Advance the block so its leaf is dirty at crash time.
  d.write(77);
  d.write(77);
  mem.crash();
  ASSERT_TRUE(attacker.replay_block(77 * kBlockSize));
  const RecoveryResult r = mem.recover();
  EXPECT_TRUE(r.attack_detected);
}

TEST(AnubisAttacks, TamperedShadowEntryDetected) {
  AnubisMemory mem(small_config(CounterMode::kGeneral));
  Driver d(mem);
  d.write_random(1500, 100'000);
  mem.crash();
  AttackInjector attacker(mem);
  // The shadow table starts at aux_base; corrupt one entry that exists.
  const Addr base = mem.geometry().aux_base();
  for (std::size_t i = 0; i < mem.metadata_cache().num_lines(); ++i) {
    if (mem.device().contains(base + i * kBlockSize)) {
      attacker.tamper_block(base + i * kBlockSize, 8);
      break;
    }
  }
  const RecoveryResult r = mem.recover();
  EXPECT_TRUE(r.attack_detected);
  EXPECT_NE(r.attack_detail.find("root"), std::string::npos) << r.attack_detail;
}

TEST(StarAttacks, ForgedBitmapDetected) {
  StarMemory mem(small_config(CounterMode::kGeneral));
  Driver d(mem);
  d.write_random(1500, 100'000);
  const auto dirty = dirty_snapshot(mem);
  ASSERT_FALSE(dirty.empty());
  mem.crash();

  // Clear the bitmap line covering one dirty node (dirty -> clean forgery):
  // the recovered dirty set then disagrees with the cache-tree root.
  AttackInjector attacker(mem);
  const auto& [offset, node] = *dirty.begin();
  const Addr base = mem.geometry().aux_base();
  const Addr line_addr = base + (offset / 512) * kBlockSize;
  Block line = mem.device().peek_block(line_addr);
  const std::size_t bit = offset % 512;
  line[bit / 8] = static_cast<std::uint8_t>(line[bit / 8] & ~(1u << (bit % 8)));
  attacker.overwrite_block(line_addr, line);
  (void)node;

  const RecoveryResult r = mem.recover();
  EXPECT_TRUE(r.attack_detected);
}

TEST(StarAttacks, ReplayedChildLsbsDetected) {
  StarMemory mem(small_config(CounterMode::kGeneral));
  Driver d(mem, 11);
  d.write_random(1500, 120'000);
  NodeId node, child;
  ASSERT_TRUE(find_dirty_internal_with_child(mem, &node, &child));
  AttackInjector attacker(mem);
  attacker.record_node(child);
  d.write_random(3000, 120'000);
  mem.crash();
  const Addr caddr = mem.geometry().node_addr(child);
  const Block current = mem.device().peek_block(caddr);
  ASSERT_TRUE(attacker.replay_block(caddr));
  if (mem.device().peek_block(caddr) == current) {
    GTEST_SKIP() << "child image did not advance; replay is a no-op";
  }
  const RecoveryResult r = mem.recover();
  EXPECT_TRUE(r.attack_detected);
}

}  // namespace
}  // namespace steins

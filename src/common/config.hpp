// System configuration: the paper's Table I, expressed as data.
//
// All latencies the paper gives in nanoseconds are converted to CPU cycles
// at the configured clock (2 GHz default => 1 cycle = 0.5 ns).
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace steins {

/// Which leaf-node counter organization a scheme instance uses.
/// GC = general counter block (8 x 56-bit counters, covers 8 data blocks).
/// SC = split counter block (64-bit major + 64 x 6-bit minors, covers 64).
enum class CounterMode { kGeneral, kSplit };

/// Functional crypto profile. kReal runs AES-128 CTR for OTPs and
/// HMAC-SHA256 (truncated to 64 bits) for MACs; kFast substitutes
/// SipHash-2-4 MACs and a SipHash-derived OTP with identical control flow
/// and traffic, for fast figure benches. Timing is modeled identically.
enum class CryptoProfile { kReal, kFast };

/// SIT update policy (paper §II-C). The paper's schemes use lazy updates;
/// eager is kept for the ablation bench.
enum class UpdatePolicy { kLazy, kEager };

struct CpuConfig {
  unsigned cores = 8;              // Table I (modeled as a single trace stream)
  double freq_ghz = 2.0;           // 2 GHz
};

struct CacheConfig {
  std::size_t size_bytes = 0;
  unsigned ways = 0;
  std::size_t block_bytes = kBlockSize;
};

struct NvmConfig {
  std::uint64_t capacity_bytes = std::uint64_t{16} * 1024 * 1024 * 1024;  // 16 GB
  // PCM latency model (Table I), nanoseconds.
  double t_rcd_ns = 48.0;
  double t_cl_ns = 15.0;
  double t_cwd_ns = 13.0;
  double t_faw_ns = 50.0;
  double t_wtr_ns = 7.5;
  double t_wr_ns = 300.0;
  unsigned write_queue_entries = 64;
  // Energy model (typical PCM array numbers; only relative values matter
  // for the normalized figures).
  double read_energy_nj = 3.5;    // per 64 B array read
  double write_energy_nj = 22.0;  // per 64 B array write
  // Spare-line pool for retiring ECC-uncorrectable 64 B lines. A retired
  // line keeps accepting fresh writes; once the pool is exhausted further
  // dead lines fail fast and stay quarantined.
  std::size_t remap_pool_lines = 32;
  // --- Per-cell wear / endurance model (0 mean = disabled) ----------------
  // Every demand-path 64 B write increments the line's wear count. Each
  // line draws a Gaussian endurance limit (Irwin-Hall approximation, so the
  // draw is bit-deterministic across platforms) seeded by (wear_seed, line
  // address). Crossing wear_level_fraction of the limit triggers a
  // proactive wear-leveling migration to a spare from the remap pool (data
  // preserved, wear reset); once the pool is dry the line runs to failure
  // and further writes leave it with stuck cells — an uncorrectable ECC
  // fault that the quarantine/retirement machinery then handles.
  std::uint64_t endurance_mean_writes = 0;
  std::uint64_t endurance_sigma_writes = 0;
  std::uint64_t wear_seed = 1;
  double wear_level_fraction = 0.9;
};

/// Runtime fault-tolerance knobs (ECC read-retry, patrol scrub,
/// quarantine). Scrub is off by default so figure benches keep their
/// baseline traffic; fault campaigns and the scrub CLI turn it on.
struct FaultToleranceConfig {
  bool ecc_enabled = true;              // model per-line ECC on data reads
  unsigned max_read_retries = 3;        // bounded retry before declaring loss
  Cycle retry_backoff_cycles = 32;      // base backoff, doubled per retry
  std::uint64_t scrub_interval_accesses = 0;  // patrol epoch; 0 disables
  unsigned scrub_lines_per_epoch = 8;   // budget per patrol epoch
  bool scrub_verify_macs = true;        // patrol also MAC-verifies data lines
};

struct SecureConfig {
  CacheConfig metadata_cache{256 * 1024, 8, kBlockSize};  // 256 KB, 8-way
  unsigned hash_latency_cycles = 40;                      // Table I
  unsigned aes_latency_cycles = 40;                       // OTP pipeline depth
  std::size_t nv_buffer_bytes = 128;                      // parent-counter buffer
  std::size_t record_lines_cached = 16;                   // record lines in MC
  // Energy of on-chip crypto and SRAM ops (nJ); relative values only.
  double hash_energy_nj = 0.9;
  double aes_energy_nj = 0.6;
  double cache_access_energy_nj = 0.05;
  // Recovery read+verify cost per metadata block, ns (paper §IV-D).
  double recovery_read_ns = 100.0;
  FaultToleranceConfig ft;
};

struct SystemConfig {
  CpuConfig cpu;
  CacheConfig l1{32 * 1024, 2, kBlockSize};    // 32 KB, 2-way
  CacheConfig l2{512 * 1024, 8, kBlockSize};   // 512 KB, 8-way
  CacheConfig l3{2 * 1024 * 1024, 8, kBlockSize};  // 2 MB, 8-way
  NvmConfig nvm;
  SecureConfig secure;
  CounterMode counter_mode = CounterMode::kGeneral;
  CryptoProfile crypto = CryptoProfile::kFast;
  UpdatePolicy update_policy = UpdatePolicy::kLazy;

  /// Convert nanoseconds to CPU cycles (rounded up; latencies never round
  /// down to zero).
  Cycle ns_to_cycles(double ns) const;

  /// Convert cycles back to seconds.
  double cycles_to_seconds(Cycle c) const;

  /// NVM array read latency (row activate + CAS), cycles.
  Cycle nvm_read_cycles() const { return ns_to_cycles(nvm.t_rcd_ns + nvm.t_cl_ns); }

  /// NVM array write occupancy (write recovery dominates for PCM), cycles.
  Cycle nvm_write_cycles() const { return ns_to_cycles(nvm.t_cwd_ns + nvm.t_wr_ns); }

  /// Human-readable dump (used by bench/tab1_config to reproduce Table I).
  std::string describe() const;
};

/// The paper's Table I configuration.
SystemConfig default_config();

}  // namespace steins

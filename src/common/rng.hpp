// Deterministic pseudo-random generators used by trace generation and tests.
//
// xoshiro256** (Blackman & Vigna) seeded via SplitMix64, plus uniform and
// Zipf samplers. Header-only for inlining in trace-generation hot loops.
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace steins {

/// SplitMix64: used to expand a single 64-bit seed into xoshiro state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Derive an independent child seed for stream `stream` of a top-level
/// `seed`. Two SplitMix64 finalizer hops decorrelate nearby (seed, stream)
/// pairs, unlike linear arithmetic on the seed (seed*k + i), where
/// neighbouring shards land on neighbouring SplitMix64 inputs and the
/// expanded xoshiro states can share long stretches of output. Parallel
/// shards (KV clients, per-controller workers) must seed through this.
constexpr std::uint64_t derive_stream_seed(std::uint64_t seed, std::uint64_t stream) {
  SplitMix64 outer(seed);
  SplitMix64 inner(outer.next() + stream);
  return inner.next();
}

/// xoshiro256**: fast, high-quality, deterministic PRNG.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed = 0x5eed5eed5eed5eedULL) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) {
    assert(bound > 0);
    // 128-bit multiply trick (Lemire); slight modulo bias is irrelevant for
    // workload generation but this avoids division entirely.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

/// Zipf-distributed sampler over [0, n) with exponent s, using the
/// precomputed-CDF method (exact, O(log n) per sample).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s) : cdf_(n) {
    assert(n > 0);
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = sum;
    }
    for (auto& c : cdf_) c /= sum;
  }

  std::size_t sample(Xoshiro256& rng) const {
    const double u = rng.uniform();
    // Binary search for the first CDF entry >= u.
    std::size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace steins

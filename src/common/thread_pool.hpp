// Fixed-size thread pool for embarrassingly parallel simulation work.
//
// Deliberately simple — one shared FIFO queue, no work stealing: experiment
// cells are coarse (hundreds of thousands of simulated accesses each), so
// queue contention is negligible and FIFO keeps scheduling deterministic
// enough to reason about. Exceptions thrown by a task are captured in the
// task's future and rethrown at get().
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace steins {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a nullary callable; the returned future yields its result or
  /// rethrows its exception.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run fn(i) for every i in [0, n) across the pool and wait for all of
  /// them. The first exception (lowest index) is rethrown after every task
  /// has finished, so no task is left running against destroyed state.
  void for_each_index(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Job-count policy shared by every CLI entry point: STEINS_JOBS if set
  /// (values < 1 clamp to 1), else hardware_concurrency (min 1).
  static unsigned default_jobs();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Persistent per-shard worker gang with a full epoch barrier, built for the
/// concurrent KV serving engine: `shards` fixed work slots are statically
/// partitioned over `jobs` long-lived threads (shard s runs on thread
/// s % jobs), so a shard's epochs always execute on the same thread in
/// program order. `run_epoch(fn)` invokes fn(shard) for every shard and
/// returns only after ALL shards finished (the barrier) — between epochs no
/// worker touches shared state, which is what makes merge-at-barrier stats
/// and deterministic cross-shard exchange safe without per-access locks.
///
/// jobs == 1 is the sequential reference path: no threads are spawned and
/// every epoch runs shards 0..N-1 in order on the calling thread. Engines
/// built on ShardGang are bit-identical across jobs values by construction
/// as long as per-shard work only reads/writes per-shard state plus
/// barrier-exchanged snapshots.
///
/// Exceptions: the first error by lowest shard index is rethrown from
/// run_epoch after the barrier completes, so no worker is left running
/// against destroyed state (same contract as ThreadPool::for_each_index).
class ShardGang {
 public:
  ShardGang(std::size_t shards, unsigned jobs);
  ~ShardGang();

  ShardGang(const ShardGang&) = delete;
  ShardGang& operator=(const ShardGang&) = delete;

  std::size_t shards() const { return shards_; }
  /// Actual worker count after clamping to [1, shards].
  unsigned jobs() const { return jobs_; }

  /// Run fn(shard) for every shard in [0, shards) and wait for all of them
  /// (full barrier). Not reentrant; call from one coordinating thread.
  void run_epoch(const std::function<void(std::size_t)>& fn);

 private:
  void gang_loop(unsigned worker);

  std::size_t shards_;
  unsigned jobs_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t epoch_ = 0;     // bumped to release workers into an epoch
  std::size_t remaining_ = 0;   // workers still running the current epoch
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::vector<std::exception_ptr> errors_;  // per shard, cleared each epoch
  bool stop_ = false;
};

}  // namespace steins

// Fixed-size thread pool for embarrassingly parallel simulation work.
//
// Deliberately simple — one shared FIFO queue, no work stealing: experiment
// cells are coarse (hundreds of thousands of simulated accesses each), so
// queue contention is negligible and FIFO keeps scheduling deterministic
// enough to reason about. Exceptions thrown by a task are captured in the
// task's future and rethrown at get().
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace steins {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a nullary callable; the returned future yields its result or
  /// rethrows its exception.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run fn(i) for every i in [0, n) across the pool and wait for all of
  /// them. The first exception (lowest index) is rethrown after every task
  /// has finished, so no task is left running against destroyed state.
  void for_each_index(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Job-count policy shared by every CLI entry point: STEINS_JOBS if set
  /// (values < 1 clamp to 1), else hardware_concurrency (min 1).
  static unsigned default_jobs();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace steins

// Minimal leveled logging. Off by default so simulation hot paths stay clean;
// tests and examples can raise the level to trace scheme behaviour.
#pragma once

#include <cstdio>
#include <string>

namespace steins {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Global log level; defaults to kWarn.
LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_line(LogLevel level, const std::string& msg);
}

template <typename... Args>
void logf(LogLevel level, const char* fmt, Args... args) {
  if (static_cast<int>(level) > static_cast<int>(log_level())) return;
  char buf[512];
  std::snprintf(buf, sizeof(buf), fmt, args...);
  detail::log_line(level, buf);
}

#define STEINS_LOG_ERROR(...) ::steins::logf(::steins::LogLevel::kError, __VA_ARGS__)
#define STEINS_LOG_WARN(...) ::steins::logf(::steins::LogLevel::kWarn, __VA_ARGS__)
#define STEINS_LOG_INFO(...) ::steins::logf(::steins::LogLevel::kInfo, __VA_ARGS__)
#define STEINS_LOG_DEBUG(...) ::steins::logf(::steins::LogLevel::kDebug, __VA_ARGS__)

}  // namespace steins

#include "common/config.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace steins {

Cycle SystemConfig::ns_to_cycles(double ns) const {
  const double cycles = ns * cpu.freq_ghz;
  return static_cast<Cycle>(std::ceil(cycles));
}

double SystemConfig::cycles_to_seconds(Cycle c) const {
  return static_cast<double>(c) / (cpu.freq_ghz * 1e9);
}

std::string SystemConfig::describe() const {
  std::ostringstream os;
  char buf[160];
  auto line = [&](const char* fmt, auto... args) {
    std::snprintf(buf, sizeof(buf), fmt, args...);
    os << buf << "\n";
  };
  os << "Processor\n";
  line("  CPU                  %u cores, X86-64, %.1f GHz", cpu.cores, cpu.freq_ghz);
  line("  Private L1i/d cache  %zuKB, %u-way, LRU, %zuB block", l1.size_bytes / 1024, l1.ways,
       l1.block_bytes);
  line("  Shared L2 cache      %zuKB, %u-way, LRU, %zuB block", l2.size_bytes / 1024, l2.ways,
       l2.block_bytes);
  line("  Shared L3 cache      %zuMB, %u-way, LRU, %zuB block", l3.size_bytes / (1024 * 1024),
       l3.ways, l3.block_bytes);
  os << "DDR-based NVM\n";
  line("  Capacity             %lluGB",
       static_cast<unsigned long long>(nvm.capacity_bytes / (1024ULL * 1024 * 1024)));
  line("  PCM latency model    tRCD/tCL/tCWD/tFAW/tWTR/tWR = %.0f/%.0f/%.0f/%.0f/%.1f/%.0f ns",
       nvm.t_rcd_ns, nvm.t_cl_ns, nvm.t_cwd_ns, nvm.t_faw_ns, nvm.t_wtr_ns, nvm.t_wr_ns);
  line("  Write queue          %u entries", nvm.write_queue_entries);
  os << "Secure Parameters\n";
  line("  Metadata cache       %zuKB, %u-way, LRU, %zuB block",
       secure.metadata_cache.size_bytes / 1024, secure.metadata_cache.ways,
       secure.metadata_cache.block_bytes);
  line("  SIT                  %s counter leaves, 8-way, 64B block",
       counter_mode == CounterMode::kSplit ? "split (8 levels)" : "general (9 levels)");
  line("  Hash latency         %u cycles", secure.hash_latency_cycles);
  line("  Non-volatile buffer  %zuB", secure.nv_buffer_bytes);
  line("  Offset records       %zu lines cached in memory controller",
       secure.record_lines_cached);
  return os.str();
}

SystemConfig default_config() { return SystemConfig{}; }

}  // namespace steins

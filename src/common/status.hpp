// Error taxonomy for the runtime fault-tolerance layer.
//
// Recovery and degraded-mode paths must never abort the process: a media
// fault is an expected outcome, not a programming error. Status carries a
// machine-checkable code plus a human-readable message; StatusError is its
// exception envelope for paths that cannot return one (the SecureMemory
// read/write interface); Expected<T> is the value-or-Status return shape
// for the KV layer's non-throwing API.
//
// STEINS_CHECK replaces assert() on mutation/recovery invariants: it stays
// active under NDEBUG (Release builds must stop at a broken invariant, not
// silently corrupt) and throws a typed kInvariant error instead of calling
// abort(), so a fault campaign can tell an internal bug from a detected
// attack.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace steins {

enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,  // caller misuse (bad config, empty campaign)
  kUnsupported,      // the scheme cannot perform the operation (WB recovery)
  kIntegrity,        // an HMAC/root check fired (tampering or torn state)
  kUncorrectable,    // ECC could not repair the line; its content is lost
  kQuarantined,      // the address is inside a quarantined line/subtree
  kUnavailable,      // derived unavailability (KV slot behind a dead line)
  kReadOnly,         // the store is in read-only degraded mode
  kInvariant,        // an internal invariant broke (always a bug)
  kInternal,         // unexpected exception escaped a recovery path
};

const char* error_code_name(ErrorCode code);

/// True for codes that mean "this datum is legitimately unreadable in a
/// degraded system" — the outcomes a salvage-aware caller tolerates, as
/// opposed to integrity violations and internal bugs.
inline bool is_unavailable(ErrorCode code) {
  return code == ErrorCode::kUncorrectable || code == ErrorCode::kQuarantined ||
         code == ErrorCode::kUnavailable || code == ErrorCode::kReadOnly;
}

class [[nodiscard]] Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string to_string() const {
    if (ok()) return "OK";
    return std::string(error_code_name(code_)) + ": " + message_;
  }

 private:
  ErrorCode code_;
  std::string message_;
};

/// Exception envelope for Status on interfaces that return values/cycles.
class StatusError : public std::runtime_error {
 public:
  explicit StatusError(Status status)
      : std::runtime_error(status.to_string()), status_(std::move(status)) {}

  const Status& status() const { return status_; }
  ErrorCode code() const { return status_.code(); }

 private:
  Status status_;
};

/// Value-or-Status: the non-throwing return shape of the degraded KV API.
template <typename T>
class [[nodiscard]] Expected {
 public:
  Expected(T value) : value_(std::move(value)) {}               // NOLINT
  Expected(Status status) : status_(std::move(status)) {}       // NOLINT

  bool has_value() const { return value_.has_value(); }
  explicit operator bool() const { return has_value(); }

  const T& value() const { return *value_; }
  T& value() { return *value_; }
  const T& operator*() const { return *value_; }

  /// Ok when a value is present, the carried error otherwise.
  const Status& status() const { return status_; }

 private:
  std::optional<T> value_;
  Status status_;
};

namespace internal {
[[noreturn]] void check_failed(const char* condition, const char* file, int line,
                               const std::string& message);
}  // namespace internal

/// Invariant check that survives NDEBUG: throws StatusError(kInvariant).
#define STEINS_CHECK(cond, msg)                                          \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::steins::internal::check_failed(#cond, __FILE__, __LINE__, (msg)); \
    }                                                                    \
  } while (false)

}  // namespace steins

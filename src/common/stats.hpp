// Simulation statistics: named counters, latency accumulators, and a small
// fixed-format table printer used by the figure benches.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace steins {

/// Log-bucketed latency histogram (HDR-style): 16 sub-buckets per octave,
/// so every bucket is within ~6% of the true value. Mergeable, which is
/// what lets parallel KV clients keep private histograms and combine them
/// at the end of a run. Values at or above 2^32 cycles clamp into the last
/// bucket (max() stays exact).
class LatencyHistogram {
 public:
  static constexpr int kSubBits = 4;
  static constexpr std::size_t kSub = std::size_t{1} << kSubBits;  // 16
  static constexpr int kTopBits = 32;                              // clamp ceiling
  static constexpr std::size_t kBuckets = kSub + (kTopBits - kSubBits) * kSub;

  void add(std::uint64_t v) {
    ++count_;
    sum_ += v;
    if (v > max_) max_ = v;
    const std::size_t b = bucket_of(v);
    ++counts_[b];
    if (v > bucket_max_[b]) bucket_max_[b] = v;
  }

  /// Fold another histogram into this one (parallel clients merge here).
  /// Per-bucket observed maxima merge elementwise, so percentile
  /// interpolation stays bounded by values actually observed in the
  /// landing bucket even when shard histograms with different global
  /// maxima are combined.
  void merge(const LatencyHistogram& other) {
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.max_ > max_) max_ = other.max_;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      counts_[i] += other.counts_[i];
      if (other.bucket_max_[i] > bucket_max_[i]) bucket_max_[i] = other.bucket_max_[i];
    }
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t max() const { return max_; }
  double mean() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_) : 0.0;
  }

  /// Value at percentile `p` in [0, 100]: the rank is interpolated within
  /// its bucket's value range (exact below 16), and the top clamp bucket is
  /// bounded by the observed maximum, so outlier tails are reported rather
  /// than saturating at the 2^kTopBits ceiling.
  double percentile(double p) const;

  void reset() { *this = LatencyHistogram{}; }

  static std::size_t bucket_of(std::uint64_t v) {
    if (v < kSub) return static_cast<std::size_t>(v);
    const int top = 63 - std::countl_zero(v);
    if (top >= kTopBits) return kBuckets - 1;
    const std::size_t sub =
        static_cast<std::size_t>(v >> (top - kSubBits)) & (kSub - 1);
    return kSub + static_cast<std::size_t>(top - kSubBits) * kSub + sub;
  }

  /// Midpoint of bucket `idx`'s value range (the percentile representative).
  static double bucket_mid(std::size_t idx);

  /// Inclusive bounds of bucket `idx`'s value range. Together the buckets
  /// tile [0, UINT64_MAX]: the last bucket is the >= 2^(kTopBits - 1) + ...
  /// clamp, so its upper bound is UINT64_MAX even though its nominal octave
  /// ends below 2^kTopBits.
  static std::uint64_t bucket_lower(std::size_t idx);
  static std::uint64_t bucket_upper(std::size_t idx);

  /// Samples recorded in bucket `idx`.
  std::uint64_t bucket_count(std::size_t idx) const { return counts_[idx]; }

  /// Largest value observed in bucket `idx` (0 when the bucket is empty).
  /// This is what bounds within-bucket percentile interpolation.
  std::uint64_t bucket_observed_max(std::size_t idx) const { return bucket_max_[idx]; }

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::array<std::uint64_t, kBuckets> bucket_max_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
};

/// Accumulates a stream of sample values (e.g. per-request latencies).
/// Mean/max are exact; the embedded histogram adds tail percentiles.
struct LatencyAccumulator {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  LatencyHistogram hist;

  void add(std::uint64_t v) {
    ++count;
    sum += v;
    if (v > max) max = v;
    hist.add(v);
  }
  /// Fold another accumulator in (per-worker locals merge at a barrier
  /// instead of sharing one accumulator under a lock).
  void merge(const LatencyAccumulator& other) {
    count += other.count;
    sum += other.sum;
    if (other.max > max) max = other.max;
    hist.merge(other.hist);
  }
  double mean() const { return count ? static_cast<double>(sum) / static_cast<double>(count) : 0.0; }
  double percentile(double p) const { return hist.percentile(p); }
  void reset() { *this = LatencyAccumulator{}; }
};

/// Escape a string for inclusion in a JSON string literal: quotes,
/// backslashes, and every control character (U+0000..U+001F) are escaped,
/// so arbitrary labels/paths survive the round trip.
std::string json_escape(const std::string& s);

/// Registry of named integer counters; cheap to update, easy to diff.
class StatSet {
 public:
  void add(const std::string& name, std::uint64_t delta = 1) { counters_[name] += delta; }
  std::uint64_t get(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }
  const std::map<std::string, std::uint64_t>& all() const { return counters_; }
  /// Fold another StatSet in (per-worker campaign counters merge here).
  void merge(const StatSet& other) {
    for (const auto& [name, v] : other.counters_) counters_[name] += v;
  }
  void reset() { counters_.clear(); }

 private:
  std::map<std::string, std::uint64_t> counters_;
};

/// A printable results table: row labels x column labels of doubles.
/// Used by every figure bench to emit the same rows/series the paper plots.
class ResultTable {
 public:
  ResultTable(std::string title, std::vector<std::string> columns);

  void add_row(const std::string& label, const std::vector<double>& values);

  /// Pretty-print (fixed width) to stdout; `precision` decimal places.
  void print(int precision = 3) const;

  /// Emit as CSV (e.g. for external plotting).
  std::string to_csv(int precision = 6) const;

  /// Emit as a JSON object:
  ///   {"title": ..., "columns": [...], "rows": [{"label": ..., "values": [...]}, ...]}
  /// Values use %.17g so a recorded table round-trips bit-exactly.
  std::string to_json() const;

  /// Append a geometric-mean row across all current rows (per column).
  void add_geomean_row(const std::string& label = "geomean");

  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<std::pair<std::string, std::vector<double>>>& rows() const { return rows_; }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::pair<std::string, std::vector<double>>> rows_;
};

}  // namespace steins

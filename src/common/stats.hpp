// Simulation statistics: named counters, latency accumulators, and a small
// fixed-format table printer used by the figure benches.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace steins {

/// Accumulates a stream of sample values (e.g. per-request latencies).
struct LatencyAccumulator {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;

  void add(std::uint64_t v) {
    ++count;
    sum += v;
    if (v > max) max = v;
  }
  double mean() const { return count ? static_cast<double>(sum) / static_cast<double>(count) : 0.0; }
  void reset() { *this = LatencyAccumulator{}; }
};

/// Registry of named integer counters; cheap to update, easy to diff.
class StatSet {
 public:
  void add(const std::string& name, std::uint64_t delta = 1) { counters_[name] += delta; }
  std::uint64_t get(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }
  const std::map<std::string, std::uint64_t>& all() const { return counters_; }
  void reset() { counters_.clear(); }

 private:
  std::map<std::string, std::uint64_t> counters_;
};

/// A printable results table: row labels x column labels of doubles.
/// Used by every figure bench to emit the same rows/series the paper plots.
class ResultTable {
 public:
  ResultTable(std::string title, std::vector<std::string> columns);

  void add_row(const std::string& label, const std::vector<double>& values);

  /// Pretty-print (fixed width) to stdout; `precision` decimal places.
  void print(int precision = 3) const;

  /// Emit as CSV (e.g. for external plotting).
  std::string to_csv(int precision = 6) const;

  /// Emit as a JSON object:
  ///   {"title": ..., "columns": [...], "rows": [{"label": ..., "values": [...]}, ...]}
  /// Values use %.17g so a recorded table round-trips bit-exactly.
  std::string to_json() const;

  /// Append a geometric-mean row across all current rows (per column).
  void add_geomean_row(const std::string& label = "geomean");

  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<std::pair<std::string, std::vector<double>>>& rows() const { return rows_; }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::pair<std::string, std::vector<double>>> rows_;
};

}  // namespace steins

#include "common/log.hpp"

#include <atomic>

namespace steins {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kDebug:
      return "DEBUG";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace detail {
void log_line(LogLevel level, const std::string& msg) {
  std::fprintf(stderr, "[steins %s] %s\n", level_name(level), msg.c_str());
}
}  // namespace detail

}  // namespace steins

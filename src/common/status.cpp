#include "common/status.hpp"

namespace steins {

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "ok";
    case ErrorCode::kInvalidArgument:
      return "invalid-argument";
    case ErrorCode::kUnsupported:
      return "unsupported";
    case ErrorCode::kIntegrity:
      return "integrity";
    case ErrorCode::kUncorrectable:
      return "uncorrectable";
    case ErrorCode::kQuarantined:
      return "quarantined";
    case ErrorCode::kUnavailable:
      return "unavailable";
    case ErrorCode::kReadOnly:
      return "read-only";
    case ErrorCode::kInvariant:
      return "invariant";
    case ErrorCode::kInternal:
      return "internal";
  }
  return "?";
}

namespace internal {

void check_failed(const char* condition, const char* file, int line,
                  const std::string& message) {
  throw StatusError(Status(ErrorCode::kInvariant,
                           message + " [" + condition + " at " + file + ":" +
                               std::to_string(line) + "]"));
}

}  // namespace internal
}  // namespace steins

// Open-addressed hash map for the simulator's 64-bit-keyed hot tables
// (plaintext truth store, recovery scratch maps). Linear probing over a
// power-of-two capacity with values inline in a parallel array: a lookup is
// one mixed hash plus a short contiguous scan, no per-node allocation, no
// pointer chase. Keys are stored as key+1 so 0 marks an empty slot — the
// all-ones key (~0) is therefore not storable; addresses and node indices
// never take that value.
//
// No erase: tables are either append-only for a run or rebuilt wholesale
// (see System::resync_truth_after_crash). for_each visits slots in table
// order, which is deterministic for a fixed insertion sequence; callers that
// need a canonical order sort the keys they collect.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/status.hpp"

namespace steins {

template <typename V>
class FlatMap {
 public:
  explicit FlatMap(std::size_t initial_capacity = 1024)
      : keys_(round_up(initial_capacity), 0),
        vals_(round_up(initial_capacity)),
        mask_(keys_.size() - 1) {}

  V* find(std::uint64_t key) {
    return const_cast<V*>(static_cast<const FlatMap*>(this)->find(key));
  }
  const V* find(std::uint64_t key) const {
    const std::uint64_t k1 = key + 1;
    STEINS_CHECK(k1 != 0, "FlatMap cannot store the all-ones key");
    std::size_t i = hash(k1) & mask_;
    while (true) {
      const std::uint64_t k = keys_[i];
      if (k == k1) return &vals_[i];
      if (k == 0) return nullptr;
      i = (i + 1) & mask_;
    }
  }

  bool contains(std::uint64_t key) const { return find(key) != nullptr; }

  /// Pull the key's home slot toward the host cache ahead of a lookup.
  /// Purely a host-side hint; no simulated effect.
  void prefetch(std::uint64_t key) const { __builtin_prefetch(&keys_[hash(key + 1) & mask_]); }

  /// Value for `key`, default-constructed on first touch (like map::operator[]).
  V& get_or_create(std::uint64_t key) {
    const std::uint64_t k1 = key + 1;
    STEINS_CHECK(k1 != 0, "FlatMap cannot store the all-ones key");
    std::size_t i = hash(k1) & mask_;
    while (true) {
      const std::uint64_t k = keys_[i];
      if (k == k1) return vals_[i];
      if (k == 0) break;
      i = (i + 1) & mask_;
    }
    if ((size_ + 1) * 2 > mask_ + 1) {  // max load factor 1/2
      grow();
      i = hash(k1) & mask_;
      while (keys_[i] != 0) i = (i + 1) & mask_;
    }
    keys_[i] = k1;
    ++size_;
    return vals_[i];
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    std::fill(keys_.begin(), keys_.end(), 0);
    for (auto& v : vals_) v = V{};
    size_ = 0;
  }

  template <typename Fn>
  void for_each(Fn&& fn) {
    for (std::size_t i = 0; i <= mask_; ++i) {
      if (keys_[i] != 0) fn(keys_[i] - 1, vals_[i]);
    }
  }
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i <= mask_; ++i) {
      if (keys_[i] != 0) fn(keys_[i] - 1, vals_[i]);
    }
  }

 private:
  static std::size_t round_up(std::size_t n) {
    std::size_t cap = 16;
    while (cap < n) cap *= 2;
    return cap;
  }

  static std::size_t hash(std::uint64_t k) {
    k ^= k >> 33;
    k *= 0xff51afd7ed558ccdULL;
    k ^= k >> 33;
    return static_cast<std::size_t>(k);
  }

  void grow() {
    const std::size_t cap = (mask_ + 1) * 2;
    std::vector<std::uint64_t> keys(cap, 0);
    std::vector<V> vals(cap);
    const std::size_t mask = cap - 1;
    for (std::size_t i = 0; i <= mask_; ++i) {
      if (keys_[i] == 0) continue;
      std::size_t j = hash(keys_[i]) & mask;
      while (keys[j] != 0) j = (j + 1) & mask;
      keys[j] = keys_[i];
      vals[j] = std::move(vals_[i]);
    }
    keys_.swap(keys);
    vals_.swap(vals);
    mask_ = mask;
  }

  std::vector<std::uint64_t> keys_;
  mutable std::vector<V> vals_;
  std::size_t mask_;
  std::size_t size_ = 0;
};

}  // namespace steins

#include "common/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <exception>

namespace steins {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained
      job = std::move(queue_.front());
      queue_.pop();
    }
    job();
  }
}

void ThreadPool::for_each_index(std::size_t n, const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(submit([&fn, i] { fn(i); }));
  }
  std::exception_ptr first;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

ShardGang::ShardGang(std::size_t shards, unsigned jobs) : shards_(shards) {
  if (jobs < 1) jobs = 1;
  if (shards_ > 0 && jobs > shards_) jobs = static_cast<unsigned>(shards_);
  jobs_ = jobs;
  errors_.assign(shards_, nullptr);
  if (jobs_ <= 1) return;  // sequential reference path: no threads
  workers_.reserve(jobs_);
  for (unsigned w = 0; w < jobs_; ++w) {
    workers_.emplace_back([this, w] { gang_loop(w); });
  }
}

ShardGang::~ShardGang() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ShardGang::gang_loop(unsigned worker) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* fn = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
      fn = fn_;
    }
    // Static partition: shard s always runs on thread s % jobs, ascending,
    // so a given shard's epochs execute on one thread in program order.
    for (std::size_t s = worker; s < shards_; s += jobs_) {
      try {
        (*fn)(s);
      } catch (...) {
        errors_[s] = std::current_exception();  // slot owned by this worker
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--remaining_ == 0) done_cv_.notify_one();
    }
  }
}

void ShardGang::run_epoch(const std::function<void(std::size_t)>& fn) {
  if (shards_ == 0) return;
  std::fill(errors_.begin(), errors_.end(), nullptr);
  if (jobs_ <= 1) {
    for (std::size_t s = 0; s < shards_; ++s) {
      try {
        fn(s);
      } catch (...) {
        errors_[s] = std::current_exception();
      }
    }
  } else {
    {
      std::lock_guard<std::mutex> lock(mu_);
      fn_ = &fn;
      remaining_ = jobs_;
      ++epoch_;
    }
    start_cv_.notify_all();
    {
      std::unique_lock<std::mutex> lock(mu_);
      done_cv_.wait(lock, [this] { return remaining_ == 0; });
    }
  }
  for (const std::exception_ptr& e : errors_) {
    if (e) std::rethrow_exception(e);
  }
}

unsigned ThreadPool::default_jobs() {
  if (const char* env = std::getenv("STEINS_JOBS")) {
    const long v = std::strtol(env, nullptr, 10);
    return v < 1 ? 1u : static_cast<unsigned>(v);
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1u : hc;
}

}  // namespace steins

#include "common/thread_pool.hpp"

#include <cstdlib>
#include <exception>

namespace steins {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained
      job = std::move(queue_.front());
      queue_.pop();
    }
    job();
  }
}

void ThreadPool::for_each_index(std::size_t n, const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(submit([&fn, i] { fn(i); }));
  }
  std::exception_ptr first;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

unsigned ThreadPool::default_jobs() {
  if (const char* env = std::getenv("STEINS_JOBS")) {
    const long v = std::strtol(env, nullptr, 10);
    return v < 1 ? 1u : static_cast<unsigned>(v);
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1u : hc;
}

}  // namespace steins

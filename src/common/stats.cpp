#include "common/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <utility>

namespace steins {

double LatencyHistogram::bucket_mid(std::size_t idx) {
  if (idx < kSub) return static_cast<double>(idx);  // exact buckets
  const std::size_t oct = (idx - kSub) / kSub;      // octave above kSubBits
  const std::size_t sub = (idx - kSub) % kSub;
  const int top = static_cast<int>(oct) + kSubBits;
  const std::uint64_t width = std::uint64_t{1} << (top - kSubBits);
  const std::uint64_t lower = (std::uint64_t{1} << top) + sub * width;
  return static_cast<double>(lower) + static_cast<double>(width - 1) / 2.0;
}

std::uint64_t LatencyHistogram::bucket_lower(std::size_t idx) {
  if (idx >= kBuckets) idx = kBuckets - 1;
  if (idx < kSub) return idx;  // exact buckets
  const std::size_t oct = (idx - kSub) / kSub;
  const std::size_t sub = (idx - kSub) % kSub;
  const int top = static_cast<int>(oct) + kSubBits;
  const std::uint64_t width = std::uint64_t{1} << (top - kSubBits);
  return (std::uint64_t{1} << top) + sub * width;
}

std::uint64_t LatencyHistogram::bucket_upper(std::size_t idx) {
  // The last bucket also absorbs everything bucket_of clamps from above.
  if (idx >= kBuckets - 1) return ~std::uint64_t{0};
  return bucket_lower(idx + 1) - 1;
}

double LatencyHistogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  if (p <= 0.0) return 0.0;
  if (p > 100.0) p = 100.0;
  // Rank of the requested percentile (1-based, nearest-rank definition).
  const double exact = std::ceil(static_cast<double>(count_) * p / 100.0);
  const std::uint64_t target = exact < 1.0 ? 1 : static_cast<std::uint64_t>(exact);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (counts_[i] == 0) continue;
    cum += counts_[i];
    if (cum >= target) {
      // Interpolate the rank within the bucket's value range, bounded
      // above by the largest value actually observed in THIS bucket (not
      // just the global maximum): after merging shard histograms with
      // different maxima, the global max may live in a later bucket and
      // would no longer bound a sub-maximal shard's top bucket, letting
      // the interpolation overshoot to the bucket's nominal ceiling.
      const double lo = static_cast<double>(bucket_lower(i));
      const double hi = std::min(static_cast<double>(bucket_upper(i)),
                                 static_cast<double>(bucket_max_[i]));
      if (hi <= lo) return std::min(lo, static_cast<double>(bucket_max_[i]));
      const std::uint64_t before = cum - counts_[i];
      const double frac =
          static_cast<double>(target - before) / static_cast<double>(counts_[i]);
      return lo + frac * (hi - lo);
    }
  }
  return static_cast<double>(max_);
}

ResultTable::ResultTable(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void ResultTable::add_row(const std::string& label, const std::vector<double>& values) {
  assert(values.size() == columns_.size());
  rows_.emplace_back(label, values);
}

void ResultTable::add_geomean_row(const std::string& label) {
  if (rows_.empty()) return;
  std::vector<double> gm(columns_.size(), 0.0);
  for (const auto& [name, vals] : rows_) {
    (void)name;
    for (std::size_t c = 0; c < vals.size(); ++c) gm[c] += std::log(vals[c]);
  }
  for (auto& v : gm) v = std::exp(v / static_cast<double>(rows_.size()));
  rows_.emplace_back(label, gm);
}

void ResultTable::print(int precision) const {
  std::printf("== %s ==\n", title_.c_str());
  // Compute label column width.
  std::size_t lw = 10;
  for (const auto& [name, vals] : rows_) {
    (void)vals;
    if (name.size() > lw) lw = name.size();
  }
  std::printf("%-*s", static_cast<int>(lw + 2), "workload");
  for (const auto& c : columns_) std::printf("%14s", c.c_str());
  std::printf("\n");
  for (const auto& [name, vals] : rows_) {
    std::printf("%-*s", static_cast<int>(lw + 2), name.c_str());
    for (double v : vals) std::printf("%14.*f", precision, v);
    std::printf("\n");
  }
  std::printf("\n");
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default: {
        const auto u = static_cast<unsigned char>(c);
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", u);
          out += buf;
        } else {
          out += c;
        }
      }
    }
  }
  return out;
}

std::string ResultTable::to_json() const {
  std::ostringstream os;
  char buf[64];
  os << "{\"title\": \"" << json_escape(title_) << "\", \"columns\": [";
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << (c ? ", " : "") << '"' << json_escape(columns_[c]) << '"';
  }
  os << "], \"rows\": [";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    const auto& [name, vals] = rows_[r];
    os << (r ? ", " : "") << "{\"label\": \"" << json_escape(name) << "\", \"values\": [";
    for (std::size_t c = 0; c < vals.size(); ++c) {
      std::snprintf(buf, sizeof(buf), "%.17g", vals[c]);
      os << (c ? ", " : "") << buf;
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

std::string ResultTable::to_csv(int precision) const {
  std::ostringstream os;
  os << "workload";
  for (const auto& c : columns_) os << "," << c;
  os << "\n";
  char buf[64];
  for (const auto& [name, vals] : rows_) {
    os << name;
    for (double v : vals) {
      std::snprintf(buf, sizeof(buf), ",%.*f", precision, v);
      os << buf;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace steins

#include "common/stats.hpp"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <utility>

namespace steins {

ResultTable::ResultTable(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void ResultTable::add_row(const std::string& label, const std::vector<double>& values) {
  assert(values.size() == columns_.size());
  rows_.emplace_back(label, values);
}

void ResultTable::add_geomean_row(const std::string& label) {
  if (rows_.empty()) return;
  std::vector<double> gm(columns_.size(), 0.0);
  for (const auto& [name, vals] : rows_) {
    (void)name;
    for (std::size_t c = 0; c < vals.size(); ++c) gm[c] += std::log(vals[c]);
  }
  for (auto& v : gm) v = std::exp(v / static_cast<double>(rows_.size()));
  rows_.emplace_back(label, gm);
}

void ResultTable::print(int precision) const {
  std::printf("== %s ==\n", title_.c_str());
  // Compute label column width.
  std::size_t lw = 10;
  for (const auto& [name, vals] : rows_) {
    (void)vals;
    if (name.size() > lw) lw = name.size();
  }
  std::printf("%-*s", static_cast<int>(lw + 2), "workload");
  for (const auto& c : columns_) std::printf("%14s", c.c_str());
  std::printf("\n");
  for (const auto& [name, vals] : rows_) {
    std::printf("%-*s", static_cast<int>(lw + 2), name.c_str());
    for (double v : vals) std::printf("%14.*f", precision, v);
    std::printf("\n");
  }
  std::printf("\n");
}

namespace {

// Minimal JSON string escaping (labels are plain ASCII in practice).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

std::string ResultTable::to_json() const {
  std::ostringstream os;
  char buf[64];
  os << "{\"title\": \"" << json_escape(title_) << "\", \"columns\": [";
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << (c ? ", " : "") << '"' << json_escape(columns_[c]) << '"';
  }
  os << "], \"rows\": [";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    const auto& [name, vals] = rows_[r];
    os << (r ? ", " : "") << "{\"label\": \"" << json_escape(name) << "\", \"values\": [";
    for (std::size_t c = 0; c < vals.size(); ++c) {
      std::snprintf(buf, sizeof(buf), "%.17g", vals[c]);
      os << (c ? ", " : "") << buf;
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

std::string ResultTable::to_csv(int precision) const {
  std::ostringstream os;
  os << "workload";
  for (const auto& c : columns_) os << "," << c;
  os << "\n";
  char buf[64];
  for (const auto& [name, vals] : rows_) {
    os << name;
    for (double v : vals) {
      std::snprintf(buf, sizeof(buf), ",%.*f", precision, v);
      os << buf;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace steins

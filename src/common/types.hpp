// Basic type aliases and constants shared across the Steins library.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace steins {

/// Physical byte address in the simulated NVM address space.
using Addr = std::uint64_t;

/// Simulated time in CPU cycles (2 GHz by default, see SystemConfig).
using Cycle = std::uint64_t;

/// Simulated time in picoseconds (used by the NVM device model).
using Picos = std::uint64_t;

/// Cache-line / metadata-block granularity used throughout the paper.
inline constexpr std::size_t kBlockSize = 64;

/// A 64-byte memory block (data block, counter block, or tree node image).
using Block = std::array<std::uint8_t, kBlockSize>;

/// Number of data blocks covered by a general counter block (8 x 56-bit).
inline constexpr std::size_t kGeneralArity = 8;

/// Number of data blocks covered by a split counter block (64 x minor).
inline constexpr std::size_t kSplitArity = 64;

/// Fan-out of internal SIT levels (8 x 56-bit counters per 64 B node).
inline constexpr std::size_t kTreeArity = 8;

/// Maximum children the on-chip root register covers (a 64-entry register
/// file; this is what yields the paper's 9-level GC / 8-level SC trees).
inline constexpr std::size_t kRootArity = 64;

/// 56-bit counter mask used by SIT node counters.
inline constexpr std::uint64_t kCounter56Mask = (std::uint64_t{1} << 56) - 1;

/// Split-counter parameters: 64-bit major + 64 x 6-bit minors in SIT leaves.
inline constexpr std::uint64_t kMinorBits = 6;
inline constexpr std::uint64_t kMinorMax = (std::uint64_t{1} << kMinorBits);  // 64

inline constexpr Block zero_block() { return Block{}; }

}  // namespace steins

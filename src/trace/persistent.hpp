// Persistent workloads (paper §IV, from STAR's evaluation style): data
// structures that persist every update with clwb+fence semantics, so every
// store reaches the memory controller. These stress the metadata write path
// far harder than the SPEC-like workloads.
#pragma once

#include <memory>

#include "common/rng.hpp"
#include "trace/trace.hpp"

namespace steins {

/// Persistent queue: append records sequentially, flushing each record and
/// its head pointer (2 flushed writes per operation, log-structured).
class PersistentQueueTrace : public TraceSource {
 public:
  PersistentQueueTrace(std::uint64_t region_bytes, std::uint64_t operations,
                       std::uint64_t seed = 1);

  bool next(MemAccess* out) override;
  void reset() override;

 private:
  std::uint64_t blocks_;
  std::uint64_t operations_;
  std::uint64_t seed_;
  Xoshiro256 rng_;
  std::uint64_t produced_ = 0;
  std::uint64_t tail_ = 0;
  int phase_ = 0;  // 0 = record write, 1 = head-pointer write
};

/// Persistent hash table: read-modify-write of uniformly random buckets,
/// each update flushed (1 read + 1 flushed write per operation).
class PersistentHashTrace : public TraceSource {
 public:
  PersistentHashTrace(std::uint64_t region_bytes, std::uint64_t operations,
                      std::uint64_t seed = 1);

  bool next(MemAccess* out) override;
  void reset() override;

 private:
  std::uint64_t blocks_;
  std::uint64_t operations_;
  std::uint64_t seed_;
  Xoshiro256 rng_;
  std::uint64_t produced_ = 0;
  Addr pending_ = 0;
  bool write_phase_ = false;
};

}  // namespace steins

// Trace file I/O: save any trace to a compact text format and replay it.
//
// Format: one access per line, `R|W|F <block-index> <gap>` (`F` = flushed
// write), with `#` comments. Lets users capture a generator's stream, edit
// or inspect it, and feed recorded traces from other tools into the
// simulator.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace steins {

/// In-memory trace that replays a fixed vector of accesses.
class VectorTrace : public TraceSource {
 public:
  explicit VectorTrace(std::vector<MemAccess> accesses) : accesses_(std::move(accesses)) {}

  bool next(MemAccess* out) override {
    if (pos_ >= accesses_.size()) return false;
    *out = accesses_[pos_++];
    return true;
  }
  void reset() override { pos_ = 0; }

  std::size_t size() const { return accesses_.size(); }

 private:
  std::vector<MemAccess> accesses_;
  std::size_t pos_ = 0;
};

/// Drain `source` into a vector (up to `limit` accesses).
std::vector<MemAccess> collect_trace(TraceSource& source,
                                     std::size_t limit = SIZE_MAX);

/// Serialize accesses to the text format.
void write_trace(std::ostream& os, const std::vector<MemAccess>& accesses);
bool write_trace_file(const std::string& path, const std::vector<MemAccess>& accesses);

/// Parse the text format; throws std::invalid_argument on malformed lines.
std::vector<MemAccess> read_trace(std::istream& is);
std::vector<MemAccess> read_trace_file(const std::string& path);

}  // namespace steins

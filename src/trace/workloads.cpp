#include "trace/workloads.hpp"

#include <map>
#include <stdexcept>

#include "trace/persistent.hpp"

namespace steins {

namespace {

constexpr std::uint64_t kMB = 1024 * 1024;

// Profiles calibrated to each benchmark's published memory character:
//   lbm        streaming stencil, write-heavy, large footprint
//   mcf        pointer-chasing over a large sparse graph, read-mostly
//   libquantum strided sequential sweeps over a big vector, read-mostly
//   cactusADM  3D stencil with poor reuse: random-ish, mixed writes
//   gcc        irregular but hot-set-friendly, mixed
//   milc       random lattice updates, write-leaning
//   bwaves     large sequential solver sweeps
//   xalancbmk  small hot footprint, cache-friendly
const std::map<std::string, SyntheticConfig>& profiles() {
  static const std::map<std::string, SyntheticConfig> kProfiles = [] {
    std::map<std::string, SyntheticConfig> m;

    SyntheticConfig lbm;
    lbm.footprint_bytes = 96 * kMB;
    lbm.write_ratio = 0.45;
    lbm.seq_frac = 0.85;
    lbm.stride_frac = 0.10;
    lbm.gap_mean = 560;
    m["lbm"] = lbm;

    SyntheticConfig mcf;
    mcf.footprint_bytes = 96 * kMB;
    mcf.write_ratio = 0.22;
    mcf.pchase_frac = 0.70;
    mcf.zipf_frac = 0.15;
    mcf.gap_mean = 980;
    m["mcf"] = mcf;

    SyntheticConfig libquantum;
    libquantum.footprint_bytes = 48 * kMB;
    libquantum.write_ratio = 0.15;
    libquantum.seq_frac = 0.55;
    libquantum.stride_frac = 0.40;
    libquantum.stride_blocks = 16;
    libquantum.gap_mean = 700;
    m["libquantum"] = libquantum;

    SyntheticConfig cactus;
    cactus.footprint_bytes = 96 * kMB;
    cactus.write_ratio = 0.40;
    cactus.stride_frac = 0.30;
    cactus.stride_blocks = 1024 + 7;  // large-plane stencil jumps
    cactus.gap_mean = 910;
    m["cactusADM"] = cactus;

    SyntheticConfig gcc;
    gcc.footprint_bytes = 24 * kMB;
    gcc.write_ratio = 0.35;
    gcc.zipf_frac = 0.60;
    gcc.zipf_s = 0.9;
    gcc.seq_frac = 0.15;
    gcc.gap_mean = 1120;
    m["gcc"] = gcc;

    SyntheticConfig milc;
    milc.footprint_bytes = 64 * kMB;
    milc.write_ratio = 0.42;
    milc.stride_frac = 0.20;
    milc.stride_blocks = 64;
    milc.gap_mean = 875;
    m["milc"] = milc;

    SyntheticConfig bwaves;
    bwaves.footprint_bytes = 128 * kMB;
    bwaves.write_ratio = 0.28;
    bwaves.seq_frac = 0.90;
    bwaves.gap_mean = 560;
    m["bwaves"] = bwaves;

    SyntheticConfig xalancbmk;
    xalancbmk.footprint_bytes = 12 * kMB;
    xalancbmk.write_ratio = 0.30;
    xalancbmk.zipf_frac = 0.75;
    xalancbmk.zipf_s = 1.0;
    xalancbmk.gap_mean = 1260;
    m["xalancbmk"] = xalancbmk;

    // YCSB-shaped KV access profiles (mixes A/B/C/F): a Zipf-0.99 hot key
    // set over a KV region, every update committed with clwb+fence, little
    // compute between requests. These approximate what the src/kv driver
    // issues, shaped for the single-stream figure benches.
    auto kv_profile = [](double write_ratio) {
      SyntheticConfig kv;
      kv.footprint_bytes = 32 * kMB;
      kv.write_ratio = write_ratio;
      kv.zipf_frac = 0.95;
      kv.zipf_s = 0.99;
      kv.zipf_universe = 1 << 17;
      kv.flush_frac = 1.0;  // every update is a commit
      kv.gap_mean = 180;
      return kv;
    };
    m["kv_a"] = kv_profile(0.50);  // YCSB-A: 50/50 read/update
    m["kv_b"] = kv_profile(0.05);  // YCSB-B: 95/5
    m["kv_c"] = kv_profile(0.00);  // YCSB-C: read-only
    SyntheticConfig kv_f = kv_profile(0.50);  // YCSB-F: read-modify-write
    kv_f.zipf_frac = 1.0;  // the write always revisits a just-read hot key
    kv_f.gap_mean = 260;
    m["kv_f"] = kv_f;

    return m;
  }();
  return kProfiles;
}

}  // namespace

const std::vector<std::string>& spec_workload_names() {
  static const std::vector<std::string> kNames = {"lbm",  "mcf",  "libquantum", "cactusADM",
                                                  "gcc",  "milc", "bwaves",     "xalancbmk"};
  return kNames;
}

const std::vector<std::string>& kv_workload_names() {
  static const std::vector<std::string> kNames = {"kv_a", "kv_b", "kv_c", "kv_f"};
  return kNames;
}

const std::vector<std::string>& workload_names() {
  static const std::vector<std::string> kNames = [] {
    std::vector<std::string> names = spec_workload_names();
    names.push_back("pqueue");
    names.push_back("phash");
    return names;
  }();
  return kNames;
}

SyntheticConfig workload_profile(const std::string& name) {
  const auto it = profiles().find(name);
  if (it == profiles().end()) {
    throw std::invalid_argument("unknown SPEC-like workload: " + name);
  }
  return it->second;
}

std::unique_ptr<TraceSource> make_workload(const std::string& name, std::uint64_t accesses,
                                           std::uint64_t seed) {
  if (name == "pqueue") {
    // Small hot log ring, as in STAR's persistent-array/queue workloads.
    return std::make_unique<PersistentQueueTrace>(8 * kMB, accesses, seed);
  }
  if (name == "phash") {
    // Small hot table: updates hammer a working set the metadata cache can
    // mostly hold, as in STAR's persistent workloads.
    return std::make_unique<PersistentHashTrace>(3 * kMB, accesses, seed);
  }
  SyntheticConfig cfg = workload_profile(name);
  cfg.accesses = accesses;
  cfg.seed = seed;
  return std::make_unique<SyntheticTrace>(cfg);
}

}  // namespace steins

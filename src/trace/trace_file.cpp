#include "trace/trace_file.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace steins {

std::vector<MemAccess> collect_trace(TraceSource& source, std::size_t limit) {
  std::vector<MemAccess> out;
  MemAccess a;
  while (out.size() < limit && source.next(&a)) out.push_back(a);
  return out;
}

void write_trace(std::ostream& os, const std::vector<MemAccess>& accesses) {
  os << "# steins trace v1: <R|W|F> <block-index> <gap>\n";
  for (const auto& a : accesses) {
    const char kind = a.is_write ? (a.flush ? 'F' : 'W') : 'R';
    os << kind << ' ' << (a.addr / kBlockSize) << ' ' << a.gap << '\n';
  }
}

bool write_trace_file(const std::string& path, const std::vector<MemAccess>& accesses) {
  std::ofstream os(path);
  if (!os) return false;
  write_trace(os, accesses);
  return static_cast<bool>(os);
}

std::vector<MemAccess> read_trace(std::istream& is) {
  std::vector<MemAccess> out;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    char kind = 0;
    std::uint64_t block = 0;
    std::uint32_t gap = 0;
    if (!(ls >> kind >> block) || (kind != 'R' && kind != 'W' && kind != 'F')) {
      throw std::invalid_argument("malformed trace line " + std::to_string(lineno) + ": " +
                                  line);
    }
    ls >> gap;  // optional; defaults to 0
    MemAccess a;
    a.addr = block * kBlockSize;
    a.is_write = kind != 'R';
    a.flush = kind == 'F';
    a.gap = gap;
    out.push_back(a);
  }
  return out;
}

std::vector<MemAccess> read_trace_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::invalid_argument("cannot open trace file: " + path);
  return read_trace(is);
}

}  // namespace steins

// Synthetic trace generator: a parameterized mixture of access patterns
// (sequential, strided, uniform-random, Zipf hot-set, pointer-chase) over a
// configurable footprint. The named SPEC-like workload profiles in
// workloads.hpp are instances of this generator.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "trace/trace.hpp"

namespace steins {

struct SyntheticConfig {
  std::uint64_t footprint_bytes = 64 * 1024 * 1024;
  std::uint64_t accesses = 1'000'000;
  double write_ratio = 0.3;
  // Pattern mixture; fractions should sum to <= 1, the remainder is
  // uniform-random.
  double seq_frac = 0.0;       // streaming through the footprint
  double stride_frac = 0.0;    // fixed-stride walk
  std::uint64_t stride_blocks = 8;
  double zipf_frac = 0.0;      // Zipf-distributed hot set
  double zipf_s = 0.8;
  std::size_t zipf_universe = 1 << 16;  // hot blocks drawn from this many
  double pchase_frac = 0.0;    // dependent pointer chasing
  // Fraction of writes followed by clwb+fence (persistent commit points,
  // as a KV store's record/commit persists produce). 0 leaves the stream
  // identical to pre-flush_frac traces (no extra RNG draws).
  double flush_frac = 0.0;
  std::uint32_t gap_mean = 6;  // mean non-memory instructions between accesses
  std::uint64_t seed = 1;
};

class SyntheticTrace final : public TraceSource {
 public:
  explicit SyntheticTrace(const SyntheticConfig& cfg);

  bool next(MemAccess* out) override;
  std::size_t next_batch(MemAccess* out, std::size_t max) override;
  void reset() override;

  const SyntheticConfig& config() const { return cfg_; }

 private:
  bool produce(MemAccess* out);  // non-virtual body shared by next/next_batch

  Addr block_to_addr(std::uint64_t block) const { return block * kBlockSize; }

  SyntheticConfig cfg_;
  std::uint64_t blocks_;
  Xoshiro256 rng_;
  std::unique_ptr<ZipfSampler> zipf_;
  std::uint64_t produced_ = 0;
  std::uint64_t seq_cursor_ = 0;
  std::uint64_t stride_cursor_ = 0;
  std::uint64_t chase_cursor_ = 0;
};

}  // namespace steins

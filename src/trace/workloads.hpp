// Named workload profiles (paper §IV): eight SPEC2006/2017-like memory
// behaviours plus the two persistent workloads in persistent.hpp.
//
// SPEC binaries and gem5 checkpoints are not redistributable, so each
// profile is a SyntheticConfig calibrated to the benchmark's published
// memory character (footprint, write intensity, locality class); the
// paper's figures are normalized per workload, which is what these
// preserve (DESIGN.md §2).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "trace/synthetic.hpp"

namespace steins {

/// The workload names in the order the figure benches print them.
const std::vector<std::string>& workload_names();

/// Only the eight SPEC-like workloads (no persistent ones).
const std::vector<std::string>& spec_workload_names();

/// YCSB-shaped KV trace profiles (kv_a/kv_b/kv_c/kv_f): Zipfian hot-key
/// access with committed updates, approximating what the src/kv driver
/// issues. Not part of workload_names() so the recorded figure tables keep
/// their historical rows; benches opt in explicitly.
const std::vector<std::string>& kv_workload_names();

/// Construct a trace for `name` producing `accesses` accesses.
/// Throws std::invalid_argument for unknown names.
std::unique_ptr<TraceSource> make_workload(const std::string& name, std::uint64_t accesses,
                                           std::uint64_t seed = 1);

/// The SyntheticConfig behind a SPEC-like profile (for tests/inspection).
SyntheticConfig workload_profile(const std::string& name);

}  // namespace steins

// Memory-access traces: the unit the CPU model consumes.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace steins {

/// One CPU memory access (to a 64 B block).
struct MemAccess {
  Addr addr = 0;
  bool is_write = false;
  /// Persist barrier (clwb + fence): the block is flushed from the cache
  /// hierarchy to the memory controller before the program continues.
  bool flush = false;
  /// Non-memory instructions executed since the previous access.
  std::uint32_t gap = 0;
};

/// Pull-based trace source. Implementations are deterministic given their
/// seed so every figure bench is reproducible.
class TraceSource {
 public:
  virtual ~TraceSource() = default;

  /// Produce the next access; false when the trace is exhausted.
  virtual bool next(MemAccess* out) = 0;

  /// Restart from the beginning (same deterministic stream).
  virtual void reset() = 0;
};

}  // namespace steins

// Memory-access traces: the unit the CPU model consumes.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/types.hpp"

namespace steins {

/// One CPU memory access (to a 64 B block).
struct MemAccess {
  Addr addr = 0;
  bool is_write = false;
  /// Persist barrier (clwb + fence): the block is flushed from the cache
  /// hierarchy to the memory controller before the program continues.
  bool flush = false;
  /// Non-memory instructions executed since the previous access.
  std::uint32_t gap = 0;
};

/// Pull-based trace source. Implementations are deterministic given their
/// seed so every figure bench is reproducible.
class TraceSource {
 public:
  virtual ~TraceSource() = default;

  /// Produce the next access; false when the trace is exhausted.
  virtual bool next(MemAccess* out) = 0;

  /// Fill up to `max` accesses into `out`; returns how many were produced
  /// (0 = exhausted). Semantically identical to calling next() in a loop —
  /// generators override it so the driver pays one virtual call per batch
  /// instead of per access.
  virtual std::size_t next_batch(MemAccess* out, std::size_t max) {
    std::size_t n = 0;
    while (n < max && next(out + n)) ++n;
    return n;
  }

  /// Restart from the beginning (same deterministic stream).
  virtual void reset() = 0;
};

}  // namespace steins

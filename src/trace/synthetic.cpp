#include "trace/synthetic.hpp"

#include <algorithm>
#include <cassert>

namespace steins {

SyntheticTrace::SyntheticTrace(const SyntheticConfig& cfg)
    : cfg_(cfg), blocks_(cfg.footprint_bytes / kBlockSize), rng_(cfg.seed) {
  assert(blocks_ > 0);
  if (cfg_.zipf_frac > 0.0) {
    const std::size_t universe =
        std::min<std::size_t>(cfg_.zipf_universe, static_cast<std::size_t>(blocks_));
    zipf_ = std::make_unique<ZipfSampler>(universe, cfg_.zipf_s);
  }
}

void SyntheticTrace::reset() {
  rng_ = Xoshiro256(cfg_.seed);
  produced_ = 0;
  seq_cursor_ = 0;
  stride_cursor_ = 0;
  chase_cursor_ = 0;
}

bool SyntheticTrace::next(MemAccess* out) { return produce(out); }

std::size_t SyntheticTrace::next_batch(MemAccess* out, std::size_t max) {
  std::size_t n = 0;
  while (n < max && produce(out + n)) ++n;
  return n;
}

bool SyntheticTrace::produce(MemAccess* out) {
  if (produced_ >= cfg_.accesses) return false;
  ++produced_;

  const double p = rng_.uniform();
  std::uint64_t block;
  double acc = cfg_.seq_frac;
  if (p < acc) {
    block = seq_cursor_;
    seq_cursor_ = (seq_cursor_ + 1) % blocks_;
  } else if (p < (acc += cfg_.stride_frac)) {
    block = stride_cursor_;
    stride_cursor_ = (stride_cursor_ + cfg_.stride_blocks) % blocks_;
  } else if (p < (acc += cfg_.zipf_frac)) {
    // Hot set scattered over the footprint by a fixed multiplicative hash.
    const std::uint64_t hot = zipf_->sample(rng_);
    block = (hot * 0x9e3779b97f4a7c15ULL) % blocks_;
  } else if (p < (acc += cfg_.pchase_frac)) {
    // Dependent chain: the next address is a hash of the current one.
    chase_cursor_ = (chase_cursor_ * 6364136223846793005ULL + 1442695040888963407ULL);
    block = chase_cursor_ % blocks_;
  } else {
    block = rng_.below(blocks_);
  }

  out->addr = block_to_addr(block);
  out->is_write = rng_.chance(cfg_.write_ratio);
  // Guarded so profiles without commit points draw no extra randomness and
  // keep their exact historical access streams.
  out->flush = out->is_write && cfg_.flush_frac > 0.0 && rng_.chance(cfg_.flush_frac);
  // Geometric-ish gap around the mean keeps the stream memory-bound but
  // not lockstep.
  out->gap = cfg_.gap_mean > 0
                 ? static_cast<std::uint32_t>(rng_.below(2 * cfg_.gap_mean + 1))
                 : 0;
  return true;
}

}  // namespace steins

#include "trace/persistent.hpp"

namespace steins {

PersistentQueueTrace::PersistentQueueTrace(std::uint64_t region_bytes, std::uint64_t operations,
                                           std::uint64_t seed)
    : blocks_(region_bytes / kBlockSize), operations_(operations), seed_(seed), rng_(seed) {}

void PersistentQueueTrace::reset() {
  rng_ = Xoshiro256(seed_);
  produced_ = 0;
  tail_ = 0;
  phase_ = 0;
}

bool PersistentQueueTrace::next(MemAccess* out) {
  if (produced_ >= operations_) return false;
  ++produced_;
  if (phase_ == 0) {
    // Append the record at the tail and flush it.
    out->addr = (1 + tail_ % (blocks_ - 1)) * kBlockSize;
    out->is_write = true;
    out->flush = true;
    out->gap = 700;  // record construction work between appends
    phase_ = 1;
  } else {
    // Persist the head/tail pointer block (block 0), then advance.
    out->addr = 0;
    out->is_write = true;
    out->flush = true;
    out->gap = 260;
    tail_ = (tail_ + 1);
    phase_ = 0;
  }
  return true;
}

PersistentHashTrace::PersistentHashTrace(std::uint64_t region_bytes, std::uint64_t operations,
                                         std::uint64_t seed)
    : blocks_(region_bytes / kBlockSize), operations_(operations), seed_(seed), rng_(seed) {}

void PersistentHashTrace::reset() {
  rng_ = Xoshiro256(seed_);
  produced_ = 0;
  pending_ = 0;
  write_phase_ = false;
}

bool PersistentHashTrace::next(MemAccess* out) {
  if (produced_ >= operations_) return false;
  ++produced_;
  if (!write_phase_) {
    // Read the bucket...
    pending_ = rng_.below(blocks_) * kBlockSize;
    out->addr = pending_;
    out->is_write = false;
    out->flush = false;
    out->gap = 440;  // hash + probe work per operation
    write_phase_ = true;
  } else {
    // ...then update and persist it.
    out->addr = pending_;
    out->is_write = true;
    out->flush = true;
    out->gap = 210;
    write_phase_ = false;
  }
  return true;
}

}  // namespace steins

#include "nvm/nvm_device.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace steins {

void NvmDevice::check_limit(Addr addr) const {
  if (addr >= limit_) {
    throw std::out_of_range("NVM write beyond device address limit: addr=" +
                            std::to_string(addr) + " limit=" + std::to_string(limit_));
  }
}

Block NvmDevice::read_block(Addr addr) {
  ++stats_.reads;
  stats_.energy_nj += cfg_.read_energy_nj;
  return peek_block(addr);
}

void NvmDevice::write_block(Addr addr, const Block& data) {
  check_limit(addr);
  ++stats_.writes;
  stats_.energy_nj += cfg_.write_energy_nj;
  blocks_[align(addr)] = data;
}

std::uint64_t NvmDevice::read_tag(Addr addr) const {
  auto it = tags_.find(align(addr));
  return it == tags_.end() ? 0 : it->second;
}

void NvmDevice::write_tag(Addr addr, std::uint64_t tag) {
  check_limit(addr);
  tags_[align(addr)] = tag;
}

std::uint64_t NvmDevice::read_tag2(Addr addr) const {
  auto it = tags2_.find(align(addr));
  return it == tags2_.end() ? 0 : it->second;
}

void NvmDevice::write_tag2(Addr addr, std::uint64_t tag) {
  check_limit(addr);
  tags2_[align(addr)] = tag;
}

Block NvmDevice::peek_block(Addr addr) const {
  auto it = blocks_.find(align(addr));
  return it == blocks_.end() ? zero_block() : it->second;
}

void NvmDevice::poke_block(Addr addr, const Block& data) {
  check_limit(addr);
  blocks_[align(addr)] = data;
}

std::vector<Addr> NvmDevice::resident_blocks(Addr lo, Addr hi) const {
  std::vector<Addr> out;
  for (const auto& kv : blocks_) {
    if (kv.first >= lo && kv.first < hi) out.push_back(kv.first);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Addr> NvmDevice::resident_tags(Addr lo, Addr hi) const {
  std::vector<Addr> out;
  for (const auto& kv : tags_) {
    if (kv.first >= lo && kv.first < hi) out.push_back(kv.first);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace steins

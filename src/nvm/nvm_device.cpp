#include "nvm/nvm_device.hpp"

namespace steins {

Block NvmDevice::read_block(Addr addr) {
  ++stats_.reads;
  stats_.energy_nj += cfg_.read_energy_nj;
  return peek_block(addr);
}

void NvmDevice::write_block(Addr addr, const Block& data) {
  ++stats_.writes;
  stats_.energy_nj += cfg_.write_energy_nj;
  blocks_[align(addr)] = data;
}

std::uint64_t NvmDevice::read_tag(Addr addr) const {
  auto it = tags_.find(align(addr));
  return it == tags_.end() ? 0 : it->second;
}

void NvmDevice::write_tag(Addr addr, std::uint64_t tag) { tags_[align(addr)] = tag; }

std::uint64_t NvmDevice::read_tag2(Addr addr) const {
  auto it = tags2_.find(align(addr));
  return it == tags2_.end() ? 0 : it->second;
}

void NvmDevice::write_tag2(Addr addr, std::uint64_t tag) { tags2_[align(addr)] = tag; }

Block NvmDevice::peek_block(Addr addr) const {
  auto it = blocks_.find(align(addr));
  return it == blocks_.end() ? zero_block() : it->second;
}

void NvmDevice::poke_block(Addr addr, const Block& data) { blocks_[align(addr)] = data; }

}  // namespace steins

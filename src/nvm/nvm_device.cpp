#include "nvm/nvm_device.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "common/rng.hpp"

namespace steins {

void NvmDevice::check_limit(Addr addr) const {
  if (addr >= limit_) {
    throw std::out_of_range("NVM write beyond device address limit: addr=" +
                            std::to_string(addr) + " limit=" + std::to_string(limit_));
  }
}

Block NvmDevice::read_block(Addr addr) {
  ++stats_.reads;
  stats_.energy_nj += cfg_.read_energy_nj;
  return peek_block(addr);
}

void NvmDevice::write_block(Addr addr, const Block& data) {
  check_limit(addr);
  ++stats_.writes;
  stats_.energy_nj += cfg_.write_energy_nj;
  const Addr line = align(addr);
  Line& ln = store_.get_or_create(line);
  ln.block = data;
  ln.flags |= Line::kBlock;
  if (!ecc_faults_.empty() && (ln.flags & Line::kWorn) == 0) {
    ecc_faults_.erase(line);  // a full-line write lays a fresh codeword
  }
  if (wear_enabled()) apply_wear(line, ln);
}

std::uint64_t NvmDevice::read_tag(Addr addr) const {
  const Line* ln = store_.find(align(addr));
  return ln == nullptr ? 0 : ln->tag;
}

void NvmDevice::write_tag(Addr addr, std::uint64_t tag) {
  check_limit(addr);
  Line& ln = store_.get_or_create(align(addr));
  ln.tag = tag;
  ln.flags |= Line::kTag;
}

std::uint64_t NvmDevice::read_tag2(Addr addr) const {
  const Line* ln = store_.find(align(addr));
  return ln == nullptr ? 0 : ln->tag2;
}

void NvmDevice::write_tag2(Addr addr, std::uint64_t tag) {
  check_limit(addr);
  Line& ln = store_.get_or_create(align(addr));
  ln.tag2 = tag;
  ln.flags |= Line::kTag2;
}

Block NvmDevice::peek_block(Addr addr) const {
  // A line with no block write yet holds zeroes, so no flag check is needed:
  // a plain entry read preserves "untouched blocks read as zero".
  const Line* ln = store_.find(align(addr));
  return ln == nullptr ? zero_block() : ln->block;
}

void NvmDevice::poke_block(Addr addr, const Block& data) {
  check_limit(addr);
  const Addr line = align(addr);
  Line& ln = store_.get_or_create(line);
  ln.block = data;
  ln.flags |= Line::kBlock;
  if (!ecc_faults_.empty() && (ln.flags & Line::kWorn) == 0) {
    ecc_faults_.erase(line);
  }
  // Pokes model bookkeeping/attacker traffic: they do not age the cells,
  // but neither can they heal a worn-out line.
  if ((ln.flags & Line::kWorn) != 0) refault_worn(line, ln);
}

void NvmDevice::inject_ecc_error(Addr addr, unsigned bit, bool correctable,
                                 unsigned retries) {
  check_limit(addr);
  const Addr line = align(addr);
  Block image = peek_block(line);
  auto it = ecc_faults_.find(line);
  if (it == ecc_faults_.end()) {
    EccLineState st;
    st.golden = image;
    st.uncorrectable = !correctable;
    st.retries_needed = correctable ? retries : 0;
    it = ecc_faults_.emplace(line, st).first;
  } else {
    // A second independent fault exceeds the SECDED correction budget.
    it->second.uncorrectable = true;
    it->second.retries_needed = 0;
  }
  image[bit / 8] = static_cast<std::uint8_t>(image[bit / 8] ^ (1u << (bit % 8)));
  Line& ln = store_.get_or_create(line);
  ln.block = image;
  ln.flags |= Line::kBlock;
}

bool NvmDevice::ecc_uncorrectable(Addr addr) const {
  auto it = ecc_faults_.find(align(addr));
  return it != ecc_faults_.end() && it->second.uncorrectable;
}

NvmDevice::EccRead NvmDevice::read_block_ecc(Addr addr, Block* out) {
  ++stats_.reads;
  stats_.energy_nj += cfg_.read_energy_nj;
  const Addr line = align(addr);
  if (ecc_faults_.empty()) {
    *out = peek_block(line);
    return EccRead::kClean;
  }
  auto it = ecc_faults_.find(line);
  if (it == ecc_faults_.end()) {
    *out = peek_block(line);
    return EccRead::kClean;
  }
  if (it->second.uncorrectable) {
    ++stats_.ecc_uncorrectable_reads;
    *out = peek_block(line);
    return EccRead::kUncorrectable;
  }
  if (it->second.retries_needed > 0) {
    --it->second.retries_needed;
    ++stats_.ecc_retry_reads;
    *out = peek_block(line);
    return EccRead::kNeedsRetry;
  }
  ++stats_.ecc_corrected_reads;
  *out = it->second.golden;
  return EccRead::kCorrected;
}

Block NvmDevice::peek_corrected(Addr addr, bool* uncorrectable) const {
  const Addr line = align(addr);
  auto it = ecc_faults_.find(line);
  if (it == ecc_faults_.end()) {
    if (uncorrectable != nullptr) *uncorrectable = false;
    return peek_block(line);
  }
  if (uncorrectable != nullptr) *uncorrectable = it->second.uncorrectable;
  return it->second.uncorrectable ? peek_block(line) : it->second.golden;
}

std::uint64_t NvmDevice::wear_limit(Addr addr) const {
  SplitMix64 sm(cfg_.wear_seed ^ (align(addr) * 0x9e3779b97f4a7c15ULL));
  // Irwin-Hall: the sum of four uniforms has mean 2 and variance 1/3; only
  // +/*// on integer-derived doubles, so the draw needs no libm and is
  // bit-identical everywhere.
  double s = 0.0;
  for (int i = 0; i < 4; ++i) {
    s += static_cast<double>(sm.next() >> 11) * (1.0 / 9007199254740992.0);
  }
  const double z = (s - 2.0) * 1.7320508075688772;  // sqrt(3): unit variance
  const double lim = static_cast<double>(cfg_.endurance_mean_writes) +
                     static_cast<double>(cfg_.endurance_sigma_writes) * z;
  return lim < 4.0 ? 4 : static_cast<std::uint64_t>(lim);
}

std::uint32_t NvmDevice::wear_of(Addr addr) const {
  const Line* ln = store_.find(align(addr));
  return ln == nullptr ? 0 : ln->wear;
}

bool NvmDevice::worn_out(Addr addr) const {
  const Line* ln = store_.find(align(addr));
  return ln != nullptr && (ln->flags & Line::kWorn) != 0;
}

std::vector<std::pair<Addr, std::uint32_t>> NvmDevice::wear_profile(Addr lo, Addr hi) const {
  std::vector<std::pair<Addr, std::uint32_t>> out;
  store_.for_each([&](Addr line, const Line& ln) {
    if (ln.wear > 0 && line >= lo && line < hi) out.emplace_back(line, ln.wear);
  });
  std::sort(out.begin(), out.end());
  return out;
}

void NvmDevice::apply_wear(Addr line, Line& ln) {
  if ((ln.flags & Line::kWorn) != 0) {
    refault_worn(line, ln);  // writing to stuck cells re-corrupts the word
    return;
  }
  ++ln.wear;
  const std::uint64_t limit = wear_limit(line);
  if (ln.wear >= limit) {
    ln.flags |= Line::kWorn;
    ++stats_.lines_worn_out;
    refault_worn(line, ln);
    return;
  }
  const auto level_at = static_cast<std::uint64_t>(
      static_cast<double>(limit) * cfg_.wear_level_fraction);
  if (level_at > 0 && ln.wear >= level_at && remap_pool_free_ > 0) {
    // Proactive wear-leveling: migrate the content to a spare from the
    // remap pool; the logical line keeps serving from fresh cells.
    --remap_pool_free_;
    ln.wear = 0;
    ++stats_.lines_wear_leveled;
  }
}

void NvmDevice::refault_worn(Addr line, Line& ln) {
  EccLineState& st = ecc_faults_[line];
  st.uncorrectable = true;
  st.retries_needed = 0;
  // One stuck cell at a position derived from the line address: the fresh
  // codeword is corrupt the moment it lands, and SECDED cannot fix a cell
  // that no longer programs.
  SplitMix64 sm(cfg_.wear_seed ^ line ^ 0x77ea12fc5b23a917ULL);
  const unsigned bit = static_cast<unsigned>(sm.next() % (kBlockSize * 8));
  ln.block[bit / 8] = static_cast<std::uint8_t>(ln.block[bit / 8] ^ (1u << (bit % 8)));
}

bool NvmDevice::remap_line(Addr addr) {
  if (remap_pool_free_ == 0) return false;
  --remap_pool_free_;
  const Addr line = align(addr);
  ecc_faults_.erase(line);
  if (Line* ln = store_.find(line)) {
    // The spare line starts blank: drop the images and presence flags. The
    // key slot stays occupied (tombstone-free table; remaps are rare).
    *ln = Line{};
  }
  ++stats_.lines_remapped;
  return true;
}

std::vector<Addr> NvmDevice::resident_blocks(Addr lo, Addr hi) const {
  std::vector<Addr> out;
  store_.for_each([&](Addr line, const Line& ln) {
    if ((ln.flags & Line::kBlock) != 0 && line >= lo && line < hi) out.push_back(line);
  });
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Addr> NvmDevice::resident_tags(Addr lo, Addr hi) const {
  std::vector<Addr> out;
  store_.for_each([&](Addr line, const Line& ln) {
    if ((ln.flags & Line::kTag) != 0 && line >= lo && line < hi) out.push_back(line);
  });
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace steins

#include "nvm/nvm_device.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace steins {

void NvmDevice::check_limit(Addr addr) const {
  if (addr >= limit_) {
    throw std::out_of_range("NVM write beyond device address limit: addr=" +
                            std::to_string(addr) + " limit=" + std::to_string(limit_));
  }
}

Block NvmDevice::read_block(Addr addr) {
  ++stats_.reads;
  stats_.energy_nj += cfg_.read_energy_nj;
  return peek_block(addr);
}

void NvmDevice::write_block(Addr addr, const Block& data) {
  check_limit(addr);
  ++stats_.writes;
  stats_.energy_nj += cfg_.write_energy_nj;
  const Addr line = align(addr);
  Line& ln = store_.get_or_create(line);
  ln.block = data;
  ln.flags |= Line::kBlock;
  if (!ecc_faults_.empty()) {
    ecc_faults_.erase(line);  // a full-line write lays a fresh codeword
  }
}

std::uint64_t NvmDevice::read_tag(Addr addr) const {
  const Line* ln = store_.find(align(addr));
  return ln == nullptr ? 0 : ln->tag;
}

void NvmDevice::write_tag(Addr addr, std::uint64_t tag) {
  check_limit(addr);
  Line& ln = store_.get_or_create(align(addr));
  ln.tag = tag;
  ln.flags |= Line::kTag;
}

std::uint64_t NvmDevice::read_tag2(Addr addr) const {
  const Line* ln = store_.find(align(addr));
  return ln == nullptr ? 0 : ln->tag2;
}

void NvmDevice::write_tag2(Addr addr, std::uint64_t tag) {
  check_limit(addr);
  Line& ln = store_.get_or_create(align(addr));
  ln.tag2 = tag;
  ln.flags |= Line::kTag2;
}

Block NvmDevice::peek_block(Addr addr) const {
  // A line with no block write yet holds zeroes, so no flag check is needed:
  // a plain entry read preserves "untouched blocks read as zero".
  const Line* ln = store_.find(align(addr));
  return ln == nullptr ? zero_block() : ln->block;
}

void NvmDevice::poke_block(Addr addr, const Block& data) {
  check_limit(addr);
  const Addr line = align(addr);
  Line& ln = store_.get_or_create(line);
  ln.block = data;
  ln.flags |= Line::kBlock;
  if (!ecc_faults_.empty()) {
    ecc_faults_.erase(line);
  }
}

void NvmDevice::inject_ecc_error(Addr addr, unsigned bit, bool correctable,
                                 unsigned retries) {
  check_limit(addr);
  const Addr line = align(addr);
  Block image = peek_block(line);
  auto it = ecc_faults_.find(line);
  if (it == ecc_faults_.end()) {
    EccLineState st;
    st.golden = image;
    st.uncorrectable = !correctable;
    st.retries_needed = correctable ? retries : 0;
    it = ecc_faults_.emplace(line, st).first;
  } else {
    // A second independent fault exceeds the SECDED correction budget.
    it->second.uncorrectable = true;
    it->second.retries_needed = 0;
  }
  image[bit / 8] = static_cast<std::uint8_t>(image[bit / 8] ^ (1u << (bit % 8)));
  Line& ln = store_.get_or_create(line);
  ln.block = image;
  ln.flags |= Line::kBlock;
}

bool NvmDevice::ecc_uncorrectable(Addr addr) const {
  auto it = ecc_faults_.find(align(addr));
  return it != ecc_faults_.end() && it->second.uncorrectable;
}

NvmDevice::EccRead NvmDevice::read_block_ecc(Addr addr, Block* out) {
  ++stats_.reads;
  stats_.energy_nj += cfg_.read_energy_nj;
  const Addr line = align(addr);
  if (ecc_faults_.empty()) {
    *out = peek_block(line);
    return EccRead::kClean;
  }
  auto it = ecc_faults_.find(line);
  if (it == ecc_faults_.end()) {
    *out = peek_block(line);
    return EccRead::kClean;
  }
  if (it->second.uncorrectable) {
    ++stats_.ecc_uncorrectable_reads;
    *out = peek_block(line);
    return EccRead::kUncorrectable;
  }
  if (it->second.retries_needed > 0) {
    --it->second.retries_needed;
    ++stats_.ecc_retry_reads;
    *out = peek_block(line);
    return EccRead::kNeedsRetry;
  }
  ++stats_.ecc_corrected_reads;
  *out = it->second.golden;
  return EccRead::kCorrected;
}

Block NvmDevice::peek_corrected(Addr addr, bool* uncorrectable) const {
  const Addr line = align(addr);
  auto it = ecc_faults_.find(line);
  if (it == ecc_faults_.end()) {
    if (uncorrectable != nullptr) *uncorrectable = false;
    return peek_block(line);
  }
  if (uncorrectable != nullptr) *uncorrectable = it->second.uncorrectable;
  return it->second.uncorrectable ? peek_block(line) : it->second.golden;
}

bool NvmDevice::remap_line(Addr addr) {
  if (remap_pool_free_ == 0) return false;
  --remap_pool_free_;
  const Addr line = align(addr);
  ecc_faults_.erase(line);
  if (Line* ln = store_.find(line)) {
    // The spare line starts blank: drop the images and presence flags. The
    // key slot stays occupied (tombstone-free table; remaps are rare).
    *ln = Line{};
  }
  ++stats_.lines_remapped;
  return true;
}

std::vector<Addr> NvmDevice::resident_blocks(Addr lo, Addr hi) const {
  std::vector<Addr> out;
  store_.for_each([&](Addr line, const Line& ln) {
    if ((ln.flags & Line::kBlock) != 0 && line >= lo && line < hi) out.push_back(line);
  });
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Addr> NvmDevice::resident_tags(Addr lo, Addr hi) const {
  std::vector<Addr> out;
  store_.for_each([&](Addr line, const Line& ln) {
    if ((ln.flags & Line::kTag) != 0 && line >= lo && line < hi) out.push_back(line);
  });
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace steins

// Functional + timing model of the DDR-based NVM device (paper Table I).
//
// Functional: a sparse 64 B-block store over the simulated physical address
// space (data region, metadata region, and per-scheme auxiliary regions).
// Untouched blocks read as zero. Each block additionally carries an 8-byte
// "tag" sidecar modeling ECC-colocated MACs (Synergy-style): the tag moves
// with the block in a single memory transaction, so it adds no traffic.
//
// Timing/energy: per-access latencies from the PCM latency model and a
// simple energy counter. Queueing/scheduling lives in NvmChannel.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/config.hpp"
#include "common/status.hpp"
#include "common/types.hpp"

namespace steins {

struct NvmStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  double energy_nj = 0.0;
  // ECC model counters.
  std::uint64_t ecc_corrected_reads = 0;
  std::uint64_t ecc_retry_reads = 0;
  std::uint64_t ecc_uncorrectable_reads = 0;
  std::uint64_t lines_remapped = 0;
  // Wear/endurance model counters.
  std::uint64_t lines_wear_leveled = 0;  // proactive migrations to spares
  std::uint64_t lines_worn_out = 0;      // lines that crossed their limit

  void reset() { *this = NvmStats{}; }
};

class NvmDevice {
 public:
  explicit NvmDevice(const NvmConfig& cfg)
      : cfg_(cfg), limit_(address_limit(cfg)),
        remap_pool_free_(cfg.remap_pool_lines) {}

  /// Functional block read; counts a device read + energy.
  Block read_block(Addr addr);

  /// Functional block write; counts a device write + energy.
  /// Throws std::out_of_range beyond the device's address limit — a write
  /// there is a wild pointer (corrupted offset / record arithmetic), and
  /// silently storing it would mask the bug under the sparse block map.
  void write_block(Addr addr, const Block& data);

  /// ECC-colocated 8-byte tag (data HMAC, node sidecar). Reads/writes of the
  /// tag ride along with the block transaction: no extra traffic or energy.
  std::uint64_t read_tag(Addr addr) const;
  void write_tag(Addr addr, std::uint64_t tag);

  /// Second sidecar: spare ECC bits used by STAR to stash parent-counter
  /// LSBs alongside each block (paper §IV: "STAR stores the LSBs of the
  /// parent counter in the child node").
  std::uint64_t read_tag2(Addr addr) const;
  void write_tag2(Addr addr, std::uint64_t tag);

  /// Peek without charging traffic (attacker / test / snapshot use).
  Block peek_block(Addr addr) const;
  void poke_block(Addr addr, const Block& data);  // attacker mutation

  // --- Per-line ECC model -------------------------------------------------
  //
  // A line can carry at most one ECC fault record. A correctable fault keeps
  // the pre-fault ("golden") image recoverable after `retries` re-reads; the
  // stored image itself is flipped, so plain read_block/peek_block return
  // corrupted bytes exactly as before this model existed. A second fault on
  // an already-faulted line exceeds SECDED's correction budget and escalates
  // to uncorrectable. Any full-line write lays down a fresh codeword and
  // clears the fault.

  /// Outcome of an ECC-aware read attempt.
  enum class EccRead { kClean, kCorrected, kNeedsRetry, kUncorrectable };

  /// Flip `bit` of the stored image and record the ECC fault. `retries` is
  /// the number of kNeedsRetry results a correctable fault yields before a
  /// read finally corrects (models marginal cells needing re-sensing).
  void inject_ecc_error(Addr addr, unsigned bit, bool correctable,
                        unsigned retries);

  bool has_ecc_faults() const { return !ecc_faults_.empty(); }
  bool ecc_faulted(Addr addr) const { return ecc_faults_.contains(align(addr)); }
  bool ecc_uncorrectable(Addr addr) const;

  /// ECC-aware read: counts a device read; decrements the retry budget on
  /// kNeedsRetry. On kCorrected, *out holds the golden image; on kClean the
  /// stored image; otherwise the corrupted stored image.
  EccRead read_block_ecc(Addr addr, Block* out);

  /// Peek through ECC without charging traffic: golden image for a
  /// correctable fault, stored (corrupt) image otherwise. Sets *uncorrectable
  /// when the line's content is unrecoverable.
  Block peek_corrected(Addr addr, bool* uncorrectable) const;

  /// Retire an uncorrectable line to a spare from the remap pool. Clears the
  /// fault and drops the stale block/tag images (the spare starts blank).
  /// Returns false when the pool is exhausted.
  bool remap_line(Addr addr);

  std::size_t remap_pool_free() const { return remap_pool_free_; }

  // --- Per-cell wear / endurance model ------------------------------------
  //
  // Enabled when cfg.endurance_mean_writes > 0. Demand-path writes
  // (write_block) age the target line; peeks/pokes model bookkeeping or
  // attacker traffic and do not. A line approaching its endurance limit is
  // proactively migrated to a spare (wear-leveling, data preserved); past
  // the limit its cells stick and every write re-faults the line as
  // uncorrectable, feeding the ECC retirement/quarantine path.

  bool wear_enabled() const { return cfg_.endurance_mean_writes > 0; }

  /// Deterministic per-line Gaussian endurance limit (writes until the
  /// cells stick). Irwin-Hall sum of four uniforms: no libm, so the draw
  /// is bit-identical across platforms. Clamped to >= 4.
  std::uint64_t wear_limit(Addr addr) const;

  /// Demand writes absorbed by this line since birth (or last migration).
  std::uint32_t wear_of(Addr addr) const;

  /// True once the line crossed its limit (stuck cells; writes re-fault).
  bool worn_out(Addr addr) const;

  /// Resident lines in [lo, hi) with nonzero wear, sorted by address —
  /// the endurance campaign's projection input.
  std::vector<std::pair<Addr, std::uint32_t>> wear_profile(Addr lo, Addr hi) const;

  bool contains(Addr addr) const {
    const Line* ln = store_.find(align(addr));
    return ln != nullptr && (ln->flags & Line::kBlock) != 0;
  }

  /// Pull the backing-store slot for `addr` toward the host cache ahead of
  /// an access. Purely a host-side hint; no simulated effect.
  void prefetch(Addr addr) const { store_.prefetch(align(addr)); }

  /// Addresses (sorted, block-aligned) of resident blocks / tags in
  /// [lo, hi). Fault injection and audits target regions through these;
  /// sorting makes the selection independent of hash-map iteration order.
  std::vector<Addr> resident_blocks(Addr lo, Addr hi) const;
  std::vector<Addr> resident_tags(Addr lo, Addr hi) const;

  /// Exclusive upper bound of writable addresses. The data region, the SIT
  /// metadata region (< 15% of capacity) and the per-scheme aux regions all
  /// fit below 2x capacity plus a fixed slack; anything above is garbage.
  Addr address_limit() const { return limit_; }
  static Addr address_limit(const NvmConfig& cfg) {
    return cfg.capacity_bytes * 2 + (Addr{32} << 20);
  }

  const NvmStats& stats() const { return stats_; }
  void reset_stats() { stats_.reset(); }

  const NvmConfig& config() const { return cfg_; }

 private:
  static Addr align(Addr a) { return a & ~static_cast<Addr>(kBlockSize - 1); }

  void check_limit(Addr addr) const;

  struct EccLineState {
    Block golden{};            // pre-fault image (valid while correctable)
    bool uncorrectable = false;
    unsigned retries_needed = 0;
  };

  // --- Line arena ---------------------------------------------------------
  //
  // One open-addressed table keyed by block-aligned address holds the block
  // image plus both ECC-colocated tag sidecars inline, so one probe serves
  // the whole memory transaction (they travel together on the wire, and now
  // in the same simulator cache lines). Presence flags preserve the sparse
  // semantics: untouched blocks read as zero and stay invisible to
  // resident_blocks()/contains(); a "remapped" line clears its flags but
  // keeps its key slot (deletions are rare, tombstone-free).

  struct Line {
    static constexpr std::uint8_t kBlock = 1;
    static constexpr std::uint8_t kTag = 2;
    static constexpr std::uint8_t kTag2 = 4;
    static constexpr std::uint8_t kWorn = 8;  // crossed its endurance limit

    Block block{};
    std::uint64_t tag = 0;
    std::uint64_t tag2 = 0;
    std::uint32_t wear = 0;  // demand writes since birth / last migration
    std::uint8_t flags = 0;
  };

  /// Age `ln` by one demand write: wear-level toward a spare near the
  /// limit, re-fault the line as uncorrectable past it.
  void apply_wear(Addr line, Line& ln);

  /// Re-inject the stuck-cell fault of a worn-out line after a write laid
  /// a "fresh" codeword over it (worn cells do not heal).
  void refault_worn(Addr line, Line& ln);

  /// Linear-probing hash table, power-of-two capacity, keys are line+1
  /// (0 = empty). Entries live inline in a parallel array, so a key hit is
  /// one extra indexed load, not a pointer chase. Entry storage is raw
  /// (malloc, no value-init): a table that grows to millions of 88-byte
  /// lines would otherwise spend its time memset-ing slots the key array
  /// already marks empty. Only claimed slots are ever constructed or read.
  class LineTable {
   public:
    static_assert(std::is_trivially_copyable_v<Line> &&
                      std::is_trivially_destructible_v<Line>,
                  "raw entry storage relies on memcpy-able lines");

    LineTable() : keys_(kInitialCap, 0), entries_(alloc(kInitialCap)), mask_(kInitialCap - 1) {}
    LineTable(const LineTable& o)
        : keys_(o.keys_), entries_(alloc(o.mask_ + 1)), mask_(o.mask_), size_(o.size_) {
      for (std::size_t i = 0; i <= mask_; ++i) {
        if (keys_[i] != 0) entries_[i] = o.entries_[i];
      }
    }
    LineTable& operator=(const LineTable& o) {
      if (this != &o) {
        LineTable copy(o);
        keys_.swap(copy.keys_);
        std::swap(entries_, copy.entries_);
        std::swap(mask_, copy.mask_);
        std::swap(size_, copy.size_);
      }
      return *this;
    }
    ~LineTable() { std::free(entries_); }

    /// Pull the line's home slot toward the host cache ahead of a lookup.
    void prefetch(Addr line) const {
      const std::size_t i = hash(line + 1) & mask_;
      __builtin_prefetch(&keys_[i]);
      __builtin_prefetch(&entries_[i]);
    }

    Line* find(Addr line) const {
      const std::uint64_t key = line + 1;
      std::size_t i = hash(key) & mask_;
      while (true) {
        const std::uint64_t k = keys_[i];
        if (k == key) return &entries_[i];
        if (k == 0) return nullptr;
        i = (i + 1) & mask_;
      }
    }

    Line& get_or_create(Addr line) {
      const std::uint64_t key = line + 1;
      std::size_t i = hash(key) & mask_;
      while (true) {
        const std::uint64_t k = keys_[i];
        if (k == key) return entries_[i];
        if (k == 0) break;
        i = (i + 1) & mask_;
      }
      if ((size_ + 1) * 2 > mask_ + 1) {
        grow();
        i = hash(key) & mask_;
        while (keys_[i] != 0) i = (i + 1) & mask_;
      }
      keys_[i] = key;
      ++size_;
      entries_[i] = Line{};
      return entries_[i];
    }

    /// Visit every occupied slot as (line_addr, entry). Table order; callers
    /// needing a deterministic order sort the addresses they collect.
    template <typename Fn>
    void for_each(Fn&& fn) const {
      for (std::size_t i = 0; i <= mask_; ++i) {
        if (keys_[i] != 0) fn(static_cast<Addr>(keys_[i] - 1), entries_[i]);
      }
    }

   private:
    static constexpr std::size_t kInitialCap = 4096;

    static std::size_t hash(std::uint64_t k) {
      k ^= k >> 33;
      k *= 0xff51afd7ed558ccdULL;
      k ^= k >> 33;
      return static_cast<std::size_t>(k);
    }

    static Line* alloc(std::size_t cap) {
      Line* p = static_cast<Line*>(std::malloc(cap * sizeof(Line)));
      STEINS_CHECK(p != nullptr, "NVM line table allocation failed");
      return p;
    }

    void grow() {
      const std::size_t cap = (mask_ + 1) * 2;
      std::vector<std::uint64_t> keys(cap, 0);
      Line* entries = alloc(cap);
      const std::size_t mask = cap - 1;
      for (std::size_t i = 0; i <= mask_; ++i) {
        if (keys_[i] == 0) continue;
        std::size_t j = hash(keys_[i]) & mask;
        while (keys[j] != 0) j = (j + 1) & mask;
        keys[j] = keys_[i];
        entries[j] = entries_[i];
      }
      keys_.swap(keys);
      std::free(entries_);
      entries_ = entries;
      mask_ = mask;
    }

    std::vector<std::uint64_t> keys_;
    Line* entries_;
    std::size_t mask_;
    std::size_t size_ = 0;
  };

  NvmConfig cfg_;
  Addr limit_;
  NvmStats stats_;
  std::size_t remap_pool_free_;
  LineTable store_;
  std::unordered_map<Addr, EccLineState> ecc_faults_;
};

}  // namespace steins

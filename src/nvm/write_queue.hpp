// NvmChannel: banked-device timing model with a read-priority write queue.
//
// Discipline (standard memory-controller policy, matching the paper's
// 64-entry write queue): writes are posted into a FIFO and drain to their
// banks once the queue exceeds a watermark; an arriving read waits only for
// its own bank (no mid-write preemption). A posted write stalls the
// producer only when the queue is full. A write->read turnaround (tWTR)
// penalty is charged when a read follows a write on the same bank.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <deque>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "nvm/nvm_device.hpp"

namespace steins {

class FaultInjector;

struct ChannelStats {
  LatencyAccumulator read_latency;    // arrival -> data returned (device only)
  LatencyAccumulator write_latency;   // enqueue -> NVM write completed
  std::uint64_t write_queue_stalls = 0;
  void reset() {
    read_latency.reset();
    write_latency.reset();
    write_queue_stalls = 0;
  }
  /// Fold another channel's stats in (per-controller workers accumulate
  /// locally and merge at the epoch barrier).
  void merge(const ChannelStats& other) {
    read_latency.merge(other.read_latency);
    write_latency.merge(other.write_latency);
    write_queue_stalls += other.write_queue_stalls;
  }
};

class NvmChannel {
 public:
  NvmChannel(const SystemConfig& cfg, NvmDevice& dev);

  /// Blocking read arriving at `now`. Returns the cycle when the 64 B block
  /// is available (and fills `*out` if non-null).
  Cycle read(Addr addr, Cycle now, Block* out);

  /// Post a write at `now`. Returns the cycle when the producer may
  /// continue (== now unless the queue was full and it had to stall).
  /// If `acc` is given, (completion - birth) is accumulated into it when
  /// the write drains (per-class latency attribution); `birth` defaults to
  /// `now`. If `tag` is given, the ECC-colocated tag travels with the
  /// queued line and reaches the device in the same transaction as the
  /// block — a torn or dropped line write tears or drops its tag too.
  Cycle write(Addr addr, const Block& data, Cycle now, LatencyAccumulator* acc = nullptr,
              Cycle birth = 0, const std::uint64_t* tag = nullptr);

  /// True if a write to `addr` is still queued (store-forwarding window).
  bool queued(Addr addr) const;

  /// Tag of the newest queued write to `addr` that carries one (the
  /// store-forwarding companion for tag reads). Returns false if no queued
  /// write to `addr` carries a tag.
  bool peek_queued_tag(Addr addr, std::uint64_t* tag) const;

  /// Drain queued writes that the device can start strictly before `t`.
  /// Writes are held back until the queue exceeds the drain watermark
  /// (standard controller policy): reads then rarely collide with the
  /// write stream, and store-forwarding covers the queued window.
  void drain_until(Cycle t);

  /// Queue depth above which the device starts draining writes.
  static constexpr std::size_t kDrainWatermark = 0;

  /// Banks per DIMM. The paper's single-DIMM results are reproduced best
  /// with a serialized device (1); raise for bank-parallel studies.
  static constexpr std::size_t kBanks = 1;

  /// Synchronously drain everything (crash persist / ADR flush); returns
  /// the cycle at which the last write completes.
  Cycle drain_all(Cycle now);

  /// Drain at power loss. Without a fault hook this is drain_all; with one
  /// installed, the injector decides each queued write's fate (commit /
  /// tear / drop / reorder) and commits the survivors itself. Only the
  /// crash path uses this — orderly flushes (flush_all_metadata) always
  /// drain intact.
  Cycle crash_drain_all(Cycle now);

  /// Install (or clear, with nullptr) the crash-drain fault hook.
  void set_crash_fault_hook(FaultInjector* injector) { crash_hook_ = injector; }

  std::size_t queue_depth() const { return queue_.size(); }
  Cycle device_free_at() const {
    Cycle m = 0;
    for (const Cycle f : free_at_) m = std::max(m, f);
    return m;
  }
  const ChannelStats& stats() const { return stats_; }
  void reset_stats() { stats_.reset(); }

  /// Latency of a read served by write-queue store-forwarding.
  static constexpr Cycle kForwardCycles = 4;

 private:
  struct Pending {
    Addr addr;
    Block data;
    Cycle enqueued;
    Cycle birth;
    LatencyAccumulator* acc;
    bool has_tag = false;
    std::uint64_t tag = 0;
  };

  /// Issue the front queued write with earliest start time `start`.
  void issue_front(Cycle start);

  std::size_t bank_of(Addr addr) const {
    return static_cast<std::size_t>((addr / kBlockSize) % kBanks);
  }

  const SystemConfig& cfg_;
  NvmDevice& dev_;
  // Device timing constants, converted from ns once at construction: the
  // float->cycle conversion is too slow to repeat on every transaction.
  Cycle read_cycles_;
  Cycle write_cycles_;
  Cycle wtr_cycles_;
  FaultInjector* crash_hook_ = nullptr;
  std::deque<Pending> queue_;
  std::array<Cycle, kBanks> free_at_{};
  std::array<bool, kBanks> last_was_write_{};
  ChannelStats stats_;
};

}  // namespace steins

#include "nvm/write_queue.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "fault/fault.hpp"

namespace steins {

NvmChannel::NvmChannel(const SystemConfig& cfg, NvmDevice& dev)
    : cfg_(cfg),
      dev_(dev),
      read_cycles_(cfg.nvm_read_cycles()),
      write_cycles_(cfg.nvm_write_cycles()),
      wtr_cycles_(cfg.ns_to_cycles(cfg.nvm.t_wtr_ns)) {}

void NvmChannel::issue_front(Cycle start) {
  Pending& w = queue_.front();
  const std::size_t bank = bank_of(w.addr);
  const Cycle begin = std::max(start, free_at_[bank]);
  const Cycle done = begin + write_cycles_;
  dev_.write_block(w.addr, w.data);
  if (w.has_tag) dev_.write_tag(w.addr, w.tag);
  stats_.write_latency.add(done - w.enqueued);
  if (w.acc != nullptr) w.acc->add(done - w.birth);
  free_at_[bank] = done;
  last_was_write_[bank] = true;
  queue_.pop_front();
}

bool NvmChannel::queued(Addr addr) const {
  if (queue_.empty()) return false;  // common case under an eager watermark
  for (const auto& w : queue_) {
    if (w.addr == addr) return true;
  }
  return false;
}

bool NvmChannel::peek_queued_tag(Addr addr, std::uint64_t* tag) const {
  if (queue_.empty()) return false;
  for (auto it = queue_.rbegin(); it != queue_.rend(); ++it) {
    if (it->addr == addr && it->has_tag) {
      if (tag != nullptr) *tag = it->tag;
      return true;
    }
  }
  return false;
}

void NvmChannel::drain_until(Cycle t) {
  while (queue_.size() > kDrainWatermark) {
    const std::size_t bank = bank_of(queue_.front().addr);
    const Cycle begin = std::max(queue_.front().enqueued, free_at_[bank]);
    if (begin >= t) break;  // this bank cannot start the write before t
    issue_front(begin);
  }
}

Cycle NvmChannel::drain_all(Cycle now) {
  while (!queue_.empty()) {
    issue_front(std::max(now, free_at_[bank_of(queue_.front().addr)]));
  }
  return std::max(now, device_free_at());
}

Cycle NvmChannel::crash_drain_all(Cycle now) {
  if (crash_hook_ == nullptr) return drain_all(now);
  std::vector<FaultInjector::QueuedWrite> entries;
  entries.reserve(queue_.size());
  for (const Pending& w : queue_) {
    entries.push_back(FaultInjector::QueuedWrite{w.addr, w.data, w.has_tag, w.tag});
  }
  queue_.clear();
  crash_hook_->drain_crashed_queue(std::move(entries), dev_);
  return std::max(now, device_free_at());
}

Cycle NvmChannel::read(Addr addr, Cycle now, Block* out) {
  drain_until(now);
  // Store-forwarding: a read that hits a queued write is served from the
  // write queue (newest entry wins) without touching the array.
  if (!queue_.empty()) {
    for (auto it = queue_.rbegin(); it != queue_.rend(); ++it) {
      if (it->addr == addr) {
        if (out != nullptr) *out = it->data;
        const Cycle done = now + kForwardCycles;
        stats_.read_latency.add(done - now);
        return done;
      }
    }
  }
  const std::size_t bank = bank_of(addr);
  Cycle begin = std::max(now, free_at_[bank]);
  if (last_was_write_[bank]) begin += wtr_cycles_;
  const Cycle done = begin + read_cycles_;
  const Block b = dev_.read_block(addr);
  if (out != nullptr) *out = b;
  free_at_[bank] = done;
  last_was_write_[bank] = false;
  stats_.read_latency.add(done - now);
  return done;
}

Cycle NvmChannel::write(Addr addr, const Block& data, Cycle now, LatencyAccumulator* acc,
                        Cycle birth, const std::uint64_t* tag) {
  drain_until(now);
  if (queue_.size() >= cfg_.nvm.write_queue_entries) {
    // Queue full: the producer stalls until one entry drains.
    ++stats_.write_queue_stalls;
    const std::size_t bank = bank_of(queue_.front().addr);
    issue_front(std::max(now, free_at_[bank]));
    now = std::max(now, free_at_[bank]);
  }
  queue_.push_back(Pending{addr, data, now, birth == 0 ? now : birth, acc,
                           tag != nullptr, tag != nullptr ? *tag : 0});
  return now;
}

}  // namespace steins

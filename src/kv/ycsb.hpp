// Closed-loop multi-client YCSB-style driver over MultiControllerMemory.
//
// N logical clients, each with its own timeline and RNG, issue KV
// operations against a shared store image interleaved across memory
// controllers (paper §IV-F). The driver is a discrete-event simulation:
// each step executes one whole operation for the client whose clock is
// furthest behind, so clients on disjoint DIMMs overlap while a shared
// hot DIMM serializes — exactly the controller model's contention story.
//
// Key popularity is Zipfian (YCSB's default theta = 0.99), scattered over
// the key space by a multiplicative hash so hot keys spread across
// controllers. Mixes follow the YCSB core workloads:
//   A 50% read / 50% update      B 95% read / 5% update
//   C 100% read                  F 50% read / 50% read-modify-write
//
// Per-operation latencies land in mergeable log-bucketed histograms
// (per-client, merged at the end) for p50/p95/p99/p99.9 reporting.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "kv/kv_store.hpp"
#include "secure/secure_memory.hpp"

namespace steins::kv {

enum class Mix { kA, kB, kC, kF };

const char* mix_name(Mix m);
std::optional<Mix> parse_mix(const std::string& name);

struct YcsbConfig {
  Mix mix = Mix::kA;
  unsigned clients = 4;
  unsigned controllers = 2;
  std::uint64_t ops = 100'000;   // measured operations across all clients
  std::uint64_t keys = 10'000;   // preloaded key universe
  std::size_t slots = std::size_t{1} << 15;  // store capacity (power of two)
  std::size_t value_bytes = 24;
  double zipf_s = 0.99;          // YCSB default skew
  std::uint64_t seed = 1;
  Addr base = Addr{1} << 20;
  std::size_t interleave_bytes = 4096;
};

struct YcsbResult {
  std::uint64_t ops = 0;
  std::uint64_t reads = 0;
  std::uint64_t updates = 0;     // updates + the write half of RMWs
  LatencyHistogram read_lat;     // cycles, merged across clients
  LatencyHistogram update_lat;
  LatencyHistogram all_lat;
  Cycle makespan = 0;            // busiest client's measured span
  double seconds = 0.0;
  double kops_per_sec = 0.0;
  std::uint64_t nvm_writes = 0;  // across all controllers, incl. preload
};

/// Run one (scheme, mix) cell. Throws std::invalid_argument on nonsense
/// configurations (zero clients, keys overflowing the table, region not
/// fitting the NVM capacity).
YcsbResult run_ycsb(const SystemConfig& cfg, Scheme scheme, const YcsbConfig& ycfg);

}  // namespace steins::kv

// Saturating multi-client YCSB-style driver over MultiControllerMemory.
//
// N logical clients issue KV operations in fixed round-robin order against
// a shared store image interleaved across memory controllers (paper
// §IV-F). The driver runs in epochs, each in two phases:
//
//  1. Schedule resolution (sequential, cheap): each op's client, key, type,
//     and on-media images are derived from the issuing client's private RNG
//     stream and a driver-side shadow of the committed store state — no
//     memory execution needed. The op's accesses are appended, in global op
//     order, to the queue of the controller each address routes to.
//  2. Replay (parallel): every controller serves its queue back-to-back on
//     its own timeline (a work-conserving FIFO server — clients keep each
//     DIMM saturated). Same-address accesses route to the same controller
//     and keep global op order, so every read's data is exact and is
//     validated against the shadow.
//
// At the epoch barrier the per-access service times are folded, in global
// op order, into per-client latency histograms (an op's latency is the sum
// of its accesses' service times, queueing included). Controller queues
// are disjoint and controllers share no mutable state, so replaying them
// on `jobs` worker threads is bit-identical to replaying them inline:
// --jobs N and --jobs 1 produce the same result to the last bit.
//
// Hot keys still collide where it matters: a shared hot DIMM's queue
// serializes while disjoint DIMMs overlap — the controller model's
// contention story — and the run's makespan is the busiest controller's
// frontier.
//
// Key popularity is Zipfian (YCSB's default theta = 0.99), scattered over
// the key space by a multiplicative hash so hot keys spread across
// controllers. Mixes follow the YCSB core workloads:
//   A 50% read / 50% update      B 95% read / 5% update
//   C 100% read                  F 50% read / 50% read-modify-write
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "kv/kv_store.hpp"
#include "secure/secure_memory.hpp"

namespace steins::kv {

enum class Mix { kA, kB, kC, kF };

const char* mix_name(Mix m);
std::optional<Mix> parse_mix(const std::string& name);

struct YcsbConfig {
  Mix mix = Mix::kA;
  unsigned clients = 4;
  unsigned controllers = 2;
  std::uint64_t ops = 100'000;   // measured operations across all clients
  std::uint64_t keys = 10'000;   // preloaded key universe
  std::size_t slots = std::size_t{1} << 15;  // store capacity (power of two)
  std::size_t value_bytes = 24;
  double zipf_s = 0.99;          // YCSB default skew
  std::uint64_t seed = 1;
  Addr base = Addr{1} << 20;
  std::size_t interleave_bytes = 4096;
  /// Host worker threads for controller replay (capped at `controllers`).
  /// Any value produces bit-identical results; 1 replays inline.
  unsigned jobs = 1;
};

struct YcsbResult {
  std::uint64_t ops = 0;
  std::uint64_t reads = 0;
  std::uint64_t updates = 0;     // updates + the write half of RMWs
  LatencyHistogram read_lat;     // cycles, merged across clients
  LatencyHistogram update_lat;
  LatencyHistogram all_lat;
  Cycle makespan = 0;            // busiest controller's measured span
  double seconds = 0.0;
  double kops_per_sec = 0.0;
  std::uint64_t nvm_writes = 0;  // across all controllers, incl. preload
};

/// Run one (scheme, mix) cell. Throws std::invalid_argument on nonsense
/// configurations (zero clients, keys overflowing the table, region not
/// fitting the NVM capacity).
YcsbResult run_ycsb(const SystemConfig& cfg, Scheme scheme, const YcsbConfig& ycfg);

}  // namespace steins::kv

// Concurrent sharded KV serving engine over MultiControllerMemory.
//
// Where the YCSB driver (ycsb.hpp) saturates interleaved controllers from
// one replaying thread, this engine promotes the KV layer into a real
// serving topology: one SHARD per controller, one worker thread per shard
// (common/thread_pool.hpp ShardGang), each shard owning a private KvLayout
// carved out of its controller's local address space. An operation's
// accesses never cross shards, so shards run genuinely in parallel — on
// the simulated timelines always, and on host threads when jobs > 1.
//
// The run proceeds in epochs, each in two phases (DESIGN.md §18):
//
//  1. Schedule resolution (sequential): per-client RNG streams draw keys
//     (Zipf), the router maps each key to its home shard, per-shard
//     bounded admission queues shed overload into typed degraded
//     verdicts, and group commit coalesces commit-word persists into
//     per-window commit-block writes. Every planned access carries a
//     global sequence number in emission order.
//  2. Replay (parallel): every shard's worker replays its queue on its
//     own controller behind a ShardGang epoch barrier. Queues are
//     disjoint and controllers share no mutable state, so jobs = 1 and
//     jobs = N are bit-identical to the last bit; per-client latency
//     histograms and the group-commit batch-size distribution merge at
//     the barrier in global op order.
//
// Group commit (paper §IV-B spirit — SecPM-style write coalescing applied
// at the serving layer): within a window, an update writes its record
// replica immediately but only BUFFERS its commit word; the shard flushes
// one commit-block write per dirty block at the window boundary. Reads of
// a buffered slot are served from the commit buffer (no media commit
// read). A second update to a slot whose commit word is still buffered
// forces the window out first — otherwise its record write would land in
// the replica the durable commit word still points at, breaking the
// two-replica crash invariant.
//
// Routing: kHash scatters keys by multiplicative hash; kLoadAware greedily
// assigns keys to the least-loaded shard by expected Zipf weight
// (descending popularity, capacity-guarded), which evens out per-shard
// occupancy when the hot set would otherwise pile onto one DIMM.
//
// Crash validation (run_serving_crash): the global access sequence makes
// "crash at access boundary K" jobs-independent — each shard executes
// exactly its queue prefix below K, ADR drains every issued write, and
// recovery is diffed against the durable commit state derived from commit
// writes below K. Zero silent corruption is the acceptance bar for every
// scheme (write-back passes by being detected as unrecoverable).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "fault/fault.hpp"
#include "kv/kv_store.hpp"
#include "kv/ycsb.hpp"
#include "secure/secure_memory.hpp"

namespace steins::kv {

enum class Routing { kHash, kLoadAware };

const char* routing_name(Routing r);
std::optional<Routing> parse_routing(const std::string& name);

struct ServingConfig {
  Mix mix = Mix::kA;
  unsigned clients = 4;
  unsigned shards = 2;            // controllers == shards == worker slots
  std::uint64_t ops = 100'000;    // offered operations across all clients
  std::uint64_t keys = 10'000;    // preloaded key universe (global)
  std::size_t slots = std::size_t{1} << 14;  // PER-SHARD table slots (pow 2)
  std::size_t value_bytes = 24;
  double zipf_s = 0.99;
  std::uint64_t seed = 1;
  Addr base = Addr{1} << 20;      // per-shard local region base
  /// Worker threads (capped at shards). Any value is bit-identical; 1
  /// replays every shard inline on the calling thread.
  unsigned jobs = 1;
  std::uint64_t epoch_ops = 8192;
  Routing routing = Routing::kLoadAware;
  /// Ops a shard admits per epoch before shedding into degraded verdicts
  /// (0 = unbounded). Shed ops consume client RNG identically, so runs
  /// with different depths stay schedule-comparable.
  std::uint64_t queue_depth = 0;
  /// Commit-word updates a shard buffers before flushing the window
  /// (0 = group commit off: every update writes its commit block at once).
  std::uint64_t group_commit_window = 64;
};

struct ShardServingStats {
  std::uint64_t keys = 0;          // keys routed to this shard
  std::uint64_t ops = 0;           // admitted (executed) ops
  std::uint64_t shed = 0;          // admission-queue overflow verdicts
  bool degraded = false;           // shed anything => degraded service
  Cycle busy = 0;                  // measured span on this shard's timeline
  double occupancy = 0.0;          // busy / makespan (1.0 = the critical shard)
  std::uint64_t commit_flushes = 0;   // group-commit windows flushed
  std::uint64_t commit_writes = 0;    // commit-block writes issued
  double mean_batch = 0.0;            // coalesced commit words per flush
};

struct ServingResult {
  std::uint64_t offered_ops = 0;
  std::uint64_t ops = 0;           // executed (admitted) ops
  std::uint64_t reads = 0;
  std::uint64_t updates = 0;
  std::uint64_t shed_ops = 0;      // typed overload verdicts, never executed
  std::uint64_t degraded_shards = 0;
  LatencyHistogram read_lat;       // cycles, merged across clients
  LatencyHistogram update_lat;
  LatencyHistogram all_lat;
  /// Group-commit batch sizes: one sample per flushed window (number of
  /// commit-word updates it coalesced).
  LatencyHistogram batch_sizes;
  Cycle makespan = 0;              // busiest shard's measured span
  double seconds = 0.0;
  double kops_per_sec = 0.0;       // executed ops over the makespan
  std::uint64_t nvm_writes = 0;    // across all shards, measured phase
  std::uint64_t commit_writes = 0; // commit-block writes (coalescing visible)
  /// FNV-1a digest of the final durable KV image (every commit word +
  /// every live record), read back after the last barrier. Bit-identity
  /// checks compare this across jobs values.
  std::uint64_t image_digest = 0;
  std::vector<ShardServingStats> shards;
};

/// Run one (scheme, mix) serving cell to completion. Throws
/// std::invalid_argument on nonsense configurations (zero clients/shards,
/// per-shard region exceeding the controller's capacity, keys overflowing
/// the admission-guarded tables).
ServingResult run_sharded_serving(const SystemConfig& cfg, Scheme scheme,
                                  const ServingConfig& scfg);

struct ServingCrashOptions {
  static constexpr std::uint64_t kRandomBoundary = ~std::uint64_t{0};
  /// Global access sequence number to crash at: every access with seq < K
  /// is issued (and ADR-durable), nothing at or after K is. kRandomBoundary
  /// draws uniformly over [0, total_accesses].
  std::uint64_t crash_at = kRandomBoundary;
  /// Optional hardware fault folded into every controller's crash drain
  /// (per-controller plans derive from (fault_seed, crash_at, shard)).
  FaultClass fault_class = FaultClass::kNone;
  std::uint64_t fault_seed = 0;
};

struct ServingCrashReport {
  std::uint64_t total_accesses = 0;
  std::uint64_t crash_at = 0;
  std::uint64_t committed_slots = 0;   // durable live slots at the crash
  bool recovery_supported = false;
  bool recovery_ok = false;
  bool verified = false;               // durable diff exact, no salvage
  bool salvaged = false;               // recovery degraded but attack-free
  bool degraded_verified = false;      // readable slots all matched
  std::uint64_t slots_unavailable = 0; // durable slots behind typed errors
  bool faulted = false;
  bool fault_detected = false;
  double recovery_seconds = 0.0;
  std::string detail;

  /// Same verdict shape as KvCrashReport: WB passes by being detected as
  /// unrecoverable; others pass on exact verification, verified salvage,
  /// or (under an injected fault) detection. Silent divergence never
  /// passes.
  bool pass(Scheme scheme) const {
    if (scheme == Scheme::kWriteBack) return !recovery_supported;
    if (recovery_ok && verified) return true;
    if (salvaged && degraded_verified) return true;
    return faulted && fault_detected;
  }
};

/// Plan the full run once to learn the access count, then re-run it with
/// the crash injected at the chosen boundary, recover every controller
/// (in parallel when scfg.jobs > 1 — bit-identical), and diff the
/// recovered image against the durable commit state.
ServingCrashReport run_serving_crash(const SystemConfig& cfg, Scheme scheme,
                                     const ServingConfig& scfg,
                                     const ServingCrashOptions& opt);

/// Total planned accesses for a serving configuration (schedule resolution
/// only, no memory execution) — lets sweeps choose crash strides cheaply.
std::uint64_t count_serving_accesses(const SystemConfig& cfg, Scheme scheme,
                                     const ServingConfig& scfg);

}  // namespace steins::kv

#include "kv/lsm/manifest.hpp"

#include <cstring>
#include <utility>

namespace steins::lsm {

ManifestStore::ManifestStore(System& sys, const LsmLayout& layout, PersistFn persist)
    : sys_(sys), layout_(layout), persist_(std::move(persist)) {}

Status ManifestStore::read_committed(ManifestData* out, bool* pristine) {
  *pristine = false;
  const Block cb = sys_.load(layout_.manifest_commit_addr());
  const std::uint64_t commit = get_u64(cb.data());
  if (commit == 0) {
    *pristine = true;
    return Status::Ok();
  }
  const int replica = static_cast<int>(commit & 1);
  const std::uint64_t version = commit >> 1;

  std::string bytes;
  bytes.reserve(layout_.manifest_blocks * kBlockSize);
  for (std::size_t b = 0; b < layout_.manifest_blocks; ++b) {
    const Block blk = sys_.load(layout_.manifest_addr(replica) + b * kBlockSize);
    bytes.append(reinterpret_cast<const char*>(blk.data()), kBlockSize);
  }
  ManifestData m;
  if (!decode_manifest(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                       bytes.size(), &m) ||
      m.version != version) {
    return Status(ErrorCode::kIntegrity, "manifest corrupt");
  }
  *out = std::move(m);
  return Status::Ok();
}

void ManifestStore::install(const ManifestData& m) {
  std::string bytes;
  encode_manifest(m, bytes);
  STEINS_CHECK(m.version >= 1, "manifest versions start at 1");
  if (bytes.size() > layout_.manifest_blocks * kBlockSize) {
    throw StatusError(Status(ErrorCode::kInvalidArgument, "manifest overflows replica"));
  }

  const int replica = static_cast<int>(m.version & 1);
  const Addr base = layout_.manifest_addr(replica);
  const std::size_t blocks = (bytes.size() + kBlockSize - 1) / kBlockSize;
  for (std::size_t b = 0; b < blocks; ++b) {
    Block img = zero_block();
    const std::size_t off = b * kBlockSize;
    std::memcpy(img.data(), bytes.data() + off,
                std::min(bytes.size() - off, kBlockSize));
    const Addr addr = base + b * kBlockSize;
    sys_.store(addr, img);
    persist_(addr, "manifest-data");
  }

  // Atomic commit: the single-block persist below is the install point.
  Block cb = zero_block();
  std::string word;
  put_u64(word, (m.version << 1) | static_cast<std::uint64_t>(replica));
  std::memcpy(cb.data(), word.data(), word.size());
  sys_.store(layout_.manifest_commit_addr(), cb);
  persist_(layout_.manifest_commit_addr(), "manifest-commit");
}

}  // namespace steins::lsm

#include "kv/lsm/sorted_run.hpp"

#include <algorithm>
#include <cstring>
#include <string>

namespace steins::lsm {

namespace {

Addr extent_addr(const LsmLayout& layout, const Extent& extent, std::uint64_t block) {
  return layout.arena_base() + (extent.start_block + block) * kBlockSize;
}

/// Store + persist a byte span into consecutive blocks of the extent,
/// starting at `first_block`. The span need not be block-sized; the final
/// partial block is zero-padded.
void write_span(System& sys, const LsmLayout& layout, const Extent& extent,
                std::uint64_t first_block, const std::string& bytes,
                const PersistFn& persist, const std::string& stage) {
  const std::uint64_t blocks = (bytes.size() + kBlockSize - 1) / kBlockSize;
  for (std::uint64_t b = 0; b < blocks; ++b) {
    Block img = zero_block();
    const std::size_t off = b * kBlockSize;
    const std::size_t n = std::min(bytes.size() - off, kBlockSize);
    std::memcpy(img.data(), bytes.data() + off, n);
    const Addr addr = extent_addr(layout, extent, first_block + b);
    sys.store(addr, img);
    persist(addr, stage.c_str());
  }
}

/// Load `length` bytes starting `byte_offset` into the extent. Loads go
/// through the secure path block by block.
std::string read_span(System& sys, const LsmLayout& layout, const Extent& extent,
                      std::uint64_t byte_offset, std::uint64_t length) {
  std::string out;
  out.reserve(static_cast<std::size_t>(length));
  std::uint64_t block = byte_offset / kBlockSize;
  std::uint64_t in_block = byte_offset % kBlockSize;
  while (out.size() < length) {
    const Block b = sys.load(extent_addr(layout, extent, block));
    const std::uint64_t n =
        std::min<std::uint64_t>(length - out.size(), kBlockSize - in_block);
    out.append(reinterpret_cast<const char*>(b.data()) + in_block,
               static_cast<std::size_t>(n));
    in_block = 0;
    ++block;
  }
  return out;
}

}  // namespace

void run_image_append(RunImage* image, std::uint64_t key, WalKind kind,
                      const std::string& value, std::size_t index_every) {
  if (image->entries % index_every == 0) {
    image->index.push_back(IndexEntry{key, image->data.size()});
  }
  encode_run_entry(key, kind, value, image->data);
  ++image->entries;
}

void write_run(System& sys, const LsmLayout& layout, const Extent& extent,
               std::uint64_t run_id, const RunImage& image, const PersistFn& persist,
               const char* stage_prefix) {
  STEINS_CHECK(extent.block_count >= image.blocks_needed(),
               "run extent smaller than the image");
  const std::string data_stage = std::string(stage_prefix) + "-data";
  const std::string footer_stage = std::string(stage_prefix) + "-footer";

  // Entry stream, then the sparse index at the next block boundary.
  write_span(sys, layout, extent, 0, image.data, persist, data_stage);
  std::string index_bytes;
  index_bytes.reserve(image.index.size() * kIndexEntryBytes);
  for (const IndexEntry& e : image.index) {
    put_u64(index_bytes, e.key);
    put_u64(index_bytes, e.offset);
  }
  write_span(sys, layout, extent, image.data_blocks(), index_bytes, persist,
             data_stage);

  // Footer last: it is the run's validity witness, so every data/index
  // barrier above must land before it does.
  RunFooter f;
  f.run_id = run_id;
  f.entries = image.entries;
  f.data = OffsetSize{0, image.data.size()};
  f.index = OffsetSize{image.data_blocks() * kBlockSize, index_bytes.size()};
  f.crc = run_footer_crc(f, reinterpret_cast<const std::uint8_t*>(image.data.data()),
                         reinterpret_cast<const std::uint8_t*>(index_bytes.data()));
  const Addr footer = extent_addr(layout, extent, extent.block_count - 1);
  sys.store(footer, encode_run_footer(f));
  persist(footer, footer_stage.c_str());
}

Expected<RunReader> RunReader::open(System& sys, const LsmLayout& layout,
                                    const Extent& extent, std::uint64_t expect_run_id,
                                    bool verify_checksum) {
  RunReader r;
  r.layout_ = layout;
  r.extent_ = extent;

  const Block fb = sys.load(extent_addr(layout, extent, extent.block_count - 1));
  if (!decode_run_footer(fb, &r.footer_) || r.footer_.run_id != expect_run_id) {
    return Status(ErrorCode::kIntegrity, "run footer invalid");
  }
  const std::uint64_t payload_blocks = extent.block_count - 1;
  if (r.footer_.data.length + r.footer_.index.length >
          payload_blocks * kBlockSize ||
      (r.footer_.index.offset + r.footer_.index.length + kBlockSize - 1) /
              kBlockSize >
          payload_blocks) {
    return Status(ErrorCode::kIntegrity, "run footer ranges out of extent");
  }

  const std::string index_bytes =
      read_span(sys, layout, extent, r.footer_.index.offset, r.footer_.index.length);
  if (verify_checksum) {
    const std::string data_bytes =
        read_span(sys, layout, extent, r.footer_.data.offset, r.footer_.data.length);
    const std::uint64_t crc = run_footer_crc(
        r.footer_, reinterpret_cast<const std::uint8_t*>(data_bytes.data()),
        reinterpret_cast<const std::uint8_t*>(index_bytes.data()));
    if (crc != r.footer_.crc) {
      return Status(ErrorCode::kIntegrity, "run checksum mismatch");
    }
  }

  r.index_.reserve(index_bytes.size() / kIndexEntryBytes);
  for (std::size_t off = 0; off + kIndexEntryBytes <= index_bytes.size();
       off += kIndexEntryBytes) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(index_bytes.data()) + off;
    r.index_.push_back(IndexEntry{get_u64(p), get_u64(p + 8)});
  }
  if ((r.footer_.entries == 0) != r.index_.empty()) {
    return Status(ErrorCode::kIntegrity, "run index/entry count mismatch");
  }
  if (!r.index_.empty()) {
    r.min_key_ = r.index_.front().key;
    // The last entry's key is the max; walk the final indexed segment.
    const std::string tail = read_span(sys, layout, extent, r.index_.back().offset,
                                       r.footer_.data.length - r.index_.back().offset);
    std::size_t cursor = 0;
    RunEntry e;
    std::size_t encoded = 0;
    while (cursor < tail.size()) {
      if (!decode_run_entry(reinterpret_cast<const std::uint8_t*>(tail.data()) + cursor,
                            tail.size() - cursor, &e, &encoded)) {
        return Status(ErrorCode::kIntegrity, "run tail entry malformed");
      }
      cursor += encoded;
    }
    r.max_key_ = e.key;
  }
  return r;
}

Addr RunReader::data_addr() const {
  return layout_.arena_base() + extent_.start_block * kBlockSize;
}

std::optional<RunReader::Found> RunReader::find(System& sys, std::uint64_t key) const {
  if (index_.empty() || key < min_key_ || key > max_key_) return std::nullopt;

  // Last index entry whose key <= target: scan starts at its offset and
  // ends at the next index entry's offset (or the data end).
  auto it = std::upper_bound(
      index_.begin(), index_.end(), key,
      [](std::uint64_t k, const IndexEntry& e) { return k < e.key; });
  --it;  // safe: key >= min_key_ == index_.front().key
  const std::uint64_t begin = it->offset;
  const std::uint64_t end =
      (it + 1 == index_.end()) ? footer_.data.length : (it + 1)->offset;

  // Decode forward with a one-block memo so consecutive entries sharing a
  // block cost one load.
  std::uint64_t memo_block = ~std::uint64_t{0};
  Block memo{};
  const auto byte_at = [&](std::uint64_t off) -> const std::uint8_t* {
    const std::uint64_t blk = off / kBlockSize;
    if (blk != memo_block) {
      memo = sys.load(data_addr() + blk * kBlockSize);
      memo_block = blk;
    }
    return memo.data() + off % kBlockSize;
  };
  // Entries can straddle blocks, so assemble each one's bytes explicitly.
  std::string scratch;
  const auto span_at = [&](std::uint64_t off, std::size_t n) -> const std::uint8_t* {
    scratch.clear();
    for (std::size_t i = 0; i < n; ++i) {
      scratch.push_back(static_cast<char>(*byte_at(off + i)));
    }
    return reinterpret_cast<const std::uint8_t*>(scratch.data());
  };

  std::uint64_t cursor = begin;
  while (cursor < end) {
    const std::uint8_t* hdr = span_at(cursor, kRunEntryHeaderBytes);
    const std::uint64_t e_key = get_u64(hdr);
    const std::uint64_t kindlen = get_u64(hdr + 8);
    const std::uint64_t e_kind = kindlen >> 56;
    const std::uint64_t len = kindlen & ((std::uint64_t{1} << 48) - 1);
    if ((e_kind != 1 && e_kind != 2) || len > kMaxLsmValueBytes ||
        cursor + kRunEntryHeaderBytes + len > end) {
      throw StatusError(Status(ErrorCode::kIntegrity, "run entry malformed"));
    }
    if (e_key > key) return std::nullopt;  // sorted: passed the slot
    if (e_key == key) {
      RunEntry e;
      std::size_t encoded = 0;
      const std::uint8_t* full = span_at(cursor, kRunEntryHeaderBytes + len);
      if (!decode_run_entry(full, kRunEntryHeaderBytes + len, &e, &encoded)) {
        throw StatusError(Status(ErrorCode::kIntegrity, "run entry malformed"));
      }
      return Found{e.kind, std::move(e.value)};
    }
    cursor += kRunEntryHeaderBytes + len;
  }
  return std::nullopt;
}

std::vector<RunEntry> RunReader::load_all(System& sys) const {
  const std::string data =
      read_span(sys, layout_, extent_, footer_.data.offset, footer_.data.length);
  std::vector<RunEntry> out;
  out.reserve(static_cast<std::size_t>(footer_.entries));
  std::size_t cursor = 0;
  while (cursor < data.size()) {
    RunEntry e;
    std::size_t encoded = 0;
    if (!decode_run_entry(reinterpret_cast<const std::uint8_t*>(data.data()) + cursor,
                          data.size() - cursor, &e, &encoded)) {
      throw StatusError(Status(ErrorCode::kIntegrity, "run entry malformed"));
    }
    out.push_back(std::move(e));
    cursor += encoded;
  }
  if (out.size() != footer_.entries) {
    throw StatusError(Status(ErrorCode::kIntegrity, "run entry count mismatch"));
  }
  return out;
}

}  // namespace steins::lsm

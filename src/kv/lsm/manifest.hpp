// Replicated manifest with an atomic commit word (KvStore's two-replica
// protocol, applied to the LSM superblock).
//
// Install protocol for version v into replica r = v & 1:
//   1. store + persist every block of replica r      ("manifest-data")
//   2. store + persist the commit word (v<<1 | r)    ("manifest-commit")
//
// Step 2 is a single-block persist, so the commit is atomic: a crash
// before it leaves the old commit word (old manifest wins); after it, the
// new replica is fully durable by ordering. Reads follow the commit word.
//
// A commit word of 0 means "never initialised" — the engine formats a
// fresh region. Version numbers start at 1 so (v<<1|r) can never be 0.
#pragma once

#include <cstdint>

#include "common/status.hpp"
#include "kv/lsm/format.hpp"
#include "kv/lsm/lsm_layout.hpp"
#include "kv/lsm/wal.hpp"
#include "sim/system.hpp"

namespace steins::lsm {

class ManifestStore {
 public:
  ManifestStore(System& sys, const LsmLayout& layout, PersistFn persist);

  /// Read the committed manifest. Outcomes:
  ///   - ok, formatted=false: `*out` holds the committed manifest
  ///   - ok, formatted=true:  the region is pristine (commit word 0)
  ///   - kIntegrity: the commit word points at a replica that fails to
  ///     decode — the manifest is lost (e.g. overwritten by a fault)
  Status read_committed(ManifestData* out, bool* pristine);

  /// Durably install `m` as the next version (m.version must already be
  /// bumped by the caller). Throws StatusError(kCapacity) when the runs
  /// list overflows the replica region.
  void install(const ManifestData& m);

 private:
  System& sys_;
  LsmLayout layout_;
  PersistFn persist_;
};

}  // namespace steins::lsm

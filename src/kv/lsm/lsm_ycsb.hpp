// YCSB-style workload driver for the LSM engine over a single System.
//
// Unlike the slot-store YCSB driver (kv/ycsb.hpp, multi-controller
// saturation), this one measures the *engine*: a single client issues the
// A/B/C/F mixes against an LsmStore, so per-op latencies include WAL
// appends, memtable flushes, and compactions exactly where the op stream
// triggers them. Latency is measured in simulated CPU cycles around each
// operation; write amplification is reported two ways:
//
//   write_amp          — scheme-level: every NVM block write the secure
//                        path issued (data + counters + tree + shadow)
//                        per user byte put
//   logical_write_amp  — engine-level: WAL + run bytes the engine itself
//                        persisted per user byte put
//
// The gap between the two is the security tax on a log-structured write
// path, which is the point of the experiment.
#pragma once

#include <cstdint>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "kv/lsm/lsm_store.hpp"
#include "kv/ycsb.hpp"
#include "secure/secure_memory.hpp"

namespace steins::lsm {

struct LsmYcsbConfig {
  kv::Mix mix = kv::Mix::kA;
  std::uint64_t ops = 20'000;    // measured operations
  std::uint64_t keys = 2'048;    // preloaded key universe
  std::size_t value_bytes = 24;
  double zipf_s = 0.99;
  std::uint64_t seed = 1;
  LsmLayout layout;
  LsmConfig engine;
  bool verify = false;  // final dump() against the shadow model
};

struct LsmYcsbResult {
  std::uint64_t ops = 0;
  std::uint64_t reads = 0;
  std::uint64_t updates = 0;       // updates + the write half of RMWs
  LatencyHistogram read_lat;       // cycles per operation
  LatencyHistogram update_lat;
  LatencyHistogram all_lat;
  double seconds = 0.0;            // simulated time of the measured window
  double kops_per_sec = 0.0;
  std::uint64_t nvm_writes = 0;    // scheme-level block writes (measured window)
  std::uint64_t bytes_put = 0;     // user value bytes in the measured window
  double write_amp = 0.0;          // nvm_writes * 64 / bytes_put (0 for read-only)
  double logical_write_amp = 0.0;  // engine bytes persisted / bytes_put
  LsmStats engine_stats;           // deltas over the measured window
  bool verified = true;
};

/// Run one (scheme, mix) cell. Throws std::invalid_argument on nonsense
/// configurations (zero ops/keys, region overflowing the NVM capacity).
LsmYcsbResult run_lsm_ycsb(const SystemConfig& cfg, Scheme scheme,
                           const LsmYcsbConfig& ycfg);

}  // namespace steins::lsm

#include "kv/lsm/wal.hpp"

#include <cstring>
#include <utility>

#include "common/status.hpp"

namespace steins::lsm {

Wal::Wal(System& sys, const LsmLayout& layout, PersistFn persist)
    : sys_(sys), layout_(layout), persist_(std::move(persist)) {}

void Wal::reset(std::uint64_t epoch) {
  epoch_ = epoch;
  offset_ = 0;
  tail_ = zero_block();
}

std::size_t Wal::append(const WalRecord& rec) {
  std::string bytes;
  encode_wal_record(rec, bytes);
  STEINS_CHECK(fits(bytes.size()), "WAL append past the end of the region");

  // Fill the byte stream into block images, flushing each full block. The
  // tail block's prior content is cached in memory, so no load is needed.
  std::vector<Addr> touched;
  std::size_t cursor = 0;
  while (cursor < bytes.size()) {
    const std::uint64_t block = (offset_ + cursor) / kBlockSize;
    const std::size_t in_block = (offset_ + cursor) % kBlockSize;
    const std::size_t n = std::min(bytes.size() - cursor, kBlockSize - in_block);
    if (in_block == 0) tail_ = zero_block();  // fresh block: no stale bytes
    std::memcpy(tail_.data() + in_block, bytes.data() + cursor, n);
    const Addr addr = block_addr(block);
    sys_.store(addr, tail_);
    touched.push_back(addr);
    cursor += n;
  }
  offset_ += bytes.size();

  // One barrier per touched block, in write order. The record is committed
  // only once the LAST barrier completes; a crash between them leaves a
  // torn tail that replay discards via the crc/commit-word check.
  for (const Addr addr : touched) persist_(addr, "wal");
  return touched.size();
}

Wal::ReplayResult Wal::replay(std::uint64_t epoch) {
  ReplayResult out;
  epoch_ = epoch;
  offset_ = 0;
  tail_ = zero_block();

  std::string buf;
  std::uint64_t loaded_blocks = 0;
  const auto extend = [&]() -> bool {
    if (loaded_blocks >= layout_.wal_blocks) return false;
    const Block b = sys_.load(block_addr(loaded_blocks));
    buf.append(reinterpret_cast<const char*>(b.data()), kBlockSize);
    ++loaded_blocks;
    return true;
  };

  std::size_t cursor = 0;
  for (;;) {
    WalRecord rec;
    std::size_t encoded = 0;
    const WalDecode d =
        decode_wal_record(reinterpret_cast<const std::uint8_t*>(buf.data()) + cursor,
                          buf.size() - cursor, epoch, &rec, &encoded);
    if (d == WalDecode::kOk) {
      out.records.push_back(std::move(rec));
      cursor += encoded;
      continue;
    }
    if (d == WalDecode::kNeedMore) {
      if (extend()) continue;
      // Region exhausted mid-record: only possible for a torn append that
      // ran past a stale-length header; treat as the tail.
      out.torn_tail = cursor < buf.size();
      break;
    }
    // kInvalid ends the log. For reporting, distinguish a clean end
    // (pristine zeros or stale pre-flush bytes, whose leading epoch word
    // differs) from a genuinely torn current-epoch append whose crc or
    // commit word failed.
    out.torn_tail =
        buf.size() - cursor >= 8 && get_u64(buf.data() + cursor) == epoch;
    break;
  }

  out.bytes = cursor;
  offset_ = cursor;
  if (cursor % kBlockSize != 0) {
    std::memcpy(tail_.data(), buf.data() + (cursor / kBlockSize) * kBlockSize,
                kBlockSize);
  }
  return out;
}

}  // namespace steins::lsm

#include "kv/lsm/lsm_store.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/thread_pool.hpp"

namespace steins::lsm {

namespace {

/// Key-range shards for the deterministic parallel merge. Fixed (not
/// derived from the job count) so results are bit-identical whatever
/// merge_jobs is set to.
constexpr std::size_t kMergeShards = 8;

/// Pure k-way merge: inputs[0] has the highest precedence (newest). Shards
/// the key space on fixed boundaries derived only from the global key
/// range, merges shards independently (on `pool` when given), and
/// concatenates — bit-identical for any parallelism. Free of LsmStore state
/// so the background-compaction task can run it off-thread safely.
std::vector<RunEntry> merge_inputs(const std::vector<std::vector<RunEntry>>& inputs,
                                   ThreadPool* pool) {
  std::uint64_t min_key = ~std::uint64_t{0};
  std::uint64_t max_key = 0;
  std::size_t total = 0;
  for (const auto& in : inputs) {
    if (in.empty()) continue;
    min_key = std::min(min_key, in.front().key);
    max_key = std::max(max_key, in.back().key);
    total += in.size();
  }
  if (total == 0) return {};

  const unsigned __int128 span =
      static_cast<unsigned __int128>(max_key) - min_key + 1;
  // Shard s covers [bounds[s], bounds[s+1]) — except the last shard, which
  // is inclusive of max_key (the full-u64 span can't express an exclusive
  // upper bound in 64 bits).
  std::vector<std::uint64_t> bounds;
  bounds.reserve(kMergeShards + 1);
  for (std::size_t s = 0; s <= kMergeShards; ++s) {
    bounds.push_back(static_cast<std::uint64_t>(
        static_cast<unsigned __int128>(min_key) + span * s / kMergeShards));
  }

  std::vector<std::vector<RunEntry>> shard_out(kMergeShards);
  const auto merge_shard = [&](std::size_t s) {
    const std::uint64_t lo = bounds[s];
    const bool last = s + 1 == kMergeShards;
    const std::uint64_t hi = bounds[s + 1];  // exclusive unless last shard
    std::map<std::uint64_t, const RunEntry*> merged;
    for (const auto& in : inputs) {
      auto it = std::lower_bound(
          in.begin(), in.end(), lo,
          [](const RunEntry& e, std::uint64_t k) { return e.key < k; });
      for (; it != in.end() && (last ? it->key <= max_key : it->key < hi); ++it) {
        merged.emplace(it->key, &*it);  // emplace: first (newest) source wins
      }
    }
    auto& out = shard_out[s];
    out.reserve(merged.size());
    for (const auto& [key, e] : merged) {
      if (e->kind == WalKind::kErase) continue;  // bottom level drops tombstones
      out.push_back(*e);
    }
  };

  if (pool != nullptr) {
    pool->for_each_index(kMergeShards, merge_shard);
  } else {
    for (std::size_t s = 0; s < kMergeShards; ++s) merge_shard(s);
  }

  std::vector<RunEntry> out;
  out.reserve(total);
  for (auto& shard : shard_out) {
    out.insert(out.end(), std::make_move_iterator(shard.begin()),
               std::make_move_iterator(shard.end()));
  }
  return out;
}

}  // namespace

LsmStore::LsmStore(System& sys, const LsmLayout& layout, const LsmConfig& cfg)
    : sys_(sys),
      layout_(layout),
      cfg_(cfg),
      wal_(sys, layout,
           [this](Addr addr, const char* stage) { persist_barrier(addr, stage); }),
      manifest_store_(sys, layout,
                      [this](Addr addr, const char* stage) {
                        persist_barrier(addr, stage);
                      }) {}

LsmStore::~LsmStore() = default;

void LsmStore::persist_barrier(Addr addr, const char* stage) {
  if (hook_) hook_(stage, stats_.persist_barriers);
  sys_.persist(addr);
  ++stats_.persist_barriers;
}

Status LsmStore::open() {
  open_ = false;
  read_only_ = false;
  degraded_ = false;
  wal_torn_ = false;
  wal_replayed_ = 0;
  // An in-flight merge from a previous open is abandoned, exactly like a
  // crash before the join: its output was never written, the old manifest
  // still references every input.
  pending_.reset();
  l0_.clear();
  l1_.clear();
  memtable_.clear();
  memtable_bytes_ = 0;
  try {
    bool pristine = false;
    ManifestData m;
    Status s = manifest_store_.read_committed(&m, &pristine);
    if (!s.ok()) return s;
    if (pristine) {
      manifest_ = ManifestData{};
      manifest_.version = 1;
      manifest_.wal_epoch = 1;
      manifest_store_.install(manifest_);
      wal_.reset(manifest_.wal_epoch);
      open_ = true;
      return Status::Ok();
    }

    manifest_ = std::move(m);
    for (const RunMeta& r : manifest_.runs) {
      const Extent ext{r.start_block, r.block_count};
      auto reader = RunReader::open(sys_, layout_, ext, r.run_id,
                                    cfg_.verify_runs_on_open);
      if (!reader) return reader.status();
      (r.level == 0 ? l0_ : l1_).push_back(std::move(reader.value()));
    }
    const auto by_run_id = [](const RunReader& a, const RunReader& b) {
      return a.run_id() < b.run_id();
    };
    std::sort(l0_.begin(), l0_.end(), by_run_id);
    std::sort(l1_.begin(), l1_.end(), by_run_id);

    // Replay the current-epoch WAL tail into the memtable; a torn tail is
    // a legal end of log (the in-flight op never committed).
    Wal::ReplayResult rep = wal_.replay(manifest_.wal_epoch);
    wal_torn_ = rep.torn_tail;
    wal_replayed_ = rep.records.size();
    for (const WalRecord& rec : rep.records) {
      auto it = memtable_.find(rec.key);
      if (it != memtable_.end()) {
        memtable_bytes_ -= kRunEntryHeaderBytes + it->second.value.size();
        memtable_.erase(it);
      }
      memtable_bytes_ += kRunEntryHeaderBytes + rec.value.size();
      memtable_[rec.key] = MemEntry{rec.kind, rec.value};
      manifest_.next_seq = std::max(manifest_.next_seq, rec.seq + 1);
    }
    open_ = true;
    return Status::Ok();
  } catch (const StatusError& e) {
    // Typed unavailability (quarantined/uncorrectable lines under the
    // region) and integrity failures surface as a Status; anything else
    // is a bug and propagates.
    if (is_unavailable(e.code()) || e.code() == ErrorCode::kIntegrity) {
      return e.status();
    }
    throw;
  }
}

void LsmStore::append_op(std::uint64_t key, WalKind kind, const std::string& value) {
  STEINS_CHECK(open_, "LsmStore used before open()");
  if (read_only_) {
    throw StatusError(Status(ErrorCode::kReadOnly, "store is read-only"));
  }
  if (value.size() > cfg_.max_value_bytes) {
    throw std::invalid_argument("value exceeds max_value_bytes");
  }

  // Make room first: flushing bumps the WAL epoch, so the record must be
  // encoded against the post-flush epoch.
  const std::size_t encoded = wal_record_bytes(value.size());
  if (!wal_.fits(encoded)) {
    flush_locked();
    maybe_compact();
    STEINS_CHECK(wal_.fits(encoded), "record larger than the WAL region");
  }

  WalRecord rec;
  rec.epoch = wal_.epoch();
  rec.seq = manifest_.next_seq;
  rec.key = key;
  rec.kind = kind;
  rec.value = value;
  wal_.append(rec);
  ++manifest_.next_seq;
  ++stats_.wal_records;
  stats_.wal_bytes += encoded;
  // The append's last barrier has completed: the op is durable — this is
  // the commit point the crash harness models.
  if (commit_hook_) commit_hook_(key, kind, value);

  auto it = memtable_.find(key);
  if (it != memtable_.end()) {
    memtable_bytes_ -= kRunEntryHeaderBytes + it->second.value.size();
    it->second = MemEntry{kind, value};
  } else {
    memtable_[key] = MemEntry{kind, value};
  }
  memtable_bytes_ += kRunEntryHeaderBytes + value.size();

  if (memtable_bytes_ >= cfg_.memtable_limit_bytes) {
    flush_locked();
    maybe_compact();
  }
}

void LsmStore::put(std::uint64_t key, const std::string& value) {
  append_op(key, WalKind::kPut, value);
  ++stats_.puts;
  stats_.bytes_put += value.size();
}

bool LsmStore::erase(std::uint64_t key) {
  STEINS_CHECK(open_, "LsmStore used before open()");
  if (read_only_) {
    throw StatusError(Status(ErrorCode::kReadOnly, "store is read-only"));
  }
  // Absent keys take no tombstone: the WAL and runs only carry operations
  // that change the committed state.
  bool present;
  auto it = memtable_.find(key);
  if (it != memtable_.end()) {
    present = it->second.kind == WalKind::kPut;
  } else {
    const auto found = find_in_runs(key);
    present = found.has_value() && found->kind == WalKind::kPut;
  }
  if (!present) return false;
  append_op(key, WalKind::kErase, std::string());
  ++stats_.erases;
  return true;
}

std::optional<RunReader::Found> LsmStore::find_in_runs(std::uint64_t key) {
  for (auto it = l0_.rbegin(); it != l0_.rend(); ++it) {
    if (auto f = it->find(sys_, key)) return f;
  }
  for (auto it = l1_.rbegin(); it != l1_.rend(); ++it) {
    if (auto f = it->find(sys_, key)) return f;
  }
  return std::nullopt;
}

std::optional<std::string> LsmStore::get(std::uint64_t key) {
  STEINS_CHECK(open_, "LsmStore used before open()");
  ++stats_.gets;
  const auto it = memtable_.find(key);
  if (it != memtable_.end()) {
    if (it->second.kind == WalKind::kErase) return std::nullopt;
    return it->second.value;
  }
  const auto found = find_in_runs(key);
  if (!found || found->kind == WalKind::kErase) return std::nullopt;
  return found->value;
}

std::map<std::uint64_t, std::string> LsmStore::dump() {
  STEINS_CHECK(open_, "LsmStore used before open()");
  // Oldest to newest so later sources overwrite earlier ones; tombstones
  // are applied as erasures at every layer.
  std::map<std::uint64_t, std::string> out;
  const auto apply = [&out](std::uint64_t key, WalKind kind, const std::string& v) {
    if (kind == WalKind::kErase) {
      out.erase(key);
    } else {
      out[key] = v;
    }
  };
  for (const RunReader& r : l1_) {
    for (const RunEntry& e : r.load_all(sys_)) apply(e.key, e.kind, e.value);
  }
  for (const RunReader& r : l0_) {
    for (const RunEntry& e : r.load_all(sys_)) apply(e.key, e.kind, e.value);
  }
  for (const auto& [key, e] : memtable_) apply(key, e.kind, e.value);
  return out;
}

void LsmStore::apply_recovery_report(const RecoveryReport& report) {
  degraded_ = report.degraded();
  if (report.attack_detected || !report.status.ok()) read_only_ = true;
}

Expected<std::optional<std::string>> LsmStore::try_get(std::uint64_t key) {
  try {
    return get(key);
  } catch (const StatusError& e) {
    if (is_unavailable(e.code())) return e.status();
    throw;
  }
}

Status LsmStore::try_put(std::uint64_t key, const std::string& value) {
  try {
    put(key, value);
    return Status::Ok();
  } catch (const StatusError& e) {
    if (is_unavailable(e.code())) return e.status();
    throw;
  }
}

Expected<bool> LsmStore::try_erase(std::uint64_t key) {
  try {
    return erase(key);
  } catch (const StatusError& e) {
    if (is_unavailable(e.code())) return e.status();
    throw;
  }
}

LsmStore::DegradedDump LsmStore::dump_degraded() {
  STEINS_CHECK(open_, "LsmStore used before open()");
  DegradedDump out;
  const auto apply = [&out](std::uint64_t key, WalKind kind, const std::string& v) {
    if (kind == WalKind::kErase) {
      out.live.erase(key);
    } else {
      out.live[key] = v;
    }
  };
  const auto apply_run = [&](const RunReader& r) {
    try {
      for (const RunEntry& e : r.load_all(sys_)) apply(e.key, e.kind, e.value);
    } catch (const StatusError& e) {
      if (!is_unavailable(e.code())) throw;
      ++out.runs_unavailable;
    }
  };
  for (const RunReader& r : l1_) apply_run(r);
  for (const RunReader& r : l0_) apply_run(r);
  for (const auto& [key, e] : memtable_) apply(key, e.kind, e.value);
  return out;
}

void LsmStore::flush() {
  STEINS_CHECK(open_, "LsmStore used before open()");
  if (read_only_) {
    throw StatusError(Status(ErrorCode::kReadOnly, "store is read-only"));
  }
  flush_locked();
}

void LsmStore::compact() {
  STEINS_CHECK(open_, "LsmStore used before open()");
  if (read_only_) {
    throw StatusError(Status(ErrorCode::kReadOnly, "store is read-only"));
  }
  compact_locked();
}

void LsmStore::flush_locked() {
  if (memtable_.empty()) return;
  // Every flush is a structural barrier: an in-flight background merge
  // installs here, so its output is on media before the new run lands.
  compact_join();
  // Backstop: if another L0 run would overflow the manifest's run list,
  // fold the existing runs down first (normally the compaction trigger
  // fires long before this).
  if (manifest_.runs.size() + 1 > layout_.max_runs()) compact_locked();

  RunImage img;
  for (const auto& [key, e] : memtable_) {
    run_image_append(&img, key, e.kind, e.value, cfg_.index_every);
  }
  const std::uint64_t run_id = manifest_.next_run_id;
  const Extent ext = allocate_extent(img.blocks_needed());
  write_run(sys_, layout_, ext, run_id, img,
            [this](Addr addr, const char* stage) { persist_barrier(addr, stage); },
            "flush");

  // Durable install: the manifest commit makes the run live AND truncates
  // the WAL (epoch bump) in one atomic step. A crash before the commit
  // leaves the old manifest: the run is garbage, the WAL still replays.
  ManifestData next = manifest_;
  next.version += 1;
  next.wal_epoch += 1;
  next.next_run_id += 1;
  next.runs.push_back(RunMeta{run_id, 0, ext.start_block, ext.block_count});
  install_manifest(std::move(next));

  wal_.reset(manifest_.wal_epoch);
  memtable_.clear();
  memtable_bytes_ = 0;
  auto reader = RunReader::open(sys_, layout_, ext, run_id, false);
  STEINS_CHECK(reader.has_value(), "freshly flushed run failed to open");
  l0_.push_back(std::move(reader.value()));
  ++stats_.flushes;
  ++stats_.runs_written;
  stats_.run_blocks_written += ext.block_count;
}

std::vector<RunEntry> LsmStore::merge_runs(
    const std::vector<std::vector<RunEntry>>& inputs) {
  if (cfg_.merge_jobs > 1 && !merge_pool_) {
    merge_pool_ = std::make_unique<ThreadPool>(cfg_.merge_jobs);
  }
  return merge_inputs(inputs, cfg_.merge_jobs > 1 ? merge_pool_.get() : nullptr);
}

void LsmStore::compact_locked() {
  // Foreground compaction is a begin+join with no gap. Any merge already
  // in flight installs first so the two never overlap.
  compact_join();
  const std::size_t run_count = l0_.size() + l1_.size();
  if (run_count == 0) return;
  if (run_count == 1 && l1_.size() == 1) return;  // already fully compacted

  // Load every input up front (all System I/O on this thread); merge in
  // memory; write the single bottom-level output run.
  std::vector<std::vector<RunEntry>> inputs;  // newest first
  std::vector<std::uint64_t> ids;
  snapshot_inputs(&inputs, &ids);
  install_compaction(merge_runs(inputs), ids);
  ++stats_.compactions;
}

void LsmStore::maybe_compact() {
  if (l0_.size() < cfg_.l0_compact_trigger) return;
  if (cfg_.background_compaction) {
    compact_begin();
  } else {
    compact_locked();
  }
}

void LsmStore::snapshot_inputs(std::vector<std::vector<RunEntry>>* inputs,
                               std::vector<std::uint64_t>* ids) {
  inputs->reserve(l0_.size() + l1_.size());
  ids->reserve(l0_.size() + l1_.size());
  for (auto it = l0_.rbegin(); it != l0_.rend(); ++it) {
    inputs->push_back(it->load_all(sys_));
    ids->push_back(it->run_id());
  }
  for (auto it = l1_.rbegin(); it != l1_.rend(); ++it) {
    inputs->push_back(it->load_all(sys_));
    ids->push_back(it->run_id());
  }
}

void LsmStore::compact_begin() {
  if (pending_) return;  // one merge in flight at a time
  const std::size_t run_count = l0_.size() + l1_.size();
  if (run_count == 0) return;
  if (run_count == 1 && l1_.size() == 1) return;

  // Foreground: load every input (System I/O stays on this thread) and
  // record which runs the merge consumes — they stay referenced by the
  // committed manifest (and by l0_/l1_ for reads) until the join installs.
  std::vector<std::vector<RunEntry>> inputs;  // newest first
  std::vector<std::uint64_t> ids;
  snapshot_inputs(&inputs, &ids);

  if (!bg_pool_) bg_pool_ = std::make_unique<ThreadPool>(1);
  // The task is a pure function of the captured inputs — no member state,
  // no System I/O — so it races foreground WAL commits freely. The merge
  // runs sequentially inside the task (no nested pool).
  pending_ = PendingCompaction{
      bg_pool_->submit(
          [in = std::move(inputs)]() { return merge_inputs(in, nullptr); }),
      std::move(ids)};
}

void LsmStore::compact_join() {
  if (!pending_) return;
  std::vector<RunEntry> merged = pending_->merged.get();
  const std::vector<std::uint64_t> ids = std::move(pending_->input_ids);
  pending_.reset();
  install_compaction(std::move(merged), ids);
  ++stats_.compactions;
  ++stats_.bg_compactions;
}

void LsmStore::install_compaction(std::vector<RunEntry> merged,
                                  const std::vector<std::uint64_t>& input_ids) {
  const auto consumed = [&input_ids](std::uint64_t id) {
    return std::find(input_ids.begin(), input_ids.end(), id) != input_ids.end();
  };

  // The new manifest is the CURRENT one minus the consumed inputs plus the
  // output — runs flushed after the inputs were snapshotted are newer than
  // every input, so they stay in L0 above the new bottom run.
  ManifestData next = manifest_;
  next.version += 1;
  next.runs.erase(
      std::remove_if(next.runs.begin(), next.runs.end(),
                     [&](const RunMeta& r) { return consumed(r.run_id); }),
      next.runs.end());
  Extent ext;
  std::uint64_t run_id = 0;
  if (!merged.empty()) {
    RunImage img;
    for (const RunEntry& e : merged) {
      run_image_append(&img, e.key, e.kind, e.value, cfg_.index_every);
    }
    run_id = next.next_run_id;
    next.next_run_id += 1;
    ext = allocate_extent(img.blocks_needed());
    write_run(sys_, layout_, ext, run_id, img,
              [this](Addr addr, const char* stage) { persist_barrier(addr, stage); },
              "compact");
    next.runs.push_back(RunMeta{run_id, 1, ext.start_block, ext.block_count});
  }
  install_manifest(std::move(next));

  const auto drop = [&](std::vector<RunReader>& level) {
    level.erase(
        std::remove_if(level.begin(), level.end(),
                       [&](const RunReader& r) { return consumed(r.run_id()); }),
        level.end());
  };
  drop(l0_);
  drop(l1_);
  if (!merged.empty()) {
    auto reader = RunReader::open(sys_, layout_, ext, run_id, false);
    STEINS_CHECK(reader.has_value(), "freshly compacted run failed to open");
    l1_.push_back(std::move(reader.value()));
    ++stats_.runs_written;
    stats_.run_blocks_written += ext.block_count;
  }
}

Extent LsmStore::allocate_extent(std::uint64_t blocks) const {
  // First-fit over the gaps between extents the *committed* manifest
  // references. During compaction the inputs are still referenced, so the
  // output can never overwrite them; they become reusable only after the
  // install barrier that also un-references them.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> occupied;
  occupied.reserve(manifest_.runs.size());
  for (const RunMeta& r : manifest_.runs) {
    occupied.emplace_back(r.start_block, r.block_count);
  }
  std::sort(occupied.begin(), occupied.end());
  std::uint64_t cursor = 0;
  for (const auto& [start, count] : occupied) {
    if (start - cursor >= blocks) return Extent{cursor, blocks};
    cursor = start + count;
  }
  if (layout_.arena_blocks - cursor >= blocks) return Extent{cursor, blocks};
  throw StatusError(Status(ErrorCode::kInvalidArgument,
                           "run arena full — raise arena_blocks or compact"));
}

void LsmStore::install_manifest(ManifestData m) {
  if (m.runs.size() > layout_.max_runs()) {
    throw StatusError(Status(ErrorCode::kInvalidArgument,
                             "manifest run list overflows the replica region"));
  }
  manifest_store_.install(m);
  manifest_ = std::move(m);
}

}  // namespace steins::lsm

// Immutable sorted runs (SSTable analogue) in the NVM run arena.
//
// A run is one contiguous extent:
//
//   [ entry stream | sparse index (block-aligned) | footer block ]
//
// The entry stream is key-sorted, keys unique, fixed-width encoded
// (format.hpp). The sparse index holds every `index_every`-th entry's
// (key, byte offset). The footer names both byte ranges (z_kv
// offset/size style) and carries a crc chained over data + index +
// fields, so a validating open re-derives end-to-end integrity of the
// whole run from one block.
//
// Ordered-persist protocol: all data and index blocks are stored and
// persisted (stage "<stage>-data") strictly before the footer block
// (stage "<stage>-footer"). A run is LIVE only once the manifest
// references it — a crash anywhere in between leaves an unreferenced
// extent that the allocator simply reuses.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "kv/lsm/format.hpp"
#include "kv/lsm/lsm_layout.hpp"
#include "kv/lsm/wal.hpp"
#include "sim/system.hpp"

namespace steins::lsm {

/// A key-sorted, fixed-width-encoded entry stream plus its sparse index,
/// built in memory before being laid into an extent.
struct RunImage {
  std::string data;                // encoded entry stream
  std::vector<IndexEntry> index;   // sparse, ascending offsets
  std::uint64_t entries = 0;

  std::uint64_t data_blocks() const {
    return (data.size() + kBlockSize - 1) / kBlockSize;
  }
  std::uint64_t index_blocks() const {
    return (index.size() * kIndexEntryBytes + kBlockSize - 1) / kBlockSize;
  }
  /// Extent blocks needed: data + index + footer.
  std::uint64_t blocks_needed() const { return data_blocks() + index_blocks() + 1; }
};

/// Append `entry` to `image`, indexing every `index_every`-th entry.
/// Entries must arrive in strictly ascending key order.
void run_image_append(RunImage* image, std::uint64_t key, WalKind kind,
                      const std::string& value, std::size_t index_every);

/// Write `image` into `extent` (sized >= blocks_needed()) as run
/// `run_id`, persisting data+index before the footer. `stage_prefix` is
/// "flush" or "compact"; barriers are labeled "<prefix>-data" and
/// "<prefix>-footer".
void write_run(System& sys, const LsmLayout& layout, const Extent& extent,
               std::uint64_t run_id, const RunImage& image, const PersistFn& persist,
               const char* stage_prefix);

/// Read-side handle: validates the footer at open, caches the sparse
/// index and key bounds in DRAM (rebuilt on every open — the on-media
/// truth is the extent itself), and serves point lookups with one index
/// binary search plus a short entry scan.
class RunReader {
 public:
  /// Open a run. With `verify_checksum` the whole data+index span is
  /// re-read and checked against the footer crc (recovery validation).
  /// Returns kIntegrity if the footer or checksum does not validate.
  static Expected<RunReader> open(System& sys, const LsmLayout& layout,
                                  const Extent& extent, std::uint64_t expect_run_id,
                                  bool verify_checksum);

  struct Found {
    WalKind kind = WalKind::kPut;
    std::string value;
  };
  /// Point lookup; nullopt when the key is not in this run. Throws
  /// KvCorruption-style StatusError(kIntegrity) on malformed entries
  /// (possible only when checksum validation was skipped or media decayed
  /// after open).
  std::optional<Found> find(System& sys, std::uint64_t key) const;

  /// Decode the full entry stream in key order (compaction input).
  std::vector<RunEntry> load_all(System& sys) const;

  const RunFooter& footer() const { return footer_; }
  std::uint64_t run_id() const { return footer_.run_id; }
  std::uint64_t entries() const { return footer_.entries; }
  std::uint64_t min_key() const { return min_key_; }
  std::uint64_t max_key() const { return max_key_; }
  const Extent& extent() const { return extent_; }

 private:
  RunReader() = default;

  Addr data_addr() const;

  LsmLayout layout_;
  Extent extent_;
  RunFooter footer_;
  std::vector<IndexEntry> index_;
  std::uint64_t min_key_ = 0;
  std::uint64_t max_key_ = 0;
};

}  // namespace steins::lsm

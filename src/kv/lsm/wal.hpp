// Append-only write-ahead log over the secure persist path.
//
// Records are packed back-to-back as a byte stream over 64 B blocks; a
// record's append stores every block it touches and then issues one
// persist barrier per touched block ("wal" stage). The record is the
// operation's commit point: it is durable iff all its blocks reached the
// controller, and the per-record crc + trailing commit word make any
// partial persist detectable — replay stops there (the torn tail).
//
// The log is logically truncated by bumping the epoch (done by the engine
// when the memtable flushes): old-epoch bytes stay on media but fail the
// epoch check at replay, so no physical erase is needed.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hpp"
#include "kv/lsm/format.hpp"
#include "kv/lsm/lsm_layout.hpp"
#include "sim/system.hpp"

namespace steins::lsm {

/// Issued for every persist barrier with its stage label; the engine
/// routes this to its hook + counters.
using PersistFn = std::function<void(Addr addr, const char* stage)>;

class Wal {
 public:
  Wal(System& sys, const LsmLayout& layout, PersistFn persist);

  /// Start a fresh epoch at byte offset 0 (in-memory only: the manifest
  /// carries the epoch, stale bytes are ignored by the epoch check).
  void reset(std::uint64_t epoch);

  std::uint64_t epoch() const { return epoch_; }
  std::uint64_t offset() const { return offset_; }

  /// Whether a record of `encoded_bytes` fits in the remaining region.
  bool fits(std::size_t encoded_bytes) const {
    return offset_ + encoded_bytes <= layout_.wal_bytes();
  }

  /// Append and persist one record (the caller has checked fits()).
  /// Returns the number of persist barriers issued.
  std::size_t append(const WalRecord& rec);

  struct ReplayResult {
    std::vector<WalRecord> records;
    bool torn_tail = false;     // the log ended in an invalid/partial record
    std::uint64_t bytes = 0;    // committed bytes (replay cursor)
  };

  /// Scan the log from offset 0 for `epoch`, stopping at the first record
  /// that fails the epoch/crc/commit checks. Leaves the writer positioned
  /// at the committed tail. Loads go through the secure path, so integrity
  /// violations and typed unavailability propagate to the caller.
  ReplayResult replay(std::uint64_t epoch);

 private:
  Addr block_addr(std::uint64_t block_index) const {
    return layout_.wal_base() + block_index * kBlockSize;
  }

  System& sys_;
  LsmLayout layout_;
  PersistFn persist_;
  std::uint64_t epoch_ = 0;
  std::uint64_t offset_ = 0;  // committed byte offset of the tail
  Block tail_;                // cached image of the (partial) tail block
};

}  // namespace steins::lsm

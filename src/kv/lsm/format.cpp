#include "kv/lsm/format.hpp"

#include <cstring>

#include "common/status.hpp"

namespace steins::lsm {

namespace {

constexpr std::uint64_t kLen48Mask = (std::uint64_t{1} << 48) - 1;

std::uint64_t pack_kind_len(WalKind kind, std::uint64_t len) {
  return (static_cast<std::uint64_t>(kind) << 56) | (len & kLen48Mask);
}

bool unpack_kind_len(std::uint64_t v, WalKind* kind, std::uint64_t* len) {
  const std::uint64_t k = v >> 56;
  if (k != static_cast<std::uint64_t>(WalKind::kPut) &&
      k != static_cast<std::uint64_t>(WalKind::kErase)) {
    return false;
  }
  *kind = static_cast<WalKind>(k);
  *len = v & kLen48Mask;
  if (*len > kMaxLsmValueBytes) return false;
  if (*kind == WalKind::kErase && *len != 0) return false;
  return true;
}

}  // namespace

void put_u64(std::string& out, std::uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.append(buf, 8);
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

void encode_offset_size(const OffsetSize& os, std::string& out) {
  put_u64(out, os.offset);
  put_u64(out, os.length);
}

OffsetSize decode_offset_size(const std::uint8_t* p) {
  return OffsetSize{get_u64(p), get_u64(p + 8)};
}

std::uint64_t span_checksum(const std::uint8_t* p, std::size_t n, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < n; ++i) h = (h ^ p[i]) * 0x100000001b3ULL;
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  return h;
}

// ---------------------------------------------------------------------------
// WAL records

void encode_wal_record(const WalRecord& rec, std::string& out) {
  STEINS_CHECK(rec.value.size() <= kMaxLsmValueBytes, "WAL record value overflows");
  const std::size_t start = out.size();
  put_u64(out, rec.epoch);
  put_u64(out, rec.seq);
  put_u64(out, rec.key);
  put_u64(out, pack_kind_len(rec.kind, rec.value.size()));
  out.append(rec.value);
  const std::uint64_t crc = span_checksum(
      reinterpret_cast<const std::uint8_t*>(out.data() + start), out.size() - start);
  put_u64(out, crc);
  put_u64(out, crc ^ kWalCommitMagic);
}

WalDecode decode_wal_record(const std::uint8_t* p, std::size_t avail,
                            std::uint64_t expect_epoch, WalRecord* out,
                            std::size_t* encoded) {
  if (avail < kWalHeaderBytes) return WalDecode::kNeedMore;
  WalRecord rec;
  rec.epoch = get_u64(p);
  rec.seq = get_u64(p + 8);
  rec.key = get_u64(p + 16);
  std::uint64_t len = 0;
  if (rec.epoch != expect_epoch) return WalDecode::kInvalid;
  if (!unpack_kind_len(get_u64(p + 24), &rec.kind, &len)) return WalDecode::kInvalid;
  const std::size_t total = wal_record_bytes(len);
  if (avail < total) return WalDecode::kNeedMore;
  const std::uint64_t crc = span_checksum(p, kWalHeaderBytes + len);
  if (get_u64(p + kWalHeaderBytes + len) != crc) return WalDecode::kInvalid;
  if (get_u64(p + kWalHeaderBytes + len + 8) != (crc ^ kWalCommitMagic)) {
    return WalDecode::kInvalid;
  }
  rec.value.assign(reinterpret_cast<const char*>(p + kWalHeaderBytes), len);
  if (out != nullptr) *out = std::move(rec);
  if (encoded != nullptr) *encoded = total;
  return WalDecode::kOk;
}

// ---------------------------------------------------------------------------
// Run entries and footer

void encode_run_entry(std::uint64_t key, WalKind kind, const std::string& value,
                      std::string& out) {
  put_u64(out, key);
  put_u64(out, pack_kind_len(kind, value.size()));
  out.append(value);
}

bool decode_run_entry(const std::uint8_t* p, std::size_t avail, RunEntry* out,
                      std::size_t* encoded) {
  if (avail < kRunEntryHeaderBytes) return false;
  RunEntry e;
  e.key = get_u64(p);
  std::uint64_t len = 0;
  if (!unpack_kind_len(get_u64(p + 8), &e.kind, &len)) return false;
  if (avail < kRunEntryHeaderBytes + len) return false;
  e.value.assign(reinterpret_cast<const char*>(p + kRunEntryHeaderBytes), len);
  if (out != nullptr) *out = std::move(e);
  if (encoded != nullptr) *encoded = kRunEntryHeaderBytes + len;
  return true;
}

std::uint64_t run_footer_crc(const RunFooter& f, const std::uint8_t* data_bytes,
                             const std::uint8_t* index_bytes) {
  std::uint64_t h = span_checksum(data_bytes, f.data.length);
  h = span_checksum(index_bytes, f.index.length, h);
  std::string fields;
  put_u64(fields, kRunMagic);
  put_u64(fields, f.run_id);
  put_u64(fields, f.entries);
  encode_offset_size(f.data, fields);
  encode_offset_size(f.index, fields);
  return span_checksum(fields, h);
}

Block encode_run_footer(const RunFooter& f) {
  std::string s;
  s.reserve(kBlockSize);
  put_u64(s, kRunMagic);
  put_u64(s, f.run_id);
  put_u64(s, f.entries);
  encode_offset_size(f.data, s);
  encode_offset_size(f.index, s);
  put_u64(s, f.crc);
  Block b{};
  std::memcpy(b.data(), s.data(), s.size());
  return b;
}

bool decode_run_footer(const Block& b, RunFooter* out) {
  const std::uint8_t* p = b.data();
  if (get_u64(p) != kRunMagic) return false;
  RunFooter f;
  f.run_id = get_u64(p + 8);
  f.entries = get_u64(p + 16);
  f.data = decode_offset_size(p + 24);
  f.index = decode_offset_size(p + 40);
  f.crc = get_u64(p + 56);
  if (f.data.offset != 0) return false;
  if (f.index.length % kIndexEntryBytes != 0) return false;
  // The index must start at a block boundary at or past the data's end.
  if (f.index.offset % kBlockSize != 0 || f.index.offset < f.data.length) return false;
  if (out != nullptr) *out = f;
  return true;
}

// ---------------------------------------------------------------------------
// Manifest

std::size_t manifest_encoded_bytes(std::size_t run_count) {
  return 6 * 8 + run_count * 4 * 8 + 8;  // header words, runs, crc
}

void encode_manifest(const ManifestData& m, std::string& out) {
  const std::size_t start = out.size();
  put_u64(out, kManifestMagic);
  put_u64(out, m.version);
  put_u64(out, m.wal_epoch);
  put_u64(out, m.next_seq);
  put_u64(out, m.next_run_id);
  put_u64(out, m.runs.size());
  for (const RunMeta& r : m.runs) {
    put_u64(out, r.run_id);
    put_u64(out, r.level);
    put_u64(out, r.start_block);
    put_u64(out, r.block_count);
  }
  const std::uint64_t crc = span_checksum(
      reinterpret_cast<const std::uint8_t*>(out.data() + start), out.size() - start);
  put_u64(out, crc);
}

bool decode_manifest(const std::uint8_t* p, std::size_t avail, ManifestData* out) {
  if (avail < manifest_encoded_bytes(0)) return false;
  if (get_u64(p) != kManifestMagic) return false;
  ManifestData m;
  m.version = get_u64(p + 8);
  m.wal_epoch = get_u64(p + 16);
  m.next_seq = get_u64(p + 24);
  m.next_run_id = get_u64(p + 32);
  const std::uint64_t count = get_u64(p + 40);
  const std::size_t total = manifest_encoded_bytes(count);
  if (count > (avail - manifest_encoded_bytes(0)) / 32 || avail < total) return false;
  m.runs.reserve(count);
  const std::uint8_t* q = p + 48;
  for (std::uint64_t i = 0; i < count; ++i, q += 32) {
    m.runs.push_back(RunMeta{get_u64(q), get_u64(q + 8), get_u64(q + 16), get_u64(q + 24)});
  }
  if (get_u64(q) != span_checksum(p, total - 8)) return false;
  if (out != nullptr) *out = std::move(m);
  return true;
}

}  // namespace steins::lsm

// Log-structured KV engine over the secure NVM path (DESIGN.md §15).
//
// The write path is WAL-first: every put/erase appends one WAL record
// (its last persist barrier is the operation's commit point), then
// updates the in-memory memtable. When the memtable reaches its byte
// budget it flushes into an immutable sorted L0 run; when enough L0 runs
// pile up, compaction merges all L0 + L1 runs into one new L1 run,
// dropping tombstones (L1 is the bottom level). Every structural change
// — flush, compaction, format — becomes durable by installing a new
// manifest version (ManifestStore's atomic commit word); run extents and
// WAL bytes not reachable from the committed manifest are dead by
// definition, which is why no step here ever needs an undo.
//
// Recovery (open()) is: read the committed manifest, validate each
// referenced run's footer (full checksum when verify_runs_on_open),
// replay the current-epoch WAL tail into the memtable, and resume. A
// torn WAL tail is a legal end of log; a manifest that fails to decode
// is a detected loss (kIntegrity), not silent corruption.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"
#include "kv/lsm/format.hpp"
#include "kv/lsm/lsm_layout.hpp"
#include "kv/lsm/manifest.hpp"
#include "kv/lsm/sorted_run.hpp"
#include "kv/lsm/wal.hpp"
#include "sim/system.hpp"

namespace steins {
class ThreadPool;
}

namespace steins::lsm {

struct LsmConfig {
  std::size_t memtable_limit_bytes = 4096;  // encoded-entry budget before flush
  std::size_t l0_compact_trigger = 4;       // L0 run count that forces compaction
  std::size_t index_every = 8;              // sparse-index stride (entries)
  std::size_t max_value_bytes = kMaxLsmValueBytes;
  bool verify_runs_on_open = true;  // full run checksums during recovery
  unsigned merge_jobs = 1;          // compaction merge shards run in parallel
  /// Run the compaction MERGE on a background pool thread, racing
  /// foreground WAL commits: when the trigger fires, the inputs are
  /// loaded in the foreground (all System I/O stays on the serving
  /// thread), the pure in-memory merge is handed to the pool, and the
  /// result is installed at the next structural barrier (flush, explicit
  /// compact(), or compact_join()). Runs flushed while the merge is in
  /// flight are newer than every input, so they simply stay above the
  /// output — the final image is identical to foreground compaction, and
  /// a crash before the join leaves the old manifest + WAL (the output
  /// was never written). Off by default: false keeps the fully
  /// synchronous PR 7 behavior.
  bool background_compaction = false;
};

/// Engine-level counters (logical bytes; the scheme's own metadata traffic
/// is visible through System::collect_stats() instead).
struct LsmStats {
  std::uint64_t puts = 0;
  std::uint64_t erases = 0;
  std::uint64_t gets = 0;
  std::uint64_t bytes_put = 0;       // user value bytes accepted
  std::uint64_t wal_records = 0;
  std::uint64_t wal_bytes = 0;       // encoded WAL bytes appended
  std::uint64_t flushes = 0;
  std::uint64_t compactions = 0;
  std::uint64_t bg_compactions = 0;  // of which: merged on the pool
  std::uint64_t runs_written = 0;
  std::uint64_t run_blocks_written = 0;  // data+index+footer blocks
  std::uint64_t persist_barriers = 0;

  /// Engine-level write amplification: every byte the engine asked the
  /// media to persist (WAL + runs) per user byte put.
  double logical_write_amp() const {
    const double persisted =
        static_cast<double>(wal_bytes + run_blocks_written * kBlockSize);
    return bytes_put == 0 ? 0.0 : persisted / static_cast<double>(bytes_put);
  }
};

class LsmStore {
 public:
  LsmStore(System& sys, const LsmLayout& layout, const LsmConfig& cfg);
  ~LsmStore();

  /// Recover (or format) the region and make the store serviceable.
  /// Returns kIntegrity when the committed manifest or a referenced run
  /// fails validation — a detected loss. Typed unavailability from the
  /// secure path during recovery also comes back as its Status. An
  /// IntegrityViolation (HMAC/root mismatch) propagates as an exception:
  /// that is the secure layer detecting tampering, not this engine.
  Status open();
  bool is_open() const { return open_; }

  // Throwing API (mirrors KvStore).
  void put(std::uint64_t key, const std::string& value);
  std::optional<std::string> get(std::uint64_t key);
  bool erase(std::uint64_t key);
  std::map<std::uint64_t, std::string> dump();

  // Degraded-mode API (mirrors KvStore's try_ surface).
  void apply_recovery_report(const RecoveryReport& report);
  bool read_only() const { return read_only_; }
  void set_read_only(bool ro) { read_only_ = ro; }
  bool degraded() const { return degraded_; }

  Expected<std::optional<std::string>> try_get(std::uint64_t key);
  Status try_put(std::uint64_t key, const std::string& value);
  Expected<bool> try_erase(std::uint64_t key);

  struct DegradedDump {
    std::map<std::uint64_t, std::string> live;
    std::uint64_t runs_unavailable = 0;  // runs whose blocks are unreadable
  };
  DegradedDump dump_degraded();

  /// Force the memtable into an L0 run now (no-op when empty).
  void flush();
  /// Merge all runs into one L1 run now (no-op with fewer than two runs
  /// and no tombstones to drop). Joins any in-flight background merge
  /// first, so after compact() returns the store is fully compacted
  /// regardless of mode.
  void compact();
  /// Install the in-flight background compaction now (no-op when none is
  /// pending). Also happens automatically at every flush and compact().
  void compact_join();
  bool compaction_pending() const { return pending_.has_value(); }

  std::size_t l0_runs() const { return l0_.size(); }
  std::size_t l1_runs() const { return l1_.size(); }
  std::size_t memtable_entries() const { return memtable_.size(); }
  std::uint64_t wal_epoch() const { return wal_.epoch(); }
  /// Outcome of the last open()'s WAL replay.
  bool wal_replay_torn() const { return wal_torn_; }
  std::uint64_t wal_replayed_records() const { return wal_replayed_; }
  const LsmStats& stats() const { return stats_; }
  const LsmLayout& layout() const { return layout_; }

  /// Number of persist barriers issued so far (all stages).
  std::uint64_t persists() const { return stats_.persist_barriers; }

  /// Called immediately BEFORE each persist barrier with its stage label:
  /// "wal", "flush-data", "flush-footer", "compact-data",
  /// "compact-footer", "manifest-data", "manifest-commit". Crash tests
  /// throw from here.
  using PersistHook = std::function<void(const char* stage, std::uint64_t index)>;
  void set_persist_hook(PersistHook hook) { hook_ = std::move(hook); }

  /// Called right after an operation's WAL record is fully durable (its
  /// last barrier returned) — the exact commit point. The crash harness
  /// builds its durable model from this.
  using CommitHook =
      std::function<void(std::uint64_t key, WalKind kind, const std::string& value)>;
  void set_commit_hook(CommitHook hook) { commit_hook_ = std::move(hook); }

 private:
  struct MemEntry {
    WalKind kind = WalKind::kPut;
    std::string value;
  };

  void persist_barrier(Addr addr, const char* stage);
  void append_op(std::uint64_t key, WalKind kind, const std::string& value);
  void flush_locked();
  void compact_locked();
  void maybe_compact();
  void snapshot_inputs(std::vector<std::vector<RunEntry>>* inputs,
                       std::vector<std::uint64_t>* ids);
  void compact_begin();
  /// Write `merged` as the new single L1 run and install a manifest equal
  /// to the current one minus `input_ids` plus the output — preserving any
  /// runs flushed after the inputs were snapshotted.
  void install_compaction(std::vector<RunEntry> merged,
                          const std::vector<std::uint64_t>& input_ids);
  std::vector<RunEntry> merge_runs(const std::vector<std::vector<RunEntry>>& inputs);
  Extent allocate_extent(std::uint64_t blocks) const;
  void install_manifest(ManifestData m);
  std::optional<RunReader::Found> find_in_runs(std::uint64_t key);

  System& sys_;
  LsmLayout layout_;
  LsmConfig cfg_;
  Wal wal_;
  ManifestStore manifest_store_;
  ManifestData manifest_;

  std::map<std::uint64_t, MemEntry> memtable_;
  std::size_t memtable_bytes_ = 0;
  std::vector<RunReader> l0_;  // ascending run_id; newest = back
  std::vector<RunReader> l1_;

  /// In-flight background compaction: the merge future (pure CPU work on
  /// bg_pool_) plus the run_ids it consumed. All System I/O — loading the
  /// inputs, writing the output, installing the manifest — stays on the
  /// foreground thread; only the in-memory k-way merge races WAL commits.
  struct PendingCompaction {
    std::future<std::vector<RunEntry>> merged;
    std::vector<std::uint64_t> input_ids;
  };

  PersistHook hook_;
  CommitHook commit_hook_;
  LsmStats stats_;
  std::unique_ptr<ThreadPool> merge_pool_;
  std::unique_ptr<ThreadPool> bg_pool_;
  std::optional<PendingCompaction> pending_;
  bool wal_torn_ = false;
  std::uint64_t wal_replayed_ = 0;
  bool open_ = false;
  bool read_only_ = false;
  bool degraded_ = false;
};

}  // namespace steins::lsm

// On-media byte formats of the log-structured engine (DESIGN.md §15).
//
// Everything here is pure byte-level codec — no System access — so every
// structure round-trips in unit tests without a simulator. All integers
// are fixed-width 64-bit little-endian (the z_kv offset/size idiom):
// parsing never depends on varint state, so a torn prefix of a record is
// detectable by checksum alone and a reader can always tell "need more
// bytes" from "corrupt bytes".
//
//   WAL record   | epoch | seq | key | kind<<56|len | value | crc | commit |
//   Run entry    | key | kind<<56|len | value |
//   Run footer   | magic | run_id | entries | data off/size | index off/size | crc |
//   Manifest     | magic | version | wal_epoch | next_seq | next_run_id |
//                | run_count | {run_id, level, start_block, block_count}* | crc |
//
// The WAL commit word is the record's crc xored with a constant: a record
// is committed iff its crc matches AND its trailing commit word matches.
// Replay stops at the first record that fails either check — that is the
// torn tail, and it is a *legal* end of log, not corruption.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace steins::lsm {

inline constexpr std::uint64_t kWalCommitMagic = 0x57414c2d434f4d54ULL;  // "WAL-COMT"
inline constexpr std::uint64_t kRunMagic = 0x5354454e2d52554eULL;        // "STEN-RUN"
inline constexpr std::uint64_t kManifestMagic = 0x5354454e2d4d4e46ULL;   // "STEN-MNF"

/// Hard cap on a value's size; values span blocks, so this bounds WAL
/// record and run entry sizes, not the block size.
inline constexpr std::size_t kMaxLsmValueBytes = 4096;

/// Fixed-width little-endian u64 append/read (no varints — see header).
void put_u64(std::string& out, std::uint64_t v);
std::uint64_t get_u64(const std::uint8_t* p);
inline std::uint64_t get_u64(const char* p) {
  return get_u64(reinterpret_cast<const std::uint8_t*>(p));
}

/// Block location attribute: where a byte range lives inside a region
/// (offset and length, both fixed-width 64-bit on media).
struct OffsetSize {
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
};

void encode_offset_size(const OffsetSize& os, std::string& out);
OffsetSize decode_offset_size(const std::uint8_t* p);

/// FNV-1a over a byte span, splitmix-finalized. Detects torn/foreign bytes
/// (protocol-level), not tampering — the secure path's HMACs own that.
std::uint64_t span_checksum(const std::uint8_t* p, std::size_t n,
                            std::uint64_t seed = 0xcbf29ce484222325ULL);
inline std::uint64_t span_checksum(const std::string& s, std::uint64_t seed) {
  return span_checksum(reinterpret_cast<const std::uint8_t*>(s.data()), s.size(), seed);
}

// ---------------------------------------------------------------------------
// WAL records

enum class WalKind : std::uint8_t { kPut = 1, kErase = 2 };

struct WalRecord {
  std::uint64_t epoch = 0;
  std::uint64_t seq = 0;
  std::uint64_t key = 0;
  WalKind kind = WalKind::kPut;
  std::string value;  // empty for kErase
};

inline constexpr std::size_t kWalHeaderBytes = 32;   // epoch, seq, key, kind|len
inline constexpr std::size_t kWalTrailerBytes = 16;  // crc, commit word

inline std::size_t wal_record_bytes(std::size_t value_bytes) {
  return kWalHeaderBytes + value_bytes + kWalTrailerBytes;
}

/// Append the record's full encoding (header, value, crc, commit word).
void encode_wal_record(const WalRecord& rec, std::string& out);

enum class WalDecode {
  kOk,        // a committed record was decoded
  kNeedMore,  // the span ends before the record does — caller may extend it
  kInvalid,   // bad epoch / bad length / crc or commit mismatch (torn tail)
};

/// Try to decode one record at `p`. On kOk, `*out` holds the record and
/// `*encoded` its on-media size. A record whose epoch differs from
/// `expect_epoch` is kInvalid: it is a stale survivor of a pre-flush log.
WalDecode decode_wal_record(const std::uint8_t* p, std::size_t avail,
                            std::uint64_t expect_epoch, WalRecord* out,
                            std::size_t* encoded);

// ---------------------------------------------------------------------------
// Sorted-run entries and footer

struct RunEntry {
  std::uint64_t key = 0;
  WalKind kind = WalKind::kPut;
  std::string value;
};

inline constexpr std::size_t kRunEntryHeaderBytes = 16;  // key, kind|len

/// Append one entry's encoding (key, kind|len, value) to a data stream.
void encode_run_entry(std::uint64_t key, WalKind kind, const std::string& value,
                      std::string& out);

/// Decode the entry at `p`; false if the header is malformed or the span
/// ends early (inside a validated run that is corruption, not a tail).
bool decode_run_entry(const std::uint8_t* p, std::size_t avail, RunEntry* out,
                      std::size_t* encoded);

/// Sparse-index entry: the key at `offset` bytes into the data area.
/// Fixed-width 16 bytes (key, then OffsetSize-style offset).
struct IndexEntry {
  std::uint64_t key = 0;
  std::uint64_t offset = 0;
};
inline constexpr std::size_t kIndexEntryBytes = 16;

struct RunFooter {
  std::uint64_t run_id = 0;
  std::uint64_t entries = 0;
  OffsetSize data;   // byte range of the entry stream (offset 0)
  OffsetSize index;  // byte range of the sparse index (block-aligned offset)
  std::uint64_t crc = 0;  // over data bytes, index bytes, and the fields above
};

/// The footer occupies exactly one 64 B block.
Block encode_run_footer(const RunFooter& f);
bool decode_run_footer(const Block& b, RunFooter* out);

/// The crc stored in the footer: chained over the data span, the index
/// span, and the footer's own fields.
std::uint64_t run_footer_crc(const RunFooter& f, const std::uint8_t* data_bytes,
                             const std::uint8_t* index_bytes);

// ---------------------------------------------------------------------------
// Manifest

struct RunMeta {
  std::uint64_t run_id = 0;
  std::uint64_t level = 0;        // 0 (fresh flush) or 1 (compacted)
  std::uint64_t start_block = 0;  // relative to the run arena
  std::uint64_t block_count = 0;
};

struct ManifestData {
  std::uint64_t version = 0;
  std::uint64_t wal_epoch = 0;
  std::uint64_t next_seq = 1;
  std::uint64_t next_run_id = 1;
  std::vector<RunMeta> runs;
};

/// Encoded manifest size in bytes (for capacity checks against the
/// replica region).
std::size_t manifest_encoded_bytes(std::size_t run_count);

void encode_manifest(const ManifestData& m, std::string& out);
bool decode_manifest(const std::uint8_t* p, std::size_t avail, ManifestData* out);

}  // namespace steins::lsm

#include "kv/lsm/lsm_crash.hpp"

#include <algorithm>
#include <optional>
#include <utility>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "sim/system.hpp"

namespace steins::lsm {

namespace {

/// Internal crash signal thrown from the persist hook.
struct CrashNow {};

struct ScriptOp {
  enum class Kind { kPut, kErase, kGet } kind;
  std::uint64_t key;
  std::string value;  // for puts
};

/// Deterministic put-heavy script over a small key universe (same shape
/// as the KV harness): updates, tombstones, and reads all occur, and the
/// small memtable/WAL geometry turns them into flushes and compactions.
std::vector<ScriptOp> make_script(const LsmCrashOptions& opt) {
  Xoshiro256 rng(opt.seed * 0x9e3779b97f4a7c15ULL + 5);
  std::vector<ScriptOp> script;
  script.reserve(opt.ops);
  for (std::uint64_t i = 0; i < opt.ops; ++i) {
    const std::uint64_t key = rng.below(opt.keys);
    const std::uint64_t roll = rng.below(10);
    if (roll < 6) {
      std::string value = "v" + std::to_string(i) + "k" + std::to_string(key);
      if (value.size() < opt.value_bytes) value.resize(opt.value_bytes, '.');
      script.push_back({ScriptOp::Kind::kPut, key, std::move(value)});
    } else if (roll < 8) {
      script.push_back({ScriptOp::Kind::kErase, key, {}});
    } else {
      script.push_back({ScriptOp::Kind::kGet, key, {}});
    }
  }
  return script;
}

/// Run the script; the model tracks *committed* operations only, via the
/// engine's commit hook (fired after a WAL record's last barrier), so it
/// stays exact even when a crash lands mid-operation.
bool execute_script(LsmStore& store, const std::vector<ScriptOp>& script,
                    std::map<std::uint64_t, std::string>& model,
                    std::string* detail) {
  store.set_commit_hook(
      [&model](std::uint64_t key, WalKind kind, const std::string& value) {
        if (kind == WalKind::kErase) {
          model.erase(key);
        } else {
          model[key] = value;
        }
      });
  for (const ScriptOp& op : script) {
    switch (op.kind) {
      case ScriptOp::Kind::kPut:
        store.put(op.key, op.value);
        break;
      case ScriptOp::Kind::kErase:
        store.erase(op.key);
        break;
      case ScriptOp::Kind::kGet: {
        const std::optional<std::string> got = store.get(op.key);
        const auto want = model.find(op.key);
        const bool match = want == model.end()
                               ? !got.has_value()
                               : (got.has_value() && *got == want->second);
        if (!match) {
          *detail = "runtime get mismatch for key " + std::to_string(op.key);
          return false;
        }
        break;
      }
    }
  }
  return true;
}

std::string diff_detail(const std::map<std::uint64_t, std::string>& model,
                        const std::map<std::uint64_t, std::string>& recovered) {
  for (const auto& [key, value] : model) {
    const auto it = recovered.find(key);
    if (it == recovered.end()) {
      return "committed key " + std::to_string(key) + " missing after recovery";
    }
    if (it->second != value) {
      return "committed key " + std::to_string(key) + " has wrong value after recovery";
    }
  }
  for (const auto& [key, value] : recovered) {
    (void)value;
    if (!model.contains(key)) {
      return "uncommitted key " + std::to_string(key) + " present after recovery";
    }
  }
  return {};
}

struct DryRun {
  std::uint64_t total_persists = 0;
  std::vector<std::string> stages;  // stage label of each barrier
  bool ok = false;
  std::string detail;
};

DryRun dry_run(const SystemConfig& base_cfg, Scheme scheme,
               const LsmCrashOptions& opt, const std::vector<ScriptOp>& script) {
  DryRun out;
  System sys(base_cfg, scheme);
  LsmStore store(sys, opt.layout, opt.engine);
  store.set_persist_hook([&out](const char* stage, std::uint64_t) {
    out.stages.emplace_back(stage);
  });
  const Status s = store.open();
  if (!s.ok()) {
    out.detail = "dry run open failed: " + s.to_string();
    return out;
  }
  std::map<std::uint64_t, std::string> model;
  std::string detail;
  if (!execute_script(store, script, model, &detail)) {
    out.detail = "dry run failed: " + detail;
    return out;
  }
  out.total_persists = store.persists();
  out.ok = true;
  return out;
}

/// One crashed trial at a known boundary (the dry run already ran).
LsmCrashReport run_one(const SystemConfig& base_cfg, Scheme scheme,
                       const LsmCrashOptions& opt,
                       const std::vector<ScriptOp>& script, std::uint64_t crash_at,
                       const DryRun& dry) {
  LsmCrashReport report;
  report.total_persists = dry.total_persists;
  report.crash_at = crash_at;
  report.crash_stage =
      crash_at < dry.stages.size() ? dry.stages[crash_at] : "end";

  System sys(base_cfg, scheme);
  std::map<std::uint64_t, std::string> model;
  AdversarySnapshot snap;
  {
    LsmStore store(sys, opt.layout, opt.engine);
    store.set_persist_hook([&](const char*, std::uint64_t index) {
      if (opt.adversary.has_value()) {
        const std::uint64_t record_at = crash_at / 2;
        const std::uint64_t durable_at = (record_at + crash_at + 1) / 2;
        if (index == record_at) {
          if (auto* base = dynamic_cast<SecureMemoryBase*>(&sys.memory())) {
            base->flush_all_metadata();
            snap = snapshot_device(*base);
          }
        } else if (index == durable_at) {
          // Later durability point: persists acknowledged-durable metadata
          // for the adversary to replay around (see kv_crash.cpp).
          if (auto* base = dynamic_cast<SecureMemoryBase*>(&sys.memory())) {
            base->flush_all_metadata();
          }
        }
      }
      if (index == crash_at) throw CrashNow{};
    });
    bool crashed = false;
    try {
      const Status s = store.open();
      if (!s.ok()) {
        report.detail = "initial open failed: " + s.to_string();
        return report;
      }
      std::string detail;
      if (!execute_script(store, script, model, &detail)) {
        report.detail = detail;
        return report;
      }
    } catch (const CrashNow&) {
      // Power failed mid-operation (possibly during the initial format);
      // fall through to recovery.
      crashed = true;
    }
    (void)crashed;
    report.committed_keys = model.size();
    report.flushes = store.stats().flushes;
    report.compactions = store.stats().compactions;
  }

  // Fold the requested hardware fault into the crash, exactly as the KV
  // harness and the fault campaigns do.
  report.faulted = opt.fault_class != FaultClass::kNone || opt.manifest_loss ||
                   opt.adversary.has_value();
  FaultInjector injector(
      FaultPlan::derive(opt.fault_class, opt.fault_seed, crash_at));
  if (opt.recovery_crash_boundary != 0) {
    injector.arm_recovery_crash(opt.recovery_crash_boundary, opt.recovery_crash_rearm);
  }
  if (opt.fault_class != FaultClass::kNone || opt.recovery_crash_boundary != 0) {
    sys.set_fault_injector(&injector);
  }
  sys.set_recovery_policy(opt.retry_policy);

  RecoveryResult r;
  try {
    r = sys.crash_and_recover([&](SecureMemory& m) {
      if (!opt.adversary.has_value()) return;
      auto* base = dynamic_cast<SecureMemoryBase*>(&m);
      if (base == nullptr) return;
      const AdversaryPlan plan{*opt.adversary, opt.adversary_seed};
      report.adversary_injected = apply_adversary_post_crash(
          *base, scheme, plan, snap, &report.adversary_events);
    });
  } catch (const IntegrityViolation& e) {
    sys.set_fault_injector(nullptr);
    report.fault_detected = true;
    report.detail = std::string("recovery raised: ") + e.what();
    return report;
  }
  sys.set_fault_injector(nullptr);
  report.recovery_supported = r.supported;
  report.recovery_ok = r.ok();
  report.recovery_seconds = r.seconds;
  report.recovery_attempts = r.attempt_count();
  report.recovery_gave_up = r.recovery_gave_up;
  if (r.recovery_gave_up) {
    report.detail = "recovery retry budget exhausted: ";
    report.detail += r.status.message();
    return report;
  }
  if (!r.supported) {
    report.detail = "scheme reports recovery unsupported";
    return report;
  }
  if (!r.status.ok()) {
    report.detail = "recovery internal error: " + r.status.to_string();
    return report;
  }
  if (r.attack_detected) {
    report.fault_detected = report.faulted;
    report.detail = "recovery flagged: " + r.attack_detail;
    return report;
  }
  report.salvaged = r.degraded();

  try {
    sys.resync_truth_after_crash();

    if (opt.manifest_loss) {
      // The "manifest loss" hook point: clobber both replicas (the commit
      // word survives, so this is a referenced-but-undecodable manifest,
      // not a pristine region). The engine must detect it.
      for (int replica = 0; replica < 2; ++replica) {
        for (std::size_t b = 0; b < opt.layout.manifest_blocks; ++b) {
          Block garbage;
          garbage.fill(static_cast<std::uint8_t>(0xa5 + b));
          sys.store(opt.layout.manifest_addr(replica) + b * kBlockSize, garbage);
        }
      }
      // If the crash landed before the very first commit-word persist, the
      // region still reads as pristine and the garbage is unreferenced —
      // write a plausible commit word (version 1) so the loss is a
      // referenced manifest at every boundary.
      Block cb = sys.load(opt.layout.manifest_commit_addr());
      if (get_u64(cb.data()) == 0) {
        const std::uint64_t word = (std::uint64_t{1} << 1) | 1;
        for (int i = 0; i < 8; ++i) {
          cb.data()[i] = static_cast<std::uint8_t>(word >> (8 * i));
        }
        sys.store(opt.layout.manifest_commit_addr(), cb);
      }
    }

    LsmStore reopened(sys, opt.layout, opt.engine);
    reopened.apply_recovery_report(r);
    const Status s = reopened.open();
    if (!s.ok()) {
      if (report.faulted) {
        // The engine's own validation (manifest crc, run footers, WAL
        // epoch checks) refused the damaged image: that is detection.
        report.fault_detected = true;
        report.detail = "reopen refused: " + s.to_string();
        return report;
      }
      if (report.salvaged && is_unavailable(s.code())) {
        // Salvage quarantined lines under the engine's own region; typed
        // unavailability of the whole store is degraded service.
        report.keys_unavailable = model.size();
        report.degraded_verified = true;
        report.detail = "store unavailable after salvage: " + s.to_string();
        return report;
      }
      report.detail = "reopen failed: " + s.to_string();
      return report;
    }
    report.wal_torn = reopened.wal_replay_torn();

    if (!report.salvaged) {
      try {
        const std::map<std::uint64_t, std::string> recovered = reopened.dump();
        report.detail = diff_detail(model, recovered);
        report.verified = report.detail.empty();
        return report;
      } catch (const StatusError& e) {
        if (!is_unavailable(e.code())) throw;
        report.salvaged = true;  // lazy typed loss on first read — degrade
      }
    }

    // Salvage diff: every committed key must read back exactly or fail
    // with a typed unavailable error; silent divergence fails.
    std::uint64_t runs_unavailable = 0;
    for (const auto& [key, value] : model) {
      const auto got = reopened.try_get(key);
      if (!got.has_value()) {
        if (!is_unavailable(got.status().code())) {
          report.detail = "salvaged get of key " + std::to_string(key) +
                          " failed untyped: " + got.status().to_string();
          return report;
        }
        ++report.keys_unavailable;
        continue;
      }
      if (!got.value().has_value()) {
        report.detail = "committed key " + std::to_string(key) +
                        " silently missing after salvage";
        return report;
      }
      if (*got.value() != value) {
        report.detail = "committed key " + std::to_string(key) +
                        " has wrong value after salvage";
        return report;
      }
    }
    const LsmStore::DegradedDump dump = reopened.dump_degraded();
    runs_unavailable = dump.runs_unavailable;
    if (runs_unavailable == 0) {
      // With every run readable the merged view is authoritative: nothing
      // uncommitted may appear. (With runs missing, older values legally
      // resurface in the merge — the per-key check above already proved
      // point reads stay exact-or-typed.)
      for (const auto& [key, value] : dump.live) {
        const auto want = model.find(key);
        if (want == model.end() || want->second != value) {
          report.detail = "uncommitted key " + std::to_string(key) +
                          " served after salvage";
          return report;
        }
      }
    }
    report.degraded_verified = true;
  } catch (const IntegrityViolation& e) {
    report.fault_detected = report.faulted;
    report.detail = std::string("reopen raised: ") + e.what();
  } catch (const StatusError& e) {
    report.detail = std::string("reopen failed: ") + e.what();
  }
  return report;
}

}  // namespace

const char* lsm_crash_verdict(const LsmCrashReport& report, Scheme scheme) {
  if (report.recovery_gave_up) return "unrecoverable";
  if (scheme == Scheme::kWriteBack) {
    return report.recovery_supported ? "silent" : "detected";
  }
  if (report.recovery_ok && report.verified) return "recovered";
  if (report.salvaged && report.degraded_verified) return "salvaged";
  if (report.faulted && report.fault_detected) return "detected";
  return "silent";
}

LsmCrashReport run_lsm_crash_validation(const SystemConfig& base_cfg, Scheme scheme,
                                        const LsmCrashOptions& opt) {
  const std::vector<ScriptOp> script = make_script(opt);
  const DryRun dry = dry_run(base_cfg, scheme, opt, script);
  if (!dry.ok) {
    LsmCrashReport report;
    report.detail = dry.detail;
    return report;
  }
  std::uint64_t crash_at;
  if (opt.crash_at == LsmCrashOptions::kRandomBoundary) {
    Xoshiro256 boundary_rng(opt.seed * 0x2545f4914f6cdd1dULL + 3);
    crash_at = boundary_rng.below(dry.total_persists + 1);
  } else {
    crash_at = std::min(opt.crash_at, dry.total_persists);
  }
  return run_one(base_cfg, scheme, opt, script, crash_at, dry);
}

LsmCrashMatrix run_lsm_crash_matrix(const SystemConfig& base_cfg, Scheme scheme,
                                    const LsmCrashOptions& opt, std::uint64_t stride,
                                    unsigned jobs) {
  STEINS_CHECK(stride > 0, "matrix stride must be positive");
  LsmCrashMatrix matrix;
  const std::vector<ScriptOp> script = make_script(opt);
  const DryRun dry = dry_run(base_cfg, scheme, opt, script);
  if (!dry.ok) {
    matrix.trials = 1;
    matrix.silent = 1;
    matrix.failures.emplace_back(0, dry.detail);
    return matrix;
  }
  matrix.total_persists = dry.total_persists;

  std::vector<std::uint64_t> boundaries;
  for (std::uint64_t b = 0; b <= dry.total_persists; b += stride) {
    boundaries.push_back(b);
  }
  if (boundaries.back() != dry.total_persists) {
    boundaries.push_back(dry.total_persists);  // always test the clean end
  }

  std::vector<LsmCrashReport> reports(boundaries.size());
  const auto trial = [&](std::size_t i) {
    reports[i] = run_one(base_cfg, scheme, opt, script, boundaries[i], dry);
  };
  if (jobs > 1) {
    ThreadPool pool(jobs);
    pool.for_each_index(boundaries.size(), trial);
  } else {
    for (std::size_t i = 0; i < boundaries.size(); ++i) trial(i);
  }

  // Deterministic tally merge in boundary order.
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const LsmCrashReport& r = reports[i];
    ++matrix.trials;
    ++matrix.stage_trials[r.crash_stage];
    const std::string verdict = lsm_crash_verdict(r, scheme);
    if (verdict == "recovered") {
      ++matrix.recovered;
    } else if (verdict == "detected") {
      ++matrix.detected;
    } else if (verdict == "salvaged") {
      ++matrix.salvaged;
    } else if (verdict == "unrecoverable") {
      ++matrix.unrecoverable;
      matrix.failures.emplace_back(boundaries[i], r.detail);
    } else {
      ++matrix.silent;
      matrix.failures.emplace_back(boundaries[i], r.detail);
    }
  }
  return matrix;
}

}  // namespace steins::lsm

// Crash-recovery validation for the LSM engine, mirroring kv/kv_crash.hpp:
// run a deterministic op script against a fresh store, kill it at a chosen
// persist boundary, run the scheme's recovery, reopen the engine over the
// surviving image, and diff it against the model of *committed* operations.
//
// The committed model is exact: an operation commits at its WAL record's
// last persist barrier (LsmStore's commit hook fires precisely there), and
// flushes/compactions/manifest installs never change committed contents —
// they only restructure it. So for every crash boundary, recovery must
// reproduce the commit-hook model bit for bit (or, under an injected
// fault, fail *detectably* / salvage with typed unavailability).
//
// The boundary sweep in run_lsm_crash_matrix covers every stage of the
// engine's persist protocol — "wal", "flush-data", "flush-footer",
// "compact-data", "compact-footer", "manifest-data", "manifest-commit" —
// which is exactly the fault-campaign hook-point list from DESIGN.md §15:
// torn WAL tail, crash mid-flush, crash mid-compaction, manifest swap.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "fault/adversary.hpp"
#include "fault/fault.hpp"
#include "kv/lsm/lsm_store.hpp"
#include "secure/secure_memory.hpp"

namespace steins::lsm {

struct LsmCrashOptions {
  static constexpr std::uint64_t kRandomBoundary = ~std::uint64_t{0};

  std::uint64_t ops = 96;        // scripted put/erase/get operations
  std::uint64_t keys = 16;       // key universe the script draws from
  std::size_t value_bytes = 24;  // payload size per value
  std::uint64_t seed = 1;        // script + boundary-choice seed
  std::uint64_t crash_at = kRandomBoundary;  // persist barrier index to die at

  // Optional hardware fault folded into the crash (kNone = clean crash),
  // as in the KV harness: the plan derives from (fault_seed, crash_at).
  FaultClass fault_class = FaultClass::kNone;
  std::uint64_t fault_seed = 0;

  /// Nested recovery crash (DESIGN.md §17): crash the scheme's recovery at
  /// this 1-based persist boundary (0 = off) and re-enter it through the
  /// System's bounded retry loop; optionally re-arm on every retry.
  std::uint64_t recovery_crash_boundary = 0;
  bool recovery_crash_rearm = false;
  RecoveryRetryPolicy retry_policy;

  /// Overwrite both manifest replicas with garbage after the crash (the
  /// "manifest loss" hook point). Recovery must *detect* this (open()
  /// returning kIntegrity), never serve from it.
  bool manifest_loss = false;

  // Optional adversarial mutation folded into the crash, as in the KV
  // harness: snapshot the persisted image (after a metadata flush) at the
  // midpoint persist barrier, apply the scenario's rollback/forgery/tear
  // between the crash drain and recovery. Runtime-only scenarios
  // (data-replay, wear-out) are no-ops here.
  std::optional<AdversaryScenario> adversary;
  std::uint64_t adversary_seed = 0;

  /// Small geometry + aggressive flush/compact thresholds so a short
  /// script exercises every persist stage.
  LsmLayout layout{Addr{1} << 20, /*manifest_blocks=*/4, /*wal_blocks=*/64,
                   /*arena_blocks=*/2048};
  LsmConfig engine{/*memtable_limit_bytes=*/256, /*l0_compact_trigger=*/2,
                   /*index_every=*/4, kMaxLsmValueBytes,
                   /*verify_runs_on_open=*/true, /*merge_jobs=*/1};
};

struct LsmCrashReport {
  bool recovery_supported = false;  // scheme claims post-crash recovery
  bool recovery_ok = false;         // recovery ran clean (no attack flagged)
  bool verified = false;            // recovered image == committed model
  bool salvaged = false;            // recovery degraded but attack-free
  bool degraded_verified = false;   // every readable key matched the model
  std::uint64_t keys_unavailable = 0;
  std::uint64_t total_persists = 0;
  std::uint64_t crash_at = 0;
  std::string crash_stage;          // persist stage of the fatal boundary
  std::uint64_t committed_keys = 0;
  double recovery_seconds = 0.0;
  std::uint64_t recovery_attempts = 1;  // re-entries the recovery took
  bool recovery_gave_up = false;        // retry budget exhausted (never OK)
  bool faulted = false;
  bool fault_detected = false;
  bool adversary_injected = false;  // the scenario's mutation actually landed
  std::string adversary_events;     // what the adversary mutated
  bool wal_torn = false;            // reopen found a torn WAL tail
  std::uint64_t flushes = 0;        // engine flushes before the crash
  std::uint64_t compactions = 0;
  std::string detail;

  /// Same pass contract as KvCrashReport: WB passes by being detected as
  /// unrecoverable, secure schemes pass by exact recovery, verified
  /// salvage, or detection of an injected fault.
  bool pass(Scheme scheme) const {
    if (recovery_gave_up) return false;  // availability failure, always red
    if (scheme == Scheme::kWriteBack) return !recovery_supported;
    if (recovery_ok && verified) return true;
    if (salvaged && degraded_verified) return true;
    return faulted && fault_detected;
  }
};

/// "recovered", "detected", "salvaged", "silent", or (with a nested
/// recovery crash armed and the retry budget exhausted) "unrecoverable".
/// `silent` and `unrecoverable` are the forbidden outcomes.
const char* lsm_crash_verdict(const LsmCrashReport& report, Scheme scheme);

/// Run the validation once at opt.crash_at (or a seeded-random boundary).
LsmCrashReport run_lsm_crash_validation(const SystemConfig& base_cfg, Scheme scheme,
                                        const LsmCrashOptions& opt);

struct LsmCrashMatrix {
  std::uint64_t trials = 0;
  std::uint64_t recovered = 0;
  std::uint64_t detected = 0;
  std::uint64_t salvaged = 0;
  std::uint64_t silent = 0;         // must stay 0
  std::uint64_t unrecoverable = 0;  // must stay 0
  std::uint64_t total_persists = 0;
  /// Crash boundaries visited per persist stage ("wal", "flush-data", ...)
  /// — proves the sweep actually covered every protocol step.
  std::map<std::string, std::uint64_t> stage_trials;
  /// First failing boundary and its detail, when silent > 0.
  std::vector<std::pair<std::uint64_t, std::string>> failures;
};

/// Sweep crash boundaries 0, stride, 2*stride, ... total_persists (one dry
/// run, then one crashed trial per boundary; `jobs` trials run in parallel
/// with a deterministic merge). stride 1 is the exhaustive campaign.
LsmCrashMatrix run_lsm_crash_matrix(const SystemConfig& base_cfg, Scheme scheme,
                                    const LsmCrashOptions& opt, std::uint64_t stride,
                                    unsigned jobs);

}  // namespace steins::lsm

#include "kv/lsm/lsm_ycsb.hpp"

#include <stdexcept>
#include <string>

#include "common/rng.hpp"
#include "sim/system.hpp"

namespace steins::lsm {

namespace {

/// Scatter Zipf ranks over the key universe so hot keys are not clustered
/// in one run's key range (same multiplicative-hash idea as the slot
/// store's home_slot).
std::uint64_t key_of_rank(std::uint64_t rank, std::uint64_t keys) {
  return (rank * 0x9e3779b97f4a7c15ULL >> 13) % keys;
}

std::string make_value(std::uint64_t key, std::uint64_t version,
                       std::size_t value_bytes) {
  std::string v = "k" + std::to_string(key) + "v" + std::to_string(version);
  if (v.size() < value_bytes) v.resize(value_bytes, '.');
  v.resize(value_bytes);
  return v;
}

double update_fraction(kv::Mix mix) {
  switch (mix) {
    case kv::Mix::kA: return 0.5;
    case kv::Mix::kB: return 0.05;
    case kv::Mix::kC: return 0.0;
    case kv::Mix::kF: return 0.5;  // the RMW half
  }
  return 0.0;
}

}  // namespace

LsmYcsbResult run_lsm_ycsb(const SystemConfig& cfg, Scheme scheme,
                           const LsmYcsbConfig& ycfg) {
  if (ycfg.ops == 0 || ycfg.keys == 0) {
    throw std::invalid_argument("lsm ycsb: ops and keys must be positive");
  }
  if (ycfg.layout.base + ycfg.layout.region_bytes() > cfg.nvm.capacity_bytes) {
    throw std::invalid_argument("lsm ycsb: region exceeds NVM capacity");
  }

  System sys(cfg, scheme);
  LsmStore store(sys, ycfg.layout, ycfg.engine);
  {
    const Status s = store.open();
    if (!s.ok()) {
      throw std::invalid_argument("lsm ycsb: open failed: " + s.to_string());
    }
  }

  // Preload the key universe, then settle it into runs so measurement
  // starts from a realistic layered image rather than a pure memtable.
  std::map<std::uint64_t, std::string> model;
  for (std::uint64_t k = 0; k < ycfg.keys; ++k) {
    std::string v = make_value(k, 0, ycfg.value_bytes);
    store.put(k, v);
    if (ycfg.verify) model[k] = std::move(v);
  }
  store.flush();
  store.compact();

  sys.reset_stats();
  const LsmStats before = store.stats();
  const Cycle start = sys.cpu().now();

  LsmYcsbResult res;
  const double upd = update_fraction(ycfg.mix);
  const bool rmw = ycfg.mix == kv::Mix::kF;
  Xoshiro256 rng(derive_stream_seed(ycfg.seed, 0x15f));
  ZipfSampler zipf(static_cast<std::size_t>(ycfg.keys), ycfg.zipf_s);

  for (std::uint64_t i = 0; i < ycfg.ops; ++i) {
    const std::uint64_t key = key_of_rank(zipf.sample(rng), ycfg.keys);
    const bool write = rng.chance(upd);
    const Cycle t0 = sys.cpu().now();
    if (write && rmw) {
      // Read-modify-write: the read and the write are one operation.
      (void)store.get(key);
      std::string v = make_value(key, i + 1, ycfg.value_bytes);
      store.put(key, v);
      if (ycfg.verify) model[key] = std::move(v);
      ++res.updates;
    } else if (write) {
      std::string v = make_value(key, i + 1, ycfg.value_bytes);
      store.put(key, v);
      if (ycfg.verify) model[key] = std::move(v);
      ++res.updates;
    } else {
      (void)store.get(key);
      ++res.reads;
    }
    const Cycle dt = sys.cpu().now() - t0;
    res.all_lat.add(dt);
    (write ? res.update_lat : res.read_lat).add(dt);
  }

  const Cycle elapsed = sys.cpu().now() - start;
  RunStats rs = sys.collect_stats();
  const LsmStats after = store.stats();

  res.ops = ycfg.ops;
  res.seconds = cfg.cycles_to_seconds(elapsed);
  res.kops_per_sec = res.seconds > 0 ? static_cast<double>(res.ops) / res.seconds / 1e3
                                     : 0.0;
  res.nvm_writes = rs.mem.nvm_writes();
  res.bytes_put = after.bytes_put - before.bytes_put;

  res.engine_stats = after;
  res.engine_stats.puts -= before.puts;
  res.engine_stats.erases -= before.erases;
  res.engine_stats.gets -= before.gets;
  res.engine_stats.bytes_put -= before.bytes_put;
  res.engine_stats.wal_records -= before.wal_records;
  res.engine_stats.wal_bytes -= before.wal_bytes;
  res.engine_stats.flushes -= before.flushes;
  res.engine_stats.compactions -= before.compactions;
  res.engine_stats.bg_compactions -= before.bg_compactions;
  res.engine_stats.runs_written -= before.runs_written;
  res.engine_stats.run_blocks_written -= before.run_blocks_written;
  res.engine_stats.persist_barriers -= before.persist_barriers;

  if (res.bytes_put > 0) {
    res.write_amp = static_cast<double>(res.nvm_writes) * kBlockSize /
                    static_cast<double>(res.bytes_put);
    res.logical_write_amp = res.engine_stats.logical_write_amp();
  }

  if (ycfg.verify) {
    res.verified = store.dump() == model;
  }
  return res;
}

}  // namespace steins::lsm

// Block-level geometry of the LSM engine's NVM region (DESIGN.md §15).
//
//   base ─ manifest replica A ─ manifest replica B ─ manifest commit block
//        ─ WAL region ─ sorted-run arena
//
// Every address the engine touches derives from this struct, so the crash
// harness and the fault hooks can name regions ("the manifest", "the WAL
// tail") without private knowledge of the engine.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace steins::lsm {

struct LsmLayout {
  Addr base = Addr{1} << 20;
  std::size_t manifest_blocks = 16;  // per replica (16 blocks = 30 runs max)
  std::size_t wal_blocks = 1024;     // 64 KiB write-ahead log
  std::size_t arena_blocks = 32768;  // 2 MiB sorted-run arena

  Addr manifest_addr(int replica) const {
    return base + static_cast<Addr>(replica) * manifest_blocks * kBlockSize;
  }
  Addr manifest_commit_addr() const { return base + 2 * manifest_blocks * kBlockSize; }
  Addr wal_base() const { return manifest_commit_addr() + kBlockSize; }
  Addr arena_base() const { return wal_base() + wal_blocks * kBlockSize; }
  std::uint64_t wal_bytes() const { return wal_blocks * kBlockSize; }
  std::uint64_t region_bytes() const {
    return (2 * manifest_blocks + 1 + wal_blocks + arena_blocks) * kBlockSize;
  }
  /// Ceiling on runs the manifest replica can describe.
  std::size_t max_runs() const {
    const std::uint64_t bytes = manifest_blocks * kBlockSize;
    return static_cast<std::size_t>((bytes - 56) / 32);
  }
};

/// A contiguous block range inside the run arena.
struct Extent {
  std::uint64_t start_block = 0;
  std::uint64_t block_count = 0;
};

}  // namespace steins::lsm

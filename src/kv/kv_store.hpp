// Crash-consistent key-value store laid out in secure NVM blocks.
//
// Every access goes through the secure path (System::load/store/persist),
// so each KV operation pays — and regression-tests — the full
// encrypt/verify/counter-update machinery of the scheme under test.
//
// Layout (KvLayout): an open-addressed hash table of `slots` entries.
// Each slot owns two 64 B record replicas (A/B) plus one 64-bit commit
// word; commit words are packed eight to a block after the record region:
//
//   base ── slot 0 replica A ─ slot 0 replica B ─ slot 1 replica A ─ ...
//        ── commit block 0 (words for slots 0..7) ─ commit block 1 ─ ...
//
// Ordered persist protocol (DESIGN.md §KV): an update writes the new
// record into the *inactive* replica and persists it (clwb+fence), then
// flips the commit word — version, live replica, tombstone bit — and
// persists that. A crash between the two persists leaves the commit word
// pointing at the old replica, so the previously committed value is intact
// and the in-flight update is invisible: recovery is a pure scan, nothing
// to undo or redo. The commit-word persist is the linearization point.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "common/status.hpp"
#include "common/types.hpp"
#include "sim/system.hpp"

namespace steins::kv {

/// Block-level geometry of the store's NVM region. Shared by KvStore
/// (System-based) and the YCSB driver (MultiControllerMemory-based) so
/// both issue identical access shapes.
struct KvLayout {
  Addr base = Addr{1} << 20;
  std::size_t slots = std::size_t{1} << 12;  // power of two

  static constexpr std::size_t kWordsPerCommitBlock = kBlockSize / 8;

  Addr record_addr(std::size_t slot, int replica) const {
    return base + (2 * slot + static_cast<std::size_t>(replica)) * kBlockSize;
  }
  Addr commit_block_addr(std::size_t slot) const {
    return base + 2 * slots * kBlockSize + (slot / kWordsPerCommitBlock) * kBlockSize;
  }
  std::size_t commit_word_offset(std::size_t slot) const {
    return (slot % kWordsPerCommitBlock) * 8;
  }
  std::uint64_t region_bytes() const {
    return (2 * slots + (slots + kWordsPerCommitBlock - 1) / kWordsPerCommitBlock) *
           kBlockSize;
  }
  std::size_t home_slot(std::uint64_t key) const {
    return static_cast<std::size_t>((key * 0x9e3779b97f4a7c15ULL) >> 17) & (slots - 1);
  }
};

/// On-media record image: one 64 B block.
/// [0,8) key | [8,16) version | [16,24) checksum | [24,32) value length |
/// [32,64) value bytes.
struct KvRecord {
  std::uint64_t key = 0;
  std::uint64_t version = 0;
  std::string value;
};

inline constexpr std::size_t kMaxValueBytes = kBlockSize - 32;

Block encode_record(const KvRecord& rec);
/// False if the block is not a well-formed record (bad checksum/length).
bool decode_record(const Block& b, KvRecord* out);

/// Commit word: bit 0 = live replica, bit 1 = live (1) vs tombstone (0),
/// bits [2,64) = slot version. Zero means the slot was never used.
struct CommitWord {
  std::uint64_t version = 0;
  int replica = 0;
  bool live = false;

  std::uint64_t encode() const {
    return (version << 2) | (std::uint64_t{live} << 1) |
           static_cast<std::uint64_t>(replica & 1);
  }
  static CommitWord decode(std::uint64_t w) {
    return CommitWord{w >> 2, static_cast<int>(w & 1), (w & 2) != 0};
  }
  bool empty() const { return version == 0; }
};

/// Thrown when the persisted image violates the commit protocol's
/// invariants (live commit word whose record does not match) — possible
/// only when metadata recovery was skipped or failed.
class KvCorruption : public std::runtime_error {
 public:
  explicit KvCorruption(const std::string& what) : std::runtime_error(what) {}
};

class KvStore {
 public:
  /// The store is stateless over NVM: constructing one over a region that
  /// already holds a (recovered) image simply resumes serving it.
  KvStore(System& sys, const KvLayout& layout);

  /// Insert or update. Throws std::invalid_argument if the value exceeds
  /// kMaxValueBytes and std::runtime_error if the table is full.
  void put(std::uint64_t key, const std::string& value);

  /// Read a committed value; nullopt if absent.
  std::optional<std::string> get(std::uint64_t key);

  /// Delete; returns false if the key was absent.
  bool erase(std::uint64_t key);

  /// Enumerate every committed pair (a full region scan — recovery
  /// validation and tests use this to diff against a model).
  std::map<std::uint64_t, std::string> dump();

  // Degraded-mode API. After a salvage recovery some lines under the store
  // are quarantined: the secure path fails reads of them with a *typed*
  // StatusError instead of plaintext. The try_ variants convert those into
  // Status values so a service can keep running; the throwing API above is
  // unchanged (a typed error simply propagates).

  /// Adopt the outcome of System::crash_and_recover(). A detected attack or
  /// an internal recovery failure means the tree was never re-armed: the
  /// store freezes into read-only mode, still serving whatever verifies.
  /// A clean-but-degraded salvage stays writable — quarantined slots just
  /// answer with typed errors until their lines are remapped and rewritten.
  void apply_recovery_report(const RecoveryReport& report);

  /// True once the store froze: after a detected attack / failed recovery
  /// (apply_recovery_report), or once a mutation hit a quarantined line
  /// with the device's remap spare pool exhausted — the slot can never be
  /// repaired, so mutations stop with typed kReadOnly while reads keep
  /// serving whatever verifies.
  bool read_only() const { return read_only_; }
  void set_read_only(bool ro) { read_only_ = ro; }
  /// True when the last applied recovery report salvaged (lost) anything.
  bool degraded() const { return degraded_; }

  /// get() that returns the unavailability instead of throwing. The outer
  /// layer distinguishes "absent" (ok + nullopt) from "unreadable" (error).
  Expected<std::optional<std::string>> try_get(std::uint64_t key);

  /// put() guarded by read-only mode; unavailable lines yield their Status.
  Status try_put(std::uint64_t key, const std::string& value);

  /// erase() with the same contract; value is "was present".
  Expected<bool> try_erase(std::uint64_t key);

  /// dump() that skips unreadable slots instead of throwing on them.
  struct DegradedDump {
    std::map<std::uint64_t, std::string> live;
    std::uint64_t slots_unavailable = 0;  // commit word or record unreadable
  };
  DegradedDump dump_degraded();

  /// Number of persist (clwb+fence) barriers issued so far.
  std::uint64_t persists() const { return persists_; }

  /// Called immediately BEFORE each persist barrier with a stage label
  /// ("record" or "commit") and the barrier's index. Crash-injection tests
  /// throw from here: everything persisted earlier is durable, the store
  /// state in the caches is not.
  using PersistHook = std::function<void(const char* stage, std::uint64_t index)>;
  void set_persist_hook(PersistHook hook) { hook_ = std::move(hook); }

  const KvLayout& layout() const { return layout_; }

 private:
  struct Probe {
    bool found = false;           // key present (live)
    std::size_t slot = 0;         // slot of the key if found
    CommitWord word;              // its commit word if found
    bool has_free = false;        // first reusable slot seen on the way
    std::size_t free_slot = 0;
  };
  Probe probe(std::uint64_t key);

  CommitWord read_commit(std::size_t slot);
  void write_commit(std::size_t slot, const CommitWord& word);
  void persist_barrier(Addr addr, const char* stage);
  /// Freeze read-only when a failed mutation can never be repaired
  /// (quarantined line, spare pool dry).
  void maybe_freeze(const StatusError& e);

  System& sys_;
  KvLayout layout_;
  PersistHook hook_;
  std::uint64_t persists_ = 0;
  bool read_only_ = false;
  bool degraded_ = false;
};

}  // namespace steins::kv

#include "kv/serving.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <stdexcept>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "common/thread_pool.hpp"
#include "sim/multi_controller.hpp"

namespace steins::kv {

const char* routing_name(Routing r) {
  switch (r) {
    case Routing::kHash: return "hash";
    case Routing::kLoadAware: return "load-aware";
  }
  return "?";
}

std::optional<Routing> parse_routing(const std::string& name) {
  if (name == "hash") return Routing::kHash;
  if (name == "load-aware" || name == "loadaware" || name == "load") {
    return Routing::kLoadAware;
  }
  return std::nullopt;
}

namespace {

double update_fraction(Mix m) {
  switch (m) {
    case Mix::kA: return 0.50;
    case Mix::kB: return 0.05;
    case Mix::kC: return 0.00;
    case Mix::kF: return 0.50;  // the update half is a read-modify-write
  }
  return 0.0;
}

std::uint64_t word_at(const Block& b, std::size_t offset) {
  std::uint64_t w = 0;
  std::memcpy(&w, b.data() + offset, 8);
  return w;
}

void put_word(Block& b, std::size_t offset, std::uint64_t w) {
  std::memcpy(b.data() + offset, &w, 8);
}

/// Same value encoding as the YCSB driver, so record images stay
/// cross-checkable between the two drivers.
std::string client_value(std::uint64_t key, std::uint64_t version,
                         std::size_t value_bytes) {
  std::string v = "c" + std::to_string(key) + "." + std::to_string(version);
  if (v.size() < value_bytes) v.resize(value_bytes, '~');
  v.resize(std::min(value_bytes, kMaxValueBytes));
  return v;
}

void fnv_fold(std::uint64_t& h, const void* p, std::size_t n) {
  const auto* b = static_cast<const unsigned char*>(p);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= b[i];
    h *= 1099511628211ULL;
  }
}

/// Epoch-local op index meaning "shared group-commit flush, attributed to
/// no single op" (its service shows up in makespan and the flush columns,
/// not in a client's latency).
constexpr std::uint32_t kNoOp = 0xffffffffu;
constexpr std::uint64_t kNoStop = ~std::uint64_t{0};
constexpr std::uint64_t kNoKey = ~std::uint64_t{0};

/// One resolved access of a shard's schedule. Addresses are LOCAL to the
/// shard's controller (per-shard layouts bypass the interleave). `seq` is
/// the global emission order — the crash-boundary granularity.
struct PlannedAccess {
  enum Kind : std::uint8_t { kCommitRead, kRecordRead, kWrite };
  Addr addr = 0;
  std::uint64_t seq = 0;
  std::uint32_t op = kNoOp;   // epoch-local op index
  Kind kind = kWrite;
  std::uint32_t offset = 0;   // commit-word byte offset (kCommitRead)
  std::uint64_t expect_word = 0;     // kCommitRead
  std::uint64_t expect_key = 0;      // kRecordRead
  std::uint64_t expect_version = 0;  // kRecordRead
  Block data{};               // kWrite image
  Cycle service = 0;
};

struct OpPlan {
  std::uint32_t client = 0;
  bool is_update = false;
  bool shed = false;
};

struct Client {
  Xoshiro256 rng{1};
  LatencyHistogram read_lat;
  LatencyHistogram update_lat;
  std::uint64_t reads = 0;
  std::uint64_t updates = 0;
};

struct Shard {
  std::vector<std::uint64_t> keys;       // keys routed here (ascending)
  std::vector<std::uint64_t> slot_key;   // slot -> key (kNoKey = unused)
  std::vector<std::uint64_t> media;      // commit words as scheduled on media
  std::vector<std::uint64_t> logical;    // media + buffered window
  std::vector<std::uint64_t> durable;    // commit writes below stop_seq only
  std::vector<char> pending;             // slot has a buffered commit word
  std::vector<std::size_t> pending_slots;
  std::uint64_t admitted = 0;            // this epoch
  std::uint64_t batched = 0;             // commit words coalesced, lifetime
  ShardServingStats stats;
  std::vector<PlannedAccess> queue;
  Cycle now = 0;
};

/// Everything a crash harness needs to diff recovery against.
struct EngineRun {
  ServingResult result;
  std::uint64_t total_accesses = 0;
  std::vector<std::vector<std::uint64_t>> durable;   // [shard][slot]
  std::vector<std::vector<std::uint64_t>> slot_key;  // [shard][slot]
};

/// Key -> shard routing table. kHash scatters by multiplicative hash (top
/// bits, decorrelated from home_slot's bits); kLoadAware assigns keys in
/// descending expected Zipf weight to the least-loaded shard, capacity
/// guarded at half-full per shard so linear probing stays short.
std::vector<std::uint32_t> route_keys(const ServingConfig& scfg) {
  const std::size_t cap = scfg.slots / 2;
  std::vector<std::uint32_t> shard_of(scfg.keys, 0);
  std::vector<std::size_t> counts(scfg.shards, 0);
  if (scfg.routing == Routing::kHash) {
    for (std::uint64_t key = 0; key < scfg.keys; ++key) {
      const auto s = static_cast<std::uint32_t>(
          ((key * 0x9e3779b97f4a7c15ULL) >> 49) % scfg.shards);
      if (counts[s] >= cap) {
        throw std::invalid_argument(
            "hash routing overflowed a shard table; raise slots or use "
            "load-aware routing");
      }
      shard_of[key] = s;
      ++counts[s];
    }
    return shard_of;
  }
  // Expected access weight per key: the Zipf pmf over ranks, folded through
  // the rank -> key scatter (several ranks can share a key when the scatter
  // is non-injective mod keys).
  std::vector<double> weight(scfg.keys, 0.0);
  for (std::uint64_t rank = 0; rank < scfg.keys; ++rank) {
    const std::uint64_t key = (rank * 0x9e3779b97f4a7c15ULL) % scfg.keys;
    weight[key] += std::pow(static_cast<double>(rank + 1), -scfg.zipf_s);
  }
  std::vector<std::uint64_t> order(scfg.keys);
  for (std::uint64_t k = 0; k < scfg.keys; ++k) order[k] = k;
  std::sort(order.begin(), order.end(), [&](std::uint64_t a, std::uint64_t b) {
    if (weight[a] != weight[b]) return weight[a] > weight[b];
    return a < b;
  });
  std::vector<double> load(scfg.shards, 0.0);
  for (const std::uint64_t key : order) {
    std::size_t best = scfg.shards;  // invalid
    for (std::size_t s = 0; s < scfg.shards; ++s) {
      if (counts[s] >= cap) continue;
      if (best == scfg.shards || load[s] < load[best]) best = s;
    }
    if (best == scfg.shards) {
      throw std::invalid_argument(
          "keys exceed the shards' admission-guarded table capacity");
    }
    shard_of[key] = static_cast<std::uint32_t>(best);
    load[best] += weight[key];
    ++counts[best];
  }
  return shard_of;
}

/// The whole engine: schedule resolution + (optionally) parallel replay.
/// `mem` == nullptr plans only (no memory execution, no preload); stop_seq
/// caps execution at the crash boundary — accesses with seq >= stop_seq
/// are scheduled for durable-state bookkeeping but never issued.
/// Reject nonsense configurations before anything divides by or allocates
/// proportionally to the shard count — every public entry point calls this
/// ahead of constructing MultiControllerMemory, whose constructor already
/// partitions capacity by the controller count.
void validate_serving_config(const SystemConfig& cfg, const ServingConfig& scfg) {
  if (scfg.clients == 0) throw std::invalid_argument("serving needs >= 1 client");
  if (scfg.shards == 0) throw std::invalid_argument("serving needs >= 1 shard");
  if (scfg.slots == 0 || (scfg.slots & (scfg.slots - 1)) != 0) {
    throw std::invalid_argument("serving slots must be a power of two");
  }
  if (scfg.keys == 0) throw std::invalid_argument("serving needs >= 1 key");
  if (scfg.epoch_ops == 0) throw std::invalid_argument("epoch_ops must be >= 1");
  KvLayout layout;
  layout.base = scfg.base;
  layout.slots = scfg.slots;
  if (layout.base + layout.region_bytes() > cfg.nvm.capacity_bytes / scfg.shards) {
    throw std::invalid_argument("per-shard KV region exceeds the controller capacity");
  }
}

EngineRun run_engine(const SystemConfig& cfg, const ServingConfig& scfg,
                     std::uint64_t stop_seq, MultiControllerMemory* mem) {
  validate_serving_config(cfg, scfg);
  KvLayout layout;
  layout.base = scfg.base;
  layout.slots = scfg.slots;

  const std::vector<std::uint32_t> shard_of = route_keys(scfg);
  std::vector<Shard> shards(scfg.shards);
  for (Shard& sh : shards) {
    sh.slot_key.assign(scfg.slots, kNoKey);
    sh.media.assign(scfg.slots, 0);
    sh.logical.assign(scfg.slots, 0);
    sh.durable.assign(scfg.slots, 0);
    sh.pending.assign(scfg.slots, 0);
  }
  // Slot assignment: per-shard linear probing in ascending key order, so
  // the table image is independent of the routing policy's assignment
  // order.
  std::vector<std::size_t> slot_of(scfg.keys, 0);
  for (std::uint64_t key = 0; key < scfg.keys; ++key) {
    Shard& sh = shards[shard_of[key]];
    std::size_t s = layout.home_slot(key);
    while (sh.slot_key[s] != kNoKey) s = (s + 1) & (scfg.slots - 1);
    sh.slot_key[s] = key;
    slot_of[key] = s;
    sh.keys.push_back(key);
    ++sh.stats.keys;
  }

  // Preload every shard's records + commit blocks on its own timeline.
  const std::uint64_t preload_word = CommitWord{1, 0, true}.encode();
  for (std::uint32_t s = 0; s < scfg.shards; ++s) {
    Shard& sh = shards[s];
    for (const std::uint64_t key : sh.keys) {
      const std::size_t slot = slot_of[key];
      sh.media[slot] = sh.logical[slot] = sh.durable[slot] = preload_word;
    }
    if (mem == nullptr) continue;
    SecureMemory& ctrl = mem->controller(s);
    Cycle t = 0;
    for (const std::uint64_t key : sh.keys) {
      const KvRecord rec{key, 1, client_value(key, 1, scfg.value_bytes)};
      t = ctrl.write_block(layout.record_addr(slot_of[key], 0), encode_record(rec), t);
    }
    const std::size_t nblocks =
        (scfg.slots + KvLayout::kWordsPerCommitBlock - 1) / KvLayout::kWordsPerCommitBlock;
    for (std::size_t blk = 0; blk < nblocks; ++blk) {
      const std::size_t first = blk * KvLayout::kWordsPerCommitBlock;
      const std::size_t n =
          std::min(KvLayout::kWordsPerCommitBlock, scfg.slots - first);
      bool any = false;
      Block img{};
      for (std::size_t w = 0; w < n; ++w) {
        put_word(img, w * 8, sh.media[first + w]);
        any = any || sh.media[first + w] != 0;
      }
      if (any) t = ctrl.write_block(layout.commit_block_addr(first), img, t);
    }
    ctrl.stats().reset();
    mem->note_frontier(s, t);
    sh.now = t;
  }
  const Cycle start = mem != nullptr ? mem->max_frontier() : 0;
  for (Shard& sh : shards) sh.now = start;

  std::vector<Client> clients(scfg.clients);
  for (unsigned i = 0; i < scfg.clients; ++i) {
    clients[i].rng = Xoshiro256(derive_stream_seed(scfg.seed, i));
  }
  const ZipfSampler sampler(static_cast<std::size_t>(scfg.keys), scfg.zipf_s);
  const double upd_frac = update_fraction(scfg.mix);

  std::uint64_t next_seq = 0;
  LatencyHistogram batch_sizes;

  // Flush a shard's group-commit window: one commit-block write per dirty
  // block (ascending), image materialized from the logical words. The
  // window's size is one batch-distribution sample.
  const auto flush_window = [&](Shard& sh, std::uint32_t attribute_op) {
    if (sh.pending_slots.empty()) return;
    std::sort(sh.pending_slots.begin(), sh.pending_slots.end());
    std::size_t prev_block = ~std::size_t{0};
    for (const std::size_t slot : sh.pending_slots) {
      sh.pending[slot] = 0;
      const std::size_t block = slot / KvLayout::kWordsPerCommitBlock;
      if (block == prev_block) continue;
      prev_block = block;
      const std::size_t first = block * KvLayout::kWordsPerCommitBlock;
      const std::size_t n =
          std::min(KvLayout::kWordsPerCommitBlock, scfg.slots - first);
      PlannedAccess w;
      w.addr = layout.commit_block_addr(first);
      w.seq = next_seq++;
      w.op = attribute_op;
      w.kind = PlannedAccess::kWrite;
      for (std::size_t i = 0; i < n; ++i) put_word(w.data, i * 8, sh.logical[first + i]);
      for (std::size_t i = 0; i < n; ++i) sh.media[first + i] = sh.logical[first + i];
      if (w.seq < stop_seq) {
        for (std::size_t i = 0; i < n; ++i) sh.durable[first + i] = sh.logical[first + i];
      }
      sh.queue.push_back(std::move(w));
      ++sh.stats.commit_writes;
    }
    batch_sizes.add(sh.pending_slots.size());
    sh.batched += sh.pending_slots.size();
    ++sh.stats.commit_flushes;
    sh.pending_slots.clear();
  };

  // Replay one shard's queue on its own controller, validating every read
  // against the schedule. Queues are disjoint; the ShardGang barrier is
  // the only synchronization.
  const auto replay = [&](std::size_t s) {
    if (mem == nullptr) return;
    Shard& sh = shards[s];
    MultiControllerMemory::ShardLease lease(*mem, static_cast<unsigned>(s));
    SecureMemory& ctrl = lease.mem();
    Cycle now = sh.now;
    for (PlannedAccess& a : sh.queue) {
      if (a.seq >= stop_seq) break;
      if (a.kind == PlannedAccess::kWrite) {
        const Cycle done = ctrl.write_block(a.addr, a.data, now);
        a.service = done - now;
        now = done;
        continue;
      }
      Block b;
      const Cycle done = ctrl.read_block(a.addr, now, &b);
      a.service = done - now;
      now = done;
      if (a.kind == PlannedAccess::kCommitRead) {
        if (word_at(b, a.offset) != a.expect_word) {
          throw std::logic_error(
              "serving replay read a commit word diverging from the schedule");
        }
      } else {
        KvRecord rec;
        if (!decode_record(b, &rec) || rec.key != a.expect_key ||
            rec.version != a.expect_version) {
          throw std::logic_error("serving replay read a corrupt or stale record");
        }
      }
    }
    sh.now = now;
    lease.note_frontier(now);
  };

  ShardGang gang(scfg.shards, mem != nullptr ? scfg.jobs : 1);

  std::vector<OpPlan> plans;
  std::vector<Cycle> op_lat;
  ServingResult res;
  res.offered_ops = scfg.ops;
  for (std::uint64_t done_ops = 0; done_ops < scfg.ops;) {
    const std::uint64_t epoch_ops = std::min(scfg.epoch_ops, scfg.ops - done_ops);
    plans.clear();
    for (Shard& sh : shards) {
      sh.queue.clear();
      sh.admitted = 0;
    }

    // Phase 1: resolve the epoch's schedule.
    for (std::uint64_t e = 0; e < epoch_ops; ++e) {
      const auto op_idx = static_cast<std::uint32_t>(e);
      const auto cid = static_cast<std::uint32_t>((done_ops + e) % scfg.clients);
      Client& c = clients[cid];
      const std::uint64_t rank = sampler.sample(c.rng);
      const std::uint64_t key = (rank * 0x9e3779b97f4a7c15ULL) % scfg.keys;
      const bool is_update = upd_frac > 0.0 && c.rng.chance(upd_frac);
      Shard& sh = shards[shard_of[key]];

      // Bounded admission: overload sheds the op into a typed degraded
      // verdict. The client RNG was already advanced identically, so the
      // rest of the schedule is unchanged by the shed.
      if (scfg.queue_depth != 0 && sh.admitted >= scfg.queue_depth) {
        ++sh.stats.shed;
        sh.stats.degraded = true;
        plans.push_back(OpPlan{cid, is_update, true});
        continue;
      }
      ++sh.admitted;
      ++sh.stats.ops;
      plans.push_back(OpPlan{cid, is_update, false});

      const std::size_t slot = slot_of[key];
      const CommitWord word = CommitWord::decode(sh.logical[slot]);
      if (word.empty() || !word.live) {
        throw std::logic_error("serving scheduled an op on a dead slot");
      }

      if (is_update && sh.pending[slot]) {
        // Second update to a buffered slot: its record write would target
        // the replica the DURABLE commit word still points at. Force the
        // window out first so the two-replica invariant holds at every
        // crash boundary.
        flush_window(sh, kNoOp);
      }

      if (!sh.pending[slot]) {
        // Commit read from media; a buffered slot skips this (the word is
        // served from the shard's volatile commit buffer — the group
        // commit coalescing win on the read path).
        PlannedAccess commit_read;
        commit_read.addr = layout.commit_block_addr(slot);
        commit_read.seq = next_seq++;
        commit_read.op = op_idx;
        commit_read.kind = PlannedAccess::kCommitRead;
        commit_read.offset = static_cast<std::uint32_t>(layout.commit_word_offset(slot));
        commit_read.expect_word = sh.media[slot];
        sh.queue.push_back(std::move(commit_read));
      }

      // Re-read the word: the forced flush above never changes it, but
      // keep the single source of truth obvious.
      const CommitWord cur = CommitWord::decode(sh.logical[slot]);
      if (!is_update || scfg.mix == Mix::kF) {
        PlannedAccess rec_read;
        rec_read.addr = layout.record_addr(slot, cur.replica);
        rec_read.seq = next_seq++;
        rec_read.op = op_idx;
        rec_read.kind = PlannedAccess::kRecordRead;
        rec_read.expect_key = key;
        rec_read.expect_version = cur.version;
        sh.queue.push_back(std::move(rec_read));
      }
      if (is_update) {
        const int replica = 1 - cur.replica;
        const KvRecord rec{key, cur.version + 1,
                           client_value(key, cur.version + 1, scfg.value_bytes)};
        PlannedAccess rec_write;
        rec_write.addr = layout.record_addr(slot, replica);
        rec_write.seq = next_seq++;
        rec_write.op = op_idx;
        rec_write.kind = PlannedAccess::kWrite;
        rec_write.data = encode_record(rec);
        sh.queue.push_back(std::move(rec_write));

        sh.logical[slot] = CommitWord{cur.version + 1, replica, true}.encode();
        sh.pending[slot] = 1;
        sh.pending_slots.push_back(slot);
        if (scfg.group_commit_window == 0) {
          flush_window(sh, op_idx);  // batch of 1: the op owns its commit write
        } else if (sh.pending_slots.size() >= scfg.group_commit_window) {
          flush_window(sh, kNoOp);
        }
      }
    }
    // Epoch boundary is a durability point: every shard's window goes out.
    for (Shard& sh : shards) flush_window(sh, kNoOp);

    // Phase 2: replay each shard's queue behind the gang barrier.
    gang.run_epoch(replay);

    // Epoch barrier: fold service times into per-client histograms in
    // global op order. Group flushes (kNoOp) contribute to makespan and
    // the flush columns, not to any single client's latency.
    op_lat.assign(epoch_ops, 0);
    for (const Shard& sh : shards) {
      for (const PlannedAccess& a : sh.queue) {
        if (a.seq >= stop_seq) break;
        if (a.op == kNoOp) continue;
        op_lat[a.op] += a.service;
      }
    }
    if (mem != nullptr && stop_seq == kNoStop) {
      for (std::uint64_t e = 0; e < epoch_ops; ++e) {
        if (plans[e].shed) continue;
        Client& c = clients[plans[e].client];
        if (plans[e].is_update) {
          c.update_lat.add(op_lat[e]);
          ++c.updates;
        } else {
          c.read_lat.add(op_lat[e]);
          ++c.reads;
        }
      }
    }
    done_ops += epoch_ops;
    // Past the crash boundary nothing further executes; keep scheduling
    // only if durable bookkeeping could still change (it cannot).
    if (stop_seq != kNoStop && next_seq >= stop_seq) break;
  }

  for (const Client& c : clients) {
    res.read_lat.merge(c.read_lat);
    res.update_lat.merge(c.update_lat);
    res.reads += c.reads;
    res.updates += c.updates;
  }
  res.all_lat.merge(res.read_lat);
  res.all_lat.merge(res.update_lat);
  res.batch_sizes = batch_sizes;
  res.ops = res.reads + res.updates;
  for (Shard& sh : shards) {
    res.shed_ops += sh.stats.shed;
    if (sh.stats.degraded) ++res.degraded_shards;
    res.commit_writes += sh.stats.commit_writes;
    sh.stats.busy = sh.now - start;
    res.makespan = std::max(res.makespan, sh.stats.busy);
    sh.stats.mean_batch =
        sh.stats.commit_flushes
            ? static_cast<double>(sh.batched) / static_cast<double>(sh.stats.commit_flushes)
            : 0.0;
  }
  for (Shard& sh : shards) {
    sh.stats.occupancy = res.makespan
                             ? static_cast<double>(sh.stats.busy) /
                                   static_cast<double>(res.makespan)
                             : 0.0;
    res.shards.push_back(sh.stats);
  }
  res.seconds = cfg.cycles_to_seconds(res.makespan);
  res.kops_per_sec =
      res.seconds > 0.0 ? static_cast<double>(res.ops) / res.seconds / 1e3 : 0.0;
  if (mem != nullptr) res.nvm_writes = mem->total_nvm_writes();

  // Final durable-image digest: read every commit block and live record
  // back from media, sequentially in shard order after the last barrier.
  // Bit-identity across jobs values includes this digest.
  if (mem != nullptr && stop_seq == kNoStop) {
    std::uint64_t digest = 1469598103934665603ULL;  // FNV-1a offset basis
    for (std::uint32_t s = 0; s < scfg.shards; ++s) {
      Shard& sh = shards[s];
      SecureMemory& ctrl = mem->controller(s);
      Cycle now = sh.now;
      const std::size_t nblocks =
          (scfg.slots + KvLayout::kWordsPerCommitBlock - 1) /
          KvLayout::kWordsPerCommitBlock;
      for (std::size_t blk = 0; blk < nblocks; ++blk) {
        const std::size_t first = blk * KvLayout::kWordsPerCommitBlock;
        const std::size_t n =
            std::min(KvLayout::kWordsPerCommitBlock, scfg.slots - first);
        bool any = false;
        for (std::size_t i = 0; i < n; ++i) any = any || sh.media[first + i] != 0;
        if (!any) continue;
        Block b;
        now = std::max(now, ctrl.read_block(layout.commit_block_addr(first), now, &b));
        for (std::size_t i = 0; i < n; ++i) {
          const std::uint64_t got = word_at(b, i * 8);
          if (got != sh.media[first + i]) {
            throw std::logic_error("final image diverged from the schedule shadow");
          }
          fnv_fold(digest, &got, 8);
          const CommitWord word = CommitWord::decode(got);
          if (word.empty() || !word.live) continue;
          Block rec;
          now = std::max(
              now, ctrl.read_block(layout.record_addr(first + i, word.replica), now, &rec));
          fnv_fold(digest, rec.data(), rec.size());
        }
      }
    }
    res.image_digest = digest;
  }

  EngineRun run;
  run.result = std::move(res);
  run.total_accesses = next_seq;
  for (Shard& sh : shards) {
    run.durable.push_back(std::move(sh.durable));
    run.slot_key.push_back(std::move(sh.slot_key));
  }
  return run;
}

}  // namespace

ServingResult run_sharded_serving(const SystemConfig& cfg, Scheme scheme,
                                  const ServingConfig& scfg) {
  validate_serving_config(cfg, scfg);
  MultiControllerMemory mem(cfg, scheme, scfg.shards);
  return run_engine(cfg, scfg, kNoStop, &mem).result;
}

std::uint64_t count_serving_accesses(const SystemConfig& cfg, Scheme scheme,
                                     const ServingConfig& scfg) {
  (void)scheme;  // the schedule is scheme-independent
  return run_engine(cfg, scfg, kNoStop, nullptr).total_accesses;
}

ServingCrashReport run_serving_crash(const SystemConfig& cfg, Scheme scheme,
                                     const ServingConfig& scfg,
                                     const ServingCrashOptions& opt) {
  ServingCrashReport rep;
  validate_serving_config(cfg, scfg);
  rep.total_accesses = count_serving_accesses(cfg, scheme, scfg);
  if (opt.crash_at == ServingCrashOptions::kRandomBoundary) {
    Xoshiro256 rng(derive_stream_seed(scfg.seed, 0xC2A54ULL));
    rep.crash_at = rng.below(rep.total_accesses + 1);
  } else {
    rep.crash_at = std::min(opt.crash_at, rep.total_accesses);
  }

  MultiControllerMemory mem(cfg, scheme, scfg.shards);
  EngineRun run = run_engine(cfg, scfg, rep.crash_at, &mem);

  // Fold the requested hardware fault into every controller's crash drain;
  // each DIMM gets its own derived plan so a report reproduces from its
  // fields alone.
  rep.faulted = opt.fault_class != FaultClass::kNone;
  std::vector<std::unique_ptr<FaultInjector>> injectors;
  if (rep.faulted) {
    for (std::uint32_t s = 0; s < scfg.shards; ++s) {
      injectors.push_back(std::make_unique<FaultInjector>(
          FaultPlan::derive(opt.fault_class, opt.fault_seed + s, rep.crash_at)));
      mem.set_fault_injector(s, injectors.back().get());
    }
  }

  const RecoveryResult r = mem.crash_and_recover_all(scfg.jobs);
  for (std::uint32_t s = 0; s < scfg.shards; ++s) mem.set_fault_injector(s, nullptr);
  rep.recovery_supported = r.supported;
  rep.recovery_ok = r.ok();
  rep.recovery_seconds = r.seconds;
  if (!r.supported) {
    rep.detail = "scheme reports recovery unsupported";
    return rep;
  }
  if (r.recovery_gave_up) {
    rep.detail = "recovery retry budget exhausted: " + r.status.message();
    return rep;
  }
  if (!r.status.ok()) {
    rep.detail = "recovery internal error: " + r.status.to_string();
    return rep;
  }
  if (r.attack_detected) {
    rep.fault_detected = rep.faulted;
    rep.detail = "recovery flagged: " + r.attack_detail;
    return rep;
  }
  rep.salvaged = r.degraded();

  // Diff the recovered image against the durable commit state: every
  // durable commit word must read back EXACTLY (a diverging word is a
  // silent rollback or an uncommitted update made visible) and every
  // durable live record must decode to its committed version/value, or
  // fail with a typed unavailable error (degraded service, not silence).
  KvLayout layout;
  layout.base = scfg.base;
  layout.slots = scfg.slots;
  try {
    for (std::uint32_t s = 0; s < scfg.shards; ++s) {
      SecureMemory& ctrl = mem.controller(s);
      const std::vector<std::uint64_t>& durable = run.durable[s];
      const std::vector<std::uint64_t>& slot_key = run.slot_key[s];
      Cycle now = 0;
      const std::size_t nblocks =
          (scfg.slots + KvLayout::kWordsPerCommitBlock - 1) /
          KvLayout::kWordsPerCommitBlock;
      for (std::size_t blk = 0; blk < nblocks; ++blk) {
        const std::size_t first = blk * KvLayout::kWordsPerCommitBlock;
        const std::size_t n =
            std::min(KvLayout::kWordsPerCommitBlock, scfg.slots - first);
        std::uint64_t durable_live = 0;
        bool any = false;
        for (std::size_t i = 0; i < n; ++i) {
          if (durable[first + i] == 0) continue;
          any = true;
          if (CommitWord::decode(durable[first + i]).live) ++durable_live;
        }
        if (!any) continue;
        Block b;
        try {
          now = std::max(now, ctrl.read_block(layout.commit_block_addr(first), now, &b));
        } catch (const StatusError& e) {
          if (!is_unavailable(e.code())) throw;
          rep.slots_unavailable += durable_live;
          continue;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const std::size_t slot = first + i;
          const std::uint64_t got = word_at(b, i * 8);
          if (got != durable[slot]) {
            rep.detail = "slot " + std::to_string(slot) + " on shard " +
                         std::to_string(s) + " holds commit word " +
                         std::to_string(got) + ", committed " +
                         std::to_string(durable[slot]);
            return rep;
          }
          const CommitWord word = CommitWord::decode(got);
          if (word.empty() || !word.live) continue;
          ++rep.committed_slots;
          Block recb;
          try {
            now = std::max(
                now, ctrl.read_block(layout.record_addr(slot, word.replica), now, &recb));
          } catch (const StatusError& e) {
            if (!is_unavailable(e.code())) throw;
            ++rep.slots_unavailable;
            continue;
          }
          KvRecord rec;
          const std::uint64_t key = slot_key[slot];
          if (!decode_record(recb, &rec) || rec.key != key ||
              rec.version != word.version ||
              rec.value != client_value(key, word.version, scfg.value_bytes)) {
            rep.detail = "committed key " + std::to_string(key) +
                         " has a silently wrong record after recovery";
            return rep;
          }
        }
      }
    }
  } catch (const IntegrityViolation& e) {
    rep.fault_detected = rep.faulted;
    rep.detail = std::string("readback raised: ") + e.what();
    return rep;
  } catch (const StatusError& e) {
    rep.detail = std::string("readback failed untyped: ") + e.what();
    return rep;
  }
  if (rep.slots_unavailable > 0) rep.salvaged = true;
  if (rep.salvaged) {
    rep.degraded_verified = true;
  } else {
    rep.verified = true;
  }
  return rep;
}

}  // namespace steins::kv

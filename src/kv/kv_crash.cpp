#include "kv/kv_crash.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "kv/kv_store.hpp"
#include "sim/system.hpp"

namespace steins::kv {

namespace {

/// Internal crash signal thrown from the persist hook.
struct CrashNow {};

struct ScriptOp {
  enum class Kind { kPut, kErase, kGet } kind;
  std::uint64_t key;
  std::string value;  // for puts
};

/// The deterministic op script: put-heavy with erases and reads mixed in,
/// hammering a small key universe so updates and tombstone reuse occur.
std::vector<ScriptOp> make_script(const KvCrashOptions& opt) {
  Xoshiro256 rng(opt.seed * 0x9e3779b97f4a7c15ULL + 1);
  std::vector<ScriptOp> script;
  script.reserve(opt.ops);
  for (std::uint64_t i = 0; i < opt.ops; ++i) {
    const std::uint64_t key = rng.below(opt.keys);
    const std::uint64_t roll = rng.below(10);
    if (roll < 6) {
      std::string value = "v" + std::to_string(i) + "k" + std::to_string(key);
      if (value.size() < opt.value_bytes) value.resize(opt.value_bytes, '.');
      value.resize(std::min(value.size(), kMaxValueBytes));
      script.push_back({ScriptOp::Kind::kPut, key, std::move(value)});
    } else if (roll < 8) {
      script.push_back({ScriptOp::Kind::kErase, key, {}});
    } else {
      script.push_back({ScriptOp::Kind::kGet, key, {}});
    }
  }
  return script;
}

/// Run the script to completion (or until the hook throws CrashNow),
/// keeping the model in sync with *returned* operations only. Returns
/// false with `detail` set if a read disagreed with the model mid-run.
bool execute_script(KvStore& kv, const std::vector<ScriptOp>& script,
                    std::map<std::uint64_t, std::string>& model, std::string* detail) {
  for (const ScriptOp& op : script) {
    switch (op.kind) {
      case ScriptOp::Kind::kPut:
        kv.put(op.key, op.value);
        model[op.key] = op.value;
        break;
      case ScriptOp::Kind::kErase:
        kv.erase(op.key);
        model.erase(op.key);
        break;
      case ScriptOp::Kind::kGet: {
        const std::optional<std::string> got = kv.get(op.key);
        const auto want = model.find(op.key);
        const bool match = want == model.end() ? !got.has_value()
                                               : (got.has_value() && *got == want->second);
        if (!match) {
          *detail = "runtime get mismatch for key " + std::to_string(op.key);
          return false;
        }
        break;
      }
    }
  }
  return true;
}

std::string diff_detail(const std::map<std::uint64_t, std::string>& model,
                        const std::map<std::uint64_t, std::string>& recovered) {
  for (const auto& [key, value] : model) {
    const auto it = recovered.find(key);
    if (it == recovered.end()) {
      return "committed key " + std::to_string(key) + " missing after recovery";
    }
    if (it->second != value) {
      return "committed key " + std::to_string(key) + " has wrong value after recovery";
    }
  }
  for (const auto& [key, value] : recovered) {
    (void)value;
    if (!model.contains(key)) {
      return "uncommitted key " + std::to_string(key) + " present after recovery";
    }
  }
  return {};
}

}  // namespace

KvCrashReport run_kv_crash_validation(const SystemConfig& base_cfg, Scheme scheme,
                                      const KvCrashOptions& opt) {
  KvCrashReport report;
  KvLayout layout;
  layout.slots = opt.slots;
  const std::vector<ScriptOp> script = make_script(opt);

  // Pass 1: count persist barriers in the unperturbed script so the crash
  // boundary can be chosen uniformly over all of them (0 = before the
  // first persist, total = after the last).
  {
    System sys(base_cfg, scheme);
    KvStore kv(sys, layout);
    std::map<std::uint64_t, std::string> model;
    std::string detail;
    if (!execute_script(kv, script, model, &detail)) {
      report.detail = "dry run failed: " + detail;
      return report;
    }
    report.total_persists = kv.persists();
  }

  if (opt.crash_at == KvCrashOptions::kRandomBoundary) {
    Xoshiro256 boundary_rng(opt.seed * 0x2545f4914f6cdd1dULL + 7);
    report.crash_at = boundary_rng.below(report.total_persists + 1);
  } else {
    report.crash_at = std::min(opt.crash_at, report.total_persists);
  }

  // Pass 2: replay with the crash injected before barrier `crash_at`. An
  // armed adversary records the persisted image (after a metadata flush,
  // so there is acknowledged-durable state to replay around) at the
  // midpoint barrier.
  System sys(base_cfg, scheme);
  KvStore kv(sys, layout);
  AdversarySnapshot snap;
  kv.set_persist_hook([&](const char*, std::uint64_t index) {
    if (opt.adversary.has_value()) {
      const std::uint64_t record_at = report.crash_at / 2;
      const std::uint64_t durable_at = (record_at + report.crash_at + 1) / 2;
      if (index == record_at) {
        if (auto* base = dynamic_cast<SecureMemoryBase*>(&sys.memory())) {
          base->flush_all_metadata();
          snap = snapshot_device(*base);
        }
      } else if (index == durable_at) {
        // A later durability point: the metadata persisted here is
        // acknowledged-durable state the adversary replays around. Without
        // it the cached-metadata window would leave rollbacks nothing
        // persisted to revert (the same vacuity the trial harness avoids
        // with its checkpoint flush).
        if (auto* base = dynamic_cast<SecureMemoryBase*>(&sys.memory())) {
          base->flush_all_metadata();
        }
      }
    }
    if (index == report.crash_at) throw CrashNow{};
  });
  std::map<std::uint64_t, std::string> model;
  std::string detail;
  try {
    if (!execute_script(kv, script, model, &detail)) {
      report.detail = detail;
      return report;
    }
  } catch (const CrashNow&) {
    // Power failed mid-operation; fall through to recovery.
  }
  report.committed_keys = model.size();

  // Fold the requested hardware fault into the crash. The injector hooks
  // the write queue's crash drain and flips bits after the scheme's ADR
  // flush, exactly as in the fault campaigns. The adversary's mutation
  // lands after the drain, before recovery.
  const bool hw_faulted = opt.fault_class != FaultClass::kNone;
  report.faulted = hw_faulted || opt.adversary.has_value();
  FaultInjector injector(FaultPlan::derive(opt.fault_class, opt.fault_seed, report.crash_at));
  if (opt.recovery_crash_boundary != 0) {
    injector.arm_recovery_crash(opt.recovery_crash_boundary, opt.recovery_crash_rearm);
  }
  if (hw_faulted || opt.recovery_crash_boundary != 0) sys.set_fault_injector(&injector);
  sys.set_recovery_policy(opt.retry_policy);

  RecoveryResult r;
  try {
    r = sys.crash_and_recover([&](SecureMemory& m) {
      if (!opt.adversary.has_value()) return;
      auto* base = dynamic_cast<SecureMemoryBase*>(&m);
      if (base == nullptr) return;
      const AdversaryPlan plan{*opt.adversary, opt.adversary_seed};
      report.adversary_injected = apply_adversary_post_crash(
          *base, scheme, plan, snap, &report.adversary_events);
    });
  } catch (const IntegrityViolation& e) {
    sys.set_fault_injector(nullptr);
    report.fault_detected = true;
    report.detail = std::string("recovery raised: ") + e.what();
    return report;
  }
  sys.set_fault_injector(nullptr);
  report.recovery_supported = r.supported;
  report.recovery_ok = r.ok();
  report.recovery_seconds = r.seconds;
  report.recovery_attempts = r.attempt_count();
  report.recovery_gave_up = r.recovery_gave_up;
  if (r.recovery_gave_up) {
    report.detail = "recovery retry budget exhausted: ";
    report.detail += r.status.message();
    return report;
  }
  if (!r.supported) {
    report.detail = "scheme reports recovery unsupported";
    return report;
  }
  if (!r.status.ok()) {
    report.detail = "recovery internal error: " + r.status.to_string();
    return report;
  }
  if (r.attack_detected) {
    report.fault_detected = report.faulted;
    report.detail = "recovery flagged: " + r.attack_detail;
    return report;
  }
  report.salvaged = r.degraded();

  // Reboot: reconcile the application-visible image with NVM, reopen the
  // store over the surviving region, and diff against the model.
  try {
    sys.resync_truth_after_crash();
    KvStore reopened(sys, layout);
    reopened.apply_recovery_report(r);
    if (!report.salvaged) {
      try {
        const std::map<std::uint64_t, std::string> recovered = reopened.dump();
        report.detail = diff_detail(model, recovered);
        report.verified = report.detail.empty();
        return report;
      } catch (const StatusError& e) {
        if (!is_unavailable(e.code())) throw;
        // A media loss the scheme's recovery pass never scans (ASIT/STAR
        // rebuild from tracking metadata only) surfaces lazily as a typed
        // error on first read. That is still degraded service, not a
        // failure: fall through to the salvage diff.
        report.salvaged = true;
      }
    }
    // Salvage diff: every committed key must either read back exactly or
    // fail with a *typed* unavailable error; a silent wrong/missing value
    // still fails. Keys the store can read that the model never committed
    // fail too (an uncommitted record became visible).
    for (const auto& [key, value] : model) {
      const auto got = reopened.try_get(key);
      if (!got.has_value()) {
        if (!is_unavailable(got.status().code())) {
          report.detail = "salvaged get of key " + std::to_string(key) +
                          " failed untyped: " + got.status().to_string();
          return report;
        }
        ++report.keys_unavailable;
        continue;
      }
      if (!got.value().has_value()) {
        report.detail = "committed key " + std::to_string(key) +
                        " silently missing after salvage";
        return report;
      }
      if (*got.value() != value) {
        report.detail = "committed key " + std::to_string(key) +
                        " has wrong value after salvage";
        return report;
      }
    }
    const KvStore::DegradedDump dump = reopened.dump_degraded();
    for (const auto& [key, value] : dump.live) {
      const auto want = model.find(key);
      if (want == model.end() || want->second != value) {
        report.detail = "uncommitted key " + std::to_string(key) +
                        " served after salvage";
        return report;
      }
    }
    report.degraded_verified = true;
  } catch (const IntegrityViolation& e) {
    report.fault_detected = report.faulted;
    report.detail = std::string("reopen raised: ") + e.what();
  } catch (const StatusError& e) {
    report.detail = std::string("reopen failed: ") + e.what();
  } catch (const KvCorruption& e) {
    report.detail = e.what();
  }
  return report;
}

}  // namespace steins::kv

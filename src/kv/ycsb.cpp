#include "kv/ycsb.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <optional>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "sim/multi_controller.hpp"

namespace steins::kv {

const char* mix_name(Mix m) {
  switch (m) {
    case Mix::kA: return "a";
    case Mix::kB: return "b";
    case Mix::kC: return "c";
    case Mix::kF: return "f";
  }
  return "?";
}

std::optional<Mix> parse_mix(const std::string& name) {
  if (name == "a" || name == "A") return Mix::kA;
  if (name == "b" || name == "B") return Mix::kB;
  if (name == "c" || name == "C") return Mix::kC;
  if (name == "f" || name == "F") return Mix::kF;
  return std::nullopt;
}

namespace {

double update_fraction(Mix m) {
  switch (m) {
    case Mix::kA: return 0.50;
    case Mix::kB: return 0.05;
    case Mix::kC: return 0.00;
    case Mix::kF: return 0.50;  // the update half is a read-modify-write
  }
  return 0.0;
}

struct Client {
  Xoshiro256 rng{1};
  LatencyHistogram read_lat;
  LatencyHistogram update_lat;
  std::uint64_t reads = 0;
  std::uint64_t updates = 0;
};

/// One resolved access of the epoch's schedule, queued at its controller.
/// Reads carry the values the replay must observe (from the driver-side
/// shadow); writes carry the full block image. `service` comes back from
/// the replay worker.
struct PlannedAccess {
  enum Kind : std::uint8_t { kCommitRead, kRecordRead, kWrite };
  Addr addr = 0;
  std::uint32_t op = 0;       // epoch-local op index
  Kind kind = kWrite;
  std::uint32_t offset = 0;   // commit-word byte offset (kCommitRead)
  std::uint64_t expect_word = 0;     // kCommitRead
  std::uint64_t expect_key = 0;      // kRecordRead
  std::uint64_t expect_version = 0;  // kRecordRead
  Block data{};               // kWrite image
  Cycle service = 0;
};

struct OpPlan {
  std::uint32_t client = 0;
  bool is_update = false;
};

std::uint64_t word_at(const Block& b, std::size_t offset) {
  std::uint64_t w = 0;
  std::memcpy(&w, b.data() + offset, 8);
  return w;
}

void put_word(Block& b, std::size_t offset, std::uint64_t w) {
  std::memcpy(b.data() + offset, &w, 8);
}

std::string client_value(std::uint64_t key, std::uint64_t version,
                         std::size_t value_bytes) {
  std::string v = "c" + std::to_string(key) + "." + std::to_string(version);
  if (v.size() < value_bytes) v.resize(value_bytes, '~');
  v.resize(std::min(value_bytes, kMaxValueBytes));
  return v;
}

/// Ops resolved per epoch; bounds the schedule's memory footprint
/// (~4 accesses x ~100 B each) while keeping replay stretches long.
constexpr std::uint64_t kEpochOps = 8192;

}  // namespace

YcsbResult run_ycsb(const SystemConfig& cfg, Scheme scheme, const YcsbConfig& ycfg) {
  if (ycfg.clients == 0) throw std::invalid_argument("YCSB driver needs >= 1 client");
  if (ycfg.slots == 0 || (ycfg.slots & (ycfg.slots - 1)) != 0) {
    throw std::invalid_argument("YCSB slots must be a power of two");
  }
  if (ycfg.keys == 0 || ycfg.keys > ycfg.slots / 2) {
    throw std::invalid_argument("YCSB keys must keep the table at most half full");
  }
  KvLayout layout;
  layout.base = ycfg.base;
  layout.slots = ycfg.slots;
  if (layout.base + layout.region_bytes() > cfg.nvm.capacity_bytes) {
    throw std::invalid_argument("KV region exceeds NVM capacity");
  }

  MultiControllerMemory mem(cfg, scheme, ycfg.controllers, ycfg.interleave_bytes);
  const unsigned nctrl = mem.controllers();

  // Resolve every key's slot up front (linear probing over an in-memory
  // occupancy map): the measured phase then needs no probe reads, like a
  // server whose index is warm.
  std::vector<std::size_t> slot_of(ycfg.keys);
  {
    std::vector<bool> used(layout.slots, false);
    for (std::uint64_t key = 0; key < ycfg.keys; ++key) {
      std::size_t s = layout.home_slot(key);
      while (used[s]) s = (s + 1) & (layout.slots - 1);
      used[s] = true;
      slot_of[key] = s;
    }
  }

  // Shadow of the committed store: one encoded commit word per slot. The
  // scheduler reads and advances it in global op order, so every access's
  // expected value and write image are known before replay.
  std::vector<std::uint64_t> shadow(layout.slots, 0);

  // Preload: write every record (replica 0, version 1) and its commit
  // word, sequentially on one timeline.
  Cycle t = 0;
  for (std::uint64_t key = 0; key < ycfg.keys; ++key) {
    const KvRecord rec{key, 1, client_value(key, 1, ycfg.value_bytes)};
    t = mem.write_block(layout.record_addr(slot_of[key], 0), encode_record(rec), t);
  }
  {
    // Commit blocks are shared by 8 slots; build each block image once.
    std::map<Addr, Block> commit_blocks;
    for (std::uint64_t key = 0; key < ycfg.keys; ++key) {
      const std::size_t s = slot_of[key];
      Block& b = commit_blocks[layout.commit_block_addr(s)];  // zero-init
      const std::uint64_t word = CommitWord{1, 0, true}.encode();
      put_word(b, layout.commit_word_offset(s), word);
      shadow[s] = word;
    }
    for (const auto& [addr, block] : commit_blocks) {
      t = mem.write_block(addr, block, t);
    }
  }
  for (unsigned i = 0; i < nctrl; ++i) mem.controller(i).stats().reset();

  // Measured phase: controllers start together at the preload frontier.
  const Cycle start = mem.max_frontier();
  std::vector<Cycle> ctrl_now(nctrl, start);
  std::vector<Client> clients(ycfg.clients);
  for (unsigned i = 0; i < ycfg.clients; ++i) {
    clients[i].rng = Xoshiro256(derive_stream_seed(ycfg.seed, i));
  }
  const ZipfSampler sampler(static_cast<std::size_t>(ycfg.keys), ycfg.zipf_s);
  const double upd_frac = update_fraction(ycfg.mix);

  // Materialize a commit block's current image from the shadow.
  const auto shadow_commit_block = [&](std::size_t slot) {
    const std::size_t first =
        (slot / KvLayout::kWordsPerCommitBlock) * KvLayout::kWordsPerCommitBlock;
    const std::size_t n =
        std::min(KvLayout::kWordsPerCommitBlock, layout.slots - first);
    Block b{};
    for (std::size_t w = 0; w < n; ++w) put_word(b, w * 8, shadow[first + w]);
    return b;
  };

  // Replay one controller's queue on its own timeline. Queues are disjoint
  // and controllers share no mutable state, so running these on a pool is
  // bit-identical to running them inline.
  std::vector<std::vector<PlannedAccess>> queues(nctrl);
  const auto replay = [&](std::size_t c) {
    SecureMemory& ctrl = mem.controller(static_cast<unsigned>(c));
    Cycle now = ctrl_now[c];
    for (PlannedAccess& a : queues[c]) {
      const Addr la = mem.local_addr(a.addr);
      if (a.kind == PlannedAccess::kWrite) {
        const Cycle done = ctrl.write_block(la, a.data, now);
        a.service = done - now;
        now = done;
        continue;
      }
      Block b;
      const Cycle done = ctrl.read_block(la, now, &b);
      a.service = done - now;
      now = done;
      if (a.kind == PlannedAccess::kCommitRead) {
        if (word_at(b, a.offset) != a.expect_word) {
          throw std::logic_error("YCSB replay read a commit word diverging from the schedule");
        }
      } else {
        KvRecord rec;
        if (!decode_record(b, &rec) || rec.key != a.expect_key ||
            rec.version != a.expect_version) {
          throw std::logic_error("YCSB replay read a corrupt or stale record");
        }
      }
    }
    ctrl_now[c] = now;
    mem.note_frontier(static_cast<unsigned>(c), now);
  };

  std::optional<ThreadPool> pool;
  if (ycfg.jobs > 1 && nctrl > 1) {
    pool.emplace(std::min<unsigned>(ycfg.jobs, nctrl));
  }

  std::vector<OpPlan> plans;
  std::vector<Cycle> op_lat;
  for (std::uint64_t done_ops = 0; done_ops < ycfg.ops;) {
    const std::uint64_t epoch_ops = std::min(kEpochOps, ycfg.ops - done_ops);

    // Phase 1: resolve the epoch's schedule against the shadow.
    plans.clear();
    for (auto& q : queues) q.clear();
    for (std::uint64_t e = 0; e < epoch_ops; ++e) {
      const std::uint64_t op = done_ops + e;
      const auto op_idx = static_cast<std::uint32_t>(e);
      const auto cid = static_cast<std::uint32_t>(op % ycfg.clients);
      Client& c = clients[cid];

      // Zipf rank -> key, scattered so the hot set spans controllers.
      const std::uint64_t rank = sampler.sample(c.rng);
      const std::uint64_t key = (rank * 0x9e3779b97f4a7c15ULL) % ycfg.keys;
      const std::size_t slot = slot_of[key];
      const Addr commit_addr = layout.commit_block_addr(slot);
      const std::size_t commit_off = layout.commit_word_offset(slot);
      const bool is_update = upd_frac > 0.0 && c.rng.chance(upd_frac);
      plans.push_back(OpPlan{cid, is_update});

      const CommitWord word = CommitWord::decode(shadow[slot]);
      if (word.empty() || !word.live) {
        throw std::logic_error("YCSB driver scheduled an op on a dead slot");
      }
      PlannedAccess commit_read;
      commit_read.addr = commit_addr;
      commit_read.op = op_idx;
      commit_read.kind = PlannedAccess::kCommitRead;
      commit_read.offset = static_cast<std::uint32_t>(commit_off);
      commit_read.expect_word = shadow[slot];
      queues[mem.route(commit_addr)].push_back(commit_read);

      if (!is_update || ycfg.mix == Mix::kF) {
        // Plain read, or the read half of a read-modify-write.
        PlannedAccess rec_read;
        rec_read.addr = layout.record_addr(slot, word.replica);
        rec_read.op = op_idx;
        rec_read.kind = PlannedAccess::kRecordRead;
        rec_read.expect_key = key;
        rec_read.expect_version = word.version;
        queues[mem.route(rec_read.addr)].push_back(rec_read);
      }
      if (is_update) {
        const int replica = 1 - word.replica;
        const KvRecord rec{key, word.version + 1,
                           client_value(key, word.version + 1, ycfg.value_bytes)};
        PlannedAccess rec_write;
        rec_write.addr = layout.record_addr(slot, replica);
        rec_write.op = op_idx;
        rec_write.kind = PlannedAccess::kWrite;
        rec_write.data = encode_record(rec);
        queues[mem.route(rec_write.addr)].push_back(rec_write);

        shadow[slot] = CommitWord{word.version + 1, replica, true}.encode();
        PlannedAccess commit_write;
        commit_write.addr = commit_addr;
        commit_write.op = op_idx;
        commit_write.kind = PlannedAccess::kWrite;
        commit_write.data = shadow_commit_block(slot);
        queues[mem.route(commit_addr)].push_back(commit_write);
      }
    }

    // Phase 2: replay each controller's queue.
    if (pool) {
      pool->for_each_index(nctrl, replay);
    } else {
      for (unsigned c = 0; c < nctrl; ++c) replay(c);
    }

    // Epoch barrier: fold service times into per-client histograms in
    // global op order (sum over an op's accesses, queueing included).
    op_lat.assign(epoch_ops, 0);
    for (const auto& q : queues) {
      for (const PlannedAccess& a : q) op_lat[a.op] += a.service;
    }
    for (std::uint64_t e = 0; e < epoch_ops; ++e) {
      Client& c = clients[plans[e].client];
      if (plans[e].is_update) {
        c.update_lat.add(op_lat[e]);
        ++c.updates;
      } else {
        c.read_lat.add(op_lat[e]);
        ++c.reads;
      }
    }
    done_ops += epoch_ops;
  }

  YcsbResult res;
  for (const Client& c : clients) {
    res.read_lat.merge(c.read_lat);
    res.update_lat.merge(c.update_lat);
    res.reads += c.reads;
    res.updates += c.updates;
  }
  for (const Cycle now : ctrl_now) res.makespan = std::max(res.makespan, now - start);
  res.all_lat.merge(res.read_lat);
  res.all_lat.merge(res.update_lat);
  res.ops = ycfg.ops;
  res.seconds = cfg.cycles_to_seconds(res.makespan);
  res.kops_per_sec =
      res.seconds > 0.0 ? static_cast<double>(res.ops) / res.seconds / 1e3 : 0.0;
  res.nvm_writes = mem.total_nvm_writes();
  return res;
}

}  // namespace steins::kv

#include "kv/ycsb.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "sim/multi_controller.hpp"

namespace steins::kv {

const char* mix_name(Mix m) {
  switch (m) {
    case Mix::kA: return "a";
    case Mix::kB: return "b";
    case Mix::kC: return "c";
    case Mix::kF: return "f";
  }
  return "?";
}

std::optional<Mix> parse_mix(const std::string& name) {
  if (name == "a" || name == "A") return Mix::kA;
  if (name == "b" || name == "B") return Mix::kB;
  if (name == "c" || name == "C") return Mix::kC;
  if (name == "f" || name == "F") return Mix::kF;
  return std::nullopt;
}

namespace {

double update_fraction(Mix m) {
  switch (m) {
    case Mix::kA: return 0.50;
    case Mix::kB: return 0.05;
    case Mix::kC: return 0.00;
    case Mix::kF: return 0.50;  // the update half is a read-modify-write
  }
  return 0.0;
}

struct Client {
  Cycle now = 0;
  Xoshiro256 rng{1};
  LatencyHistogram read_lat;
  LatencyHistogram update_lat;
  std::uint64_t reads = 0;
  std::uint64_t updates = 0;
};

std::uint64_t word_at(const Block& b, std::size_t offset) {
  std::uint64_t w = 0;
  std::memcpy(&w, b.data() + offset, 8);
  return w;
}

void put_word(Block& b, std::size_t offset, std::uint64_t w) {
  std::memcpy(b.data() + offset, &w, 8);
}

std::string client_value(std::uint64_t key, std::uint64_t version,
                         std::size_t value_bytes) {
  std::string v = "c" + std::to_string(key) + "." + std::to_string(version);
  if (v.size() < value_bytes) v.resize(value_bytes, '~');
  v.resize(std::min(value_bytes, kMaxValueBytes));
  return v;
}

}  // namespace

YcsbResult run_ycsb(const SystemConfig& cfg, Scheme scheme, const YcsbConfig& ycfg) {
  if (ycfg.clients == 0) throw std::invalid_argument("YCSB driver needs >= 1 client");
  if (ycfg.slots == 0 || (ycfg.slots & (ycfg.slots - 1)) != 0) {
    throw std::invalid_argument("YCSB slots must be a power of two");
  }
  if (ycfg.keys == 0 || ycfg.keys > ycfg.slots / 2) {
    throw std::invalid_argument("YCSB keys must keep the table at most half full");
  }
  KvLayout layout;
  layout.base = ycfg.base;
  layout.slots = ycfg.slots;
  if (layout.base + layout.region_bytes() > cfg.nvm.capacity_bytes) {
    throw std::invalid_argument("KV region exceeds NVM capacity");
  }

  MultiControllerMemory mem(cfg, scheme, ycfg.controllers, ycfg.interleave_bytes);

  // Resolve every key's slot up front (linear probing over an in-memory
  // occupancy map): the measured phase then needs no probe reads, like a
  // server whose index is warm.
  std::vector<std::size_t> slot_of(ycfg.keys);
  {
    std::vector<bool> used(layout.slots, false);
    for (std::uint64_t key = 0; key < ycfg.keys; ++key) {
      std::size_t s = layout.home_slot(key);
      while (used[s]) s = (s + 1) & (layout.slots - 1);
      used[s] = true;
      slot_of[key] = s;
    }
  }

  // Preload: write every record (replica 0, version 1) and its commit
  // word, sequentially on one timeline.
  Cycle t = 0;
  for (std::uint64_t key = 0; key < ycfg.keys; ++key) {
    const KvRecord rec{key, 1, client_value(key, 1, ycfg.value_bytes)};
    t = mem.write_block(layout.record_addr(slot_of[key], 0), encode_record(rec), t);
  }
  {
    // Commit blocks are shared by 8 slots; build each block image once.
    std::map<Addr, Block> commit_blocks;
    for (std::uint64_t key = 0; key < ycfg.keys; ++key) {
      const std::size_t s = slot_of[key];
      Block& b = commit_blocks[layout.commit_block_addr(s)];  // zero-init
      put_word(b, layout.commit_word_offset(s), CommitWord{1, 0, true}.encode());
    }
    for (const auto& [addr, block] : commit_blocks) {
      t = mem.write_block(addr, block, t);
    }
  }
  for (unsigned i = 0; i < mem.controllers(); ++i) mem.controller(i).stats().reset();

  // Measured phase: clients start together at the preload frontier.
  const Cycle start = mem.max_frontier();
  std::vector<Client> clients(ycfg.clients);
  for (unsigned i = 0; i < ycfg.clients; ++i) {
    clients[i].now = start;
    clients[i].rng = Xoshiro256(ycfg.seed * 0x9e3779b97f4a7c15ULL + i + 1);
  }
  const ZipfSampler sampler(static_cast<std::size_t>(ycfg.keys), ycfg.zipf_s);
  const double upd_frac = update_fraction(ycfg.mix);

  YcsbResult res;
  for (std::uint64_t op = 0; op < ycfg.ops; ++op) {
    // The client furthest behind issues next (closed loop, no think time).
    Client& c = *std::min_element(
        clients.begin(), clients.end(),
        [](const Client& a, const Client& b) { return a.now < b.now; });

    // Zipf rank -> key, scattered so the hot set spans controllers.
    const std::uint64_t rank = sampler.sample(c.rng);
    const std::uint64_t key = (rank * 0x9e3779b97f4a7c15ULL) % ycfg.keys;
    const std::size_t slot = slot_of[key];
    const Addr commit_addr = layout.commit_block_addr(slot);
    const std::size_t commit_off = layout.commit_word_offset(slot);
    const bool is_update = upd_frac > 0.0 && c.rng.chance(upd_frac);

    const Cycle t0 = c.now;
    Block commit_block;
    Cycle now = mem.read_block(commit_addr, t0, &commit_block);
    const CommitWord word = CommitWord::decode(word_at(commit_block, commit_off));
    if (word.empty() || !word.live) {
      throw std::logic_error("YCSB driver found an unexpected dead slot");
    }

    if (!is_update) {
      Block rec_block;
      now = mem.read_block(layout.record_addr(slot, word.replica), now, &rec_block);
      KvRecord rec;
      if (!decode_record(rec_block, &rec) || rec.key != key) {
        throw std::logic_error("YCSB driver read a corrupt record");
      }
      c.read_lat.add(now - t0);
      ++c.reads;
    } else {
      if (ycfg.mix == Mix::kF) {
        // Read-modify-write: fetch the current record before rewriting it.
        Block rec_block;
        now = mem.read_block(layout.record_addr(slot, word.replica), now, &rec_block);
      }
      const int replica = 1 - word.replica;
      const KvRecord rec{key, word.version + 1,
                         client_value(key, word.version + 1, ycfg.value_bytes)};
      now = mem.write_block(layout.record_addr(slot, replica), encode_record(rec), now);
      put_word(commit_block, commit_off, CommitWord{word.version + 1, replica, true}.encode());
      now = mem.write_block(commit_addr, commit_block, now);
      c.update_lat.add(now - t0);
      ++c.updates;
    }
    c.now = now;
  }

  for (const Client& c : clients) {
    res.read_lat.merge(c.read_lat);
    res.update_lat.merge(c.update_lat);
    res.reads += c.reads;
    res.updates += c.updates;
    res.makespan = std::max(res.makespan, c.now - start);
  }
  res.all_lat.merge(res.read_lat);
  res.all_lat.merge(res.update_lat);
  res.ops = ycfg.ops;
  res.seconds = cfg.cycles_to_seconds(res.makespan);
  res.kops_per_sec =
      res.seconds > 0.0 ? static_cast<double>(res.ops) / res.seconds / 1e3 : 0.0;
  res.nvm_writes = mem.total_nvm_writes();
  return res;
}

}  // namespace steins::kv

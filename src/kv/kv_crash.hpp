// Crash-recovery validation for the KV service: run a deterministic op
// script against a fresh store, kill it at a chosen (or seeded-random)
// persist boundary, run the scheme's recovery, reopen the store over the
// surviving image, and diff it against the model of committed operations.
//
// The ordered persist protocol guarantees the recovered image equals the
// committed model EXACTLY: an in-flight operation's record write is
// invisible until its commit-word persist, and between operations the
// store holds no unpersisted dirty state. Schemes with persistent-security
// metadata (Steins/ASIT/STAR/SCUE) must pass the diff; write-back must be
// *detected* as unrecoverable (RecoveryResult::supported == false).
#pragma once

#include <cstdint>
#include <string>

#include "common/config.hpp"
#include "fault/adversary.hpp"
#include "fault/fault.hpp"
#include "secure/secure_memory.hpp"

namespace steins::kv {

struct KvCrashOptions {
  static constexpr std::uint64_t kRandomBoundary = ~std::uint64_t{0};

  std::uint64_t ops = 64;            // scripted put/erase/get operations
  std::uint64_t keys = 16;           // key universe the script draws from
  std::size_t slots = 64;            // store capacity (power of two)
  std::size_t value_bytes = 24;      // payload size per value
  std::uint64_t seed = 1;            // script + boundary-choice seed
  std::uint64_t crash_at = kRandomBoundary;  // persist barrier index to die at

  // Optional hardware fault folded into the crash (kNone = clean crash).
  // The plan derives from (fault_seed, crash_at), so a report reproduces
  // from its own fields alone.
  FaultClass fault_class = FaultClass::kNone;
  std::uint64_t fault_seed = 0;

  /// Nested recovery crash (DESIGN.md §17): crash the scheme's recovery at
  /// this 1-based persist boundary (0 = off) and re-enter it through the
  /// System's bounded retry loop; optionally re-arm on every retry.
  std::uint64_t recovery_crash_boundary = 0;
  bool recovery_crash_rearm = false;
  RecoveryRetryPolicy retry_policy;

  // Optional adversarial mutation folded into the crash: the adversary
  // snapshots the persisted image (after a metadata flush) at the midpoint
  // persist barrier and applies the scenario's rollback/forgery/tear
  // between the crash drain and recovery. Runtime-only scenarios
  // (data-replay, wear-out) are no-ops here.
  std::optional<AdversaryScenario> adversary;
  std::uint64_t adversary_seed = 0;
};

struct KvCrashReport {
  bool recovery_supported = false;  // scheme claims post-crash recovery
  bool recovery_ok = false;         // recovery ran clean (no attack flagged)
  bool verified = false;            // recovered image == committed model
  bool salvaged = false;            // recovery degraded but attack-free
  bool degraded_verified = false;   // every readable key matched the model
  std::uint64_t keys_unavailable = 0;  // committed keys behind typed errors
  std::uint64_t total_persists = 0; // barriers in the full script
  std::uint64_t crash_at = 0;       // barrier the run was killed before
  std::uint64_t committed_keys = 0; // model size at the crash point
  double recovery_seconds = 0.0;    // modeled recovery time
  std::uint64_t recovery_attempts = 1;  // re-entries the recovery took
  bool recovery_gave_up = false;        // retry budget exhausted (never OK)
  bool faulted = false;             // a fault/adversary was armed at the crash
  bool fault_detected = false;      // an integrity check caught the fault
  bool adversary_injected = false;  // the scenario's mutation actually landed
  std::string adversary_events;     // what the adversary mutated
  std::string detail;               // first mismatch / failure description

  /// WB passes by being detected as unrecoverable; everything else passes
  /// by recovering a verified image. Under an injected fault, detection
  /// (recovery refusing the image, or a MAC/tree check firing on reopen)
  /// is equally legal, and so is a *salvage*: a degraded recovery where
  /// every committed key either reads back exactly or fails with a typed
  /// unavailable error — only silent divergence from the model fails.
  bool pass(Scheme scheme) const {
    if (recovery_gave_up) return false;  // availability failure, always red
    if (scheme == Scheme::kWriteBack) return !recovery_supported;
    if (recovery_ok && verified) return true;
    if (salvaged && degraded_verified) return true;
    return faulted && fault_detected;
  }
};

/// Run the validation once. `base_cfg` supplies the scheme configuration;
/// its NVM capacity must cover the layout implied by `opt.slots`.
KvCrashReport run_kv_crash_validation(const SystemConfig& base_cfg, Scheme scheme,
                                      const KvCrashOptions& opt);

}  // namespace steins::kv

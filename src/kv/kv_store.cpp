#include "kv/kv_store.hpp"

#include <cstring>
#include <stdexcept>

namespace steins::kv {

namespace {

/// FNV-1a over the record fields, finalized splitmix-style. Detects a
/// record image that does not belong to its commit word (protocol bugs,
/// unrecovered metadata) rather than adversarial tampering — the secure
/// path's HMACs own that job.
std::uint64_t record_checksum(std::uint64_t key, std::uint64_t version,
                              const std::string& value) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix_u64 = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h = (h ^ ((v >> (8 * i)) & 0xff)) * 0x100000001b3ULL;
    }
  };
  mix_u64(key);
  mix_u64(version);
  mix_u64(value.size());
  for (const char c : value) {
    h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
  }
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  return h;
}

}  // namespace

Block encode_record(const KvRecord& rec) {
  STEINS_CHECK(rec.value.size() <= kMaxValueBytes, "KV record value overflows its block");
  Block b{};
  const std::uint64_t len = rec.value.size();
  const std::uint64_t sum = record_checksum(rec.key, rec.version, rec.value);
  std::memcpy(b.data(), &rec.key, 8);
  std::memcpy(b.data() + 8, &rec.version, 8);
  std::memcpy(b.data() + 16, &sum, 8);
  std::memcpy(b.data() + 24, &len, 8);
  std::memcpy(b.data() + 32, rec.value.data(), rec.value.size());
  return b;
}

bool decode_record(const Block& b, KvRecord* out) {
  KvRecord rec;
  std::uint64_t sum = 0;
  std::uint64_t len = 0;
  std::memcpy(&rec.key, b.data(), 8);
  std::memcpy(&rec.version, b.data() + 8, 8);
  std::memcpy(&sum, b.data() + 16, 8);
  std::memcpy(&len, b.data() + 24, 8);
  if (len > kMaxValueBytes) return false;
  rec.value.assign(reinterpret_cast<const char*>(b.data() + 32), len);
  if (sum != record_checksum(rec.key, rec.version, rec.value)) return false;
  if (out != nullptr) *out = std::move(rec);
  return true;
}

KvStore::KvStore(System& sys, const KvLayout& layout) : sys_(sys), layout_(layout) {
  if (layout_.slots == 0 || (layout_.slots & (layout_.slots - 1)) != 0) {
    throw std::invalid_argument("KvLayout::slots must be a power of two");
  }
  if (layout_.base + layout_.region_bytes() > sys_.config().nvm.capacity_bytes) {
    throw std::invalid_argument("KV region exceeds NVM capacity");
  }
}

void KvStore::persist_barrier(Addr addr, const char* stage) {
  if (hook_) hook_(stage, persists_);
  sys_.persist(addr);
  ++persists_;
}

CommitWord KvStore::read_commit(std::size_t slot) {
  const Block b = sys_.load(layout_.commit_block_addr(slot));
  std::uint64_t w = 0;
  std::memcpy(&w, b.data() + layout_.commit_word_offset(slot), 8);
  return CommitWord::decode(w);
}

void KvStore::write_commit(std::size_t slot, const CommitWord& word) {
  const Addr addr = layout_.commit_block_addr(slot);
  Block b = sys_.load(addr);
  const std::uint64_t w = word.encode();
  std::memcpy(b.data() + layout_.commit_word_offset(slot), &w, 8);
  sys_.store(addr, b);
}

KvStore::Probe KvStore::probe(std::uint64_t key) {
  Probe p;
  const std::size_t home = layout_.home_slot(key);
  for (std::size_t i = 0; i < layout_.slots; ++i) {
    const std::size_t s = (home + i) & (layout_.slots - 1);
    const CommitWord w = read_commit(s);
    if (w.empty()) {
      // Never-used slot: the key cannot be further down the chain.
      if (!p.has_free) {
        p.has_free = true;
        p.free_slot = s;
      }
      return p;
    }
    if (!w.live) {
      // Tombstone: reusable, but the chain continues past it.
      if (!p.has_free) {
        p.has_free = true;
        p.free_slot = s;
      }
      continue;
    }
    KvRecord rec;
    const Block b = sys_.load(layout_.record_addr(s, w.replica));
    if (!decode_record(b, &rec) || rec.version != w.version) {
      throw KvCorruption("live slot " + std::to_string(s) +
                         " has a record inconsistent with its commit word");
    }
    if (rec.key == key) {
      p.found = true;
      p.slot = s;
      p.word = w;
      return p;
    }
  }
  return p;
}

void KvStore::put(std::uint64_t key, const std::string& value) {
  if (value.size() > kMaxValueBytes) {
    throw std::invalid_argument("KV value exceeds " + std::to_string(kMaxValueBytes) +
                                " bytes");
  }
  const Probe p = probe(key);
  std::size_t slot;
  CommitWord old;
  if (p.found) {
    slot = p.slot;
    old = p.word;
  } else if (p.has_free) {
    slot = p.free_slot;
    old = read_commit(slot);
  } else {
    throw std::runtime_error("KV store full (" + std::to_string(layout_.slots) +
                             " slots)");
  }

  // Step 1: the new record goes to the replica the commit word does NOT
  // reference, and must be durable before the commit word can name it.
  const int replica = old.empty() ? 0 : 1 - old.replica;
  const Addr rec_addr = layout_.record_addr(slot, replica);
  sys_.store(rec_addr, encode_record(KvRecord{key, old.version + 1, value}));
  persist_barrier(rec_addr, "record");

  // Step 2: flip the commit word — the operation's linearization point.
  write_commit(slot, CommitWord{old.version + 1, replica, true});
  persist_barrier(layout_.commit_block_addr(slot), "commit");
}

std::optional<std::string> KvStore::get(std::uint64_t key) {
  const Probe p = probe(key);
  if (!p.found) return std::nullopt;
  KvRecord rec;
  const Block b = sys_.load(layout_.record_addr(p.slot, p.word.replica));
  if (!decode_record(b, &rec) || rec.key != key || rec.version != p.word.version) {
    throw KvCorruption("record for key " + std::to_string(key) +
                       " inconsistent with its commit word");
  }
  return rec.value;
}

bool KvStore::erase(std::uint64_t key) {
  const Probe p = probe(key);
  if (!p.found) return false;
  // A tombstone is a single commit-word flip: nothing to persist first.
  write_commit(p.slot, CommitWord{p.word.version + 1, p.word.replica, false});
  persist_barrier(layout_.commit_block_addr(p.slot), "commit");
  return true;
}

void KvStore::apply_recovery_report(const RecoveryReport& report) {
  degraded_ = report.degraded();
  if (report.attack_detected || !report.status.ok()) read_only_ = true;
}

Expected<std::optional<std::string>> KvStore::try_get(std::uint64_t key) {
  try {
    return get(key);
  } catch (const StatusError& e) {
    return e.status();
  }
}

void KvStore::maybe_freeze(const StatusError& e) {
  if (e.code() != ErrorCode::kQuarantined && e.code() != ErrorCode::kUncorrectable)
    return;
  // A mutation hit a quarantined (or just-retired uncorrectable) line. With
  // spares left the line will be remapped and a fresh write repairs the
  // slot, so the store stays writable. With the pool exhausted it is
  // permanently dead: the
  // ordered-persist protocol can never complete against it, so the store
  // freezes read-only instead of limping into a state where some slots
  // half-accept updates.
  auto* base = dynamic_cast<SecureMemoryBase*>(&sys_.memory());
  if (base == nullptr || base->device().remap_pool_free() == 0) {
    read_only_ = true;
  }
}

Status KvStore::try_put(std::uint64_t key, const std::string& value) {
  if (read_only_) {
    return Status(ErrorCode::kReadOnly, "KV store is read-only");
  }
  try {
    put(key, value);
    return Status::Ok();
  } catch (const StatusError& e) {
    maybe_freeze(e);
    return e.status();
  }
}

Expected<bool> KvStore::try_erase(std::uint64_t key) {
  if (read_only_) {
    return Status(ErrorCode::kReadOnly, "KV store is read-only");
  }
  try {
    return erase(key);
  } catch (const StatusError& e) {
    maybe_freeze(e);
    return e.status();
  }
}

KvStore::DegradedDump KvStore::dump_degraded() {
  DegradedDump out;
  for (std::size_t s = 0; s < layout_.slots; ++s) {
    CommitWord w;
    try {
      w = read_commit(s);
    } catch (const StatusError& e) {
      if (!is_unavailable(e.code())) throw;
      ++out.slots_unavailable;
      continue;
    }
    if (w.empty() || !w.live) continue;
    Block b;
    try {
      b = sys_.load(layout_.record_addr(s, w.replica));
    } catch (const StatusError& e) {
      if (!is_unavailable(e.code())) throw;
      ++out.slots_unavailable;
      continue;
    }
    KvRecord rec;
    if (!decode_record(b, &rec) || rec.version != w.version) {
      throw KvCorruption("slot " + std::to_string(s) +
                         " holds a committed record that fails validation");
    }
    out.live[rec.key] = rec.value;
  }
  return out;
}

std::map<std::uint64_t, std::string> KvStore::dump() {
  std::map<std::uint64_t, std::string> out;
  for (std::size_t s = 0; s < layout_.slots; ++s) {
    const CommitWord w = read_commit(s);
    if (w.empty() || !w.live) continue;
    KvRecord rec;
    const Block b = sys_.load(layout_.record_addr(s, w.replica));
    if (!decode_record(b, &rec) || rec.version != w.version) {
      throw KvCorruption("slot " + std::to_string(s) +
                         " holds a committed record that fails validation");
    }
    out[rec.key] = rec.value;
  }
  return out;
}

}  // namespace steins::kv

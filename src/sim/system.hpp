// Full-system wiring: CPU model + L1/L2/L3 hierarchy + secure memory
// controller + NVM. Runs a trace and produces the statistics the paper's
// figures are built from. Also maintains a plaintext "ground truth" image
// of program memory and verifies every demand fill against it, so a run is
// simultaneously a correctness check of the whole encrypt/verify path.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "cache/cache_hierarchy.hpp"
#include "common/config.hpp"
#include "common/flat_map.hpp"
#include "fault/fault.hpp"
#include "secure/secure_memory.hpp"
#include "sim/cpu_model.hpp"
#include "trace/trace.hpp"

namespace steins {

struct RunStats {
  Cycle cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t accesses = 0;
  ExecStats mem;
  double energy_nj = 0.0;
  double read_latency_cycles = 0.0;   // mean per data read
  double write_latency_cycles = 0.0;  // mean per data write
  double read_latency_p50 = 0.0;      // tail percentiles (cycles), from the
  double read_latency_p99 = 0.0;      // log-bucketed histogram
  double write_latency_p50 = 0.0;
  double write_latency_p99 = 0.0;
  double mcache_hit_rate = 0.0;

  double seconds(const SystemConfig& cfg) const { return cfg.cycles_to_seconds(cycles); }
};

class System {
 public:
  System(const SystemConfig& cfg, Scheme scheme);

  /// Run the whole trace; if warmup_accesses > 0, statistics are reset
  /// after that many accesses (the paper warms up before measuring).
  RunStats run(TraceSource& trace, std::uint64_t warmup_accesses = 0);

  /// Execute one access (examples drive the system directly with this).
  void step(const MemAccess& access);

  /// Read a block's plaintext through the secure path (stalls the core).
  Block load(Addr addr);
  /// Store a block's plaintext through the hierarchy.
  void store(Addr addr, const Block& data);
  /// clwb+fence: force the block out to the controller.
  void persist(Addr addr);

  SecureMemory& memory() { return *mem_; }
  CacheHierarchy& caches() { return hierarchy_; }
  CpuModel& cpu() { return cpu_; }
  const SystemConfig& config() const { return cfg_; }

  /// Crash-and-recover convenience used by examples/tests: drops CPU
  /// caches, crashes the controller, runs recovery. Recovery is itself a
  /// crash domain: when the armed injector fires a nested crash at a
  /// recovery persist boundary, the attempt is re-entered (bounded by the
  /// retry policy's max_recovery_attempts, with exponential persist-budget
  /// backoff for re-armed crashes).
  RecoveryResult crash_and_recover();

  /// As above, but runs `pre_recovery` between the crash drain (and any
  /// injector media faults) and recovery — the window where an adversary
  /// with media access mutates the durable image.
  RecoveryResult crash_and_recover(
      const std::function<void(SecureMemory&)>& pre_recovery);

  /// Arm the next crash with an injector (nullptr disarms): the write
  /// queue drains through it at crash() and its post-crash media faults
  /// apply between crash and recovery.
  void set_fault_injector(FaultInjector* injector);

  /// Bounded re-entry policy for crashed recoveries.
  void set_recovery_policy(const RecoveryRetryPolicy& policy) {
    recovery_policy_ = policy;
  }
  const RecoveryRetryPolicy& recovery_policy() const { return recovery_policy_; }

  /// After a successful crash_and_recover(): reconcile the plaintext ground
  /// truth with what actually survived in NVM. Stores that never reached the
  /// controller (lost with the caches) are dropped; blocks with a stale
  /// persistent image are reloaded through the secure path. This is what a
  /// rebooted application observes, and it is required before driving
  /// further loads after a crash that lost unpersisted stores. Must not be
  /// called when recovery failed (reads would throw IntegrityViolation).
  void resync_truth_after_crash();

  /// Collect statistics accumulated since the last reset.
  RunStats collect_stats();
  void reset_stats();

 private:
  /// Apply one access's memory-boundary effects (fills + writebacks).
  void apply_memory_ops(const MemoryOps& ops, bool is_write);

  /// Deterministic content for a store (ground truth + verification).
  void mutate_truth(Addr addr);

  SystemConfig cfg_;
  std::unique_ptr<SecureMemory> mem_;
  FaultInjector* fault_injector_ = nullptr;
  RecoveryRetryPolicy recovery_policy_;
  CacheHierarchy hierarchy_;
  CpuModel cpu_;
  FlatMap<Block> truth_;  // plaintext ground truth
  std::uint64_t store_seq_ = 0;
  std::uint64_t accesses_ = 0;
  Cycle stats_epoch_cycles_ = 0;
  std::uint64_t stats_epoch_insts_ = 0;
};

}  // namespace steins

#include "sim/multi_controller.hpp"

#include <algorithm>
#include <cassert>

#include "common/thread_pool.hpp"
#include "fault/fault.hpp"

namespace steins {

MultiControllerMemory::MultiControllerMemory(const SystemConfig& cfg, Scheme scheme,
                                             unsigned controllers,
                                             std::size_t interleave_bytes)
    : interleave_(interleave_bytes) {
  assert(controllers >= 1);
  SystemConfig per_mc = cfg;
  per_mc.nvm.capacity_bytes = cfg.nvm.capacity_bytes / controllers;
  for (unsigned i = 0; i < controllers; ++i) {
    mcs_.push_back(make_scheme(scheme, per_mc));
    frontier_.push_back(0);
    injectors_.push_back(nullptr);
  }
  leased_ = std::make_unique<std::atomic<bool>[]>(controllers);
  for (unsigned i = 0; i < controllers; ++i) leased_[i].store(false);
}

void MultiControllerMemory::set_fault_injector(unsigned controller, FaultInjector* injector) {
  assert(controller < mcs_.size());
  injectors_[controller] = injector;
  mcs_[controller]->set_fault_injector(injector);
}

Cycle MultiControllerMemory::read_block(Addr addr, Cycle now, Block* out) {
  const unsigned mc = route(addr);
  const Cycle done = mcs_[mc]->read_block(local_addr(addr), now, out);
  frontier_[mc] = std::max(frontier_[mc], done);
  return done;
}

Cycle MultiControllerMemory::write_block(Addr addr, const Block& data, Cycle now) {
  const unsigned mc = route(addr);
  const Cycle done = mcs_[mc]->write_block(local_addr(addr), data, now);
  frontier_[mc] = std::max(frontier_[mc], done);
  return done;
}

RecoveryResult MultiControllerMemory::crash_and_recover_all(unsigned jobs) {
  // Each controller is a self-contained scheme instance over its own DIMM,
  // so recoveries are independent; run them on the pool and merge in
  // controller order afterwards — byte-identical to the sequential path.
  std::vector<RecoveryResult> results(mcs_.size());
  const auto recover_one = [&](std::size_t i) {
    auto& mc = mcs_[i];
    mc->crash();
    if (injectors_[i] != nullptr) injectors_[i]->apply_post_crash(*mc);
    results[i] = mc->recover();
  };
  if (jobs > 1 && mcs_.size() > 1) {
    ThreadPool pool(std::min<unsigned>(jobs, static_cast<unsigned>(mcs_.size())));
    pool.for_each_index(mcs_.size(), recover_one);
  } else {
    for (std::size_t i = 0; i < mcs_.size(); ++i) recover_one(i);
  }
  RecoveryResult combined;
  for (const RecoveryResult& r : results) {
    if (!r.ok()) return r;
    combined.nodes_recovered += r.nodes_recovered;
    combined.nvm_reads += r.nvm_reads;
    combined.nvm_writes += r.nvm_writes;
    // Controllers recover in parallel: the slowest bounds the system.
    combined.seconds = std::max(combined.seconds, r.seconds);
  }
  return combined;
}

Cycle MultiControllerMemory::max_frontier() const {
  return *std::max_element(frontier_.begin(), frontier_.end());
}

std::uint64_t MultiControllerMemory::total_nvm_writes() const {
  std::uint64_t total = 0;
  for (const auto& mc : mcs_) {
    // Device stats include recovery; use the scheme's runtime stats.
    auto& stats = const_cast<SecureMemory&>(*mc).stats();
    total += stats.nvm_writes();
  }
  return total;
}

}  // namespace steins

// Experiment harness: runs (scheme x workload) matrices and formats them
// the way the paper's figures report them (per-workload bars normalized to
// a baseline, plus a mean row). Every figure bench in bench/ is a thin
// wrapper over this.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "secure/secure_memory.hpp"
#include "sim/system.hpp"

namespace steins {

/// One scheme variant under test.
struct SchemeSpec {
  Scheme scheme;
  CounterMode mode;
  std::string label;
};

/// The GC-mode comparison set of Figs. 9/10/11/13/15:
/// WB-GC (baseline), ASIT, STAR, Steins-GC.
std::vector<SchemeSpec> gc_comparison_schemes();

/// The SC-mode comparison set of Figs. 12/14/16:
/// WB-SC (baseline), Steins-SC, Steins-GC.
std::vector<SchemeSpec> sc_comparison_schemes();

struct MatrixResult {
  std::string workload;
  std::string scheme_label;
  RunStats stats;
};

class ExperimentRunner {
 public:
  explicit ExperimentRunner(SystemConfig base_cfg) : base_cfg_(std::move(base_cfg)) {}

  /// Run every (workload, scheme) pair. `accesses` is the measured trace
  /// length; `warmup` accesses run first without counting statistics.
  ///
  /// `jobs` > 1 fans the independent cells out across a thread pool; the
  /// result order (and every RunStats in it) is bit-identical to the
  /// sequential `jobs = 1` run regardless of completion order. The first
  /// exception thrown by any cell is rethrown after all cells finish.
  std::vector<MatrixResult> run_matrix(const std::vector<std::string>& workloads,
                                       const std::vector<SchemeSpec>& schemes,
                                       std::uint64_t accesses, std::uint64_t warmup = 0,
                                       bool verbose = false, unsigned jobs = 1) const;

  /// Build a figure table: metric(stats) per cell, normalized per workload
  /// to the scheme labeled `baseline` (empty = absolute values), with a
  /// geometric-mean row appended.
  static ResultTable make_table(const std::string& title,
                                const std::vector<MatrixResult>& results,
                                const std::vector<SchemeSpec>& schemes,
                                const std::function<double(const RunStats&)>& metric,
                                const std::string& baseline);

  const SystemConfig& base_config() const { return base_cfg_; }

 private:
  SystemConfig base_cfg_;
};

}  // namespace steins

#include "sim/cpu_model.hpp"

// CpuModel is header-only; this TU anchors the header in the build.
namespace steins {
namespace {
[[maybe_unused]] void anchor() { (void)sizeof(CpuModel); }
}  // namespace
}  // namespace steins

// In-order CPU timing model.
//
// Substitutes for gem5's core (DESIGN.md §2): retires one instruction per
// cycle, stalls loads for the full memory round trip, posts stores into the
// write-back hierarchy. Everything the paper evaluates happens at/below the
// LLC-memory boundary, so an in-order core preserves the schemes' relative
// costs in the normalized figures.
#pragma once

#include "common/config.hpp"
#include "common/types.hpp"

namespace steins {

struct CpuLatencies {
  Cycle l1_hit = 1;
  Cycle l2_hit = 12;
  Cycle l3_hit = 30;
  Cycle store_miss_overlap = 20;  // store-buffer hides most of a store miss
};

class CpuModel {
 public:
  explicit CpuModel(const CpuLatencies& lat = {}) : lat_(lat) {}

  Cycle now() const { return now_; }
  std::uint64_t instructions() const { return instructions_; }

  /// Retire `gap` non-memory instructions plus the memory instruction.
  void advance(std::uint32_t gap) {
    now_ += gap + 1;
    instructions_ += gap + 1;
  }

  /// Stall the core until `t` (load completion or structural hazard).
  void stall_until(Cycle t) {
    if (t > now_) now_ = t;
  }

  void add_latency(Cycle c) { now_ += c; }

  const CpuLatencies& latencies() const { return lat_; }

  void reset_instruction_count() { instructions_ = 0; }

 private:
  CpuLatencies lat_;
  Cycle now_ = 0;
  std::uint64_t instructions_ = 0;
};

}  // namespace steins

#include "sim/system.hpp"

#include <algorithm>
#include <cstring>
#include <vector>
#include <stdexcept>

#include "common/status.hpp"
#include "fault/fault.hpp"

namespace steins {

System::System(const SystemConfig& cfg, Scheme scheme)
    : cfg_(cfg), mem_(make_scheme(scheme, cfg)), hierarchy_(cfg) {}

void System::mutate_truth(Addr addr) {
  Block& b = truth_.get_or_create(addr);  // zero-initialized on first touch
  ++store_seq_;
  std::memcpy(b.data(), &store_seq_, 8);
  std::memcpy(b.data() + 8, &addr, 8);
  // Cheap per-store variation across the rest of the block.
  const std::uint64_t mix = store_seq_ * 0x9e3779b97f4a7c15ULL ^ addr;
  std::memcpy(b.data() + 16, &mix, 8);
}

void System::apply_memory_ops(const MemoryOps& ops, bool is_write) {
  // Dirty LLC writebacks reach the controller first (they were evicted to
  // make room for the fill).
  for (const Addr wb : ops.writebacks) {
    const Block* known = truth_.find(wb);
    mem_->write_block(wb, known != nullptr ? *known : zero_block(), cpu_.now());
  }
  if (ops.miss_fill) {
    Block loaded;
    Cycle done;
    try {
      done = mem_->read_block(ops.fill_addr, cpu_.now(), &loaded);
    } catch (const StatusError&) {
      // Typed unavailability (quarantined/uncorrectable line): evict the
      // just-installed cache line so every later access of the address
      // re-surfaces the typed error instead of serving a phantom fill.
      (void)hierarchy_.flush_block(ops.fill_addr);
      throw;
    }
    if (!is_write) {
      // End-to-end check: what a LOAD gets back through decrypt+verify must
      // be what the program last stored (or zero if never stored). Store
      // misses fill for ownership only — truth is already ahead of memory.
      const Block* known = truth_.find(ops.fill_addr);
      const Block& expect = known != nullptr ? *known : zero_block();
      if (loaded != expect) {
        throw std::logic_error("secure memory returned wrong plaintext for block " +
                               std::to_string(ops.fill_addr / kBlockSize));
      }
    }
    if (is_write) {
      // Store miss: the store buffer hides most of the fill latency.
      cpu_.add_latency(cpu_.latencies().store_miss_overlap);
      (void)done;
    } else {
      cpu_.stall_until(done);
    }
  }
}

void System::step(const MemAccess& access) {
  cpu_.advance(access.gap);
  ++accesses_;
  const Addr addr = access.addr & ~static_cast<Addr>(kBlockSize - 1);

  if (access.is_write) mutate_truth(addr);

  const MemoryOps ops = hierarchy_.access(addr, access.is_write);
  switch (ops.hit_level) {
    case 1:
      cpu_.add_latency(access.is_write ? 1 : cpu_.latencies().l1_hit);
      break;
    case 2:
      cpu_.add_latency(access.is_write ? 1 : cpu_.latencies().l2_hit);
      break;
    case 3:
      cpu_.add_latency(access.is_write ? 1 : cpu_.latencies().l3_hit);
      break;
    default:
      break;  // memory; charged in apply_memory_ops
  }
  apply_memory_ops(ops, access.is_write);

  if (access.flush) persist(addr);
}

Block System::load(Addr addr) {
  addr &= ~static_cast<Addr>(kBlockSize - 1);
  MemAccess a{addr, false, false, 0};
  step(a);
  const Block* known = truth_.find(addr);
  return known != nullptr ? *known : zero_block();
}

void System::store(Addr addr, const Block& data) {
  addr &= ~static_cast<Addr>(kBlockSize - 1);
  cpu_.advance(0);
  ++accesses_;
  truth_.get_or_create(addr) = data;
  ++store_seq_;
  const MemoryOps ops = hierarchy_.access(addr, true);
  apply_memory_ops(ops, true);
}

void System::persist(Addr addr) {
  addr &= ~static_cast<Addr>(kBlockSize - 1);
  for (const Addr wb : hierarchy_.flush_block(addr)) {
    const Block* known = truth_.find(wb);
    const Cycle done =
        mem_->write_block(wb, known != nullptr ? *known : zero_block(), cpu_.now());
    cpu_.stall_until(done);  // fence: wait for controller acceptance
  }
}

RunStats System::run(TraceSource& trace, std::uint64_t warmup_accesses) {
  // Pull accesses in batches so generator dispatch is paid once per batch
  // instead of once per access. The per-access stream (and the exact index
  // at which warmup stats reset) is unchanged.
  constexpr std::size_t kBatch = 256;
  // The big per-run tables (truth store, device store, metadata cache) are
  // far larger than the host LLC, so each access's probes stall on host
  // DRAM. The batch gives us lookahead: hint the tables a few accesses
  // early so those loads overlap the current access's work. Hints have no
  // simulated effect — results are bit-identical with or without them.
  constexpr std::size_t kPrefetchAhead = 8;
  MemAccess buf[kBatch];
  std::uint64_t count = 0;
  for (;;) {
    const std::size_t n = trace.next_batch(buf, kBatch);
    if (n == 0) break;
    for (std::size_t i = 0; i < n; ++i) {
      if (i + kPrefetchAhead < n) {
        const Addr ahead = buf[i + kPrefetchAhead].addr;
        truth_.prefetch(ahead & ~static_cast<Addr>(kBlockSize - 1));
        hierarchy_.prefetch(ahead);
        mem_->prefetch_hint(ahead);
      }
      step(buf[i]);
      ++count;
      if (warmup_accesses != 0 && count == warmup_accesses) reset_stats();
    }
  }
  return collect_stats();
}

void System::set_fault_injector(FaultInjector* injector) {
  fault_injector_ = injector;
  mem_->set_fault_injector(injector);
}

RecoveryResult System::crash_and_recover() {
  return crash_and_recover({});
}

RecoveryResult System::crash_and_recover(
    const std::function<void(SecureMemory&)>& pre_recovery) {
  hierarchy_.clear();
  mem_->crash();
  if (fault_injector_ != nullptr) fault_injector_->apply_post_crash(*mem_);
  if (pre_recovery) pre_recovery(*mem_);
  return recover_with_retry(*mem_, fault_injector_, recovery_policy_);
}

void System::resync_truth_after_crash() {
  // Rebuild the truth table from the survivors, visiting blocks in address
  // order so post-crash read timing is independent of hash-table layout.
  std::vector<Addr> addrs;
  addrs.reserve(truth_.size());
  truth_.for_each([&](Addr a, const Block&) { addrs.push_back(a); });
  std::sort(addrs.begin(), addrs.end());
  FlatMap<Block> survivors;
  for (const Addr a : addrs) {
    if (!mem_->device().contains(a)) continue;  // never persisted: reads zero
    Block actual;
    try {
      mem_->read_block(a, cpu_.now(), &actual);
    } catch (const StatusError& e) {
      if (!is_unavailable(e.code())) throw;
      // Quarantined after salvage: the block is typed-unavailable, not a
      // value — drop it so later loads surface the error, not plaintext.
      continue;
    }
    survivors.get_or_create(a) = actual;
  }
  truth_ = std::move(survivors);
}

void System::reset_stats() {
  mem_->stats().reset();
  stats_epoch_cycles_ = cpu_.now();
  stats_epoch_insts_ = cpu_.instructions();
  accesses_ = 0;
}

RunStats System::collect_stats() {
  RunStats s;
  s.cycles = cpu_.now() - stats_epoch_cycles_;
  s.instructions = cpu_.instructions() - stats_epoch_insts_;
  s.accesses = accesses_;
  s.mem = mem_->stats();
  s.energy_nj = s.mem.energy_nj(cfg_);
  s.read_latency_cycles = s.mem.read_latency.mean();
  s.write_latency_cycles = s.mem.write_latency.mean();
  s.read_latency_p50 = s.mem.read_latency.percentile(50.0);
  s.read_latency_p99 = s.mem.read_latency.percentile(99.0);
  s.write_latency_p50 = s.mem.write_latency.percentile(50.0);
  s.write_latency_p99 = s.mem.write_latency.percentile(99.0);
  s.mcache_hit_rate = mem_->metadata_cache_stats().hit_rate();
  return s;
}

}  // namespace steins

// Multi-controller scalability model (paper §IV-F).
//
// "For Intel's Cascade Lake processors, each processor has two MCs, each of
// which supports three Optane DIMMs. When multiple clients access different
// DIMMs, their requests are executed in parallel in different MCs. If they
// initiate requests to the same DIMM, the requests are processed serially."
//
// Each controller instantiates its own Steins (or other scheme) instance
// over its own DIMM; global addresses interleave across controllers at a
// configurable granularity. Per-controller timelines advance independently,
// so disjoint client streams scale while a shared hot DIMM serializes.
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <memory>
#include <vector>

#include "common/config.hpp"
#include "secure/secure_memory.hpp"

namespace steins {

/// Concurrent access contract
/// --------------------------
/// Each controller is a self-contained SecureMemory over its own DIMM with
/// no shared mutable state, so DISTINCT controllers may be driven from
/// distinct threads concurrently — that is the whole point of the model.
/// A SINGLE controller is not thread-safe: all accesses to controller(i)
/// (including note_frontier(i, ...)) must come from one thread at a time,
/// with a happens-before edge (e.g. a ShardGang epoch barrier) between
/// handoffs. The global-address read_block/write_block entry points route
/// by address and may touch any controller, so they must not be mixed with
/// concurrent per-controller serving. Debug builds enforce single ownership
/// via ShardLease; release builds compile the checks out.
class MultiControllerMemory {
 public:
  MultiControllerMemory(const SystemConfig& cfg, Scheme scheme, unsigned controllers,
                        std::size_t interleave_bytes = 4096);

  /// Route a read/write to its controller. `now` is the issuing client's
  /// local time; each controller keeps its own timeline.
  Cycle read_block(Addr addr, Cycle now, Block* out);
  Cycle write_block(Addr addr, const Block& data, Cycle now);

  /// Crash and recover every controller; the slowest DIMM's recovery time
  /// bounds the system (controllers recover in parallel). With `jobs` > 1
  /// the recoveries run on that many host threads; results are merged in
  /// controller order, so the outcome is identical to `jobs` == 1 (the
  /// first failing controller in index order wins).
  RecoveryResult crash_and_recover_all(unsigned jobs = 1);

  /// Arm one controller's next crash with an injector (nullptr disarms);
  /// crash_and_recover_all applies its post-crash faults to that DIMM.
  void set_fault_injector(unsigned controller, FaultInjector* injector);

  unsigned controllers() const { return static_cast<unsigned>(mcs_.size()); }
  SecureMemory& controller(unsigned i) { return *mcs_[i]; }

  /// Aggregate completed work and the busiest controller's frontier —
  /// the makespan of a parallel run.
  Cycle max_frontier() const;
  std::uint64_t total_nvm_writes() const;

  /// Controller a global address routes to. Public so epoch-replay drivers
  /// can pre-partition an access schedule by controller and then execute
  /// each controller's stream on its own worker thread.
  unsigned route(Addr addr) const {
    return static_cast<unsigned>((addr / interleave_) % mcs_.size());
  }
  /// Local (per-DIMM) address of a global address.
  Addr local_addr(Addr addr) const {
    const Addr chunk = addr / interleave_;
    return (chunk / mcs_.size()) * interleave_ + (addr % interleave_);
  }
  /// Record a controller's completion frontier reached outside read_block/
  /// write_block (epoch-replay drivers call controller(i) directly).
  /// Per-controller slot: safe from the controller's owning thread only.
  void note_frontier(unsigned mc, Cycle t) {
    frontier_[mc] = std::max(frontier_[mc], t);
  }
  /// One controller's completion frontier (per-shard occupancy reporting).
  Cycle frontier(unsigned mc) const { return frontier_[mc]; }

  /// Debug handle for the single-owner contract: constructing a lease marks
  /// the controller owned, destruction releases it, and a second live lease
  /// on the same controller asserts. NDEBUG builds keep the bookkeeping
  /// (cheap relaxed atomics at lease scope boundaries, never per access)
  /// but skip the assert.
  class ShardLease {
   public:
    ShardLease(MultiControllerMemory& mem, unsigned mc)
        : mem_(mem), mc_(mc) {
      const bool was_leased = mem_.leased_[mc_].exchange(true, std::memory_order_acquire);
      assert(!was_leased && "MultiControllerMemory: controller already leased");
      (void)was_leased;
    }
    ~ShardLease() { mem_.leased_[mc_].store(false, std::memory_order_release); }
    ShardLease(const ShardLease&) = delete;
    ShardLease& operator=(const ShardLease&) = delete;

    SecureMemory& mem() { return *mem_.mcs_[mc_]; }
    unsigned mc() const { return mc_; }
    void note_frontier(Cycle t) { mem_.note_frontier(mc_, t); }

   private:
    MultiControllerMemory& mem_;
    unsigned mc_;
  };

 private:
  friend class ShardLease;

  std::size_t interleave_;
  std::vector<std::unique_ptr<SecureMemory>> mcs_;
  std::vector<Cycle> frontier_;  // per-controller completion frontier
  std::vector<FaultInjector*> injectors_;  // per-controller crash faults
  std::unique_ptr<std::atomic<bool>[]> leased_;  // ShardLease ownership marks
};

}  // namespace steins

#include "sim/experiment.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <map>

#include "common/thread_pool.hpp"
#include "trace/workloads.hpp"

namespace steins {

std::vector<SchemeSpec> gc_comparison_schemes() {
  return {
      {Scheme::kWriteBack, CounterMode::kGeneral, "WB-GC"},
      {Scheme::kAnubis, CounterMode::kGeneral, "ASIT"},
      {Scheme::kStar, CounterMode::kGeneral, "STAR"},
      {Scheme::kSteins, CounterMode::kGeneral, "Steins-GC"},
  };
}

std::vector<SchemeSpec> sc_comparison_schemes() {
  return {
      {Scheme::kWriteBack, CounterMode::kSplit, "WB-SC"},
      {Scheme::kSteins, CounterMode::kSplit, "Steins-SC"},
      {Scheme::kSteins, CounterMode::kGeneral, "Steins-GC"},
  };
}

std::vector<MatrixResult> ExperimentRunner::run_matrix(const std::vector<std::string>& workloads,
                                                       const std::vector<SchemeSpec>& schemes,
                                                       std::uint64_t accesses,
                                                       std::uint64_t warmup,
                                                       bool verbose, unsigned jobs) const {
  const std::size_t n = workloads.size() * schemes.size();
  std::vector<MatrixResult> results(n);

  // Each cell is fully independent: its own System, its own trace generator
  // (seeded identically however the matrix is scheduled), writing a
  // pre-assigned slot. That makes the output deterministic in first-seen
  // (workload-major) order no matter which thread finishes first.
  auto run_cell = [&](std::size_t idx) {
    const auto& wl = workloads[idx / schemes.size()];
    const auto& spec = schemes[idx % schemes.size()];
    SystemConfig cfg = base_cfg_;
    cfg.counter_mode = spec.mode;
    System sys(cfg, spec.scheme);
    auto trace = make_workload(wl, accesses + warmup);
    const RunStats stats = sys.run(*trace, warmup);
    if (verbose) {
      std::fprintf(stderr, "  %-12s %-10s cycles=%llu rd=%.0fcy wr=%.0fcy traffic=%llu\n",
                   wl.c_str(), spec.label.c_str(),
                   static_cast<unsigned long long>(stats.cycles), stats.read_latency_cycles,
                   stats.write_latency_cycles,
                   static_cast<unsigned long long>(stats.mem.nvm_writes()));
    }
    results[idx] = MatrixResult{wl, spec.label, stats};
  };

  if (jobs <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) run_cell(i);
  } else {
    ThreadPool pool(static_cast<unsigned>(std::min<std::size_t>(jobs, n)));
    pool.for_each_index(n, run_cell);
  }
  return results;
}

ResultTable ExperimentRunner::make_table(const std::string& title,
                                         const std::vector<MatrixResult>& results,
                                         const std::vector<SchemeSpec>& schemes,
                                         const std::function<double(const RunStats&)>& metric,
                                         const std::string& baseline) {
  std::vector<std::string> columns;
  for (const auto& s : schemes) columns.push_back(s.label);
  ResultTable table(title, columns);

  // Group by workload, preserving first-seen order.
  std::vector<std::string> order;
  std::map<std::string, std::map<std::string, double>> cells;
  for (const auto& r : results) {
    if (!cells.contains(r.workload)) order.push_back(r.workload);
    cells[r.workload][r.scheme_label] = metric(r.stats);
  }

  for (const auto& wl : order) {
    const auto& row = cells.at(wl);
    double base = 1.0;
    if (!baseline.empty()) {
      const auto it = row.find(baseline);
      assert(it != row.end() && "baseline scheme missing from results");
      base = it->second;
      if (base == 0.0) base = 1.0;
    }
    std::vector<double> values;
    values.reserve(columns.size());
    for (const auto& col : columns) values.push_back(row.at(col) / base);
    table.add_row(wl, values);
  }
  table.add_geomean_row("gmean");
  return table;
}

}  // namespace steins

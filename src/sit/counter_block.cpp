#include "sit/counter_block.hpp"

#include <cassert>
#include <cstring>

namespace steins {

std::uint64_t GeneralCounterBlock::parent_value() const {
  std::uint64_t sum = 0;
  for (const auto c : counters) sum += c;
  return sum & kCounter56Mask;
}

void GeneralCounterBlock::increment(std::size_t slot) {
  assert(slot < counters.size());
  counters[slot] = (counters[slot] + 1) & kCounter56Mask;
}

NodePayload GeneralCounterBlock::encode() const {
  NodePayload p{};
  for (std::size_t i = 0; i < counters.size(); ++i) {
    // 7 bytes per 56-bit counter, little-endian.
    for (int b = 0; b < 7; ++b) {
      p[i * 7 + b] = static_cast<std::uint8_t>(counters[i] >> (8 * b));
    }
  }
  return p;
}

GeneralCounterBlock GeneralCounterBlock::decode(std::span<const std::uint8_t> payload) {
  assert(payload.size() >= 56);
  GeneralCounterBlock cb;
  for (std::size_t i = 0; i < cb.counters.size(); ++i) {
    std::uint64_t v = 0;
    for (int b = 6; b >= 0; --b) v = (v << 8) | payload[i * 7 + b];
    cb.counters[i] = v;
  }
  return cb;
}

std::uint64_t SplitCounterBlock::parent_value() const {
  std::uint64_t sum = major * kMinorMax;
  for (const auto m : minors) sum += m;
  return sum;
}

SplitCounterBlock::IncrementResult SplitCounterBlock::increment_skip(std::size_t slot) {
  assert(slot < minors.size());
  IncrementResult r;
  if (minors[slot] + 1U < kMinorMax) {
    ++minors[slot];
    return r;
  }
  // Overflow (paper §III-B1): increment = ceil((sum(minors) + 1) / 64),
  // where +1 accounts for the write that triggered the overflow. The parent
  // value is aligned up in multiples of 64, so it stays monotone.
  std::uint64_t sum = 1;
  for (const auto m : minors) sum += m;
  r.overflowed = true;
  r.major_delta = (sum + kMinorMax - 1) / kMinorMax;
  major += r.major_delta;
  minors.fill(0);
  return r;
}

SplitCounterBlock::IncrementResult SplitCounterBlock::increment_plain(std::size_t slot) {
  assert(slot < minors.size());
  IncrementResult r;
  if (minors[slot] + 1U < kMinorMax) {
    ++minors[slot];
    return r;
  }
  r.overflowed = true;
  r.major_delta = 1;
  major += 1;
  minors.fill(0);
  return r;
}

NodePayload SplitCounterBlock::encode() const {
  NodePayload p{};
  std::memcpy(p.data(), &major, 8);
  // 64 x 6-bit minors packed into 48 bytes.
  for (std::size_t i = 0; i < minors.size(); ++i) {
    const std::size_t bit = i * kMinorBits;
    const std::size_t byte = 8 + bit / 8;
    const unsigned shift = bit % 8;
    const std::uint16_t v = static_cast<std::uint16_t>(minors[i] & (kMinorMax - 1)) << shift;
    p[byte] = static_cast<std::uint8_t>(p[byte] | (v & 0xff));
    if (shift > 2) p[byte + 1] = static_cast<std::uint8_t>(p[byte + 1] | (v >> 8));
  }
  return p;
}

SplitCounterBlock SplitCounterBlock::decode(std::span<const std::uint8_t> payload) {
  assert(payload.size() >= 56);
  SplitCounterBlock cb;
  std::memcpy(&cb.major, payload.data(), 8);
  for (std::size_t i = 0; i < cb.minors.size(); ++i) {
    const std::size_t bit = i * kMinorBits;
    const std::size_t byte = 8 + bit / 8;
    const unsigned shift = bit % 8;
    std::uint16_t v = payload[byte];
    if (shift > 2) v |= static_cast<std::uint16_t>(payload[byte + 1]) << 8;
    cb.minors[i] = static_cast<std::uint8_t>((v >> shift) & (kMinorMax - 1));
  }
  return cb;
}

}  // namespace steins

#include "sit/counter_block.hpp"

#include <cassert>
#include <cstring>

namespace steins {

std::uint64_t GeneralCounterBlock::parent_value() const {
  std::uint64_t sum = 0;
  for (const auto c : counters) sum += c;
  return sum & kCounter56Mask;
}

void GeneralCounterBlock::increment(std::size_t slot) {
  assert(slot < counters.size());
  counters[slot] = (counters[slot] + 1) & kCounter56Mask;
}

NodePayload GeneralCounterBlock::encode() const {
  // 7 bytes per 56-bit counter, little-endian. Each unaligned 8-byte store
  // spills a zero into the next counter's first byte (bits 56..63 of a
  // masked counter), which the next iteration then overwrites; the last
  // counter gets a 7-byte copy so the store stays inside the payload.
  NodePayload p{};
  for (std::size_t i = 0; i + 1 < counters.size(); ++i) {
    const std::uint64_t v = counters[i] & kCounter56Mask;
    std::memcpy(p.data() + i * 7, &v, 8);
  }
  const std::uint64_t last = counters[counters.size() - 1] & kCounter56Mask;
  std::memcpy(p.data() + (counters.size() - 1) * 7, &last, 7);
  return p;
}

GeneralCounterBlock GeneralCounterBlock::decode(std::span<const std::uint8_t> payload) {
  assert(payload.size() >= 56);
  GeneralCounterBlock cb;
  std::uint64_t v;
  for (std::size_t i = 0; i + 1 < cb.counters.size(); ++i) {
    std::memcpy(&v, payload.data() + i * 7, 8);
    cb.counters[i] = v & kCounter56Mask;
  }
  // The last 8-byte load would run past a 56-byte payload; load the final
  // aligned word and shift its low byte (counter 6's top byte) away.
  std::memcpy(&v, payload.data() + 48, 8);
  cb.counters[cb.counters.size() - 1] = v >> 8;
  return cb;
}

std::uint64_t SplitCounterBlock::parent_value() const {
  std::uint64_t sum = major * kMinorMax;
  for (const auto m : minors) sum += m;
  return sum;
}

SplitCounterBlock::IncrementResult SplitCounterBlock::increment_skip(std::size_t slot) {
  assert(slot < minors.size());
  IncrementResult r;
  if (minors[slot] + 1U < kMinorMax) {
    ++minors[slot];
    return r;
  }
  // Overflow (paper §III-B1): increment = ceil((sum(minors) + 1) / 64),
  // where +1 accounts for the write that triggered the overflow. The parent
  // value is aligned up in multiples of 64, so it stays monotone.
  std::uint64_t sum = 1;
  for (const auto m : minors) sum += m;
  r.overflowed = true;
  r.major_delta = (sum + kMinorMax - 1) / kMinorMax;
  major += r.major_delta;
  minors.fill(0);
  return r;
}

SplitCounterBlock::IncrementResult SplitCounterBlock::increment_plain(std::size_t slot) {
  assert(slot < minors.size());
  IncrementResult r;
  if (minors[slot] + 1U < kMinorMax) {
    ++minors[slot];
    return r;
  }
  r.overflowed = true;
  r.major_delta = 1;
  major += 1;
  minors.fill(0);
  return r;
}

NodePayload SplitCounterBlock::encode() const {
  NodePayload p{};
  std::memcpy(p.data(), &major, 8);
  // 64 x 6-bit minors packed into 48 bytes.
  for (std::size_t i = 0; i < minors.size(); ++i) {
    const std::size_t bit = i * kMinorBits;
    const std::size_t byte = 8 + bit / 8;
    const unsigned shift = bit % 8;
    const std::uint16_t v = static_cast<std::uint16_t>(minors[i] & (kMinorMax - 1)) << shift;
    p[byte] = static_cast<std::uint8_t>(p[byte] | (v & 0xff));
    if (shift > 2) p[byte + 1] = static_cast<std::uint8_t>(p[byte + 1] | (v >> 8));
  }
  return p;
}

SplitCounterBlock SplitCounterBlock::decode(std::span<const std::uint8_t> payload) {
  assert(payload.size() >= 56);
  SplitCounterBlock cb;
  std::memcpy(&cb.major, payload.data(), 8);
  for (std::size_t i = 0; i < cb.minors.size(); ++i) {
    const std::size_t bit = i * kMinorBits;
    const std::size_t byte = 8 + bit / 8;
    const unsigned shift = bit % 8;
    std::uint16_t v = payload[byte];
    if (shift > 2) v |= static_cast<std::uint16_t>(payload[byte + 1]) << 8;
    cb.minors[i] = static_cast<std::uint8_t>((v >> shift) & (kMinorMax - 1));
  }
  return cb;
}

}  // namespace steins

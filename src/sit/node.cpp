#include "sit/node.hpp"

#include <cstring>

namespace steins {

Block SitNode::to_block(std::uint64_t hmac) const {
  Block b{};
  const NodePayload p = payload();
  std::memcpy(b.data(), p.data(), p.size());
  std::memcpy(b.data() + p.size(), &hmac, 8);
  return b;
}

SitNode SitNode::from_block(NodeId id, bool split, const Block& image, std::uint64_t* hmac_out) {
  SitNode n;
  n.id = id;
  n.split = split;
  if (split) {
    n.sc = SplitCounterBlock::decode({image.data(), 56});
  } else {
    n.gc = GeneralCounterBlock::decode({image.data(), 56});
  }
  if (hmac_out != nullptr) {
    std::memcpy(hmac_out, image.data() + 56, 8);
  }
  return n;
}

std::uint64_t node_image_hmac(const Block& image) {
  std::uint64_t h;
  std::memcpy(&h, image.data() + 56, 8);
  return h;
}

}  // namespace steins

#include "sit/geometry.hpp"

#include <algorithm>
#include <cassert>

namespace steins {

SitGeometry::SitGeometry(const NvmConfig& nvm, CounterMode mode)
    : mode_(mode),
      data_blocks_(nvm.capacity_bytes / kBlockSize),
      leaf_coverage_(mode == CounterMode::kSplit ? kSplitArity : kGeneralArity),
      meta_base_(nvm.capacity_bytes) {
  assert(data_blocks_ >= leaf_coverage_);
  std::uint64_t count = (data_blocks_ + leaf_coverage_ - 1) / leaf_coverage_;
  level_counts_.push_back(count);
  // Build internal levels until the level fits under the root register.
  while (count > kRootArity) {
    count = (count + kTreeArity - 1) / kTreeArity;
    level_counts_.push_back(count);
  }
  level_base_.resize(level_counts_.size());
  for (std::size_t k = 0; k < level_counts_.size(); ++k) {
    level_base_[k] = total_nodes_;
    total_nodes_ += level_counts_[k];
  }
}

NodeId SitGeometry::node_at(Addr addr) const {
  assert(is_metadata_addr(addr));
  const std::uint64_t flat = (addr - meta_base_) / kBlockSize;
  unsigned level = 0;
  while (level + 1 < num_levels() && flat >= level_base_[level + 1]) ++level;
  return NodeId{level, flat - level_base_[level]};
}

NodeId SitGeometry::node_at_offset(std::uint32_t offset) const {
  return node_at(meta_base_ + static_cast<std::uint64_t>(offset) * kBlockSize);
}

std::size_t SitGeometry::num_children(NodeId id) const {
  assert(id.level >= 1);
  const std::uint64_t child_count = level_counts_[id.level - 1];
  const std::uint64_t first = id.index * kTreeArity;
  if (first >= child_count) return 0;
  return static_cast<std::size_t>(std::min<std::uint64_t>(kTreeArity, child_count - first));
}

}  // namespace steins

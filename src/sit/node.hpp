// A SIT node: a 56-byte counter payload plus a 64-bit HMAC, packed into one
// 64 B block. Internal nodes always carry a GeneralCounterBlock; leaf nodes
// carry either a general or a split block depending on the scheme variant.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "sit/counter_block.hpp"
#include "sit/geometry.hpp"

namespace steins {

struct SitNode {
  NodeId id;
  bool split = false;  // true only for SC-mode leaves
  GeneralCounterBlock gc;
  SplitCounterBlock sc;

  /// The Steins parent-counter value of this node (Eq. 1 / Eq. 2).
  std::uint64_t parent_value() const { return split ? sc.parent_value() : gc.parent_value(); }

  /// 56-byte counter payload (HMAC input and NVM image prefix).
  NodePayload payload() const { return split ? sc.encode() : gc.encode(); }

  /// Pack payload + HMAC into the 64 B NVM image.
  Block to_block(std::uint64_t hmac) const;

  /// Unpack a 64 B NVM image; `*hmac_out` receives the stored HMAC.
  static SitNode from_block(NodeId id, bool split, const Block& image,
                            std::uint64_t* hmac_out = nullptr);

  bool counters_equal(const SitNode& other) const {
    return split == other.split && (split ? sc == other.sc : gc == other.gc);
  }
};

/// Extract just the stored HMAC from a node image.
std::uint64_t node_image_hmac(const Block& image);

}  // namespace steins

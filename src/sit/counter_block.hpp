// SIT counter blocks (paper §II-B/§II-C/§III-B).
//
// GeneralCounterBlock: 8 x 56-bit counters (internal nodes and GC leaves).
// SplitCounterBlock:   one 64-bit major + 64 x 6-bit minor counters
//                      (Steins-SC / WB-SC leaf nodes).
//
// Both encode into the 56-byte counter payload of a 64 B node (the
// remaining 8 bytes hold the node HMAC) and expose the Steins parent-value
// functions: Eq. (1) sum for general blocks, Eq. (2) weighted sum with
// skip-increment major updates for split blocks. Parent values are
// monotonically non-decreasing under every legal mutation (property-tested).
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "common/types.hpp"

namespace steins {

/// 56-byte counter payload of a 64 B SIT node.
using NodePayload = std::array<std::uint8_t, 56>;

struct GeneralCounterBlock {
  std::array<std::uint64_t, kTreeArity> counters{};  // each 56-bit

  /// Eq. (1): parent counter = sum of the 8 child counters (mod 2^56).
  std::uint64_t parent_value() const;

  /// Self-increment of one counter (classic SIT semantics; also used by
  /// the WB/ASIT/STAR baselines). Wraps at 2^56.
  void increment(std::size_t slot);

  NodePayload encode() const;
  static GeneralCounterBlock decode(std::span<const std::uint8_t> payload);

  bool operator==(const GeneralCounterBlock&) const = default;
};

struct SplitCounterBlock {
  std::uint64_t major = 0;
  std::array<std::uint8_t, kSplitArity> minors{};  // each 6-bit

  /// Eq. (2): parent counter = major * 64 + sum of minors.
  std::uint64_t parent_value() const;

  /// Result of incrementing one minor counter.
  struct IncrementResult {
    bool overflowed = false;       // minors were reset, major advanced
    std::uint64_t major_delta = 0;  // how much the major advanced
  };

  /// Steins skip-increment (paper §III-B1): on minor overflow, advance the
  /// major by ceil(sum(minors) / 64) and reset the minors, keeping the
  /// parent value monotone.
  IncrementResult increment_skip(std::size_t slot);

  /// Baseline split-counter increment (WB-SC): major advances by exactly 1
  /// on overflow.
  IncrementResult increment_plain(std::size_t slot);

  /// Full encryption counter for the covered data block `slot`
  /// (major << 6 | minor), fed to the OTP engine.
  std::uint64_t encryption_counter(std::size_t slot) const {
    return (major << kMinorBits) | minors[slot];
  }

  NodePayload encode() const;
  static SplitCounterBlock decode(std::span<const std::uint8_t> payload);

  bool operator==(const SplitCounterBlock&) const = default;
};

}  // namespace steins

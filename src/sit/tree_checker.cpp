#include "sit/tree_checker.hpp"

namespace steins {

TreeCheckReport check_tree(SecureMemoryBase& mem, std::size_t max_issues) {
  TreeCheckReport report;
  const SitGeometry& geo = mem.geometry();
  NvmDevice& dev = mem.device();
  MetadataCache& cache = mem.metadata_cache();
  const bool split_leaves = mem.config().counter_mode == CounterMode::kSplit;

  auto add_issue = [&](NodeId id, std::string what) {
    if (report.issues.size() < max_issues) {
      report.issues.push_back(TreeCheckIssue{id, std::move(what)});
    }
  };

  // The verification counter for a persisted child is the parent's CURRENT
  // slot value: the cached copy if the parent is cached, else its NVM image.
  auto parent_counter = [&](NodeId id) -> std::uint64_t {
    if (const auto pending = mem.pending_parent_counter(id)) return *pending;
    if (geo.is_top_level(id)) return mem.root_counters()[id.index];
    const NodeId pid = geo.parent_of(id);
    const Addr paddr = geo.node_addr(pid);
    if (const MetadataLine* line = cache.peek(paddr)) {
      return line->payload.gc.counters[geo.slot_in_parent(id)];
    }
    if (!dev.contains(paddr)) return 0;
    const SitNode pnode = SitNode::from_block(pid, false, dev.peek_block(paddr));
    return pnode.gc.counters[geo.slot_in_parent(id)];
  };

  for (unsigned level = 0; level < geo.num_levels(); ++level) {
    const bool split = split_leaves && level == 0;
    for (std::uint64_t index = 0; index < geo.level_count(level); ++index) {
      const NodeId id{level, index};
      const Addr addr = geo.node_addr(id);
      const bool persisted = dev.contains(addr);
      std::uint64_t stored = 0;
      SitNode nvm_node;
      if (persisted) {
        ++report.nodes_persisted;
        nvm_node = SitNode::from_block(id, split, dev.peek_block(addr), &stored);
        const std::uint64_t pc = parent_counter(id);
        const std::uint64_t mac = mem.cme().mac().node_mac(nvm_node.payload(), addr, pc);
        if (mac != stored) {
          add_issue(id, "stored HMAC does not verify against the parent counter");
        }
      } else if (parent_counter(id) != 0) {
        add_issue(id, "parent counter nonzero but node never persisted");
      }

      if (const MetadataLine* line = cache.peek(addr); line != nullptr && !line->dirty) {
        if (!persisted) {
          if (line->payload.parent_value() != 0) {
            add_issue(id, "clean cached node has counters but no NVM image");
          }
        } else if (!line->payload.counters_equal(nvm_node)) {
          add_issue(id, "clean cached node diverges from its NVM image");
        }
      }
      ++report.nodes_checked;
    }
  }
  return report;
}

}  // namespace steins

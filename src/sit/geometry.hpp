// SIT geometry and NVM region layout (paper §II-C, Table I).
//
// Address space layout (the device store is sparse, so auxiliary regions
// are simply placed above the data region):
//
//   [0, capacity)                 user data blocks
//   [meta_base, ...)              SIT nodes, level 0 (leaves) upward
//   [aux_base, ...)               per-scheme regions (shadow table, bitmap,
//                                 offset records)
//
// Internal levels have arity 8 (8 x 56-bit counters per node). The on-chip
// root register covers up to 64 top-level nodes, which yields the paper's
// tree heights: 9 levels including the root for general-counter leaves on
// 16 GB, 8 for split-counter leaves.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"

namespace steins {

struct NodeId {
  unsigned level = 0;      // 0 = leaf level
  std::uint64_t index = 0;

  bool operator==(const NodeId&) const = default;
};

class SitGeometry {
 public:
  SitGeometry(const NvmConfig& nvm, CounterMode mode);

  CounterMode mode() const { return mode_; }

  std::uint64_t data_blocks() const { return data_blocks_; }

  /// Data blocks covered by one leaf node (8 for GC, 64 for SC).
  std::uint64_t leaf_coverage() const { return leaf_coverage_; }

  /// Number of node levels, excluding the on-chip root register.
  unsigned num_levels() const { return static_cast<unsigned>(level_counts_.size()); }

  /// Tree height including the root (what Table I reports: 9 GC / 8 SC).
  unsigned height() const { return num_levels() + 1; }

  std::uint64_t level_count(unsigned level) const { return level_counts_[level]; }

  /// Children of the on-chip root = nodes of the top level.
  std::uint64_t root_children() const { return level_counts_.back(); }
  unsigned top_level() const { return num_levels() - 1; }

  /// Total SIT nodes across all levels.
  std::uint64_t total_nodes() const { return total_nodes_; }

  /// NVM byte address of a node. Inline: called several times per
  /// simulated access (leaf fetch plus every parent hop).
  Addr node_addr(NodeId id) const {
    assert(id.level < num_levels() && id.index < level_counts_[id.level]);
    return meta_base_ + (level_base_[id.level] + id.index) * kBlockSize;
  }

  /// Inverse of node_addr: which node lives at a metadata-region address.
  NodeId node_at(Addr addr) const;

  /// 4-byte offset of a node within the metadata region (paper §III-C).
  std::uint32_t offset_of(NodeId id) const {
    const std::uint64_t flat = level_base_[id.level] + id.index;
    assert(flat <= 0xffffffffULL && "metadata region exceeds 4-byte offsets (256 GB)");
    return static_cast<std::uint32_t>(flat);
  }
  NodeId node_at_offset(std::uint32_t offset) const;

  bool is_metadata_addr(Addr addr) const {
    return addr >= meta_base_ && addr < meta_base_ + total_nodes_ * kBlockSize;
  }

  Addr meta_base() const { return meta_base_; }

  /// First free address above the metadata region; schemes place their
  /// auxiliary regions (shadow table / bitmap / records) from here.
  Addr aux_base() const { return meta_base_ + total_nodes_ * kBlockSize; }

  /// Leaf that covers a data block, and the covered block's slot in it.
  NodeId leaf_of_data(std::uint64_t data_block) const {
    return NodeId{0, data_block / leaf_coverage_};
  }
  std::size_t slot_of_data(std::uint64_t data_block) const {
    return static_cast<std::size_t>(data_block % leaf_coverage_);
  }

  NodeId parent_of(NodeId id) const { return NodeId{id.level + 1, id.index / kTreeArity}; }
  std::size_t slot_in_parent(NodeId id) const {
    return static_cast<std::size_t>(id.index % kTreeArity);
  }
  bool is_top_level(NodeId id) const { return id.level == top_level(); }

  /// Children of an internal node (level >= 1): level-1 nodes.
  NodeId child_of(NodeId id, std::size_t slot) const {
    return NodeId{id.level - 1, id.index * kTreeArity + slot};
  }
  /// Number of existing children of an internal node (the last node of a
  /// level may be partially populated).
  std::size_t num_children(NodeId id) const;

  /// Metadata storage in bytes, per level and total (paper §IV-E).
  std::uint64_t storage_bytes() const { return total_nodes_ * kBlockSize; }
  std::uint64_t leaf_storage_bytes() const { return level_counts_[0] * kBlockSize; }

 private:
  CounterMode mode_;
  std::uint64_t data_blocks_;
  std::uint64_t leaf_coverage_;
  std::vector<std::uint64_t> level_counts_;  // [0] = leaves
  std::vector<std::uint64_t> level_base_;    // node index base per level
  std::uint64_t total_nodes_ = 0;
  Addr meta_base_;
};

}  // namespace steins

// Whole-tree consistency checker: walks the persisted SIT and verifies
// every parent/child relationship the schemes rely on.
//
// Invariants checked (for the generated-counter schemes the two coincide;
// for self-increment schemes only the HMAC link is defined):
//   1. HMAC link: every persisted node's stored HMAC verifies against the
//      counter its parent (or the root register) holds for it.
//   2. Cache coherence: a cached clean node equals its NVM image.
//
// Used by tests after flush_all_metadata() and after recovery, and exposed
// through the CLI tool for ad-hoc auditing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "secure/secure_memory.hpp"

namespace steins {

struct TreeCheckIssue {
  NodeId node;
  std::string what;
};

struct TreeCheckReport {
  std::uint64_t nodes_checked = 0;
  std::uint64_t nodes_persisted = 0;
  std::vector<TreeCheckIssue> issues;

  bool ok() const { return issues.empty(); }
};

/// Verify every persisted node of `mem`'s SIT bottom-up against its parent
/// (falling back to the scheme's root register at the top), plus cache/NVM
/// coherence for clean cached nodes. `max_issues` bounds the report.
TreeCheckReport check_tree(SecureMemoryBase& mem, std::size_t max_issues = 16);

}  // namespace steins

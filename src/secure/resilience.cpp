#include "secure/resilience.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>

namespace steins {
namespace {

constexpr std::uint64_t kQmapMagic = 0x53544e51'4d415030ull;  // "STNQMAP0"
// Entries are 24 bytes (lo, hi, flags), two per 64 B line after the header.
constexpr std::size_t kEntriesPerLine = 2;
constexpr std::size_t kMaxPersistedEntries = 510;

std::uint64_t load_u64(const Block& b, std::size_t off) {
  std::uint64_t v = 0;
  std::memcpy(&v, b.data() + off, sizeof(v));
  return v;
}

void store_u64(Block& b, std::size_t off, std::uint64_t v) {
  std::memcpy(b.data() + off, &v, sizeof(v));
}

std::uint64_t pack_flags(const QuarantineEntry& e) {
  return static_cast<std::uint64_t>(e.reason) |
         (std::uint64_t{e.line} << 8) | (std::uint64_t{e.remapped} << 9) |
         (std::uint64_t{e.rewritten} << 10);
}

void unpack_flags(std::uint64_t flags, QuarantineEntry* e) {
  e->reason = static_cast<QuarantineReason>(flags & 0xff);
  e->line = (flags >> 8) & 1;
  e->remapped = (flags >> 9) & 1;
  e->rewritten = (flags >> 10) & 1;
}

Addr line_align(Addr a) { return a & ~static_cast<Addr>(kBlockSize - 1); }

}  // namespace

const char* quarantine_reason_name(QuarantineReason r) {
  switch (r) {
    case QuarantineReason::kEccData:
      return "ecc-data";
    case QuarantineReason::kEccMeta:
      return "ecc-meta";
    case QuarantineReason::kMacMismatch:
      return "mac-mismatch";
    case QuarantineReason::kLost:
      return "lost";
  }
  return "?";
}

void QuarantineMap::add_line(Addr addr, QuarantineReason reason, bool remapped) {
  const Addr lo = line_align(addr);
  for (const QuarantineEntry& e : entries_) {
    if (e.line && e.lo == lo) return;
  }
  QuarantineEntry e;
  e.lo = lo;
  e.hi = lo + kBlockSize;
  e.reason = reason;
  e.line = true;
  e.remapped = remapped;
  entries_.push_back(e);
}

void QuarantineMap::add_range(Addr lo, Addr hi, QuarantineReason reason) {
  for (const QuarantineEntry& e : entries_) {
    if (!e.line && e.lo == lo && e.hi == hi) return;
  }
  QuarantineEntry e;
  e.lo = lo;
  e.hi = hi;
  e.reason = reason;
  e.line = false;
  entries_.push_back(e);
}

std::size_t QuarantineMap::line_count() const {
  return static_cast<std::size_t>(
      std::count_if(entries_.begin(), entries_.end(),
                    [](const QuarantineEntry& e) { return e.line; }));
}

std::size_t QuarantineMap::range_count() const {
  return entries_.size() - line_count();
}

const QuarantineEntry* QuarantineMap::blocking_read(Addr addr) const {
  for (const QuarantineEntry& e : entries_) {
    if (!e.covers(addr)) continue;
    if (!e.line || !e.rewritten) return &e;
  }
  return nullptr;
}

bool QuarantineMap::read_blocked(Addr addr) const {
  return blocking_read(addr) != nullptr;
}

bool QuarantineMap::write_blocked(Addr addr) const {
  for (const QuarantineEntry& e : entries_) {
    if (!e.covers(addr)) continue;
    if (!e.line) return true;        // subtree range: no writes until repair
    if (!e.remapped) return true;    // spare pool exhausted: line is dead
  }
  return false;
}

bool QuarantineMap::has_line(Addr addr) const {
  const Addr lo = line_align(addr);
  for (const QuarantineEntry& e : entries_) {
    if (e.line && e.lo == lo) return true;
  }
  return false;
}

bool QuarantineMap::note_rewrite(Addr addr) {
  const Addr lo = line_align(addr);
  bool changed = false;
  for (QuarantineEntry& e : entries_) {
    if (e.line && e.lo == lo && !e.rewritten) {
      e.rewritten = true;
      changed = true;
    }
  }
  return changed;
}

void QuarantineMap::persist(NvmDevice& dev, Addr base) const {
  const std::size_t n = std::min(entries_.size(), kMaxPersistedEntries);
  Block header = zero_block();
  store_u64(header, 0, kQmapMagic);
  store_u64(header, 8, n);
  dev.poke_block(base, header);
  for (std::size_t i = 0; i < n; i += kEntriesPerLine) {
    Block line = zero_block();
    for (std::size_t j = 0; j < kEntriesPerLine && i + j < n; ++j) {
      const QuarantineEntry& e = entries_[i + j];
      store_u64(line, j * 24 + 0, e.lo);
      store_u64(line, j * 24 + 8, e.hi);
      store_u64(line, j * 24 + 16, pack_flags(e));
    }
    dev.poke_block(base + kBlockSize * (1 + i / kEntriesPerLine), line);
  }
}

bool QuarantineMap::load(NvmDevice& dev, Addr base) {
  if (!dev.contains(base)) return false;
  const Block header = dev.peek_block(base);
  if (load_u64(header, 0) != kQmapMagic) return false;
  const std::uint64_t n = load_u64(header, 8);
  if (n > kMaxPersistedEntries) return false;
  std::vector<QuarantineEntry> loaded;
  loaded.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    const Block line =
        dev.peek_block(base + kBlockSize * (1 + i / kEntriesPerLine));
    const std::size_t off = (i % kEntriesPerLine) * 24;
    QuarantineEntry e;
    e.lo = load_u64(line, off + 0);
    e.hi = load_u64(line, off + 8);
    unpack_flags(load_u64(line, off + 16), &e);
    if (e.hi <= e.lo) return false;  // torn/corrupt image: reject wholesale
    loaded.push_back(e);
  }
  entries_ = std::move(loaded);
  return true;
}

std::string FtStats::describe() const {
  std::ostringstream os;
  os << "ecc: corrected=" << corrected_reads << " retries=" << read_retries
     << " uncorrectable=" << uncorrectable_reads
     << " | scrub: passes=" << scrub_passes << " lines=" << scrub_lines
     << " corrected=" << scrub_corrected << " detected=" << scrub_detected
     << " | quarantine: lines=" << lines_quarantined
     << " remapped=" << lines_remapped
     << " subtrees=" << subtrees_quarantined
     << " blocked-reads=" << quarantined_reads
     << " blocked-writes=" << quarantined_writes;
  return os.str();
}

}  // namespace steins

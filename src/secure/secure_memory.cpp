#include "secure/secure_memory.hpp"

#include <algorithm>
#include <sstream>

#include "fault/fault.hpp"
#include "schemes/anubis.hpp"
#include "schemes/scue.hpp"
#include "schemes/star.hpp"
#include "schemes/steins.hpp"
#include "schemes/writeback.hpp"

namespace steins {

double ExecStats::energy_nj(const SystemConfig& cfg) const {
  const double partial_blocks = static_cast<double>(aux_write_bytes) / kBlockSize;
  return static_cast<double>(nvm_reads()) * cfg.nvm.read_energy_nj +
         (static_cast<double>(data_writes + meta_writes + aux_writes) + partial_blocks) *
             cfg.nvm.write_energy_nj +
         static_cast<double>(hash_ops) * cfg.secure.hash_energy_nj +
         static_cast<double>(aes_ops) * cfg.secure.aes_energy_nj +
         static_cast<double>(mcache_accesses) * cfg.secure.cache_access_energy_nj;
}

std::string RecoveryReport::summary() const {
  std::ostringstream os;
  os << blocks_salvaged << " blocks salvaged, " << blocks_quarantined
     << " quarantined";
  if (subtrees_quarantined > 0) {
    os << " (" << subtrees_quarantined << " subtree"
       << (subtrees_quarantined == 1 ? "" : "s") << ")";
  }
  if (lines_quarantined > 0) os << ", " << lines_quarantined << " dead lines";
  if (tracking_degraded) os << ", dirty-set tracking degraded";
  if (!linc_unverified.empty()) {
    os << ", " << linc_unverified.size() << " LInc levels unverified";
  }
  return os.str();
}

std::string scheme_name(Scheme s, CounterMode mode) {
  const char* suffix = (mode == CounterMode::kSplit) ? "-SC" : "-GC";
  switch (s) {
    case Scheme::kWriteBack:
      return std::string("WB") + suffix;
    case Scheme::kAnubis:
      return "ASIT";
    case Scheme::kStar:
      return "STAR";
    case Scheme::kSteins:
      return std::string("Steins") + suffix;
    case Scheme::kScue:
      return "SCUE";
  }
  return "?";
}

SecureMemoryBase::SecureMemoryBase(const SystemConfig& cfg, std::uint64_t key_seed)
    : cfg_(cfg),
      geo_(cfg.nvm, cfg.counter_mode),
      dev_(cfg.nvm),
      channel_(cfg_, dev_),
      cme_(cfg.crypto, key_seed),
      mcache_(cfg.secure.metadata_cache.size_bytes, cfg.secure.metadata_cache.ways,
              cfg.secure.metadata_cache.block_bytes),
      root_(geo_.root_children(), 0),
      ft_(cfg.secure.ft),
      // The quarantine map persists in a reserved region just below the
      // device address limit, clear of every scheme's aux region.
      qmap_base_(dev_.address_limit() - (Addr{1} << 16)) {}

Cycle SecureMemoryBase::timed_read(Addr addr, Cycle now, Block* out) {
  if (recovering_) {
    ++recovery_reads_;
    if (out != nullptr) *out = dev_.peek_block(addr);
    return now;
  }
  return channel_.read(addr, now, out);
}

Cycle SecureMemoryBase::timed_write(Addr addr, const Block& data, Cycle now,
                                    LatencyAccumulator* acc, Cycle birth,
                                    const std::uint64_t* tag) {
  if (recovering_) {
    // Persist boundary: an armed nested crash fires BEFORE the poke, so an
    // aborted boundary leaves zero durable trace (block and tag are one
    // transaction — neither lands).
    recovery_persist_boundary("write");
    ++recovery_writes_;
    dev_.poke_block(addr, data);
    if (tag != nullptr) dev_.write_tag(addr, *tag);
    return now;
  }
  return channel_.write(addr, data, now, acc, birth, tag);
}

void SecureMemoryBase::recovery_persist_boundary(const char* stage) {
  if (injector_ != nullptr) injector_->on_recovery_persist(stage);
}

void SecureMemoryBase::on_node_modified(NodeId, Cycle&) {}
void SecureMemoryBase::on_node_dirtied(NodeId, Cycle&) {}
void SecureMemoryBase::on_node_cleaned(NodeId, Cycle&) {}
void SecureMemoryBase::before_read(Cycle&) {}
void SecureMemoryBase::on_data_written(Addr, std::uint64_t, Cycle&) {}

std::optional<std::uint64_t> SecureMemoryBase::pending_parent_counter(NodeId) const {
  return std::nullopt;
}

std::uint64_t SecureMemoryBase::verify_parent_counter(NodeId id, Cycle& now) {
  if (const auto pending = pending_parent_counter(id)) return *pending;
  if (geo_.is_top_level(id)) return root_[id.index];
  const FetchResult parent = fetch_node(geo_.parent_of(id), now);
  now = parent.ready;
  return parent.line->payload.gc.counters[geo_.slot_in_parent(id)];
}

SecureMemoryBase::FetchResult SecureMemoryBase::fetch_node(NodeId id, Cycle now) {
  const Addr addr = geo_.node_addr(id);
  ++stats_.mcache_accesses;
  if (MetadataLine* line = mcache_.lookup(addr)) {
    return {line, now + 1};
  }

  // If this node is mid-flush (evicted, HMAC being computed, write not yet
  // issued), its NVM image is stale: reinstate the live in-flight copy as a
  // dirty cached node instead of reloading the old image.
  for (auto it = inflight_persists_.rbegin(); it != inflight_persists_.rend(); ++it) {
    if ((*it)->id == id) {
      MetadataLine* line = nullptr;
      auto victim = mcache_.insert(addr, true, **it, &line);
      if (victim && victim->dirty) {
        now = persist_detached(victim->payload, now);
        finish_clean(victim->payload.id, now);
        line = mcache_.lookup(addr);
        if (line == nullptr) return fetch_node(id, now);
      }
      Cycle hook_now = now;
      on_node_modified(id, hook_now);  // tracking structures see it anew
      on_node_dirtied(id, hook_now);
      return {line, hook_now + 1};
    }
  }

  // Miss: the parent counter is the HMAC verification input, so resolve it
  // first (recursing toward the on-chip root on further misses).
  const std::uint64_t parent_ctr = verify_parent_counter(id, now);

  // Resolving the parent can evict dirty nodes, and flushing a victim whose
  // parent is `id` pulls `id` into the cache as a side effect — re-check
  // before inserting a duplicate line.
  if (MetadataLine* line = mcache_.lookup(addr)) {
    return {line, now + 1};
  }

  const bool exists = block_exists(addr);
  Block img{};
  Cycle t = timed_read(addr, now, &img);
  ++stats_.meta_reads;
  if (ft_.ecc_enabled && !recovering_ && dev_.has_ecc_faults() &&
      dev_.ecc_faulted(addr) && !channel_.queued(addr)) {
    t = resolve_node_ecc(id, addr, t, &img);
  }

  std::uint64_t stored = 0;
  const bool split = leaf_is_split() && id.level == 0;
  SitNode node = SitNode::from_block(id, split, img, &stored);
  if (exists) {
    const NodePayload payload = node.payload();
    const std::uint64_t mac = cme_.mac().node_mac(payload, addr, parent_ctr);
    charge_hash(t);
    if (mac != stored) {
      throw IntegrityViolation("SIT node HMAC mismatch at level " + std::to_string(id.level) +
                               " index " + std::to_string(id.index));
    }
  } else if (parent_ctr != 0) {
    // A never-written node is the all-zero initial state; its parent
    // counter must still be zero, otherwise the node image was erased.
    throw IntegrityViolation("missing SIT node with nonzero parent counter");
  }

  MetadataLine* inserted = nullptr;
  auto victim = mcache_.insert(addr, false, node, &inserted);
  if (victim && victim->dirty) {
    t = persist_detached(victim->payload, t);
    finish_clean(victim->payload.id, t);
    // The victim flush can recursively insert ancestors; in the (rare) case
    // that aged this node out of its set, re-fetch it.
    inserted = mcache_.lookup(addr);
    if (inserted == nullptr) return fetch_node(id, t);
  }
  return {inserted, t};
}

Cycle SecureMemoryBase::persist_with_self_increment(SitNode& node, Cycle now,
                                                    std::uint64_t* parent_ctr_out) {
  // Classic SIT lazy update (paper §II-C): bump the parent counter by one,
  // recompute this node's HMAC with the new parent counter, write it out.
  // Under the eager policy (ablation) the parent counter was already
  // advanced on the write path, so it is only read here.
  const bool eager = cfg_.update_policy == UpdatePolicy::kEager;
  std::uint64_t parent_ctr;
  if (geo_.is_top_level(node.id)) {
    if (!eager) root_[node.id.index] = (root_[node.id.index] + 1) & kCounter56Mask;
    parent_ctr = root_[node.id.index];
  } else if (eager) {
    const FetchResult parent = fetch_node(geo_.parent_of(node.id), now);
    now = parent.ready;
    parent_ctr = parent.line->payload.gc.counters[geo_.slot_in_parent(node.id)];
  } else {
    // Parent fetch is on the critical path here (unavoidable for the
    // baselines; Steins overrides persist_node to avoid it).
    const FetchResult parent = fetch_node(geo_.parent_of(node.id), now);
    now = parent.ready;
    const bool parent_was_clean = !parent.line->dirty;
    parent.line->payload.gc.increment(geo_.slot_in_parent(node.id));
    parent.line->dirty = true;
    on_node_modified(parent.line->payload.id, now);
    if (parent_was_clean) on_node_dirtied(parent.line->payload.id, now);
    parent_ctr = parent.line->payload.gc.counters[geo_.slot_in_parent(node.id)];
  }

  const Addr addr = geo_.node_addr(node.id);
  const NodePayload payload = node.payload();
  const std::uint64_t mac = cme_.mac().node_mac(payload, addr, parent_ctr);
  charge_hash(now);
  now = timed_write(addr, node.to_block(mac), now);
  ++stats_.meta_writes;
  if (parent_ctr_out != nullptr) *parent_ctr_out = parent_ctr;
  return now;
}

Cycle SecureMemoryBase::persist_detached(SitNode& node, Cycle now) {
  inflight_persists_.push_back(&node);
  now = persist_node(node, now);
  inflight_persists_.pop_back();
  return now;
}

void SecureMemoryBase::finish_clean(NodeId id, Cycle& now) {
  const MetadataLine* cur = mcache_.peek(geo_.node_addr(id));
  if (cur == nullptr || !cur->dirty) on_node_cleaned(id, now);
}

Cycle SecureMemoryBase::write_through_node(MetadataLine& line, Cycle now) {
  line.dirty = false;
  SitNode copy = line.payload;
  now = persist_detached(copy, now);
  finish_clean(copy.id, now);
  return now;
}

SecureMemoryBase::CounterBump SecureMemoryBase::bump_leaf_counter(MetadataLine& leaf,
                                                                  std::size_t slot, Cycle& now) {
  CounterBump bump;
  SitNode& node = leaf.payload;
  bump.pv_before = node.parent_value();
  if (node.split) {
    const SitNode before = node;
    const auto r = node.sc.increment_plain(slot);
    bump.overflowed = r.overflowed;
    if (r.overflowed) reencrypt_covered_blocks(before, node, slot, now);
    bump.enc_counter = node.sc.encryption_counter(slot);
    bump.aux = node.sc.major;
  } else {
    node.gc.increment(slot);
    bump.enc_counter = node.gc.counters[slot];
  }
  bump.pv_after = node.parent_value();
  return bump;
}

std::uint64_t SecureMemoryBase::leaf_enc_counter(const SitNode& leaf, std::size_t slot,
                                                 std::uint64_t* aux) const {
  if (leaf.split) {
    if (aux != nullptr) *aux = leaf.sc.major;
    return leaf.sc.encryption_counter(slot);
  }
  if (aux != nullptr) *aux = 0;
  return leaf.gc.counters[slot];
}

void SecureMemoryBase::reencrypt_covered_blocks(const SitNode& before, const SitNode& after,
                                                std::size_t skip_slot, Cycle& now) {
  // A split-counter minor overflow reset every minor: all covered data
  // blocks must be re-encrypted under their new counters (paper §II-B).
  STEINS_CHECK(before.split && after.split,
               "re-encryption requires split-counter leaves");
  const std::uint64_t first_block = before.id.index * geo_.leaf_coverage();
  for (std::size_t j = 0; j < geo_.leaf_coverage(); ++j) {
    if (j == skip_slot) continue;  // about to be rewritten by the caller
    const Addr addr = (first_block + j) * kBlockSize;
    if (!block_exists(addr)) continue;
    if (!qmap_.empty() && qmap_.read_blocked(addr)) continue;  // already lost
    Block ct;
    try {
      now = resilient_data_read(addr, now, &ct);
    } catch (const StatusError&) {
      continue;  // line died mid-sweep: quarantined, skip re-encryption
    }
    ++stats_.data_reads;
    const std::uint64_t old_ctr = before.sc.encryption_counter(j);
    const std::uint64_t new_ctr = after.sc.encryption_counter(j);
    const Block pt = cme_.decrypt(ct, addr, old_ctr);
    const Block nct = cme_.encrypt(pt, addr, new_ctr);
    charge_aes();
    charge_aes();
    const std::uint64_t tag = cme_.data_mac(nct, addr, new_ctr, after.sc.major);
    charge_hash(now);
    now = timed_write(addr, nct, now, nullptr, 0, &tag);
    ++stats_.data_writes;
    ++stats_.reencryptions;
  }
}

Cycle SecureMemoryBase::write_block(Addr addr, const Block& data, Cycle now) {
  Cycle t = std::max(now, mc_free_at_);
  tracking_penalty_ = 0;
  maybe_scrub(t);
  if (!qmap_.empty()) {
    check_write_allowed(addr);
    // A fresh write re-validates a remapped line: reads are good again.
    if (qmap_.note_rewrite(addr)) persist_qmap();
  }
  const std::uint64_t block = addr / kBlockSize;
  const NodeId leaf_id = geo_.leaf_of_data(block);
  const std::size_t slot = geo_.slot_of_data(block);

  const FetchResult leaf = fetch_node(leaf_id, t);
  t = leaf.ready;

  const bool was_clean = !leaf.line->dirty;
  const CounterBump bump = bump_leaf_counter(*leaf.line, slot, t);
  leaf.line->dirty = true;
  on_node_modified(leaf_id, t);
  if (was_clean) on_node_dirtied(leaf_id, t);

  if (cfg_.update_policy == UpdatePolicy::kEager) {
    // Eager SIT update (paper §II-C, ablation): propagate the increment up
    // the whole branch, caching and dirtying every ancestor.
    NodeId cur = leaf_id;
    while (!geo_.is_top_level(cur)) {
      const NodeId parent_id = geo_.parent_of(cur);
      const FetchResult parent = fetch_node(parent_id, t);
      t = parent.ready;
      parent.line->payload.gc.increment(geo_.slot_in_parent(cur));
      const bool parent_was_clean = !parent.line->dirty;
      parent.line->dirty = true;
      on_node_modified(parent_id, t);
      if (parent_was_clean) on_node_dirtied(parent_id, t);
      cur = parent_id;
    }
    root_[cur.index] = (root_[cur.index] + 1) & kCounter56Mask;
  }

  charge_aes();
  const Block ct = cme_.encrypt(data, addr, bump.enc_counter);
  const std::uint64_t tag = cme_.data_mac(ct, addr, bump.enc_counter, bump.aux);
  charge_hash(t);
  // The tag rides the queue with the ciphertext: the 64 B line and its
  // ECC-colocated MAC are one memory transaction, so a crash can never
  // persist one without the other (only tear them together).
  t = timed_write(addr, ct, t, nullptr, 0, &tag);
  ++stats_.data_writes;
  // Write latency: metadata front-end work + tracking-structure work +
  // queue acceptance + the cell programming time of this block (posted
  // writes complete at the device).
  if (!recovering_) {
    stats_.write_latency.add((t - now) + tracking_penalty_ + cfg_.nvm_write_cycles());
  }
  tracking_penalty_ = 0;
  on_data_written(addr, bump.enc_counter, t);

  mc_free_at_ = t;
  return t;
}

Cycle SecureMemoryBase::read_block(Addr addr, Cycle now, Block* out) {
  Cycle t = std::max(now, mc_free_at_);
  tracking_penalty_ = 0;  // tracking work on the read path is pipelined away
  maybe_scrub(t);
  if (!qmap_.empty()) check_read_allowed(addr);
  before_read(t);
  const std::uint64_t block = addr / kBlockSize;
  const NodeId leaf_id = geo_.leaf_of_data(block);
  const std::size_t slot = geo_.slot_of_data(block);

  const FetchResult leaf = fetch_node(leaf_id, t);
  const Cycle t_meta = leaf.ready;

  std::uint64_t aux = 0;
  const std::uint64_t ctr = leaf_enc_counter(leaf.line->payload, slot, &aux);

  // The data fetch and the OTP generation proceed in parallel (paper
  // §II-B): the decrypt latency is hidden behind the array read.
  const bool exists = block_exists(addr);
  Block ct{};
  const Cycle t_data = resilient_data_read(addr, t, &ct);
  ++stats_.data_reads;
  charge_aes();
  Cycle ready = std::max(t_data, t_meta + cfg_.secure.aes_latency_cycles);

  if (exists) {
    // Store-forwarded data must be checked against its queued tag, not the
    // stale tag of the image still in the array.
    std::uint64_t tag = dev_.read_tag(addr);
    channel_.peek_queued_tag(addr, &tag);
    const std::uint64_t mac = cme_.data_mac(ct, addr, ctr, aux);
    charge_hash(ready);
    if (mac != tag) {
      throw IntegrityViolation("data HMAC mismatch at block " + std::to_string(block));
    }
    if (out != nullptr) *out = cme_.decrypt(ct, addr, ctr);
  } else {
    if (ctr != 0) {
      throw IntegrityViolation("missing data block with nonzero counter");
    }
    if (out != nullptr) *out = zero_block();
  }

  stats_.read_latency.add(ready - now);
  mc_free_at_ = ready;
  return ready;
}

void SecureMemoryBase::crash() {
  // Power loss: the write queue and ADR domain drain to NVM (paper §III-A);
  // everything volatile is lost. Scheme subclasses flush their ADR-resident
  // structures (record lines, bitmap lines, NV buffer) before calling this.
  // With a fault injector installed, the drain goes through it: queued
  // writes may tear, drop, or reorder instead of landing intact.
  channel_.crash_drain_all(mc_free_at_);
  mcache_.clear();
  mc_free_at_ = 0;
  // A nested crash can unwind mid-persist_detached, leaving a dangling
  // in-flight registration; the node it pointed at is volatile and gone.
  inflight_persists_.clear();
}

void SecureMemoryBase::flush_all_metadata() {
  Cycle t = mc_free_at_;
  // Persisting a node dirties its parent, so iterate until no dirty line
  // remains (bounded by the tree height). Deferred parent updates are
  // settled first each round (Steins drains its NV buffer in before_read),
  // so a full flush leaves no pending state anywhere.
  bool any = true;
  while (any) {
    any = false;
    before_read(t);
    mcache_.for_each([&](MetadataLine& line) {
      if (line.dirty) {
        // Clear the dirty bit first and persist a copy: the parent fetch
        // inside persist_node may evict this very line.
        line.dirty = false;
        SitNode copy = line.payload;
        t = persist_detached(copy, t);
        finish_clean(copy.id, t);
        any = true;
      }
    });
  }
  mc_free_at_ = channel_.drain_all(t);
}

std::optional<SitNode> SecureMemoryBase::current_node_state(NodeId id) const {
  const Addr addr = geo_.node_addr(id);
  if (const MetadataLine* line = mcache_.peek(addr)) return line->payload;
  if (!dev_.contains(addr)) return std::nullopt;
  const Block img = dev_.peek_block(addr);
  return SitNode::from_block(id, leaf_is_split() && id.level == 0, img);
}

// ---------------------------------------------------------------------------
// Runtime fault tolerance: ECC retry, quarantine, patrol scrub, salvage
// ---------------------------------------------------------------------------

Cycle SecureMemoryBase::resilient_data_read(Addr addr, Cycle now, Block* out) {
  Cycle t = timed_read(addr, now, out);
  if (!ft_.ecc_enabled || recovering_ || !dev_.has_ecc_faults()) return t;
  // Store-forwarded data never touched the faulty array image.
  if (!dev_.ecc_faulted(addr) || channel_.queued(addr)) return t;
  unsigned attempt = 0;
  while (true) {
    const NvmDevice::EccRead r = dev_.read_block_ecc(addr, out);
    if (r == NvmDevice::EccRead::kClean) return t;
    if (r == NvmDevice::EccRead::kCorrected) {
      ++ft_stats_.corrected_reads;
      return t;
    }
    if (r == NvmDevice::EccRead::kUncorrectable ||
        attempt >= ft_.max_read_retries) {
      break;
    }
    ++ft_stats_.read_retries;
    t += ft_.retry_backoff_cycles << attempt;
    ++attempt;
  }
  ++ft_stats_.uncorrectable_reads;
  quarantine_data_line(addr, QuarantineReason::kEccData);
  throw StatusError(Status(
      ErrorCode::kUncorrectable,
      "uncorrectable ECC error at data block " + std::to_string(addr / kBlockSize)));
}

Cycle SecureMemoryBase::resolve_node_ecc(NodeId id, Addr addr, Cycle now, Block* img) {
  unsigned attempt = 0;
  while (true) {
    const NvmDevice::EccRead r = dev_.read_block_ecc(addr, img);
    if (r == NvmDevice::EccRead::kClean) return now;
    if (r == NvmDevice::EccRead::kCorrected) {
      ++ft_stats_.corrected_reads;
      return now;
    }
    if (r == NvmDevice::EccRead::kUncorrectable ||
        attempt >= ft_.max_read_retries) {
      break;
    }
    ++ft_stats_.read_retries;
    now += ft_.retry_backoff_cycles << attempt;
    ++attempt;
  }
  // The node's counters are gone: every data block under it becomes
  // unverifiable. Quarantine the whole subtree rather than serving
  // plaintext we cannot authenticate.
  ++ft_stats_.uncorrectable_reads;
  quarantine_node_subtree(id, QuarantineReason::kEccMeta);
  throw StatusError(Status(
      ErrorCode::kUncorrectable,
      "uncorrectable ECC error in SIT node at level " + std::to_string(id.level) +
          " index " + std::to_string(id.index)));
}

void SecureMemoryBase::check_read_allowed(Addr addr) {
  if (const QuarantineEntry* e = qmap_.blocking_read(addr)) {
    ++ft_stats_.quarantined_reads;
    throw StatusError(Status(
        ErrorCode::kQuarantined,
        "read of quarantined block " + std::to_string(addr / kBlockSize) + " (" +
            quarantine_reason_name(e->reason) + ")"));
  }
}

void SecureMemoryBase::check_write_allowed(Addr addr) {
  if (qmap_.write_blocked(addr)) {
    ++ft_stats_.quarantined_writes;
    throw StatusError(Status(
        ErrorCode::kQuarantined,
        "write to quarantined block " + std::to_string(addr / kBlockSize)));
  }
}

void SecureMemoryBase::quarantine_data_line(Addr addr, QuarantineReason reason) {
  if (qmap_.has_line(addr)) return;  // already quarantined
  // Try to retire the dead line to a spare first; without a spare the line
  // stays dead and even writes fail fast.
  const bool remapped = dev_.remap_line(addr);
  qmap_.add_line(addr, reason, remapped);
  ++ft_stats_.lines_quarantined;
  if (remapped) ++ft_stats_.lines_remapped;
  persist_qmap();
}

void SecureMemoryBase::quarantine_node_subtree(NodeId id, QuarantineReason reason) {
  const auto [lo, hi] = node_data_span(id);
  const std::size_t before = qmap_.size();
  qmap_.add_range(lo, hi, reason);
  if (qmap_.size() == before) return;
  ++ft_stats_.subtrees_quarantined;
  persist_qmap();
}

std::pair<Addr, Addr> SecureMemoryBase::node_data_span(NodeId id) const {
  std::uint64_t cover = geo_.leaf_coverage();
  for (unsigned k = 0; k < id.level; ++k) cover *= kTreeArity;
  const std::uint64_t lo = id.index * cover;
  const std::uint64_t hi = std::min<std::uint64_t>(geo_.data_blocks(), lo + cover);
  return {lo * kBlockSize, hi * kBlockSize};
}

void SecureMemoryBase::maybe_scrub(Cycle& now) {
  if (ft_.scrub_interval_accesses == 0 || recovering_ || in_scrub_) return;
  if (++scrub_accesses_ < ft_.scrub_interval_accesses) return;
  scrub_accesses_ = 0;
  scrub_epoch(now);
}

void SecureMemoryBase::scrub_epoch(Cycle& now) {
  if (in_scrub_ || recovering_) return;
  in_scrub_ = true;
  ++ft_stats_.scrub_passes;
  // Patrol resident data lines round-robin under a per-epoch budget; the
  // cursor survives epochs so every line is eventually visited.
  const std::vector<Addr> resident = dev_.resident_blocks(0, cfg_.nvm.capacity_bytes);
  if (!resident.empty()) {
    const std::size_t budget =
        std::min<std::size_t>(ft_.scrub_lines_per_epoch, resident.size());
    for (std::size_t i = 0; i < budget; ++i) {
      scrub_one(resident[(scrub_cursor_ + i) % resident.size()], now);
    }
    scrub_cursor_ = (scrub_cursor_ + budget) % resident.size();
  }
  in_scrub_ = false;
}

void SecureMemoryBase::scrub_one(Addr addr, Cycle& now) {
  ++ft_stats_.scrub_lines;
  // A queued write supersedes the array image; a quarantined line is
  // already handled.
  if (channel_.queued(addr) || (!qmap_.empty() && qmap_.read_blocked(addr))) return;
  bool dead = false;
  const Block img = dev_.peek_corrected(addr, &dead);
  if (dead) {
    ++ft_stats_.scrub_detected;
    quarantine_data_line(addr, QuarantineReason::kEccData);
    return;
  }
  if (dev_.ecc_faulted(addr)) {
    // Correctable fault caught on patrol: rewrite the corrected image in
    // place before a second hit escalates it to uncorrectable.
    dev_.poke_block(addr, img);
    ++ft_stats_.scrub_corrected;
    return;
  }
  if (!ft_.scrub_verify_macs) return;
  const std::uint64_t block = addr / kBlockSize;
  try {
    const FetchResult leaf = fetch_node(geo_.leaf_of_data(block), now);
    now = leaf.ready;
    std::uint64_t aux = 0;
    const std::uint64_t ctr =
        leaf_enc_counter(leaf.line->payload, geo_.slot_of_data(block), &aux);
    if (ctr == 0) return;  // never written through the secure path
    charge_hash(now);
    if (cme_.data_mac(img, addr, ctr, aux) != dev_.read_tag(addr)) {
      ++ft_stats_.scrub_detected;
      quarantine_data_line(addr, QuarantineReason::kMacMismatch);
    }
  } catch (const IntegrityViolation&) {
    ++ft_stats_.scrub_detected;  // covering metadata failed verification
  } catch (const StatusError&) {
    // Covering metadata died mid-patrol; the subtree is quarantined now.
  }
}

void SecureMemoryBase::note_recovery_crash(std::uint64_t boundary, const char* stage) {
  RecoveryAttempt a;
  a.nvm_reads = recovery_reads_;
  a.nvm_writes = recovery_writes_;
  a.seconds = recovery_attempt_seconds();
  a.crashed = true;
  a.crash_boundary = boundary;
  a.crash_stage = stage;
  a.resume_cursor = recovery_cursor_pos_;
  attempt_log_.push_back(std::move(a));
  recovering_ = false;
  recovery_resume_ = true;  // the next prologue keeps the attempt log
}

void SecureMemoryBase::recovery_prologue() {
  if (!recovery_resume_) {
    attempt_log_.clear();
    recovery_cursor_pos_ = 0;
  }
  recovery_resume_ = false;
  recovering_ = true;
  recovery_reads_ = 0;
  recovery_writes_ = 0;
  // Reload the persisted quarantine map: quarantines survive the crash. A
  // corrupted image fails its magic check and the in-memory state stands.
  qmap_.load(dev_, qmap_base_);
}

RecoveryReport SecureMemoryBase::finish_recovery(RecoveryReport r) {
  recovering_ = false;
  RecoveryAttempt final_attempt;
  final_attempt.nvm_reads = recovery_reads_;
  final_attempt.nvm_writes = recovery_writes_;
  final_attempt.seconds = recovery_attempt_seconds();
  final_attempt.resume_cursor = recovery_cursor_pos_;
  attempt_log_.push_back(std::move(final_attempt));
  r.attempts = std::move(attempt_log_);
  attempt_log_.clear();
  r.resume_cursor = recovery_cursor_pos_;
  // Totals span every attempt: an aborted attempt's reads/writes are real
  // recovery work (the fast-recovery-under-repeated-crashes axis).
  r.nvm_reads = 0;
  r.nvm_writes = 0;
  r.seconds = 0.0;
  for (const RecoveryAttempt& a : r.attempts) {
    r.nvm_reads += a.nvm_reads;
    r.nvm_writes += a.nvm_writes;
    r.seconds += a.seconds;
  }
  if (!qmap_.empty()) {
    std::uint64_t blocked = 0;
    const std::vector<Addr> resident = dev_.resident_blocks(0, cfg_.nvm.capacity_bytes);
    for (const Addr a : resident) {
      if (qmap_.read_blocked(a)) ++blocked;
    }
    r.blocks_quarantined = blocked;
    r.blocks_salvaged = resident.size() - blocked;
    r.lines_quarantined = qmap_.line_count();
    r.subtrees_quarantined = qmap_.range_count();
    for (const QuarantineEntry& e : qmap_.entries()) {
      if (!e.line) r.quarantined_ranges.emplace_back(e.lo, e.hi);
    }
  }
  return r;
}

std::unique_ptr<SecureMemory> make_scheme(Scheme scheme, const SystemConfig& cfg) {
  switch (scheme) {
    case Scheme::kWriteBack:
      return std::make_unique<WriteBackMemory>(cfg);
    case Scheme::kAnubis:
      return std::make_unique<AnubisMemory>(cfg);
    case Scheme::kStar:
      return std::make_unique<StarMemory>(cfg);
    case Scheme::kSteins:
      return std::make_unique<SteinsMemory>(cfg);
    case Scheme::kScue:
      if (cfg.counter_mode != CounterMode::kGeneral) {
        throw std::invalid_argument("SCUE does not employ split counter blocks");
      }
      return std::make_unique<ScueMemory>(cfg);
  }
  return nullptr;
}

}  // namespace steins

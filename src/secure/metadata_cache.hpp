// The memory controller's metadata cache (paper Table I: 256 KB, 8-way,
// LRU, 64 B lines). Caches decoded SIT nodes; cached nodes are trusted
// (verified on fill) and carry a dirty bit.
#pragma once

#include "cache/cache.hpp"
#include "sit/node.hpp"

namespace steins {

using MetadataCache = SetAssocCache<SitNode>;
using MetadataLine = MetadataCache::Line;

}  // namespace steins

// Counter-mode encryption engine (paper §II-B).
//
// Encrypts/decrypts 64 B data blocks by XOR with an OTP derived from
// (secret key, block address, counter), and computes/verifies the per-block
// data HMAC stored in the ECC-colocated tag sidecar.
#pragma once

#include <cstdint>
#include <optional>

#include "common/config.hpp"
#include "common/types.hpp"
#include "crypto/mac.hpp"
#include "crypto/otp.hpp"

namespace steins {

class CmeEngine {
 public:
  /// `backend` pins the crypto backend for both engines (tests/benchmarks);
  /// nullopt follows the process-wide registry (crypto/backend.hpp).
  CmeEngine(CryptoProfile profile, std::uint64_t key_seed,
            std::optional<crypto::CryptoBackend> backend = std::nullopt)
      : otp_(profile, key_seed, crypto::PadDomain::kV2, backend),
        mac_(profile, key_seed, backend) {}

  Block encrypt(const Block& plaintext, Addr addr, std::uint64_t counter) const {
    return xor_pad(plaintext, addr, counter);
  }

  Block decrypt(const Block& ciphertext, Addr addr, std::uint64_t counter) const {
    return xor_pad(ciphertext, addr, counter);
  }

  /// Data HMAC over (ciphertext, address, counter, aux). Steins-SC passes
  /// the leaf major counter as `aux` (paper §II-D); others pass 0.
  std::uint64_t data_mac(const Block& ciphertext, Addr addr, std::uint64_t counter,
                         std::uint64_t aux = 0) const {
    return mac_.data_mac(ciphertext, addr, counter, aux);
  }

  const crypto::MacEngine& mac() const { return mac_; }

 private:
  Block xor_pad(const Block& in, Addr addr, std::uint64_t counter) const {
    const Block pad = otp_.pad(addr, counter);
    Block out;
    for (std::size_t i = 0; i < kBlockSize; ++i) out[i] = in[i] ^ pad[i];
    return out;
  }

  crypto::OtpEngine otp_;
  crypto::MacEngine mac_;
};

}  // namespace steins

// Quarantine map + fault-tolerance stats for the runtime resilience layer.
//
// The quarantine map records physical regions whose content is lost or
// unverifiable: single 64 B lines retired by the ECC path, and whole data
// ranges covered by a SIT subtree that recovery could not re-verify. It is
// persisted to a reserved region near the top of the device address space
// (header line + packed entries) so a post-crash recovery pass sees the
// same blocked set the runtime saw; a corrupted image fails its magic check
// and loads as empty rather than blocking arbitrary addresses.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "nvm/nvm_device.hpp"

namespace steins {

enum class QuarantineReason : std::uint8_t {
  kEccData = 0,   // uncorrectable ECC fault on a data line
  kEccMeta = 1,   // uncorrectable ECC fault on a SIT node line
  kMacMismatch = 2,  // patrol scrub found a line failing its MAC
  kLost = 3,      // recovery could not reconstruct the covering metadata
};

const char* quarantine_reason_name(QuarantineReason r);

struct QuarantineEntry {
  Addr lo = 0;        // inclusive, line-aligned
  Addr hi = 0;        // exclusive; lo + kBlockSize for a single-line entry
  QuarantineReason reason = QuarantineReason::kEccData;
  bool line = true;       // single retired line (vs. subtree data range)
  bool remapped = false;  // a spare line backs it: fresh writes are allowed
  bool rewritten = false; // a fresh write landed; reads are good again

  bool covers(Addr addr) const { return addr >= lo && addr < hi; }
};

class QuarantineMap {
 public:
  /// Add a retired line. Idempotent per line address.
  void add_line(Addr addr, QuarantineReason reason, bool remapped);

  /// Add a data range lost with its covering subtree. Exact duplicates are
  /// ignored (re-running recovery re-discovers the same subtrees).
  void add_range(Addr lo, Addr hi, QuarantineReason reason);

  bool empty() const { return entries_.empty(); }
  bool has_line(Addr addr) const;
  std::size_t size() const { return entries_.size(); }
  std::size_t line_count() const;
  std::size_t range_count() const;
  const std::vector<QuarantineEntry>& entries() const { return entries_; }

  /// A read is blocked by any covering range, or by a line entry that has
  /// not yet been rewritten.
  bool read_blocked(Addr addr) const;

  /// A write is blocked by any covering range, or by a line entry whose
  /// backing line was not remapped (spare pool exhausted: fail fast).
  bool write_blocked(Addr addr) const;

  /// First entry blocking a read of addr, or nullptr.
  const QuarantineEntry* blocking_read(Addr addr) const;

  /// Mark a line entry rewritten after a fresh write is accepted for it.
  /// Returns true if any entry changed state.
  bool note_rewrite(Addr addr);

  void clear() { entries_.clear(); }

  /// Persist to / load from the device at `base` (poke/peek: bookkeeping
  /// traffic is not part of the modeled workload). load() returns false and
  /// leaves the map untouched when no valid image is present.
  void persist(NvmDevice& dev, Addr base) const;
  bool load(NvmDevice& dev, Addr base);

 private:
  std::vector<QuarantineEntry> entries_;
};

/// Counters for the ECC/scrub/quarantine machinery (per memory instance).
struct FtStats {
  std::uint64_t corrected_reads = 0;      // demand reads fixed by ECC
  std::uint64_t read_retries = 0;         // kNeedsRetry rounds observed
  std::uint64_t uncorrectable_reads = 0;  // demand reads hitting dead lines
  std::uint64_t quarantined_reads = 0;    // reads rejected by the map
  std::uint64_t quarantined_writes = 0;   // writes rejected by the map
  std::uint64_t scrub_passes = 0;
  std::uint64_t scrub_lines = 0;          // lines patrolled
  std::uint64_t scrub_corrected = 0;      // correctable faults rewritten
  std::uint64_t scrub_detected = 0;       // dead/MAC-failing lines found
  std::uint64_t lines_quarantined = 0;
  std::uint64_t lines_remapped = 0;
  std::uint64_t subtrees_quarantined = 0;

  std::string describe() const;
};

}  // namespace steins

// SecureMemory: the secure NVM memory-controller model.
//
// SecureMemoryBase implements everything the four schemes share — the CME
// data path, the SIT with lazy updates, the metadata cache, recursive
// fetch-and-verify, timing/energy accounting, and crash machinery — and
// exposes virtual hooks where the schemes differ:
//
//   * flush_dirty_node(): how a dirty node is persisted (self-increment
//     parents for WB/ASIT/STAR; generated counters + NV buffer for Steins)
//   * on_node_modified/dirtied/cleaned(): tracking structures (ASIT shadow
//     table + cache-tree; STAR bitmap + cache-tree; Steins offset records)
//   * crash()/recover(): per-scheme recovery procedure.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/status.hpp"
#include "common/types.hpp"
#include "nvm/nvm_device.hpp"
#include "nvm/write_queue.hpp"
#include "secure/cme.hpp"
#include "secure/metadata_cache.hpp"
#include "secure/resilience.hpp"
#include "sit/geometry.hpp"
#include "sit/node.hpp"

namespace steins {

class FaultInjector;

/// Thrown when runtime integrity verification fails (tampering detected).
class IntegrityViolation : public std::runtime_error {
 public:
  explicit IntegrityViolation(const std::string& what) : std::runtime_error(what) {}
};

/// Telemetry for one recovery attempt. Under nested-crash injection a
/// recovery can be entered several times: aborted attempts (crashed=true)
/// record where they died; the final converging attempt closes the log.
struct RecoveryAttempt {
  std::uint64_t nvm_reads = 0;
  std::uint64_t nvm_writes = 0;
  double seconds = 0.0;             // modeled time of this attempt alone
  bool crashed = false;             // ended in a nested crash
  std::uint64_t crash_boundary = 0; // 1-based persist boundary it died at
  std::string crash_stage;          // boundary label ("write", "qmap", ...)
  std::uint64_t resume_cursor = 0;  // persisted resume-cursor position
};

/// Outcome of SecureMemory::recover().
///
/// Recovery never throws: every path — clean rebuild, detected attack, lost
/// media — comes back as a report. `status` is non-ok only when recovery
/// itself failed internally (a bug, not a property of the device). A report
/// can be degraded() without an attack: salvage mode quarantined subtrees
/// whose metadata was unrecoverable and kept everything else serviceable.
struct RecoveryReport {
  bool supported = true;          // WB reports false
  bool attack_detected = false;
  std::string attack_detail;      // which check fired, at which level
  int attacked_level = -1;
  Status status;                  // internal recovery failure, if any
  std::uint64_t nodes_recovered = 0;
  std::uint64_t blocks_salvaged = 0;     // resident data blocks still served
  std::uint64_t blocks_quarantined = 0;  // resident data blocks now blocked
  std::uint64_t subtrees_quarantined = 0;
  std::uint64_t lines_quarantined = 0;   // single retired lines
  bool tracking_degraded = false;  // dirty-set tracking partially lost
  std::vector<unsigned> linc_unverified;  // Steins levels left unchecked
  std::vector<std::pair<Addr, Addr>> quarantined_ranges;  // data byte ranges
  std::uint64_t nvm_reads = 0;    // metadata/data blocks fetched (all attempts)
  std::uint64_t nvm_writes = 0;   // blocks written back during recovery
  double seconds = 0.0;           // modeled recovery time (all attempts)

  /// Per-attempt log under nested-crash injection: aborted attempts first,
  /// the converging one last. Single-attempt recoveries log one entry.
  std::vector<RecoveryAttempt> attempts;
  /// Nested crashes exhausted the retry budget; status carries the detail.
  bool recovery_gave_up = false;
  /// Final persisted resume-cursor position (0 = no cursor / not used).
  std::uint64_t resume_cursor = 0;

  std::uint64_t attempt_count() const {
    return attempts.empty() ? 1 : attempts.size();
  }

  bool degraded() const {
    return blocks_quarantined > 0 || subtrees_quarantined > 0 ||
           lines_quarantined > 0 || !quarantined_ranges.empty() ||
           tracking_degraded || !linc_unverified.empty();
  }

  /// "N blocks salvaged, M quarantined (K subtrees)" — for logs/CLIs.
  std::string summary() const;

  bool ok() const {
    return supported && !attack_detected && status.ok() && !degraded();
  }
};

using RecoveryResult = RecoveryReport;

/// Aggregated runtime statistics for one simulation run.
struct ExecStats {
  LatencyAccumulator read_latency;   // data read: arrival -> verified data
  LatencyAccumulator write_latency;  // data write: arrival -> NVM completion
  std::uint64_t data_reads = 0;      // NVM data-block reads
  std::uint64_t data_writes = 0;
  std::uint64_t meta_reads = 0;      // SIT node reads
  std::uint64_t meta_writes = 0;
  std::uint64_t aux_reads = 0;       // shadow/bitmap region reads
  std::uint64_t aux_writes = 0;      // full-line shadow/bitmap writes
  std::uint64_t aux_write_bytes = 0; // partial (byte-addressable) writes
  std::uint64_t hash_ops = 0;
  std::uint64_t aes_ops = 0;
  std::uint64_t mcache_accesses = 0;
  std::uint64_t reencryptions = 0;   // split-counter overflow re-encryptions

  std::uint64_t nvm_reads() const { return data_reads + meta_reads + aux_reads; }
  std::uint64_t nvm_writes() const {
    return data_writes + meta_writes + aux_writes + aux_write_bytes / kBlockSize;
  }

  /// Total modeled energy (nJ) given the configured per-op costs.
  double energy_nj(const SystemConfig& cfg) const;

  void reset() { *this = ExecStats{}; }
};

/// Scheme identifiers (paper §IV; SCUE is the §II-D whole-tree-rebuild
/// baseline, general-counter mode only).
enum class Scheme { kWriteBack, kAnubis, kStar, kSteins, kScue };

std::string scheme_name(Scheme s, CounterMode mode);

class SecureMemory {
 public:
  virtual ~SecureMemory() = default;

  /// Data-block read arriving at the controller at cycle `now`.
  /// Returns the cycle at which verified plaintext is available.
  virtual Cycle read_block(Addr addr, Cycle now, Block* out) = 0;

  /// Data-block write (dirty LLC eviction) arriving at `now`. Returns the
  /// cycle at which the controller has accepted the write (posted).
  virtual Cycle write_block(Addr addr, const Block& data, Cycle now) = 0;

  /// Simulated power loss: volatile state is dropped, the ADR domain and
  /// write queue drain to NVM.
  virtual void crash() = 0;

  /// Rebuild security metadata after crash() per the scheme's procedure.
  /// Never throws: failures are reported in the returned RecoveryReport.
  virtual RecoveryReport recover() = 0;

  virtual ExecStats& stats() = 0;
  virtual const SystemConfig& config() const = 0;
  virtual NvmDevice& device() = 0;
  virtual const SitGeometry& geometry() const = 0;
  virtual const CacheStats& metadata_cache_stats() const = 0;

  /// Install (or clear, with nullptr) a fault injector: the next crash()
  /// drains the write queue through it instead of draining intact, and
  /// recovery persist boundaries report to it (nested-crash injection).
  /// Runtime faults apply only at crash; the demand path is unaffected.
  virtual void set_fault_injector(FaultInjector* injector) { (void)injector; }

  /// A nested crash (RecoveryCrash) aborted the in-progress recovery
  /// attempt at `boundary`. Implementations log the aborted attempt's
  /// telemetry and leave the object ready for crash() + recover()
  /// re-entry. Default: no-op (schemes without recovery state).
  virtual void note_recovery_crash(std::uint64_t boundary, const char* stage) {
    (void)boundary;
    (void)stage;
  }

  /// Attempt log accumulated across note_recovery_crash calls; the retry
  /// loop drains it when recovery is abandoned (a converging recover()
  /// folds the log into its report instead).
  virtual std::vector<RecoveryAttempt> drain_attempt_log() { return {}; }

  /// Host-side prefetch hint for an access to `addr` a few trace entries
  /// ahead: pulls the controller tables the access will probe (metadata
  /// cache set, device-store slot) toward the host cache. No simulated
  /// effect — results are bit-identical with or without the hint.
  virtual void prefetch_hint(Addr addr) const { (void)addr; }
};

class SecureMemoryBase : public SecureMemory {
 public:
  SecureMemoryBase(const SystemConfig& cfg, std::uint64_t key_seed = 0x57e145c0de5eedULL);

  // The channel holds references into this object; it must stay put.
  SecureMemoryBase(const SecureMemoryBase&) = delete;
  SecureMemoryBase& operator=(const SecureMemoryBase&) = delete;

  Cycle read_block(Addr addr, Cycle now, Block* out) override;
  Cycle write_block(Addr addr, const Block& data, Cycle now) override;

  void crash() override;

  ExecStats& stats() override { return stats_; }
  const SystemConfig& config() const override { return cfg_; }
  NvmDevice& device() override { return dev_; }
  const SitGeometry& geometry() const override { return geo_; }

  const CacheStats& metadata_cache_stats() const override { return mcache_.stats(); }

  void set_fault_injector(FaultInjector* injector) override {
    injector_ = injector;
    channel_.set_crash_fault_hook(injector);
  }

  void note_recovery_crash(std::uint64_t boundary, const char* stage) override;
  std::vector<RecoveryAttempt> drain_attempt_log() override {
    return std::move(attempt_log_);
  }

  void prefetch_hint(Addr addr) const final {
    // The access will probe the data line plus the leaf covering addr's
    // data block in the metadata cache; a leaf miss walks toward the root
    // and reads node images from the device store. Hint the first few
    // levels of that walk — deeper ancestors are shared widely enough to
    // stay host-cached on their own.
    const std::uint64_t block = addr / kBlockSize;
    NodeId id{0, block / geo_.leaf_coverage()};
    for (unsigned level = 0; level < 3 && level < geo_.num_levels(); ++level) {
      const Addr node_addr = geo_.node_addr(id);
      mcache_.prefetch(node_addr);
      dev_.prefetch(node_addr);
      id = geo_.parent_of(id);
    }
    dev_.prefetch(addr);
  }

  NvmChannel& channel() { return channel_; }
  MetadataCache& metadata_cache() { return mcache_; }
  const std::vector<std::uint64_t>& root_counters() const { return root_; }
  const CmeEngine& cme() const { return cme_; }

  const FtStats& ft_stats() const { return ft_stats_; }
  const QuarantineMap& quarantine() const { return qmap_; }

  /// Run one patrol-scrub epoch immediately (the steins_scrub CLI drives
  /// this directly; the runtime triggers it every scrub_interval_accesses).
  void scrub_epoch(Cycle& now);

  /// Scheme hook (public for introspection/auditing): a pending, not yet
  /// applied parent counter for `id`, if any. Steins answers from its NV
  /// parent buffer so verification never sees a stale parent slot; the
  /// buffer lives on-chip, so this costs no memory access.
  virtual std::optional<std::uint64_t> pending_parent_counter(NodeId id) const;

  /// Force every queued write to NVM and every dirty metadata node out of
  /// the cache (used by tests to reach a fully-persistent state).
  void flush_all_metadata();

  /// Snapshot of a node's current (possibly cached-dirty) counters; used by
  /// tests to compare pre-crash and post-recovery states.
  std::optional<SitNode> current_node_state(NodeId id) const;

 protected:
  struct FetchResult {
    MetadataLine* line;
    Cycle ready;
  };

  /// Fetch-and-verify a node into the metadata cache (paper §II-C):
  /// recursive parent fetches on miss, HMAC check against the parent
  /// counter, LRU insertion with dirty-victim flush.
  FetchResult fetch_node(NodeId id, Cycle now);

  /// Persist one dirty node's payload to NVM, updating its parent counter
  /// per the scheme (self-increment vs. generated). Returns the cycle after
  /// the metadata operations on the current path.
  virtual Cycle persist_node(SitNode& node, Cycle now) = 0;

  /// A cached node's counters changed.
  virtual void on_node_modified(NodeId id, Cycle& now);
  /// A cached node transitioned clean -> dirty.
  virtual void on_node_dirtied(NodeId id, Cycle& now);
  /// A cached node transitioned dirty -> clean (flushed or evicted).
  virtual void on_node_cleaned(NodeId id, Cycle& now);

  /// Hook before serving a data read (Steins drains the NV buffer here).
  virtual void before_read(Cycle& now);

  /// Hook after a data block write (STAR stashes leaf-counter LSBs in the
  /// block's spare ECC bits here).
  virtual void on_data_written(Addr addr, std::uint64_t counter, Cycle& now);

  /// Increment the leaf counter covering a data write; returns the
  /// encryption counter to use and handles split-counter overflow
  /// (re-encryption of covered blocks). `pv_before/pv_after` report the
  /// node's Eq-1/Eq-2 parent value around the increment (for LIncs).
  struct CounterBump {
    std::uint64_t enc_counter = 0;
    std::uint64_t aux = 0;  // MAC aux input (leaf major for Steins-SC)
    std::uint64_t pv_before = 0;
    std::uint64_t pv_after = 0;
    bool overflowed = false;
  };
  virtual CounterBump bump_leaf_counter(MetadataLine& leaf, std::size_t slot, Cycle& now);

  /// Encryption counter currently stored for a data block (for reads).
  std::uint64_t leaf_enc_counter(const SitNode& leaf, std::size_t slot,
                                 std::uint64_t* aux) const;

  /// Parent counter used to verify `id`'s persistent image: the counter in
  /// the cached parent node (fetching it if needed) or the root register.
  std::uint64_t verify_parent_counter(NodeId id, Cycle& now);

  /// Self-increment parent-update flush shared by WB/ASIT/STAR
  /// (paper §II-C classic SIT semantics). `parent_ctr_out`, if given,
  /// receives the post-increment parent counter (STAR stores its LSBs).
  Cycle persist_with_self_increment(SitNode& node, Cycle now,
                                    std::uint64_t* parent_ctr_out = nullptr);

  /// Persist a cached node without evicting it (write-through): the node
  /// stays cached but becomes clean.
  Cycle write_through_node(MetadataLine& line, Cycle now);

  /// Persist a node that is no longer (or no longer reliably) in the cache.
  /// While the flush is in flight, the node is registered so that recursive
  /// parent fetches triggered by the flush serve the live copy instead of
  /// re-reading a stale image from NVM (see fetch_node).
  Cycle persist_detached(SitNode& node, Cycle now);

  /// Fire on_node_cleaned for a just-persisted node — unless the flush
  /// chain re-materialized it as a dirty cached node (the inflight path),
  /// in which case it is still dirty and must stay tracked.
  void finish_clean(NodeId id, Cycle& now);

  /// Re-encrypt the data blocks covered by a split leaf after a minor
  /// overflow (their encryption counters changed wholesale). Charges
  /// reads+writes; `skip_slot` is the block the caller is about to write.
  void reencrypt_covered_blocks(const SitNode& before, const SitNode& after,
                                std::size_t skip_slot, Cycle& now);

  /// True if a block has ever been written (device or write queue).
  bool block_exists(Addr addr) const {
    return dev_.contains(addr) || channel_.queued(addr);
  }

  /// Charge one hash (MAC) computation on the current path.
  void charge_hash(Cycle& now) {
    now += cfg_.secure.hash_latency_cycles;
    ++stats_.hash_ops;
  }
  void charge_aes() { ++stats_.aes_ops; }

  /// Charge tracking-structure work (cache-tree hashes, synchronous shadow
  /// persists) to the WRITE-latency side channel: it burdens metadata
  /// modifications (paper Figs. 10) without sitting on the read path.
  void charge_tracking(Cycle cycles, bool is_hash = false) {
    tracking_penalty_ += cycles;
    if (is_hash) ++stats_.hash_ops;
  }

  bool leaf_is_split() const { return cfg_.counter_mode == CounterMode::kSplit; }

  // --- Runtime fault tolerance -------------------------------------------

  /// Data read with bounded ECC retry/backoff. Throws StatusError
  /// (kUncorrectable) after quarantining the line when ECC gives up.
  Cycle resilient_data_read(Addr addr, Cycle now, Block* out);

  /// ECC retry for a SIT node image just read in fetch_node. Quarantines
  /// the node's whole data subtree and throws StatusError on a dead line.
  Cycle resolve_node_ecc(NodeId id, Addr addr, Cycle now, Block* img);

  /// Throw StatusError(kQuarantined) if the map blocks the access.
  void check_read_allowed(Addr addr);
  void check_write_allowed(Addr addr);

  /// Retire a dead 64 B line: remap from the spare pool if one is left,
  /// record it in the quarantine map, persist the map.
  void quarantine_data_line(Addr addr, QuarantineReason reason);

  /// Quarantine the data range covered by a SIT node's subtree.
  void quarantine_node_subtree(NodeId id, QuarantineReason reason);

  /// Data byte range [lo, hi) covered by a node's subtree.
  std::pair<Addr, Addr> node_data_span(NodeId id) const;

  void persist_qmap() {
    if (recovering_) recovery_persist_boundary("qmap");
    qmap_.persist(dev_, qmap_base_);
  }

  /// A durable write inside recovery is about to happen. MUST be called
  /// before the poke/write becomes durable (throw-before-poke): an armed
  /// nested crash then aborts the attempt with no durable trace of the
  /// aborted boundary, which is what keeps re-entry convergent.
  void recovery_persist_boundary(const char* stage);

  /// Patrol scrub driver: every ft_.scrub_interval_accesses demand accesses,
  /// patrol up to ft_.scrub_lines_per_epoch resident data lines.
  void maybe_scrub(Cycle& now);
  void scrub_one(Addr addr, Cycle& now);

  /// Common entry/exit for scheme recover() implementations: prologue
  /// resets counters and reloads the persisted quarantine map; finish
  /// computes salvage totals, timing, and clears recovering_.
  void recovery_prologue();
  RecoveryReport finish_recovery(RecoveryReport r);

  /// Reads during recovery are charged to the recovery budget instead of
  /// the runtime channel.
  bool recovering_ = false;
  std::uint64_t recovery_reads_ = 0;
  std::uint64_t recovery_writes_ = 0;
  /// Aborted-attempt telemetry accumulated across nested crashes; a fresh
  /// (non-resuming) prologue clears it.
  std::vector<RecoveryAttempt> attempt_log_;
  bool recovery_resume_ = false;           // next recover() re-enters
  std::uint64_t recovery_cursor_pos_ = 0;  // scheme-reported cursor position

  /// Modeled time of the current attempt so far.
  double recovery_attempt_seconds() const {
    return static_cast<double>(recovery_reads_) * cfg_.secure.recovery_read_ns * 1e-9 +
           static_cast<double>(recovery_writes_) * cfg_.nvm.t_wr_ns * 1e-9;
  }

  /// Channel read that respects recovery accounting.
  Cycle timed_read(Addr addr, Cycle now, Block* out);
  /// Channel (posted) write that respects recovery accounting. A non-null
  /// `tag` rides the queue with the block (single-transaction ECC tag).
  Cycle timed_write(Addr addr, const Block& data, Cycle now, LatencyAccumulator* acc = nullptr,
                    Cycle birth = 0, const std::uint64_t* tag = nullptr);

  /// Nodes currently being flushed but not yet written (see
  /// persist_detached); newest last.
  std::vector<const SitNode*> inflight_persists_;

  SystemConfig cfg_;
  SitGeometry geo_;
  NvmDevice dev_;
  NvmChannel channel_;
  CmeEngine cme_;
  MetadataCache mcache_;
  std::vector<std::uint64_t> root_;  // on-chip NV root register (per top node)
  ExecStats stats_;
  Cycle mc_free_at_ = 0;       // controller front-end serialization
  Cycle tracking_penalty_ = 0; // per-op tracking work (write-latency side)

  // Fault-tolerance state (declared after dev_: qmap_base_ derives from it).
  FaultInjector* injector_ = nullptr;  // armed nested crashes + crash drains
  FaultToleranceConfig ft_;
  QuarantineMap qmap_;
  FtStats ft_stats_;
  Addr qmap_base_ = 0;
  std::uint64_t scrub_accesses_ = 0;
  std::uint64_t scrub_cursor_ = 0;
  bool in_scrub_ = false;
};

/// Factory covering the paper's evaluated schemes.
std::unique_ptr<SecureMemory> make_scheme(Scheme scheme, const SystemConfig& cfg);

}  // namespace steins

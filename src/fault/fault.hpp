// Deterministic fault injection for the secure-NVM stack.
//
// The crash tests of the KV layer only exercise *clean* crashes: dirty
// cache lines are lost, the write queue and ADR domain drain intact. Real
// NVM failures are messier — a 64 B line write can tear mid-flight, a
// posted persist can be dropped or reordered before power dies, the ADR
// guarantee itself can fail, and media cells can flip. A FaultPlan is a
// seed-derived description of the faults one crash suffers; a FaultInjector
// executes the plan at two hook points:
//
//   1. the write queue's crash drain (NvmChannel::crash_drain_all): each
//      queued line write either commits intact, commits torn (prefix /
//      suffix / interleaved 8-byte words of old and new data, with the
//      ECC-colocated tag counted as the last word), is dropped, or drains
//      in a reordered sequence that is cut short by the power failure;
//   2. after the scheme's crash() completes (apply_post_crash): single /
//      multi bit flips in the data region, the counter-block (SIT leaf)
//      region, the internal SIT-node region, the ECC-colocated MAC tags,
//      and the per-scheme aux region (offset records / shadow table /
//      bitmap lines).
//
// Every decision derives from the plan's seed, so any campaign trial can be
// reproduced bit-for-bit from (campaign seed, trial index) alone. The
// contract the campaign enforces: an injected fault must end in *detection*
// (an integrity violation raised at recovery or on a later read) or in
// *recovery* (the post-recovery image is a committed, authentic state);
// silently serving wrong plaintext is a real bug.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "nvm/nvm_device.hpp"
#include "secure/secure_memory.hpp"

namespace steins {

/// The campaign's fault taxonomy. The first group decides the fate of the
/// write queue at crash; the second flips bits in one NVM region after it.
enum class FaultClass {
  kNone,              // clean crash (control group)
  kTornWrite,         // a queued 64 B write lands partially
  kDroppedPersist,    // queued writes silently never reach the array
  kReorderedPersist,  // the queue drains out of order and is cut short
  kAdrLoss,           // the ADR domain fails: nothing queued drains
  kBitFlipData,       // media flips in the user-data region
  kBitFlipCounter,    // media flips in counter blocks (SIT leaves)
  kBitFlipNode,       // media flips in internal SIT nodes
  kBitFlipMac,        // media flips in the ECC-colocated data MAC tags
  kBitFlipRecord,     // media flips in the aux region (records/shadow/bitmap)
  kCorrectableFlip,   // marginal-cell flips within the ECC correction budget
};

/// Canonical CLI name, e.g. "torn-write".
const char* fault_class_name(FaultClass c);

/// Parse a CLI name (canonical or short alias: torn, drop, reorder, adr,
/// data, counter, node, mac, record, none).
std::optional<FaultClass> parse_fault_class(std::string_view name);

/// Every injectable class, in matrix-column order (excludes kNone).
const std::vector<FaultClass>& all_fault_classes();

/// Seed-derived description of the faults one crash suffers.
struct FaultPlan {
  FaultClass cls = FaultClass::kNone;
  std::uint64_t seed = 0;  // drives every random decision of the injector
  unsigned intensity = 1;  // queue entries to fault / bits to flip

  /// The canonical derivation used by campaigns: every parameter is a pure
  /// function of (class, campaign seed, trial index).
  static FaultPlan derive(FaultClass cls, std::uint64_t campaign_seed, std::uint64_t trial);
};

/// One concrete injected fault, for logs and reproduction reports.
struct FaultEvent {
  enum class Kind {
    kDrop,
    kTear,
    kReorder,
    kFlipBlock,
    kFlipTag,
    kCorrectable,
    kRecoveryCrash,  // nested crash delivered at a recovery persist boundary
  };
  Kind kind;
  Addr addr = 0;
  std::uint64_t detail = 0;  // torn-word mask / flipped bit index / position
};

std::string to_string(const FaultEvent& e);

/// Thrown by FaultInjector::on_recovery_persist when a nested crash is
/// armed at the boundary being crossed. Deliberately NOT derived from
/// std::exception: scheme recover() implementations catch
/// IntegrityViolation / StatusError / std::exception and convert them to
/// reports, but a nested power failure must unwind the whole recovery and
/// reach the retry loop (recover_with_retry) untouched.
struct RecoveryCrash {
  std::uint64_t boundary = 0;  // 1-based persist-boundary index hit
  const char* stage = "";      // coarse label: "meta", "qmap", "rebuild", ...
};

class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan) : plan_(plan), rng_(plan.seed) {}

  /// A write pending in the queue when power failed (FIFO order).
  struct QueuedWrite {
    Addr addr;
    Block data;
    bool has_tag = false;
    std::uint64_t tag = 0;
  };

  /// Crash-drain hook called by NvmChannel: decide each queued write's fate
  /// and commit the survivors to the device. Entries arrive oldest-first.
  void drain_crashed_queue(std::vector<QueuedWrite> entries, NvmDevice& dev);

  /// Post-crash media faults: flip bits in the plan's region. Must run
  /// after the scheme's crash() so ADR-resident structures (record lines,
  /// bitmap lines) have reached the device and are corruptible too.
  void apply_post_crash(SecureMemory& mem);

  const FaultPlan& plan() const { return plan_; }
  const std::vector<FaultEvent>& events() const { return events_; }

  /// Joined human-readable event log (capped), for verdict details.
  std::string event_summary(std::size_t max_events = 8) const;

  // --- Nested crashes: recovery as a crash domain --------------------------
  //
  // Recovery itself writes durable state (rebuilt nodes, quarantine-map
  // updates, record flushes, resume cursors). Each such write crosses a
  // *recovery persist boundary*: the memory calls on_recovery_persist()
  // BEFORE making the write durable (throw-before-poke), so an armed crash
  // aborts the attempt with zero durable trace of the aborted boundary.

  /// Arm a crash at the `boundary`-th (1-based) persist boundary of the
  /// next recovery attempt. With `rearm`, the crash re-arms after firing so
  /// every retry crashes too (until backoff_recovery_budget() moves the
  /// boundary out of reach or the attempt budget runs out).
  void arm_recovery_crash(std::uint64_t boundary, bool rearm = false) {
    recovery_crash_at_ = boundary;
    recovery_rearm_ = rearm;
  }
  void disarm_recovery_crash() { recovery_crash_at_ = 0; recovery_rearm_ = false; }
  bool recovery_crash_armed() const { return recovery_crash_at_ != 0; }
  std::uint64_t recovery_crash_boundary() const { return recovery_crash_at_; }

  /// Reset the per-attempt boundary counter (retry loop calls this before
  /// each recover()).
  void begin_recovery_attempt() { recovery_persists_ = 0; }

  /// Exponential persist-budget backoff: after a crashed attempt, double
  /// the armed boundary so the re-armed crash strikes ever later — each
  /// retry is guaranteed to get at least as far as the last one did, and a
  /// persistent adversary still converges within O(log boundaries) retries.
  void backoff_recovery_budget() {
    if (recovery_crash_at_ != 0 && recovery_rearm_) recovery_crash_at_ *= 2;
  }

  /// A recovery persist boundary is being crossed. Counts it; throws
  /// RecoveryCrash when the armed boundary is reached (self-disarming
  /// unless rearm was requested).
  void on_recovery_persist(const char* stage) {
    ++recovery_persists_;
    if (recovery_crash_at_ != 0 && recovery_persists_ == recovery_crash_at_) {
      const std::uint64_t boundary = recovery_crash_at_;
      if (!recovery_rearm_) recovery_crash_at_ = 0;
      ++recovery_crashes_;
      events_.push_back({FaultEvent::Kind::kRecoveryCrash, 0, boundary});
      throw RecoveryCrash{boundary, stage};
    }
  }

  /// Boundaries seen in the current (or last) attempt — a disarmed dry run
  /// measures how many boundaries a recovery has, for stride sweeps.
  std::uint64_t recovery_persists() const { return recovery_persists_; }
  /// Nested crashes delivered over the injector's lifetime.
  std::uint64_t recovery_crashes() const { return recovery_crashes_; }

 private:
  /// Mix old and new data at 8-byte-word granularity; returns the mask of
  /// words taken from the *new* data (never all-ones, never zero).
  Block torn_block(const Block& oldv, const Block& newv, std::uint64_t* word_mask);

  void commit(const QueuedWrite& w, NvmDevice& dev);
  void flip_block_bit(NvmDevice& dev, Addr addr);
  void flip_tag_bit(NvmDevice& dev, Addr addr);
  void flip_correctable(NvmDevice& dev, Addr addr);

  FaultPlan plan_;
  Xoshiro256 rng_;
  std::vector<FaultEvent> events_;
  std::uint64_t recovery_crash_at_ = 0;  // 0 = disarmed; else 1-based boundary
  bool recovery_rearm_ = false;
  std::uint64_t recovery_persists_ = 0;
  std::uint64_t recovery_crashes_ = 0;
};

/// Bounded re-entry policy for crashed recoveries (System::crash_and_recover
/// and the direct-drive harnesses share it).
struct RecoveryRetryPolicy {
  unsigned max_recovery_attempts = 8;
  /// Double the armed persist budget between re-armed attempts.
  bool exponential_backoff = true;
};

/// Run `mem.recover()`, re-entering it after each nested RecoveryCrash:
/// crash() is replayed (volatile loss + ADR drain), the injector's
/// per-attempt counter resets, and — under the policy's backoff — a
/// re-armed crash budget doubles. Gives up after max_recovery_attempts,
/// returning a report with status kUnavailable ("recovery crash
/// unrecoverable") so campaigns can classify it. Per-attempt telemetry is
/// folded into the final report's attempt log.
RecoveryReport recover_with_retry(SecureMemory& mem, FaultInjector* injector,
                                  const RecoveryRetryPolicy& policy = {});

}  // namespace steins

#include "fault/differential.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <memory>
#include <sstream>

#include "common/rng.hpp"
#include "schemes/steins.hpp"
#include "secure/secure_memory.hpp"

namespace steins {

namespace {

/// Same shape as the campaign pattern: the plaintext alone names the block
/// and the committed version it carries.
Block diff_pattern_block(Addr addr, std::uint64_t version) {
  Block b = zero_block();
  std::memcpy(b.data(), &addr, 8);
  std::memcpy(b.data() + 8, &version, 8);
  const std::uint64_t mix = version * 0x9e3779b97f4a7c15ULL ^ addr;
  std::memcpy(b.data() + 16, &mix, 8);
  return b;
}

struct Instance {
  std::unique_ptr<SecureMemory> mem;
  SecureMemoryBase* base = nullptr;
  std::map<Addr, std::uint64_t> versions;
  std::uint64_t capacity_bytes = 0;
};

/// Build one scheme instance, drive the seeded workload (mixed phase, full
/// metadata flush checkpoint, dirty burst), and crash it mid-burst-dirty.
/// Both trial runs call this with identical options, so they crash holding
/// bit-identical durable images.
Instance build_crashed_instance(const SchemeSpec& spec, const DifferentialOptions& opt) {
  SystemConfig cfg = default_config();
  cfg.nvm.capacity_bytes = opt.capacity_mb << 20;
  cfg.secure.metadata_cache.size_bytes = opt.mcache_kb * 1024;
  cfg.counter_mode = spec.mode;
  cfg.crypto = CryptoProfile::kFast;

  Instance inst;
  inst.capacity_bytes = cfg.nvm.capacity_bytes;
  inst.mem = make_scheme(spec.scheme, cfg);
  inst.base = dynamic_cast<SecureMemoryBase*>(inst.mem.get());
  STEINS_CHECK(inst.base != nullptr, "differential harness drives SecureMemoryBase schemes");

  SplitMix64 sm(opt.seed ^ 0x2545f4914f6cdd1dULL);
  Xoshiro256 rng(sm.next());
  Cycle now = 0;
  const auto pick = [&]() -> Addr { return rng.below(opt.footprint_blocks) * kBlockSize; };
  const auto do_op = [&](double write_frac) {
    const Addr addr = pick();
    if (rng.chance(write_frac)) {
      const std::uint64_t v = inst.versions[addr] + 1;
      now = inst.mem->write_block(addr, diff_pattern_block(addr, v), now);
      inst.versions[addr] = v;
    } else {
      Block got;
      now = inst.mem->read_block(addr, now, &got);
      const auto it = inst.versions.find(addr);
      const Block want =
          it == inst.versions.end() ? zero_block() : diff_pattern_block(addr, it->second);
      STEINS_CHECK(got == want, "differential workload read mismatch before any crash");
    }
  };

  for (std::uint64_t i = 0; i < opt.ops; ++i) do_op(0.75);
  inst.base->flush_all_metadata();  // checkpoint: everything so far durable
  for (std::uint64_t i = 0; i < opt.ops / 2; ++i) do_op(0.9);
  inst.mem->crash();
  return inst;
}

/// What one post-recovery read served: either plaintext, or a typed error.
struct ReadProbe {
  enum class Kind { kOk, kUnavailable, kIntegrity } kind = Kind::kOk;
  Block data{};
  ErrorCode code = ErrorCode::kOk;
};

ReadProbe probe_read(SecureMemory& mem, Addr addr, Cycle& now) {
  ReadProbe p;
  try {
    now = mem.read_block(addr, now, &p.data);
  } catch (const IntegrityViolation&) {
    p.kind = ReadProbe::Kind::kIntegrity;
  } catch (const StatusError& e) {
    p.kind = ReadProbe::Kind::kUnavailable;
    p.code = e.code();
  }
  return p;
}

/// Settle an instance to a canonical durable image: drain the Steins NV
/// parent buffer to its parents (bounded by tree height), flush every dirty
/// cached node, then crash once more so the channel/ADR queue reaches the
/// device. After this, peek_block() sees the complete image.
void settle_durable(Instance& inst) {
  if (auto* st = dynamic_cast<SteinsMemory*>(inst.mem.get())) {
    Cycle t = 0;
    for (int round = 0; round < 16; ++round) {
      st->drain_nv_buffer(t);
      inst.base->flush_all_metadata();
      if (st->nv_buffer_entries() == 0) break;
    }
  } else {
    inst.base->flush_all_metadata();
  }
  inst.mem->crash();
}

std::string hex(std::uint64_t v) {
  std::ostringstream os;
  os << "0x" << std::hex << v;
  return os.str();
}

/// Compare the durable images of a half-open address window bit-for-bit:
/// same resident set, same stored block, same ECC-colocated tags.
bool compare_region(Instance& a, Instance& b, Addr lo, Addr hi, const char* what,
                    std::string* divergence) {
  const std::vector<Addr> ra = a.mem->device().resident_blocks(lo, hi);
  const std::vector<Addr> rb = b.mem->device().resident_blocks(lo, hi);
  if (ra != rb) {
    *divergence = std::string(what) + ": resident sets differ (" +
                  std::to_string(ra.size()) + " vs " + std::to_string(rb.size()) +
                  " blocks)";
    return false;
  }
  for (const Addr addr : ra) {
    if (a.mem->device().peek_block(addr) != b.mem->device().peek_block(addr)) {
      *divergence = std::string(what) + ": block image differs at " + hex(addr);
      return false;
    }
    if (a.mem->device().read_tag(addr) != b.mem->device().read_tag(addr) ||
        a.mem->device().read_tag2(addr) != b.mem->device().read_tag2(addr)) {
      *divergence = std::string(what) + ": stored tag differs at " + hex(addr);
      return false;
    }
  }
  return true;
}

bool compare_quarantine(const Instance& a, const Instance& b, std::string* divergence) {
  const auto& qa = a.base->quarantine().entries();
  const auto& qb = b.base->quarantine().entries();
  if (qa.size() != qb.size()) {
    *divergence = "quarantine maps differ: " + std::to_string(qa.size()) + " vs " +
                  std::to_string(qb.size()) + " entries";
    return false;
  }
  for (std::size_t i = 0; i < qa.size(); ++i) {
    if (qa[i].lo != qb[i].lo || qa[i].hi != qb[i].hi || qa[i].reason != qb[i].reason ||
        qa[i].line != qb[i].line || qa[i].remapped != qb[i].remapped ||
        qa[i].rewritten != qb[i].rewritten) {
      *divergence = "quarantine entry " + std::to_string(i) + " differs at " + hex(qa[i].lo);
      return false;
    }
  }
  return true;
}

}  // namespace

DifferentialResult run_differential_trial(const SchemeSpec& spec,
                                          const DifferentialOptions& opt) {
  DifferentialResult res;

  Instance clean = build_crashed_instance(spec, opt);
  Instance trial = build_crashed_instance(spec, opt);
  STEINS_CHECK(clean.versions == trial.versions,
               "differential workload diverged before the crash");

  // Clean reference recovery, with a disarmed injector riding along so the
  // boundary census comes for free.
  const FaultPlan none = FaultPlan::derive(FaultClass::kNone, opt.seed, 0);
  FaultInjector clean_inj(none);
  clean.mem->set_fault_injector(&clean_inj);
  clean_inj.begin_recovery_attempt();
  res.clean = clean.mem->recover();
  res.total_boundaries = clean_inj.recovery_persists();
  clean.mem->set_fault_injector(nullptr);

  // Nested-crash recovery, re-entered by recover_with_retry.
  FaultInjector trial_inj(none);
  if (opt.boundary != 0) trial_inj.arm_recovery_crash(opt.boundary, opt.rearm);
  trial.mem->set_fault_injector(&trial_inj);
  res.crashed = recover_with_retry(*trial.mem, &trial_inj, opt.policy);
  trial.mem->set_fault_injector(nullptr);

  // Verdict fields first: a recovery that gave up or changed its verdict
  // under the nested crash is a divergence in its own right.
  if (res.crashed.recovery_gave_up) {
    res.divergence = "nested-crash recovery gave up: " + res.crashed.status.message();
    return res;
  }
  if (res.clean.attack_detected != res.crashed.attack_detected) {
    res.divergence = "attack_detected verdict differs across re-entry";
    return res;
  }
  if (res.clean.tracking_degraded != res.crashed.tracking_degraded) {
    res.divergence = "tracking_degraded verdict differs across re-entry";
    return res;
  }
  if (res.clean.status.ok() != res.crashed.status.ok()) {
    res.divergence = "recovery status differs: clean=" + res.clean.status.message() +
                     " crashed=" + res.crashed.status.message();
    return res;
  }

  // Served-plaintext sweep over every block the workload wrote: both runs
  // must serve the same bytes, or fail with the same *typed* error.
  {
    Cycle na = 0, nb = 0;
    for (const auto& [addr, version] : clean.versions) {
      (void)version;
      const ReadProbe pa = probe_read(*clean.mem, addr, na);
      const ReadProbe pb = probe_read(*trial.mem, addr, nb);
      if (pa.kind != pb.kind || pa.code != pb.code) {
        res.divergence = "read outcome differs at " + hex(addr);
        return res;
      }
      if (pa.kind == ReadProbe::Kind::kOk && pa.data != pb.data) {
        res.divergence = "served plaintext differs at " + hex(addr);
        return res;
      }
      if (pa.kind == ReadProbe::Kind::kIntegrity) {
        res.divergence = "post-recovery read raised integrity at " + hex(addr);
        return res;
      }
    }
  }

  if (!compare_quarantine(clean, trial, &res.divergence)) return res;

  // Durable-image digests: settle both to canonical images, then compare.
  settle_durable(clean);
  settle_durable(trial);
  if (!compare_region(clean, trial, 0, clean.capacity_bytes, "data region",
                      &res.divergence)) {
    return res;
  }
  // The SIT metadata region is only bit-comparable for schemes whose node
  // images are pure functions of content (generated counters: Steins, SCUE).
  // Anubis/STAR self-increment on every persist, so their images depend on
  // persist *history*, which legitimately differs across re-entry.
  if (spec.scheme == Scheme::kSteins || spec.scheme == Scheme::kScue) {
    const SitGeometry& geo = clean.mem->geometry();
    if (!compare_region(clean, trial, geo.meta_base(), geo.aux_base(), "metadata region",
                        &res.divergence)) {
      return res;
    }
  }

  res.converged = true;
  return res;
}

std::uint64_t count_recovery_boundaries(const SchemeSpec& spec,
                                        const DifferentialOptions& opt) {
  Instance inst = build_crashed_instance(spec, opt);
  FaultInjector inj(FaultPlan::derive(FaultClass::kNone, opt.seed, 0));
  inst.mem->set_fault_injector(&inj);
  inj.begin_recovery_attempt();
  const RecoveryReport report = inst.mem->recover();
  inst.mem->set_fault_injector(nullptr);
  STEINS_CHECK(report.status.ok(), "boundary census recovery must succeed");
  return inj.recovery_persists();
}

}  // namespace steins

// Fault-injection campaigns: N seeded trials x schemes x fault classes,
// each trial ending in a three-way verdict.
//
//   detected           the fault surfaced as an integrity violation — at
//                      recovery or on a post-recovery read — or the scheme
//                      declared itself unrecoverable (WB);
//   recovered          recovery ran clean and every block read back as an
//                      authentic committed version: at least the checkpoint
//                      (the last full flush), at most the latest write;
//   salvaged           recovery completed in degraded mode: unverifiable
//                      lines/subtrees were quarantined, every surviving
//                      block read back authentic, and reads of quarantined
//                      blocks failed with a *typed* unavailable error
//                      (never wrong plaintext);
//   silent-corruption  wrong plaintext served without any check firing, a
//                      rollback past the checkpoint, or an unexpected crash
//                      of the recovery code. Always a real bug.
//
// With a nested recovery crash armed (DESIGN.md §17) two more verdicts
// appear:
//
//   recovered-after-retry        recovery itself crashed at an armed persist
//                                boundary, was re-entered, and converged to
//                                a clean audit (>= 2 attempts);
//   recovery-crash-unrecoverable the bounded retry budget ran out with the
//                                machine still down — an availability
//                                failure, never acceptable in a sweep.
//
// Trials are pure functions of (campaign seed, trial index): the workload,
// the crash point, and every injected fault derive from them, so a verdict
// reproduces bit-for-bit — alone, under --jobs N, or re-run via --trial.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "sim/experiment.hpp"

namespace steins {

enum class FaultVerdict {
  kDetected,
  kRecovered,
  kSalvaged,
  kSilentCorruption,
  kRecoveredAfterRetry,
  kRecoveryCrashUnrecoverable,
};

const char* fault_verdict_name(FaultVerdict v);

/// Workload shape of one trial (small enough that thousands of trials —
/// each with its own scheme instance and SCUE's whole-tree recovery — stay
/// fast, large enough to keep the metadata cache under eviction pressure).
struct FaultTrialOptions {
  std::uint64_t ops = 384;              // phase-1 accesses (75% writes)
  std::uint64_t footprint_blocks = 2048;  // addresses drawn from this range
  std::uint64_t capacity_mb = 16;       // per-trial NVM capacity
  std::uint64_t mcache_kb = 16;         // metadata cache (keeps eviction live)
  /// Fault-tolerance knobs for the trial instance. ECC is on and the patrol
  /// scrubber runs every 64 accesses so the quarantine machinery is
  /// exercised by the campaign (the runtime default leaves scrub off).
  FaultToleranceConfig ft{.ecc_enabled = true,
                          .max_read_retries = 3,
                          .retry_backoff_cycles = 32,
                          .scrub_interval_accesses = 64,
                          .scrub_lines_per_epoch = 8,
                          .scrub_verify_macs = true};
  /// Per-cell endurance model for the trial device (0 = disabled, the
  /// fault-campaign default). The wear-out scenario sets a mean of a few
  /// dozen writes so lines die inside one trial.
  std::uint64_t endurance_mean_writes = 0;
  std::uint64_t endurance_sigma_writes = 0;
  /// Override the device spare-line pool (nullopt keeps NvmConfig's 32).
  std::optional<std::size_t> remap_pool_lines;
  /// Nested recovery crash (DESIGN.md §17): arm the injector to crash the
  /// recovery itself at this 1-based persist boundary (0 = off), optionally
  /// re-arming at the same depth on every retry so only the exponential
  /// persist-budget backoff makes progress.
  std::uint64_t recovery_crash_boundary = 0;
  bool recovery_crash_rearm = false;
  /// Bounded re-entry budget for crashed recoveries.
  RecoveryRetryPolicy retry_policy;
};

struct TrialOutcome {
  std::uint64_t trial = 0;
  FaultClass cls = FaultClass::kNone;
  std::string scheme;  // SchemeSpec label
  FaultVerdict verdict = FaultVerdict::kRecovered;
  std::string detail;  // which check fired / what went silently wrong
  std::string events;  // injected fault log (capped)
  std::uint64_t faults_injected = 0;

  // --- Detection telemetry (DESIGN.md §16) --------------------------------
  // Latency counts demand accesses between the injection point (the crash
  // for fault classes; the adversary's mutation for runtime scenarios) and
  // the check that fired; 0 means recovery itself caught it. Meaningful
  // only when verdict == kDetected and something was actually injected.
  std::uint64_t detect_latency = 0;
  // Which layer fired: "recovery-hmac" (tamper checks: node/data HMACs,
  // parent verification), "recovery-linc" (replay checks: LInc sums,
  // cache-tree roots), "recovery" (other recovery-time detection),
  // "read" (demand-read integrity violation), "scrub" (patrol scrub),
  // "unsupported" (WB declaring itself unrecoverable). Empty if undetected.
  std::string detect_layer;

  // --- Blast radius (any verdict) -----------------------------------------
  std::uint64_t blast_lines = 0;     // single 64 B lines retired/quarantined
  std::uint64_t blast_subtrees = 0;  // quarantined subtree data ranges
  std::uint64_t blast_blocks = 0;    // resident data blocks left read-blocked

  // --- Re-entrant recovery telemetry (DESIGN.md §17) ----------------------
  std::uint64_t recovery_attempts = 1;  // attempts the recovery took
  double recovery_seconds = 0.0;        // modeled seconds across all attempts
  std::uint64_t resume_cursor = 0;      // persisted resume-cursor entries
};

struct CampaignOptions {
  std::uint64_t trials = 100;
  std::uint64_t seed = 42;
  unsigned jobs = 1;
  std::vector<SchemeSpec> schemes;   // empty = campaign_schemes(kGeneral)
  std::vector<FaultClass> classes;   // empty = all_fault_classes()
  FaultTrialOptions workload;
  std::optional<std::uint64_t> only_trial;  // reproduce one trial index
};

/// One (scheme, class) cell of the verdict matrix.
struct CampaignCell {
  std::uint64_t detected = 0;
  std::uint64_t recovered = 0;
  std::uint64_t salvaged = 0;
  std::uint64_t silent = 0;
  std::uint64_t recovered_retry = 0;  // converged only after re-entry
  std::uint64_t unrecoverable = 0;    // retry budget exhausted, machine down
  std::uint64_t total() const {
    return detected + recovered + salvaged + silent + recovered_retry + unrecoverable;
  }
};

struct CampaignResult {
  CampaignOptions options;  // with schemes/classes resolved to their defaults
  std::vector<TrialOutcome> outcomes;  // trial-major, scheme-minor order

  CampaignCell cell(const std::string& scheme, FaultClass cls) const;
  std::uint64_t silent_total() const;
  std::uint64_t salvaged_total() const;
  std::uint64_t retried_total() const;        // recovered-after-retry trials
  std::uint64_t unrecoverable_total() const;  // retry budget exhausted
  std::vector<const TrialOutcome*> silent_outcomes() const;

  /// Verdict matrix (+ silent trial details when verbose).
  void print(bool verbose = false, std::FILE* out = stdout) const;

  /// Machine-readable record: options, per-cell matrix, silent trials.
  std::string to_json() const;
};

/// Default scheme set per counter mode: the recoverable schemes the paper
/// compares (GC: ASIT/STAR/SCUE/Steins-GC; SC: Steins-SC).
std::vector<SchemeSpec> campaign_schemes(CounterMode mode);

/// Classify a recovery-time attack_detail into a detect_layer value:
/// "recovery-linc" for replay checks (LInc sums / cache-tree roots),
/// "recovery-hmac" for tamper checks (HMACs, parent verification), plain
/// "recovery" otherwise (DESIGN.md §III-H taxonomy).
std::string classify_detect_layer(const std::string& detail);

/// Hooks the adversary engine (fault/adversary.hpp) threads through a
/// trial. The campaign owns the workload/audit logic; the hooks own the
/// scenario logic. All callbacks may be empty.
struct TrialHooks {
  /// Midway through phase 1, immediately after an extra metadata flush
  /// (only flushed when this hook is set): the adversary's recording
  /// point. Everything the later checkpoint flush persists lands on the
  /// bus AFTER this snapshot, so rollback scenarios have genuinely stale
  /// persisted images to replay.
  std::function<void(SecureMemoryBase&)> mid_workload;
  /// After the checkpoint flush: snapshot persisted device state.
  std::function<void(SecureMemoryBase&)> after_checkpoint;
  /// During the phase-2 dirty burst, before access k. Return true once a
  /// runtime mutation has been applied (starts the detection-latency
  /// clock); further calls are suppressed after the first true.
  std::function<bool(SecureMemoryBase&, std::uint64_t access)> mid_burst;
  /// After the crash drain (and any injector media faults). Return true
  /// when a mutation was applied. The returned string, if nonempty, is
  /// logged as the trial's injected-event summary.
  std::function<bool(SecureMemoryBase&, std::string* events)> post_crash;
  /// Strict audit window: the trial's crash drains the queue intact, so
  /// every posted write is durable and the audit demands the exact latest
  /// version — a replay to an older committed version must be caught (or
  /// quarantined), never accepted. Leave false for fault campaigns, where
  /// dropped-but-unacknowledged persists are legal.
  bool strict_window = false;
};

/// Run one (scheme, trial) cell: seeded workload, checkpoint flush, dirty
/// burst, faulted crash, recovery, full audit of every written block.
TrialOutcome run_fault_trial(const SchemeSpec& spec, FaultClass cls,
                             std::uint64_t campaign_seed, std::uint64_t trial,
                             const FaultTrialOptions& workload);

/// Same trial anatomy with adversary hooks threaded through (the fault
/// campaign is the hooks == nullptr special case).
TrialOutcome run_fault_trial_hooked(const SchemeSpec& spec, FaultClass cls,
                                    std::uint64_t campaign_seed, std::uint64_t trial,
                                    const FaultTrialOptions& workload,
                                    const TrialHooks* hooks);

/// Outcome of one K-cycle crash/recover trial (run_multicycle_trial): the
/// same instance crashes and recovers `cycles_run` times, with fresh
/// workload between cycles and optional adversarial mutation after each
/// crash. The verdict is the worst across cycles; the trial stops early on
/// a terminal verdict (detected / silent / unrecoverable).
struct MulticycleOutcome {
  std::uint64_t trial = 0;
  std::string scheme;
  FaultVerdict verdict = FaultVerdict::kRecovered;
  std::string detail;
  std::uint64_t cycles_run = 0;
  std::uint64_t faults_injected = 0;
  std::vector<std::uint64_t> attempts_per_cycle;  // recovery attempts, per cycle
  std::vector<double> recovery_seconds_per_cycle;  // modeled recovery time, per cycle
};

/// Per-cycle hooks for multi-cycle trials. All callbacks may be empty.
struct MulticycleHooks {
  /// After cycle c's crash drain (and the fault plan's media faults),
  /// before recovery. Return true when a mutation was applied; the string,
  /// if nonempty, is appended to the trial's injected-event log.
  std::function<bool(SecureMemoryBase&, std::uint64_t cycle, std::string*)> post_crash;
};

/// Run one K-cycle trial: each cycle drives the seeded workload (mixed
/// phase, checkpoint flush, dirty burst), crashes under fault plan
/// FaultPlan::derive(cls, seed, trial*31+cycle), recovers through the
/// bounded retry loop (honoring workload.recovery_crash_boundary /
/// retry_policy), and audits every written block against the
/// [checkpoint, latest] window before the next cycle begins.
MulticycleOutcome run_multicycle_trial(const SchemeSpec& spec, FaultClass cls,
                                       std::uint64_t campaign_seed, std::uint64_t trial,
                                       std::uint64_t cycles,
                                       const FaultTrialOptions& workload,
                                       const MulticycleHooks* hooks = nullptr);

/// Run the whole matrix. Trial t draws fault class classes[t % size], so
/// every class gets an equal share of trials; `jobs` > 1 fans cells across
/// a thread pool with results bit-identical to the sequential run.
/// Throws std::invalid_argument for an empty campaign (trials == 0 without
/// an explicit --trial): an empty matrix would report vacuous success.
CampaignResult run_fault_campaign(const CampaignOptions& opts);

}  // namespace steins

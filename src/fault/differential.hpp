// Differential convergence harness for re-entrant recovery.
//
// Claim under test (DESIGN.md §17): a recovery attempt that crashes at ANY
// persist boundary and is re-entered converges to the same post-recovery
// image an uncrashed recovery produces. The harness runs the identical
// seeded workload in two scheme instances, crashes both at the same point,
// recovers one cleanly and one with a nested crash armed at a chosen
// boundary (retried by recover_with_retry), then compares:
//
//   * the durable data region bit-for-bit (blocks + ECC-colocated MAC tags);
//   * the quarantine map entry-for-entry;
//   * for schemes with content-pure metadata (generated counters: Steins,
//     SCUE) the SIT metadata region bit-for-bit after a full flush;
//   * the plaintext every written block serves — same bytes, or the same
//     *typed* unavailability;
//   * the recovery reports' verdict fields (attack flag, degraded mode).
//
// Any divergence is a re-entrancy bug: durable state from the aborted
// attempt leaked into the converged image.
#pragma once

#include <cstdint>
#include <string>

#include "fault/fault.hpp"
#include "sim/experiment.hpp"

namespace steins {

struct DifferentialOptions {
  std::uint64_t seed = 1;              // workload stream seed
  std::uint64_t ops = 192;             // phase-1 accesses (75% writes)
  std::uint64_t footprint_blocks = 512;
  std::uint64_t capacity_mb = 16;
  std::uint64_t mcache_kb = 16;
  /// 1-based recovery persist boundary to crash the trial run at
  /// (0 = no nested crash: both runs recover cleanly, a self-check).
  std::uint64_t boundary = 0;
  /// Re-arm the crash on every retry (exercises the backoff path).
  bool rearm = false;
  RecoveryRetryPolicy policy;
};

struct DifferentialResult {
  bool converged = false;
  std::string divergence;            // empty when converged
  std::uint64_t total_boundaries = 0;  // persists the clean recovery crossed
  RecoveryReport crashed;            // report of the nested-crash run
  RecoveryReport clean;              // report of the uncrashed run
};

/// Run one differential trial for a make_scheme()-constructible spec.
DifferentialResult run_differential_trial(const SchemeSpec& spec,
                                          const DifferentialOptions& opt);

/// Boundary census: run the workload once, recover cleanly with a disarmed
/// injector attached, and return how many persist boundaries the recovery
/// crossed — the sweep range for stride tests.
std::uint64_t count_recovery_boundaries(const SchemeSpec& spec,
                                        const DifferentialOptions& opt);

}  // namespace steins

// Endurance / wear-out projection campaign.
//
// PCM cells endure ~1e8 writes; a simulation cannot run years of traffic,
// so the campaign runs an ACCELERATED device — per-line Gaussian endurance
// limits of a few dozen writes (NvmConfig::endurance_*) — under a skewed
// write stream, observes the wear-leveling migrations, run-to-failure
// retirements, and spare-pool exhaustion the quarantine machinery handles,
// and projects the observed milestones back to real-device endurance and a
// real traffic rate:
//
//   projected_seconds(milestone) =
//       writes_at_milestone * (real_endurance / accel_endurance_mean)
//                           * (real_capacity_lines / footprint_blocks)
//       / writes_per_second
//
// The first factor is sound because the write DISTRIBUTION (hot fraction,
// footprint) is held fixed: per-line wear grows proportionally to total
// device writes, so the ratio of limits is the ratio of horizons. The
// second factor scales the footprint up to the real device: leveling
// spreads the same relative distribution across real_capacity_lines
// instead of footprint_blocks lines, so every per-line wear rate — and
// with it each milestone horizon — stretches by the line-count ratio. The
// integrity contract rides along: every readable block must verify
// (mismatches == 0); worn lines may only fail with *typed* unavailability.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"
#include "secure/secure_memory.hpp"

namespace steins {

struct EnduranceOptions {
  Scheme scheme = Scheme::kSteins;
  std::uint64_t seed = 1;

  // --- Accelerated device -------------------------------------------------
  std::uint64_t accel_endurance_mean = 96;  // per-line limit (writes)
  std::uint64_t accel_endurance_sigma = 12;
  std::size_t remap_pool_lines = 16;        // spares for leveling + retiring
  std::uint64_t footprint_blocks = 64;      // addresses the stream draws from
  double hot_fraction = 0.125;              // head of the footprint...
  double hot_weight = 0.8;                  // ...takes this share of writes
  std::uint64_t max_writes = 200'000;       // hard cap on the run
  std::uint64_t audit_every = 4096;         // periodic read-back audit stride

  // --- Projection target (real device + service rate) ---------------------
  double real_endurance_writes = 1e8;       // PCM cell endurance
  double writes_per_second = 1e6;           // device demand-write rate (the
                                            // aggregate of a service's users
                                            // hitting this DIMM)
  double real_capacity_lines = 4.0 * 1024 * 1024;  // 256 MiB of 64 B lines:
                                            // the real device wear-leveling
                                            // spreads the stream across
};

struct EnduranceReport {
  EnduranceOptions options;

  std::uint64_t writes_issued = 0;
  std::uint64_t writes_rejected = 0;  // typed unavailability during the run
  // Device-write counts at each milestone; 0 = never reached.
  std::uint64_t writes_to_first_leveling = 0;
  std::uint64_t writes_to_first_wearout = 0;
  std::uint64_t writes_to_pool_exhaustion = 0;

  std::uint64_t lines_wear_leveled = 0;
  std::uint64_t lines_worn_out = 0;
  std::uint64_t lines_remapped = 0;
  std::uint64_t lines_quarantined = 0;
  std::uint64_t scrub_detected = 0;
  std::uint64_t hottest_wear = 0;  // max per-line wear count at run end
  Addr hottest_line = 0;

  // Integrity audit (during the run + after a final crash/recover cycle).
  std::uint64_t audit_unavailable = 0;  // typed errors — legal degradation
  std::uint64_t audit_mismatches = 0;   // wrong plaintext — always a bug
  bool recovery_clean = false;          // final recovery ran without attack

  // Projected horizons at real endurance and traffic (years; 0 = the
  // milestone was never reached in the accelerated run).
  double accel_factor = 0.0;
  double projected_years_first_wearout = 0.0;
  double projected_years_pool_exhaustion = 0.0;

  std::string to_string() const;
  std::string to_json() const;
};

/// Run the accelerated wear campaign and project the milestones.
EnduranceReport run_endurance_campaign(const EnduranceOptions& opts);

}  // namespace steins
